// Package repro's top-level benchmarks regenerate the paper's
// evaluation items as Go benchmarks: one bench per table and figure.
// Custom metrics report the *modelled* quantities the paper plots —
// virtual milliseconds (vms), transactions per modelled second (vtx/s),
// abort percentages — while the standard ns/op column is merely host
// effort.
//
// Run all of them with:
//
//	go test -bench=. -benchmem
//
// Sub-benchmark names encode the paper item, allocator, and the varied
// parameter (block size, thread count, application).
package repro

import (
	"fmt"
	"testing"

	_ "repro/internal/alloc/glibc"
	_ "repro/internal/alloc/hoard"
	_ "repro/internal/alloc/tbb"
	_ "repro/internal/alloc/tcmalloc"
	_ "repro/internal/stamp/bayes"
	_ "repro/internal/stamp/genome"
	_ "repro/internal/stamp/intruder"
	_ "repro/internal/stamp/kmeans"
	_ "repro/internal/stamp/labyrinth"
	_ "repro/internal/stamp/ssca2"
	_ "repro/internal/stamp/vacation"
	_ "repro/internal/stamp/yada"

	"repro/internal/intset"
	"repro/internal/stamp"
	"repro/internal/threadtest"
)

var allocators = []string{"glibc", "hoard", "tbb", "tcmalloc"}

// BenchmarkFig1 reproduces the motivation figure: Intruder and Yada at
// 8 threads under Glibc and Hoard.
func BenchmarkFig1(b *testing.B) {
	for _, app := range []string{"intruder", "yada"} {
		for _, name := range []string{"glibc", "hoard"} {
			b.Run(fmt.Sprintf("%s/%s", app, name), func(b *testing.B) {
				var vms float64
				for i := 0; i < b.N; i++ {
					res, err := stamp.Run(stamp.Config{App: app, Allocator: name, Threads: 8})
					if err != nil {
						b.Fatal(err)
					}
					vms = res.Seconds * 1e3
				}
				b.ReportMetric(vms, "vms")
			})
		}
	}
}

// BenchmarkFig2 measures the false sharing TCMalloc's handout induces:
// two threads ping-ponging writes on their first 16-byte blocks.
func BenchmarkFig2(b *testing.B) {
	for _, name := range []string{"tcmalloc", "hoard"} {
		b.Run(name, func(b *testing.B) {
			var fs float64
			for i := 0; i < b.N; i++ {
				res, err := threadtest.Run(threadtest.Config{
					Allocator: name, Threads: 2, BlockSize: 16, OpsPerThread: 2000,
				})
				if err != nil {
					b.Fatal(err)
				}
				fs = float64(res.FalseShare)
			}
			b.ReportMetric(fs, "false-sharing-misses")
		})
	}
}

// BenchmarkFig3 is the threadtest block-size sweep.
func BenchmarkFig3(b *testing.B) {
	for _, name := range allocators {
		for _, size := range []uint64{16, 256, 8192} {
			b.Run(fmt.Sprintf("%s/size=%d", name, size), func(b *testing.B) {
				var thr float64
				for i := 0; i < b.N; i++ {
					res, err := threadtest.Run(threadtest.Config{
						Allocator: name, Threads: 8, BlockSize: size, OpsPerThread: 2000,
					})
					if err != nil {
						b.Fatal(err)
					}
					thr = res.Throughput / 1e6
				}
				b.ReportMetric(thr, "Mop/vs")
			})
		}
	}
}

func intsetBench(b *testing.B, kind intset.Kind, name string, threads int, shift uint) {
	b.Helper()
	var thr, abort float64
	for i := 0; i < b.N; i++ {
		res, err := intset.Run(intset.Config{
			Kind:         kind,
			Allocator:    name,
			Threads:      threads,
			InitialSize:  768,
			KeyRange:     1536,
			UpdatePct:    60,
			OpsPerThread: 120,
			Shift:        shift,
		})
		if err != nil {
			b.Fatal(err)
		}
		thr = res.Throughput
		abort = res.Tx.AbortRate() * 100
	}
	b.ReportMetric(thr, "vtx/s")
	b.ReportMetric(abort, "abort%")
}

// BenchmarkFig4 covers Figure 4 and Table 3: the three structures under
// the write-dominated workload.
func BenchmarkFig4(b *testing.B) {
	for _, kind := range intset.Kinds() {
		for _, name := range allocators {
			for _, threads := range []int{1, 8} {
				b.Run(fmt.Sprintf("%s/%s/p=%d", kind, name, threads), func(b *testing.B) {
					intsetBench(b, kind, name, threads, 0)
				})
			}
		}
	}
}

// BenchmarkTab4 is the linked-list abort/L1 characterization point (2
// threads, where the allocator separation is cleanest).
func BenchmarkTab4(b *testing.B) {
	for _, name := range allocators {
		b.Run(name, func(b *testing.B) {
			var abort, l1 float64
			for i := 0; i < b.N; i++ {
				res, err := intset.Run(intset.Config{
					Kind:         intset.LinkedList,
					Allocator:    name,
					Threads:      2,
					InitialSize:  1024,
					KeyRange:     2048,
					UpdatePct:    60,
					OpsPerThread: 200,
				})
				if err != nil {
					b.Fatal(err)
				}
				abort = res.Tx.AbortRate() * 100
				l1 = res.L1Miss * 100
			}
			b.ReportMetric(abort, "abort%")
			b.ReportMetric(l1, "L1miss%")
		})
	}
}

// BenchmarkFig6 compares shift 4 against shift 5 on the linked list.
func BenchmarkFig6(b *testing.B) {
	for _, name := range allocators {
		for _, shift := range []uint{4, 5} {
			b.Run(fmt.Sprintf("%s/shift=%d", name, shift), func(b *testing.B) {
				intsetBench(b, intset.LinkedList, name, 8, shift)
			})
		}
	}
}

// BenchmarkTab5 runs the instrumented sequential characterization.
func BenchmarkTab5(b *testing.B) {
	for _, app := range stamp.Names() {
		b.Run(app, func(b *testing.B) {
			var txAllocs float64
			for i := 0; i < b.N; i++ {
				res, err := stamp.Run(stamp.Config{App: app, Allocator: "tbb", Threads: 1, Profile: true})
				if err != nil {
					b.Fatal(err)
				}
				txAllocs = float64(res.Profile.Mallocs[stamp.RegionTx])
			}
			b.ReportMetric(txAllocs, "tx-allocs")
		})
	}
}

// BenchmarkFig7 covers Figure 7 and Table 6: STAMP execution time per
// allocator.
func BenchmarkFig7(b *testing.B) {
	for _, app := range []string{"bayes", "genome", "intruder", "labyrinth", "vacation", "yada"} {
		for _, name := range allocators {
			b.Run(fmt.Sprintf("%s/%s/p=8", app, name), func(b *testing.B) {
				var vms, abort float64
				for i := 0; i < b.N; i++ {
					res, err := stamp.Run(stamp.Config{App: app, Allocator: name, Threads: 8})
					if err != nil {
						b.Fatal(err)
					}
					vms = res.Seconds * 1e3
					abort = res.Tx.AbortRate() * 100
				}
				b.ReportMetric(vms, "vms")
				b.ReportMetric(abort, "abort%")
			})
		}
	}
}

// BenchmarkFig8 measures the Genome and Yada scaling endpoints used for
// the speedup curves.
func BenchmarkFig8(b *testing.B) {
	for _, app := range []string{"genome", "yada"} {
		for _, name := range allocators {
			for _, threads := range []int{1, 8} {
				b.Run(fmt.Sprintf("%s/%s/p=%d", app, name, threads), func(b *testing.B) {
					var vms float64
					for i := 0; i < b.N; i++ {
						res, err := stamp.Run(stamp.Config{App: app, Allocator: name, Threads: threads})
						if err != nil {
							b.Fatal(err)
						}
						vms = res.Seconds * 1e3
					}
					b.ReportMetric(vms, "vms")
				})
			}
		}
	}
}

// BenchmarkTab7 compares runs with the STM-level transactional object
// cache on and off.
func BenchmarkTab7(b *testing.B) {
	for _, app := range []string{"genome", "intruder", "vacation", "yada"} {
		for _, name := range allocators {
			for _, cached := range []bool{false, true} {
				label := "off"
				if cached {
					label = "on"
				}
				b.Run(fmt.Sprintf("%s/%s/cache=%s", app, name, label), func(b *testing.B) {
					var vms float64
					for i := 0; i < b.N; i++ {
						res, err := stamp.Run(stamp.Config{
							App: app, Allocator: name, Threads: 8, CacheTx: cached,
						})
						if err != nil {
							b.Fatal(err)
						}
						vms = res.Seconds * 1e3
					}
					b.ReportMetric(vms, "vms")
				})
			}
		}
	}
}
