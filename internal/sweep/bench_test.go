package sweep

import (
	"fmt"
	"testing"
)

// BenchmarkSchedulerPayloadCells measures scheduler overhead — dedup,
// deque churn, payload marshalling — over trivially cheap cells, so
// the cell bodies contribute almost nothing to the figure.
func BenchmarkSchedulerPayloadCells(b *testing.B) {
	cells := make([]Cell, 64)
	for i := range cells {
		cells[i] = payloadCell(fmt.Sprintf("c%d", i), uint64(i+1), fmt.Sprintf("v%d", i))
	}
	s := &Scheduler{Jobs: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(cells)
	}
}

// BenchmarkCellHash measures the config-hash identity function that
// every cache probe pays.
func BenchmarkCellHash(b *testing.B) {
	c := payloadCell("bench", 7, "value")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Hash() == "" {
			b.Fatal("empty hash")
		}
	}
}
