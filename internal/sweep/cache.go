package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// cacheSchema identifies the on-disk cell entry layout.
const cacheSchema = "tmrepro/cell/v1"

// entry is the on-disk form of one finished cell. Key, seed, version
// and spec are stored alongside the payload so a hash collision (or a
// hand-edited file) is detected instead of silently trusted, and so
// `ls`+`cat` on the cache directory is self-explanatory.
type entry struct {
	Schema  string          `json:"schema"`
	Version string          `json:"version"`
	Key     string          `json:"key"`
	Seed    uint64          `json:"seed"`
	Spec    json.RawMessage `json:"spec"`
	Payload json.RawMessage `json:"payload"`
}

// Cache memoizes finished cells under dir, one JSON file per cell
// hash, fanned out over 256 subdirectories. Concurrent writers are
// safe: files land via write-to-temp + rename, and distinct cells
// never share a path. A nil *Cache disables caching.
type Cache struct {
	dir string
}

// OpenCache creates (if needed) and returns the cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: open cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root ("" on a nil cache).
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

func (c *Cache) path(hash string) string {
	return filepath.Join(c.dir, hash[:2], hash+".json")
}

// Get returns the cached payload for the cell, if present and intact.
// Any read, decode or identity mismatch is a miss — the cell reruns
// and overwrites the bad entry.
func (c *Cache) Get(cell *Cell) (json.RawMessage, bool) {
	if c == nil {
		return nil, false
	}
	data, err := os.ReadFile(c.path(cell.Hash()))
	if err != nil {
		return nil, false
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false
	}
	if e.Schema != cacheSchema || e.Version != Version ||
		e.Key != cell.Key || e.Seed != cell.Seed || string(e.Spec) != string(cell.Spec) {
		return nil, false
	}
	return e.Payload, true
}

// Put stores a finished cell's payload.
func (c *Cache) Put(cell *Cell, payload json.RawMessage) error {
	if c == nil {
		return nil
	}
	e := entry{
		Schema:  cacheSchema,
		Version: Version,
		Key:     cell.Key,
		Seed:    cell.Seed,
		Spec:    cell.Spec,
		Payload: payload,
	}
	data, err := json.Marshal(&e)
	if err != nil {
		return fmt.Errorf("sweep: encode cache entry %s: %w", cell.Key, err)
	}
	path := c.path(cell.Hash())
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("sweep: cache write: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".cell-*")
	if err != nil {
		return fmt.Errorf("sweep: cache write: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache write: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache write: %w", err)
	}
	return nil
}
