package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/heapscope"
	"repro/internal/obs"
	"repro/internal/prof"
)

// Scheduler executes cells on a bounded pool of host goroutines with
// work stealing. The zero value runs serially with no cache.
type Scheduler struct {
	Jobs  int    // goroutine pool width; <= 1 executes serially on the calling goroutine
	Cache *Cache // finished-cell memoization; nil disables
}

// Stats summarizes one Run: how the sweep executed. Cells/Unique/
// Executed/Cached are deterministic for a given cache state; Stolen,
// Wall and CellWall depend on host timing and are reported only here
// and in the Prometheus exposition — never inside run records, which
// must stay byte-identical across pool widths.
type Stats struct {
	Cells    int // cells submitted
	Unique   int // after config-hash deduplication
	Executed int // unique cells actually run
	Cached   int // unique cells served from the cache
	Errors   int // unique cells that failed
	Stolen   int // executed cells taken from another worker's deque
	CacheErr int // cache write failures (the run itself still succeeds)
	Jobs     int // pool width used

	Wall     time.Duration // whole-sweep host time
	CellWall time.Duration // summed per-cell host time
}

// Speedup estimates the pool's wall-clock win: summed cell time over
// sweep time (1.0 when serial; approaches Jobs under perfect scaling).
func (s Stats) Speedup() float64 {
	if s.Wall <= 0 {
		return 1
	}
	return float64(s.CellWall) / float64(s.Wall)
}

func (s Stats) String() string {
	return fmt.Sprintf("%d cells (%d unique): %d executed, %d cached, %d stolen, %d failed; jobs=%d wall=%v speedup=%.2fx",
		s.Cells, s.Unique, s.Executed, s.Cached, s.Stolen, s.Errors, s.Jobs, s.Wall.Round(time.Millisecond), s.Speedup())
}

// WritePrometheus renders the scheduler stats as their own metric
// block. These are host-execution metrics (pool width, stealing, wall
// time), so the block is deterministic only in its deterministic
// members; it is appended to -metrics output, never attached to run
// records.
func (s Stats) WritePrometheus(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("# TYPE sweep_cells_total counter\nsweep_cells_total %d\n", s.Cells)
	p("# TYPE sweep_cells_unique_total counter\nsweep_cells_unique_total %d\n", s.Unique)
	p("# TYPE sweep_cells_executed_total counter\nsweep_cells_executed_total %d\n", s.Executed)
	p("# TYPE sweep_cells_cached_total counter\nsweep_cells_cached_total %d\n", s.Cached)
	p("# TYPE sweep_cells_stolen_total counter\nsweep_cells_stolen_total %d\n", s.Stolen)
	p("# TYPE sweep_cells_failed_total counter\nsweep_cells_failed_total %d\n", s.Errors)
	p("# TYPE sweep_pool_jobs gauge\nsweep_pool_jobs %d\n", s.Jobs)
	p("# TYPE sweep_wall_seconds gauge\nsweep_wall_seconds %g\n", s.Wall.Seconds())
	p("# TYPE sweep_cell_wall_seconds gauge\nsweep_cell_wall_seconds %g\n", s.CellWall.Seconds())
	p("# TYPE sweep_speedup_ratio gauge\nsweep_speedup_ratio %g\n", s.Speedup())
	return err
}

// deque is one worker's lock-protected work queue of unique-cell
// indices. The owner pops from the front; thieves take from the back,
// so a steal grabs the work the owner would reach last.
type deque struct {
	mu    sync.Mutex
	items []int
}

func (d *deque) popFront() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return 0, false
	}
	idx := d.items[0]
	d.items = d.items[1:]
	return idx, true
}

func (d *deque) popBack() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return 0, false
	}
	idx := d.items[len(d.items)-1]
	d.items = d.items[:len(d.items)-1]
	return idx, true
}

// Run executes every cell and returns outcomes in cell-index order —
// the scheduler owns *when and where* cells run, never *what they
// mean*, so callers reduce the outcome slice exactly as a serial loop
// would. Duplicate cells (equal hashes) execute once and share one
// outcome (including the Delta pointer: callers merging observability
// must apply each distinct Delta once).
func (s *Scheduler) Run(cells []Cell) ([]Outcome, Stats) {
	//tmvet:allow nodeterm: Stats.Wall measures host scheduling efficiency; it never reaches cell hashes or run-record result bytes
	start := time.Now()
	stats := Stats{Cells: len(cells), Jobs: s.Jobs}
	if stats.Jobs < 1 {
		stats.Jobs = 1
	}

	// Deduplicate by hash, keeping first-occurrence order.
	uniq := make([]*Cell, 0, len(cells))
	uniqOf := make([]int, len(cells))
	byHash := make(map[string]int, len(cells))
	for i := range cells {
		h := (&cells[i]).Hash()
		u, ok := byHash[h]
		if !ok {
			u = len(uniq)
			byHash[h] = u
			uniq = append(uniq, &cells[i])
		}
		uniqOf[i] = u
	}
	stats.Unique = len(uniq)

	results := make([]Outcome, len(uniq))
	var cellWall int64 // summed per-cell nanoseconds, mutated under mu below

	if stats.Jobs == 1 || len(uniq) <= 1 {
		for u, c := range uniq {
			t0 := time.Now() //tmvet:allow nodeterm: per-cell host time feeds the stderr speedup line only
			results[u] = s.execute(c, false, &stats)
			cellWall += int64(time.Since(t0)) //tmvet:allow nodeterm: per-cell host time feeds the stderr speedup line only
		}
	} else {
		deques := make([]*deque, stats.Jobs)
		for w := range deques {
			deques[w] = &deque{}
		}
		for u := range uniq {
			w := u % stats.Jobs
			deques[w].items = append(deques[w].items, u)
		}
		var mu sync.Mutex // guards stats counters and cellWall
		var wg sync.WaitGroup
		for w := 0; w < stats.Jobs; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					u, stolen, ok := next(deques, w)
					if !ok {
						return
					}
					t0 := time.Now() //tmvet:allow nodeterm: per-cell host time feeds the stderr speedup line only
					out := s.executeLocked(uniq[u], stolen, &stats, &mu)
					results[u] = out
					mu.Lock()
					cellWall += int64(time.Since(t0)) //tmvet:allow nodeterm: per-cell host time feeds the stderr speedup line only
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait()
	}

	stats.CellWall = time.Duration(cellWall)
	stats.Wall = time.Since(start) //tmvet:allow nodeterm: whole-sweep host time for the stderr stats line; results are pure virtual time
	outs := make([]Outcome, len(cells))
	for i, u := range uniqOf {
		outs[i] = results[u]
	}
	return outs, stats
}

// next takes the worker's own front item, or steals from the back of
// the first other non-empty deque.
func next(deques []*deque, w int) (idx int, stolen, ok bool) {
	if idx, ok := deques[w].popFront(); ok {
		return idx, false, true
	}
	for off := 1; off < len(deques); off++ {
		if idx, ok := deques[(w+off)%len(deques)].popBack(); ok {
			return idx, true, true
		}
	}
	return 0, false, false
}

// executeLocked is execute with stats mutation serialized for the
// parallel path.
func (s *Scheduler) executeLocked(c *Cell, stolen bool, stats *Stats, mu *sync.Mutex) Outcome {
	out := s.run(c, stolen)
	mu.Lock()
	s.account(out, stats)
	mu.Unlock()
	return out
}

// execute runs one cell on the calling goroutine (serial path).
func (s *Scheduler) execute(c *Cell, stolen bool, stats *Stats) Outcome {
	out := s.run(c, stolen)
	s.account(out, stats)
	return out
}

func (s *Scheduler) account(out Outcome, stats *Stats) {
	switch {
	case out.Err != nil:
		stats.Errors++
	case out.Cached:
		stats.Cached++
	default:
		stats.Executed++
		if out.Stolen {
			stats.Stolen++
		}
	}
	if out.cacheErr {
		stats.CacheErr++
	}
}

func (s *Scheduler) run(c *Cell, stolen bool) (out Outcome) {
	out = Outcome{Key: c.Key, Hash: c.Hash(), Stolen: stolen}
	if payload, ok := s.Cache.Get(c); ok {
		out.Payload = payload
		out.Cached = true
		out.Stolen = false
		return out
	}
	payload, delta, profile, heap, err := runRecovered(c)
	if err != nil {
		out.Err = err
		return out
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		out.Err = fmt.Errorf("sweep: encode cell %s payload: %w", c.Key, err)
		return out
	}
	out.Payload = raw
	out.Delta = delta
	out.Profile = profile
	out.Heap = heap
	// Observed, profiled or heap-watched cells are never cached: a cache
	// hit could not replay the trace, the cycle attribution or the heap
	// series. Callers enforce that by not configuring a Cache, but keep
	// the invariant locally too.
	if delta == nil && profile == nil && heap == nil {
		if err := s.Cache.Put(c, raw); err != nil {
			out.cacheErr = true
		}
	}
	return out
}

// runRecovered invokes the cell with panic capture: a cell that blows
// up (a harness bug, an injected fault tripping an unguarded path)
// fails alone instead of tearing down the whole sweep.
func runRecovered(c *Cell) (payload any, delta *obs.Delta, profile *prof.Profile, heap *heapscope.Series, err error) {
	defer func() {
		if r := recover(); r != nil {
			payload, delta, profile, heap = nil, nil, nil, nil
			err = fmt.Errorf("sweep: cell %s panicked: %v", c.Key, r)
		}
	}()
	return c.Run()
}
