package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/heapscope"
	"repro/internal/obs"
	"repro/internal/prof"
)

func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(1, "a") == DeriveSeed(1, "b") {
		t.Error("different keys must derive different seeds")
	}
	if DeriveSeed(1, "a") == DeriveSeed(2, "a") {
		t.Error("different base seeds must derive different seeds")
	}
	if DeriveSeed(1, "a") != DeriveSeed(1, "a") {
		t.Error("derivation must be deterministic")
	}
	if DeriveSeed(0x9a9e7, "exp/rep0") == 0 {
		t.Error("derived seed must never be zero (workloads treat 0 as 'use default')")
	}
	// Rep index in the key separates repetition seeds.
	if DeriveSeed(7, "cfg/r0") == DeriveSeed(7, "cfg/r1") {
		t.Error("per-rep keys must derive distinct seeds")
	}
}

func TestCellHashIdentity(t *testing.T) {
	mk := func(key, spec string, seed uint64) *Cell {
		return &Cell{Key: key, Spec: json.RawMessage(spec), Seed: seed}
	}
	base := mk("k", `{"a":1}`, 3).Hash()
	if got := mk("k", `{"a":1}`, 3).Hash(); got != base {
		t.Error("identical cells must hash identically")
	}
	for name, c := range map[string]*Cell{
		"key":  mk("k2", `{"a":1}`, 3),
		"spec": mk("k", `{"a":2}`, 3),
		"seed": mk("k", `{"a":1}`, 4),
	} {
		if c.Hash() == base {
			t.Errorf("changing the %s must change the hash", name)
		}
	}
}

func payloadCell(key string, seed uint64, v string) Cell {
	return Cell{
		Key:  key,
		Spec: json.RawMessage(fmt.Sprintf(`{"v":%q}`, v)),
		Seed: seed,
		Run: func() (any, *obs.Delta, *prof.Profile, *heapscope.Series, error) {
			return map[string]string{"v": v}, nil, nil, nil, nil
		},
	}
}

func TestCacheHitMissInvalidation(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cell := payloadCell("k", 1, "x")
	if _, ok := c.Get(&cell); ok {
		t.Fatal("empty cache must miss")
	}
	if err := c.Put(&cell, json.RawMessage(`{"v":"x"}`)); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(&cell)
	if !ok || string(got) != `{"v":"x"}` {
		t.Fatalf("cache hit = %q, %v; want the stored payload", got, ok)
	}

	// A spec change and a seed change each produce a different hash, so
	// the old entry is simply not found.
	specChanged := payloadCell("k", 1, "y")
	if _, ok := c.Get(&specChanged); ok {
		t.Error("changed spec must miss")
	}
	seedChanged := payloadCell("k", 2, "x")
	if _, ok := c.Get(&seedChanged); ok {
		t.Error("changed seed must miss")
	}

	// A version bump invalidates entries that *do* collide on path:
	// rewrite the stored entry claiming an older cell-schema version.
	path := filepath.Join(dir, cell.Hash()[:2], cell.Hash()+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	stale := strings.Replace(string(data), Version, "tmrepro-cells/v0", 1)
	if stale == string(data) {
		t.Fatalf("entry %s does not embed the version string", path)
	}
	if err := os.WriteFile(path, []byte(stale), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(&cell); ok {
		t.Error("an entry recorded under another code version must miss")
	}

	// Corruption is a miss, not an error.
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(&cell); ok {
		t.Error("a corrupt entry must miss")
	}

	// Nil cache is inert.
	var nilCache *Cache
	if _, ok := nilCache.Get(&cell); ok {
		t.Error("nil cache must miss")
	}
	if err := nilCache.Put(&cell, got); err != nil {
		t.Error("nil cache Put must be a no-op:", err)
	}
}

func TestSchedulerOrderAndDedup(t *testing.T) {
	var executed atomic.Int64
	mk := func(key string, v string) Cell {
		return Cell{
			Key:  key,
			Spec: json.RawMessage(fmt.Sprintf(`{"v":%q}`, v)),
			Run: func() (any, *obs.Delta, *prof.Profile, *heapscope.Series, error) {
				executed.Add(1)
				return v, nil, nil, nil, nil
			},
		}
	}
	// c0 and c2 are the same cell (same key/spec/seed): the scheduler
	// must run it once and fan the outcome to both positions.
	cells := []Cell{mk("a", "A"), mk("b", "B"), mk("a", "A"), mk("c", "C")}
	for _, jobs := range []int{1, 4} {
		executed.Store(0)
		s := &Scheduler{Jobs: jobs}
		outs, stats := s.Run(cells)
		if executed.Load() != 3 {
			t.Errorf("jobs=%d: executed %d closures, want 3 (dedup)", jobs, executed.Load())
		}
		if stats.Cells != 4 || stats.Unique != 3 || stats.Executed != 3 {
			t.Errorf("jobs=%d: stats = %+v, want 4 cells / 3 unique / 3 executed", jobs, stats)
		}
		var got []string
		for _, o := range outs {
			var v string
			if err := json.Unmarshal(o.Payload, &v); err != nil {
				t.Fatal(err)
			}
			got = append(got, v)
		}
		if want := []string{"A", "B", "A", "C"}; !reflect.DeepEqual(got, want) {
			t.Errorf("jobs=%d: outcomes %v, want %v (cell order)", jobs, got, want)
		}
		if outs[0].Hash != outs[2].Hash {
			t.Errorf("jobs=%d: duplicate cells must share a hash", jobs)
		}
	}
}

func TestSchedulerPanicIsolation(t *testing.T) {
	cells := []Cell{
		payloadCell("ok", 1, "fine"),
		{Key: "boom", Spec: json.RawMessage(`{}`),
			Run: func() (any, *obs.Delta, *prof.Profile, *heapscope.Series, error) { panic("injected") }},
	}
	s := &Scheduler{Jobs: 4}
	outs, stats := s.Run(cells)
	if outs[0].Err != nil {
		t.Error("healthy cell must survive a sibling's panic:", outs[0].Err)
	}
	if outs[1].Err == nil || !strings.Contains(outs[1].Err.Error(), "panicked") {
		t.Errorf("panicking cell error = %v, want a captured panic", outs[1].Err)
	}
	if stats.Errors != 1 {
		t.Errorf("stats.Errors = %d, want 1", stats.Errors)
	}
}

func TestSchedulerCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cells := []Cell{payloadCell("a", 1, "A"), payloadCell("b", 2, "B")}
	s := &Scheduler{Jobs: 2, Cache: c}
	first, st1 := s.Run(cells)
	if st1.Executed != 2 || st1.Cached != 0 {
		t.Fatalf("cold run stats = %+v, want 2 executed", st1)
	}
	second, st2 := s.Run(cells)
	if st2.Executed != 0 || st2.Cached != 2 {
		t.Fatalf("warm run stats = %+v, want 2 cached", st2)
	}
	for i := range cells {
		if string(first[i].Payload) != string(second[i].Payload) {
			t.Errorf("cell %d: cached payload differs from executed payload", i)
		}
		if !second[i].Cached {
			t.Errorf("cell %d: outcome not marked cached", i)
		}
	}
}

// TestSchedulerObservedCellsNotCached pins the invariant that a cell
// returning a trace delta is never written to the cache: replaying a
// hit could not reproduce the events.
func TestSchedulerObservedCellsNotCached(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New(obs.Config{})
	cell := Cell{
		Key:  "observed",
		Spec: json.RawMessage(`{}`),
		Run: func() (any, *obs.Delta, *prof.Profile, *heapscope.Series, error) {
			return "v", rec.Delta(), nil, nil, nil
		},
	}
	s := &Scheduler{Jobs: 1, Cache: c}
	s.Run([]Cell{cell})
	if _, ok := c.Get(&cell); ok {
		t.Error("a cell that returned a delta must not be cached")
	}
}

// TestSchedulerStress drives many cheap cells through a wide pool; with
// -race this exercises the deque/steal paths for data races.
func TestSchedulerStress(t *testing.T) {
	const n = 256
	cells := make([]Cell, n)
	for i := range cells {
		cells[i] = payloadCell(fmt.Sprintf("c%d", i), uint64(i+1), fmt.Sprintf("v%d", i))
	}
	s := &Scheduler{Jobs: 8}
	outs, stats := s.Run(cells)
	if stats.Executed != n || stats.Errors != 0 {
		t.Fatalf("stats = %+v, want %d executed", stats, n)
	}
	for i, o := range outs {
		var v map[string]string
		if err := json.Unmarshal(o.Payload, &v); err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("v%d", i); v["v"] != want {
			t.Errorf("cell %d: payload %q, want %q", i, v["v"], want)
		}
	}
}
