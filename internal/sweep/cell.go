// Package sweep runs experiment sweeps as independent cells on a
// bounded pool of host goroutines with work stealing, and memoizes
// finished cells in an on-disk cache keyed by a canonical config hash.
//
// A cell is one (configuration, repetition) point of an experiment's
// cross product — one simulated workload run. Every cell carries its
// own derived seed and builds its own simulation world (memory space,
// virtual-time engine, STM, allocator, fault plan, recorder), so cells
// share no mutable state and can execute in any order on any goroutine
// while producing byte-identical results: the scheduler returns
// outcomes in cell-index order no matter which worker finished what
// when, and reducers consume them in that order.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/heapscope"
	"repro/internal/obs"
	"repro/internal/prof"
)

// Version is the code-relevant version folded into every cell hash.
// Bump it whenever a change to the simulation substrate (allocators,
// STM, vtime costs, workloads) alters what a cell would produce, so
// stale cache entries miss instead of resurfacing old results.
const Version = "tmrepro-cells/v1"

// Cell is one independent unit of work: a pure function of its spec
// and seed.
type Cell struct {
	// Key canonically names the workload configuration, e.g.
	// "intset/ll/glibc/t4/u60/.../r0". Cells with equal hashes (key,
	// spec, seed, version) are deduplicated by the scheduler: shared
	// configurations across experiments execute once.
	Key string
	// Spec is the canonical JSON encoding of the full cell
	// configuration; it feeds the cache hash, so any config change
	// invalidates the cached result.
	Spec json.RawMessage
	// Seed is the cell's derived seed (hashed too).
	Seed uint64
	// Run executes the cell and returns a JSON-serializable payload
	// plus the cell's private observability delta, cycle-attribution
	// profile and allocator-state telemetry series (each nil when the
	// run was unobserved/unprofiled/unwatched).
	Run func() (payload any, delta *obs.Delta, profile *prof.Profile, heap *heapscope.Series, err error)

	hash string
}

// Hash returns the cell's cache identity: SHA-256 over the code
// version, key, seed and canonical spec. Memoized.
func (c *Cell) Hash() string {
	if c.hash == "" {
		h := sha256.New()
		fmt.Fprintf(h, "%s\x00%s\x00%d\x00", Version, c.Key, c.Seed)
		h.Write(c.Spec)
		c.hash = hex.EncodeToString(h.Sum(nil))
	}
	return c.hash
}

// CellSetHash condenses a slice of cells into one hash — the identity
// of a whole experiment's decomposition, carried in run records.
func CellSetHash(cells []Cell) string {
	h := sha256.New()
	for i := range cells {
		fmt.Fprintf(h, "%s\n", (&cells[i]).Hash())
	}
	return hex.EncodeToString(h.Sum(nil))
}

// DeriveSeed mixes a base seed with a cell key into the cell's own
// seed (splitmix64 over an FNV-1a digest of the key). Two cells with
// different keys get uncorrelated streams; the same (base, key) always
// derives the same seed, which is what makes parallel and serial runs
// byte-identical.
func DeriveSeed(base uint64, key string) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	z := base ^ h
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = fnvPrime
	}
	return z
}

// Outcome is one cell's result, in cell-index order.
type Outcome struct {
	Key     string
	Hash    string
	Payload json.RawMessage
	Delta   *obs.Delta        // nil for cached or unobserved cells
	Profile *prof.Profile     // nil for cached or unprofiled cells
	Heap    *heapscope.Series // nil for cached or unwatched cells
	Cached  bool              // served from the on-disk cache
	Stolen  bool              // executed by a worker that stole it from another's deque
	Err     error             // execution or (de)serialization failure

	cacheErr bool // the payload could not be written back to the cache
}
