package pmem

import (
	"sort"

	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/vtime"
)

// Recovery. After a crash the volatile machine is gone: every line the
// run ever stored reverts to its durable image (or zero — persistent
// memory maps in zeroed, and an unflushed line never overwrote that).
// Recovery then replays committed-untruncated redo logs, discards torn
// ones, hands the journaled block truth to the allocator's RecoverHeap
// repair pass, and sweeps the invariants the paper's durable twin
// cares about: no committed write lost, no freed block resurrected,
// every rebuilt free chain closed, shadow map consistent. The verdict
// lands in run records as obs.RecoveryInfo.

// Info summarizes the durable layer for a run that completed without a
// crash (traffic counters only, verdict "ok").
func (p *Pmem) Info() *obs.RecoveryInfo {
	return &obs.RecoveryInfo{
		Verdict:    obs.StatusOK,
		Crashed:    p.crashed,
		CrashCycle: p.crashCycle,
		CrashPhase: p.crashPhase,
		Flushes:    p.stats.Flushes,
		Fences:     p.stats.Fences,
		LogAppends: p.stats.LogAppends,
		MetaRecs:   p.stats.MetaRecs,
	}
}

// Recover brings the heap back after a crash and verifies it: revert to
// the durable image, replay the redo log, rebuild allocator metadata,
// sweep invariants. th must be a fresh post-crash thread (vtime Solo
// region) and a the allocator instance whose layout constants recovery
// repairs against. Without a prior crash it reduces to Info(). The
// returned RecoveryInfo carries the verdict: "failed" when a durability
// invariant broke (lost committed writes, resurrected blocks),
// "degraded" when metadata repair left caveats (open chains, shadow
// disagreement, or an allocator without a recovery pass), "ok"
// otherwise.
func (p *Pmem) Recover(th *vtime.Thread, a alloc.Allocator) *obs.RecoveryInfo {
	info := p.Info()
	if !p.crashed {
		return info
	}
	p.recovering = true
	defer func() { p.recovering = false }()

	p.applyCrash(th)
	info.TornLogs = p.tornLogs
	info.Replayed = p.replay(th)

	st := p.recoverState()
	info.LiveBlocks = len(st.Live)

	// Resync the shadow map to journaled truth, in both directions.
	// Frees whose volatile hand-off the crash preempted (committed free,
	// finishCommit never ran) are re-announced through the normal
	// fan-out; repeats are ignored by contract. The reverse tear also
	// happens: a thread past the crash point can wind down through
	// finishCommit and mark a block freed in the shadow while the frozen
	// journal never saw its LogCommit — applyCrash reverted the heap
	// bytes, so the shadow must revert too.
	for _, b := range st.Freed {
		p.space.NoteFree(b.Base, th.ID(), th.Clock())
	}
	if sh := p.space.Sanitizer(); sh != nil {
		for _, b := range st.Live {
			if blk, ok := sh.BlockAt(b.Base); ok && blk.Freed {
				p.space.NoteReuse(b.Base, th.ID(), th.Clock())
			}
		}
	}

	rep, hasRecover := alloc.RecoverHeap(a, th, st)
	info.TornMeta = rep.TornMeta
	info.MetaWords = rep.MetaWords
	info.FreeBlocks = rep.FreeBlocks

	// Closure walk: every freed block must be reachable through exactly
	// one rebuilt chain, every chain must terminate. Chain nodes
	// translate to user bases through the model's NodeOffset.
	inFreed := st.FreedSet()
	visited := map[mem.Addr]struct{}{}
	member := func(node mem.Addr) bool {
		user := node + mem.Addr(rep.NodeOffset)
		if !inFreed(user) {
			return false
		}
		if _, dup := visited[user]; dup {
			return false
		}
		visited[user] = struct{}{}
		return true
	}
	for _, head := range rep.Heads {
		if _, ok := alloc.WalkChain(th, head, member, len(st.Freed)+1); !ok {
			info.ChainBreaks++
		}
	}
	// A freed block absent from every chain is resurrection risk: the
	// rebuilt metadata no longer tracks it as free.
	info.Resurrected = len(st.Freed) - len(visited)

	info.LostWrites = p.sweepOracle(th, st)
	info.ShadowBad = p.sweepShadow(st)

	// Recovery's own writes (revert, replay, metadata repair) become the
	// new durable baseline.
	p.Checkpoint(th)
	info.Flushes = p.stats.Flushes
	info.Fences = p.stats.Fences
	info.LogAppends = p.stats.LogAppends

	switch {
	case info.LostWrites > 0 || info.Resurrected > 0:
		info.Verdict = obs.StatusFailed
	case info.ChainBreaks > 0 || info.ShadowBad > 0 || !hasRecover:
		info.Verdict = obs.StatusDegraded
	default:
		info.Verdict = obs.StatusOK
	}
	return info
}

// applyCrash reverts every touched line to its durable image. Lines no
// fence ever captured revert to zero — pmem maps in zeroed and an
// unflushed line never durably left that state.
func (p *Pmem) applyCrash(th *vtime.Thread) {
	lines := make([]mem.Addr, 0, len(p.touched))
	for l := range p.touched {
		lines = append(lines, l)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	var zero line
	for _, l := range lines {
		img := p.durable[l]
		if img == nil {
			img = &zero
		}
		for i := 0; i < LineWords; i++ {
			th.Store(l+mem.Addr(i*8), img[i])
		}
	}
	p.pending = map[mem.Addr]struct{}{}
}

// replay re-applies every committed-untruncated redo log in commit
// order and truncates them; torn logs are discarded. Returns how many
// logs replayed.
func (p *Pmem) replay(th *vtime.Thread) int {
	sort.Slice(p.committed, func(i, j int) bool { return p.committed[i].seq < p.committed[j].seq })
	n := len(p.committed)
	for _, lg := range p.committed {
		for _, r := range lg.recs {
			if r.op == opStore {
				th.Store(r.addr, r.val)
			}
		}
	}
	p.committed = nil
	p.active = map[int]*txLog{}
	p.applying = map[int]*txLog{}
	return n
}

// recoverState snapshots the journaled block truth: live blocks keep
// their committed contents, freed and pending blocks (the latter's
// allocating transaction never committed) go back to the free lists.
func (p *Pmem) recoverState() *alloc.RecoverState {
	st := &alloc.RecoverState{Meta: p.meta}
	bases := make([]mem.Addr, 0, len(p.blocks))
	for b := range p.blocks {
		bases = append(bases, b)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	for _, base := range bases {
		b := p.blocks[base]
		rb := alloc.RecordedBlock{Base: b.base, Req: b.req, Usable: b.usable}
		if b.state == blockLive {
			st.Live = append(st.Live, rb)
		} else {
			b.state = blockFreed // a pending block's tx never committed
			st.Freed = append(st.Freed, rb)
		}
	}
	return st
}

// sweepOracle checks every durably committed store against the
// recovered heap, skipping words inside freed blocks (their content is
// free-list property now). Returns the number of lost writes.
func (p *Pmem) sweepOracle(th *vtime.Thread, st *alloc.RecoverState) int {
	addrs := make([]mem.Addr, 0, len(p.oracle))
	for a := range p.oracle {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	lost := 0
	for _, a := range addrs {
		if inBlockRange(st.Freed, a) {
			continue
		}
		if th.Load(a) != p.oracle[a] {
			lost++
		}
	}
	return lost
}

// sweepShadow cross-checks the sanitizer shadow map (when attached)
// against the journaled truth: live blocks must shadow as live, freed
// blocks as freed. Returns the number of disagreements.
func (p *Pmem) sweepShadow(st *alloc.RecoverState) int {
	sh := p.space.Sanitizer()
	if sh == nil {
		return 0
	}
	bad := 0
	for _, b := range st.Live {
		if blk, ok := sh.BlockAt(b.Base); !ok || blk.Freed {
			bad++
		}
	}
	for _, b := range st.Freed {
		if blk, ok := sh.BlockAt(b.Base); !ok || !blk.Freed {
			bad++
		}
	}
	return bad
}

// inBlockRange reports whether a falls inside any block of the sorted
// slice (by usable extent).
func inBlockRange(blocks []alloc.RecordedBlock, a mem.Addr) bool {
	i := sort.Search(len(blocks), func(i int) bool { return blocks[i].Base > a })
	if i == 0 {
		return false
	}
	b := blocks[i-1]
	return a < b.Base+mem.Addr(b.Usable)
}
