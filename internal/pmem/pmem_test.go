package pmem

import (
	"testing"

	_ "repro/internal/alloc/glibc"
	_ "repro/internal/alloc/hoard"
	_ "repro/internal/alloc/tbb"
	_ "repro/internal/alloc/tcmalloc"

	"repro/internal/alloc"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/stm"
	"repro/internal/vtime"
)

func TestFenceSemantics(t *testing.T) {
	space := mem.NewSpace()
	p := Attach(space, nil)
	th := vtime.Solo(space, 0, nil)
	base := space.MustMap(mem.PageSize, 0)

	th.Store(base, 7)
	if len(p.dirty) != 1 {
		t.Fatalf("dirty lines = %d, want 1", len(p.dirty))
	}
	// A fence with nothing flushed persists nothing.
	p.Fence(th)
	if len(p.durable) != 0 {
		t.Fatalf("durable lines after bare fence = %d, want 0", len(p.durable))
	}
	// Flush alone persists nothing either (the line is still draining).
	p.Flush(th, base)
	if len(p.durable) != 0 {
		t.Fatalf("durable lines after flush without fence = %d, want 0", len(p.durable))
	}
	// A store after the flush is captured by the fence (generous-capture
	// semantics, safe direction).
	th.Store(base+8, 9)
	p.Fence(th)
	img := p.durable[lineOf(base)]
	if img == nil || img[0] != 7 || img[1] != 9 {
		t.Fatalf("durable image = %v, want [7 9 ...]", img)
	}
	if p.Stats().Flushes != 1 || p.Stats().Fences != 2 {
		t.Fatalf("stats = %+v, want 1 flush, 2 fences", p.Stats())
	}
}

func TestDurableRunWithoutCrash(t *testing.T) {
	space := mem.NewSpace()
	p := Attach(space, nil)
	s := stm.New(space, stm.Config{Durable: p})
	counter := space.MustMap(mem.PageSize, 0)
	e := vtime.NewEngine(space, 4, vtime.Config{})
	p.SetStopper(e)
	e.Run(func(th *vtime.Thread) {
		for i := 0; i < 100; i++ {
			s.Atomic(th, func(tx *stm.Tx) {
				tx.Store(counter, tx.Load(counter)+1)
			})
		}
	})
	if got := space.Load(counter); got != 400 {
		t.Fatalf("counter = %d, want 400", got)
	}
	// Every committed log must have been applied and truncated.
	if len(p.committed) != 0 || len(p.active) != 0 {
		t.Fatalf("logs leaked: %d committed, %d active", len(p.committed), len(p.active))
	}
	info := p.Info()
	if info.Verdict != obs.StatusOK || info.Crashed {
		t.Fatalf("info = %+v, want ok/uncrashed", info)
	}
	if info.Flushes == 0 || info.Fences == 0 || info.LogAppends == 0 {
		t.Fatalf("no durable traffic recorded: %+v", info)
	}
	// The durable image must hold the final counter value: the last
	// commit's LogApply flushed and fenced its line.
	img := p.durable[lineOf(counter)]
	if img == nil || img[0] != 400 {
		t.Fatalf("durable counter image = %v, want 400", img)
	}
}

// crashRun executes a small allocate/store/free workload under the
// given allocator and crash spec, then recovers on a solo thread.
func crashRun(t *testing.T, allocName, spec string) (*Pmem, *obs.RecoveryInfo) {
	t.Helper()
	space := mem.NewSpace()
	space.EnableSanitizer()
	plan, err := fault.Parse(spec, 42)
	if err != nil {
		t.Fatalf("parse %q: %v", spec, err)
	}
	p := Attach(space, plan)
	a, err := alloc.New(allocName, space, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !alloc.Journal(a, p) {
		t.Fatalf("%s does not journal metadata", allocName)
	}
	s := stm.New(space, stm.Config{Allocator: a, Durable: p})
	slots := space.MustMap(mem.PageSize, 0)
	e := vtime.NewEngine(space, 4, vtime.Config{})
	p.SetStopper(e)
	e.Run(func(th *vtime.Thread) {
		var live []mem.Addr
		for i := 0; i < 40; i++ {
			s.Atomic(th, func(tx *stm.Tx) {
				b := tx.Malloc(48)
				tx.Store(b, uint64(th.ID()*1000+i))
				tx.Store(slots+mem.Addr(th.ID()*8), uint64(b))
				live = append(live, b)
			})
			if len(live) > 4 {
				victim := live[0]
				live = live[1:]
				s.Atomic(th, func(tx *stm.Tx) {
					tx.Free(victim, 48)
				})
			}
		}
	})
	if !p.Crashed() {
		t.Fatalf("crash spec %q never fired", spec)
	}
	if !e.Stopped() {
		t.Fatal("engine not stopped by crash")
	}
	th := vtime.Solo(space, 0, nil)
	return p, p.Recover(th, a)
}

func TestCrashRecoveryMatrix(t *testing.T) {
	for _, name := range []string{"glibc", "hoard", "tbb", "tcmalloc"} {
		for _, phase := range []string{"commit", "apply", "malloc"} {
			t.Run(name+"/"+phase, func(t *testing.T) {
				_, info := crashRun(t, name, "crashphase:"+phase+"@5")
				if info.Verdict != obs.StatusOK {
					t.Fatalf("verdict = %q (%+v), want ok", info.Verdict, info)
				}
				if info.LostWrites != 0 || info.Resurrected != 0 || info.ChainBreaks != 0 || info.ShadowBad != 0 {
					t.Fatalf("invariants broken: %+v", info)
				}
				if info.CrashPhase != phase {
					t.Fatalf("crash phase = %q, want %q", info.CrashPhase, phase)
				}
				switch phase {
				case "commit":
					// The crashing transaction's log never got its marker.
					if info.TornLogs == 0 {
						t.Fatal("commit-phase crash produced no torn log")
					}
				case "apply":
					// The crashing transaction's log was committed but not
					// truncated.
					if info.Replayed == 0 {
						t.Fatal("apply-phase crash replayed no log")
					}
				}
			})
		}
	}
}

func TestRecoveryIsDeterministic(t *testing.T) {
	p1, i1 := crashRun(t, "glibc", "crash@5000")
	p2, i2 := crashRun(t, "glibc", "crash@5000")
	if *i1 != *i2 {
		t.Fatalf("recovery info differs across identical runs:\n%+v\n%+v", i1, i2)
	}
	if p1.crashCycle != p2.crashCycle {
		t.Fatalf("crash cycle differs: %d vs %d", p1.crashCycle, p2.crashCycle)
	}
}

func TestVerifierCatchesTamperedOracle(t *testing.T) {
	space := mem.NewSpace()
	plan, err := fault.Parse("crashphase:apply@5", 42)
	if err != nil {
		t.Fatal(err)
	}
	p := Attach(space, plan)
	a, err := alloc.New("glibc", space, 4)
	if err != nil {
		t.Fatal(err)
	}
	alloc.Journal(a, p)
	s := stm.New(space, stm.Config{Allocator: a, Durable: p})
	e := vtime.NewEngine(space, 4, vtime.Config{})
	p.SetStopper(e)
	e.Run(func(th *vtime.Thread) {
		for i := 0; i < 20; i++ {
			s.Atomic(th, func(tx *stm.Tx) {
				b := tx.Malloc(32)
				tx.Store(b, uint64(i+1))
			})
		}
	})
	if !p.Crashed() {
		t.Fatal("crash never fired")
	}
	// Sabotage: claim a committed store had a different value. The
	// invariant sweep must notice the heap no longer matches.
	tampered := false
	for addr, v := range p.oracle {
		p.oracle[addr] = v + 1
		tampered = true
		break
	}
	if !tampered {
		t.Fatal("no oracle entries to tamper with")
	}
	th := vtime.Solo(space, 0, nil)
	info := p.Recover(th, a)
	if info.LostWrites == 0 || info.Verdict != obs.StatusFailed {
		t.Fatalf("tampered oracle not detected: %+v", info)
	}
}

// TestFreedBlockNotResurrected is the quarantine/crash interaction: a
// transactionally freed block whose free has durably committed but
// whose reclamation (quarantine drain into the allocator free lists)
// never ran must come back FREED — linked into a rebuilt chain — not
// live, for every allocator model.
func TestFreedBlockNotResurrected(t *testing.T) {
	for _, name := range []string{"glibc", "hoard", "tbb", "tcmalloc"} {
		t.Run(name, func(t *testing.T) {
			space := mem.NewSpace()
			plan, err := fault.Parse("crashphase:apply@2", 42)
			if err != nil {
				t.Fatal(err)
			}
			p := Attach(space, plan)
			a, err := alloc.New(name, space, 1)
			if err != nil {
				t.Fatal(err)
			}
			alloc.Journal(a, p)
			s := stm.New(space, stm.Config{Allocator: a, Durable: p})
			e := vtime.NewEngine(space, 1, vtime.Config{})
			p.SetStopper(e)
			var block mem.Addr
			e.Run(func(th *vtime.Thread) {
				s.Atomic(th, func(tx *stm.Tx) {
					block = tx.Malloc(64)
					tx.Store(block, 0xdead)
				})
				// Apply checkpoint #2 fires inside this commit: the free's
				// redo log is durably committed, but finishCommit (the
				// quarantine hand-off) and the later reclaim never run.
				s.Atomic(th, func(tx *stm.Tx) {
					tx.Free(block, 64)
				})
			})
			if !p.Crashed() {
				t.Fatal("crash never fired")
			}
			if st := p.blocks[block].state; st != blockFreed {
				t.Fatalf("block journal state = %d, want freed", st)
			}
			th := vtime.Solo(space, 0, nil)
			info := p.Recover(th, a)
			if info.Verdict != obs.StatusOK {
				t.Fatalf("verdict = %q (%+v)", info.Verdict, info)
			}
			if info.Resurrected != 0 {
				t.Fatalf("freed block resurrected: %+v", info)
			}
			if info.FreeBlocks == 0 {
				t.Fatalf("freed block not linked into any rebuilt chain: %+v", info)
			}
			if info.LiveBlocks != 0 {
				t.Fatalf("live blocks = %d, want 0 (the only block was freed)", info.LiveBlocks)
			}
		})
	}
}
