package pmem

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/stm"
	"repro/internal/vtime"
)

// benchWorkload runs the standard allocate/store/free loop on a fresh
// space, durable when p is attached. It returns the space so callers
// can keep recovering against it.
func benchWorkload(durable bool, crashSpec string) (*mem.Space, *Pmem, alloc.Allocator, *vtime.Engine) {
	space := mem.NewSpace()
	var p *Pmem
	if durable {
		var plan *fault.Plan
		if crashSpec != "" {
			plan, _ = fault.Parse(crashSpec, 42)
		}
		p = Attach(space, plan)
	}
	a, _ := alloc.New("tcmalloc", space, 4)
	cfg := stm.Config{Allocator: a}
	if p != nil {
		alloc.Journal(a, p)
		cfg.Durable = p
	}
	s := stm.New(space, cfg)
	e := vtime.NewEngine(space, 4, vtime.Config{})
	if p != nil {
		p.SetStopper(e)
	}
	e.Run(func(th *vtime.Thread) {
		var live []mem.Addr
		for i := 0; i < 60; i++ {
			s.Atomic(th, func(tx *stm.Tx) {
				b := tx.Malloc(48)
				tx.Store(b, uint64(th.ID()*1000+i))
				live = append(live, b)
			})
			if len(live) > 4 {
				victim := live[0]
				live = live[1:]
				s.Atomic(th, func(tx *stm.Tx) {
					tx.Free(victim, 48)
				})
			}
		}
	})
	return space, p, a, e
}

// BenchmarkTxVolatile / BenchmarkTxDurable are the pmem-overhead pair:
// the identical transactional workload with the persistence domain off
// and on (redo logging, line flushes, fences, metadata journaling).
// The ratio is the host-side cost of durability bookkeeping; the
// virtual-cycle cost it prices is deterministic and asserted in tests.
func BenchmarkTxVolatile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchWorkload(false, "")
	}
}

func BenchmarkTxDurable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchWorkload(true, "")
	}
}

// BenchmarkCrashRecover measures a full crash→revert→replay→rebuild→
// verify cycle on top of the durable workload.
func BenchmarkCrashRecover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		space, p, a, _ := benchWorkload(true, "crashphase:apply@20")
		if !p.Crashed() {
			b.Fatal("crash never fired")
		}
		th := vtime.Solo(space, 0, nil)
		if info := p.Recover(th, a); info.Verdict == "" {
			b.Fatal("no verdict")
		}
	}
}
