package pmem

import (
	"sort"

	"repro/internal/mem"
	"repro/internal/vtime"
)

// Redo log. The STM populates one log per committing transaction —
// after its read set validated, before any write-back touches memory —
// then marks it committed (fence, marker, fence) and only then writes
// back. Post-write-back it flushes the written lines, fences, and
// truncates the log. Crash anywhere before the marker: the log is torn,
// recovery discards it and the transaction never happened. Crash after
// the marker but before the truncate: recovery replays the log (replay
// is idempotent — the records are absolute values, not deltas). The
// write-back loop itself carries no crash checkpoints, so a crash
// cannot observe a half-applied transaction except through the durable
// image, which replay repairs.
//
// The stm package drives these six methods through its DurableLog
// interface, satisfied structurally so stm never imports pmem.

type logOp uint8

const (
	opStore logOp = iota
	opAlloc
	opFree
)

type logRec struct {
	op   logOp
	addr mem.Addr
	val  uint64 // store value, or alloc/free request size
}

// txLog is one transaction's redo log.
type txLog struct {
	tid  int
	recs []logRec
	seq  uint64 // commit order, assigned at LogCommit
}

// LogBegin opens a redo log for the calling thread's committing
// transaction (one append for the header record).
func (p *Pmem) LogBegin(th *vtime.Thread) {
	if p.frozen() {
		return
	}
	p.active[th.ID()] = &txLog{tid: th.ID()}
	p.stats.LogAppends++
	th.Tick(th.Cost().LogAppend)
	p.crashPoint(th, "log")
}

// LogStore appends one write-set entry.
func (p *Pmem) LogStore(th *vtime.Thread, a mem.Addr, v uint64) {
	p.logRec(th, logRec{op: opStore, addr: a, val: v})
}

// LogAlloc appends one transactional-malloc record: the block at a
// becomes durably live when this log commits.
func (p *Pmem) LogAlloc(th *vtime.Thread, a mem.Addr, size uint64) {
	p.logRec(th, logRec{op: opAlloc, addr: a, val: size})
}

// LogFree appends one transactional-free record: the block at a
// becomes durably freed when this log commits, even if the crash
// preempts the volatile quarantine hand-off.
func (p *Pmem) LogFree(th *vtime.Thread, a mem.Addr, size uint64) {
	p.logRec(th, logRec{op: opFree, addr: a, val: size})
}

func (p *Pmem) logRec(th *vtime.Thread, r logRec) {
	if p.frozen() {
		return
	}
	lg := p.active[th.ID()]
	if lg == nil {
		return
	}
	lg.recs = append(lg.recs, r)
	p.stats.LogAppends++
	th.Tick(th.Cost().LogAppend)
	p.crashPoint(th, "log")
}

// LogCommit makes the log durable: fence the populated records, append
// the commit marker, fence the marker. The "commit" crash checkpoint
// sits between the first fence and the marker — a crash there leaves a
// fully populated but unmarked log, the torn-log discard path. Once the
// marker is durable the transaction's effects are applied to the
// host-side ground truth (oracle and block journal).
func (p *Pmem) LogCommit(th *vtime.Thread) {
	if p.frozen() {
		return
	}
	tid := th.ID()
	lg := p.active[tid]
	if lg == nil {
		return
	}
	th.Tick(th.Cost().FenceBase)
	p.stats.Fences++
	p.crashPoint(th, "commit")
	// Marker append + ordering fence; durable as a unit.
	p.stats.LogAppends++
	th.Tick(th.Cost().LogAppend + th.Cost().FenceBase)
	p.stats.Fences++
	lg.seq = p.seq
	p.seq++
	delete(p.active, tid)
	p.committed = append(p.committed, lg)
	p.applying[tid] = lg
	for _, r := range lg.recs {
		switch r.op {
		case opStore:
			p.oracle[r.addr] = r.val
		case opAlloc:
			if b := p.blocks[r.addr]; b != nil && b.state == blockPending {
				b.state = blockLive
			}
		case opFree:
			if b := p.blocks[r.addr]; b != nil {
				b.state = blockFreed
				p.dropOracleRange(r.addr, b.usable)
			}
		}
	}
}

// LogApply persists the written-back values (flush every stored line,
// fence) and truncates the log. The "apply" crash checkpoint sits after
// the fence and before the truncate — a crash there leaves a committed,
// untruncated log, the replay path (idempotent: the fence already made
// the data durable).
func (p *Pmem) LogApply(th *vtime.Thread) {
	if p.frozen() {
		return
	}
	tid := th.ID()
	lg := p.applying[tid]
	if lg == nil {
		return
	}
	seen := map[mem.Addr]struct{}{}
	lines := make([]mem.Addr, 0, len(lg.recs))
	for _, r := range lg.recs {
		if r.op != opStore {
			continue
		}
		l := lineOf(r.addr)
		if _, dup := seen[l]; !dup {
			seen[l] = struct{}{}
			lines = append(lines, l)
		}
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, l := range lines {
		p.Flush(th, l)
	}
	p.Fence(th)
	p.crashPoint(th, "apply")
	// Truncate record.
	delete(p.applying, tid)
	for i, c := range p.committed {
		if c == lg {
			p.committed = append(p.committed[:i], p.committed[i+1:]...)
			break
		}
	}
	p.stats.LogAppends++
	th.Tick(th.Cost().LogAppend)
}

// LogAbort discards the thread's populated-but-unmarked log (a foreign
// panic unwound the transaction between populate and marker).
func (p *Pmem) LogAbort(th *vtime.Thread) {
	if p.frozen() {
		return
	}
	delete(p.active, th.ID())
}
