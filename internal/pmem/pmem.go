// Package pmem models the simulated address space as persistent memory
// and makes transactions durable.
//
// The model follows the x86 persistence domain: a store becomes durable
// only after its cache line is written back (clwb, priced as
// CostModel.Flush) and the writeback is ordered by a fence (sfence,
// priced FenceBase plus FenceLine per draining line). pmem tracks every
// 64-byte line of the space through mem.PersistTracker: a store dirties
// its line, a flush moves the line into the draining set, and a fence
// captures the line's content into a host-side durable image. A
// deterministic crash (internal/fault crash clauses) discards
// everything volatile — the recovered heap is rebuilt from the durable
// image alone.
//
// Three durable structures ride on top of the line model:
//
//   - a per-thread redo log, appended during STM commit (populate →
//     fence → commit marker → fence → write back → flush → fence →
//     truncate). A log without its marker is torn and is discarded by
//     recovery; a marked log whose truncate record is missing is
//     replayed. The stm package drives it through its DurableLog
//     interface, which Pmem satisfies structurally.
//   - a block journal fed by the allocator-lifecycle fan-out
//     (OnHeapAlloc/OnHeapFree/OnHeapReuse): a malloc'd block is pending
//     until the allocating transaction's log commits, then live; a free
//     that commits marks it freed. Recovery frees pending blocks — their
//     transaction never committed.
//   - an allocator metadata journal (alloc.MetaJournal): one record per
//     structural event (arena/superblock/span creation, class
//     assignment), the out-of-band truth RecoverHeap rebuilds free lists
//     from.
//
// Fence semantics are deliberately generous in the safe direction: the
// fence persists the *fence-time* content of every line flushed since
// the previous fence, so a store that lands between a line's flush and
// the fence is captured rather than torn. Only flushed lines persist —
// a line that is never flushed (allocator boundary tags, free-list
// links) keeps only its content as of the last checkpoint, which is
// exactly the torn-metadata surface the recovery pass repairs.
//
// All pmem bookkeeping is host-side metadata driven from simulated
// threads, which the virtual-time engine serializes; pricing happens
// only at the explicit Flush/Fence/log call sites, so a run with a
// tracker attached but no durable traffic is cycle-identical to an
// untracked one.
package pmem

import (
	"sort"

	"repro/internal/alloc"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/vtime"
)

// Line geometry: 64-byte persistence lines, eight 64-bit words.
const (
	LineShift = 6
	LineSize  = 1 << LineShift
	LineWords = LineSize / 8
)

func lineOf(a mem.Addr) mem.Addr { return a &^ (LineSize - 1) }

// line is the durable image of one cache line.
type line [LineWords]uint64

// blockState tracks one journaled heap block through its durable
// lifecycle.
type blockState uint8

const (
	blockPending blockState = iota // malloc'd, allocating tx not yet committed
	blockLive                      // alloc committed (or checkpointed)
	blockFreed                     // free committed, rolled back, or reclaimed
)

// blockRec is one entry of the durable block journal.
type blockRec struct {
	base   mem.Addr
	req    uint64
	usable uint64
	state  blockState
}

// Stats counts the durable traffic a run generated.
type Stats struct {
	Flushes    uint64 // line writebacks issued (clwb)
	Fences     uint64 // ordering fences issued (sfence)
	Lines      uint64 // lines persisted by fences
	LogAppends uint64 // redo-log records appended (incl. begin/commit/truncate markers)
	MetaRecs   uint64 // allocator structural-journal records
}

// Pmem is the durable-memory layer over one address space. Attach it
// before the space is shared across simulated threads; one Pmem serves
// one run.
type Pmem struct {
	space *mem.Space
	plan  *fault.Plan // crash clauses; nil means no crash injection

	// stopper halts the virtual-time engine when a crash fires
	// (vtime.Engine satisfies it).
	stopper interface{ Stop() }

	// Line tracking. durable holds the persisted image of every line a
	// fence has captured; dirty the lines stored since their last flush;
	// pending the lines flushed and draining toward the next fence;
	// touched every line ever stored (the revert set for ApplyCrash).
	durable map[mem.Addr]*line
	dirty   map[mem.Addr]struct{}
	pending map[mem.Addr]struct{}
	touched map[mem.Addr]struct{}

	// Redo log: active logs are populated but unmarked (torn if the
	// machine dies now); committed logs carry their marker and await
	// truncation; applying maps a thread to the committed log it is
	// writing back.
	active    map[int]*txLog
	committed []*txLog
	applying  map[int]*txLog
	seq       uint64

	// oracle records the last durably-committed value of every
	// transactionally written word — the ground truth the post-recovery
	// lost-write sweep checks the heap against.
	oracle map[mem.Addr]uint64

	// Block and structural-metadata journals.
	blocks    map[mem.Addr]*blockRec
	meta      []alloc.MetaRec
	allocName string

	crashed    bool
	recovering bool
	crashCycle uint64
	crashPhase string
	tornLogs   int

	stats Stats
}

// Attach builds a Pmem over space and registers it as the space's
// persist tracker. plan supplies crash clauses and may be nil.
func Attach(space *mem.Space, plan *fault.Plan) *Pmem {
	p := &Pmem{
		space:    space,
		plan:     plan,
		durable:  map[mem.Addr]*line{},
		dirty:    map[mem.Addr]struct{}{},
		pending:  map[mem.Addr]struct{}{},
		touched:  map[mem.Addr]struct{}{},
		active:   map[int]*txLog{},
		applying: map[int]*txLog{},
		oracle:   map[mem.Addr]uint64{},
		blocks:   map[mem.Addr]*blockRec{},
	}
	space.SetPersistTracker(p)
	return p
}

// SetStopper registers the engine to halt when a crash clause fires
// (pass the run's *vtime.Engine).
func (p *Pmem) SetStopper(s interface{ Stop() }) { p.stopper = s }

// Crashed reports whether a crash clause fired.
func (p *Pmem) Crashed() bool { return p.crashed }

// CrashPoint returns where the crash fired (virtual cycle and phase
// name), or zeros if none did.
func (p *Pmem) CrashPoint() (cycle uint64, phase string) {
	return p.crashCycle, p.crashPhase
}

// Stats returns the durable-traffic counters.
func (p *Pmem) Stats() Stats { return p.stats }

// frozen reports whether the machine is down: after the crash every
// pmem operation is inert (threads winding down must not mutate durable
// state) until Recover flips the layer into recovery mode.
func (p *Pmem) frozen() bool { return p.crashed && !p.recovering }

// crashPoint consults the fault plan at one durable operation. When a
// crash clause fires the engine is stopped and the calling thread
// unwound with vtime.StopSignal — the operation the checkpoint guards
// does NOT take effect (the flush never landed, the marker was never
// written).
func (p *Pmem) crashPoint(th *vtime.Thread, phase string) {
	p.crashAt(th.ID(), th.Clock(), phase)
}

func (p *Pmem) crashAt(tid int, clock uint64, phase string) {
	if p.crashed || p.recovering || p.plan == nil {
		return
	}
	if !p.plan.Crash(tid, clock, phase) {
		return
	}
	p.crashed = true
	p.crashCycle = clock
	p.crashPhase = phase
	p.tornLogs = len(p.active)
	if p.stopper != nil {
		p.stopper.Stop()
	}
	panic(vtime.StopSignal{})
}

// persistLine captures the current volatile content of the line at l
// into the durable image.
func (p *Pmem) persistLine(l mem.Addr) {
	img := p.durable[l]
	if img == nil {
		img = new(line)
		p.durable[l] = img
	}
	for i := 0; i < LineWords; i++ {
		img[i] = p.space.Load(l + mem.Addr(i*8))
	}
}

// Flush issues a line writeback (clwb) for the line containing a: the
// line leaves the dirty set and drains toward the next fence.
func (p *Pmem) Flush(th *vtime.Thread, a mem.Addr) {
	if p.frozen() {
		return
	}
	th.Tick(th.Cost().Flush)
	p.stats.Flushes++
	p.crashPoint(th, "flush")
	l := lineOf(a)
	if _, ok := p.dirty[l]; ok {
		delete(p.dirty, l)
		p.pending[l] = struct{}{}
	}
}

// FlushRange flushes every line overlapping [base, base+size).
func (p *Pmem) FlushRange(th *vtime.Thread, base mem.Addr, size uint64) {
	if size == 0 {
		return
	}
	for l := lineOf(base); l < base+mem.Addr(size); l += LineSize {
		p.Flush(th, l)
	}
}

// Fence issues an ordering fence (sfence): every draining line's
// fence-time content becomes durable.
func (p *Pmem) Fence(th *vtime.Thread) {
	if p.frozen() {
		return
	}
	n := uint64(len(p.pending))
	th.Tick(th.Cost().FenceBase + n*th.Cost().FenceLine)
	p.stats.Fences++
	p.crashPoint(th, "fence")
	if n == 0 {
		return
	}
	lines := make([]mem.Addr, 0, n)
	for l := range p.pending {
		lines = append(lines, l)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, l := range lines {
		p.persistLine(l)
		delete(p.pending, l)
		delete(p.dirty, l) // fence captured any post-flush store too
	}
	p.stats.Lines += n
}

// Checkpoint makes the whole volatile state durable — every dirty line
// flushed and fenced, every pending block promoted to live — the
// equivalent of an fsync'd pool at a phase boundary. Workloads call it
// after building their initial data set so a measurement-phase crash
// recovers against a sound baseline.
func (p *Pmem) Checkpoint(th *vtime.Thread) {
	if p.frozen() {
		return
	}
	lines := make([]mem.Addr, 0, len(p.dirty))
	for l := range p.dirty {
		lines = append(lines, l)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, l := range lines {
		p.Flush(th, l)
	}
	p.Fence(th)
	for _, b := range p.blocks {
		if b.state == blockPending {
			b.state = blockLive
		}
	}
}

// ---- mem.PersistTracker ----

// OnStore marks the stored line dirty.
func (p *Pmem) OnStore(a mem.Addr) {
	if p.frozen() {
		return
	}
	l := lineOf(a)
	p.dirty[l] = struct{}{}
	p.touched[l] = struct{}{}
}

// OnUnmap drops all durable state covering a region returned to the
// simulated OS: its lines, its journaled blocks, its oracle entries and
// its structural records. Recovery must never touch unmapped memory.
func (p *Pmem) OnUnmap(base mem.Addr, size uint64) {
	if p.frozen() {
		return
	}
	end := base + mem.Addr(size)
	in := func(a mem.Addr) bool { return a >= base && a < end }
	for l := range p.touched {
		if in(l) {
			delete(p.touched, l)
			delete(p.durable, l)
			delete(p.dirty, l)
			delete(p.pending, l)
		}
	}
	for a := range p.oracle {
		if in(a) {
			delete(p.oracle, a)
		}
	}
	for b := range p.blocks {
		if in(b) {
			delete(p.blocks, b)
		}
	}
	keep := p.meta[:0]
	for _, m := range p.meta {
		if !in(m.Base) {
			keep = append(keep, m)
		}
	}
	p.meta = keep
}

// OnHeapAlloc journals a malloc as pending (live once the allocating
// transaction's redo log commits, or at the next checkpoint) and offers
// the fault plan its "malloc" crash checkpoint. The journal append
// rides the malloc's own AllocOp cost.
func (p *Pmem) OnHeapAlloc(allocator string, base mem.Addr, req, usable uint64, tid int, clock uint64) {
	if p.frozen() {
		return
	}
	p.allocName = allocator
	p.blocks[base] = &blockRec{base: base, req: req, usable: usable, state: blockPending}
	p.crashAt(tid, clock, "malloc")
}

// OnHeapFree journals a free. Every free channel lands here — commit-
// time quarantine entry, rollback of a pending alloc, quarantine
// reclaim — and the first one wins; recovery resync frees are
// idempotent repeats. Committed stores into the block are no longer
// ground truth.
func (p *Pmem) OnHeapFree(base mem.Addr, tid int, clock uint64) {
	if p.frozen() {
		return
	}
	b := p.blocks[base]
	if b == nil || b.state == blockFreed {
		return
	}
	b.state = blockFreed
	p.dropOracleRange(base, b.usable)
}

// OnHeapReuse revives a block from a transaction-local cache. Durable
// mode rejects the §6.2 cache, so this only fires for non-durable runs
// that happen to share the space; journal it anyway for symmetry.
func (p *Pmem) OnHeapReuse(base mem.Addr, tid int, clock uint64) {
	if p.frozen() {
		return
	}
	if b := p.blocks[base]; b != nil {
		b.state = blockLive
	}
}

func (p *Pmem) dropOracleRange(base mem.Addr, size uint64) {
	for off := uint64(0); off < size; off += 8 {
		delete(p.oracle, base+mem.Addr(off))
	}
}

// ---- alloc.MetaJournal ----

// JournalMeta appends one allocator structural record (out-of-band, so
// it survives any crash at a later checkpoint) and prices the append.
// th is nil for construction-time events (glibc maps its main arena
// before any simulated thread exists); those are free and crash-exempt.
func (p *Pmem) JournalMeta(th *vtime.Thread, kind string, base mem.Addr, a, b uint64) {
	if p.frozen() {
		return
	}
	p.meta = append(p.meta, alloc.MetaRec{Kind: kind, Base: base, A: a, B: b})
	p.stats.MetaRecs++
	if th != nil {
		th.Tick(th.Cost().LogAppend)
		p.crashPoint(th, "meta")
	}
}
