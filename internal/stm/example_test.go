package stm_test

import (
	"fmt"

	_ "repro/internal/alloc/glibc"

	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/stm"
	"repro/internal/vtime"
)

// A word-based transaction over simulated memory: encounter-time
// locking, write-back, automatic retry on conflict.
func ExampleSTM_Atomic() {
	space := mem.NewSpace()
	s := stm.New(space, stm.Config{})
	account := space.MustMap(4096, 0)
	space.Store(account, 100)

	engine := vtime.NewEngine(space, 4, vtime.Config{})
	engine.Run(func(th *vtime.Thread) {
		for i := 0; i < 25; i++ {
			s.Atomic(th, func(tx *stm.Tx) {
				tx.Store(account, tx.Load(account)+1)
			})
		}
	})
	fmt.Println("balance:", space.Load(account))
	fmt.Println("commits:", s.Stats().Commits)
	// Output:
	// balance: 200
	// commits: 100
}

// Transactional allocation: blocks malloc'd by an aborted transaction
// go back to the allocator; frees are deferred to commit.
func ExampleTx_Malloc() {
	space := mem.NewSpace()
	a := alloc.MustNew("glibc", space, 1)
	s := stm.New(space, stm.Config{Allocator: a})
	th := vtime.Solo(space, 0, nil)

	var node mem.Addr
	s.Atomic(th, func(tx *stm.Tx) {
		node = tx.Malloc(16)
		tx.Store(node, 42)
	})
	//tmvet:allow txescape: single-threaded example; no concurrent committer to race
	fmt.Println("node value:", space.Load(node))

	s.Atomic(th, func(tx *stm.Tx) {
		tx.Free(node, 16)
	})
	st := a.Stats()
	fmt.Printf("allocator: %d mallocs, %d frees\n", st.Mallocs, st.Frees)
	// Output:
	// node value: 42
	// allocator: 1 mallocs, 1 frees
}

// The lock-mapping function at the heart of the paper: with the default
// shift of 5, addresses 16 bytes apart share one versioned lock while
// addresses 32 bytes apart do not.
func ExampleSTM_OrtIndex() {
	s := stm.New(mem.NewSpace(), stm.Config{})
	a := mem.Addr(0x18000020)
	fmt.Println("16 bytes apart share a lock:", s.OrtIndex(a) == s.OrtIndex(a+16))
	fmt.Println("32 bytes apart share a lock:", s.OrtIndex(a) == s.OrtIndex(a+32))
	fmt.Println("64 MiB apart share a lock:", s.OrtIndex(a) == s.OrtIndex(a+64<<20))
	// Output:
	// 16 bytes apart share a lock: true
	// 32 bytes apart share a lock: false
	// 64 MiB apart share a lock: true
}
