package stm

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/vtime"
)

func TestParseCM(t *testing.T) {
	for _, name := range CMNames() {
		cm, err := ParseCM(name)
		if err != nil {
			t.Fatalf("ParseCM(%q): %v", name, err)
		}
		if cm.String() != name {
			t.Errorf("ParseCM(%q).String() = %q", name, cm.String())
		}
	}
	if cm, err := ParseCM(""); err != nil || cm != CMSuicide {
		t.Errorf("ParseCM(\"\") = %v, %v; want suicide", cm, err)
	}
	if _, err := ParseCM("polite"); err == nil {
		t.Error("ParseCM of an unknown name succeeded")
	}
}

// TestLadderEngagesAtRetryCap checks the degradation ladder: a
// transaction that refuses to commit revocably is run irrevocably after
// exactly RetryCap consecutive aborts, and the starvation watermark
// records the streak.
func TestLadderEngagesAtRetryCap(t *testing.T) {
	space, _ := newWorld(1)
	s := New(space, Config{RetryCap: 4})
	th := vtime.Solo(space, 0, nil)
	attempts := 0
	s.Atomic(th, func(tx *Tx) {
		attempts++
		if !tx.Irrevocable() {
			tx.Restart()
		}
	})
	if attempts != 5 {
		t.Errorf("attempts = %d, want 5 (4 revocable + 1 irrevocable)", attempts)
	}
	st := s.Stats()
	if st.Irrevocables != 1 {
		t.Errorf("Irrevocables = %d, want 1", st.Irrevocables)
	}
	if st.Commits != 1 {
		t.Errorf("Commits = %d, want 1", st.Commits)
	}
	if st.MaxConsecAborts != 4 {
		t.Errorf("MaxConsecAborts = %d, want 4", st.MaxConsecAborts)
	}
	if locked := s.LockedStripes(); len(locked) != 0 {
		t.Errorf("ORT entries still locked after irrevocable commit: %v", locked)
	}
}

// TestNoRetryCapDisablesLadder checks that NoRetryCap really removes
// the fallback: the transaction retries as often as the workload
// demands and never turns irrevocable.
func TestNoRetryCapDisablesLadder(t *testing.T) {
	space, _ := newWorld(1)
	s := New(space, Config{RetryCap: NoRetryCap})
	th := vtime.Solo(space, 0, nil)
	attempts := 0
	s.Atomic(th, func(tx *Tx) {
		attempts++
		if attempts <= 50 {
			tx.Restart()
		}
	})
	if attempts != 51 {
		t.Errorf("attempts = %d, want 51", attempts)
	}
	st := s.Stats()
	if st.Irrevocables != 0 {
		t.Errorf("Irrevocables = %d, want 0 with NoRetryCap", st.Irrevocables)
	}
	if st.MaxConsecAborts != 50 {
		t.Errorf("MaxConsecAborts = %d, want 50", st.MaxConsecAborts)
	}
}

// duel runs the forced-livelock microbenchmark: two threads repeatedly
// transact over two stripes in opposite orders with a long computation
// between the accesses, so each attempt holds its first stripe for
// almost the whole window in which the rival wants it.
func duel(t *testing.T, cm CM, retryCap, deadline uint64) (*STM, *vtime.Engine) {
	t.Helper()
	space := mem.NewSpace()
	e := vtime.NewEngine(space, 2, vtime.Config{Deadline: deadline})
	s := New(space, Config{OrtBits: 10, CM: cm, RetryCap: retryCap})
	base := space.MustMap(mem.PageSize, 0)
	lo, hi := base, base+64 // distinct stripes at shift 5
	const perThread = 5
	const workCycles = 2000 // cycles holding the first stripe
	e.Run(func(th *vtime.Thread) {
		first, second := lo, hi
		if th.ID() == 1 {
			first, second = hi, lo
		}
		for i := 0; i < perThread; i++ {
			s.Atomic(th, func(tx *Tx) {
				tx.Store(first, tx.Load(first)+1)
				tx.Thread().Work(workCycles)
				tx.Store(second, tx.Load(second)+1)
			})
		}
	})
	return s, e
}

// TestForcedLivelockSuicideVsLadder pins the headline robustness
// property: on the dueling-stripes workload SUICIDE (the paper's CM)
// with the ladder disabled livelocks — it blows through the
// max-consecutive-abort bound and only the engine watchdog ends the
// run — while backoff with a retry cap completes the same workload,
// with the ladder bounding every streak at the cap.
func TestForcedLivelockSuicideVsLadder(t *testing.T) {
	const bound = 64
	const deadline = 4_000_000

	s, e := duel(t, CMSuicide, NoRetryCap, deadline)
	if !e.DeadlineExceeded() {
		t.Fatal("suicide without a retry cap completed the duel; the livelock workload is not adversarial enough")
	}
	if st := s.Stats(); st.MaxConsecAborts <= bound {
		t.Errorf("suicide MaxConsecAborts = %d, want > %d", st.MaxConsecAborts, bound)
	}

	s, e = duel(t, CMBackoff, bound, deadline)
	if e.DeadlineExceeded() {
		t.Fatal("backoff + ladder hit the watchdog on the duel")
	}
	st := s.Stats()
	if st.Commits != 10 {
		t.Errorf("backoff + ladder commits = %d, want 10", st.Commits)
	}
	if st.MaxConsecAborts > bound {
		t.Errorf("MaxConsecAborts = %d exceeds the retry cap %d", st.MaxConsecAborts, bound)
	}
	if locked := s.LockedStripes(); len(locked) != 0 {
		t.Errorf("ORT entries still locked after the duel: %v", locked)
	}
}

// TestDuelCompletesUnderEveryCM checks that each contention manager,
// backed by the ladder, finishes the duel and leaves the ORT clean.
func TestDuelCompletesUnderEveryCM(t *testing.T) {
	for _, cm := range []CM{CMSuicide, CMBackoff, CMKarma, CMAggressive} {
		t.Run(cm.String(), func(t *testing.T) {
			s, e := duel(t, cm, 32, 8_000_000)
			if e.DeadlineExceeded() {
				t.Fatalf("%s + ladder hit the watchdog", cm)
			}
			if st := s.Stats(); st.Commits != 10 {
				t.Errorf("commits = %d, want 10", st.Commits)
			}
			if locked := s.LockedStripes(); len(locked) != 0 {
				t.Errorf("ORT entries still locked: %v", locked)
			}
		})
	}
}

// TestAggressiveKillsOwner checks the aggressive CM's kill path: the
// blocked transaction flags the stripe owner, which aborts with
// AbortKilled at its next transactional operation. The ladder stays on
// — on a symmetric duel two aggressive transactions kill each other in
// lockstep, so aggressive alone is just as livelock-prone as suicide.
func TestAggressiveKillsOwner(t *testing.T) {
	s, e := duel(t, CMAggressive, 32, 8_000_000)
	if e.DeadlineExceeded() {
		t.Fatal("aggressive CM + ladder hit the watchdog")
	}
	st := s.Stats()
	if st.Commits != 10 {
		t.Errorf("commits = %d, want 10", st.Commits)
	}
	if st.ByReason[AbortKilled] == 0 {
		t.Error("no AbortKilled aborts under the aggressive CM on a dueling workload")
	}
}

// TestCMsPreserveCorrectness runs the contended-counter workload under
// every CM and checks the count — whatever the conflict policy, committed
// effects must be exactly once.
func TestCMsPreserveCorrectness(t *testing.T) {
	for _, cm := range []CM{CMSuicide, CMBackoff, CMKarma, CMAggressive} {
		t.Run(cm.String(), func(t *testing.T) {
			space, e := newWorld(4)
			s := New(space, Config{CM: cm, RetryCap: 128})
			counter := space.MustMap(mem.PageSize, 0)
			const perThread = 300
			e.Run(func(th *vtime.Thread) {
				for i := 0; i < perThread; i++ {
					s.Atomic(th, func(tx *Tx) {
						tx.Store(counter, tx.Load(counter)+1)
					})
				}
			})
			if got := space.Load(counter); got != 4*perThread {
				t.Errorf("counter = %d, want %d", got, 4*perThread)
			}
			if locked := s.LockedStripes(); len(locked) != 0 {
				t.Errorf("ORT entries still locked: %v", locked)
			}
		})
	}
}
