package stm

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/alloc"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/vtime"
)

// TestFaultInvariants drives every allocator model under every STM
// design through a transactional malloc/free workload with injected
// allocator OOM, latency spikes, a transaction stall and an abort
// storm, then checks the two recovery invariants: no ORT entry stays
// locked, and the allocator's live bytes return to their baseline —
// injected faults must not leak stripe locks or heap blocks.
func TestFaultInvariants(t *testing.T) {
	for _, name := range alloc.Names() {
		for _, d := range []Design{ETLWriteBack, ETLWriteThrough, CTL} {
			t.Run(fmt.Sprintf("%s/%s", name, d), func(t *testing.T) {
				const threads = 4
				space := mem.NewSpace()
				e := vtime.NewEngine(space, threads, vtime.Config{Deadline: 100_000_000})
				a := alloc.MustNew(name, space, threads)
				plan := fault.MustParse(
					"oom@20x3,oom%2,lat%5:300,stall@t1:5000:2000,storm@40000:48000", 42)
				alloc.Inject(a, plan)
				s := New(space, Config{
					Allocator: a,
					Design:    d,
					CM:        CMBackoff,
					RetryCap:  32,
					Fault:     plan,
				})
				baseline := a.Stats().LiveBytes
				shared := space.MustMap(mem.PageSize, 0)

				const perThread = 40
				blocks := make([][]mem.Addr, threads)
				e.Run(func(th *vtime.Thread) {
					id := th.ID()
					for i := 0; i < perThread; i++ {
						var blk mem.Addr
						s.Atomic(th, func(tx *Tx) {
							b := tx.Malloc(32)
							tx.Store(b, uint64(id)<<32|uint64(i))
							tx.Store(shared, tx.Load(shared)+1)
							blk = b
						})
						blocks[id] = append(blocks[id], blk)
					}
					for _, blk := range blocks[id] {
						s.Atomic(th, func(tx *Tx) {
							tx.Free(blk, 32)
							tx.Store(shared, tx.Load(shared)+1)
						})
					}
				})

				if e.DeadlineExceeded() {
					t.Fatal("fault workload hit the engine watchdog")
				}
				if got := space.Load(shared); got != 2*threads*perThread {
					t.Errorf("shared counter = %d, want %d", got, 2*threads*perThread)
				}
				if locked := s.LockedStripes(); len(locked) != 0 {
					t.Errorf("ORT entries still locked after faults: %v", locked)
				}
				if live := a.Stats().LiveBytes; live != baseline {
					t.Errorf("allocator live bytes = %d, want baseline %d (leak across faults)",
						live, baseline)
				}
				ast := a.Stats()
				if ast.FailedMallocs < 3 {
					t.Errorf("FailedMallocs = %d, want >= 3 (oom@20x3 must fire)", ast.FailedMallocs)
				}
				st := s.Stats()
				if st.ByReason[AbortOOM] == 0 {
					t.Error("no AbortOOM aborts: injected OOMs never reached a transaction")
				}
				if st.Commits != 2*threads*perThread {
					t.Errorf("commits = %d, want %d", st.Commits, 2*threads*perThread)
				}
			})
		}
	}
}

// TestPersistentOOMPanicsWithErrNoMemory checks the ladder's last
// resort: when every allocation fails (a persistent OOM, not a
// transient glitch), the transaction descends to the irrevocable
// fallback, retries a bounded number of times, and then panics with an
// error wrapping mem.ErrNoMemory — the harness converts that into a
// degraded run record instead of hanging.
func TestPersistentOOMPanicsWithErrNoMemory(t *testing.T) {
	space, _ := newWorld(1)
	a := alloc.MustNew("tbb", space, 1)
	plan := fault.MustParse("oom%100", 1) // every malloc fails
	alloc.Inject(a, plan)
	s := New(space, Config{Allocator: a, RetryCap: 2})
	th := vtime.Solo(space, 0, nil)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("persistent OOM did not panic")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, mem.ErrNoMemory) {
			t.Fatalf("panic value %v does not wrap mem.ErrNoMemory", r)
		}
		if locked := s.LockedStripes(); len(locked) != 0 {
			t.Errorf("ORT entries still locked after OOM panic: %v", locked)
		}
	}()
	s.Atomic(th, func(tx *Tx) {
		tx.Malloc(64)
	})
}
