package stm

import (
	"strings"
	"testing"

	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/vtime"
)

// runSanitized executes fn on one simulated thread over a sanitized
// space and returns the sanitizer diagnostic it raised, if any.
func runSanitized(t *testing.T, allocator string, sanitize, cacheTx bool, fn func(s *STM, th *vtime.Thread)) *mem.Diag {
	t.Helper()
	// TestMain arms the sanitizer package-wide; the sanitize=false cases
	// drop the default for the duration of this run (tests within a
	// package run sequentially, so the swap cannot race).
	old := mem.SanitizeDefault()
	mem.SetSanitizeDefault(sanitize)
	defer mem.SetSanitizeDefault(old)
	space := mem.NewSpace()
	e := vtime.NewEngine(space, 1, vtime.Config{})
	a, err := alloc.New(allocator, space, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := New(space, Config{Allocator: a, CacheTxObjects: cacheTx})
	var diag *mem.Diag
	func() {
		defer func() {
			if r := recover(); r != nil {
				d, ok := r.(*mem.Diag)
				if !ok {
					panic(r)
				}
				diag = d
			}
		}()
		e.Run(func(th *vtime.Thread) { fn(s, th) })
	}()
	return diag
}

func TestSanitizerDiagnostics(t *testing.T) {
	// Request 66 bytes: every allocator's size class for it (glibc 80,
	// hoard 128, tbb 80, tcmalloc 80) leaves the word at offset 72 as
	// redzone, so the overflow case is portable across all four.
	const req = 66
	cases := []struct {
		name string
		kind mem.DiagKind
		run  func(s *STM, th *vtime.Thread)
	}{
		{
			name: "use-after-free",
			kind: mem.DiagUseAfterFree,
			run: func(s *STM, th *vtime.Thread) {
				var p mem.Addr
				s.Atomic(th, func(tx *Tx) { p = tx.Malloc(req); tx.Store(p, 7) })
				s.Atomic(th, func(tx *Tx) { tx.Free(p, req) })
				s.Atomic(th, func(tx *Tx) { tx.Load(p) })
			},
		},
		{
			name: "double-free",
			kind: mem.DiagDoubleFree,
			run: func(s *STM, th *vtime.Thread) {
				var p mem.Addr
				s.Atomic(th, func(tx *Tx) { p = tx.Malloc(req); tx.Store(p, 7) })
				s.Atomic(th, func(tx *Tx) { tx.Free(p, req) })
				s.Atomic(th, func(tx *Tx) { tx.Free(p, req) })
			},
		},
		{
			name: "heap-buffer-overflow",
			kind: mem.DiagOverflow,
			run: func(s *STM, th *vtime.Thread) {
				s.Atomic(th, func(tx *Tx) {
					p := tx.Malloc(req)
					tx.Store(p+72, 1) // one word past the rounded-up request
				})
			},
		},
		{
			name: "wild-address",
			kind: mem.DiagWildAddr,
			run: func(s *STM, th *vtime.Thread) {
				s.Atomic(th, func(tx *Tx) { tx.Load(mem.Addr(0x1000)) })
			},
		},
	}
	for _, name := range alloc.Names() {
		for _, tc := range cases {
			t.Run(name+"/"+tc.name, func(t *testing.T) {
				d := runSanitized(t, name, true, false, tc.run)
				if d == nil {
					t.Fatalf("%s under %s raised no diagnostic", tc.name, name)
				}
				if d.Kind != tc.kind {
					t.Fatalf("diagnostic kind = %s, want %s\n%s", d.Kind, tc.kind, d.Error())
				}
				msg := d.Error()
				// Every block-backed diagnostic names the owning allocator
				// and block; the wild address has no owner to name.
				if tc.kind != mem.DiagWildAddr {
					if !strings.Contains(msg, `allocator "`+name+`"`) {
						t.Errorf("diagnostic does not name allocator %s:\n%s", name, msg)
					}
					if !strings.Contains(msg, "block 0x") {
						t.Errorf("diagnostic does not name the block:\n%s", msg)
					}
				}
			})
		}
	}
}

// TestLoadGuard pins the validated-handle exemption: a guard read of a
// freed block is silent (yada's stale-queue-entry filter depends on
// it), while a guard read of a wild address still reports.
func TestLoadGuard(t *testing.T) {
	for _, name := range alloc.Names() {
		t.Run(name+"/freed-silent", func(t *testing.T) {
			d := runSanitized(t, name, true, false, func(s *STM, th *vtime.Thread) {
				var p mem.Addr
				s.Atomic(th, func(tx *Tx) { p = tx.Malloc(66); tx.Store(p, 1) })
				s.Atomic(th, func(tx *Tx) { tx.Free(p, 66) })
				s.Atomic(th, func(tx *Tx) { tx.LoadGuard(p) })
			})
			if d != nil {
				t.Errorf("LoadGuard of a freed block raised a diagnostic: %v", d)
			}
		})
		t.Run(name+"/wild-reports", func(t *testing.T) {
			d := runSanitized(t, name, true, false, func(s *STM, th *vtime.Thread) {
				s.Atomic(th, func(tx *Tx) { tx.LoadGuard(mem.Addr(0x1000)) })
			})
			if d == nil {
				t.Fatal("LoadGuard of a wild address raised no diagnostic")
			}
			if d.Kind != mem.DiagWildAddr {
				t.Errorf("diagnostic kind = %s, want %s", d.Kind, mem.DiagWildAddr)
			}
		})
	}
}

// TestSanitizerOffSilent pins the contrast the acceptance criteria ask
// for: the same use-after-free sequence, without -sanitize, silently
// reads the quarantined (zeroed) word.
func TestSanitizerOffSilent(t *testing.T) {
	for _, name := range alloc.Names() {
		t.Run(name, func(t *testing.T) {
			d := runSanitized(t, name, false, false, func(s *STM, th *vtime.Thread) {
				var p mem.Addr
				s.Atomic(th, func(tx *Tx) { p = tx.Malloc(66); tx.Store(p, 7) })
				s.Atomic(th, func(tx *Tx) { tx.Free(p, 66) })
				// The read completes silently — returning either the
				// quarantine-zeroed word or recycled heap metadata (hoard
				// stores a free-list link in word 0), which is exactly the
				// hazard the sanitizer exists to catch.
				s.Atomic(th, func(tx *Tx) { tx.Load(p) })
			})
			if d != nil {
				t.Errorf("unsanitized run raised a diagnostic: %v", d)
			}
		})
	}
}

// TestSanitizerCacheTxReuse exercises the §6.2 cache path: a block
// freed into and reused from the thread-local cache must be clean to
// the sanitizer, and stale pointers to it must still be caught while it
// sits in the cache.
func TestSanitizerCacheTxReuse(t *testing.T) {
	d := runSanitized(t, "glibc", true, true, func(s *STM, th *vtime.Thread) {
		var p mem.Addr
		s.Atomic(th, func(tx *Tx) { p = tx.Malloc(66); tx.Store(p, 7) })
		s.Atomic(th, func(tx *Tx) { tx.Free(p, 66) })
		s.Atomic(th, func(tx *Tx) {
			q := tx.Malloc(66)
			if q != p {
				panic("cacheTx did not hand the freed block back")
			}
			tx.Store(q, 9)
		})
	})
	if d != nil {
		t.Fatalf("cache reuse raised a diagnostic: %v", d)
	}
}

// TestSanitizerPooledDisciplines is the regression for slab-granularity
// poisoning: under every pooling discipline, a workload that mallocs,
// frees and re-mallocs same-size objects across transactions must stay
// sanitizer-clean. The batch discipline once marked a parked sub-block
// freed, which poisoned the whole owning slab (the first carved
// sub-block shares the slab's base address) and made every live
// neighbor misread as use-after-free.
func TestSanitizerPooledDisciplines(t *testing.T) {
	for _, d := range []Pooling{PoolCache, PoolReuse, PoolBatch} {
		t.Run(d.String(), func(t *testing.T) {
			old := mem.SanitizeDefault()
			mem.SetSanitizeDefault(true)
			defer mem.SetSanitizeDefault(old)
			space := mem.NewSpace()
			e := vtime.NewEngine(space, 1, vtime.Config{})
			a, err := alloc.New("glibc", space, 1)
			if err != nil {
				t.Fatal(err)
			}
			s := New(space, Config{Allocator: a, Pooling: d})
			e.Run(func(th *vtime.Thread) {
				var live []mem.Addr
				for i := 0; i < 40; i++ {
					s.Atomic(th, func(tx *Tx) {
						p := tx.Malloc(16)
						tx.Store(p, uint64(i))
						live = append(live, p)
					})
					if len(live) > 8 {
						// Free the oldest, then read every survivor — a
						// poisoned slab would trip on the neighbors.
						s.Atomic(th, func(tx *Tx) {
							tx.Free(live[0], 16)
							live = live[1:]
							for _, q := range live {
								tx.Load(q)
							}
						})
					}
				}
			})
		})
	}
}
