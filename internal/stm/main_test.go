package stm

import (
	"os"
	"testing"

	"repro/internal/mem"
)

// TestMain arms the shadow-memory sanitizer for every space the package
// tests construct, so the whole STM suite runs with access checking on.
// Byte-identity of sanitized runs (scripts/ci.sh) guarantees this does
// not change any result the tests assert on.
func TestMain(m *testing.M) {
	mem.SetSanitizeDefault(true)
	os.Exit(m.Run())
}
