package stm

import (
	"repro/internal/mem"
	"repro/internal/obs"
)

// Conflict-observatory glue: when a ConflictHook is configured, every
// abort produces a structured ConflictEvent carrying the victim and
// killer identities, the conflicting stripe and both concrete
// addresses, and the wasted virtual cycles of the dead attempt. Like
// the race-checker glue (race.go) the hooks are pure observation —
// they never tick virtual time, never touch simulated memory, and
// never change protocol decisions — so an observed run is
// byte-identical to an unobserved one. Every helper is nil-checked so
// the disabled path costs one branch.
//
// The one piece of state the seam adds to the STM itself is lockTids:
// a per-ORT-entry record of the thread that last acquired the entry,
// maintained next to lockAddrs in acquire. It is allocated only when a
// hook is attached (2^OrtBits entries would otherwise tax every plain
// run) and read only to attribute a killer, never to decide protocol.

// NoKiller is the ConflictEvent.Killer value of an abort with no
// attributable rival thread (explicit restarts, OOM, validation
// failures whose conflicting commit cannot be named).
const NoKiller = -1

// ConflictEvent describes one abort, as reported to the observatory at
// the moment the transaction rolled back.
type ConflictEvent struct {
	Victim  int         // thread id of the aborted transaction
	Killer  int         // thread id of the rival, or NoKiller
	Kind    string      // victim's workload label (SetKind), "" if unlabeled
	Attempt uint64      // 1-based attempt number of the victim's Atomic
	Reason  AbortReason // why the attempt died
	// Stripe is the conflicting ORT entry index, or obs.NoStripe for
	// aborts without a single attributable entry. VictimAddr is the
	// address the victim was accessing; OwnerAddr the address that last
	// acquired the stripe (the rival's side of the conflict). Both are
	// zero when Stripe is obs.NoStripe.
	Stripe     uint64
	VictimAddr mem.Addr
	OwnerAddr  mem.Addr
	// Wasted is the virtual-cycle cost of the dead attempt
	// (begin-to-abort on the victim's clock).
	Wasted uint64
}

// ConflictHook receives abort forensics from the transaction
// lifecycle. It is implemented by *conflict.Observatory; stm sees only
// this narrow interface so the conflict package can build on stm's
// events without an import cycle.
//
// TxKind reports a workload label for the thread's current (and
// subsequent) transactions. TxConflict reports one abort, after the
// rollback completed. TxCommitted reports a commit, which ends any
// abort chain rooted at the thread.
type ConflictHook interface {
	TxKind(tid int, kind string)
	TxConflict(ev ConflictEvent)
	TxCommitted(tid int, kind string)
}

// SetKind labels the transactions this descriptor runs from now on
// (workloads call it first thing inside the atomic function, so every
// attempt re-asserts it). The label feeds conflict forensics — killer
// and victim transactions are reported by kind — and allocator blame:
// blocks allocated while the label is in force carry it as their
// allocation site. Pure observation: without a hook the call is one
// field store.
func (tx *Tx) SetKind(kind string) {
	tx.kind = kind
	if c := tx.stm.conflict; c != nil {
		c.TxKind(tx.th.ID(), kind)
	}
}

// Kind returns the descriptor's current workload label.
func (tx *Tx) Kind() string { return tx.kind }

// conflictStripe reports an abort attributed to one ORT entry: idx is
// the conflicting entry, a the victim's address, owner the address
// that last acquired the entry. The killer is the thread that last
// acquired the stripe — for AbortLockedByOther the lock holder, for
// AbortVersionAhead the committer that advanced the version past the
// snapshot.
func (tx *Tx) conflictStripe(reason AbortReason, idx uint64, a, owner mem.Addr) {
	c := tx.stm.conflict
	if c == nil {
		return
	}
	killer := NoKiller
	if tids := tx.stm.lockTids; tids != nil {
		if t := tids[idx]; t >= 0 && int(t) != tx.th.ID() {
			killer = int(t)
		}
	}
	c.TxConflict(ConflictEvent{
		Victim:     tx.th.ID(),
		Killer:     killer,
		Kind:       tx.kind,
		Attempt:    tx.attempt,
		Reason:     reason,
		Stripe:     idx,
		VictimAddr: a,
		OwnerAddr:  owner,
		Wasted:     tx.th.Clock() - tx.beginClock,
	})
}

// conflictNoStripe reports an abort with no attributable ORT entry
// (validation failures, explicit restarts, OOM, kills). An aggressive
// rival's kill still names its killer via the descriptor's killedBy
// mark.
func (tx *Tx) conflictNoStripe(reason AbortReason) {
	c := tx.stm.conflict
	if c == nil {
		return
	}
	killer := NoKiller
	if reason == AbortKilled && tx.killedBy >= 0 && int(tx.killedBy) != tx.th.ID() {
		killer = int(tx.killedBy)
	}
	c.TxConflict(ConflictEvent{
		Victim:  tx.th.ID(),
		Killer:  killer,
		Kind:    tx.kind,
		Attempt: tx.attempt,
		Reason:  reason,
		Stripe:  obs.NoStripe,
		Wasted:  tx.th.Clock() - tx.beginClock,
	})
}

// conflictCommitted reports a commit (ends the thread's abort chain).
func (tx *Tx) conflictCommitted() {
	if c := tx.stm.conflict; c != nil {
		c.TxCommitted(tx.th.ID(), tx.kind)
	}
}
