package stm

import (
	"math"
	"testing"
)

func TestTxStatsSubZeroOperands(t *testing.T) {
	var zero TxStats
	if got := zero.Sub(zero); got != zero {
		t.Fatalf("zero.Sub(zero) = %+v, want all-zero", got)
	}

	full := TxStats{
		Starts:       10,
		Commits:      7,
		Aborts:       3,
		FalseAborts:  2,
		MaxRetries:   4,
		MaxReadSet:   20,
		MaxWriteSet:  9,
		LoadsTotal:   100,
		StoresTotal:  50,
		AllocsInTx:   5,
		FreesInTx:    4,
		CacheHits:    2,
		CacheReturns: 1,
	}
	full.ByReason[0] = 2
	full.ByReason[1] = 1

	// Subtracting a zero baseline must be the identity.
	if got := full.Sub(zero); got != full {
		t.Fatalf("full.Sub(zero) = %+v, want %+v", got, full)
	}

	// Subtracting a snapshot from itself zeroes the deltas but keeps the
	// high-water marks (Max*), which are not phase-relative.
	got := full.Sub(full)
	if got.Starts != 0 || got.Commits != 0 || got.Aborts != 0 ||
		got.FalseAborts != 0 || got.LoadsTotal != 0 || got.StoresTotal != 0 ||
		got.AllocsInTx != 0 || got.FreesInTx != 0 ||
		got.CacheHits != 0 || got.CacheReturns != 0 {
		t.Fatalf("full.Sub(full) left nonzero deltas: %+v", got)
	}
	for i, v := range got.ByReason {
		if v != 0 {
			t.Fatalf("ByReason[%d] = %d after self-subtract", i, v)
		}
	}
	if got.MaxRetries != full.MaxRetries || got.MaxReadSet != full.MaxReadSet ||
		got.MaxWriteSet != full.MaxWriteSet {
		t.Fatalf("Sub clobbered the high-water marks: %+v", got)
	}
}

func TestAbortRateZeroAttempts(t *testing.T) {
	var zero TxStats
	r := zero.AbortRate()
	if r != 0 {
		t.Fatalf("AbortRate with zero starts = %v, want 0", r)
	}
	if math.IsNaN(r) || math.IsInf(r, 0) {
		t.Fatalf("AbortRate with zero starts is not finite: %v", r)
	}

	s := TxStats{Starts: 4, Aborts: 1}
	if got := s.AbortRate(); got != 0.25 {
		t.Fatalf("AbortRate = %v, want 0.25", got)
	}
	// All-abort and all-commit edges.
	if got := (TxStats{Starts: 3, Aborts: 3}).AbortRate(); got != 1 {
		t.Fatalf("all-abort AbortRate = %v, want 1", got)
	}
	if got := (TxStats{Starts: 3, Commits: 3}).AbortRate(); got != 0 {
		t.Fatalf("all-commit AbortRate = %v, want 0", got)
	}
}
