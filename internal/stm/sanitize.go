package stm

import "repro/internal/mem"

// Sanitizer glue: when the space carries a shadow map (mem sanitizer
// mode), every transactional access is classified against it. The
// checks are deliberately one-sided — they inspect shadow metadata and
// raw (untimed) memory only, never tick virtual time or write data
// words — so a sanitized run that raises no diagnostic is byte-identical
// to an unsanitized one.
//
// Raw thread loads and stores (allocator internals, the write-back
// loop, privatized access after a transaction) are not checked: the
// sanitizer polices the transactional API surface, where the paper's
// use-after-free hazard (reading a quarantined block through a stale
// snapshot) lives.

// sanCheck classifies a transactional load or store of a. A bad access
// from a doomed transaction — one whose read set no longer validates —
// is ignored: an unsanitized run would make the same zombie read and
// die at validation, and the sanitized run must behave identically.
func (tx *Tx) sanCheck(a mem.Addr, write bool) {
	sh := tx.stm.space.Sanitizer()
	if sh == nil {
		return
	}
	d := sh.Check(a, write, tx.th.ID(), tx.th.Clock())
	if d == nil {
		return
	}
	if !tx.irrevocable && !tx.validateUntimed() {
		return // zombie: the access aborts at validation either way
	}
	tx.sanReport(d)
}

// sanCheckGuard is sanCheck for LoadGuard: reads of freed blocks are
// the point of a guard word, so use-after-free is waived; every other
// classification still reports.
func (tx *Tx) sanCheckGuard(a mem.Addr) {
	sh := tx.stm.space.Sanitizer()
	if sh == nil {
		return
	}
	d := sh.Check(a, false, tx.th.ID(), tx.th.Clock())
	if d == nil || d.Kind == mem.DiagUseAfterFree {
		return
	}
	if !tx.irrevocable && !tx.validateUntimed() {
		return
	}
	tx.sanReport(d)
}

// sanFree classifies a transactional free of the block at a (double
// frees), with the same zombie exemption as sanCheck.
func (tx *Tx) sanFree(a mem.Addr) {
	sh := tx.stm.space.Sanitizer()
	if sh == nil {
		return
	}
	d := sh.CheckFree(a, tx.th.ID(), tx.th.Clock())
	if d == nil {
		return
	}
	if !tx.irrevocable && !tx.validateUntimed() {
		return
	}
	tx.sanReport(d)
}

// sanReport records the diagnostic as an obs fault event and raises it.
// The panic unwinds through tryRun's foreign-panic path — rollback,
// then repanic — so the workload harness surfaces it as a failed run.
func (tx *Tx) sanReport(d *mem.Diag) {
	if rec := tx.stm.rec; rec != nil {
		rec.Fault("sanitizer:"+string(d.Kind), tx.th.ID(), tx.th.Clock(), uint64(d.Addr))
	}
	panic(d)
}

// sanMarkFreed poisons a block released through an STM-level path the
// allocator does not see at this moment (quarantine entry, tx-cache
// park), recording the free's virtual-time provenance now rather than
// at eventual allocator release. The note fans out to all attached
// observers (shadow map and heap watcher alike).
func (tx *Tx) sanMarkFreed(a mem.Addr) {
	if tx.stm.space.Observed() {
		tx.stm.space.NoteFree(a, tx.th.ID(), tx.th.Clock())
	}
}

// sanMarkReused re-arms a block handed out from the thread-local
// tx-object cache (the allocator sees neither the free nor the malloc).
func (tx *Tx) sanMarkReused(a mem.Addr) {
	if tx.stm.space.Observed() {
		tx.stm.space.NoteReuse(a, tx.th.ID(), tx.th.Clock())
	}
}

// validateUntimed is validate against raw memory: same outcome, no
// virtual-time ticks, so consulting it inside the sanitizer cannot
// perturb the simulation.
func (tx *Tx) validateUntimed() bool {
	s := tx.stm
	for _, r := range tx.readSet {
		w := s.space.Load(s.ortAddr(r.idx))
		if isLocked(w) {
			if ownerOf(w) != tx.th.ID() {
				return false
			}
			continue
		}
		if w != r.version {
			return false
		}
	}
	return true
}
