// Transaction-object pooling: the first-class API grown out of the
// paper's §6.2 thread-local cache. The paper observed that objects
// allocated by aborted transactions and freed by committed ones can be
// recycled thread-locally instead of round-tripping through the system
// allocator; this file generalizes that seam into selectable
// disciplines modelled on the multiversioning reproduction's
// ActionMemoryPool (pool-and-reuse) and BatchActionAllocator (bulk
// allocation), so the design space — per-tx malloc vs. cache vs.
// eager pool vs. slab batching — can be swept like any other axis.
package stm

import (
	"fmt"

	"repro/internal/mem"
)

// Pooling selects the transactional-allocation recycling discipline.
type Pooling int

// Pooling disciplines.
const (
	// PoolNone: every transactional allocation and free goes to the
	// system allocator (frees via the epoch quarantine) — the paper's
	// baseline. Runs with PoolNone are byte-identical to runs that
	// predate the pooling API.
	PoolNone Pooling = iota
	// PoolCache: the paper's §6.2 thread-local transaction-object
	// cache — only blocks recycled out of transactional churn (aborted
	// allocations, committed frees) are reused; a cold cache falls
	// through to the system allocator one object at a time. "cache" is
	// the documented alias for the paper's original behavior.
	PoolCache
	// PoolReuse ("pool"): ActionMemoryPool-style pool-and-reuse. Like
	// the cache, but a miss refills the pool with a contiguous run of
	// blocks in one step, so steady-state allocations always hit the
	// pool and reused neighbours stay cache-line-adjacent.
	PoolReuse
	// PoolBatch ("batch"): BatchActionAllocator-style bulk allocation.
	// A miss carves the block out of a slab obtained with a single
	// large system allocation; individual frees never reach the system
	// allocator (freed blocks recycle through the pool, slabs are only
	// released by Flush).
	PoolBatch
)

func (p Pooling) String() string {
	switch p {
	case PoolNone:
		return "none"
	case PoolCache:
		return "cache"
	case PoolReuse:
		return "pool"
	case PoolBatch:
		return "batch"
	}
	return fmt.Sprintf("pooling(%d)", int(p))
}

// PoolingNames lists the accepted ParsePooling spellings.
func PoolingNames() []string { return []string{"none", "cache", "pool", "batch"} }

// ParsePooling maps a CLI spelling to a discipline. The empty string is
// PoolNone; "cache" selects the paper's original §6.2 behavior.
func ParsePooling(s string) (Pooling, error) {
	switch s {
	case "", "none":
		return PoolNone, nil
	case "cache":
		return PoolCache, nil
	case "pool":
		return PoolReuse, nil
	case "batch":
		return PoolBatch, nil
	}
	return PoolNone, fmt.Errorf("stm: unknown pooling discipline %q (known: %v)", s, PoolingNames())
}

// PoolStats counts one pool's traffic.
type PoolStats struct {
	Hits      uint64 // allocations served from the pool
	Misses    uint64 // requests that found the pool empty for the size
	Returns   uint64 // blocks parked in the pool by commit/abort paths
	Refills   uint64 // blocks obtained from the system allocator to restock
	Slabs     uint64 // slabs carved (PoolBatch)
	SlabBytes uint64 // bytes reserved in slabs (PoolBatch)
	Held      uint64 // blocks currently parked
}

// Add accumulates o into s (for summing per-thread pools).
func (s *PoolStats) Add(o PoolStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Returns += o.Returns
	s.Refills += o.Refills
	s.Slabs += o.Slabs
	s.SlabBytes += o.SlabBytes
	s.Held += o.Held
}

// TxPool is the per-thread recycling seam consulted by the
// transactional allocation paths. Get serves Tx.Malloc before the
// system allocator is asked; Put is offered every block leaving a
// transaction — allocated by an aborted one, or freed by a committed
// one — and a Put that returns false routes the block down the default
// path instead (system free on abort, epoch quarantine on commit).
// Implementations run on the owning simulated thread only (the engine
// serializes execution) and must price the work they model through the
// thread's cost model, as the in-tree disciplines do.
type TxPool interface {
	// Discipline reports which policy the pool implements.
	Discipline() Pooling
	// Get serves a transactional allocation of the given request size,
	// returning 0 on a miss.
	Get(tx *Tx, size uint64) mem.Addr
	// Put offers the pool a block leaving the transaction, reporting
	// whether the pool kept it.
	Put(tx *Tx, addr mem.Addr, size uint64) bool
	// Flush hands every parked block (and slab) back to the system
	// allocator. Workloads do not call it mid-run — a flush changes
	// heap state; it exists for end-of-phase teardown and tests.
	Flush(tx *Tx)
	// Stats returns the pool's cumulative traffic counters.
	Stats() PoolStats
}

// NewTxPool builds the in-tree pool for a discipline (nil for
// PoolNone: the baseline discipline is the absence of a pool).
func NewTxPool(d Pooling) TxPool {
	switch d {
	case PoolCache:
		return &cachePool{blocks: map[uint64][]mem.Addr{}}
	case PoolReuse:
		return &reusePool{recycled: map[uint64][]mem.Addr{}, fresh: map[uint64][]mem.Addr{}}
	case PoolBatch:
		return &batchPool{recycled: map[uint64][]mem.Addr{}, cursors: map[uint64]*slabCursor{}}
	}
	return nil
}

// ---- cache: the paper's §6.2 thread-local transaction-object cache ----

type cachePool struct {
	blocks map[uint64][]mem.Addr // request size -> parked blocks (LIFO)
	stats  PoolStats
}

func (p *cachePool) Discipline() Pooling { return PoolCache }

func (p *cachePool) Get(tx *Tx, size uint64) mem.Addr {
	lst := p.blocks[size]
	if len(lst) == 0 {
		p.stats.Misses++
		return 0
	}
	a := lst[len(lst)-1]
	p.blocks[size] = lst[:len(lst)-1]
	p.stats.Hits++
	p.stats.Held--
	tx.stats.CacheHits++
	tx.th.Tick(tx.th.Cost().AllocOp)
	tx.sanMarkReused(a)
	return a
}

func (p *cachePool) Put(tx *Tx, addr mem.Addr, size uint64) bool {
	tx.sanMarkFreed(addr)
	p.blocks[size] = append(p.blocks[size], addr)
	p.stats.Returns++
	p.stats.Held++
	tx.stats.CacheReturns++
	tx.th.Tick(tx.th.Cost().AllocOp)
	return true
}

func (p *cachePool) Flush(tx *Tx) {
	for size, lst := range p.blocks {
		for _, a := range lst {
			tx.stm.allocator.Free(tx.th, a)
		}
		delete(p.blocks, size)
	}
	p.stats.Held = 0
}

func (p *cachePool) Stats() PoolStats { return p.stats }

// ---- pool: ActionMemoryPool-style eager pool-and-reuse ----

// poolRefillRun is how many blocks a reuse-pool miss allocates at once.
// A run of back-to-back allocations lands the blocks contiguously, so
// later pool hits walk adjacent lines instead of whatever placement the
// demand-paced cache accreted.
const poolRefillRun = 8

type reusePool struct {
	recycled map[uint64][]mem.Addr // blocks returned by commit/abort (need reuse re-arm)
	fresh    map[uint64][]mem.Addr // refill blocks never handed out yet
	stats    PoolStats
}

func (p *reusePool) Discipline() Pooling { return PoolReuse }

func (p *reusePool) Get(tx *Tx, size uint64) mem.Addr {
	if lst := p.recycled[size]; len(lst) > 0 {
		a := lst[len(lst)-1]
		p.recycled[size] = lst[:len(lst)-1]
		p.stats.Hits++
		p.stats.Held--
		tx.stats.CacheHits++
		tx.th.Tick(tx.th.Cost().AllocOp)
		tx.sanMarkReused(a)
		return a
	}
	lst := p.fresh[size]
	if len(lst) == 0 {
		p.stats.Misses++
		for i := 0; i < poolRefillRun; i++ {
			a := tx.stm.allocator.Malloc(tx.th, size)
			if a == 0 {
				break // OOM: serve what the run got; an empty run falls through
			}
			lst = append(lst, a)
			p.stats.Refills++
			p.stats.Held++
		}
		if len(lst) == 0 {
			return 0
		}
		// Reverse so pops hand the run out in allocation order.
		for i, j := 0, len(lst)-1; i < j; i, j = i+1, j-1 {
			lst[i], lst[j] = lst[j], lst[i]
		}
	}
	a := lst[len(lst)-1]
	p.fresh[size] = lst[:len(lst)-1]
	p.stats.Hits++
	p.stats.Held--
	tx.stats.CacheHits++
	tx.th.Tick(tx.th.Cost().AllocOp)
	return a
}

func (p *reusePool) Put(tx *Tx, addr mem.Addr, size uint64) bool {
	tx.sanMarkFreed(addr)
	p.recycled[size] = append(p.recycled[size], addr)
	p.stats.Returns++
	p.stats.Held++
	tx.stats.CacheReturns++
	tx.th.Tick(tx.th.Cost().AllocOp)
	return true
}

func (p *reusePool) Flush(tx *Tx) {
	for size, lst := range p.recycled {
		for _, a := range lst {
			tx.stm.allocator.Free(tx.th, a)
		}
		delete(p.recycled, size)
	}
	for size, lst := range p.fresh {
		for _, a := range lst {
			tx.stm.allocator.Free(tx.th, a)
		}
		delete(p.fresh, size)
	}
	p.stats.Held = 0
}

func (p *reusePool) Stats() PoolStats { return p.stats }

// ---- batch: BatchActionAllocator-style slab carving ----

// batchSlabObjs is how many objects one slab allocation reserves.
const batchSlabObjs = 64

// slabCursor tracks the carve position inside the current slab for one
// request size.
type slabCursor struct {
	next mem.Addr // next sub-block to hand out
	end  mem.Addr // one past the slab's last sub-block
}

type batchPool struct {
	recycled map[uint64][]mem.Addr  // freed sub-blocks recycled for reuse
	cursors  map[uint64]*slabCursor // request size -> current slab
	slabs    []mem.Addr             // slab bases, released only by Flush
	stats    PoolStats
}

func (p *batchPool) Discipline() Pooling { return PoolBatch }

// stride is the carve step: the request size rounded to whole words so
// sub-blocks never share a word.
func batchStride(size uint64) uint64 { return (size + 7) &^ 7 }

func (p *batchPool) Get(tx *Tx, size uint64) mem.Addr {
	if lst := p.recycled[size]; len(lst) > 0 {
		a := lst[len(lst)-1]
		p.recycled[size] = lst[:len(lst)-1]
		p.stats.Hits++
		p.stats.Held--
		tx.stats.CacheHits++
		tx.th.Tick(tx.th.Cost().AllocOp)
		return a
	}
	cur := p.cursors[size]
	if cur == nil || cur.next >= cur.end {
		stride := batchStride(size)
		base := tx.stm.allocator.Malloc(tx.th, stride*batchSlabObjs)
		if base == 0 {
			p.stats.Misses++
			return 0
		}
		if cur == nil {
			cur = &slabCursor{}
			p.cursors[size] = cur
		}
		cur.next = base
		cur.end = base + mem.Addr(stride*batchSlabObjs)
		p.slabs = append(p.slabs, base)
		p.stats.Slabs++
		p.stats.SlabBytes += stride * batchSlabObjs
	}
	a := cur.next
	cur.next += mem.Addr(batchStride(size))
	p.stats.Hits++
	tx.stats.CacheHits++
	tx.th.Tick(tx.th.Cost().AllocOp)
	return a
}

func (p *batchPool) Put(tx *Tx, addr mem.Addr, size uint64) bool {
	// Sub-blocks must never reach the system allocator (it never handed
	// them out), so the pool keeps every return. They are also invisible
	// to the block-granularity observers (shadow map, heap watcher):
	// marking one sub-block freed would poison the whole owning slab —
	// the first carved sub-block even shares its base address — and
	// every live neighbor would misread as use-after-free. The slab
	// stays "allocated" from the sanitizer's view until Flush.
	p.recycled[size] = append(p.recycled[size], addr)
	p.stats.Returns++
	p.stats.Held++
	tx.stats.CacheReturns++
	tx.th.Tick(tx.th.Cost().AllocOp)
	return true
}

func (p *batchPool) Flush(tx *Tx) {
	for _, base := range p.slabs {
		tx.stm.allocator.Free(tx.th, base)
	}
	p.slabs = p.slabs[:0]
	clear(p.recycled)
	clear(p.cursors)
	p.stats.Held = 0
}

func (p *batchPool) Stats() PoolStats { return p.stats }
