package stm

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/vtime"
)

// TestSteadyStateAllocBudget pins the host allocations of the STM hot
// path: once a thread's transaction descriptor has warmed up (read/
// write/undo slices, open-addressing tables, lock records all at
// capacity), a begin/load/store/commit cycle must not allocate on the
// host at all. Any regression here multiplies across every simulated
// transaction of every sweep cell.
func TestSteadyStateAllocBudget(t *testing.T) {
	space := mem.NewSpace()
	s := New(space, Config{})
	th := vtime.Solo(space, 0, nil)
	words := space.MustMap(mem.PageSize, 0)

	body := func(tx *Tx) {
		for i := 0; i < 16; i++ {
			a := words + mem.Addr(i*8)
			tx.Store(a, tx.Load(a)+1)
		}
	}
	// Warm up: grow the descriptor's slices and tables to capacity.
	for i := 0; i < 32; i++ {
		s.Atomic(th, body)
	}
	if avg := testing.AllocsPerRun(100, func() { s.Atomic(th, body) }); avg > 0 {
		t.Errorf("steady-state begin/load/store/commit allocates %.1f objects/tx, want 0", avg)
	}
}

// TestSteadyStateAllocBudgetWithMalloc extends the budget to the
// transactional allocation path (Malloc + Free + quarantine): the
// simulated allocator may tick virtual time, but the host side must
// stay allocation-free once warm.
func TestSteadyStateAllocBudgetWithMalloc(t *testing.T) {
	for _, pooling := range []Pooling{PoolNone, PoolCache, PoolReuse, PoolBatch} {
		t.Run(pooling.String(), func(t *testing.T) {
			space := mem.NewSpace()
			a := alloc.MustNew("tbb", space, 1)
			s := New(space, Config{Allocator: a, Pooling: pooling})
			th := vtime.Solo(space, 0, nil)

			body := func(tx *Tx) {
				a := tx.Malloc(48)
				tx.Store(a, 7)
				tx.Free(a, 48)
			}
			for i := 0; i < 64; i++ {
				s.Atomic(th, body)
			}
			// The epoch quarantine batches frees; allow the amortized
			// slice churn of its drain but nothing per-transaction.
			if avg := testing.AllocsPerRun(100, func() { s.Atomic(th, body) }); avg > 0.5 {
				t.Errorf("steady-state malloc/free tx allocates %.2f objects/tx, want ~0", avg)
			}
		})
	}
}
