package stm

import "repro/internal/mem"

// Race-checker glue: when a RaceHook is configured, the transaction
// lifecycle feeds the happens-before checker. Like the sanitizer glue
// (sanitize.go) the hooks are pure observation — they never tick
// virtual time, never touch simulated memory, and never change
// protocol decisions — so a checked run is byte-identical to an
// unchecked one. Every helper is nil-checked so the disabled path
// costs one branch.

// RaceHook receives happens-before events from the transaction
// lifecycle. It is implemented by *race.Checker; stm sees only this
// narrow interface so the race package can build on stm's events
// without an import cycle.
//
// Event semantics: TxAccess reports speculative accesses that must not
// reach the analysis unless the transaction commits (TxCommit flushes
// them; TxAbort discards them). TxCommit's ver is the commit's
// published version — the happens-before release point a later
// transaction with snapshot >= ver acquires at TxBegin/TxExtend — or 0
// for a read-only commit, which publishes nothing. TxFreeCommitted
// marks a block entering quarantine, with its allocator-level free
// notification still to come; QuarantineRelease precedes the reclaim
// frees and carries the epoch guarantee that every active snapshot has
// passed the freeing commits. The Dur* trio brackets the durable
// commit: DurStore between DurLogCommitted and DurApply is ordered,
// anywhere else it is a store made visible before its redo log.
type RaceHook interface {
	TxBegin(tid int, snapshot uint64)
	TxExtend(tid int, snapshot uint64)
	TxAccess(tid int, a mem.Addr, write bool)
	TxCommit(tid int, ver uint64)
	TxAbort(tid int)
	TxFreeCommitted(tid int, base mem.Addr)
	QuarantineRelease(tid int)
	DurLogCommitted(tid int)
	DurStore(tid int, a mem.Addr)
	DurApply(tid int)
}

func (tx *Tx) raceBegin() {
	if r := tx.stm.race; r != nil {
		r.TxBegin(tx.th.ID(), uint64(tx.snapshot))
	}
}

func (tx *Tx) raceExtend() {
	if r := tx.stm.race; r != nil {
		r.TxExtend(tx.th.ID(), uint64(tx.snapshot))
	}
}

func (tx *Tx) raceAccess(a mem.Addr, write bool) {
	if r := tx.stm.race; r != nil {
		r.TxAccess(tx.th.ID(), a, write)
	}
}

func (tx *Tx) raceCommit(ver uint64) {
	if r := tx.stm.race; r != nil {
		r.TxCommit(tx.th.ID(), ver)
	}
}

func (tx *Tx) raceAbort() {
	if r := tx.stm.race; r != nil {
		r.TxAbort(tx.th.ID())
	}
}

func (tx *Tx) raceTxFreeCommitted(base mem.Addr) {
	if r := tx.stm.race; r != nil {
		r.TxFreeCommitted(tx.th.ID(), base)
	}
}

func (s *STM) raceQuarantineRelease(tid int) {
	if r := s.race; r != nil {
		r.QuarantineRelease(tid)
	}
}

func (tx *Tx) raceDurLogCommitted() {
	if r := tx.stm.race; r != nil {
		r.DurLogCommitted(tx.th.ID())
	}
}

func (tx *Tx) raceDurStore(a mem.Addr) {
	if r := tx.stm.race; r != nil {
		r.DurStore(tx.th.ID(), a)
	}
}

func (tx *Tx) raceDurApply() {
	if r := tx.stm.race; r != nil {
		r.DurApply(tx.th.ID())
	}
}
