package stm

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/vtime"
)

var designs = []Design{ETLWriteBack, ETLWriteThrough, CTL}

// Every design must pass the same correctness matrix.

func TestDesignsCounterCorrect(t *testing.T) {
	for _, d := range designs {
		t.Run(d.String(), func(t *testing.T) {
			space, e := newWorld(8)
			s := New(space, Config{Design: d})
			counter := space.MustMap(mem.PageSize, 0)
			e.Run(func(th *vtime.Thread) {
				for i := 0; i < 300; i++ {
					s.Atomic(th, func(tx *Tx) {
						tx.Store(counter, tx.Load(counter)+1)
					})
				}
			})
			if got := space.Load(counter); got != 2400 {
				t.Errorf("counter = %d, want 2400", got)
			}
			if s.Stats().Aborts == 0 {
				t.Error("no aborts under contention")
			}
		})
	}
}

func TestDesignsMoneyConservation(t *testing.T) {
	for _, d := range designs {
		t.Run(d.String(), func(t *testing.T) {
			space, e := newWorld(6)
			s := New(space, Config{Design: d})
			const accounts = 32
			base := space.MustMap(mem.PageSize, 0)
			for i := 0; i < accounts; i++ {
				space.Store(base+mem.Addr(i*8), 1000)
			}
			e.Run(func(th *vtime.Thread) {
				rng := uint64(th.ID())*999331 + 7
				for i := 0; i < 250; i++ {
					rng = rng*6364136223846793005 + 1442695040888963407
					from := mem.Addr((rng>>33)%accounts) * 8
					to := mem.Addr((rng>>17)%accounts) * 8
					if from == to {
						continue
					}
					s.Atomic(th, func(tx *Tx) {
						a := tx.Load(base + from)
						b := tx.Load(base + to)
						if a >= 10 {
							tx.Store(base+from, a-10)
							tx.Store(base+to, b+10)
						}
					})
				}
			})
			var total uint64
			for i := 0; i < accounts; i++ {
				total += space.Load(base + mem.Addr(i*8))
			}
			if total != accounts*1000 {
				t.Errorf("total = %d, want %d", total, accounts*1000)
			}
		})
	}
}

func TestDesignsReadOwnWrites(t *testing.T) {
	for _, d := range designs {
		t.Run(d.String(), func(t *testing.T) {
			space, _ := newWorld(1)
			s := New(space, Config{Design: d})
			a := space.MustMap(mem.PageSize, 0)
			th := vtime.Solo(space, 0, nil)
			s.Atomic(th, func(tx *Tx) {
				tx.Store(a, 1)
				tx.Store(a+8, tx.Load(a)+1)
				tx.Store(a, tx.Load(a+8)+1)
				if got := tx.Load(a); got != 3 {
					t.Errorf("chained read-own-write = %d, want 3", got)
				}
			})
			if space.Load(a) != 3 || space.Load(a+8) != 2 {
				t.Errorf("committed %d/%d, want 3/2", space.Load(a), space.Load(a+8))
			}
		})
	}
}

func TestDesignsAbortRestoresMemory(t *testing.T) {
	for _, d := range designs {
		t.Run(d.String(), func(t *testing.T) {
			space, _ := newWorld(1)
			s := New(space, Config{Design: d})
			a := space.MustMap(mem.PageSize, 0)
			space.Store(a, 7)
			space.Store(a+8, 8)
			th := vtime.Solo(space, 0, nil)
			tries := 0
			s.Atomic(th, func(tx *Tx) {
				tries++
				tx.Store(a, 100)
				tx.Store(a+8, 200)
				tx.Store(a, 101) // second write to the same word
				if tries == 1 {
					// The write-through design has dirty memory here;
					// aborting must restore both words.
					tx.Restart()
				}
			})
			if space.Load(a) != 101 || space.Load(a+8) != 200 {
				t.Errorf("final = %d/%d, want 101/200", space.Load(a), space.Load(a+8))
			}
		})
	}
}

func TestDesignsTxAllocUndo(t *testing.T) {
	for _, d := range designs {
		t.Run(d.String(), func(t *testing.T) {
			space, _ := newWorld(1)
			al := alloc.MustNew("tbb", space, 1)
			s := New(space, Config{Design: d, Allocator: al})
			th := vtime.Solo(space, 0, nil)
			tries := 0
			s.Atomic(th, func(tx *Tx) {
				tries++
				n := tx.Malloc(16)
				tx.Store(n, 1)
				if tries == 1 {
					tx.Restart()
				}
			})
			st := al.Stats()
			if st.Mallocs != 2 || st.Frees != 1 {
				t.Errorf("allocator: %d mallocs / %d frees, want 2/1", st.Mallocs, st.Frees)
			}
		})
	}
}

func TestDesignsDeterministic(t *testing.T) {
	for _, d := range designs {
		t.Run(d.String(), func(t *testing.T) {
			run := func() (uint64, uint64) {
				space, e := newWorld(4)
				s := New(space, Config{Design: d})
				base := space.MustMap(mem.PageSize, 0)
				e.Run(func(th *vtime.Thread) {
					for i := 0; i < 150; i++ {
						s.Atomic(th, func(tx *Tx) {
							tx.Store(base, tx.Load(base)+1)
						})
					}
				})
				return s.Stats().Aborts, e.MaxClock()
			}
			a1, c1 := run()
			a2, c2 := run()
			if a1 != a2 || c1 != c2 {
				t.Errorf("nondeterministic: %d/%d aborts, %d/%d cycles", a1, a2, c1, c2)
			}
		})
	}
}

// Write-through writes in place under its stripe lock: memory shows the
// new value mid-transaction.
func TestWriteThroughInPlace(t *testing.T) {
	space, _ := newWorld(1)
	s := New(space, Config{Design: ETLWriteThrough})
	a := space.MustMap(mem.PageSize, 0)
	space.Store(a, 7)
	th := vtime.Solo(space, 0, nil)
	s.Atomic(th, func(tx *Tx) {
		tx.Store(a, 99)
		if got := space.Load(a); got != 99 {
			t.Errorf("mid-tx memory = %d, want 99 (in-place)", got)
		}
	})
}

// CTL holds no stripe locks while the transaction body runs: a
// concurrent read-only transaction over the same stripe commits without
// aborting even while a writer transaction is open.
func TestCTLNoEncounterLocks(t *testing.T) {
	space, _ := newWorld(1)
	s := New(space, Config{Design: CTL})
	a := space.MustMap(mem.PageSize, 0)
	th := vtime.Solo(space, 0, nil)
	s.Atomic(th, func(tx *Tx) {
		tx.Store(a, 5)
		// The ORT entry must still be unlocked here.
		w := space.Load(s.ortAddr(s.OrtIndex(a)))
		if isLocked(w) {
			t.Error("CTL locked the stripe before commit")
		}
	})
	if w := space.Load(s.ortAddr(s.OrtIndex(a))); isLocked(w) {
		t.Error("stripe still locked after commit")
	}
	if space.Load(a) != 5 {
		t.Error("CTL commit lost the write")
	}
}

// ETL (either flavour) locks at encounter time.
func TestETLEncounterLocks(t *testing.T) {
	for _, d := range []Design{ETLWriteBack, ETLWriteThrough} {
		t.Run(d.String(), func(t *testing.T) {
			space, _ := newWorld(1)
			s := New(space, Config{Design: d})
			a := space.MustMap(mem.PageSize, 0)
			th := vtime.Solo(space, 0, nil)
			s.Atomic(th, func(tx *Tx) {
				tx.Store(a, 5)
				if w := space.Load(s.ortAddr(s.OrtIndex(a))); !isLocked(w) {
					t.Error("ETL stripe not locked at encounter time")
				}
			})
		})
	}
}
