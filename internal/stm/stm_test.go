package stm

import (
	"testing"

	_ "repro/internal/alloc/glibc"
	_ "repro/internal/alloc/hoard"
	_ "repro/internal/alloc/tbb"
	_ "repro/internal/alloc/tcmalloc"

	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/vtime"
)

func newWorld(threads int) (*mem.Space, *vtime.Engine) {
	space := mem.NewSpace()
	return space, vtime.NewEngine(space, threads, vtime.Config{})
}

func TestCounterUnderContention(t *testing.T) {
	space, e := newWorld(8)
	s := New(space, Config{})
	counter := space.MustMap(mem.PageSize, 0)
	const perThread = 500
	e.Run(func(th *vtime.Thread) {
		for i := 0; i < perThread; i++ {
			s.Atomic(th, func(tx *Tx) {
				tx.Store(counter, tx.Load(counter)+1)
			})
		}
	})
	if got := space.Load(counter); got != 8*perThread {
		t.Errorf("counter = %d, want %d", got, 8*perThread)
	}
	st := s.Stats()
	if st.Commits != 8*perThread {
		t.Errorf("commits = %d, want %d", st.Commits, 8*perThread)
	}
	if st.Aborts == 0 {
		t.Error("no aborts under 8-thread single-word contention; interleaving broken")
	}
}

func TestMoneyConservation(t *testing.T) {
	space, e := newWorld(8)
	s := New(space, Config{})
	const accounts = 64
	base := space.MustMap(mem.PageSize, 0)
	for i := 0; i < accounts; i++ {
		space.Store(base+mem.Addr(i*8), 1000)
	}
	e.Run(func(th *vtime.Thread) {
		rng := uint64(th.ID())*2654435761 + 1
		for i := 0; i < 400; i++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			from := mem.Addr((rng>>33)%accounts) * 8
			to := mem.Addr((rng>>17)%accounts) * 8
			if from == to {
				continue
			}
			s.Atomic(th, func(tx *Tx) {
				a := tx.Load(base + from)
				b := tx.Load(base + to)
				if a >= 10 {
					tx.Store(base+from, a-10)
					tx.Store(base+to, b+10)
				}
			})
		}
	})
	var total uint64
	for i := 0; i < accounts; i++ {
		total += space.Load(base + mem.Addr(i*8))
	}
	if total != accounts*1000 {
		t.Errorf("total = %d, want %d (isolation violated)", total, accounts*1000)
	}
}

func TestReadsOwnWrites(t *testing.T) {
	space, _ := newWorld(1)
	s := New(space, Config{})
	a := space.MustMap(mem.PageSize, 0)
	th := vtime.Solo(space, 0, nil)
	s.Atomic(th, func(tx *Tx) {
		tx.Store(a, 42)
		if got := tx.Load(a); got != 42 {
			t.Errorf("Load after Store = %d, want 42 (write-back lost)", got)
		}
		tx.Store(a, 43)
		if got := tx.Load(a); got != 43 {
			t.Errorf("Load after second Store = %d, want 43", got)
		}
	})
	if got := space.Load(a); got != 43 {
		t.Errorf("after commit: %d, want 43", got)
	}
}

func TestWriteBackInvisibleBeforeCommit(t *testing.T) {
	space, _ := newWorld(1)
	s := New(space, Config{})
	a := space.MustMap(mem.PageSize, 0)
	space.Store(a, 7)
	th := vtime.Solo(space, 0, nil)
	s.Atomic(th, func(tx *Tx) {
		tx.Store(a, 99)
		// Write-back: memory must still hold the old value here.
		if got := space.Load(a); got != 7 {
			t.Errorf("memory shows %d before commit, want 7", got)
		}
	})
	if got := space.Load(a); got != 99 {
		t.Errorf("memory shows %d after commit, want 99", got)
	}
}

func TestAbortRestoresState(t *testing.T) {
	space, _ := newWorld(1)
	s := New(space, Config{})
	a := space.MustMap(mem.PageSize, 0)
	space.Store(a, 7)
	th := vtime.Solo(space, 0, nil)
	tries := 0
	s.Atomic(th, func(tx *Tx) {
		tries++
		tx.Store(a, 99)
		if tries == 1 {
			tx.Restart()
		}
	})
	if tries != 2 {
		t.Errorf("tries = %d, want 2", tries)
	}
	if got := space.Load(a); got != 99 {
		t.Errorf("final value = %d, want 99", got)
	}
	st := s.Stats()
	if st.Aborts != 1 || st.ByReason[AbortExplicit] != 1 {
		t.Errorf("stats = %+v, want 1 explicit abort", st)
	}
}

func TestOrtLockReleasedAfterAbort(t *testing.T) {
	space, _ := newWorld(1)
	s := New(space, Config{})
	a := space.MustMap(mem.PageSize, 0)
	th := vtime.Solo(space, 0, nil)
	first := true
	s.Atomic(th, func(tx *Tx) {
		tx.Store(a, 1)
		if first {
			first = false
			tx.Restart()
		}
	})
	// The ORT entry must be unlocked now.
	w := space.Load(s.ortAddr(s.OrtIndex(a)))
	if isLocked(w) {
		t.Errorf("ORT entry still locked after commit: %#x", w)
	}
}

func TestSameStripeDifferentWordsConflict(t *testing.T) {
	// Two addresses 16 bytes apart share a 32-byte stripe under shift 5:
	// a writer of one must abort a reader/writer of the other (a FALSE
	// conflict — different addresses).
	space, e := newWorld(2)
	s := New(space, Config{})
	base := space.MustMap(mem.PageSize, 0)
	x, y := base, base+16
	if s.OrtIndex(x) != s.OrtIndex(y) {
		t.Fatalf("test setup: %#x and %#x do not share a stripe", uint64(x), uint64(y))
	}
	e.Run(func(th *vtime.Thread) {
		addr := x
		if th.ID() == 1 {
			addr = y
		}
		for i := 0; i < 300; i++ {
			s.Atomic(th, func(tx *Tx) {
				v := tx.Load(addr)
				th.Work(50)
				tx.Store(addr, v+1)
			})
		}
	})
	st := s.Stats()
	if st.Aborts == 0 {
		t.Error("no aborts despite stripe sharing")
	}
	if st.FalseAborts == 0 {
		t.Error("stripe-sharing aborts not classified as false aborts")
	}
	if got := space.Load(x) + space.Load(y); got != 600 {
		t.Errorf("sum = %d, want 600", got)
	}
}

func TestDifferentStripesNoFalseAborts(t *testing.T) {
	// Addresses 32 bytes apart land in different stripes: two threads
	// updating them must never conflict.
	space, e := newWorld(2)
	s := New(space, Config{})
	base := space.MustMap(mem.PageSize, 0)
	x, y := base, base+32
	if s.OrtIndex(x) == s.OrtIndex(y) {
		t.Fatalf("test setup: %#x and %#x share a stripe", uint64(x), uint64(y))
	}
	e.Run(func(th *vtime.Thread) {
		addr := x
		if th.ID() == 1 {
			addr = y
		}
		for i := 0; i < 300; i++ {
			s.Atomic(th, func(tx *Tx) {
				tx.Store(addr, tx.Load(addr)+1)
			})
		}
	})
	if st := s.Stats(); st.Aborts != 0 {
		t.Errorf("aborts = %d, want 0 for disjoint stripes", st.Aborts)
	}
}

func TestOrtAliasing64MB(t *testing.T) {
	// The Glibc arena scenario (§5.2): the ORT covers 2^20 entries of 32
	// bytes = 32 MiB before wrapping, so blocks at equal offsets in
	// 64 MiB-aligned arenas alias to the same entry.
	space, _ := newWorld(1)
	s := New(space, Config{})
	a := mem.Addr(1 << 28)
	if s.OrtIndex(a) != s.OrtIndex(a+64<<20) {
		t.Errorf("addresses 64MB apart do not alias: %d vs %d", s.OrtIndex(a), s.OrtIndex(a+64<<20))
	}
	if s.OrtIndex(a) == s.OrtIndex(a+16<<20) {
		t.Error("addresses 16MB apart alias; ORT smaller than expected")
	}
}

func TestSnapshotExtension(t *testing.T) {
	// A reader that starts before a disjoint writer commits must be able
	// to extend its snapshot rather than abort.
	space, e := newWorld(2)
	s := New(space, Config{})
	base := space.MustMap(mem.PageSize, 0)
	// Reader reads r1..r8 slowly; writer bumps w (different stripes).
	rbase, w := base, base+4096
	e.Run(func(th *vtime.Thread) {
		if th.ID() == 0 {
			for i := 0; i < 50; i++ {
				s.Atomic(th, func(tx *Tx) {
					for j := 0; j < 8; j++ {
						tx.Load(rbase + mem.Addr(j*64))
						th.Work(200)
					}
				})
			}
		} else {
			for i := 0; i < 400; i++ {
				s.Atomic(th, func(tx *Tx) {
					tx.Store(w, tx.Load(w)+1)
				})
			}
		}
	})
	st := s.Stats()
	if st.Aborts != 0 {
		t.Errorf("disjoint reader/writer aborted %d times; snapshot extension broken", st.Aborts)
	}
}

func TestTxMallocUndoneOnAbort(t *testing.T) {
	for _, name := range alloc.Names() {
		t.Run(name, func(t *testing.T) {
			space, _ := newWorld(1)
			a := alloc.MustNew(name, space, 1)
			s := New(space, Config{Allocator: a})
			th := vtime.Solo(space, 0, nil)
			tries := 0
			s.Atomic(th, func(tx *Tx) {
				tries++
				tx.Malloc(16)
				if tries == 1 {
					tx.Restart()
				}
			})
			st := a.Stats()
			if st.Mallocs != 2 || st.Frees != 1 {
				t.Errorf("allocator saw %d mallocs / %d frees, want 2/1 (abort must free)", st.Mallocs, st.Frees)
			}
		})
	}
}

func TestTxFreeDeferredToCommit(t *testing.T) {
	space, _ := newWorld(1)
	a := alloc.MustNew("tbb", space, 1)
	s := New(space, Config{Allocator: a})
	th := vtime.Solo(space, 0, nil)
	blk := a.Malloc(th, 16)
	tries := 0
	s.Atomic(th, func(tx *Tx) {
		tries++
		tx.Free(blk, 16)
		if tries == 1 {
			tx.Restart() // aborted tx must NOT free the block
		}
	})
	st := a.Stats()
	if st.Frees != 1 {
		t.Errorf("frees = %d, want exactly 1 (deferred to the committing execution)", st.Frees)
	}
}

func TestTxFreeConflictsWithReaders(t *testing.T) {
	// Freeing writes the dying object's words, so a concurrent reader
	// of the object conflicts instead of observing recycled memory.
	space, _ := newWorld(1)
	a := alloc.MustNew("tbb", space, 1)
	s := New(space, Config{Allocator: a})
	th := vtime.Solo(space, 0, nil)
	blk := a.Malloc(th, 16)
	s.Atomic(th, func(tx *Tx) { tx.Free(blk, 16) })
	w := space.Load(s.ortAddr(s.OrtIndex(blk)))
	if isLocked(w) {
		t.Fatal("ORT entry left locked after committed free")
	}
	if versionOf(w) == 0 {
		t.Error("freed block's stripe version not bumped; readers would miss the free")
	}
}

func TestCacheTxObjectsReuse(t *testing.T) {
	space, _ := newWorld(1)
	a := alloc.MustNew("glibc", space, 1)
	s := New(space, Config{Allocator: a, CacheTxObjects: true})
	th := vtime.Solo(space, 0, nil)

	// A committed free parks the block in the cache...
	var blk mem.Addr
	s.Atomic(th, func(tx *Tx) { blk = tx.Malloc(16) })
	s.Atomic(th, func(tx *Tx) { tx.Free(blk, 16) })
	// ... and the next allocation of that size reuses it.
	var got mem.Addr
	s.Atomic(th, func(tx *Tx) { got = tx.Malloc(16) })
	if got != blk {
		t.Errorf("cached block not reused: got %#x, want %#x", uint64(got), uint64(blk))
	}
	st := s.Stats()
	if st.CacheHits != 1 || st.CacheReturns != 1 {
		t.Errorf("cache stats = hits %d returns %d, want 1/1", st.CacheHits, st.CacheReturns)
	}
	if as := a.Stats(); as.Frees != 0 {
		t.Errorf("system allocator saw %d frees, want 0 with caching on", as.Frees)
	}
}

func TestReadOnlyTxDoesNotBumpClock(t *testing.T) {
	space, _ := newWorld(1)
	s := New(space, Config{})
	a := space.MustMap(mem.PageSize, 0)
	th := vtime.Solo(space, 0, nil)
	s.Atomic(th, func(tx *Tx) { tx.Store(a, 1) })
	before := s.ClockValue(th)
	for i := 0; i < 5; i++ {
		s.Atomic(th, func(tx *Tx) { tx.Load(a) })
	}
	if got := s.ClockValue(th); got != before {
		t.Errorf("read-only transactions bumped the clock: %d -> %d", before, got)
	}
}

func TestForeignPanicPropagatesAndCleansUp(t *testing.T) {
	space, _ := newWorld(1)
	s := New(space, Config{})
	a := space.MustMap(mem.PageSize, 0)
	th := vtime.Solo(space, 0, nil)
	func() {
		defer func() {
			if r := recover(); r != "app bug" {
				t.Errorf("recovered %v, want app bug", r)
			}
		}()
		s.Atomic(th, func(tx *Tx) {
			tx.Store(a, 5)
			panic("app bug")
		})
	}()
	if isLocked(space.Load(s.ortAddr(s.OrtIndex(a)))) {
		t.Error("ORT entry leaked locked after foreign panic")
	}
	// The STM must remain usable.
	s.Atomic(th, func(tx *Tx) { tx.Store(a, 6) })
	if space.Load(a) != 6 {
		t.Error("STM unusable after foreign panic")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (uint64, uint64) {
		space, e := newWorld(4)
		s := New(space, Config{})
		base := space.MustMap(mem.PageSize, 0)
		e.Run(func(th *vtime.Thread) {
			for i := 0; i < 200; i++ {
				s.Atomic(th, func(tx *Tx) {
					tx.Store(base, tx.Load(base)+1)
				})
			}
		})
		return s.Stats().Aborts, e.MaxClock()
	}
	a1, c1 := run()
	a2, c2 := run()
	if a1 != a2 || c1 != c2 {
		t.Errorf("nondeterministic: aborts %d vs %d, clock %d vs %d", a1, a2, c1, c2)
	}
}

func TestShiftControlsStripeWidth(t *testing.T) {
	space, _ := newWorld(1)
	s4 := New(space, Config{Shift: 4})
	base := mem.Addr(1 << 28)
	if s4.OrtIndex(base) == s4.OrtIndex(base+16) {
		t.Error("shift 4: addresses 16 apart share a stripe, want distinct")
	}
	s5 := New(space, Config{Shift: 5})
	if s5.OrtIndex(base) != s5.OrtIndex(base+16) {
		t.Error("shift 5: addresses 16 apart in distinct stripes, want shared")
	}
}
