// Package stm implements a blocking, word-based software transactional
// memory in the mould of TinySTM 1.0.4's default configuration:
// encounter-time locking (ETL), write-back, a global version clock with
// snapshot extension, and the SUICIDE contention-management strategy
// (the transaction that detects the conflict aborts itself and restarts
// immediately).
//
// Conflicts are tracked through an ownership-record table (ORT) of
// versioned locks. A memory address maps to an entry by discarding its
// Shift low bits and taking the rest modulo the table size:
//
//	entry = (addr >> Shift) % 2^OrtBits
//
// With the default Shift of 5, every 32 consecutive bytes share one
// versioned lock, and — the paper's central observation — the
// *allocator's* placement decisions determine which objects share a
// stripe or alias to the same entry. Both the ORT and the global clock
// live in simulated memory, so their cache behaviour (shift-amount
// footprint, clock-line ping-pong) is priced by the machine model like
// any other access.
//
// The versioned-lock word format follows TinySTM: bit 0 is the lock
// bit; an unlocked word carries a version in the upper bits, a locked
// word carries the owner's thread id.
package stm

import (
	"fmt"
	"slices"

	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/vtime"
)

// Defaults matching the paper's TinySTM configuration (§4).
const (
	DefaultOrtBits = 20
	DefaultShift   = 5
)

// Design selects the STM algorithm variant. The paper studies the
// TinySTM default (encounter-time locking with write-back); the other
// two are TinySTM's WRITE_THROUGH build and a TL2-style commit-time
// locking scheme, provided for the paper's future-work question of
// whether the allocator effects carry over to other STM classes.
type Design int

// STM designs.
const (
	// ETLWriteBack: encounter-time locking, values buffered until
	// commit (TinySTM default; the paper's configuration).
	ETLWriteBack Design = iota
	// ETLWriteThrough: encounter-time locking, in-place writes with an
	// undo log replayed on abort.
	ETLWriteThrough
	// CTL: commit-time locking; writes buffer without locking and all
	// stripes are acquired at commit (TL2-style).
	CTL
)

func (d Design) String() string {
	switch d {
	case ETLWriteBack:
		return "etl-wb"
	case ETLWriteThrough:
		return "etl-wt"
	case CTL:
		return "ctl"
	}
	return "design?"
}

// Config parameterizes an STM instance.
type Config struct {
	OrtBits uint   // log2 of the ORT entry count (default 20)
	Shift   uint   // low address bits discarded by the lock map (default 5)
	Design  Design // algorithm variant (default ETLWriteBack)
	// Allocator serves transactional Malloc/Free; may be nil if the
	// workload never allocates inside transactions.
	Allocator alloc.Allocator
	// CacheTxObjects enables the §6.2 optimization: objects allocated
	// by an aborted transaction and objects freed by a committed one
	// are kept in a thread-local cache and reused by later
	// transactional allocations, instead of going back to the system
	// allocator.
	//
	// Deprecated alias: CacheTxObjects is Pooling = PoolCache. Setting
	// both to conflicting disciplines panics in New.
	CacheTxObjects bool
	// Pooling selects the transaction-object recycling discipline
	// served by each thread's TxPool (default PoolNone: per-tx system
	// malloc/free, the paper's baseline). See the Pooling constants.
	Pooling Pooling
	// ClockShards splits the global version clock over this many
	// cache-line-separated words in simulated memory. A committer
	// CASes only its own shard (thread id modulo the shard count) with
	// 1 + the maximum over all shards, and snapshots read the maximum,
	// so the commit-time ping-pong on one clock line spreads across
	// shards. 0 or 1 keeps the paper's single clock word — and the
	// exact access sequence of the unsharded implementation, so
	// default-configured runs stay byte-identical.
	ClockShards uint
	// BatchRelease sorts commit-time ORT lock releases by table index,
	// so the release stores walk the ORT in address order (eight
	// entries share a cache line) instead of acquisition order. Opt-in
	// because it changes the priced access order, and so the
	// virtual-time artifacts, relative to the paper's configuration.
	BatchRelease bool
	// Obs, when non-nil, receives per-transaction events (commit/abort
	// with cause and aliasing ORT stripe) and metrics. The disabled
	// path costs one nil-check per transaction boundary.
	Obs *obs.Recorder
	// Prof, when non-nil, attributes STM phase cycles (load, store,
	// validate, commit, abort, backoff, quarantine) to profiler
	// regions. Attribution never advances virtual time.
	Prof *prof.Profiler
	// CM selects the contention manager (default CMSuicide, the
	// paper's setting).
	CM CM
	// RetryCap is the consecutive-abort count at which a transaction
	// falls back to irrevocable execution under the global fallback
	// lock. Zero selects DefaultRetryCap; NoRetryCap disables the
	// ladder.
	RetryCap uint64
	// Fault, when non-nil, is consulted at every transaction begin for
	// injected stalls and abort storms (internal/fault.Plan implements
	// it).
	Fault FaultHook
	// Durable, when non-nil, makes transactions durable: the commit path
	// writes a redo log through it before any write-back touches memory
	// (internal/pmem.Pmem implements it). Durable mode requires a
	// write-back design — ETLWriteThrough stores uncommitted values
	// directly, where a neighboring commit's line flush could persist
	// them with no undo log to remove them — and is incompatible with
	// transaction-object pooling, whose recycled blocks bypass the
	// block journal. New panics on either combination.
	Durable DurableLog
	// Race, when non-nil, feeds the happens-before checker from the
	// transaction lifecycle (internal/race.Checker implements it; see
	// race.go). Pure observation: the enabled path is byte-identical
	// to the disabled one.
	Race RaceHook
	// Conflict, when non-nil, receives per-abort forensics — victim and
	// killer identity, conflicting stripe and addresses, wasted cycles
	// (internal/conflict.Observatory implements it; see conflict.go).
	// Pure observation, same byte-identity contract as Race.
	Conflict ConflictHook
}

// DurableLog is the redo-log seam of a durable-memory layer. The commit
// path calls it in a fixed order: LogBegin, one LogStore per buffered
// write, one LogAlloc/LogFree per transactional allocation and deferred
// free, LogCommit (the log becomes durable), then — after write-back
// released the stripes — LogApply (the data becomes durable, the log is
// truncated). LogAbort discards a populated log when a foreign panic
// unwinds the transaction in between. internal/pmem satisfies it
// structurally, so stm stays free of a pmem dependency.
type DurableLog interface {
	LogBegin(th *vtime.Thread)
	LogStore(th *vtime.Thread, a mem.Addr, v uint64)
	LogAlloc(th *vtime.Thread, a mem.Addr, size uint64)
	LogFree(th *vtime.Thread, a mem.Addr, size uint64)
	LogCommit(th *vtime.Thread)
	LogApply(th *vtime.Thread)
	LogAbort(th *vtime.Thread)
}

// AbortReason classifies why a transaction aborted.
type AbortReason int

// Abort reasons.
const (
	AbortLockedByOther AbortReason = iota // stripe locked by another tx
	AbortVersionAhead                     // stripe version newer than snapshot, extension failed
	AbortValidation                       // read-set validation failed at commit
	AbortExplicit                         // user-requested restart
	AbortOOM                              // transactional allocation failed
	AbortKilled                           // killed by an aggressive rival or an abort storm
	abortReasonCount
)

// AbortReasonCount is the number of distinct abort reasons (the length
// of TxStats.ByReason).
const AbortReasonCount = int(abortReasonCount)

func (r AbortReason) String() string {
	switch r {
	case AbortLockedByOther:
		return "locked-by-other"
	case AbortVersionAhead:
		return "version-ahead"
	case AbortValidation:
		return "validation"
	case AbortExplicit:
		return "explicit"
	case AbortOOM:
		return "oom"
	case AbortKilled:
		return "killed"
	}
	return fmt.Sprintf("reason(%d)", int(r))
}

// TxStats counts per-thread transaction outcomes.
type TxStats struct {
	Starts      uint64
	Commits     uint64
	Aborts      uint64
	ByReason    [abortReasonCount]uint64
	FalseAborts uint64 // aborts where the conflicting access was to a
	// different address that merely shares (or aliases to) the ORT entry
	MaxRetries   uint64 // worst retry count of any single transaction
	MaxReadSet   uint64 // largest read set of any committed transaction
	MaxWriteSet  uint64 // largest write set of any committed transaction
	LoadsTotal   uint64
	StoresTotal  uint64
	AllocsInTx   uint64
	FreesInTx    uint64
	CacheHits    uint64 // tx-object cache hits (CacheTxObjects)
	CacheReturns uint64 // objects parked in the cache

	// Robustness / contention-management counters.
	MaxConsecAborts uint64 // longest consecutive-abort streak of one transaction
	CommitGapMax    uint64 // longest virtual-cycle gap between a thread's commits
	Irrevocables    uint64 // transactions that fell back to irrevocable execution
	BackoffCycles   uint64 // virtual cycles spent in contention-management backoff
}

// Sub returns s minus o field-wise (MaxRetries is kept from s), for
// isolating one measurement phase's statistics.
func (s TxStats) Sub(o TxStats) TxStats {
	out := s
	out.Starts -= o.Starts
	out.Commits -= o.Commits
	out.Aborts -= o.Aborts
	for i := range out.ByReason {
		out.ByReason[i] -= o.ByReason[i]
	}
	out.FalseAborts -= o.FalseAborts
	out.LoadsTotal -= o.LoadsTotal
	out.StoresTotal -= o.StoresTotal
	out.AllocsInTx -= o.AllocsInTx
	out.FreesInTx -= o.FreesInTx
	out.CacheHits -= o.CacheHits
	out.CacheReturns -= o.CacheReturns
	out.Irrevocables -= o.Irrevocables
	out.BackoffCycles -= o.BackoffCycles
	return out
}

// AbortRate returns aborts / starts.
func (s TxStats) AbortRate() float64 {
	if s.Starts == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(s.Starts)
}

// STM is one transactional-memory instance over an address space.
type STM struct {
	space   *mem.Space
	ortBase mem.Addr
	ortSize uint64
	shift   uint
	clockA  mem.Addr // global version clock (shard 0), in simulated memory
	shards  int      // clock shard count (1 = the paper's single word)

	allocator    alloc.Allocator
	pooling      Pooling
	batchRelease bool
	design       Design
	rec          *obs.Recorder
	prof         *prof.Profiler
	cm           CM
	retryCap     uint64
	fault        FaultHook
	durable      DurableLog
	race         RaceHook     // happens-before event sink; nil disables
	conflict     ConflictHook // abort-forensics sink; nil disables
	fallback     vtime.Lock   // serializes irrevocable fallback transactions

	// lockAddrs[i] records which address acquired ORT entry i, for
	// false-conflict classification (diagnostic only).
	lockAddrs []mem.Addr
	// lockTids[i] records which thread acquired ORT entry i (-1: none
	// yet), for killer attribution. Allocated only when a ConflictHook
	// is attached; nil otherwise (diagnostic only).
	lockTids []int32

	txs map[int]*Tx

	// quarantine holds transactionally freed blocks awaiting
	// reclamation. The allocator writes free-list metadata into a
	// block's words without bumping ORT versions, so handing a block
	// back while a transaction that began before the free is still
	// running would let it read heap metadata as application data with
	// a fully consistent read set (TinySTM solves this with mod_mem's
	// epoch GC). Blocks are released once every active transaction's
	// snapshot has reached the freeing commit.
	quarantine []quarRec
	reclaiming bool      // reclaim in progress; bars reentry across yields
	relScratch []quarRec // reclaim's releasable-block scratch, reused across calls
}

// quarRec is one block awaiting safe reclamation.
type quarRec struct {
	addr mem.Addr
	size uint64
	ver  int64 // clock value at which the free committed
}

// TxFreeNoter is implemented by wrapping allocators (e.g. the stamp
// profiler) that attribute frees to the region that issued them: the
// quarantine delays the allocator-level Free past the transaction, so
// the STM announces a transactional free at commit time and the
// wrapper must not count the later release a second time.
type TxFreeNoter interface {
	NoteTxFree(addr mem.Addr)
}

// New builds an STM over space.
func New(space *mem.Space, cfg Config) *STM {
	pooling := cfg.Pooling
	if cfg.CacheTxObjects {
		if pooling != PoolNone && pooling != PoolCache {
			panic(fmt.Sprintf("stm: CacheTxObjects (the %v alias) conflicts with Pooling %v", PoolCache, pooling))
		}
		pooling = PoolCache
	}
	if cfg.Durable != nil {
		if cfg.Design == ETLWriteThrough {
			panic("stm: durable mode requires a write-back design (etl-wt stores uncommitted values the redo log cannot undo)")
		}
		if pooling != PoolNone {
			panic("stm: durable mode is incompatible with transaction-object pooling (recycled blocks bypass the block journal)")
		}
	}
	bits := cfg.OrtBits
	if bits == 0 {
		bits = DefaultOrtBits
	}
	shift := cfg.Shift
	if shift == 0 {
		shift = DefaultShift
	}
	shards := int(cfg.ClockShards)
	if shards <= 0 {
		shards = 1
	}
	if shards*64 > mem.PageSize {
		panic(fmt.Sprintf("stm: ClockShards %d exceeds the clock page (max %d)", shards, mem.PageSize/64))
	}
	size := uint64(1) << bits
	// One region holds the clock page (one shard per cache line) and
	// the ORT.
	base := space.MustMap(mem.PageSize+size*8, mem.PageSize)
	s := &STM{
		space:        space,
		ortBase:      base + mem.PageSize,
		ortSize:      size,
		shift:        shift,
		clockA:       base,
		shards:       shards,
		allocator:    cfg.Allocator,
		pooling:      pooling,
		batchRelease: cfg.BatchRelease,
		design:       cfg.Design,
		rec:          cfg.Obs,
		prof:         cfg.Prof,
		cm:           cfg.CM,
		retryCap:     cfg.RetryCap,
		fault:        cfg.Fault,
		durable:      cfg.Durable,
		race:         cfg.Race,
		conflict:     cfg.Conflict,
		lockAddrs:    make([]mem.Addr, size),
		txs:          make(map[int]*Tx),
	}
	if cfg.Conflict != nil {
		s.lockTids = make([]int32, size)
		for i := range s.lockTids {
			s.lockTids[i] = -1
		}
	}
	if s.retryCap == 0 {
		s.retryCap = DefaultRetryCap
	}
	return s
}

// CM returns the configured contention manager.
func (s *STM) CM() CM { return s.cm }

// RetryCap returns the effective consecutive-abort fallback threshold.
func (s *STM) RetryCap() uint64 { return s.retryCap }

// OrtIndex returns the ORT entry index for an address — the paper's
// mapping function: shift right, then modulo the table size.
func (s *STM) OrtIndex(a mem.Addr) uint64 {
	return (uint64(a) >> s.shift) % s.ortSize
}

// ortAddr returns the simulated address of ORT entry i.
func (s *STM) ortAddr(i uint64) mem.Addr { return s.ortBase + mem.Addr(i*8) }

// Shift returns the configured shift amount.
func (s *STM) Shift() uint { return s.shift }

// Allocator returns the system allocator serving transactional
// allocations (may be nil).
func (s *STM) Allocator() alloc.Allocator { return s.allocator }

// Design returns the configured STM variant.
func (s *STM) Design() Design { return s.design }

// Pooling returns the transaction-object recycling discipline.
func (s *STM) Pooling() Pooling { return s.pooling }

// ClockShards returns the version-clock shard count (1 = unsharded).
func (s *STM) ClockShards() int { return s.shards }

// PoolStats sums pool traffic across all threads' TxPools.
func (s *STM) PoolStats() PoolStats {
	var out PoolStats
	for _, tx := range s.txs {
		if tx.pool != nil {
			out.Add(tx.pool.Stats())
		}
	}
	return out
}

// clockShardAddr returns the simulated address of clock shard i (each
// shard sits on its own cache line).
func (s *STM) clockShardAddr(i int) mem.Addr { return s.clockA + mem.Addr(i*64) }

// clockRead returns the current global version: the maximum across
// shards. With one shard this is a single load — the exact access the
// unsharded clock performed.
func (s *STM) clockRead(th *vtime.Thread) int64 {
	v := versionOf(th.Load(s.clockA))
	for i := 1; i < s.shards; i++ {
		if w := versionOf(th.Load(s.clockShardAddr(i))); w > v {
			v = w
		}
	}
	return v
}

// clockBump allocates a commit version: 1 + the maximum over all
// shards, CASed into the committer's own shard (so shards only grow,
// and any stripe released after a snapshot read carries a version the
// snapshot already covers or exceeds). With one shard this degenerates
// to the unsharded load/CAS loop, same access sequence.
func (s *STM) clockBump(th *vtime.Thread) int64 {
	mineA := s.clockShardAddr(th.ID() % s.shards)
	for {
		cur := versionOf(th.Load(mineA))
		max := cur
		for i := 0; i < s.shards; i++ {
			a := s.clockShardAddr(i)
			if a == mineA {
				continue
			}
			if w := versionOf(th.Load(a)); w > max {
				max = w
			}
		}
		next := max + 1
		if th.CAS(mineA, versionWord(cur), versionWord(next)) {
			return next
		}
	}
}

const lockBit = uint64(1)

func isLocked(word uint64) bool   { return word&lockBit != 0 }
func ownerOf(word uint64) int     { return int(word >> 1) }
func lockWord(tid int) uint64     { return uint64(tid)<<1 | lockBit }
func versionOf(word uint64) int64 { return int64(word >> 1) }
func versionWord(v int64) uint64  { return uint64(v) << 1 }

// TxFor returns (creating on first use) the reusable transaction
// descriptor for a thread.
func (s *STM) TxFor(th *vtime.Thread) *Tx {
	if tx, ok := s.txs[th.ID()]; ok {
		if tx.th != th {
			tx.th = th
		}
		return tx
	}
	tx := &Tx{
		stm:  s,
		th:   th,
		pool: NewTxPool(s.pooling),
		rng:  uint64(th.ID())*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d,
	}
	s.txs[th.ID()] = tx
	return tx
}

// Stats sums transaction statistics across all threads.
func (s *STM) Stats() TxStats {
	var out TxStats
	for _, tx := range s.txs {
		addStats(&out, &tx.stats)
	}
	return out
}

// InTx reports whether the thread's transaction descriptor is active
// (used by region-attribution instrumentation).
func (s *STM) InTx(tid int) bool {
	tx, ok := s.txs[tid]
	return ok && tx.active
}

// ThreadStats returns the statistics of one thread's transactions.
func (s *STM) ThreadStats(tid int) TxStats {
	if tx, ok := s.txs[tid]; ok {
		return tx.stats
	}
	return TxStats{}
}

func addStats(dst, src *TxStats) {
	dst.Starts += src.Starts
	dst.Commits += src.Commits
	dst.Aborts += src.Aborts
	for i := range dst.ByReason {
		dst.ByReason[i] += src.ByReason[i]
	}
	dst.FalseAborts += src.FalseAborts
	if src.MaxRetries > dst.MaxRetries {
		dst.MaxRetries = src.MaxRetries
	}
	if src.MaxReadSet > dst.MaxReadSet {
		dst.MaxReadSet = src.MaxReadSet
	}
	if src.MaxWriteSet > dst.MaxWriteSet {
		dst.MaxWriteSet = src.MaxWriteSet
	}
	dst.LoadsTotal += src.LoadsTotal
	dst.StoresTotal += src.StoresTotal
	dst.AllocsInTx += src.AllocsInTx
	dst.FreesInTx += src.FreesInTx
	dst.CacheHits += src.CacheHits
	dst.CacheReturns += src.CacheReturns
	if src.MaxConsecAborts > dst.MaxConsecAborts {
		dst.MaxConsecAborts = src.MaxConsecAborts
	}
	if src.CommitGapMax > dst.CommitGapMax {
		dst.CommitGapMax = src.CommitGapMax
	}
	dst.Irrevocables += src.Irrevocables
	dst.BackoffCycles += src.BackoffCycles
}

// Atomic runs fn as a transaction on th, retrying on abort under the
// configured contention manager. fn must be a pure function of
// transactional state: any side effects outside tx operations may be
// repeated. After RetryCap consecutive aborts the transaction descends
// the degradation ladder: it acquires the global fallback lock, drains
// every other transaction, and runs irrevocably — guaranteed to
// commit, whatever the conflict pattern.
func (s *STM) Atomic(th *vtime.Thread, fn func(tx *Tx)) {
	tx := s.TxFor(th)
	if tx.active {
		panic("stm: nested Atomic on the same thread")
	}
	retries := uint64(0)
	for {
		// Park while an irrevocable transaction runs elsewhere: we hold
		// nothing, so waiting here cannot deadlock, and staying out
		// keeps the fallback transaction alone.
		s.waitFallback(tx)
		tx.begin()
		if s.fault != nil {
			stall, storm := s.fault.TxBegin(th.ID(), th.Clock())
			if stall > 0 {
				th.Tick(stall)
			}
			if storm {
				// Abort-storm kill: roll back (nothing is locked yet)
				// and fall through to the retry bookkeeping.
				tx.rollback(AbortKilled)
				if s.rec != nil {
					s.rec.TxAbort(th.ID(), tx.beginClock, th.Clock(),
						AbortKilled.String(), obs.NoStripe, false, 0, 0)
				}
				tx.conflictNoStripe(AbortKilled)
			}
		}
		if tx.active && tx.tryRun(fn) {
			tx.noteOutcome(retries, true)
			s.reclaim(th)
			return
		}
		retries++
		if retries > tx.stats.MaxRetries {
			tx.stats.MaxRetries = retries
		}
		tx.noteOutcome(retries, false)
		if s.retryCap != NoRetryCap && retries >= s.retryCap {
			s.runIrrevocable(tx, fn, retries)
			tx.noteOutcome(retries, true)
			s.reclaim(th)
			return
		}
		if s.cm == CMBackoff {
			tx.backoff(retries)
		}
	}
}

type abortSignal struct{ reason AbortReason }

// tryRun executes fn inside the active transaction, converting abort
// panics into a false return.
func (tx *Tx) tryRun(fn func(tx *Tx)) (committed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, isStop := r.(vtime.StopSignal); isStop {
				// Simulated crash: the machine died at a durable-operation
				// checkpoint. Leave every structure exactly as the crash
				// found it — a rollback here would mutate state recovery
				// must observe torn — and unwind to the engine.
				panic(r)
			}
			if _, ok := r.(abortSignal); ok {
				committed = false
				return
			}
			// A memory fault in a revocable transaction whose read set no
			// longer validates is a zombie read: the stale snapshot let the
			// application follow a recycled pointer off the map. On real
			// hardware the load would return garbage and the transaction
			// would die at validation; model that by aborting it here. A
			// fault with a consistent read set is a genuine bug and still
			// propagates.
			if _, isFault := r.(mem.Fault); isFault && tx.active &&
				!tx.irrevocable && !tx.validate() {
				tx.rollback(AbortValidation)
				if s := tx.stm; s.rec != nil {
					s.rec.TxAbort(tx.th.ID(), tx.beginClock, tx.th.Clock(),
						AbortValidation.String(), obs.NoStripe, false, 0, 0)
				}
				tx.conflictNoStripe(AbortValidation)
				committed = false
				return
			}
			// Foreign panic: clean up the transaction, then propagate.
			tx.rollback(AbortExplicit)
			panic(r)
		}
	}()
	fn(tx)
	return tx.commit()
}

type writeEntry struct {
	addr  mem.Addr
	value uint64
}

type readEntry struct {
	idx     uint64
	version uint64 // the raw (unlocked) word observed
}

type allocRec struct {
	addr mem.Addr
	size uint64
}

type lockRec struct {
	idx  uint64
	prev uint64 // pre-lock ORT word, restored on abort
}

// ctlReq is one stripe a CTL commit must acquire (with the first write
// address that mapped to it, for conflict attribution).
type ctlReq struct {
	idx  uint64
	addr mem.Addr
}

// Tx is a per-thread transaction descriptor, reused across transactions
// (as TinySTM reuses its descriptor).
type Tx struct {
	stm    *STM
	th     *vtime.Thread
	active bool

	snapshot  int64
	readSet   []readEntry
	writeSet  []writeEntry
	writeIdx  u64Table  // addr -> index into writeSet (write-through: undo)
	locked    []lockRec // stripes this tx holds, in acquisition order
	lockedSet u64Table  // membership set of held ORT indices

	undo []writeEntry // write-through: first-write old values

	beginClock uint64 // virtual clock at begin, for attempt latency

	allocs []allocRec // blocks malloc'd by this tx (undone on abort)
	frees  []allocRec // frees deferred to commit

	pool TxPool // transaction-object recycler (nil for PoolNone)

	// CTL commit scratch, reused across commits.
	ctlReqs []ctlReq
	ctlSeen u64Table

	// Conflict-forensics state (see conflict.go): the workload label
	// and the 1-based attempt number of the current Atomic (reset on
	// commit). Maintained unconditionally — two scalar updates — so the
	// observed and unobserved paths run the same code.
	kind    string
	attempt uint64

	// Contention-management state.
	karma       uint64 // accumulated work (loads+stores), CMKarma priority
	killed      bool   // an aggressive rival demands this tx abort
	killedBy    int32  // thread that set killed (conflict attribution)
	waitBudget  uint64 // remaining conflict-wait polls this attempt
	irrevocable bool   // running alone under the fallback lock
	rng         uint64 // deterministic backoff jitter state
	lastCommit  uint64 // virtual clock of this thread's previous commit

	stats TxStats
}

// Thread returns the executing thread.
func (tx *Tx) Thread() *vtime.Thread { return tx.th }

func (tx *Tx) begin() {
	tx.active = true
	tx.killed = false
	tx.killedBy = -1
	tx.attempt++
	tx.waitBudget = conflictWaitBudget
	tx.beginClock = tx.th.Clock()
	tx.snapshot = tx.stm.clockRead(tx.th)
	tx.readSet = tx.readSet[:0]
	tx.writeSet = tx.writeSet[:0]
	tx.writeIdx.reset()
	tx.locked = tx.locked[:0]
	tx.lockedSet.reset()
	tx.undo = tx.undo[:0]
	tx.allocs = tx.allocs[:0]
	tx.frees = tx.frees[:0]
	tx.stats.Starts++
	tx.th.Tick(tx.th.Cost().TxBase)
	tx.raceBegin()
}

// abort rolls the transaction back and unwinds fn via panic. idx is
// the ORT entry whose conflict killed the attempt and a the address
// this transaction was accessing; the conflict is false when the entry
// was last acquired for a *different* address (stripe sharing or
// aliasing — the allocator-placement effect under study).
func (tx *Tx) abort(reason AbortReason, idx uint64, a mem.Addr) {
	s := tx.stm
	owner := s.lockAddrs[idx]
	falseConflict := owner != a
	if falseConflict {
		tx.stats.FalseAborts++
	}
	tx.rollback(reason)
	if s.rec != nil {
		s.rec.TxAbort(tx.th.ID(), tx.beginClock, tx.th.Clock(), reason.String(),
			idx, falseConflict, uint64(owner)>>s.shift, uint64(a)>>s.shift)
	}
	tx.conflictStripe(reason, idx, a, owner)
	panic(abortSignal{reason})
}

// abortNoStripe aborts without a single attributable ORT entry
// (explicit restarts).
func (tx *Tx) abortNoStripe(reason AbortReason) {
	tx.rollback(reason)
	if s := tx.stm; s.rec != nil {
		s.rec.TxAbort(tx.th.ID(), tx.beginClock, tx.th.Clock(), reason.String(),
			obs.NoStripe, false, 0, 0)
	}
	tx.conflictNoStripe(reason)
	panic(abortSignal{reason})
}

// rollback releases locks, undoes transactional allocations and drops
// deferred frees. Under write-through, memory is restored from the undo
// log before the locks go.
func (tx *Tx) rollback(reason AbortReason) {
	if p := tx.stm.prof; p != nil {
		p.Begin(tx.th, "stm/abort")
		defer p.End(tx.th)
	}
	if d := tx.stm.durable; d != nil {
		d.LogAbort(tx.th) // drop a populated log if a foreign panic unwound commit
	}
	for i := len(tx.undo) - 1; i >= 0; i-- {
		tx.th.Store(tx.undo[i].addr, tx.undo[i].value)
	}
	for _, l := range tx.locked {
		tx.th.Store(tx.stm.ortAddr(l.idx), l.prev)
	}
	// Undo transactional allocations: a pooling discipline parks them
	// in the thread-local pool instead of calling the system free.
	for _, rec := range tx.allocs {
		if tx.pool == nil || !tx.pool.Put(tx, rec.addr, rec.size) {
			tx.stm.allocator.Free(tx.th, rec.addr)
		}
	}
	tx.raceAbort()
	tx.active = false
	tx.stats.Aborts++
	tx.stats.ByReason[reason]++
	tx.th.Tick(tx.th.Cost().TxBase)
}

// Restart aborts the transaction and retries it (explicit user abort).
func (tx *Tx) Restart() {
	tx.abortNoStripe(AbortExplicit)
}

// validate re-checks every read-set entry against the current ORT.
func (tx *Tx) validate() bool {
	if p := tx.stm.prof; p != nil {
		p.Begin(tx.th, "stm/validate")
		defer p.End(tx.th)
	}
	for _, r := range tx.readSet {
		w := tx.th.Load(tx.stm.ortAddr(r.idx))
		if isLocked(w) {
			if ownerOf(w) != tx.th.ID() {
				return false
			}
			continue // we hold it
		}
		if w != r.version {
			return false
		}
	}
	return true
}

// extend tries to advance the snapshot to the current clock after
// validating the read set (TinySTM's timestamp extension).
func (tx *Tx) extend() bool {
	now := tx.stm.clockRead(tx.th)
	if !tx.validate() {
		return false
	}
	tx.snapshot = now
	tx.raceExtend()
	return true
}

// Load performs a transactional read of the word at a.
func (tx *Tx) Load(a mem.Addr) uint64 {
	tx.checkKilled()
	tx.stats.LoadsTotal++
	tx.karma++
	if p := tx.stm.prof; p != nil {
		// Deferred so an abort panic unwinds the region balanced.
		p.Begin(tx.th, "stm/load")
		defer p.End(tx.th)
	}
	tx.th.Tick(tx.th.Cost().TxAccess)
	tx.sanCheck(a, false)
	v := tx.loadWord(a)
	tx.raceAccess(a, false)
	return v
}

// LoadGuard performs a transactional read of a guard word in a
// validated-handle protocol: a liveness flag or epoch counter that is
// deliberately read on a block which may have been freed — even
// recycled — since the handle was captured (yada's stale-queue-entry
// filter is the canonical user). The read is identical to Load in
// every protocol and timing respect; only the sanitizer's
// use-after-free classification is waived, because the caller's epoch
// check subsumes it. Wild-address and redzone diagnostics still fire.
func (tx *Tx) LoadGuard(a mem.Addr) uint64 {
	tx.checkKilled()
	tx.stats.LoadsTotal++
	tx.karma++
	if p := tx.stm.prof; p != nil {
		p.Begin(tx.th, "stm/load")
		defer p.End(tx.th)
	}
	tx.th.Tick(tx.th.Cost().TxAccess)
	tx.sanCheckGuard(a)
	return tx.loadWord(a)
}

// loadWord is the protocol core shared by Load and LoadGuard.
func (tx *Tx) loadWord(a mem.Addr) uint64 {
	if tx.stm.design != ETLWriteThrough {
		if i, ok := tx.writeIdx.get(uint64(a)); ok {
			return tx.writeSet[i].value
		}
	}
	s := tx.stm
	idx := s.OrtIndex(a)
	ortA := s.ortAddr(idx)
	for {
		w := tx.th.Load(ortA)
		if isLocked(w) {
			if ownerOf(w) == tx.th.ID() {
				// We hold the stripe: under write-back memory is clean
				// for other addresses; under write-through it holds our
				// own current values. Either way, read memory.
				return tx.th.Load(a)
			}
			if tx.cmWait(ownerOf(w)) {
				continue // the conflict may have cleared; re-read
			}
			tx.abort(AbortLockedByOther, idx, a)
		}
		if versionOf(w) > tx.snapshot {
			if !tx.extend() {
				tx.abort(AbortVersionAhead, idx, a)
			}
		}
		v := tx.th.Load(a)
		// Re-check: the stripe must not have changed while reading.
		if w2 := tx.th.Load(ortA); w2 != w {
			continue
		}
		tx.readSet = append(tx.readSet, readEntry{idx: idx, version: w})
		return v
	}
}

// Store performs a transactional write of v to the word at a. Under the
// ETL designs the stripe lock is acquired now; write-back buffers the
// value while write-through logs the old value and writes in place. CTL
// only buffers — locks are taken at commit.
func (tx *Tx) Store(a mem.Addr, v uint64) {
	tx.checkKilled()
	tx.stats.StoresTotal++
	tx.karma++
	if p := tx.stm.prof; p != nil {
		p.Begin(tx.th, "stm/store")
		defer p.End(tx.th)
	}
	tx.th.Tick(tx.th.Cost().TxAccess)
	tx.sanCheck(a, true)
	tx.raceAccess(a, true)
	switch tx.stm.design {
	case ETLWriteThrough:
		idx := tx.stm.OrtIndex(a)
		if _, mine := tx.lockedSet.get(idx); !mine {
			tx.acquire(idx, a)
		}
		if _, logged := tx.writeIdx.get(uint64(a)); !logged {
			tx.writeIdx.put(uint64(a), int32(len(tx.undo)))
			tx.undo = append(tx.undo, writeEntry{addr: a, value: tx.th.Load(a)})
		}
		tx.th.Store(a, v)
		return
	case CTL:
		if i, ok := tx.writeIdx.get(uint64(a)); ok {
			tx.writeSet[i].value = v
			return
		}
		tx.writeIdx.put(uint64(a), int32(len(tx.writeSet)))
		tx.writeSet = append(tx.writeSet, writeEntry{addr: a, value: v})
		return
	}
	// ETL write-back (the paper's configuration).
	if i, ok := tx.writeIdx.get(uint64(a)); ok {
		tx.writeSet[i].value = v
		return
	}
	idx := tx.stm.OrtIndex(a)
	if _, mine := tx.lockedSet.get(idx); !mine {
		tx.acquire(idx, a)
	}
	tx.writeIdx.put(uint64(a), int32(len(tx.writeSet)))
	tx.writeSet = append(tx.writeSet, writeEntry{addr: a, value: v})
}

// acquire locks ORT entry idx for this transaction (ETL encounter-time
// or CTL commit-time), aborting on conflict.
func (tx *Tx) acquire(idx uint64, a mem.Addr) {
	s := tx.stm
	ortA := s.ortAddr(idx)
	for {
		w := tx.th.Load(ortA)
		if isLocked(w) {
			if ownerOf(w) == tx.th.ID() {
				panic("stm: ORT entry locked by this thread but not in its lock map")
			}
			if tx.cmWait(ownerOf(w)) {
				continue // the conflict may have cleared; re-read
			}
			tx.abort(AbortLockedByOther, idx, a)
		}
		if versionOf(w) > tx.snapshot {
			if !tx.extend() {
				tx.abort(AbortVersionAhead, idx, a)
			}
		}
		if tx.th.CAS(ortA, w, lockWord(tx.th.ID())) {
			tx.lockedSet.put(idx, int32(len(tx.locked)))
			tx.locked = append(tx.locked, lockRec{idx: idx, prev: w})
			s.lockAddrs[idx] = a
			if s.lockTids != nil {
				s.lockTids[idx] = int32(tx.th.ID())
			}
			break
		}
	}
}

// commit attempts to finish the transaction; false means it aborted.
func (tx *Tx) commit() bool {
	tx.checkKilled()
	s := tx.stm
	if p := s.prof; p != nil {
		p.Begin(tx.th, "stm/commit")
		defer p.End(tx.th)
	}
	if len(tx.writeSet) == 0 && len(tx.locked) == 0 {
		// Read-only: the snapshot is consistent by construction. With a
		// durable log, transactional allocations still need their records
		// committed (frees imply stores, so they cannot reach here).
		if s.durable != nil && len(tx.allocs)+len(tx.frees) > 0 {
			tx.logPopulate()
			s.durable.LogApply(tx.th)
			tx.raceDurApply()
		}
		tx.raceCommit(0) // read-only: no version published
		tx.finishCommit()
		return true
	}
	if s.design == CTL {
		// Commit-time locking: acquire every written stripe now, in
		// index order for determinism. acquire aborts via panic on
		// conflict; convert that to a rollback return.
		if !tx.ctlAcquireAll() {
			return false
		}
	}
	// Fetch-and-increment the global clock (CAS loop inside clockBump:
	// another thread may slip in between the load and the swap across
	// a yield).
	next := s.clockBump(tx.th)
	if next > tx.snapshot+1 {
		if !tx.validate() {
			tx.rollback(AbortValidation)
			if s.rec != nil {
				s.rec.TxAbort(tx.th.ID(), tx.beginClock, tx.th.Clock(),
					AbortValidation.String(), obs.NoStripe, false, 0, 0)
			}
			tx.conflictNoStripe(AbortValidation)
			return false
		}
	}
	// Point of no return: nothing can abort the transaction past the
	// validation above, so the redo log written now is torn only by a
	// crash (populate → fence → commit marker → fence).
	if s.durable != nil {
		tx.logPopulate()
	}
	// Write back buffered values (write-through already wrote them),
	// then release locks with the new version.
	for _, w := range tx.writeSet {
		if s.durable != nil {
			tx.raceDurStore(w.addr)
		}
		tx.th.Store(w.addr, w.value)
	}
	release := versionWord(next)
	if s.batchRelease && len(tx.locked) > 1 {
		// Release in ORT-index order: eight entries share a cache line,
		// so sorted stores batch line transitions instead of revisiting
		// lines in acquisition order.
		slices.SortFunc(tx.locked, func(a, b lockRec) int {
			switch {
			case a.idx < b.idx:
				return -1
			case a.idx > b.idx:
				return 1
			}
			return 0
		})
	}
	for _, l := range tx.locked {
		tx.th.Store(s.ortAddr(l.idx), release)
	}
	// Persist the written-back values and truncate the redo log (flush
	// each stored line, fence, truncate) now that the stripes are free.
	if s.durable != nil {
		s.durable.LogApply(tx.th)
		tx.raceDurApply()
	}
	tx.raceCommit(uint64(next))
	tx.finishCommit()
	return true
}

// logPopulate writes the transaction's redo log through the durable
// layer and makes it durable: one record per buffered write,
// transactional allocation and deferred free, then the commit marker.
func (tx *Tx) logPopulate() {
	d := tx.stm.durable
	d.LogBegin(tx.th)
	for _, w := range tx.writeSet {
		d.LogStore(tx.th, w.addr, w.value)
	}
	for _, rec := range tx.allocs {
		d.LogAlloc(tx.th, rec.addr, rec.size)
	}
	for _, rec := range tx.frees {
		d.LogFree(tx.th, rec.addr, rec.size)
	}
	d.LogCommit(tx.th)
	tx.raceDurLogCommitted()
}

// ctlAcquireAll locks every stripe the write set touches, in index
// order for determinism, returning false (after rollback) on conflict.
func (tx *Tx) ctlAcquireAll() (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, isAbort := r.(abortSignal); isAbort {
				ok = false
				return
			}
			panic(r)
		}
	}()
	tx.ctlReqs = tx.ctlReqs[:0]
	tx.ctlSeen.reset()
	for _, w := range tx.writeSet {
		idx := tx.stm.OrtIndex(w.addr)
		if _, dup := tx.ctlSeen.get(idx); !dup {
			tx.ctlSeen.put(idx, int32(len(tx.ctlReqs)))
			tx.ctlReqs = append(tx.ctlReqs, ctlReq{idx: idx, addr: w.addr})
		}
	}
	slices.SortFunc(tx.ctlReqs, func(a, b ctlReq) int {
		switch {
		case a.idx < b.idx:
			return -1
		case a.idx > b.idx:
			return 1
		}
		return 0
	})
	for _, r := range tx.ctlReqs {
		tx.acquire(r.idx, r.addr)
	}
	return true
}

func (tx *Tx) finishCommit() {
	if n := uint64(len(tx.readSet)); n > tx.stats.MaxReadSet {
		tx.stats.MaxReadSet = n
	}
	ws := uint64(len(tx.writeSet))
	if tx.stm.design == ETLWriteThrough {
		ws = uint64(len(tx.undo))
	}
	if ws > tx.stats.MaxWriteSet {
		tx.stats.MaxWriteSet = ws
	}
	// Deferred frees land in quarantine now (reclaimed by the next
	// Atomic once no straggler transaction can still reach them); a
	// pooling discipline parks them in the thread-local pool instead.
	if len(tx.frees) > 0 {
		ver := tx.stm.clockRead(tx.th)
		for _, rec := range tx.frees {
			if tx.pool != nil && tx.pool.Put(tx, rec.addr, rec.size) {
				continue
			}
			tx.raceTxFreeCommitted(rec.addr)
			tx.sanMarkFreed(rec.addr)
			if n, ok := tx.stm.allocator.(TxFreeNoter); ok {
				n.NoteTxFree(rec.addr)
			}
			tx.stm.quarantine = append(tx.stm.quarantine,
				quarRec{addr: rec.addr, size: rec.size, ver: ver})
		}
	}
	tx.active = false
	tx.karma = 0 // priority is spent on commit (karma CM)
	tx.attempt = 0
	tx.stats.Commits++
	tx.th.Tick(tx.th.Cost().TxBase)
	if s := tx.stm; s.rec != nil {
		s.rec.TxCommit(tx.th.ID(), tx.beginClock, tx.th.Clock(), len(tx.readSet), int(ws))
	}
	tx.conflictCommitted()
}

// reclaim hands quarantined blocks back to the allocator once they are
// unreachable: a block freed at clock ver is safe when every active
// transaction's snapshot is at least ver, because such transactions
// only see the post-free mesh (consistent reads validate against
// versions the freeing commit bumped) and so cannot follow a stale
// pointer into the block. With no transactions active everything
// drains, so a finished run leaves the quarantine empty.
func (s *STM) reclaim(th *vtime.Thread) {
	// Free calls tick virtual time and can yield to other threads whose
	// own reclaim would walk the same list, so bar reentry and detach
	// the releasable blocks before touching the allocator.
	if len(s.quarantine) == 0 || s.reclaiming {
		return
	}
	s.reclaiming = true
	defer func() { s.reclaiming = false }()
	if p := s.prof; p != nil {
		p.Begin(th, "stm/quarantine")
		defer p.End(th)
	}
	// Loop: frees yield, so commits elsewhere may quarantine more blocks
	// (and their barred reclaims count on this one picking them up).
	for {
		minSnap := int64(1)<<62 - 1
		for _, d := range s.txs {
			if d.active && d.snapshot < minSnap {
				minSnap = d.snapshot
			}
		}
		release := s.relScratch[:0]
		keep := s.quarantine[:0]
		for _, q := range s.quarantine {
			if q.ver <= minSnap {
				release = append(release, q)
			} else {
				keep = append(keep, q)
			}
		}
		s.quarantine = keep
		s.relScratch = release
		if len(release) == 0 {
			return
		}
		// The epoch guarantee just established (every active snapshot
		// has passed the freeing commits) is a happens-before edge.
		s.raceQuarantineRelease(th.ID())
		for _, q := range release {
			s.allocator.Free(th, q.addr)
		}
	}
}

// Malloc allocates inside the transaction; the block is reclaimed if
// the transaction aborts. With a pooling discipline the request is
// first served from the thread-local TxPool. A failed allocation
// (simulated OOM) aborts the transaction cleanly — stripes released,
// earlier allocations undone — so the retry, or ultimately the
// irrevocable fallback, sees a consistent heap; it never returns 0.
func (tx *Tx) Malloc(size uint64) mem.Addr {
	tx.stats.AllocsInTx++
	var a mem.Addr
	if tx.pool != nil {
		a = tx.pool.Get(tx, size)
	}
	if a == 0 {
		a = tx.stm.allocator.Malloc(tx.th, size)
	}
	if a == 0 {
		a = tx.txMallocOOM(size) // aborts, or retries irrevocably
	}
	tx.allocs = append(tx.allocs, allocRec{addr: a, size: size})
	return a
}

// Free defers the release of the block at a (of the given request size)
// to commit time, and transactionally locks the block's words so that
// concurrent readers of the dying object conflict with this
// transaction, as TinySTM's stm_free does.
func (tx *Tx) Free(a mem.Addr, size uint64) {
	tx.stats.FreesInTx++
	tx.sanFree(a)
	for off := uint64(0); off < size; off += 8 {
		tx.Store(a+mem.Addr(off), 0)
	}
	tx.frees = append(tx.frees, allocRec{addr: a, size: size})
}

// ClockValue returns the current global version clock (diagnostics).
func (s *STM) ClockValue(th *vtime.Thread) int64 {
	return s.clockRead(th)
}
