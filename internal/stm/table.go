package stm

// u64Table is a small open-addressing hash table from uint64 keys to
// int32 values, reused across transactions: reset clears it without
// releasing the backing arrays, so the steady-state begin/load/store
// path performs no host allocation (the maps it replaces, writeIdx and
// lockedSet, were cleared with clear() but still rehashed and spilled
// buckets under load). Linear probing over a power-of-two slot count;
// keys are stored biased by +1 so a zero slot means empty and key 0
// (a valid ORT index) stays representable.
type u64Table struct {
	keys []uint64 // key+1; 0 marks an empty slot
	vals []int32
	n    int
}

const tableMinSlots = 64

// hashSlot spreads k over the table (Fibonacci multiplicative hashing;
// the low bits of ORT indices and word-aligned addresses are regular).
func hashSlot(k, mask uint64) uint64 {
	return (k * 0x9e3779b97f4a7c15) >> 32 & mask
}

// reset empties the table, keeping capacity.
func (t *u64Table) reset() {
	if t.n != 0 {
		clear(t.keys)
		t.n = 0
	}
}

// get returns the value stored for k.
func (t *u64Table) get(k uint64) (int32, bool) {
	if t.n == 0 {
		return 0, false
	}
	mask := uint64(len(t.keys) - 1)
	ek := k + 1
	for i := hashSlot(k, mask); ; i = (i + 1) & mask {
		switch t.keys[i] {
		case ek:
			return t.vals[i], true
		case 0:
			return 0, false
		}
	}
}

// put stores v for k (overwriting any existing entry), growing at 3/4
// load so probe chains stay short.
func (t *u64Table) put(k uint64, v int32) {
	if len(t.keys) == 0 {
		t.keys = make([]uint64, tableMinSlots)
		t.vals = make([]int32, tableMinSlots)
	} else if t.n >= len(t.keys)/4*3 {
		t.grow()
	}
	if t.insert(k, v) {
		t.n++
	}
}

// insert places (k, v), reporting whether the key was new.
func (t *u64Table) insert(k uint64, v int32) bool {
	mask := uint64(len(t.keys) - 1)
	ek := k + 1
	for i := hashSlot(k, mask); ; i = (i + 1) & mask {
		switch t.keys[i] {
		case 0:
			t.keys[i] = ek
			t.vals[i] = v
			return true
		case ek:
			t.vals[i] = v
			return false
		}
	}
}

func (t *u64Table) grow() {
	oldKeys, oldVals := t.keys, t.vals
	t.keys = make([]uint64, len(oldKeys)*2)
	t.vals = make([]int32, len(oldVals)*2)
	for i, ek := range oldKeys {
		if ek != 0 {
			t.insert(ek-1, oldVals[i])
		}
	}
}
