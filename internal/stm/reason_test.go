package stm

import (
	"fmt"
	"strings"
	"testing"
)

// TestAbortReasonStringsExhaustive pins the AbortReason enum to its
// String table: a reason added without a name (the switch falls
// through to the "reason(n)" placeholder) or a name duplicated across
// reasons fails here, before it produces unreadable records.
func TestAbortReasonStringsExhaustive(t *testing.T) {
	seen := make(map[string]AbortReason, AbortReasonCount)
	for i := 0; i < AbortReasonCount; i++ {
		r := AbortReason(i)
		s := r.String()
		if s == "" {
			t.Errorf("AbortReason(%d).String() is empty", i)
			continue
		}
		if strings.HasPrefix(s, "reason(") {
			t.Errorf("AbortReason(%d) has no name: String() fell through to %q", i, s)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("AbortReason(%d) and AbortReason(%d) share the name %q", int(prev), i, s)
		}
		seen[s] = r
	}
}

// TestAbortReasonStringOutOfRange pins the fallback for values outside
// the enum — the other direction of the exhaustiveness guard: a name
// removed from the switch without shrinking the enum would surface as
// a "reason(n)" string inside the valid range above, and values past
// the count must render diagnosably rather than panic or alias a real
// reason.
func TestAbortReasonStringOutOfRange(t *testing.T) {
	for _, n := range []int{AbortReasonCount, AbortReasonCount + 3, -1} {
		want := fmt.Sprintf("reason(%d)", n)
		if got := AbortReason(n).String(); got != want {
			t.Errorf("AbortReason(%d).String() = %q, want %q", n, got, want)
		}
	}
}
