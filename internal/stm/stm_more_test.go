package stm

import (
	"testing"
	"testing/quick"

	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/vtime"
)

func TestLockWordFormat(t *testing.T) {
	w := lockWord(5)
	if !isLocked(w) || ownerOf(w) != 5 {
		t.Errorf("lockWord(5) = %#x: locked=%v owner=%d", w, isLocked(w), ownerOf(w))
	}
	v := versionWord(1234)
	if isLocked(v) || versionOf(v) != 1234 {
		t.Errorf("versionWord(1234) = %#x: locked=%v version=%d", v, isLocked(v), versionOf(v))
	}
}

func TestInTx(t *testing.T) {
	space, _ := newWorld(1)
	s := New(space, Config{})
	th := vtime.Solo(space, 0, nil)
	if s.InTx(0) {
		t.Error("InTx true before any transaction")
	}
	a := space.MustMap(mem.PageSize, 0)
	s.Atomic(th, func(tx *Tx) {
		if !s.InTx(0) {
			t.Error("InTx false inside a transaction")
		}
		tx.Store(a, 1)
	})
	if s.InTx(0) {
		t.Error("InTx true after commit")
	}
}

func TestStatsSub(t *testing.T) {
	a := TxStats{Starts: 10, Commits: 8, Aborts: 2, LoadsTotal: 100}
	b := TxStats{Starts: 4, Commits: 3, Aborts: 1, LoadsTotal: 40}
	d := a.Sub(b)
	if d.Starts != 6 || d.Commits != 5 || d.Aborts != 1 || d.LoadsTotal != 60 {
		t.Errorf("Sub = %+v", d)
	}
}

func TestAbortReasonStrings(t *testing.T) {
	for r := AbortLockedByOther; r < abortReasonCount; r++ {
		if r.String() == "" || r.String()[0] == 'r' && r != AbortLockedByOther {
			t.Errorf("reason %d has poor name %q", r, r.String())
		}
	}
	if AbortReason(99).String() != "reason(99)" {
		t.Error("unknown reason formatting broken")
	}
}

func TestTwoSTMInstancesShareSpaceIndependently(t *testing.T) {
	space := mem.NewSpace()
	s1 := New(space, Config{Shift: 5})
	s2 := New(space, Config{Shift: 4})
	a := space.MustMap(mem.PageSize, 0)
	th := vtime.Solo(space, 0, nil)
	s1.Atomic(th, func(tx *Tx) { tx.Store(a, 1) })
	s2.Atomic(th, func(tx *Tx) { tx.Store(a, tx.Load(a)+1) })
	if space.Load(a) != 2 {
		t.Errorf("value = %d, want 2", space.Load(a))
	}
}

func TestOrtBitsConfigurable(t *testing.T) {
	space := mem.NewSpace()
	s := New(space, Config{OrtBits: 10}) // 1024 entries
	base := mem.Addr(1 << 28)
	// Aliasing period = 1024 * 32 bytes = 32 KiB.
	if s.OrtIndex(base) != s.OrtIndex(base+32<<10) {
		t.Error("1024-entry ORT does not alias at 32KB")
	}
	if s.OrtIndex(base) == s.OrtIndex(base+16<<10) {
		t.Error("1024-entry ORT aliases at 16KB")
	}
}

// Property: for any interleaving seed, concurrent increments of
// disjoint counters never abort and always sum correctly.
func TestQuickDisjointCountersNeverConflict(t *testing.T) {
	check := func(seed uint64) bool {
		space := mem.NewSpace()
		e := vtime.NewEngine(space, 4, vtime.Config{})
		s := New(space, Config{})
		base := space.MustMap(mem.PageSize, 0)
		e.Run(func(th *vtime.Thread) {
			addr := base + mem.Addr(th.ID()*256) // distinct stripes
			r := sim.NewRand(seed + uint64(th.ID()))
			for i := 0; i < 100; i++ {
				s.Atomic(th, func(tx *Tx) {
					tx.Store(addr, tx.Load(addr)+1)
				})
				th.Work(uint64(r.Intn(50)))
			}
		})
		if s.Stats().Aborts != 0 {
			return false
		}
		for tid := 0; tid < 4; tid++ {
			if space.Load(base+mem.Addr(tid*256)) != 100 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: counters sharing one stripe conflict but still total
// correctly for any timing seed.
func TestQuickSharedStripeStillCorrect(t *testing.T) {
	check := func(seed uint64) bool {
		space := mem.NewSpace()
		e := vtime.NewEngine(space, 4, vtime.Config{})
		s := New(space, Config{})
		base := space.MustMap(mem.PageSize, 0)
		e.Run(func(th *vtime.Thread) {
			addr := base + mem.Addr(th.ID()*8) // all in one 32-byte stripe
			r := sim.NewRand(seed + uint64(th.ID()))
			for i := 0; i < 100; i++ {
				s.Atomic(th, func(tx *Tx) {
					tx.Store(addr, tx.Load(addr)+1)
				})
				th.Work(uint64(r.Intn(50)))
			}
		})
		var total uint64
		for tid := 0; tid < 4; tid++ {
			total += space.Load(base + mem.Addr(tid*8))
		}
		return total == 400
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestMaxRetriesTracked(t *testing.T) {
	space, e := newWorld(4)
	s := New(space, Config{})
	a := space.MustMap(mem.PageSize, 0)
	e.Run(func(th *vtime.Thread) {
		for i := 0; i < 200; i++ {
			s.Atomic(th, func(tx *Tx) {
				v := tx.Load(a)
				th.Work(30)
				tx.Store(a, v+1)
			})
		}
	})
	st := s.Stats()
	if st.Aborts > 0 && st.MaxRetries == 0 {
		t.Errorf("aborts %d but MaxRetries 0", st.Aborts)
	}
}

func TestTxFreeThenAllocatorReuse(t *testing.T) {
	// After a committed tx.Free, the allocator may recycle the block and
	// the STM must cope (new stripe versions, no stale locks).
	space, _ := newWorld(1)
	al := alloc.MustNew("tcmalloc", space, 1)
	s := New(space, Config{Allocator: al})
	th := vtime.Solo(space, 0, nil)
	var first mem.Addr
	s.Atomic(th, func(tx *Tx) { first = tx.Malloc(64) })
	s.Atomic(th, func(tx *Tx) { tx.Free(first, 64) })
	var second mem.Addr
	s.Atomic(th, func(tx *Tx) {
		second = tx.Malloc(64)
		tx.Store(second, 42)
	})
	if second != first {
		t.Logf("allocator did not recycle (%#x vs %#x); still fine", uint64(second), uint64(first))
	}
	if space.Load(second) != 42 {
		t.Error("write to recycled block lost")
	}
}

func TestSetSizeStats(t *testing.T) {
	space, _ := newWorld(1)
	s := New(space, Config{})
	base := space.MustMap(mem.PageSize, 0)
	th := vtime.Solo(space, 0, nil)
	s.Atomic(th, func(tx *Tx) {
		for i := 0; i < 10; i++ {
			tx.Load(base + mem.Addr(i*64))
		}
		for i := 0; i < 3; i++ {
			tx.Store(base+mem.Addr(i*64), 1)
		}
	})
	st := s.Stats()
	if st.MaxReadSet < 7 { // stores subsume some reads' stripes, but >= 7 loads remain tracked
		t.Errorf("MaxReadSet = %d, want >= 7", st.MaxReadSet)
	}
	if st.MaxWriteSet != 3 {
		t.Errorf("MaxWriteSet = %d, want 3", st.MaxWriteSet)
	}
}
