package stm

import (
	"math/rand"
	"testing"
)

// TestU64TableBasics exercises the empty-table path, overwrite
// semantics, and key 0 (a valid ORT index, representable through the
// +1 bias).
func TestU64TableBasics(t *testing.T) {
	var tb u64Table
	if _, ok := tb.get(7); ok {
		t.Fatal("empty table reported a hit")
	}
	tb.put(0, 11)
	tb.put(7, 42)
	if v, ok := tb.get(0); !ok || v != 11 {
		t.Fatalf("get(0) = %d, %v; want 11, true", v, ok)
	}
	tb.put(7, 43)
	if v, ok := tb.get(7); !ok || v != 43 {
		t.Fatalf("get(7) after overwrite = %d, %v; want 43, true", v, ok)
	}
	if tb.n != 2 {
		t.Fatalf("n = %d after two distinct keys, want 2", tb.n)
	}
	if _, ok := tb.get(8); ok {
		t.Fatal("absent key reported a hit")
	}
}

// TestU64TableCollisionChain forces every key onto one probe chain:
// keys differing only above bit 32 of the Fibonacci product collide on
// small tables, so linear probing must keep them all distinct.
func TestU64TableCollisionChain(t *testing.T) {
	var tb u64Table
	tb.put(1, 0) // size the table
	mask := uint64(len(tb.keys) - 1)
	home := hashSlot(1, mask)
	var chain []uint64
	for k := uint64(2); len(chain) < 8; k++ {
		if hashSlot(k, mask) == home {
			chain = append(chain, k)
		}
	}
	for i, k := range chain {
		tb.put(k, int32(i+100))
	}
	for i, k := range chain {
		if v, ok := tb.get(k); !ok || v != int32(i+100) {
			t.Fatalf("colliding key %d = %d, %v; want %d, true", k, v, ok, i+100)
		}
	}
	if v, ok := tb.get(1); !ok || v != 0 {
		t.Fatalf("chain head displaced: get(1) = %d, %v", v, ok)
	}
}

// TestU64TableGrowth crosses several 3/4-load doublings and verifies
// every entry survives the rehashes.
func TestU64TableGrowth(t *testing.T) {
	var tb u64Table
	const n = 10 * tableMinSlots
	for i := uint64(0); i < n; i++ {
		tb.put(i*3, int32(i))
	}
	if len(tb.keys) < n {
		t.Fatalf("capacity %d after %d inserts; growth did not keep up", len(tb.keys), n)
	}
	if tb.n != n {
		t.Fatalf("n = %d, want %d", tb.n, n)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := tb.get(i * 3); !ok || v != int32(i) {
			t.Fatalf("key %d lost across growth: %d, %v", i*3, v, ok)
		}
	}
}

// TestU64TableResetReuse models the steady-state transaction loop: fill,
// reset, refill. The backing arrays must be kept (no reallocation) and
// no stale entry may leak through the reset.
func TestU64TableResetReuse(t *testing.T) {
	var tb u64Table
	for i := uint64(0); i < 100; i++ {
		tb.put(i, int32(i))
	}
	capBefore := len(tb.keys)
	tb.reset()
	if tb.n != 0 {
		t.Fatalf("n = %d after reset, want 0", tb.n)
	}
	if len(tb.keys) != capBefore {
		t.Fatalf("reset reallocated: capacity %d -> %d", capBefore, len(tb.keys))
	}
	for i := uint64(0); i < 100; i++ {
		if _, ok := tb.get(i); ok {
			t.Fatalf("stale entry %d visible after reset", i)
		}
	}
	for i := uint64(50); i < 60; i++ {
		tb.put(i, int32(i*2))
	}
	for i := uint64(0); i < 100; i++ {
		v, ok := tb.get(i)
		if in := i >= 50 && i < 60; ok != in {
			t.Fatalf("after refill, get(%d) hit=%v, want %v", i, ok, in)
		} else if in && v != int32(i*2) {
			t.Fatalf("after refill, get(%d) = %d, want %d", i, v, i*2)
		}
	}
	tb.reset()
	tb.reset() // idempotent on an already-empty table
	if tb.n != 0 || len(tb.keys) != capBefore {
		t.Fatal("double reset changed state")
	}
}

// TestU64TableFuzz drives the table and a reference map with the same
// deterministic operation stream — puts, overwrites, gets of present
// and absent keys, periodic resets — and requires identical answers.
func TestU64TableFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var tb u64Table
	ref := map[uint64]int32{}
	// Small key range keeps the overwrite rate high.
	key := func() uint64 { return uint64(rng.Intn(2000)) * 0x10001 }
	for op := 0; op < 200000; op++ {
		switch r := rng.Intn(100); {
		case r < 55:
			k, v := key(), int32(rng.Intn(1<<20))
			tb.put(k, v)
			ref[k] = v
		case r < 99:
			k := key()
			v, ok := tb.get(k)
			rv, rok := ref[k]
			if ok != rok || v != rv {
				t.Fatalf("op %d: get(%d) = (%d, %v), reference (%d, %v)", op, k, v, ok, rv, rok)
			}
		default:
			tb.reset()
			clear(ref)
		}
	}
	if tb.n != len(ref) {
		t.Fatalf("final n = %d, reference holds %d", tb.n, len(ref))
	}
}
