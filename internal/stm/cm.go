// Contention management and the graceful-degradation ladder.
//
// The paper's TinySTM configuration resolves every conflict with
// SUICIDE: the transaction that detects the conflict aborts itself and
// restarts immediately. That policy is livelock-prone on adversarial
// workloads, so this file adds the classic alternatives — exponential
// backoff, karma and aggressive — plus a fallback rung below all of
// them: after RetryCap consecutive aborts a transaction acquires a
// global fallback lock, waits for every other transaction to drain,
// and runs irrevocably. Once alone it cannot conflict, so one retry
// suffices and system-wide progress is guaranteed no matter how hostile
// the conflict pattern or contention manager is.
//
// All waits are priced in virtual cycles through the thread's cost
// model, so contention management shows up in experiment clocks exactly
// like any other synchronization.
package stm

import (
	"fmt"

	"repro/internal/mem"
)

// CM selects the contention-management strategy.
type CM int

// Contention managers.
const (
	// CMSuicide aborts the transaction that detects the conflict and
	// restarts it immediately (TinySTM default; the paper's setting).
	CMSuicide CM = iota
	// CMBackoff is suicide plus randomized exponential backoff before
	// the restart, doubling per consecutive abort.
	CMBackoff
	// CMKarma accumulates work (transactional loads and stores) as
	// priority; on conflict the richer transaction briefly spin-waits
	// for the poorer one instead of aborting.
	CMKarma
	// CMAggressive kills the lock owner (which aborts at its next
	// transactional operation) and waits for the stripe to free up.
	CMAggressive
)

func (c CM) String() string {
	switch c {
	case CMSuicide:
		return "suicide"
	case CMBackoff:
		return "backoff"
	case CMKarma:
		return "karma"
	case CMAggressive:
		return "aggressive"
	}
	return fmt.Sprintf("cm(%d)", int(c))
}

// CMNames lists the recognized contention-manager names.
func CMNames() []string { return []string{"suicide", "backoff", "karma", "aggressive"} }

// ParseCM maps a name to its CM.
func ParseCM(name string) (CM, error) {
	switch name {
	case "", "suicide":
		return CMSuicide, nil
	case "backoff":
		return CMBackoff, nil
	case "karma":
		return CMKarma, nil
	case "aggressive":
		return CMAggressive, nil
	}
	return 0, fmt.Errorf("stm: unknown contention manager %q (known: %v)", name, CMNames())
}

// Ladder and policy constants.
const (
	// DefaultRetryCap is the consecutive-abort count at which a
	// transaction climbs down to the irrevocable fallback. Zero in
	// Config selects it; NoRetryCap disables the ladder.
	DefaultRetryCap = 1024
	// NoRetryCap disables the irrevocable fallback entirely.
	NoRetryCap = ^uint64(0)

	// backoffBase/backoffMaxShift bound the exponential backoff window:
	// the r-th consecutive abort waits up to base<<min(r,maxShift)
	// cycles (plus deterministic jitter).
	backoffBase     = 64
	backoffMaxShift = 14

	// waitQuantum is one polling step, in cycles, for karma/aggressive
	// conflict waits, fallback-lock waits and quiescence checks.
	waitQuantum = 64
	// conflictWaitBudget bounds how many polling steps a karma or
	// aggressive transaction spends waiting on one conflict before
	// giving up and aborting anyway.
	conflictWaitBudget = 256

	// oomRetries and oomRetryWait bound how long an irrevocable
	// transaction waits out a transient allocation failure before
	// declaring the system out of memory.
	oomRetries   = 8
	oomRetryWait = 4096
)

// FaultHook is the transaction-level fault-injection interface
// (internal/fault's Plan implements it structurally): consulted once
// per transaction begin, it returns a one-shot stall in cycles and
// whether an abort storm kills this attempt.
type FaultHook interface {
	TxBegin(tid int, clock uint64) (stallCycles uint64, storm bool)
}

// cmWait is the conflict-time policy: the stripe at idx is locked by
// owner. It returns true when the caller should re-read the stripe
// (the conflict may have cleared) and false when the transaction must
// abort. Suicide and backoff never wait here — backoff prices its wait
// after the abort, in Atomic.
func (tx *Tx) cmWait(owner int) bool {
	s := tx.stm
	switch s.cm {
	case CMKarma:
		other, ok := s.txs[owner]
		if !ok || tx.karma <= other.karma {
			return false // poorer (or tied): yield by self-abort
		}
	case CMAggressive:
		if other, ok := s.txs[owner]; ok && other.active && !other.irrevocable {
			other.killed = true
			other.killedBy = int32(tx.th.ID())
		}
	default:
		return false
	}
	if tx.waitBudget == 0 {
		return false
	}
	tx.waitBudget--
	tx.th.Tick(waitQuantum)
	// A kill that arrived while waiting wins over the wait.
	return !tx.killed
}

// Irrevocable reports whether the transaction is running alone under
// the global fallback lock. Such a transaction cannot abort, so
// workloads may gate one-shot effects (or explicit Restart calls,
// which would violate the ladder's progress guarantee) on it.
func (tx *Tx) Irrevocable() bool { return tx.irrevocable }

// checkKilled aborts the transaction if an aggressive rival flagged it.
func (tx *Tx) checkKilled() {
	if tx.killed {
		tx.killed = false
		tx.abortNoStripe(AbortKilled)
	}
}

// backoff prices the post-abort exponential backoff wait: up to
// backoffBase << min(consec, backoffMaxShift) cycles, with a
// deterministic per-thread jitter so rivals don't re-collide in phase.
func (tx *Tx) backoff(consec uint64) {
	if p := tx.stm.prof; p != nil {
		p.Begin(tx.th, "stm/backoff")
		defer p.End(tx.th)
	}
	shift := consec
	if shift > backoffMaxShift {
		shift = backoffMaxShift
	}
	window := uint64(backoffBase) << shift
	// splitmix64 step on the per-tx state seeded by thread id.
	tx.rng += 0x9e3779b97f4a7c15
	z := tx.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	wait := (z ^ (z >> 31)) % window
	if wait == 0 {
		wait = 1
	}
	tx.stats.BackoffCycles += wait
	tx.th.Tick(wait)
}

// waitFallback parks the thread (in virtual time) while another
// transaction holds the irrevocable fallback lock.
func (s *STM) waitFallback(tx *Tx) {
	for s.fallback.Locked() && !s.fallback.Held(tx.th) {
		tx.th.Tick(waitQuantum)
	}
}

// activeOther reports whether any other thread has an active
// transaction.
func (s *STM) activeOther(tid int) bool {
	for id, tx := range s.txs {
		if id != tid && tx.active {
			return true
		}
	}
	return false
}

// runIrrevocable is the ladder's bottom rung: acquire the global
// fallback lock, drain every other transaction, then run fn alone.
// With no concurrency there is nothing to conflict with — the only
// remaining failure is memory exhaustion, which panics (wrapping
// mem.ErrNoMemory) after a bounded wait so the harness watchdog can
// still emit a degraded run record.
func (s *STM) runIrrevocable(tx *Tx, fn func(tx *Tx), consec uint64) {
	th := tx.th
	start := th.Clock()
	if p := s.prof; p != nil {
		p.Begin(th, "stm/irrevocable")
		defer p.End(th)
	}
	s.fallback.Lock(th)
	defer s.fallback.Unlock(th)
	for s.activeOther(th.ID()) {
		th.Tick(waitQuantum)
	}
	tx.begin()
	tx.irrevocable = true
	if !tx.tryRun(fn) {
		// Cannot happen while alone (no lock conflicts, no version
		// drift); treat it as the invariant violation it is.
		tx.irrevocable = false
		panic("stm: irrevocable transaction aborted while running alone")
	}
	tx.irrevocable = false
	tx.stats.Irrevocables++
	if s.rec != nil {
		s.rec.Irrevocable(th.ID(), start, th.Clock(), consec)
	}
}

// txMallocOOM handles a failed transactional allocation. A revocable
// transaction aborts (releasing its stripes and undoing its
// allocations) and retries — a transient, injected OOM clears by the
// next attempt, and a persistent one walks the transaction down the
// ladder into the irrevocable fallback. Irrevocably, there is no abort
// to lean on: retry the allocator a bounded number of times, then
// declare the system out of memory.
func (tx *Tx) txMallocOOM(size uint64) mem.Addr {
	if !tx.irrevocable {
		tx.abortNoStripe(AbortOOM)
	}
	for i := 0; i < oomRetries; i++ {
		tx.th.Tick(oomRetryWait)
		if a := tx.stm.allocator.Malloc(tx.th, size); a != 0 {
			return a
		}
	}
	panic(fmt.Errorf("stm: irrevocable transaction failed to allocate %d bytes: %w",
		size, mem.ErrNoMemory))
}

// noteOutcome updates the starvation watermarks after an attempt:
// consec is the consecutive-abort streak (0 on commit), and on commit
// the gap since the thread's previous commit is recorded. The
// watermarks feed the stm_max_consecutive_aborts and
// stm_max_commit_gap_cycles gauges.
func (tx *Tx) noteOutcome(consec uint64, committed bool) {
	if consec > tx.stats.MaxConsecAborts {
		tx.stats.MaxConsecAborts = consec
	}
	if committed {
		now := tx.th.Clock()
		if tx.lastCommit != 0 {
			if gap := now - tx.lastCommit; gap > tx.stats.CommitGapMax {
				tx.stats.CommitGapMax = gap
			}
		}
		tx.lastCommit = now
	}
	if s := tx.stm; s.rec != nil {
		s.rec.Starvation(tx.stats.MaxConsecAborts, tx.stats.CommitGapMax)
	}
}

// LockedStripes scans the ORT and returns the indices of entries still
// locked — after all transactions have finished the slice must be
// empty, which the fault-invariant tests assert. Host-side diagnostic:
// reads simulated memory directly without charging virtual time.
func (s *STM) LockedStripes() []uint64 {
	var out []uint64
	for i := uint64(0); i < s.ortSize; i++ {
		if isLocked(s.space.Load(s.ortAddr(i))) {
			out = append(out, i)
		}
	}
	return out
}
