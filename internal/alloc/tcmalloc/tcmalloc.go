// Package tcmalloc implements the Thread-Caching Malloc model
// (gperftools): synchronization-free per-thread caches with one free
// list per size class, a spinlock-protected central cache per class, and
// a central page heap that carves spans out of OS memory. Two behaviours
// that drive the paper's observations are modelled precisely:
//
//   - incremental batch transfer: the n-th time a thread cache refills a
//     given class from the central cache it asks for n blocks (slow
//     start). Early on, *adjacent* blocks of a fresh span are handed to
//     *different* threads one at a time — the Fig. 2 false-sharing
//     scenario, and the cause of TCMalloc's poor 16-byte threadtest
//     throughput;
//   - frees go to the *current* thread's cache, not the allocating
//     thread's (unlike Hoard and TBB), with a garbage-collection trim
//     back to the central cache past a length threshold.
//
// Spans are 8 KiB-page aligned and the page map records each page's
// class, so blocks carry no per-block tag (8-byte effective minimum).
package tcmalloc

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/vtime"
)

// Model constants; see the package comment.
const (
	// PageShift/PageSize model TCMalloc's 8 KiB pages.
	PageShift = 13
	PageSize  = 1 << PageShift

	// MinBlock is the smallest class; SmallMax the largest thread-cached
	// request ("<= 256KB" per the paper's Table 1).
	MinBlock = 8
	SmallMax = 256 << 10

	// batchCap bounds the incremental transfer count (slow start grows
	// 1,2,3,... up to this).
	batchCap = 64

	// cacheTrim is the thread-cache list length that triggers the
	// garbage collector, which returns half the list to the central
	// cache.
	cacheTrim = 256

	// chunkSize is the unit the page heap requests from the OS.
	chunkSize = 1 << 20
)

// classes returns the size-class table: step 8 to 64 (includes an exact
// 48-byte class), step 16 to 256, then ~1.25x geometric to SmallMax.
func classes() []uint64 {
	var out []uint64
	for sz := uint64(8); sz <= 64; sz += 8 {
		out = append(out, sz)
	}
	for sz := uint64(80); sz <= 256; sz += 16 {
		out = append(out, sz)
	}
	sz := uint64(256)
	for sz < SmallMax {
		sz = mem.AlignUp(sz+sz/4, 128)
		if sz > SmallMax {
			sz = SmallMax
		}
		out = append(out, sz)
	}
	return out
}

// span is a run of pages dedicated to one size class (or to a single
// large allocation when class < 0).
type span struct {
	base  mem.Addr
	bytes uint64
	class int
}

type centralList struct {
	lock alloc.CountingMutex
	free alloc.FreeList
}

type threadCache struct {
	lists []alloc.FreeList
	fetch []int // slow-start batch size per class
}

// TCMalloc is the thread-caching allocator model.
type TCMalloc struct {
	space   *mem.Space
	classes *alloc.SizeClasses
	caches  []threadCache
	central []centralList
	stats   []alloc.ThreadStats
	prof    *prof.Profiler

	pageMap map[uint64]*span // page id -> span

	journal alloc.MetaJournal

	heapLock alloc.CountingMutex
	chunkCur mem.Addr
	chunkEnd mem.Addr
}

// New constructs a TCMalloc allocator for up to threads logical threads.
func New(space *mem.Space, threads int) *TCMalloc {
	sc := alloc.NewSizeClasses(classes())
	t := &TCMalloc{
		space:   space,
		classes: sc,
		caches:  make([]threadCache, threads),
		central: make([]centralList, sc.Count()),
		stats:   make([]alloc.ThreadStats, threads),
		pageMap: make(map[uint64]*span),
	}
	for i := range t.caches {
		t.caches[i].lists = make([]alloc.FreeList, sc.Count())
		t.caches[i].fetch = make([]int, sc.Count())
	}
	return t
}

func init() {
	alloc.Register("tcmalloc", func(space *mem.Space, threads int) alloc.Allocator {
		return New(space, threads)
	})
}

// Name implements alloc.Allocator.
func (t *TCMalloc) Name() string { return "tcmalloc" }

// SetObserver implements alloc.Observable.
func (t *TCMalloc) SetObserver(r *obs.Recorder) {
	for i := range t.stats {
		t.stats[i].Rec = r
	}
}

// SetInjector implements alloc.Injectable.
func (t *TCMalloc) SetInjector(inj alloc.Injector) {
	for i := range t.stats {
		t.stats[i].Inj = inj
	}
}

// SetProfiler implements alloc.Profiled.
func (t *TCMalloc) SetProfiler(p *prof.Profiler) { t.prof = p }

// SetJournal implements alloc.Journaled.
func (t *TCMalloc) SetJournal(j alloc.MetaJournal) { t.journal = j }

// Malloc implements alloc.Allocator.
func (t *TCMalloc) Malloc(th *vtime.Thread, size uint64) mem.Addr {
	if p := t.prof; p != nil {
		p.Begin(th, "tcmalloc/malloc")
		defer p.End(th)
	}
	st := &t.stats[th.ID()]
	var a mem.Addr
	if st.Rec == nil {
		a = t.malloc(th, st, size)
	} else {
		start := th.Clock()
		a = t.malloc(th, st, size)
		st.Rec.Alloc("tcmalloc", th.ID(), start, th.Clock(), size, uint64(a))
	}
	if t.space.Observed() && a != 0 {
		t.space.NoteAlloc("tcmalloc", a, size, t.BlockSize(th, a), th.ID(), th.Clock())
	}
	return a
}

func (t *TCMalloc) malloc(th *vtime.Thread, st *alloc.ThreadStats, size uint64) mem.Addr {
	st.Mallocs++
	st.BytesRequested += size
	th.Tick(th.Cost().AllocOp)
	if st.PreMalloc(th, size) {
		return 0
	}
	if size > SmallMax {
		return t.mapLarge(th, st, size)
	}
	ci := t.classes.Index(max64(size, MinBlock))

	tc := &t.caches[th.ID()]
	a := tc.lists[ci].Pop(th)
	if a == 0 {
		st.SlowRefills++
		a = t.refill(th, st, ci)
		if a == 0 {
			st.MallocFailed(th, size)
			return 0
		}
	}
	st.BytesAllocated += t.classes.Size(ci)
	st.LiveBytes += int64(t.classes.Size(ci))
	return a
}

// refill performs the incremental batch transfer from the central cache:
// the n-th refill of a class moves n blocks (capped). The first block is
// returned; the rest land in the thread cache.
func (t *TCMalloc) refill(th *vtime.Thread, st *alloc.ThreadStats, ci int) mem.Addr {
	if p := t.prof; p != nil {
		p.Begin(th, "tcmalloc/central")
		defer p.End(th)
	}
	tc := &t.caches[th.ID()]
	tc.fetch[ci]++
	if tc.fetch[ci] > batchCap {
		tc.fetch[ci] = batchCap
	}
	want := tc.fetch[ci]
	st.Rec.Transfer("tcmalloc:central-refill", th.ID(), th.Clock(), uint64(want))

	c := &t.central[ci]
	c.lock.Lock(th, st)
	var first mem.Addr
	got := 0
	for got < want {
		a := c.free.Pop(th)
		if a == 0 {
			if !t.growCentral(th, st, ci) {
				break // OS out of memory: settle for what we got
			}
			continue
		}
		if first == 0 {
			first = a
		} else {
			tc.lists[ci].Push(th, a)
		}
		got++
	}
	c.lock.Unlock(th)
	return first
}

// growCentral fetches a span from the page heap and threads its blocks
// onto the central free list in ascending address order (so consecutive
// pops hand out consecutive addresses — Fig. 2). Caller holds the
// central list's lock. Reports false when the simulated OS is out of
// memory.
func (t *TCMalloc) growCentral(th *vtime.Thread, st *alloc.ThreadStats, ci int) bool {
	blockSz := t.classes.Size(ci)
	// Span large enough for ~64 objects, at least one page — mirroring
	// TCMalloc's class-to-pages sizing.
	bytes := mem.AlignUp(blockSz*64, PageSize)
	if bytes > 256*PageSize {
		bytes = mem.AlignUp(blockSz, PageSize)
	}
	sp := t.newSpan(th, st, bytes, ci)
	if sp == nil {
		return false
	}
	n := sp.bytes / blockSz
	// Push highest address first: LIFO pops then ascend.
	for i := int64(n) - 1; i >= 0; i-- {
		t.central[ci].free.Push(th, sp.base+mem.Addr(uint64(i)*blockSz))
	}
	return true
}

// newSpan carves a page-aligned span from the current OS chunk and
// registers its pages in the page map; nil when the simulated OS is
// out of memory.
func (t *TCMalloc) newSpan(th *vtime.Thread, st *alloc.ThreadStats, bytes uint64, class int) *span {
	if p := t.prof; p != nil {
		p.Begin(th, "tcmalloc/pageheap")
		defer p.End(th)
	}
	t.heapLock.Lock(th, st)
	if t.chunkCur+mem.Addr(bytes) > t.chunkEnd {
		sz := uint64(chunkSize)
		if bytes > sz {
			sz = mem.AlignUp(bytes, chunkSize)
		}
		base, err := t.space.Map(sz, PageSize)
		if err != nil {
			t.heapLock.Unlock(th)
			return nil
		}
		st.OSMaps++
		th.Tick(th.Cost().OSMap)
		t.chunkCur, t.chunkEnd = base, base+mem.Addr(sz)
	}
	base := t.chunkCur
	t.chunkCur += mem.Addr(bytes)
	t.heapLock.Unlock(th)

	sp := &span{base: base, bytes: bytes, class: class}
	for p := base; p < base+mem.Addr(bytes); p += PageSize {
		t.pageMap[uint64(p)>>PageShift] = sp
	}
	if t.journal != nil {
		// class is -1 for a large span; journal it off-by-one so the
		// record stays unsigned (0 = large).
		t.journal.JournalMeta(th, "span", base, bytes, uint64(class+1))
	}
	return sp
}

// Free implements alloc.Allocator: small blocks go to the *current*
// thread's cache; an over-long cache list is trimmed back to the central
// cache (the garbage collector).
func (t *TCMalloc) Free(th *vtime.Thread, addr mem.Addr) {
	if addr == 0 {
		return
	}
	if p := t.prof; p != nil {
		p.Begin(th, "tcmalloc/free")
		defer p.End(th)
	}
	if t.space.Observed() {
		t.space.NoteFree(addr, th.ID(), th.Clock())
	}
	st := &t.stats[th.ID()]
	if st.Rec == nil {
		t.free(th, st, addr)
		return
	}
	start := th.Clock()
	t.free(th, st, addr)
	st.Rec.Free("tcmalloc", th.ID(), start, th.Clock(), uint64(addr))
}

func (t *TCMalloc) free(th *vtime.Thread, st *alloc.ThreadStats, addr mem.Addr) {
	th.Tick(th.Cost().AllocOp)
	// Page-map lookup doubles as pointer validation: the page must
	// belong to a live span and the address must sit on a block boundary
	// within it. (A large span freed twice fails the page lookup, since
	// the first free unregistered its pages.)
	sp := t.pageMap[uint64(addr)>>PageShift]
	if sp == nil {
		st.FreeFaulted(th, alloc.BadPointer, addr)
		return
	}
	if sp.class < 0 {
		if addr != sp.base {
			st.FreeFaulted(th, alloc.BadPointer, addr)
			return
		}
		st.Frees++
		st.LiveBytes -= int64(sp.bytes)
		t.freeLarge(th, sp)
		return
	}
	if uint64(addr-sp.base)%t.classes.Size(sp.class) != 0 {
		st.FreeFaulted(th, alloc.BadPointer, addr)
		return
	}
	st.Frees++
	st.LiveBytes -= int64(t.classes.Size(sp.class))
	tc := &t.caches[th.ID()]
	tc.lists[sp.class].Push(th, addr)
	if tc.lists[sp.class].Len() > cacheTrim {
		t.trim(th, st, sp.class)
	}
}

// trim returns half of an over-long thread-cache list to the central
// cache.
func (t *TCMalloc) trim(th *vtime.Thread, st *alloc.ThreadStats, ci int) {
	if p := t.prof; p != nil {
		p.Begin(th, "tcmalloc/central")
		defer p.End(th)
	}
	tc := &t.caches[th.ID()]
	c := &t.central[ci]
	st.Rec.Transfer("tcmalloc:cache-trim", th.ID(), th.Clock(), uint64(tc.lists[ci].Len()-cacheTrim/2))
	c.lock.Lock(th, st)
	for tc.lists[ci].Len() > cacheTrim/2 {
		c.free.Push(th, tc.lists[ci].Pop(th))
	}
	c.lock.Unlock(th)
	// Slow-start over: next refill restarts smaller, as TCMalloc's GC
	// shrinks max_length.
	if tc.fetch[ci] > 1 {
		tc.fetch[ci] /= 2
	}
}

func (t *TCMalloc) mapLarge(th *vtime.Thread, st *alloc.ThreadStats, size uint64) mem.Addr {
	bytes := mem.AlignUp(size, PageSize)
	t.heapLock.Lock(th, st)
	base, err := t.space.Map(bytes, PageSize)
	if err != nil {
		t.heapLock.Unlock(th)
		st.MallocFailed(th, size)
		return 0
	}
	st.OSMaps++
	th.Tick(th.Cost().OSMap)
	t.heapLock.Unlock(th)
	st.BytesAllocated += bytes
	st.LiveBytes += int64(bytes)
	sp := &span{base: base, bytes: bytes, class: -1}
	for p := base; p < base+mem.Addr(bytes); p += PageSize {
		t.pageMap[uint64(p)>>PageShift] = sp
	}
	return base
}

func (t *TCMalloc) freeLarge(th *vtime.Thread, sp *span) {
	for p := sp.base; p < sp.base+mem.Addr(sp.bytes); p += PageSize {
		delete(t.pageMap, uint64(p)>>PageShift)
	}
	th.Tick(th.Cost().OSMap)
	if err := t.space.Unmap(sp.base); err != nil {
		panic(err)
	}
}

// BlockSize implements alloc.Allocator.
func (t *TCMalloc) BlockSize(_ *vtime.Thread, addr mem.Addr) uint64 {
	sp := t.pageMap[uint64(addr)>>PageShift]
	if sp == nil {
		panic(fmt.Sprintf("tcmalloc: BlockSize of unknown address %#x", uint64(addr)))
	}
	if sp.class < 0 {
		return sp.bytes
	}
	return t.classes.Size(sp.class)
}

// InspectHeap implements alloc.HeapInspector. Per class, Cached counts
// blocks idle in thread caches and Free blocks on the central list —
// the thread-cache vs central-list byte balance. Spans are registered
// per page in the page map, so reserved bytes dedup span pointers; the
// uncarved tail of the current OS chunk rides along. Pure Go-side
// metadata: map iteration only feeds order-independent sums, no
// simulated memory access, no ticks.
func (t *TCMalloc) InspectHeap() alloc.HeapState {
	st := alloc.HeapState{
		Reserved:        uint64(t.chunkEnd - t.chunkCur),
		SuperblockBytes: PageSize,
		MinBlock:        MinBlock,
		MaxBlock:        SmallMax,
	}
	seen := make(map[*span]bool)
	for _, sp := range t.pageMap {
		if !seen[sp] {
			seen[sp] = true
			st.Reserved += sp.bytes
			st.Superblocks++
		}
	}
	for ci := 0; ci < t.classes.Count(); ci++ {
		var cached uint64
		for i := range t.caches {
			cached += uint64(t.caches[i].lists[ci].Len())
		}
		central := uint64(t.central[ci].free.Len())
		sz := t.classes.Size(ci)
		st.Classes = append(st.Classes, alloc.HeapClass{Size: sz, Free: central, Cached: cached})
		st.CentralBytes += central * sz
		st.CacheBytes += cached * sz
	}
	return st
}

// Stats implements alloc.Allocator.
func (t *TCMalloc) Stats() alloc.Stats {
	var out alloc.Stats
	for i := range t.stats {
		out.Add(t.stats[i].Stats)
	}
	return out
}

// Describe implements alloc.Allocator.
func (t *TCMalloc) Describe() alloc.Description {
	return alloc.Description{
		Name:        "TCMalloc",
		Metadata:    "Per size class",
		MinSize:     8,
		FastPath:    "<= 256KB",
		Granularity: "incremental",
		Sync:        "Each free list in the central cache is protected by a spinlock. A spinlock is also used to protect the central page heap.",
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
