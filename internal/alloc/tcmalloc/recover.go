package tcmalloc

import (
	"sort"

	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/vtime"
)

// Crash recovery. TCMalloc keeps the least in-band metadata of the four
// models: no block headers and no superblock headers — the page map is
// pure host-side state, rebuilt from journaled "span" records — so only
// free-list link words can tear. The volatile split between thread
// caches and the central lists is gone with the crash; recovery merges
// every freed block into one canonical central chain per size class.

// RecoverHeap implements alloc.Recoverer. A freed block resolves to its
// size class through the journaled span covering it; freed large blocks
// never appear (their free unmaps the span).
func (t *TCMalloc) RecoverHeap(th *vtime.Thread, st *alloc.RecoverState) alloc.RecoverReport {
	var rep alloc.RecoverReport
	type spanRec struct {
		base  mem.Addr
		bytes uint64
		class int
	}
	spans := make([]spanRec, 0, len(st.Meta))
	for _, m := range st.Meta {
		if m.Kind == "span" {
			spans = append(spans, spanRec{base: m.Base, bytes: m.A, class: int(m.B) - 1})
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].base < spans[j].base })
	classOf := func(a mem.Addr) (int, bool) {
		i := sort.Search(len(spans), func(i int) bool { return spans[i].base > a })
		if i == 0 {
			return 0, false
		}
		sp := spans[i-1]
		if a >= sp.base+mem.Addr(sp.bytes) || sp.class < 0 {
			return 0, false
		}
		return sp.class, true
	}

	groups := map[int][]mem.Addr{}
	for _, b := range st.Freed {
		if ci, ok := classOf(b.Base); ok {
			groups[ci] = append(groups[ci], b.Base)
		}
		// A freed block outside every journaled span stays unchained and
		// surfaces as resurrection risk in the verifier — recovery must
		// not guess a class for it.
	}
	cis := make([]int, 0, len(groups))
	for ci := range groups {
		cis = append(cis, ci)
	}
	sort.Ints(cis)
	inSet := st.FreedSet()
	for _, ci := range cis {
		blocks := groups[ci]
		head, torn := alloc.RebuildChain(th, blocks, inSet)
		rep.Chains++
		rep.FreeBlocks += len(blocks)
		rep.MetaWords += uint64(len(blocks))
		rep.TornMeta += torn
		rep.Heads = append(rep.Heads, head)
	}
	return rep
}
