package tcmalloc

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/alloc/alloctest"
	"repro/internal/mem"
	"repro/internal/vtime"
)

func solo(s *mem.Space) *vtime.Thread { return vtime.Solo(s, 0, nil) }
func duo(s *mem.Space) (*vtime.Thread, *vtime.Thread) {
	return vtime.Solo(s, 0, nil), vtime.Solo(s, 1, nil)
}

func TestConformance(t *testing.T) {
	alloctest.Run(t, func(s *mem.Space, n int) alloc.Allocator { return New(s, n) })
}

func TestExact48ByteClass(t *testing.T) {
	s := mem.NewSpace()
	a := New(s, 1)
	th := solo(s)
	if got := a.BlockSize(th, a.Malloc(th, 48)); got != 48 {
		t.Errorf("BlockSize(Malloc(48)) = %d, want 48", got)
	}
}

// The paper's Figure 2 scenario: with empty caches, two threads
// alternately requesting 16-byte blocks receive *adjacent* addresses
// from the central cache (16 bytes apart, same 64-byte cache line and
// same 32-byte ORT stripe), and the transfer batch grows 1,2,3,...
func TestFig2AdjacentHandoutAcrossThreads(t *testing.T) {
	s := mem.NewSpace()
	a := New(s, 2)
	th0, th1 := duo(s)
	x := a.Malloc(th0, 16) // thread 1 in the paper's figure
	v := a.Malloc(th1, 16) // thread 2
	if v-x != 16 {
		t.Fatalf("cross-thread first blocks %d apart, want 16 (x=%#x v=%#x)", v-x, uint64(x), uint64(v))
	}
	if uint64(x)/64 != uint64(v)/64 {
		t.Errorf("blocks do not share a cache line: %#x vs %#x", uint64(x), uint64(v))
	}
	// Second round: thread 0 gets 2 blocks (the next two addresses), so
	// its second allocation is the block right after v.
	y := a.Malloc(th0, 16)
	if y != v+16 {
		t.Errorf("thread 0 second block = %#x, want %#x (incremental batch of 2)", uint64(y), uint64(v+16))
	}
	// and its third allocation comes from its cache: the following one.
	y2 := a.Malloc(th0, 16)
	if y2 != y+16 {
		t.Errorf("thread 0 third block = %#x, want %#x (cached from batch)", uint64(y2), uint64(y+16))
	}
	// Thread 1's second request likewise fetches a batch of 2.
	w := a.Malloc(th1, 16)
	if w != y2+16 {
		t.Errorf("thread 1 second block = %#x, want %#x", uint64(w), uint64(y2+16))
	}
}

// Frees go to the current thread's cache, not the allocating thread's:
// after thread 1 frees a block thread 0 allocated, thread 1's next
// malloc returns that block.
func TestFreeGoesToCurrentThreadCache(t *testing.T) {
	s := mem.NewSpace()
	a := New(s, 2)
	th0, th1 := duo(s)
	x := a.Malloc(th0, 16)
	a.Free(th1, x)
	if got := a.Malloc(th1, 16); got != x {
		t.Errorf("thread 1 malloc after its free = %#x, want the freed block %#x", uint64(got), uint64(x))
	}
}

// Warm thread-cache operations perform no locking.
func TestFastPathIsLockFree(t *testing.T) {
	s := mem.NewSpace()
	a := New(s, 1)
	th := solo(s)
	x := a.Malloc(th, 64)
	a.Free(th, x)
	before := a.Stats().LockAcquires
	for i := 0; i < 100; i++ {
		a.Free(th, a.Malloc(th, 64))
	}
	if got := a.Stats().LockAcquires; got != before {
		t.Errorf("fast path took %d lock acquisitions, want 0", got-before)
	}
}

// An over-long thread-cache list is trimmed back to the central cache,
// bounding the cache (the GC the paper mentions).
func TestCacheTrim(t *testing.T) {
	s := mem.NewSpace()
	a := New(s, 2)
	th0, th1 := duo(s)
	// Thread 1 frees far more blocks than cacheTrim; the trim must kick
	// in and later allow thread 0 to reuse them via the central cache.
	var addrs []mem.Addr
	for i := 0; i < 3*cacheTrim; i++ {
		addrs = append(addrs, a.Malloc(th0, 32))
	}
	for _, x := range addrs {
		a.Free(th1, x)
	}
	maps := s.Stats().MapCalls
	for i := 0; i < 2*cacheTrim; i++ {
		a.Malloc(th0, 32)
	}
	if got := s.Stats().MapCalls; got != maps {
		t.Errorf("central cache did not recycle trimmed blocks: %d new maps", got-maps)
	}
}

func TestLargeAllocation(t *testing.T) {
	s := mem.NewSpace()
	a := New(s, 1)
	th := solo(s)
	x := a.Malloc(th, 512<<10)
	if got := a.BlockSize(th, x); got < 512<<10 {
		t.Errorf("BlockSize = %d", got)
	}
	a.Free(th, x)
	if s.Stats().UnmapCalls == 0 {
		t.Error("large block not unmapped")
	}
}

func TestPropertyRandomTraces(t *testing.T) {
	alloctest.RunProperty(t, func(s *mem.Space, n int) alloc.Allocator { return New(s, n) })
}

func TestFootprintGauge(t *testing.T) {
	alloctest.RunFootprint(t, func(s *mem.Space, n int) alloc.Allocator { return New(s, n) })
}
