// Package tbb implements the Intel TBBMalloc (scalable_allocator) model:
// strictly thread-private heaps with per-size-class 16 KiB superblocks
// carved from 1 MiB OS chunks, a private free list per superblock that
// needs no synchronization, a spinlock-protected public free list that
// receives frees from other threads, and a global heap that recycles
// empty superblocks. Requests approaching 8 KiB bypass the heaps and go
// to the OS directly.
//
// Behaviour the study depends on:
//
//   - blocks carry no per-block tag and classes are fine-grained
//     (including an exact 48-byte class for the red-black tree node);
//   - 16-byte blocks sit 16 bytes apart (Fig. 5b stripe sharing);
//   - superblocks are 16 KiB-aligned, avoiding Glibc-style ORT aliasing;
//   - the fast path (private free list / superblock bump) performs no
//     synchronization at all, which is where TBB's flat threadtest curve
//     up to ~8 KiB comes from, with the cliff above LargeMax where every
//     operation becomes an OS call.
package tbb

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/vtime"
)

// Model constants; see the package comment.
const (
	// SuperblockSize and SuperblockAlign model TBB's 16 KiB slabs.
	SuperblockSize  = 16 << 10
	SuperblockAlign = 16 << 10
	sbMask          = mem.Addr(SuperblockAlign - 1)

	// ChunkSize is the unit requested from the OS and split into
	// superblocks.
	ChunkSize = 1 << 20

	// headerReserve models the in-band superblock header.
	headerReserve = 64

	// MinBlock is the smallest class; LargeMax is the largest request
	// served from superblocks ("slightly less than 8KB" in the paper).
	MinBlock = 8
	LargeMax = 8064
)

// classes returns TBB's fine-grained size-class table: step 8 to 64,
// step 16 to 128, step 32 to 256, then ~1.25x geometric growth.
func classes() []uint64 {
	var out []uint64
	for sz := uint64(8); sz <= 64; sz += 8 {
		out = append(out, sz)
	}
	for sz := uint64(80); sz <= 128; sz += 16 {
		out = append(out, sz)
	}
	for sz := uint64(160); sz <= 256; sz += 32 {
		out = append(out, sz)
	}
	sz := uint64(256)
	for sz < LargeMax {
		sz = mem.AlignUp(sz+sz/4, 64)
		if sz > LargeMax {
			sz = LargeMax
		}
		out = append(out, sz)
	}
	return out
}

type superblock struct {
	base     mem.Addr
	class    int
	blockSz  uint64
	bump     mem.Addr
	private  alloc.FreeList // owner-only, no synchronization
	used     int
	capacity int
	owner    int // owning tid; -1 when on the global heap

	publicLock alloc.CountingMutex
	public     alloc.FreeList // receives remote frees
	publicTail mem.Addr       // last block of the public chain
}

type heap struct {
	// bins[class] holds this thread's superblocks of that class; the
	// active one (last) is tried first. Thread-private: no lock.
	bins [][]*superblock
}

// TBB is the TBBMalloc model.
type TBB struct {
	space   *mem.Space
	classes *alloc.SizeClasses
	heaps   []*heap
	stats   []alloc.ThreadStats
	prof    *prof.Profiler

	sbMap map[mem.Addr]*superblock

	globalLock alloc.CountingMutex
	spare      []*superblock // empty superblocks awaiting reuse

	chunkLock alloc.CountingMutex
	chunkCur  mem.Addr
	chunkEnd  mem.Addr

	big map[mem.Addr]uint64

	journal alloc.MetaJournal

	migrations uint64 // retired superblocks returned to the global heap
}

// New constructs a TBB allocator for up to threads logical threads.
func New(space *mem.Space, threads int) *TBB {
	sc := alloc.NewSizeClasses(classes())
	t := &TBB{
		space:   space,
		classes: sc,
		heaps:   make([]*heap, threads),
		stats:   make([]alloc.ThreadStats, threads),
		sbMap:   make(map[mem.Addr]*superblock),
		big:     make(map[mem.Addr]uint64),
	}
	for i := range t.heaps {
		t.heaps[i] = &heap{bins: make([][]*superblock, sc.Count())}
	}
	return t
}

func init() {
	alloc.Register("tbb", func(space *mem.Space, threads int) alloc.Allocator {
		return New(space, threads)
	})
}

// Name implements alloc.Allocator.
func (t *TBB) Name() string { return "tbb" }

// SetObserver implements alloc.Observable.
func (t *TBB) SetObserver(r *obs.Recorder) {
	for i := range t.stats {
		t.stats[i].Rec = r
	}
}

// SetProfiler implements alloc.Profiled.
func (t *TBB) SetProfiler(p *prof.Profiler) { t.prof = p }

// SetJournal implements alloc.Journaled.
func (t *TBB) SetJournal(j alloc.MetaJournal) { t.journal = j }

// SetInjector implements alloc.Injectable.
func (t *TBB) SetInjector(inj alloc.Injector) {
	for i := range t.stats {
		t.stats[i].Inj = inj
	}
}

// Malloc implements alloc.Allocator.
func (t *TBB) Malloc(th *vtime.Thread, size uint64) mem.Addr {
	st := &t.stats[th.ID()]
	var a mem.Addr
	if st.Rec == nil {
		a = t.malloc(th, st, size)
	} else {
		start := th.Clock()
		a = t.malloc(th, st, size)
		st.Rec.Alloc("tbb", th.ID(), start, th.Clock(), size, uint64(a))
	}
	if t.space.Observed() && a != 0 {
		t.space.NoteAlloc("tbb", a, size, t.BlockSize(th, a), th.ID(), th.Clock())
	}
	return a
}

func (t *TBB) malloc(th *vtime.Thread, st *alloc.ThreadStats, size uint64) mem.Addr {
	if p := t.prof; p != nil {
		p.Begin(th, "tbb/malloc")
		defer p.End(th)
	}
	tid := th.ID()
	st.Mallocs++
	st.BytesRequested += size
	th.Tick(th.Cost().AllocOp)
	if st.PreMalloc(th, size) {
		return 0
	}
	if size > LargeMax {
		return t.mapBig(th, st, size)
	}
	ci := t.classes.Index(max64(size, MinBlock))
	blockSz := t.classes.Size(ci)

	hp := t.heaps[tid]
	a := mem.Addr(0)
	// Fast path over this thread's superblocks: private list, then
	// fresh carve, newest superblock first.
	for i := len(hp.bins[ci]) - 1; i >= 0 && a == 0; i-- {
		a = t.takePrivate(th, hp.bins[ci][i])
	}
	if a == 0 {
		// Next: steal the public free lists (synchronized, one lock per
		// superblock).
		for i := len(hp.bins[ci]) - 1; i >= 0 && a == 0; i-- {
			sb := hp.bins[ci][i]
			if t.drainPublic(th, st, sb) {
				a = t.takePrivate(th, sb)
			}
		}
	}
	if a == 0 {
		// Slow path: a new superblock from the global heap or a 1 MiB chunk.
		st.SlowRefills++
		st.Rec.Transfer("tbb:sb-refill", th.ID(), th.Clock(), blockSz)
		sb := t.newSuperblock(th, st, ci)
		if sb == nil {
			st.MallocFailed(th, size)
			return 0
		}
		hp.bins[ci] = append(hp.bins[ci], sb)
		a = t.takePrivate(th, sb)
	}
	st.BytesAllocated += blockSz
	st.LiveBytes += int64(blockSz)
	return a
}

// takePrivate pops from the private list or carves a fresh block.
// Owner-only; no synchronization.
func (t *TBB) takePrivate(th *vtime.Thread, sb *superblock) mem.Addr {
	if a := sb.private.Pop(th); a != 0 {
		sb.used++
		return a
	}
	if sb.bump+mem.Addr(sb.blockSz) <= sb.base+SuperblockSize {
		a := sb.bump
		sb.bump += mem.Addr(sb.blockSz)
		sb.used++
		return a
	}
	return 0
}

// drainPublic moves the whole public chain into the private list under
// the superblock's spinlock, reporting whether anything moved.
func (t *TBB) drainPublic(th *vtime.Thread, st *alloc.ThreadStats, sb *superblock) bool {
	if sb.public.Empty() {
		return false
	}
	sb.publicLock.Lock(th, st)
	head, n := sb.public.TakeAll()
	tail := sb.publicTail
	sb.publicTail = 0
	sb.publicLock.Unlock(th)
	if n == 0 {
		return false
	}
	sb.private.PushChain(th, head, tail, n)
	return true
}

// newSuperblock obtains an empty superblock from the global heap or
// carves one from the current 1 MiB chunk; nil when the simulated OS
// is out of memory.
func (t *TBB) newSuperblock(th *vtime.Thread, st *alloc.ThreadStats, ci int) *superblock {
	if p := t.prof; p != nil {
		p.Begin(th, "tbb/superblock")
		defer p.End(th)
	}
	t.globalLock.Lock(th, st)
	if n := len(t.spare); n > 0 {
		sb := t.spare[n-1]
		t.spare = t.spare[:n-1]
		t.globalLock.Unlock(th)
		t.assign(sb, th.ID(), ci)
		if t.journal != nil {
			t.journal.JournalMeta(th, "sb-class", sb.base, sb.blockSz, uint64(ci))
		}
		return sb
	}
	t.globalLock.Unlock(th)

	t.chunkLock.Lock(th, st)
	if t.chunkCur+SuperblockSize > t.chunkEnd {
		base, err := t.space.Map(ChunkSize, SuperblockAlign)
		if err != nil {
			t.chunkLock.Unlock(th)
			return nil
		}
		st.OSMaps++
		th.Tick(th.Cost().OSMap)
		t.chunkCur, t.chunkEnd = base, base+ChunkSize
	}
	base := t.chunkCur
	t.chunkCur += SuperblockSize
	t.chunkLock.Unlock(th)

	sb := &superblock{base: base}
	t.assign(sb, th.ID(), ci)
	t.sbMap[base] = sb
	if t.journal != nil {
		t.journal.JournalMeta(th, "superblock", base, sb.blockSz, uint64(ci))
	}
	return sb
}

func (t *TBB) assign(sb *superblock, tid, ci int) {
	sb.class = ci
	sb.blockSz = t.classes.Size(ci)
	sb.bump = sb.base + headerReserve
	sb.private = alloc.FreeList{}
	sb.capacity = int((SuperblockSize - headerReserve) / sb.blockSz)
	sb.used = 0
	sb.owner = tid
}

// Free implements alloc.Allocator. A block freed by its owning thread
// goes to the private list without synchronization; a block freed by
// another thread goes to the owning superblock's public list under its
// spinlock.
func (t *TBB) Free(th *vtime.Thread, addr mem.Addr) {
	if addr == 0 {
		return
	}
	if t.space.Observed() {
		t.space.NoteFree(addr, th.ID(), th.Clock())
	}
	st := &t.stats[th.ID()]
	if st.Rec == nil {
		t.free(th, st, addr)
		return
	}
	start := th.Clock()
	t.free(th, st, addr)
	st.Rec.Free("tbb", th.ID(), start, th.Clock(), uint64(addr))
}

func (t *TBB) free(th *vtime.Thread, st *alloc.ThreadStats, addr mem.Addr) {
	if p := t.prof; p != nil {
		p.Begin(th, "tbb/free")
		defer p.End(th)
	}
	tid := th.ID()
	th.Tick(th.Cost().AllocOp)

	if sz, ok := t.big[addr]; ok {
		st.Frees++
		st.LiveBytes -= int64(sz)
		t.freeBig(th, addr, sz)
		return
	}
	// Size-class lookup doubles as pointer validation: the address must
	// resolve to a superblock we carved, sit on a block boundary inside
	// its bumped range, and the superblock must have live blocks.
	sb := t.superblockOf(addr)
	if sb == nil {
		st.FreeFaulted(th, alloc.BadPointer, addr)
		return
	}
	if addr < sb.base+headerReserve || addr >= sb.bump ||
		uint64(addr-(sb.base+headerReserve))%sb.blockSz != 0 {
		st.FreeFaulted(th, alloc.BadPointer, addr)
		return
	}
	if sb.used == 0 {
		st.FreeFaulted(th, alloc.DoubleFree, addr)
		return
	}
	st.Frees++
	st.LiveBytes -= int64(sb.blockSz)
	if sb.owner == tid {
		sb.private.Push(th, addr)
		sb.used--
		if sb.used == 0 {
			t.retire(th, st, sb)
		}
		return
	}
	st.RemoteFrees++
	st.Rec.Transfer("tbb:remote-free", th.ID(), th.Clock(), sb.blockSz)
	sb.publicLock.Lock(th, st)
	if sb.public.Empty() {
		sb.publicTail = addr
	}
	sb.public.Push(th, addr)
	sb.publicLock.Unlock(th)
	sb.used--
}

// retire returns a fully empty superblock from the owner's heap to the
// global heap. Only the owner calls it, from its own free path.
func (t *TBB) retire(th *vtime.Thread, st *alloc.ThreadStats, sb *superblock) {
	hp := t.heaps[sb.owner]
	bin := hp.bins[sb.class]
	// Keep the last superblock of a class resident to avoid thrashing.
	if len(bin) <= 1 {
		return
	}
	found := false
	for i, s := range bin {
		if s == sb {
			hp.bins[sb.class] = append(bin[:i], bin[i+1:]...)
			found = true
			break
		}
	}
	if !found {
		return
	}
	t.drainPublic(th, st, sb)
	sb.private = alloc.FreeList{}
	sb.owner = -1
	t.migrations++
	t.globalLock.Lock(th, st)
	t.spare = append(t.spare, sb)
	t.globalLock.Unlock(th)
}

func (t *TBB) superblockOf(addr mem.Addr) *superblock {
	return t.sbMap[addr&^sbMask]
}

func (t *TBB) mapBig(th *vtime.Thread, st *alloc.ThreadStats, size uint64) mem.Addr {
	region := mem.AlignUp(size, mem.PageSize)
	base, err := t.space.Map(region, mem.PageSize)
	if err != nil {
		st.MallocFailed(th, size)
		return 0
	}
	st.OSMaps++
	th.Tick(th.Cost().OSMap)
	st.BytesAllocated += region
	st.LiveBytes += int64(region)
	t.big[base] = region
	return base
}

func (t *TBB) freeBig(th *vtime.Thread, addr mem.Addr, _ uint64) {
	delete(t.big, addr)
	th.Tick(th.Cost().OSMap)
	if err := t.space.Unmap(addr); err != nil {
		panic(err)
	}
}

// BlockSize implements alloc.Allocator.
func (t *TBB) BlockSize(_ *vtime.Thread, addr mem.Addr) uint64 {
	if sz, ok := t.big[addr]; ok {
		return sz
	}
	if sb := t.superblockOf(addr); sb != nil {
		return sb.blockSz
	}
	panic(fmt.Sprintf("tbb: BlockSize of unknown address %#x", uint64(addr)))
}

// InspectHeap implements alloc.HeapInspector. Per class, Cached counts
// blocks on synchronization-free private lists plus never-carved bump
// space (the owner-only fast path) and Free blocks on the spinlocked
// public lists; retired superblocks on the global spare list count as
// empty. Pure Go-side metadata: map iteration only feeds
// order-independent sums, no simulated memory access, no ticks.
func (t *TBB) InspectHeap() alloc.HeapState {
	st := alloc.HeapState{
		Reserved:        uint64(t.chunkEnd - t.chunkCur),
		Superblocks:     uint64(len(t.sbMap)),
		Migrations:      t.migrations,
		SuperblockBytes: SuperblockSize,
		MinBlock:        MinBlock,
		MaxBlock:        LargeMax,
	}
	st.Reserved += uint64(len(t.sbMap)) * SuperblockSize
	for _, region := range t.big {
		st.Reserved += region
	}
	private := make([]uint64, t.classes.Count())
	public := make([]uint64, t.classes.Count())
	for _, sb := range t.sbMap {
		if sb.owner < 0 || sb.used == 0 {
			st.EmptySuperblocks++
		}
		if sb.owner < 0 {
			continue
		}
		bumpLeft := uint64(sb.base+SuperblockSize-sb.bump) / sb.blockSz
		private[sb.class] += uint64(sb.private.Len()) + bumpLeft
		public[sb.class] += uint64(sb.public.Len())
		st.SBUsedBlocks += uint64(sb.used)
		st.SBCapacity += uint64(sb.capacity)
	}
	for ci := 0; ci < t.classes.Count(); ci++ {
		sz := t.classes.Size(ci)
		st.Classes = append(st.Classes, alloc.HeapClass{Size: sz, Free: public[ci], Cached: private[ci]})
		st.CentralBytes += public[ci] * sz
		st.CacheBytes += private[ci] * sz
	}
	return st
}

// Stats implements alloc.Allocator.
func (t *TBB) Stats() alloc.Stats {
	var out alloc.Stats
	for i := range t.stats {
		out.Add(t.stats[i].Stats)
	}
	return out
}

// Describe implements alloc.Allocator.
func (t *TBB) Describe() alloc.Description {
	return alloc.Description{
		Name:        "TBBMalloc",
		Metadata:    "Per size class",
		MinSize:     8,
		FastPath:    "< 8KB",
		Granularity: "16KB per size class",
		Sync:        "The public free lists of a private heap are each protected by a distinct spinlock. Each free list in the global heap is also protected by a separate spinlock. Accessing the private free lists is synchronization-free.",
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
