package tbb

import (
	"sort"

	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/vtime"
)

// Crash recovery. Like Hoard, TBB keeps no in-band block headers —
// superblock identity is 16 KiB address alignment backed by journaled
// "superblock"/"sb-class" records — so only free-list link words can
// tear. The volatile split between a superblock's private and public
// lists is gone with the crash; recovery merges both into one canonical
// chain per superblock (the next owner drains it like a public list).

// RecoverHeap implements alloc.Recoverer.
func (t *TBB) RecoverHeap(th *vtime.Thread, st *alloc.RecoverState) alloc.RecoverReport {
	var rep alloc.RecoverReport
	groups := map[mem.Addr][]mem.Addr{}
	for _, b := range st.Freed {
		sb := b.Base &^ sbMask
		groups[sb] = append(groups[sb], b.Base)
	}
	bases := make([]mem.Addr, 0, len(groups))
	for sb := range groups {
		bases = append(bases, sb)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	inSet := st.FreedSet()
	for _, sb := range bases {
		blocks := groups[sb]
		head, torn := alloc.RebuildChain(th, blocks, inSet)
		rep.Chains++
		rep.FreeBlocks += len(blocks)
		rep.MetaWords += uint64(len(blocks))
		rep.TornMeta += torn
		rep.Heads = append(rep.Heads, head)
	}
	return rep
}
