package tbb

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/alloc/alloctest"
	"repro/internal/mem"
	"repro/internal/vtime"
)

func solo(s *mem.Space) *vtime.Thread { return vtime.Solo(s, 0, nil) }

func TestConformance(t *testing.T) {
	alloctest.Run(t, func(s *mem.Space, n int) alloc.Allocator { return New(s, n) })
}

// 16-byte blocks are 16 apart (Fig. 5b stripe sharing).
func TestSixteenByteBlocksAre16Apart(t *testing.T) {
	s := mem.NewSpace()
	a := New(s, 1)
	th := solo(s)
	prev := a.Malloc(th, 16)
	for i := 0; i < 100; i++ {
		next := a.Malloc(th, 16)
		if next-prev != 16 {
			t.Fatalf("allocation %d: spacing %d, want 16", i, next-prev)
		}
		prev = next
	}
}

// TBB has an exact 48-byte class (paper §5.3: only Glibc and Hoard lack
// one).
func TestExact48ByteClass(t *testing.T) {
	s := mem.NewSpace()
	a := New(s, 1)
	th := solo(s)
	if got := a.BlockSize(th, a.Malloc(th, 48)); got != 48 {
		t.Errorf("BlockSize(Malloc(48)) = %d, want 48", got)
	}
}

// The minimum class is 8 bytes.
func TestMinClassIs8(t *testing.T) {
	s := mem.NewSpace()
	a := New(s, 1)
	th := solo(s)
	if got := a.BlockSize(th, a.Malloc(th, 1)); got != 8 {
		t.Errorf("BlockSize(Malloc(1)) = %d, want 8", got)
	}
}

// Superblocks are 16 KiB-aligned and carved from 1 MiB chunks: 64
// different size classes fit in one OS map.
func TestSuperblocksShareOneChunk(t *testing.T) {
	s := mem.NewSpace()
	a := New(s, 1)
	th := solo(s)
	before := s.Stats().MapCalls
	for _, sz := range []uint64{8, 16, 48, 128, 256, 1024} {
		addr := a.Malloc(th, sz)
		if sb := a.superblockOf(addr); sb == nil || uint64(sb.base)%SuperblockAlign != 0 {
			t.Errorf("block %#x not in a 16KB-aligned superblock", uint64(addr))
		}
	}
	if got := s.Stats().MapCalls - before; got != 1 {
		t.Errorf("6 classes used %d OS maps, want 1 (shared 1MB chunk)", got)
	}
}

// Owner-thread malloc/free never synchronizes (private free list).
func TestPrivateFastPathIsLockFree(t *testing.T) {
	s := mem.NewSpace()
	a := New(s, 1)
	th := solo(s)
	x := a.Malloc(th, 64)
	a.Free(th, x)
	before := a.Stats().LockAcquires
	for i := 0; i < 100; i++ {
		a.Free(th, a.Malloc(th, 64))
	}
	if got := a.Stats().LockAcquires; got != before {
		t.Errorf("private fast path took %d lock acquisitions, want 0", got-before)
	}
}

// A remote free lands on the public list and the owner recovers the
// block by draining it.
func TestPublicFreeListDrain(t *testing.T) {
	s := mem.NewSpace()
	a := New(s, 2)
	e := vtime.NewEngine(s, 2, vtime.Config{})
	// Thread 0 exhausts one superblock's worth of 1KB blocks so its next
	// malloc cannot come from the bump pointer.
	n := (SuperblockSize - headerReserve) / 1024
	addrs := make([]mem.Addr, n)
	e.Run(func(th *vtime.Thread) {
		if th.ID() != 0 {
			return
		}
		for i := range addrs {
			addrs[i] = a.Malloc(th, 1000)
		}
	})
	// Thread 1 frees them all remotely.
	e.Run(func(th *vtime.Thread) {
		if th.ID() != 1 {
			return
		}
		for _, x := range addrs {
			a.Free(th, x)
		}
	})
	if st := a.Stats(); st.RemoteFrees != uint64(n) {
		t.Fatalf("remote frees = %d, want %d", st.RemoteFrees, n)
	}
	maps := s.Stats().MapCalls
	// Thread 0's next allocations must drain the public list rather
	// than mapping new memory.
	e.Run(func(th *vtime.Thread) {
		if th.ID() != 0 {
			return
		}
		for i := 0; i < n; i++ {
			a.Malloc(th, 1000)
		}
	})
	if got := s.Stats().MapCalls; got != maps {
		t.Errorf("owner did not reuse publicly freed blocks: %d new maps", got-maps)
	}
}

// Above LargeMax every request is a direct OS map ("slightly less than
// 8KB" threshold, the Fig. 3 cliff).
func TestLargeThreshold(t *testing.T) {
	s := mem.NewSpace()
	a := New(s, 1)
	th := solo(s)
	a.Malloc(th, 8000) // below: superblock
	before := s.Stats().MapCalls
	x := a.Malloc(th, 8192) // above: direct map
	if s.Stats().MapCalls != before+1 {
		t.Error("8192-byte request did not go straight to the OS")
	}
	a.Free(th, x)
	if s.Stats().UnmapCalls == 0 {
		t.Error("freeing a large block did not unmap it")
	}
}

func TestPropertyRandomTraces(t *testing.T) {
	alloctest.RunProperty(t, func(s *mem.Space, n int) alloc.Allocator { return New(s, n) })
}

func TestFootprintGauge(t *testing.T) {
	alloctest.RunFootprint(t, func(s *mem.Space, n int) alloc.Allocator { return New(s, n) })
}
