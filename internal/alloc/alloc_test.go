package alloc

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/vtime"
)

func TestFreeListLIFO(t *testing.T) {
	space := mem.NewSpace()
	base := space.MustMap(mem.PageSize, 0)
	th := vtime.Solo(space, 0, nil)
	var f FreeList
	if !f.Empty() || f.Len() != 0 || f.Pop(th) != 0 {
		t.Fatal("fresh list not empty")
	}
	f.Push(th, base)
	f.Push(th, base+64)
	f.Push(th, base+128)
	if f.Len() != 3 || f.Empty() {
		t.Fatalf("Len = %d", f.Len())
	}
	if f.Pop(th) != base+128 || f.Pop(th) != base+64 || f.Pop(th) != base {
		t.Fatal("not LIFO")
	}
	if f.Pop(th) != 0 {
		t.Fatal("pop past end")
	}
}

func TestFreeListTakeAllAndPushChain(t *testing.T) {
	space := mem.NewSpace()
	base := space.MustMap(mem.PageSize, 0)
	th := vtime.Solo(space, 0, nil)
	var f FreeList
	for i := 0; i < 4; i++ {
		f.Push(th, base+mem.Addr(i*32))
	}
	head, n := f.TakeAll()
	if n != 4 || head != base+96 || !f.Empty() {
		t.Fatalf("TakeAll = %#x, %d", uint64(head), n)
	}
	// Re-attach the chain: tail is the first pushed block.
	var g FreeList
	g.Push(th, base+1024)
	g.PushChain(th, head, base, 4)
	if g.Len() != 5 {
		t.Fatalf("after PushChain: Len = %d", g.Len())
	}
	want := []mem.Addr{base + 96, base + 64, base + 32, base, base + 1024}
	for i, w := range want {
		if got := g.Pop(th); got != w {
			t.Fatalf("pop %d = %#x, want %#x", i, uint64(got), uint64(w))
		}
	}
	g.PushChain(th, 0, 0, 0) // n == 0 must be a no-op
	if g.Len() != 0 {
		t.Error("empty PushChain changed the list")
	}
}

func TestSizeClasses(t *testing.T) {
	c := NewSizeClasses([]uint64{64, 16, 32}) // unsorted input
	if c.Count() != 3 || c.Max() != 64 {
		t.Fatalf("Count/Max = %d/%d", c.Count(), c.Max())
	}
	cases := map[uint64]int{1: 0, 16: 0, 17: 1, 32: 1, 33: 2, 64: 2}
	for size, want := range cases {
		if got := c.Index(size); got != want {
			t.Errorf("Index(%d) = %d, want %d", size, got, want)
		}
	}
	if c.Index(65) != -1 {
		t.Error("oversize request got a class")
	}
	if c.Size(1) != 32 {
		t.Errorf("Size(1) = %d", c.Size(1))
	}
}

func TestCountingMutex(t *testing.T) {
	space := mem.NewSpace()
	a := vtime.Solo(space, 0, nil)
	b := vtime.Solo(space, 1, nil)
	var m CountingMutex
	var st ThreadStats
	m.Lock(a, &st)
	if st.LockAcquires != 1 || st.LockContended != 0 {
		t.Fatalf("after first lock: %+v", st.Stats)
	}
	if m.TryLock(b, &st) {
		t.Fatal("TryLock on held mutex succeeded")
	}
	m.Unlock(a)
	if !m.TryLock(b, &st) {
		t.Fatal("TryLock after unlock failed")
	}
	if st.LockAcquires != 2 {
		t.Errorf("acquires = %d, want 2", st.LockAcquires)
	}
	m.Unlock(b)
	m.Lock(a, nil) // nil stats must be tolerated
	m.Unlock(a)
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Mallocs: 1, Frees: 2, LockAcquires: 3, LiveBytes: 10}
	b := Stats{Mallocs: 10, Frees: 20, LockAcquires: 30, LiveBytes: -4}
	a.Add(b)
	if a.Mallocs != 11 || a.Frees != 22 || a.LockAcquires != 33 || a.LiveBytes != 6 {
		t.Errorf("Add = %+v", a)
	}
}

func TestRegistry(t *testing.T) {
	if _, err := New("definitely-not-registered", mem.NewSpace(), 1); err == nil {
		t.Error("unknown allocator accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew on unknown name did not panic")
		}
	}()
	MustNew("definitely-not-registered", mem.NewSpace(), 1)
}
