package hoard

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/alloc/alloctest"
	"repro/internal/mem"
	"repro/internal/vtime"
)

func TestConformance(t *testing.T) {
	alloctest.Run(t, func(s *mem.Space, n int) alloc.Allocator { return New(s, n) })
}

func solo(s *mem.Space) *vtime.Thread { return vtime.Solo(s, 0, nil) }

// Consecutive 16-byte allocations occupy adjacent 16-byte slots (no
// boundary tag): two nodes per 32-byte ORT stripe, the paper's Fig. 5b
// scenario. The local cache may reorder a batch, so assert adjacency of
// the address set rather than a monotone sequence.
func TestSixteenByteBlocksAreDense(t *testing.T) {
	s := mem.NewSpace()
	h := New(s, 1)
	th := solo(s)
	const n = 64
	addrs := make(map[mem.Addr]bool, n)
	var lo, hi mem.Addr
	for i := 0; i < n; i++ {
		a := h.Malloc(th, 16)
		addrs[a] = true
		if lo == 0 || a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	if hi-lo != (n-1)*16 {
		t.Fatalf("64 allocations span %d bytes, want %d (16-byte spacing)", hi-lo, (n-1)*16)
	}
	for a := lo; a <= hi; a += 16 {
		if !addrs[a] {
			t.Fatalf("hole at %#x: blocks not densely packed", uint64(a))
		}
	}
}

// 48-byte requests land in the 64-byte class (power-of-two classes, no
// exact 48 — paper §5.3).
func TestFortyEightByteUses64ByteClass(t *testing.T) {
	s := mem.NewSpace()
	h := New(s, 1)
	th := solo(s)
	a := h.Malloc(th, 48)
	if got := h.BlockSize(th, a); got != 64 {
		t.Errorf("BlockSize(Malloc(48)) = %d, want 64", got)
	}
}

// Superblocks are 64 KiB-aligned.
func TestSuperblockAlignment(t *testing.T) {
	s := mem.NewSpace()
	h := New(s, 1)
	a := h.Malloc(solo(s), 16)
	if sb := h.superblockOf(a); sb == nil || uint64(sb.base)%SuperblockAlign != 0 {
		t.Errorf("block %#x not in a 64KB-aligned superblock", uint64(a))
	}
}

// Blocks above the local-cache bound take heap locks.
func TestLargeClassTakesLocks(t *testing.T) {
	s := mem.NewSpace()
	h := New(s, 1)
	th := solo(s)
	before := h.Stats().LockAcquires
	a := h.Malloc(th, 1024)
	h.Free(th, a)
	if h.Stats().LockAcquires == before {
		t.Error("1KB malloc/free performed no lock acquisitions")
	}
}

// Small malloc/free pairs after warmup run lock-free via the local
// cache (the paper's <=256-byte fast path).
func TestSmallFastPathIsLockFree(t *testing.T) {
	s := mem.NewSpace()
	h := New(s, 1)
	th := solo(s)
	a := h.Malloc(th, 64) // warm the cache
	h.Free(th, a)
	before := h.Stats().LockAcquires
	for i := 0; i < 10; i++ {
		h.Free(th, h.Malloc(th, 64))
	}
	if got := h.Stats().LockAcquires; got != before {
		t.Errorf("fast path took %d lock acquisitions, want 0", got-before)
	}
}

// A superblock whose blocks are all freed migrates to the global heap
// and is recycled for a different size class.
func TestEmptySuperblockRecycledAcrossClasses(t *testing.T) {
	s := mem.NewSpace()
	h := New(s, 1)
	th := solo(s)
	n := (SuperblockSize - headerReserve) / 1024
	addrs := make([]mem.Addr, n)
	for i := range addrs {
		addrs[i] = h.Malloc(th, 1024)
	}
	mapsBefore := s.Stats().MapCalls
	for _, a := range addrs {
		h.Free(th, a)
	}
	// Allocating a full superblock of another large class must reuse
	// the retired superblock instead of mapping a new one.
	h.Malloc(th, 2048)
	if got := s.Stats().MapCalls; got != mapsBefore {
		t.Errorf("recycling failed: %d new OS maps", got-mapsBefore)
	}
}

// A free from a non-owning thread routes to the owner's heap and is
// counted as remote.
func TestStatsCountRemoteFrees(t *testing.T) {
	s := mem.NewSpace()
	h := New(s, 2)
	e := vtime.NewEngine(s, 2, vtime.Config{})
	var addr mem.Addr
	e.Run(func(th *vtime.Thread) {
		if th.ID() == 0 {
			addr = h.Malloc(th, 1024) // big class: bypasses local cache
		}
	})
	e.Run(func(th *vtime.Thread) {
		if th.ID() == 1 {
			h.Free(th, addr)
		}
	})
	if st := h.Stats(); st.RemoteFrees == 0 {
		t.Errorf("remote free not counted: %+v", st)
	}
}

func TestPropertyRandomTraces(t *testing.T) {
	alloctest.RunProperty(t, func(s *mem.Space, n int) alloc.Allocator { return New(s, n) })
}

func TestFootprintGauge(t *testing.T) {
	alloctest.RunFootprint(t, func(s *mem.Space, n int) alloc.Allocator { return New(s, n) })
}
