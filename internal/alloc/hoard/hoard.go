// Package hoard implements the Hoard allocator model (Berger et al.,
// ASPLOS 2000, as of the 3.x series): per-thread heaps assigned by a
// hash of the thread id plus one global heap, 64 KiB superblocks that
// each serve a single power-of-two size class, blocks freed back to the
// superblock they were carved from (false-sharing avoidance), empty
// superblocks returned to the global heap (bounded fragmentation), and
// thread-private local caches for small blocks (<= 256 bytes) that make
// the common path synchronization-free.
//
// Behaviour the study depends on:
//
//   - blocks carry no per-block tag, so consecutive 16-byte allocations
//     are 16 bytes apart (two to a 32-byte ORT stripe — the Fig. 5b
//     false-abort scenario);
//   - there is no exact 48-byte class (powers of two only), so the
//     red-black tree's 48-byte nodes are served from the 64-byte class;
//   - superblocks are 64 KiB-aligned, so unlike Glibc's 64 MiB arenas
//     they do not alias distant blocks onto one ORT entry;
//   - allocation and deallocation beyond the local cache take the heap
//     lock and then the superblock lock, Hoard's documented two-level
//     locking, which is where its contention on Intruder comes from.
package hoard

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/vtime"
)

// Model constants; see the package comment.
const (
	// SuperblockSize and SuperblockAlign model Hoard's 64 KiB
	// superblocks.
	SuperblockSize  = 64 << 10
	SuperblockAlign = 64 << 10
	sbMask          = mem.Addr(SuperblockAlign - 1)

	// headerReserve keeps the superblock's (conceptual) in-band header
	// clear at the start of the region, as in the C implementation.
	headerReserve = 64

	// MinBlock is the smallest class; MaxBlock is the largest block
	// served from a superblock (half a superblock, as in Hoard).
	MinBlock = 16
	MaxBlock = SuperblockSize / 2

	// LocalCacheMax is the largest block size handled by the
	// synchronization-free per-thread cache.
	LocalCacheMax = 256
	// cacheRefill is how many blocks one slow-path trip moves into the
	// local cache; cacheCap bounds the cache before excess blocks are
	// flushed back to their superblocks.
	cacheRefill = 8
	cacheCap    = 24
)

// classes returns Hoard's power-of-two size classes.
func classes() []uint64 {
	var out []uint64
	for sz := uint64(MinBlock); sz <= MaxBlock; sz *= 2 {
		out = append(out, sz)
	}
	return out
}

type superblock struct {
	lock     alloc.CountingMutex
	base     mem.Addr
	class    int // index into size classes; -1 when empty & unassigned
	blockSz  uint64
	bump     mem.Addr // next never-allocated block
	free     alloc.FreeList
	used     int
	capacity int
	owner    *heap
}

func (sb *superblock) empty() bool { return sb.used == 0 }

type heap struct {
	lock   alloc.CountingMutex
	global bool
	// bins[class] lists superblocks of that class with free space;
	// spare holds fully empty, unassigned superblocks (global heap).
	bins  [][]*superblock
	spare []*superblock
	// Emptiness-invariant accounting (Berger et al.): blocks in use and
	// block capacity across this heap's superblocks.
	used     int
	capacity int
}

type localCache struct {
	lists []alloc.FreeList
}

// Hoard is the Hoard allocator model.
type Hoard struct {
	space   *mem.Space
	classes *alloc.SizeClasses
	heaps   []*heap
	global  *heap
	caches  []localCache
	stats   []alloc.ThreadStats
	prof    *prof.Profiler

	sbMap map[mem.Addr]*superblock // superblock base -> superblock
	big   map[mem.Addr]uint64      // direct maps: user addr -> region size

	journal alloc.MetaJournal

	migrations uint64 // emptiness-threshold superblock returns to the global heap
}

// New constructs a Hoard allocator for up to threads logical threads.
func New(space *mem.Space, threads int) *Hoard {
	sc := alloc.NewSizeClasses(classes())
	h := &Hoard{
		space:   space,
		classes: sc,
		heaps:   make([]*heap, threads),
		caches:  make([]localCache, threads),
		stats:   make([]alloc.ThreadStats, threads),
		sbMap:   make(map[mem.Addr]*superblock),
		big:     make(map[mem.Addr]uint64),
	}
	h.global = &heap{global: true, bins: make([][]*superblock, sc.Count())}
	for i := range h.heaps {
		h.heaps[i] = &heap{bins: make([][]*superblock, sc.Count())}
	}
	for i := range h.caches {
		h.caches[i].lists = make([]alloc.FreeList, sc.Count())
	}
	return h
}

func init() {
	alloc.Register("hoard", func(space *mem.Space, threads int) alloc.Allocator {
		return New(space, threads)
	})
}

// Name implements alloc.Allocator.
func (h *Hoard) Name() string { return "hoard" }

// SetObserver implements alloc.Observable.
func (h *Hoard) SetObserver(r *obs.Recorder) {
	for i := range h.stats {
		h.stats[i].Rec = r
	}
}

// SetProfiler implements alloc.Profiled.
func (h *Hoard) SetProfiler(p *prof.Profiler) { h.prof = p }

// SetJournal implements alloc.Journaled.
func (h *Hoard) SetJournal(j alloc.MetaJournal) { h.journal = j }

// SetInjector implements alloc.Injectable.
func (h *Hoard) SetInjector(inj alloc.Injector) {
	for i := range h.stats {
		h.stats[i].Inj = inj
	}
}

// heapFor hashes the thread id to its heap (identity hash over a dense
// tid space, as effective as Hoard's modulo hash).
func (h *Hoard) heapFor(tid int) *heap { return h.heaps[tid%len(h.heaps)] }

// Malloc implements alloc.Allocator.
func (h *Hoard) Malloc(th *vtime.Thread, size uint64) mem.Addr {
	st := &h.stats[th.ID()]
	var a mem.Addr
	if st.Rec == nil {
		a = h.malloc(th, st, size)
	} else {
		start := th.Clock()
		a = h.malloc(th, st, size)
		st.Rec.Alloc("hoard", th.ID(), start, th.Clock(), size, uint64(a))
	}
	if h.space.Observed() && a != 0 {
		h.space.NoteAlloc("hoard", a, size, h.BlockSize(th, a), th.ID(), th.Clock())
	}
	return a
}

func (h *Hoard) malloc(th *vtime.Thread, st *alloc.ThreadStats, size uint64) mem.Addr {
	if p := h.prof; p != nil {
		p.Begin(th, "hoard/malloc")
		defer p.End(th)
	}
	st.Mallocs++
	st.BytesRequested += size
	th.Tick(th.Cost().AllocOp)
	if st.PreMalloc(th, size) {
		return 0
	}
	if size > MaxBlock {
		return h.mapBig(th, st, size)
	}
	ci := h.classes.Index(max64(size, MinBlock))
	blockSz := h.classes.Size(ci)

	var a mem.Addr
	if blockSz <= LocalCacheMax {
		c := &h.caches[th.ID()]
		if a = c.lists[ci].Pop(th); a == 0 {
			st.SlowRefills++
			h.refillCache(th, st, ci)
			a = c.lists[ci].Pop(th)
		}
	} else {
		st.SlowRefills++
		a = h.slowMalloc(th, st, ci)
	}
	if a == 0 {
		st.MallocFailed(th, size)
		return 0
	}
	st.BytesAllocated += blockSz
	st.LiveBytes += int64(blockSz)
	return a
}

// refillCache moves up to cacheRefill blocks of class ci from the
// thread's heap into its local cache under one heap-lock acquisition.
func (h *Hoard) refillCache(th *vtime.Thread, st *alloc.ThreadStats, ci int) {
	if p := h.prof; p != nil {
		p.Begin(th, "hoard/superblock")
		defer p.End(th)
	}
	hp := h.heapFor(th.ID())
	cache := &h.caches[th.ID()].lists[ci]
	hp.lock.Lock(th, st)
	for got := 0; got < cacheRefill; {
		sb := h.usableSuperblock(th, hp, st, ci)
		if sb == nil {
			break // simulated OS is out of memory; keep what we got
		}
		sb.lock.Lock(th, st)
		for got < cacheRefill {
			a := h.takeBlock(th, sb)
			if a == 0 {
				break
			}
			hp.used++
			cache.Push(th, a)
			got++
		}
		sb.lock.Unlock(th)
	}
	hp.lock.Unlock(th)
}

func (h *Hoard) slowMalloc(th *vtime.Thread, st *alloc.ThreadStats, ci int) mem.Addr {
	if p := h.prof; p != nil {
		p.Begin(th, "hoard/superblock")
		defer p.End(th)
	}
	hp := h.heapFor(th.ID())
	hp.lock.Lock(th, st)
	sb := h.usableSuperblock(th, hp, st, ci)
	if sb == nil {
		hp.lock.Unlock(th)
		return 0
	}
	sb.lock.Lock(th, st)
	a := h.takeBlock(th, sb)
	sb.lock.Unlock(th)
	if a != 0 {
		hp.used++
	}
	hp.lock.Unlock(th)
	return a
}

// usableSuperblock returns a superblock of class ci with free space on
// heap hp (whose lock the caller holds), pulling one from the global
// heap or the OS if needed.
func (h *Hoard) usableSuperblock(th *vtime.Thread, hp *heap, st *alloc.ThreadStats, ci int) *superblock {
	bin := hp.bins[ci]
	for i := len(bin) - 1; i >= 0; i-- {
		sb := bin[i]
		if sb.used < sb.capacity {
			return sb
		}
	}
	sb := h.fetchFromGlobal(th, hp, st, ci)
	if sb == nil {
		sb = h.newSuperblock(th, hp, st, ci)
	}
	if sb == nil {
		return nil
	}
	hp.bins[ci] = append(hp.bins[ci], sb)
	hp.used += sb.used
	hp.capacity += sb.capacity
	return sb
}

// fetchFromGlobal transfers a superblock of class ci (or a recycled
// empty one) from the global heap to hp. Ownership changes while the
// global lock is held: a concurrent free routed to the global heap must
// either see the superblock still owned by it (and find it in its bins)
// or already owned by hp — never in transit.
func (h *Hoard) fetchFromGlobal(th *vtime.Thread, hp *heap, st *alloc.ThreadStats, ci int) *superblock {
	g := h.global
	g.lock.Lock(th, st)
	defer g.lock.Unlock(th)
	if bin := g.bins[ci]; len(bin) > 0 {
		sb := bin[len(bin)-1]
		g.bins[ci] = bin[:len(bin)-1]
		g.used -= sb.used
		g.capacity -= sb.capacity
		sb.owner = hp
		st.Rec.Transfer("hoard:sb-from-global", th.ID(), th.Clock(), sb.blockSz)
		return sb
	}
	if len(g.spare) > 0 {
		sb := g.spare[len(g.spare)-1]
		g.spare = g.spare[:len(g.spare)-1]
		h.assignClass(sb, ci)
		if h.journal != nil {
			h.journal.JournalMeta(th, "sb-class", sb.base, sb.blockSz, uint64(ci))
		}
		sb.owner = hp
		st.Rec.Transfer("hoard:sb-from-global", th.ID(), th.Clock(), sb.blockSz)
		return sb
	}
	return nil
}

// newSuperblock maps a fresh superblock, or returns nil when the
// simulated OS is out of memory.
func (h *Hoard) newSuperblock(th *vtime.Thread, hp *heap, st *alloc.ThreadStats, ci int) *superblock {
	base, err := h.space.Map(SuperblockSize, SuperblockAlign)
	if err != nil {
		return nil
	}
	st.OSMaps++
	th.Tick(th.Cost().OSMap)
	sb := &superblock{base: base, owner: hp}
	h.assignClass(sb, ci)
	h.sbMap[base] = sb
	if h.journal != nil {
		h.journal.JournalMeta(th, "superblock", base, sb.blockSz, uint64(ci))
	}
	return sb
}

func (h *Hoard) assignClass(sb *superblock, ci int) {
	sb.class = ci
	sb.blockSz = h.classes.Size(ci)
	sb.bump = sb.base + headerReserve
	sb.free = alloc.FreeList{}
	sb.used = 0
	sb.capacity = int((SuperblockSize - headerReserve) / sb.blockSz)
}

// takeBlock carves or reuses one block; caller holds sb.lock.
func (h *Hoard) takeBlock(th *vtime.Thread, sb *superblock) mem.Addr {
	if a := sb.free.Pop(th); a != 0 {
		sb.used++
		return a
	}
	if sb.bump+mem.Addr(sb.blockSz) <= sb.base+SuperblockSize {
		a := sb.bump
		sb.bump += mem.Addr(sb.blockSz)
		sb.used++
		return a
	}
	return 0
}

// Free implements alloc.Allocator.
func (h *Hoard) Free(th *vtime.Thread, addr mem.Addr) {
	if addr == 0 {
		return
	}
	if h.space.Observed() {
		h.space.NoteFree(addr, th.ID(), th.Clock())
	}
	st := &h.stats[th.ID()]
	if st.Rec == nil {
		h.free(th, st, addr)
		return
	}
	start := th.Clock()
	h.free(th, st, addr)
	st.Rec.Free("hoard", th.ID(), start, th.Clock(), uint64(addr))
}

func (h *Hoard) free(th *vtime.Thread, st *alloc.ThreadStats, addr mem.Addr) {
	if p := h.prof; p != nil {
		p.Begin(th, "hoard/free")
		defer p.End(th)
	}
	th.Tick(th.Cost().AllocOp)

	if sz, ok := h.big[addr]; ok {
		st.Frees++
		st.LiveBytes -= int64(sz)
		h.freeBig(th, addr, sz)
		return
	}
	// Size-class lookup doubles as pointer validation: the address must
	// resolve to a superblock we mapped, sit on a block boundary inside
	// its carved range, and the superblock must still be class-assigned
	// (a spare means every block was already freed).
	sb := h.superblockOf(addr)
	if sb == nil {
		st.FreeFaulted(th, alloc.BadPointer, addr)
		return
	}
	if sb.class < 0 {
		st.FreeFaulted(th, alloc.DoubleFree, addr)
		return
	}
	if addr < sb.base+headerReserve || addr >= sb.bump ||
		uint64(addr-(sb.base+headerReserve))%sb.blockSz != 0 {
		st.FreeFaulted(th, alloc.BadPointer, addr)
		return
	}
	st.Frees++
	st.LiveBytes -= int64(sb.blockSz)
	if sb.blockSz <= LocalCacheMax {
		cache := &h.caches[th.ID()].lists[sb.class]
		cache.Push(th, addr)
		if cache.Len() > cacheCap {
			h.flushCache(th, st, sb.class)
		}
		return
	}
	h.freeToSuperblock(th, st, sb, addr)
}

// flushCache returns half of an over-full local cache list to the
// superblocks the blocks were carved from.
func (h *Hoard) flushCache(th *vtime.Thread, st *alloc.ThreadStats, ci int) {
	if p := h.prof; p != nil {
		p.Begin(th, "hoard/superblock")
		defer p.End(th)
	}
	cache := &h.caches[th.ID()].lists[ci]
	for cache.Len() > cacheCap/2 {
		a := cache.Pop(th)
		sb := h.superblockOf(a)
		h.freeToSuperblock(th, st, sb, a)
	}
}

// freeToSuperblock returns a block to its superblock under the owner
// heap's lock and the superblock lock; a superblock that becomes empty
// migrates to the global heap (the emptiness invariant, with the
// threshold at fully-empty).
func (h *Hoard) freeToSuperblock(th *vtime.Thread, st *alloc.ThreadStats, sb *superblock, a mem.Addr) {
	for {
		hp := sb.owner
		hp.lock.Lock(th, st)
		if sb.owner != hp {
			// The superblock migrated while we were acquiring; retry
			// against its new owner (as Hoard's free does).
			hp.lock.Unlock(th)
			continue
		}
		if !hp.global && hp != h.heapFor(th.ID()) {
			st.RemoteFrees++
			st.Rec.Transfer("hoard:remote-free", th.ID(), th.Clock(), sb.blockSz)
		}
		sb.lock.Lock(th, st)
		if sb.used == 0 {
			// Every block is already free: this is the second free of a
			// block that went through the local cache both times.
			sb.lock.Unlock(th)
			hp.lock.Unlock(th)
			st.FreeFaulted(th, alloc.DoubleFree, a)
			return
		}
		sb.free.Push(th, a)
		sb.used--
		sb.lock.Unlock(th)
		hp.used--
		// A global-heap superblock that empties out becomes a
		// class-free spare, reusable by any size class.
		if hp.global && sb.used == 0 && sb.class >= 0 {
			h.detach(hp, sb)
			hp.capacity -= sb.capacity
			sb.class = -1
			hp.spare = append(hp.spare, sb)
			hp.lock.Unlock(th)
			return
		}
		// Emptiness invariant (f = 1/4): when more than a quarter of the
		// heap's capacity is free and this superblock is at most half
		// full, return it to the global heap — fully empty ones become
		// class-free spares, partial ones stay in their class bin.
		if !hp.global && hp.used < hp.capacity-hp.capacity/4 && sb.used*2 <= sb.capacity {
			h.detach(hp, sb)
			hp.used -= sb.used
			hp.capacity -= sb.capacity
			h.migrations++
			st.Rec.Transfer("hoard:sb-to-global", th.ID(), th.Clock(), sb.blockSz)
			g := h.global
			g.lock.Lock(th, st)
			sb.owner = g
			if sb.used == 0 {
				sb.class = -1
				g.spare = append(g.spare, sb)
			} else {
				g.bins[sb.class] = append(g.bins[sb.class], sb)
				g.used += sb.used
				g.capacity += sb.capacity
			}
			g.lock.Unlock(th)
		}
		hp.lock.Unlock(th)
		return
	}
}

// detach removes sb from its owner heap's bin; caller holds the heap
// lock.
func (h *Hoard) detach(hp *heap, sb *superblock) {
	bin := hp.bins[sb.class]
	for i, s := range bin {
		if s == sb {
			hp.bins[sb.class] = append(bin[:i], bin[i+1:]...)
			return
		}
	}
}

func (h *Hoard) superblockOf(addr mem.Addr) *superblock {
	return h.sbMap[addr&^sbMask]
}

func (h *Hoard) mapBig(th *vtime.Thread, st *alloc.ThreadStats, size uint64) mem.Addr {
	region := mem.AlignUp(size, mem.PageSize)
	base, err := h.space.Map(region, mem.PageSize)
	if err != nil {
		st.MallocFailed(th, size)
		return 0
	}
	st.OSMaps++
	th.Tick(th.Cost().OSMap)
	st.BytesAllocated += region
	st.LiveBytes += int64(region)
	h.big[base] = region
	return base
}

func (h *Hoard) freeBig(th *vtime.Thread, addr mem.Addr, _ uint64) {
	delete(h.big, addr)
	th.Tick(th.Cost().OSMap)
	if err := h.space.Unmap(addr); err != nil {
		panic(err)
	}
}

// BlockSize implements alloc.Allocator.
func (h *Hoard) BlockSize(_ *vtime.Thread, addr mem.Addr) uint64 {
	if sz, ok := h.big[addr]; ok {
		return sz
	}
	if sb := h.superblockOf(addr); sb != nil {
		return sb.blockSz
	}
	panic(fmt.Sprintf("hoard: BlockSize of unknown address %#x", uint64(addr)))
}

// InspectHeap implements alloc.HeapInspector. Per class, Free counts
// idle blocks inside class-assigned superblocks (capacity − used,
// covering both free-list entries and never-carved bump space) and
// Cached the blocks parked in per-thread local caches; superblock
// occupancy and the migration counter feed the emptiness-invariant
// telemetry. Pure Go-side metadata: map iteration only feeds
// order-independent sums, no simulated memory access, no ticks.
func (h *Hoard) InspectHeap() alloc.HeapState {
	st := alloc.HeapState{
		Reserved:        uint64(len(h.sbMap)) * SuperblockSize,
		Superblocks:     uint64(len(h.sbMap)),
		Migrations:      h.migrations,
		SuperblockBytes: SuperblockSize,
		MinBlock:        MinBlock,
		MaxBlock:        MaxBlock,
	}
	for _, region := range h.big {
		st.Reserved += region
	}
	free := make([]uint64, h.classes.Count())
	for _, sb := range h.sbMap {
		if sb.class < 0 || sb.used == 0 {
			st.EmptySuperblocks++
		}
		if sb.class < 0 {
			continue
		}
		free[sb.class] += uint64(sb.capacity - sb.used)
		st.SBUsedBlocks += uint64(sb.used)
		st.SBCapacity += uint64(sb.capacity)
	}
	for ci := 0; ci < h.classes.Count(); ci++ {
		var cached uint64
		for t := range h.caches {
			cached += uint64(h.caches[t].lists[ci].Len())
		}
		sz := h.classes.Size(ci)
		st.Classes = append(st.Classes, alloc.HeapClass{Size: sz, Free: free[ci], Cached: cached})
		st.CentralBytes += free[ci] * sz
		st.CacheBytes += cached * sz
	}
	return st
}

// Stats implements alloc.Allocator.
func (h *Hoard) Stats() alloc.Stats {
	var out alloc.Stats
	for i := range h.stats {
		out.Add(h.stats[i].Stats)
	}
	return out
}

// Describe implements alloc.Allocator.
func (h *Hoard) Describe() alloc.Description {
	return alloc.Description{
		Name:        "Hoard",
		Metadata:    "Per superblock",
		MinSize:     16,
		FastPath:    "<= 256 bytes",
		Granularity: "64KB per superblock",
		Sync:        "Each heap is protected by a lock as is the global heap. A cache is maintained for small block sizes and is accessed without synchronization.",
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
