package hoard

import (
	"sort"

	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/vtime"
)

// Crash recovery. Hoard keeps no in-band headers — blocks carry no
// boundary tags, and superblock identity is pure address arithmetic
// (64 KiB alignment) backed by journaled "superblock"/"sb-class"
// structural records — so the only durable metadata that can tear is
// the free-list link word at the head of each freed block. Recovery
// relinks every freed block into one canonical chain per superblock.

// RecoverHeap implements alloc.Recoverer. Freed blocks group by their
// superblock (the 64 KiB-aligned region containing them); direct-mapped
// big blocks never appear freed (their free unmaps the region).
func (h *Hoard) RecoverHeap(th *vtime.Thread, st *alloc.RecoverState) alloc.RecoverReport {
	var rep alloc.RecoverReport
	groups := map[mem.Addr][]mem.Addr{}
	for _, b := range st.Freed {
		sb := b.Base &^ sbMask
		groups[sb] = append(groups[sb], b.Base)
	}
	bases := make([]mem.Addr, 0, len(groups))
	for sb := range groups {
		bases = append(bases, sb)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	inSet := st.FreedSet()
	for _, sb := range bases {
		blocks := groups[sb]
		head, torn := alloc.RebuildChain(th, blocks, inSet)
		rep.Chains++
		rep.FreeBlocks += len(blocks)
		rep.MetaWords += uint64(len(blocks))
		rep.TornMeta += torn
		rep.Heads = append(rep.Heads, head)
	}
	return rep
}
