package glibc

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/alloc/alloctest"
	"repro/internal/mem"
	"repro/internal/vtime"
)

func TestConformance(t *testing.T) {
	alloctest.Run(t, func(s *mem.Space, n int) alloc.Allocator { return New(s, n) })
}

func solo(s *mem.Space) *vtime.Thread { return vtime.Solo(s, 0, nil) }

// Sequential 16-byte allocations must come back 32 bytes apart: the
// boundary tag plus the 32-byte minimum chunk (paper §5.1, Fig. 5a).
func TestSixteenByteBlocksAre32Apart(t *testing.T) {
	s := mem.NewSpace()
	g := New(s, 1)
	th := solo(s)
	prev := g.Malloc(th, 16)
	for i := 0; i < 100; i++ {
		next := g.Malloc(th, 16)
		if next-prev != 32 {
			t.Fatalf("allocation %d: spacing %d, want 32", i, next-prev)
		}
		prev = next
	}
}

// malloc(0) consumes a 32-byte chunk (16 usable): the paper's "even a
// malloc(0) returns a pointer to a 32-byte block".
func TestMallocZeroUses32ByteChunk(t *testing.T) {
	s := mem.NewSpace()
	g := New(s, 1)
	th := solo(s)
	a := g.Malloc(th, 0)
	b := g.Malloc(th, 0)
	if b-a != 32 {
		t.Errorf("malloc(0) spacing = %d, want 32", b-a)
	}
}

// A 48-byte request has no exact class: it consumes a 64-byte chunk.
func TestFortyEightByteUses64ByteChunk(t *testing.T) {
	s := mem.NewSpace()
	g := New(s, 1)
	th := solo(s)
	a := g.Malloc(th, 48)
	b := g.Malloc(th, 48)
	if b-a != 64 {
		t.Errorf("malloc(48) spacing = %d, want 64", b-a)
	}
	if g.BlockSize(th, a) != 48 {
		t.Errorf("BlockSize = %d, want 48", g.BlockSize(th, a))
	}
}

// Arenas are aligned on 64 MiB boundaries, the source of the paper's
// hashset ORT aliasing (§5.2): blocks at equal offsets in different
// arenas map to the same versioned lock.
func TestArenaAlignment(t *testing.T) {
	s := mem.NewSpace()
	g := New(s, 4)
	addr := g.Malloc(solo(s), 16)
	base := addr &^ mem.Addr(ArenaAlign-1)
	if _, ok := s.RegionOf(base); !ok {
		t.Errorf("arena base %#x (from block %#x) is not mapped", uint64(base), uint64(addr))
	}
}

// Under virtual-time contention the allocator creates additional arenas
// rather than blocking (arena_get trylock rotation), and threads spread
// across them.
func TestContentionCreatesArenas(t *testing.T) {
	s := mem.NewSpace()
	const threads = 8
	g := New(s, threads)
	e := vtime.NewEngine(s, threads, vtime.Config{})
	e.Run(func(th *vtime.Thread) {
		for i := 0; i < 3000; i++ {
			g.Free(th, g.Malloc(th, 16))
		}
	})
	if n := g.ArenaCount(); n < 2 {
		t.Errorf("after 8-thread contention: %d arena(s), want >= 2", n)
	}
	st := g.Stats()
	if st.LockAcquires == 0 {
		t.Error("no lock acquisitions recorded; every glibc op must lock an arena")
	}
	if st.LockContended == 0 {
		t.Error("no contention recorded under 8 hammering threads")
	}
}

// Freed chunks are recycled for the same chunk size.
func TestFreeListRecycling(t *testing.T) {
	s := mem.NewSpace()
	g := New(s, 1)
	th := solo(s)
	a := g.Malloc(th, 16)
	g.Free(th, a)
	b := g.Malloc(th, 16)
	if a != b {
		t.Errorf("freed chunk not recycled: got %#x, want %#x", uint64(b), uint64(a))
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	s := mem.NewSpace()
	g := New(s, 1)
	th := solo(s)
	a := g.Malloc(th, 16)
	g.Free(th, a)
	g.Free(th, a) // boundary tag says free: counted, not corrupting
	st := g.Stats()
	if st.DoubleFrees != 1 {
		t.Errorf("DoubleFrees = %d, want 1", st.DoubleFrees)
	}
	if st.Frees != 1 {
		t.Errorf("Frees = %d, want 1 (the invalid free must not count)", st.Frees)
	}
	// The block is reusable exactly once: the free list was not
	// corrupted by the double free.
	b := g.Malloc(th, 16)
	c := g.Malloc(th, 16)
	if b != a {
		t.Errorf("reuse after double free: got %#x, want %#x", uint64(b), uint64(a))
	}
	if c == a {
		t.Error("double free put the block on the free list twice")
	}
	g.Free(th, 0xdead0000) // no arena, no mmap record
	if st := g.Stats(); st.BadFrees != 1 {
		t.Errorf("BadFrees = %d, want 1", st.BadFrees)
	}
}

func TestLargeGoesToMmap(t *testing.T) {
	s := mem.NewSpace()
	g := New(s, 1)
	th := solo(s)
	before := s.Stats().MapCalls
	a := g.Malloc(th, 256<<10)
	if s.Stats().MapCalls != before+1 {
		t.Error("large request did not trigger a direct OS map")
	}
	g.Free(th, a)
	if s.Stats().UnmapCalls == 0 {
		t.Error("freeing a large block did not unmap it")
	}
}

func TestPropertyRandomTraces(t *testing.T) {
	alloctest.RunProperty(t, func(s *mem.Space, n int) alloc.Allocator { return New(s, n) })
}

func TestFootprintGauge(t *testing.T) {
	alloctest.RunFootprint(t, func(s *mem.Space, n int) alloc.Allocator { return New(s, n) })
}
