// Package glibc implements the GNU C library allocator model
// (dlmalloc/ptmalloc lineage): per-thread arenas protected by one lock
// each with trylock-and-rotate selection, per-block boundary tags, a
// 32-byte minimum chunk, fast bins for small chunks, and direct OS
// mapping for large requests.
//
// The properties the study depends on are reproduced exactly:
//
//   - every block carries a 16-byte boundary tag, so consecutive 16-byte
//     allocations are 32 bytes apart (halved cache density, but each node
//     lands in its own 32-byte ORT stripe under the STM's shift-5 map);
//   - arenas are aligned on 64 MiB boundaries, so blocks at equal arena
//     offsets in different threads' arenas alias to the same ORT entry;
//   - every malloc and free acquires an arena lock; if a thread finds
//     its arena locked it rotates through the arena ring with trylock
//     and creates a brand-new arena when all are busy.
//
// Simplifications (documented in DESIGN.md): chunks are served from
// exact-fit per-size bins plus a bump pointer over the arena; splitting
// and coalescing of the general bins are omitted. For the fixed-size-
// class workloads of the study this changes nothing: a freed chunk is
// only ever reused for the size class it was carved for, exactly as a
// fastbin would.
package glibc

import (
	"sort"

	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/vtime"
)

// Model constants; see the package comment.
const (
	// ArenaSize and ArenaAlign model the 64 MiB secondary-arena mapping
	// of ptmalloc on 64-bit Linux (HEAP_MAX_SIZE).
	ArenaSize  = 64 << 20
	ArenaAlign = 64 << 20
	arenaMask  = mem.Addr(ArenaAlign - 1)

	// HeaderSize is the boundary tag: prev-size and size words.
	HeaderSize = 16
	// MinChunk is the minimum chunk size on 64-bit systems; malloc(0)
	// still consumes one of these.
	MinChunk = 32
	// MmapThreshold is the request size above which the allocator maps
	// a region directly from the OS.
	MmapThreshold = 128 << 10

	sizeWordOff = 8     // offset of the size word within the chunk header
	inUseBit    = 1     // size-word flag: chunk is allocated
	mmappedBit  = 2     // size-word flag: chunk is directly mapped
	arenaFirst  = 64    // first chunk starts past a pseudo heap_info header
	chunkAlign  = 16    // chunks are 16-byte aligned
	maxBinChunk = 64720 // bins cover chunks up to this; larger reuse is skipped
)

type arena struct {
	lock  alloc.CountingMutex
	base  mem.Addr
	top   mem.Addr // bump pointer for fresh chunks
	end   mem.Addr
	bins  map[uint64]*alloc.FreeList // chunk size -> free chunks
	index int
}

// Glibc is the ptmalloc-style allocator.
type Glibc struct {
	space   *mem.Space
	threads int

	arenas   []*arena
	attached []*arena // per-thread last-used arena
	stats    []alloc.ThreadStats
	prof     *prof.Profiler
	journal  alloc.MetaJournal

	mmaps map[mem.Addr]uint64 // user addr -> region size (direct maps)
}

// New constructs a Glibc allocator over space for up to threads logical
// threads; the main arena is created eagerly, as libc does at startup.
func New(space *mem.Space, threads int) *Glibc {
	g := &Glibc{
		space:    space,
		threads:  threads,
		attached: make([]*arena, threads),
		stats:    make([]alloc.ThreadStats, threads),
		mmaps:    make(map[mem.Addr]uint64),
	}
	main := g.newArena(nil, nil)
	if main == nil {
		panic("glibc: cannot map the main arena")
	}
	for i := range g.attached {
		g.attached[i] = main
	}
	return g
}

func init() {
	alloc.Register("glibc", func(space *mem.Space, threads int) alloc.Allocator {
		return New(space, threads)
	})
}

// Name implements alloc.Allocator.
func (g *Glibc) Name() string { return "glibc" }

// SetObserver implements alloc.Observable.
func (g *Glibc) SetObserver(r *obs.Recorder) {
	for i := range g.stats {
		g.stats[i].Rec = r
	}
}

// SetInjector implements alloc.Injectable.
func (g *Glibc) SetInjector(inj alloc.Injector) {
	for i := range g.stats {
		g.stats[i].Inj = inj
	}
}

// SetProfiler implements alloc.Profiled.
func (g *Glibc) SetProfiler(p *prof.Profiler) { g.prof = p }

// SetJournal implements alloc.Journaled. The main arena already exists
// when a durable layer attaches, so journal it retroactively.
func (g *Glibc) SetJournal(j alloc.MetaJournal) {
	g.journal = j
	for _, a := range g.arenas {
		j.JournalMeta(nil, "arena", a.base, ArenaSize, uint64(a.index))
	}
}

// newArena maps a fresh arena, or returns nil when the simulated OS is
// out of memory. th is nil only at construction time.
func (g *Glibc) newArena(th *vtime.Thread, st *alloc.ThreadStats) *arena {
	base, err := g.space.Map(ArenaSize, ArenaAlign)
	if err != nil {
		return nil
	}
	if st != nil {
		st.OSMaps++
	}
	a := &arena{
		base:  base,
		top:   base + arenaFirst,
		end:   base + ArenaSize,
		bins:  make(map[uint64]*alloc.FreeList),
		index: len(g.arenas),
	}
	g.arenas = append(g.arenas, a)
	if g.journal != nil {
		g.journal.JournalMeta(th, "arena", a.base, ArenaSize, uint64(a.index))
	}
	return a
}

// chunkSize returns the total chunk size for a user request.
func chunkSize(req uint64) uint64 {
	sz := mem.AlignUp(req+HeaderSize, chunkAlign)
	if sz < MinChunk {
		sz = MinChunk
	}
	return sz
}

// lockArena returns a locked arena for the thread, rotating through the
// arena ring with trylock and creating a new arena if every arena is
// busy — ptmalloc's arena_get contention policy. Past the arena cap
// (8 x threads, as on 64-bit Linux) the thread blocks on the next arena
// instead of creating more.
func (g *Glibc) lockArena(th *vtime.Thread, st *alloc.ThreadStats) *arena {
	if p := g.prof; p != nil {
		p.Begin(th, "glibc/arena")
		defer p.End(th)
	}
	tid := th.ID()
	a := g.attached[tid]
	if a.lock.TryLock(th, st) {
		return a
	}
	st.LockContended++ // preferred arena was busy
	start := a.index
	for i := 1; i <= len(g.arenas); i++ {
		cand := g.arenas[(start+i)%len(g.arenas)]
		if cand.lock.TryLock(th, st) {
			g.attached[tid] = cand
			return cand
		}
	}
	fresh := (*arena)(nil)
	if len(g.arenas) < 8*g.threads {
		fresh = g.newArena(th, st)
	}
	if fresh == nil {
		// Arena cap hit, or the simulated OS refused the mapping: block
		// on the next arena rather than growing.
		next := g.arenas[(start+1)%len(g.arenas)]
		next.lock.Lock(th, st)
		g.attached[tid] = next
		return next
	}
	th.Tick(th.Cost().OSMap)
	st.Rec.Transfer("glibc:new-arena", th.ID(), th.Clock(), uint64(fresh.index))
	fresh.lock.Lock(th, st)
	g.attached[tid] = fresh
	return fresh
}

// Malloc implements alloc.Allocator.
func (g *Glibc) Malloc(th *vtime.Thread, size uint64) mem.Addr {
	if p := g.prof; p != nil {
		p.Begin(th, "glibc/malloc")
		defer p.End(th)
	}
	st := &g.stats[th.ID()]
	var a mem.Addr
	if st.Rec == nil {
		a = g.malloc(th, st, size)
	} else {
		start := th.Clock()
		a = g.malloc(th, st, size)
		st.Rec.Alloc("glibc", th.ID(), start, th.Clock(), size, uint64(a))
	}
	g.noteAlloc(th, a, size)
	return a
}

// noteAlloc registers a successful malloc with the space's observers
// (sanitizer shadow map, heap watcher). The usable size comes from a raw
// boundary-tag read: BlockSize would tick virtual time, and observer
// bookkeeping must not.
func (g *Glibc) noteAlloc(th *vtime.Thread, a mem.Addr, size uint64) {
	if !g.space.Observed() || a == 0 {
		return
	}
	word := g.space.Load(a - HeaderSize + sizeWordOff)
	usable := (word &^ uint64(inUseBit|mmappedBit)) - HeaderSize
	g.space.NoteAlloc("glibc", a, size, usable, th.ID(), th.Clock())
}

func (g *Glibc) malloc(th *vtime.Thread, st *alloc.ThreadStats, size uint64) mem.Addr {
	st.Mallocs++
	st.BytesRequested += size
	th.Tick(th.Cost().AllocOp)
	if st.PreMalloc(th, size) {
		return 0
	}

	if size+HeaderSize > MmapThreshold {
		return g.mmapChunk(th, st, size)
	}
	csz := chunkSize(size)

	a := g.lockArena(th, st)
	var c mem.Addr
	if fl := a.bins[csz]; fl != nil {
		c = fl.Pop(th)
	}
	if c == 0 {
		if a.top+mem.Addr(csz) > a.end {
			// Arena exhausted: fall over to a brand-new arena.
			a.lock.Unlock(th)
			a = g.newArena(th, st)
			if a == nil {
				st.MallocFailed(th, size)
				return 0
			}
			th.Tick(th.Cost().OSMap)
			st.Rec.Transfer("glibc:new-arena", th.ID(), th.Clock(), uint64(a.index))
			a.lock.Lock(th, st)
			g.attached[th.ID()] = a
		}
		c = a.top
		a.top += mem.Addr(csz)
	}
	th.Store(c+sizeWordOff, csz|inUseBit)
	a.lock.Unlock(th)
	st.BytesAllocated += csz - HeaderSize
	st.LiveBytes += int64(csz - HeaderSize)
	return c + HeaderSize
}

func (g *Glibc) mmapChunk(th *vtime.Thread, st *alloc.ThreadStats, size uint64) mem.Addr {
	region := mem.AlignUp(size+HeaderSize, mem.PageSize)
	base, err := g.space.Map(region, mem.PageSize)
	if err != nil {
		st.MallocFailed(th, size)
		return 0
	}
	st.OSMaps++
	th.Tick(th.Cost().OSMap)
	st.BytesAllocated += region - HeaderSize
	st.LiveBytes += int64(region - HeaderSize)
	th.Store(base+sizeWordOff, region|inUseBit|mmappedBit)
	user := base + HeaderSize
	g.mmaps[user] = region
	return user
}

// Free implements alloc.Allocator. The chunk returns to the arena it was
// carved from (identified by the 64 MiB alignment of arena bases).
func (g *Glibc) Free(th *vtime.Thread, addr mem.Addr) {
	if addr == 0 {
		return
	}
	if p := g.prof; p != nil {
		p.Begin(th, "glibc/free")
		defer p.End(th)
	}
	if g.space.Observed() {
		g.space.NoteFree(addr, th.ID(), th.Clock())
	}
	st := &g.stats[th.ID()]
	if st.Rec == nil {
		g.free(th, st, addr)
		return
	}
	start := th.Clock()
	g.free(th, st, addr)
	st.Rec.Free("glibc", th.ID(), start, th.Clock(), uint64(addr))
}

func (g *Glibc) free(th *vtime.Thread, st *alloc.ThreadStats, addr mem.Addr) {
	th.Tick(th.Cost().AllocOp)
	// Validate the pointer before loading its boundary tag or touching
	// any accounting: a wild pointer may not even be mapped.
	a := g.arenaOf(addr)
	_, mmapped := g.mmaps[addr]
	if a == nil && !mmapped {
		st.FreeFaulted(th, alloc.BadPointer, addr)
		return
	}
	c := addr - HeaderSize
	word := th.Load(c + sizeWordOff)
	if word&inUseBit == 0 {
		st.FreeFaulted(th, alloc.DoubleFree, addr)
		return
	}
	st.Frees++
	if word&mmappedBit != 0 {
		st.LiveBytes -= int64((word &^ uint64(inUseBit|mmappedBit)) - HeaderSize)
		delete(g.mmaps, addr)
		th.Tick(th.Cost().OSMap)
		if err := g.space.Unmap(c); err != nil {
			panic(err)
		}
		return
	}
	csz := word &^ uint64(inUseBit|mmappedBit)
	st.LiveBytes -= int64(csz - HeaderSize)
	if g.attached[th.ID()] != a {
		st.RemoteFrees++
		st.Rec.Transfer("glibc:remote-free", th.ID(), th.Clock(), uint64(a.index))
	}
	a.lock.Lock(th, st)
	th.Store(c+sizeWordOff, csz) // clear in-use
	if csz <= maxBinChunk {
		fl := a.bins[csz]
		if fl == nil {
			fl = &alloc.FreeList{}
			a.bins[csz] = fl
		}
		fl.Push(th, c)
	}
	a.lock.Unlock(th)
}

func (g *Glibc) arenaOf(addr mem.Addr) *arena {
	base := addr &^ arenaMask
	for _, a := range g.arenas {
		if a.base == base {
			return a
		}
	}
	return nil
}

// BlockSize implements alloc.Allocator.
func (g *Glibc) BlockSize(th *vtime.Thread, addr mem.Addr) uint64 {
	word := th.Load(addr - HeaderSize + sizeWordOff)
	return (word &^ uint64(inUseBit|mmappedBit)) - HeaderSize
}

// ArenaCount returns how many arenas exist (contention creates them).
func (g *Glibc) ArenaCount() int { return len(g.arenas) }

// InspectHeap implements alloc.HeapInspector. Bins are dynamic (keyed by
// chunk size), so the class rows are the union of all arenas' bin sizes
// in sorted order; Reserved counts the full 64 MiB of every arena plus
// direct maps — the address-space footprint the paper's blowup story is
// about. Pure Go-side metadata: no simulated memory access, no ticks.
func (g *Glibc) InspectHeap() alloc.HeapState {
	free := make(map[uint64]uint64) // usable size -> idle chunks
	for _, a := range g.arenas {
		for csz, fl := range a.bins {
			free[csz-HeaderSize] += uint64(fl.Len())
		}
	}
	sizes := make([]uint64, 0, len(free))
	for sz := range free {
		sizes = append(sizes, sz)
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })

	st := alloc.HeapState{
		Reserved:        uint64(len(g.arenas)) * ArenaSize,
		Arenas:          uint64(len(g.arenas)),
		SuperblockBytes: ArenaSize,
		MinBlock:        MinChunk - HeaderSize,
		MaxBlock:        MmapThreshold - HeaderSize,
	}
	for _, region := range g.mmaps {
		st.Reserved += region
	}
	for _, sz := range sizes {
		st.Classes = append(st.Classes, alloc.HeapClass{Size: sz, Free: free[sz]})
		st.CentralBytes += free[sz] * sz
	}
	return st
}

// Stats implements alloc.Allocator.
func (g *Glibc) Stats() alloc.Stats {
	var out alloc.Stats
	for i := range g.stats {
		out.Add(g.stats[i].Stats)
	}
	return out
}

// Describe implements alloc.Allocator.
func (g *Glibc) Describe() alloc.Description {
	return alloc.Description{
		Name:        "Glibc",
		Metadata:    "Per block",
		MinSize:     32,
		FastPath:    "<= 128 bytes",
		Granularity: "132KB-64MB per arena",
		Sync:        "A lock per arena. If a thread fails to grab the lock for any of the active arenas, a new one is created.",
	}
}
