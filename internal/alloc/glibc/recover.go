package glibc

import (
	"sort"

	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/vtime"
)

// Crash recovery. Glibc is the only model with in-band metadata — a
// 16-byte boundary tag ahead of every block whose size word carries the
// in-use and mmapped bits, and a free-list link in the first chunk word
// of every binned chunk. None of those words are ever flushed on the
// hot path, so they tear worst of the four models (the durable twin of
// the paper's per-block-metadata story): recovery rewrites every size
// word from journaled truth and relinks every freed chunk into a
// canonical exact-fit bin.

// RecoverHeap implements alloc.Recoverer. It consults only the passed
// state plus layout constants: journaled "arena" records locate the
// arenas (a live block outside every arena is a direct mapping), the
// block journal supplies base/usable for every chunk.
func (g *Glibc) RecoverHeap(th *vtime.Thread, st *alloc.RecoverState) alloc.RecoverReport {
	rep := alloc.RecoverReport{NodeOffset: HeaderSize}
	arenas := make([]mem.Addr, 0, 8)
	for _, m := range st.Meta {
		if m.Kind == "arena" {
			arenas = append(arenas, m.Base)
		}
	}
	inArena := func(a mem.Addr) bool {
		base := a &^ arenaMask
		for _, ab := range arenas {
			if ab == base {
				return true
			}
		}
		return false
	}

	// Repair every boundary tag: size word = chunk size with the in-use
	// bit for live blocks (plus mmapped for direct maps), cleared for
	// freed ones.
	repair := func(b alloc.RecordedBlock, live bool) {
		c := b.Base - HeaderSize
		want := b.Usable + HeaderSize
		if live {
			want |= inUseBit
			if !inArena(b.Base) {
				want |= mmappedBit
			}
		}
		rep.MetaWords++
		if old := th.Load(c + sizeWordOff); old != want {
			rep.TornMeta++
			th.Store(c+sizeWordOff, want)
		}
	}
	for _, b := range st.Live {
		repair(b, true)
	}
	for _, b := range st.Freed {
		repair(b, false)
	}

	// Rebuild the exact-fit bins: freed chunks grouped by (arena, chunk
	// size), each group relinked into one canonical chain. The link
	// words double as the chunks' first words, so scan them as metadata
	// too (RebuildChain counts the torn ones).
	type binKey struct {
		arena mem.Addr
		csz   uint64
	}
	bins := map[binKey][]mem.Addr{}
	for _, b := range st.Freed {
		k := binKey{arena: b.Base &^ arenaMask, csz: b.Usable + HeaderSize}
		bins[k] = append(bins[k], b.Base-HeaderSize)
	}
	keys := make([]binKey, 0, len(bins))
	for k := range bins {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].arena != keys[j].arena {
			return keys[i].arena < keys[j].arena
		}
		return keys[i].csz < keys[j].csz
	})
	freed := st.FreedSet()
	inSet := func(node mem.Addr) bool { return freed(node + HeaderSize) }
	for _, k := range keys {
		chunks := bins[k]
		head, torn := alloc.RebuildChain(th, chunks, inSet)
		rep.Chains++
		rep.FreeBlocks += len(chunks)
		rep.MetaWords += uint64(len(chunks))
		rep.TornMeta += torn
		rep.Heads = append(rep.Heads, head)
	}
	return rep
}
