// Package alloctest provides a conformance suite run against every
// allocator model: correctness of block disjointness, data integrity,
// reuse, remote frees, and concurrent (virtual-time) stress. Allocator-
// specific layout properties are asserted in each allocator's own test
// package.
package alloctest

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/sweep"
	"repro/internal/vtime"
)

// Factory builds the allocator under test over a fresh space.
type Factory func(space *mem.Space, threads int) alloc.Allocator

// Run executes the conformance suite.
func Run(t *testing.T, f Factory) {
	t.Run("DataIntegrity", func(t *testing.T) { testDataIntegrity(t, f) })
	t.Run("Disjoint", func(t *testing.T) { testDisjoint(t, f) })
	t.Run("BlockSize", func(t *testing.T) { testBlockSize(t, f) })
	t.Run("MallocZero", func(t *testing.T) { testMallocZero(t, f) })
	t.Run("Reuse", func(t *testing.T) { testReuse(t, f) })
	t.Run("Large", func(t *testing.T) { testLarge(t, f) })
	t.Run("RemoteFree", func(t *testing.T) { testRemoteFree(t, f) })
	t.Run("FreeNil", func(t *testing.T) { testFreeNil(t, f) })
	t.Run("Stats", func(t *testing.T) { testStats(t, f) })
	t.Run("VirtualTimeCharged", func(t *testing.T) { testVirtualTimeCharged(t, f) })
	t.Run("ConcurrentStress", func(t *testing.T) { testConcurrentStress(t, f) })
}

func solo(space *mem.Space) *vtime.Thread { return vtime.Solo(space, 0, nil) }

// newSpace builds the space every suite case runs on, with the shadow-
// memory sanitizer armed: the conformance suite doubles as tier-1
// coverage of the sanitizer's allocator hooks under every model.
func newSpace() *mem.Space {
	space := mem.NewSpace()
	space.EnableSanitizer()
	return space
}

// seededRNG derives a reproducible per-case stream from the repository's
// seed-derivation scheme, keeping the suite nodeterm-clean: no global
// math/rand source, and the seed provenance is auditable.
func seededRNG(key string, tid uint64) *rand.Rand {
	return rand.New(rand.NewSource(int64(sweep.DeriveSeed(tid, "alloctest/"+key))))
}

func testDataIntegrity(t *testing.T, f Factory) {
	space := newSpace()
	a := f(space, 1)
	th := solo(space)
	const n = 500
	addrs := make([]mem.Addr, n)
	for i := range addrs {
		addrs[i] = a.Malloc(th, 64)
		for w := 0; w < 8; w++ {
			space.Store(addrs[i]+mem.Addr(w*8), uint64(i)<<16|uint64(w))
		}
	}
	for i, addr := range addrs {
		for w := 0; w < 8; w++ {
			if got := space.Load(addr + mem.Addr(w*8)); got != uint64(i)<<16|uint64(w) {
				t.Fatalf("block %d word %d corrupted: %#x", i, w, got)
			}
		}
	}
}

func testDisjoint(t *testing.T, f Factory) {
	space := newSpace()
	a := f(space, 1)
	th := solo(space)
	sizes := []uint64{8, 16, 24, 48, 64, 100, 256, 1000, 4096}
	type blk struct {
		addr mem.Addr
		size uint64
	}
	var blocks []blk
	rng := seededRNG("disjoint", 1)
	for i := 0; i < 2000; i++ {
		sz := sizes[rng.Intn(len(sizes))]
		addr := a.Malloc(th, sz)
		if addr%8 != 0 { //tmvet:allow addrhygiene: the conformance suite validates allocator placement, so it inspects alignment directly
			t.Fatalf("Malloc(%d) = %#x: not 8-byte aligned", sz, uint64(addr))
		}
		blocks = append(blocks, blk{addr, sz})
	}
	for i := range blocks {
		for j := i + 1; j < len(blocks); j++ {
			b1, b2 := blocks[i], blocks[j]
			if b1.addr < b2.addr+mem.Addr(b2.size) && b2.addr < b1.addr+mem.Addr(b1.size) {
				t.Fatalf("blocks overlap: [%#x,+%d) and [%#x,+%d)",
					uint64(b1.addr), b1.size, uint64(b2.addr), b2.size)
			}
		}
	}
}

func testBlockSize(t *testing.T, f Factory) {
	space := newSpace()
	a := f(space, 1)
	th := solo(space)
	for _, sz := range []uint64{1, 8, 16, 17, 48, 63, 64, 100, 255, 256, 1024, 5000} {
		addr := a.Malloc(th, sz)
		if got := a.BlockSize(th, addr); got < sz {
			t.Errorf("BlockSize(Malloc(%d)) = %d, want >= %d", sz, got, sz)
		}
	}
}

func testMallocZero(t *testing.T, f Factory) {
	space := newSpace()
	a := f(space, 1)
	th := solo(space)
	x := a.Malloc(th, 0)
	y := a.Malloc(th, 0)
	if x == 0 || y == 0 || x == y {
		t.Errorf("Malloc(0) twice = %#x, %#x; want distinct non-zero", uint64(x), uint64(y))
	}
	a.Free(th, x)
	a.Free(th, y)
}

func testReuse(t *testing.T, f Factory) {
	space := newSpace()
	a := f(space, 1)
	th := solo(space)
	before := space.Stats()
	for i := 0; i < 100000; i++ {
		addr := a.Malloc(th, 16)
		space.Store(addr, uint64(i))
		a.Free(th, addr)
	}
	after := space.Stats()
	grown := after.ReservedBytes - before.ReservedBytes
	if grown > 80<<20 {
		t.Errorf("100k malloc/free(16) grew footprint by %d bytes: free blocks not reused", grown)
	}
}

func testLarge(t *testing.T, f Factory) {
	space := newSpace()
	a := f(space, 1)
	th := solo(space)
	for _, sz := range []uint64{300 << 10, 1 << 20, 5 << 20} {
		addr := a.Malloc(th, sz)
		space.Store(addr, 1)
		space.Store(addr+mem.Addr(sz)-8, 2)
		if a.BlockSize(th, addr) < sz {
			t.Errorf("large BlockSize(%d) = %d", sz, a.BlockSize(th, addr))
		}
		a.Free(th, addr)
	}
	if st := space.Stats(); st.ReservedBytes > 256<<20 {
		t.Errorf("large blocks not returned to OS: %d bytes still reserved", st.ReservedBytes)
	}
}

func testRemoteFree(t *testing.T, f Factory) {
	space := newSpace()
	a := f(space, 2)
	e := vtime.NewEngine(space, 2, vtime.Config{})
	const n = 2000
	addrs := make([]mem.Addr, 0, n)
	// Phase 1: thread 0 allocates, thread 1 idles.
	e.Run(func(th *vtime.Thread) {
		if th.ID() != 0 {
			return
		}
		for i := 0; i < n; i++ {
			addr := a.Malloc(th, 16)
			th.Store(addr, uint64(i))
			addrs = append(addrs, addr)
		}
	})
	// Phase 2: thread 1 frees everything remotely.
	e.Run(func(th *vtime.Thread) {
		if th.ID() != 1 {
			return
		}
		for _, addr := range addrs {
			a.Free(th, addr)
		}
	})
	// Phase 3: thread 0 must be able to keep allocating.
	e.Run(func(th *vtime.Thread) {
		if th.ID() != 0 {
			return
		}
		for i := 0; i < n; i++ {
			addr := a.Malloc(th, 16)
			th.Store(addr, uint64(i))
		}
	})
}

func testFreeNil(t *testing.T, f Factory) {
	space := newSpace()
	a := f(space, 1)
	a.Free(solo(space), 0) // must be a no-op, like free(NULL)
}

func testStats(t *testing.T, f Factory) {
	space := newSpace()
	a := f(space, 1)
	th := solo(space)
	addr := a.Malloc(th, 40)
	a.Free(th, addr)
	st := a.Stats()
	if st.Mallocs != 1 || st.Frees != 1 {
		t.Errorf("stats = %+v, want 1 malloc / 1 free", st)
	}
	if st.BytesRequested != 40 {
		t.Errorf("BytesRequested = %d, want 40", st.BytesRequested)
	}
	if st.BytesAllocated < 40 {
		t.Errorf("BytesAllocated = %d, want >= 40", st.BytesAllocated)
	}
}

func testVirtualTimeCharged(t *testing.T, f Factory) {
	space := newSpace()
	a := f(space, 1)
	th := solo(space)
	before := th.Clock()
	a.Free(th, a.Malloc(th, 16))
	if th.Clock() == before {
		t.Error("malloc/free advanced no virtual time")
	}
}

func testConcurrentStress(t *testing.T, f Factory) {
	space := newSpace()
	const threads = 8
	a := f(space, threads)
	e := vtime.NewEngine(space, threads, vtime.Config{})
	sizes := []uint64{8, 16, 16, 16, 48, 64, 128, 256, 1024, 9000}
	e.Run(func(th *vtime.Thread) {
		tid := th.ID()
		rng := seededRNG("stress", uint64(tid))
		live := make([]mem.Addr, 0, 128)
		for i := 0; i < 3000; i++ {
			if len(live) > 0 && rng.Intn(2) == 0 {
				k := rng.Intn(len(live))
				addr := live[k]
				if got := th.Load(addr); got>>32 != uint64(tid) {
					t.Errorf("tid %d: block %#x corrupted: owner tag %#x", tid, uint64(addr), got>>32)
					return
				}
				a.Free(th, addr)
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
			} else {
				addr := a.Malloc(th, sizes[rng.Intn(len(sizes))])
				th.Store(addr, uint64(tid)<<32|uint64(i))
				live = append(live, addr)
			}
		}
		for _, addr := range live {
			a.Free(th, addr)
		}
	})
	st := a.Stats()
	if st.Mallocs != st.Frees {
		t.Errorf("mallocs %d != frees %d after balanced stress", st.Mallocs, st.Frees)
	}
}

// RunProperty adds testing/quick-style randomized trace checks: for
// arbitrary seeds, a random malloc/free trace must preserve block
// disjointness among live blocks and the contents of every live block.
func RunProperty(t *testing.T, f Factory) {
	check := func(seed uint64) bool {
		space := newSpace()
		const threads = 4
		a := f(space, threads)
		e := vtime.NewEngine(space, threads, vtime.Config{})
		type blk struct {
			addr mem.Addr
			size uint64
			tag  uint64
		}
		live := make([][]blk, threads)
		ok := true
		e.Run(func(th *vtime.Thread) {
			tid := th.ID()
			rng := seededRNG("property", seed+uint64(tid))
			sizes := []uint64{8, 16, 24, 48, 64, 200, 1024, 10000}
			for i := 0; i < 800 && ok; i++ {
				if len(live[tid]) > 0 && rng.Intn(3) == 0 {
					k := rng.Intn(len(live[tid]))
					b := live[tid][k]
					// The first word must still hold our tag.
					if th.Load(b.addr) != b.tag {
						ok = false
						return
					}
					a.Free(th, b.addr)
					live[tid][k] = live[tid][len(live[tid])-1]
					live[tid] = live[tid][:len(live[tid])-1]
				} else {
					size := sizes[rng.Intn(len(sizes))]
					addr := a.Malloc(th, size)
					if got := a.BlockSize(th, addr); got < size {
						ok = false
						return
					}
					tag := uint64(tid)<<56 | uint64(i)<<8 | 1
					th.Store(addr, tag)
					// Also tag the last word; must not clobber word 0.
					if size >= 16 {
						th.Store(addr+mem.Addr(size-8), ^tag)
						if th.Load(addr) != tag {
							ok = false
							return
						}
					}
					live[tid] = append(live[tid], blk{addr, size, tag})
				}
			}
		})
		if !ok {
			return false
		}
		// Cross-thread disjointness of all still-live blocks.
		type iv struct{ lo, hi uint64 }
		var ivs []iv
		for tid := range live {
			for _, b := range live[tid] {
				ivs = append(ivs, iv{uint64(b.addr), uint64(b.addr) + b.size})
			}
		}
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
		for i := 1; i < len(ivs); i++ {
			if ivs[i].lo < ivs[i-1].hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

// RunFootprint checks the LiveBytes gauge: zero after balanced
// traffic, positive while blocks are live.
func RunFootprint(t *testing.T, f Factory) {
	space := newSpace()
	a := f(space, 1)
	th := vtime.Solo(space, 0, nil)
	var addrs []mem.Addr
	for i := 0; i < 200; i++ {
		addrs = append(addrs, a.Malloc(th, 64))
	}
	if live := a.Stats().LiveBytes; live < 200*64 {
		t.Errorf("LiveBytes = %d with 200x64B live, want >= %d", live, 200*64)
	}
	for _, ad := range addrs {
		a.Free(th, ad)
	}
	if live := a.Stats().LiveBytes; live != 0 {
		t.Errorf("LiveBytes = %d after freeing everything, want 0", live)
	}
	big := a.Malloc(th, 1<<20)
	if live := a.Stats().LiveBytes; live < 1<<20 {
		t.Errorf("LiveBytes = %d with 1MB live", live)
	}
	a.Free(th, big)
	if live := a.Stats().LiveBytes; live != 0 {
		t.Errorf("LiveBytes = %d after freeing the large block, want 0", live)
	}
}
