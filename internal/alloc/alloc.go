// Package alloc defines the dynamic memory allocator interface over the
// simulated address space and shared building blocks (size classes,
// intrusive free lists, contention-counting locks, per-thread stats).
//
// Four allocator models live in subpackages — glibc (ptmalloc), hoard,
// tbb (TBBMalloc) and tcmalloc — each reproducing the placement and
// synchronization behaviour its original is known for, which is what the
// paper's study couples to the STM's lock-mapping function.
//
// All allocator entry points take a *vtime.Thread: the calling logical
// thread. Every word the allocator touches (boundary tags, free-list
// links) is priced through the thread's cache model, and every lock is a
// virtual-time lock, so allocator code-path length and contention show
// up in the experiment clocks exactly as the paper measured them.
package alloc

import (
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/vtime"
)

// Allocator is the malloc/free interface every allocator model
// implements. The thread handle identifies the logical thread (its ID
// keys per-thread arenas/heaps/caches, as the C originals key theirs by
// OS thread) and is charged the virtual-time cost of the operation.
type Allocator interface {
	// Name returns the allocator's short name ("glibc", "hoard", ...).
	Name() string
	// Malloc returns the simulated address of a block of at least size
	// bytes, or 0 when memory is exhausted (address-space quota hit or a
	// fault injector forced the failure) — the simulated malloc(3)
	// returning NULL. Size zero is allowed and returns a minimum-size
	// block, mirroring malloc(0).
	Malloc(th *vtime.Thread, size uint64) mem.Addr
	// Free releases the block at addr, which must have been returned by
	// Malloc on this allocator. An invalid addr (double free, pointer the
	// allocator never handed out) is detected via the model's metadata,
	// counted in Stats, and otherwise ignored — the free-list state is
	// never corrupted by bad input.
	Free(th *vtime.Thread, addr mem.Addr)
	// BlockSize returns the usable size of the block at addr (the size
	// class it was served from).
	BlockSize(th *vtime.Thread, addr mem.Addr) uint64
	// Stats returns aggregate counters across all threads.
	Stats() Stats
	// Describe returns the allocator's Table 1 self-description.
	Describe() Description
}

// Factory constructs an allocator over a space for a maximum number of
// logical threads.
type Factory func(space *mem.Space, threads int) Allocator

// Description mirrors one row of the paper's Table 1.
type Description struct {
	Name        string
	Metadata    string // where block metadata lives
	MinSize     uint64 // minimum allocated block, bytes
	FastPath    string // block sizes with a synchronization-free fast path
	Granularity string // chunk size acquired from the global store / OS
	Sync        string // synchronization strategy summary
}

// Stats aggregates allocator activity. All counters are totals since
// construction.
type Stats struct {
	Mallocs        uint64
	Frees          uint64
	BytesRequested uint64 // sum of requested sizes
	BytesAllocated uint64 // sum of block (size-class) sizes handed out
	LockAcquires   uint64 // lock acquisitions on any allocator lock
	LockContended  uint64 // acquisitions that found the lock held
	RemoteFrees    uint64 // frees routed to another thread's heap/superblock
	SlowRefills    uint64 // fast-path misses that went to a shared store
	OSMaps         uint64 // regions requested from the simulated OS
	LiveBytes      int64  // block bytes currently allocated (gauge)
	FailedMallocs  uint64 // Mallocs that returned 0 (OOM or injected fault)
	DoubleFrees    uint64 // frees of a block already free
	BadFrees       uint64 // frees of a pointer the allocator never issued
}

// Add accumulates other into s.
func (s *Stats) Add(o Stats) {
	s.Mallocs += o.Mallocs
	s.Frees += o.Frees
	s.BytesRequested += o.BytesRequested
	s.BytesAllocated += o.BytesAllocated
	s.LockAcquires += o.LockAcquires
	s.LockContended += o.LockContended
	s.RemoteFrees += o.RemoteFrees
	s.SlowRefills += o.SlowRefills
	s.OSMaps += o.OSMaps
	s.LiveBytes += o.LiveBytes
	s.FailedMallocs += o.FailedMallocs
	s.DoubleFrees += o.DoubleFrees
	s.BadFrees += o.BadFrees
}

// FreeFault classifies an invalid Free caught by an allocator's
// metadata checks (boundary tags, span/superblock lookup).
type FreeFault int

const (
	// DoubleFree: the block's metadata says it is already free.
	DoubleFree FreeFault = iota
	// BadPointer: the address maps to no block this allocator issued.
	BadPointer
)

// String returns the fault's event label.
func (f FreeFault) String() string {
	if f == DoubleFree {
		return "double_free"
	}
	return "bad_free"
}

// Injector decides, per allocation, whether to inject a fault.
// internal/fault implements it; the interface lives here (and is
// satisfied structurally) so allocator models never import the fault
// package.
type Injector interface {
	// MallocFault is consulted once at the top of every Malloc. fail
	// forces the call to return 0; delay is extra latency in virtual
	// cycles charged to the thread either way (a malloc latency spike).
	MallocFault(tid int, size uint64) (fail bool, delay uint64)
}

// Injectable is implemented by allocators that accept a fault
// injector. All four models implement it.
type Injectable interface {
	SetInjector(inj Injector)
}

// Inject attaches inj to a if the allocator supports injection.
func Inject(a Allocator, inj Injector) {
	if inj == nil {
		return
	}
	if i, ok := a.(Injectable); ok {
		i.SetInjector(inj)
	}
}

// ThreadStats is the per-thread counter block implementations keep in
// their per-thread state. Rec, when non-nil, is the observability sink
// for this thread's allocator events (set via SetObserver on the
// allocator); Inj, when non-nil, is the fault injector (set via
// SetInjector). Keeping both here lets shared helpers like
// CountingMutex and PreMalloc work without changing model signatures.
type ThreadStats struct {
	Stats
	Rec *obs.Recorder
	Inj Injector
}

// PreMalloc runs the fault-injection gate at the top of a model's
// Malloc: it charges any injected latency and reports whether the call
// must fail (return 0). On failure it also does the full failure
// accounting, so the model just returns.
func (st *ThreadStats) PreMalloc(th *vtime.Thread, size uint64) (fail bool) {
	if st.Inj == nil {
		return false
	}
	f, delay := st.Inj.MallocFault(th.ID(), size)
	if delay > 0 {
		if st.Rec != nil {
			st.Rec.Fault("malloc_latency", th.ID(), th.Clock(), delay)
		}
		th.Tick(delay)
	}
	if f {
		st.MallocFailed(th, size)
	}
	return f
}

// MallocFailed does the accounting for a Malloc returning 0 — injected
// or a genuine simulated OOM (mem quota / address-space exhaustion).
func (st *ThreadStats) MallocFailed(th *vtime.Thread, size uint64) {
	st.FailedMallocs++
	if st.Rec != nil {
		st.Rec.Fault("oom", th.ID(), th.Clock(), size)
	}
}

// FreeFaulted does the accounting for an invalid Free the model's
// metadata checks caught. The model returns without touching any
// free-list state.
func (st *ThreadStats) FreeFaulted(th *vtime.Thread, f FreeFault, addr mem.Addr) {
	if f == DoubleFree {
		st.DoubleFrees++
	} else {
		st.BadFrees++
	}
	if st.Rec != nil {
		st.Rec.Fault(f.String(), th.ID(), th.Clock(), uint64(addr))
	}
}

// Observable is implemented by allocators that can stream events
// (alloc/free latency, lock waits, superblock/central transfers) into
// an obs.Recorder. All four models implement it.
type Observable interface {
	SetObserver(r *obs.Recorder)
}

// Observe attaches r to a if the allocator supports observation.
func Observe(a Allocator, r *obs.Recorder) {
	if r == nil {
		return
	}
	if o, ok := a.(Observable); ok {
		o.SetObserver(r)
	}
}

// Profiled is implemented by allocators that attribute their internal
// phases (entry points, arena/superblock/central-store metadata work)
// to profiler regions. All four models implement it.
type Profiled interface {
	SetProfiler(p *prof.Profiler)
}

// Profile attaches p to a if the allocator supports cycle attribution.
func Profile(a Allocator, p *prof.Profiler) {
	if p == nil {
		return
	}
	if pr, ok := a.(Profiled); ok {
		pr.SetProfiler(p)
	}
}

// HeapClass is one size-class row of a HeapState snapshot.
type HeapClass struct {
	Size   uint64 // block bytes served by this class
	Free   uint64 // blocks idle on shared structures (central/global lists, arena bins, superblock free lists)
	Cached uint64 // blocks idle in synchronization-free thread-local caches
}

// HeapState is a point-in-time view of an allocator's internal
// structure, produced by InspectHeap. Everything is derived from the
// allocator's own Go-side metadata — no simulated memory is touched and
// no virtual time is charged, so inspection is invisible to the run.
// Implementations must produce deterministic field values and Classes
// ordering (class-table index order, or sorted sizes for dynamic bins).
type HeapState struct {
	// Reserved is the allocator's own footprint: bytes it has mapped from
	// the space for heap use (arenas, superblocks, spans, big-object
	// mmaps). It deliberately excludes non-heap regions (the STM's ORT,
	// application statics), so blowup = Reserved / live bytes measures the
	// allocator, not the harness.
	Reserved uint64
	Classes  []HeapClass

	CacheBytes   uint64 // bytes idle in thread-local caches (Σ Cached·Size)
	CentralBytes uint64 // bytes idle on shared lists (Σ Free·Size)

	Superblocks      uint64 // superblocks/spans currently carved (0 if the model has none)
	EmptySuperblocks uint64 // fully empty, unassigned or spare
	SBUsedBlocks     uint64 // in-use blocks across class-assigned superblocks
	SBCapacity       uint64 // block capacity across class-assigned superblocks
	Migrations       uint64 // cumulative emptiness-threshold ownership migrations
	Arenas           uint64 // glibc arena count (0 for other models)

	// Static geometry, stable for the allocator's lifetime; tmlayout
	// -heap-geometry emits these without running a workload.
	SuperblockBytes uint64 // superblock/span/chunk granularity, bytes
	MinBlock        uint64 // smallest block handed out
	MaxBlock        uint64 // largest class-served request (larger goes to mmap)
}

// FreeBlocks returns the total idle blocks across classes (shared +
// cached).
func (h *HeapState) FreeBlocks() uint64 {
	var n uint64
	for _, c := range h.Classes {
		n += c.Free + c.Cached
	}
	return n
}

// HeapInspector is implemented by allocators that can report their
// internal state as a HeapState. All four models implement it; the
// heapscope collector snapshots through this interface on its
// virtual-cycle cadence.
type HeapInspector interface {
	InspectHeap() HeapState
}

// InspectHeap snapshots a's internals if the allocator supports
// inspection.
func InspectHeap(a Allocator) (HeapState, bool) {
	if hi, ok := a.(HeapInspector); ok {
		return hi.InspectHeap(), true
	}
	return HeapState{}, false
}

// CountingMutex is a virtual-time mutex that records acquisitions and
// contention into a ThreadStats block chosen per call. All allocator
// locks use it so that the lock-contention effects the paper profiles
// (Hoard on Intruder, Glibc arenas on Yada) are observable.
type CountingMutex struct {
	l vtime.Lock
}

// Lock acquires the mutex, counting the acquisition and whether it was
// contended into st (which may be nil). Contended waits are reported to
// st.Rec with their virtual-cycle duration.
func (m *CountingMutex) Lock(th *vtime.Thread, st *ThreadStats) {
	if m.l.TryLock(th) {
		if st != nil {
			st.LockAcquires++
		}
		return
	}
	if st != nil {
		st.LockAcquires++
		st.LockContended++
		if st.Rec != nil {
			start := th.Clock()
			m.l.Lock(th)
			st.Rec.LockWait(th.ID(), start, th.Clock())
			return
		}
	}
	m.l.Lock(th)
}

// TryLock attempts the lock without waiting, counting the acquisition
// on success.
func (m *CountingMutex) TryLock(th *vtime.Thread, st *ThreadStats) bool {
	if m.l.TryLock(th) {
		if st != nil {
			st.LockAcquires++
		}
		return true
	}
	return false
}

// Unlock releases the mutex.
func (m *CountingMutex) Unlock(th *vtime.Thread) { m.l.Unlock(th) }

// FreeList is an intrusive LIFO free list whose links live in the first
// word of each free block in simulated memory, as in the C allocators —
// so walking it has the cache behaviour of the real thing. Callers hold
// the owning lock or own the list.
type FreeList struct {
	head mem.Addr
	n    int
}

// Push prepends block a.
func (f *FreeList) Push(th *vtime.Thread, a mem.Addr) {
	th.Store(a, uint64(f.head))
	f.head = a
	f.n++
}

// Pop removes and returns the most recently pushed block, or 0 if empty.
func (f *FreeList) Pop(th *vtime.Thread) mem.Addr {
	if f.head == 0 {
		return 0
	}
	a := f.head
	f.head = mem.Addr(th.Load(a))
	f.n--
	return a
}

// Len returns the number of blocks on the list.
func (f *FreeList) Len() int { return f.n }

// Empty reports whether the list has no blocks.
func (f *FreeList) Empty() bool { return f.head == 0 }

// TakeAll removes the whole chain from f and returns its head and
// length; the links remain threaded through simulated memory.
func (f *FreeList) TakeAll() (head mem.Addr, n int) {
	head, n = f.head, f.n
	f.head, f.n = 0, 0
	return head, n
}

// PushChain prepends a chain of n blocks whose head is head and whose
// links are already threaded through simulated memory. tail must be the
// chain's last block.
func (f *FreeList) PushChain(th *vtime.Thread, head, tail mem.Addr, n int) {
	if n == 0 {
		return
	}
	th.Store(tail, uint64(f.head))
	f.head = head
	f.n += n
}

// SizeClasses maps request sizes to a fixed ordered set of block sizes.
type SizeClasses struct {
	sizes []uint64
}

// NewSizeClasses builds a class table from an ordered list of block
// sizes.
func NewSizeClasses(sizes []uint64) *SizeClasses {
	out := make([]uint64, len(sizes))
	copy(out, sizes)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return &SizeClasses{sizes: out}
}

// Index returns the index of the smallest class holding size, or -1 if
// size exceeds the largest class.
func (c *SizeClasses) Index(size uint64) int {
	i := sort.Search(len(c.sizes), func(i int) bool { return c.sizes[i] >= size })
	if i == len(c.sizes) {
		return -1
	}
	return i
}

// Size returns the block size of class i.
func (c *SizeClasses) Size(i int) uint64 { return c.sizes[i] }

// Count returns the number of classes.
func (c *SizeClasses) Count() int { return len(c.sizes) }

// Max returns the largest class size.
func (c *SizeClasses) Max() uint64 { return c.sizes[len(c.sizes)-1] }

// Registry maps allocator names to factories.
var registry = map[string]Factory{}

// Register installs a factory under name; allocator subpackages call it
// from init.
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("alloc: duplicate allocator %q", name))
	}
	registry[name] = f
}

// New constructs the named allocator.
func New(name string, space *mem.Space, threads int) (Allocator, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("alloc: unknown allocator %q (known: %v)", name, Names())
	}
	return f(space, threads), nil
}

// MustNew is New but panics on an unknown name.
func MustNew(name string, space *mem.Space, threads int) Allocator {
	a, err := New(name, space, threads)
	if err != nil {
		panic(err)
	}
	return a
}

// Names returns registered allocator names in the paper's order when all
// four are present, else sorted.
func Names() []string {
	order := []string{"glibc", "hoard", "tbb", "tcmalloc"}
	var out []string
	for _, n := range order {
		if _, ok := registry[n]; ok {
			out = append(out, n)
		}
	}
	var rest []string
	for n := range registry {
		found := false
		for _, o := range out {
			if o == n {
				found = true
				break
			}
		}
		if !found {
			rest = append(rest, n)
		}
	}
	sort.Strings(rest)
	return append(out, rest...)
}
