package alloc

import (
	"sort"

	"repro/internal/mem"
	"repro/internal/vtime"
)

// Durable-heap seam: metadata journaling and crash recovery.
//
// Under a durable memory (internal/pmem) the allocator's in-band
// metadata — glibc boundary tags, free-list link words — lives in
// persistent memory and can tear: a crash preserves only the cache
// lines that were flushed and fenced. The journal is the allocator's
// out-of-band insurance: models append one record per structural event
// (arena/superblock/span creation, class assignment) so that recovery
// can rebuild every free list from journaled truth plus compile-time
// layout constants, without consulting the crashed instance's host-side
// maps (which model DRAM and are lost with it).
//
// The block-lifecycle half of the journal needs no allocator changes:
// pmem receives every malloc/free through the Space observer fan-out
// (mem.PersistTracker). Only the structural records below and the
// per-model RecoverHeap repair pass are new seams.

// MetaJournal receives allocator structural-metadata records. The
// append is priced on the calling thread (one LogAppend per record —
// a write-combining store into the journal region); internal/pmem
// implements it structurally so models never import pmem.
type MetaJournal interface {
	// JournalMeta appends one structural record. kind names the event
	// ("arena", "superblock", "span", ...), base its region; a and b are
	// kind-specific operands (sizes, class indices). th may be nil for
	// construction-time events raised before any simulated thread exists.
	JournalMeta(th *vtime.Thread, kind string, base mem.Addr, a, b uint64)
}

// Journaled is implemented by allocators that journal their structural
// metadata. All four models implement it.
type Journaled interface {
	SetJournal(j MetaJournal)
}

// Journal attaches j to a if the allocator supports metadata
// journaling, reporting whether it does.
func Journal(a Allocator, j MetaJournal) bool {
	if j == nil {
		return false
	}
	if m, ok := a.(Journaled); ok {
		m.SetJournal(j)
		return true
	}
	return false
}

// RecordedBlock is one journaled heap block handed to recovery: its
// user base address, the requested size and the usable (size-class)
// bytes the allocator dedicated to it.
type RecordedBlock struct {
	Base   mem.Addr
	Req    uint64
	Usable uint64
}

// MetaRec is one journaled structural record, as appended via
// JournalMeta.
type MetaRec struct {
	Kind string
	Base mem.Addr
	A, B uint64
}

// RecoverState is the journaled truth recovery hands to a model's
// RecoverHeap: which blocks were live and which were freed at the
// crash (both sorted by base address), plus the structural records in
// append order. Blocks in regions returned to the simulated OS are
// already excluded.
type RecoverState struct {
	Live  []RecordedBlock
	Freed []RecordedBlock
	Meta  []MetaRec
}

// FreedSet reports whether a is the base of a freed block (for use as
// a RebuildChain / WalkChain membership predicate).
func (st *RecoverState) FreedSet() func(mem.Addr) bool {
	return func(a mem.Addr) bool {
		i := sort.Search(len(st.Freed), func(i int) bool { return st.Freed[i].Base >= a })
		return i < len(st.Freed) && st.Freed[i].Base == a
	}
}

// RecoverReport summarizes a model's metadata repair pass.
type RecoverReport struct {
	// TornMeta counts metadata words whose durable content disagreed
	// with journaled truth and were rewritten; MetaWords the words
	// scanned. Their ratio is the "how badly does this layout tear"
	// metric.
	TornMeta  uint64
	MetaWords uint64
	// Chains and FreeBlocks count the rebuilt free lists and the blocks
	// linked into them; Heads are the rebuilt chain heads, in a
	// deterministic order, for the closure walk.
	Chains     int
	FreeBlocks int
	Heads      []mem.Addr
	// NodeOffset translates a chain node address to the block's user
	// address (user = node + NodeOffset): glibc chains link chunk bases,
	// one boundary tag below the user pointer; the header-less models
	// link user bases directly.
	NodeOffset uint64
}

// Recoverer is implemented by allocators that can verify and repair
// their durable metadata after a crash. RecoverHeap must rely only on
// the passed state and compile-time layout constants — never on the
// instance's host-side maps, which did not survive the crash — and
// prices its scan/repair traffic on th. All four models implement it.
type Recoverer interface {
	RecoverHeap(th *vtime.Thread, st *RecoverState) RecoverReport
}

// RecoverHeap runs a's metadata repair pass if the allocator supports
// recovery, reporting whether it does.
func RecoverHeap(a Allocator, th *vtime.Thread, st *RecoverState) (RecoverReport, bool) {
	if r, ok := a.(Recoverer); ok {
		return r.RecoverHeap(th, st), true
	}
	return RecoverReport{}, false
}

// RebuildChain rewrites the free-list link words of one logical free
// list into a canonical chain: blocks sorted ascending, each block's
// word 0 pointing at the next, the last at 0, head the lowest address
// (so LIFO pops ascend, matching a fresh carve). Before rewriting it
// scans each existing link word and counts as torn any value that is
// neither 0 nor a member of the list (per inSet) — durable images of a
// healthy chain contain only member links and tails, so anything else
// is a torn line or leftover user data. blocks is sorted in place.
func RebuildChain(th *vtime.Thread, blocks []mem.Addr, inSet func(mem.Addr) bool) (head mem.Addr, torn uint64) {
	if len(blocks) == 0 {
		return 0, 0
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	for i, b := range blocks {
		var next mem.Addr
		if i+1 < len(blocks) {
			next = blocks[i+1]
		}
		old := th.Load(b)
		if old != 0 && !inSet(mem.Addr(old)) {
			torn++
		}
		if old != uint64(next) {
			th.Store(b, uint64(next))
		}
	}
	return blocks[0], torn
}

// WalkChain follows free-list links from head, reporting how many
// blocks it visited and whether the chain is closed: every visited
// block satisfies member and the walk terminates at 0 within max
// steps (a cycle or an escape from the member set reports false).
func WalkChain(th *vtime.Thread, head mem.Addr, member func(mem.Addr) bool, max int) (n int, ok bool) {
	for a := head; a != 0; a = mem.Addr(th.Load(a)) {
		if !member(a) || n >= max {
			return n, false
		}
		n++
	}
	return n, true
}
