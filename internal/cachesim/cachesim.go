// Package cachesim models the memory hierarchy of the paper's machine
// (Table 2): one 32 KiB, 8-way, 64-byte-line L1 data cache per core and
// two 6 MiB, 24-way unified L2 caches, each shared by one four-core
// socket, with an invalidation-based coherence protocol between the L1s.
//
// The model is consulted online by the virtual-time engine: every
// simulated memory access is classified (L1 hit, L2 hit, other-socket
// L2, memory; plus coherence invalidations) and the classification both
// increments the PAPI-style counters the paper reports and determines
// the access's latency contribution to the accessing thread's virtual
// clock.
//
// The simulator is single-threaded by construction: the virtual-time
// engine serializes all execution, so no internal locking is needed and
// results are deterministic.
package cachesim

import "repro/internal/mem"

// LineShift/LineSize define the 64-byte cache line.
const (
	LineShift = 6
	LineSize  = 1 << LineShift
)

// Geometry of the paper's Xeon E5405 (Table 2).
const (
	l1Sets       = 64 // 32 KiB / 64 B / 8 ways
	l1Ways       = 8
	l2Sets       = 4096 // 6 MiB / 64 B / 24 ways
	l2Ways       = 24
	CoresPerL2   = 4
	DefaultCores = 8
)

// Level classifies where an access was satisfied.
type Level int

// Access outcome levels.
const (
	L1Hit Level = iota
	L2Hit
	RemoteL2Hit // satisfied by the other socket's L2 (or its dirty line)
	MemoryHit   // satisfied by main memory
)

// CoreStats are the per-core PAPI-style counters.
type CoreStats struct {
	Accesses   uint64
	L1Misses   uint64
	L2Misses   uint64 // misses in this core's socket L2
	InvalsSent uint64 // lines this core's writes invalidated elsewhere
	CohMisses  uint64 // L1 misses caused by a prior remote invalidation
	FalseShare uint64 // CohMisses where the remote write touched a
	// different word of the line (classic false sharing)
}

// L1MissRatio returns L1 misses over accesses.
func (c CoreStats) L1MissRatio() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.L1Misses) / float64(c.Accesses)
}

type way struct {
	tag uint64 // line address, valid if != 0 (line 0 is never used:
	// the simulated address space starts at 256 MiB)
	lru uint64
}

// cache stores all sets in one flat way array (set s occupies
// ways[s*nways : (s+1)*nways]) so building a hierarchy costs a handful
// of allocations instead of one slice per set.
type cache struct {
	ways    []way
	nways   int
	setMask uint64
	tick    uint64
}

func newCache(nsets, nways int) *cache {
	return &cache{
		ways:    make([]way, nsets*nways),
		nways:   nways,
		setMask: uint64(nsets - 1),
	}
}

func (c *cache) set(line uint64) []way {
	base := int(line&c.setMask) * c.nways
	return c.ways[base : base+c.nways]
}

// lookup probes for line; on hit it refreshes LRU.
func (c *cache) lookup(line uint64) bool {
	c.tick++
	s := c.set(line)
	for i := range s {
		if s[i].tag == line {
			s[i].lru = c.tick
			return true
		}
	}
	return false
}

// insert places line, evicting the LRU way. Returns the evicted line (0
// if the way was empty).
func (c *cache) insert(line uint64) uint64 {
	c.tick++
	s := c.set(line)
	victim := 0
	for i := range s {
		if s[i].tag == 0 {
			victim = i
			break
		}
		if s[i].lru < s[victim].lru {
			victim = i
		}
	}
	old := s[victim].tag
	s[victim] = way{tag: line, lru: c.tick}
	return old
}

// invalidate removes line if present, reporting whether it was.
func (c *cache) invalidate(line uint64) bool {
	s := c.set(line)
	for i := range s {
		if s[i].tag == line {
			s[i].tag = 0
			return true
		}
	}
	return false
}

// lineState tracks coherence metadata per line: which cores hold it and
// what invalidated whom.
type lineState struct {
	holders     uint32 // bitmask of cores with the line in L1
	invalidated uint32 // cores whose copy was invalidated since last hold
	lastWriter  int8
	lastWordOff int8 // word offset (0..7) of the most recent write
}

// Hierarchy is the full multicore cache model. Coherence metadata lives
// in a growable lineState arena indexed through lineIdx, so steady-state
// accesses never allocate per line.
type Hierarchy struct {
	cores     int
	l1        []cache
	l2        []cache // one per socket
	lineIdx   map[uint64]int32
	lineArena []lineState
	stats     []CoreStats
}

// New builds a hierarchy for the given core count (sockets of
// CoresPerL2 cores each; the last socket may be partial).
func New(cores int) *Hierarchy {
	if cores <= 0 {
		cores = DefaultCores
	}
	sockets := (cores + CoresPerL2 - 1) / CoresPerL2
	h := &Hierarchy{
		cores:     cores,
		l1:        make([]cache, cores),
		l2:        make([]cache, sockets),
		lineIdx:   make(map[uint64]int32, 1<<16),
		lineArena: make([]lineState, 0, 1<<16),
		stats:     make([]CoreStats, cores),
	}
	for i := range h.l1 {
		h.l1[i] = *newCache(l1Sets, l1Ways)
	}
	for i := range h.l2 {
		h.l2[i] = *newCache(l2Sets, l2Ways)
	}
	return h
}

// lineOf returns the coherence record for line, creating it on first
// touch. The returned pointer is valid until the next lineOf call (the
// arena may grow), which the single-threaded access discipline makes
// safe: each simulated access resolves its line exactly once.
func (h *Hierarchy) lineOf(line uint64) *lineState {
	if i, ok := h.lineIdx[line]; ok {
		return &h.lineArena[i]
	}
	h.lineArena = append(h.lineArena, lineState{lastWriter: -1})
	i := int32(len(h.lineArena) - 1)
	h.lineIdx[line] = i
	return &h.lineArena[i]
}

// peekLine returns the coherence record for line, or nil if the line
// was never touched.
func (h *Hierarchy) peekLine(line uint64) *lineState {
	if i, ok := h.lineIdx[line]; ok {
		return &h.lineArena[i]
	}
	return nil
}

func socketOf(core int) int { return core / CoresPerL2 }

// Result describes one simulated access.
type Result struct {
	Level       Level
	Coherence   bool // the L1 miss was caused by a remote invalidation
	Invalidated bool // this write invalidated the line in other L1s
}

// Access simulates one data access by core to addr.
func (h *Hierarchy) Access(core int, addr mem.Addr, write bool) Result {
	line := uint64(addr) >> LineShift
	st := &h.stats[core]
	st.Accesses++

	ls := h.lineOf(line)

	var res Result
	bit := uint32(1) << uint(core)
	if h.l1[core].lookup(line) {
		if write {
			res.Invalidated = h.invalidateOthers(core, ls, line, addr)
		}
		return res
	}

	// L1 miss.
	st.L1Misses++
	if ls.invalidated&bit != 0 {
		res.Coherence = true
		st.CohMisses++
		// False sharing: the write that invalidated us touched a
		// different word of the line.
		if ls.lastWriter >= 0 && ls.lastWordOff != int8((uint64(addr)>>3)&7) {
			st.FalseShare++
		}
		ls.invalidated &^= bit
	}

	sock := socketOf(core)
	if h.l2[sock].lookup(line) {
		res.Level = L2Hit
	} else {
		st.L2Misses++
		// A dirty or shared copy in another socket's cache services the
		// request faster than memory.
		if ls.holders&^h.socketMask(sock) != 0 {
			res.Level = RemoteL2Hit
		} else {
			res.Level = MemoryHit
		}
		if evicted := h.l2[sock].insert(line); evicted != 0 {
			// Inclusive model: L2 eviction drops the line from this
			// socket's L1s.
			h.dropFromSocketL1s(sock, evicted)
		}
	}

	if evicted := h.l1[core].insert(line); evicted != 0 {
		if els := h.peekLine(evicted); els != nil {
			els.holders &^= bit
		}
	}
	ls.holders |= bit
	if write {
		res.Invalidated = h.invalidateOthers(core, ls, line, addr)
	}
	return res
}

func (h *Hierarchy) socketMask(sock int) uint32 {
	var m uint32
	for c := 0; c < h.cores; c++ {
		if socketOf(c) == sock {
			m |= 1 << uint(c)
		}
	}
	return m
}

func (h *Hierarchy) invalidateOthers(core int, ls *lineState, line uint64, addr mem.Addr) bool {
	bit := uint32(1) << uint(core)
	others := ls.holders &^ bit
	sent := others != 0
	if others != 0 {
		for c := 0; c < h.cores; c++ {
			if others&(1<<uint(c)) != 0 {
				h.l1[c].invalidate(line)
			}
		}
		ls.invalidated |= others
		ls.holders &= bit
		h.stats[core].InvalsSent++
	}
	ls.lastWriter = int8(core)
	ls.lastWordOff = int8((uint64(addr) >> 3) & 7)
	return sent
}

func (h *Hierarchy) dropFromSocketL1s(sock int, line uint64) {
	ls := h.peekLine(line)
	if ls == nil {
		return
	}
	m := h.socketMask(sock)
	if ls.holders&m == 0 {
		return
	}
	for c := 0; c < h.cores; c++ {
		if socketOf(c) == sock && ls.holders&(1<<uint(c)) != 0 {
			h.l1[c].invalidate(line)
			ls.holders &^= 1 << uint(c)
		}
	}
}

// Stats returns a copy of core c's counters.
func (h *Hierarchy) Stats(core int) CoreStats { return h.stats[core] }

// TotalStats sums counters over all cores.
func (h *Hierarchy) TotalStats() CoreStats {
	var out CoreStats
	for _, s := range h.stats {
		out.Accesses += s.Accesses
		out.L1Misses += s.L1Misses
		out.L2Misses += s.L2Misses
		out.InvalsSent += s.InvalsSent
		out.CohMisses += s.CohMisses
		out.FalseShare += s.FalseShare
	}
	return out
}

// Cores returns the modelled core count.
func (h *Hierarchy) Cores() int { return h.cores }
