package cachesim

import (
	"testing"

	"repro/internal/mem"
)

const base = mem.Addr(1) << 28 // mirrors the simulated space's start

func TestColdMissThenHit(t *testing.T) {
	h := New(8)
	if r := h.Access(0, base, false); r.Level != MemoryHit {
		t.Errorf("first access level = %v, want MemoryHit", r.Level)
	}
	if r := h.Access(0, base, false); r.Level != L1Hit {
		t.Errorf("second access level = %v, want L1Hit", r.Level)
	}
	if r := h.Access(0, base+56, false); r.Level != L1Hit {
		t.Errorf("same-line access level = %v, want L1Hit", r.Level)
	}
	if r := h.Access(0, base+64, false); r.Level == L1Hit {
		t.Error("next-line access hit in L1 without being fetched")
	}
}

func TestL2SharedWithinSocket(t *testing.T) {
	h := New(8)
	h.Access(0, base, false) // core 0 (socket 0) fetches
	// Core 1 shares socket 0's L2: its miss should hit in L2.
	if r := h.Access(1, base, false); r.Level != L2Hit {
		t.Errorf("same-socket access = %v, want L2Hit", r.Level)
	}
	// Core 4 (socket 1) has a cold L2.
	if r := h.Access(4, base+4096, false); r.Level != MemoryHit {
		t.Errorf("cold other-socket access = %v, want MemoryHit", r.Level)
	}
}

func TestInvalidationOnWrite(t *testing.T) {
	h := New(2)
	h.Access(0, base, false)
	h.Access(1, base, false)
	// Core 1 writes: core 0's copy must be invalidated.
	h.Access(1, base, true)
	if h.Stats(1).InvalsSent != 1 {
		t.Errorf("InvalsSent = %d, want 1", h.Stats(1).InvalsSent)
	}
	r := h.Access(0, base, false)
	if r.Level == L1Hit {
		t.Error("core 0 still hits L1 after remote write")
	}
	if !r.Coherence {
		t.Error("re-read after invalidation not classified as coherence miss")
	}
	if h.Stats(0).CohMisses != 1 {
		t.Errorf("CohMisses = %d, want 1", h.Stats(0).CohMisses)
	}
}

func TestFalseSharingClassification(t *testing.T) {
	h := New(2)
	// Core 0 reads word 0; core 1 writes word 4 of the same line.
	h.Access(0, base, false)
	h.Access(1, base+32, true)
	if r := h.Access(0, base, false); !r.Coherence {
		t.Fatal("expected coherence miss")
	}
	if h.Stats(0).FalseShare != 1 {
		t.Errorf("FalseShare = %d, want 1 (remote write touched a different word)", h.Stats(0).FalseShare)
	}

	// True sharing: same word written remotely — no false-share count.
	h2 := New(2)
	h2.Access(0, base, false)
	h2.Access(1, base, true)
	h2.Access(0, base, false)
	if h2.Stats(0).FalseShare != 0 {
		t.Errorf("true sharing misclassified as false sharing")
	}
	if h2.Stats(0).CohMisses != 1 {
		t.Errorf("true-sharing CohMisses = %d, want 1", h2.Stats(0).CohMisses)
	}
}

func TestL1Eviction(t *testing.T) {
	h := New(1)
	// Fill one L1 set: lines mapping to set 0 are 64 sets * 64 bytes =
	// 4096 bytes apart. 8 ways + 1 evicts the LRU.
	for i := 0; i < l1Ways+1; i++ {
		h.Access(0, base+mem.Addr(i*l1Sets*LineSize), false)
	}
	// The first line must have been evicted from L1 (but still hits L2).
	r := h.Access(0, base, false)
	if r.Level != L2Hit {
		t.Errorf("evicted line access = %v, want L2Hit", r.Level)
	}
	// The second line was recently used less than... verify the set only
	// holds l1Ways lines: total misses = 9 cold + 1 eviction re-fetch.
	if got := h.Stats(0).L1Misses; got != uint64(l1Ways+2) {
		t.Errorf("L1Misses = %d, want %d", got, l1Ways+2)
	}
}

func TestWorkingSetFitsAfterWarmup(t *testing.T) {
	h := New(1)
	// 16 KiB working set fits L1: second sweep should be all hits.
	for pass := 0; pass < 2; pass++ {
		for off := mem.Addr(0); off < 16<<10; off += 64 {
			h.Access(0, base+off, false)
		}
	}
	st := h.Stats(0)
	if st.L1Misses != 256 { // only the cold pass misses
		t.Errorf("L1Misses = %d, want 256", st.L1Misses)
	}
	if got := st.L1MissRatio(); got != 0.5 {
		t.Errorf("miss ratio = %v, want 0.5", got)
	}
}

func TestGlibcVsDenseLayoutLocality(t *testing.T) {
	// The paper's Genome observation: 16-byte nodes placed 32 bytes
	// apart (glibc) touch twice as many lines as densely packed ones.
	sparse := New(1)
	for i := 0; i < 4096; i++ {
		sparse.Access(0, base+mem.Addr(i*32), false)
	}
	dense := New(1)
	for i := 0; i < 4096; i++ {
		dense.Access(0, base+mem.Addr(i*16), false)
	}
	if sparse.Stats(0).L1Misses <= dense.Stats(0).L1Misses {
		t.Errorf("sparse layout misses (%d) not worse than dense (%d)",
			sparse.Stats(0).L1Misses, dense.Stats(0).L1Misses)
	}
}

func TestTotalStats(t *testing.T) {
	h := New(4)
	h.Access(0, base, false)
	h.Access(3, base+4096, true)
	tot := h.TotalStats()
	if tot.Accesses != 2 || tot.L1Misses != 2 {
		t.Errorf("TotalStats = %+v", tot)
	}
}
