package harness

import (
	"fmt"

	_ "repro/internal/alloc/glibc"
	_ "repro/internal/alloc/hoard"
	_ "repro/internal/alloc/tbb"
	_ "repro/internal/alloc/tcmalloc"

	"repro/internal/alloc"
	"repro/internal/alloc/tcmalloc"
	"repro/internal/mem"
	"repro/internal/stm"
	"repro/internal/vtime"
)

// planStatic wires the common shape of the computed (workload-free)
// experiments: one static cell holding the whole Result.
func planStatic(b *Builder, fn func() (*Result, error)) error {
	h := b.Static(fn)
	b.Reduce(func() (*Result, error) {
		r := h.Get()
		return &r, nil
	})
	return nil
}

// tab1: the allocator attribute summary, generated from the allocator
// models' self-descriptions.
func init() {
	Register(&Experiment{
		ID:    "tab1",
		Paper: "Table 1: summary of the main attributes of the studied allocators",
		Plan: func(b *Builder) error {
			return planStatic(b, func() (*Result, error) {
				t := Table{
					Columns: []string{"Allocator", "Metadata (tag)", "Min Size", "Fast Path", "Granularity", "Synchronization"},
				}
				for _, name := range Allocators() {
					space := mem.NewSpace()
					a, err := alloc.New(name, space, 1)
					if err != nil {
						return nil, err
					}
					d := a.Describe()
					t.Rows = append(t.Rows, []string{
						d.Name, d.Metadata, fmt.Sprintf("%d bytes", d.MinSize), d.FastPath, d.Granularity, d.Sync,
					})
				}
				return &Result{
					ID:     "tab1",
					Title:  "Allocator attributes",
					Tables: []Table{t},
				}, nil
			})
		},
	})
}

// tab2: the modelled machine configuration.
func init() {
	Register(&Experiment{
		ID:    "tab2",
		Paper: "Table 2: machine configuration used in the experiments",
		Plan: func(b *Builder) error {
			return planStatic(b, func() (*Result, error) {
				return &Result{
					ID:    "tab2",
					Title: "Modelled machine configuration (paper's Xeon E5405)",
					Tables: []Table{{
						Columns: []string{"Component", "Model"},
						Rows: [][]string{
							{"Processor model", "Intel Xeon E5405 @ 2.00GHz (virtual-time model)"},
							{"Total cores", "8 (2 sockets, 4 per socket)"},
							{"L1 data cache", "32KB, 8-way set associative, 64-byte lines"},
							{"L2 cache", "2x6MB, unified, 24-way set associative"},
							{"Execution", "deterministic virtual-time engine (internal/vtime)"},
						},
					}},
				}, nil
			})
		},
	})
}

// fig2: the TCMalloc false-sharing handout scenario, demonstrated by
// tracing the addresses two threads receive.
func init() {
	Register(&Experiment{
		ID:    "fig2",
		Paper: "Figure 2: false sharing induced by TCMalloc's incremental central-cache transfer",
		Plan: func(b *Builder) error {
			return planStatic(b, func() (*Result, error) {
				space := mem.NewSpace()
				a := tcmalloc.New(space, 2)
				th0 := vtime.Solo(space, 0, nil)
				th1 := vtime.Solo(space, 1, nil)

				t := Table{
					Title:   "16-byte allocation trace (2 threads, cold caches)",
					Columns: []string{"Step", "Thread", "Address", "Cache line", "Blocks transferred"},
				}
				type step struct {
					th    *vtime.Thread
					label string
				}
				// The paper's (1)..(4) sequence.
				seq := []step{
					{th0, "thread 1 malloc"},
					{th1, "thread 2 malloc"},
					{th0, "thread 1 malloc"},
					{th0, "thread 1 malloc"},
					{th1, "thread 2 malloc"},
					{th1, "thread 2 malloc"},
				}
				var prevRefills uint64
				for i, s := range seq {
					addr := a.Malloc(s.th, 16)
					refills := a.Stats().SlowRefills
					batch := "-"
					if refills != prevRefills {
						batch = fmt.Sprintf("refill #%d", refills)
					}
					prevRefills = refills
					t.Rows = append(t.Rows, []string{
						fmt.Sprintf("%d", i+1), s.label,
						fmt.Sprintf("%#x", uint64(addr)),
						fmt.Sprintf("%#x", uint64(addr)>>6),
						batch,
					})
				}
				notes := []string{
					"the first blocks of both threads are 16 bytes apart on one 64-byte line (false sharing)",
					"each refill transfers one block more than the previous one (incremental slow start)",
				}
				return &Result{ID: "fig2", Title: "TCMalloc adjacent-block handout", Tables: []Table{t}, Notes: notes}, nil
			})
		},
	})
}

// fig5: the mechanism illustration — ORT mapping of 16- vs 32-byte
// spaced nodes under shift 5.
func init() {
	Register(&Experiment{
		ID:    "fig5",
		Paper: "Figure 5: allocator block spacing vs the STM lock mapping (mechanism demo)",
		Plan: func(b *Builder) error {
			return planStatic(b, func() (*Result, error) {
				space := mem.NewSpace()
				st := stm.New(space, stm.Config{})
				base := mem.Addr(0x18000020)
				t := Table{
					Columns: []string{"Layout", "Node x", "Node y", "ORT entry x", "ORT entry y", "Conflict?"},
				}
				add := func(label string, x, y mem.Addr) {
					ix, iy := st.OrtIndex(x), st.OrtIndex(y)
					conflict := "no"
					if ix == iy {
						conflict = "YES (false)"
					}
					t.Rows = append(t.Rows, []string{
						label,
						fmt.Sprintf("%#x", uint64(x)), fmt.Sprintf("%#x", uint64(y)),
						fmt.Sprintf("%d", ix), fmt.Sprintf("%d", iy), conflict,
					})
				}
				add("Glibc (32-byte chunks)", base, base+32)
				add("Hoard/TBB/TCMalloc (16-byte blocks)", base, base+16)
				add("Glibc arenas 64MB apart", base, base+64<<20)
				return &Result{ID: "fig5", Title: "Lock-mapping interaction", Tables: []Table{t}}, nil
			})
		},
	})
}
