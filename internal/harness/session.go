package harness

import (
	"encoding/json"
	"fmt"

	"repro/internal/heapscope"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/stm"
	"repro/internal/sweep"
)

// Session runs experiments through the parallel sweep scheduler: every
// requested experiment is planned into cells, the union of all cells is
// scheduled once (so configurations shared between experiments — fig4
// and tab3, fig7 and fig8 — execute once), and each experiment reduces
// its own outcomes. Results are byte-identical for any Jobs value: the
// scheduler hands outcomes back in cell order, observability deltas
// merge in first-reference order, and reducers are plain serial code.
type Session struct {
	Spec *Spec
	Jobs int // host goroutine pool width; <= 1 runs serially

	// Cache memoizes finished cells on disk. Ignored (treated as nil)
	// when Spec.Obs is set: a cache hit cannot replay an event trace, so
	// observability implies execution.
	Cache *sweep.Cache
}

// ExperimentRun is one experiment's outcome within a session.
type ExperimentRun struct {
	ID         string
	Experiment *Experiment // nil when ID was unknown
	Result     *Result     // nil when Err is set
	Err        error
	Health     *Health
	Sweep      *obs.SweepInfo    // cell accounting for the run record
	Profile    *prof.Profile     // merged cycle attribution; nil when unprofiled
	Heap       *heapscope.Set    // per-cell telemetry series; nil when unwatched
	Recovery   *obs.RecoveryInfo // worst durable-memory verdict across cells; nil when pmem is off
	Pool       *obs.PoolInfo     // summed tx-pool traffic across cells; nil when every cell ran unpooled
	Race       *obs.RaceInfo     // summed race-checker verdict across cells; nil when unchecked
	Conflict   *obs.ConflictInfo // summed abort forensics across cells; nil when unobserved
}

// jobs returns the normalized pool width.
func (s *Session) jobs() int {
	if s.Jobs < 1 {
		return 1
	}
	return s.Jobs
}

// Run plans, schedules and reduces the experiments with the given ids,
// returning one ExperimentRun per id (in order) plus the scheduler
// statistics for the whole sweep.
func (s *Session) Run(ids []string) ([]*ExperimentRun, sweep.Stats) {
	if err := s.Spec.Validate(); err != nil {
		runs := make([]*ExperimentRun, len(ids))
		for i, id := range ids {
			runs[i] = &ExperimentRun{ID: id, Err: err}
		}
		return runs, sweep.Stats{}
	}

	type planned struct {
		run    *ExperimentRun
		b      *Builder
		lo, hi int // the plan's cell range in the concatenated slice
	}
	runs := make([]*ExperimentRun, len(ids))
	var cells []sweep.Cell
	var plans []*planned
	for i, id := range ids {
		er := &ExperimentRun{ID: id}
		runs[i] = er
		spec := s.Spec.child()
		er.Health = spec.Health
		e, ok := Get(id)
		if !ok {
			er.Err = fmt.Errorf("harness: unknown experiment %q", id)
			continue
		}
		er.Experiment = e
		b := &Builder{id: id, spec: spec}
		if err := planRecovered(e, b); err != nil {
			er.Err = err
			continue
		}
		p := &planned{run: er, b: b, lo: len(cells)}
		cells = append(cells, b.cells...)
		p.hi = len(cells)
		plans = append(plans, p)
	}

	cache := s.Cache
	if s.Spec.Obs != nil || s.Spec.Profile || s.Spec.Heap {
		cache = nil // observability, profiling and heap telemetry imply execution
	}
	if s.Spec.Crash != "" {
		// Crash cells bypass the cache: the acceptance gate is that
		// recovery actually runs and re-verifies its invariants, so a
		// cached verdict would be an unverified claim.
		cache = nil
	}
	if s.Spec.Race {
		// Race cells bypass the cache for the same reason: a clean
		// verdict must come from the checker observing the execution,
		// not from a record of some earlier run.
		cache = nil
	}
	if s.Spec.Conflict {
		// Conflict cells bypass the cache too: forensics describe the
		// aborts of an actual execution, never a replayed record.
		cache = nil
	}
	sched := sweep.Scheduler{Jobs: s.jobs(), Cache: cache}
	outs, stats := sched.Run(cells)

	// Deduplicated cells share one Outcome (and Delta pointer): merge
	// each distinct delta exactly once, at its first reference, so the
	// merged trace is identical to what a serial no-dedup run would
	// produce up to that sharing.
	merged := make(map[*obs.Delta]bool)
	profiled := make(map[*prof.Profile]bool)
	watched := make(map[*heapscope.Series]bool)
	for _, p := range plans {
		p.b.outs = outs[p.lo:p.hi]
		sw := &obs.SweepInfo{CellSet: sweep.CellSetHash(p.b.cells), Cells: len(p.b.cells)}
		var firstErr error
		var profiles []*prof.Profile
		var heapSet *heapscope.Set
		for _, o := range p.b.outs {
			switch {
			case o.Err != nil:
				if firstErr == nil {
					firstErr = o.Err
				}
				continue
			case o.Cached:
				sw.Cached++
			default:
				sw.Executed++
			}
			if o.Delta != nil && !merged[o.Delta] {
				merged[o.Delta] = true
				s.Spec.Obs.Apply(o.Delta)
			}
			if o.Profile != nil && !profiled[o.Profile] {
				profiled[o.Profile] = true
				profiles = append(profiles, o.Profile)
			}
			if o.Heap != nil && !watched[o.Heap] {
				// Deduplicated cells share one Outcome (and Series
				// pointer): each distinct series is collected exactly
				// once, at its first reference, in cell-index order.
				watched[o.Heap] = true
				if heapSet == nil {
					heapSet = heapscope.NewSet(p.run.ID)
				}
				heapSet.Add(o.Heap)
			}
			var ch CellHealth
			if json.Unmarshal(o.Payload, &ch) == nil {
				p.run.Health.Note(ch.Status, ch.Failure)
			}
			var rc struct {
				Recovery *obs.RecoveryInfo `json:"recovery"`
			}
			if json.Unmarshal(o.Payload, &rc) == nil && rc.Recovery != nil {
				// Keep the worst verdict (first cell wins ties), so the run
				// record surfaces the most damaged recovery of the sweep.
				cur := p.run.Recovery
				if cur == nil || statusRank(rc.Recovery.Verdict) > statusRank(cur.Verdict) {
					p.run.Recovery = rc.Recovery
				}
			}
			var pc struct {
				Pool *obs.PoolInfo `json:"pool"`
			}
			if json.Unmarshal(o.Payload, &pc) == nil && pc.Pool != nil {
				// Sum traffic across pooled cells; a sweep mixing
				// disciplines reports "mixed" rather than pretending one
				// policy produced the totals.
				cur := p.run.Pool
				if cur == nil {
					cp := *pc.Pool
					p.run.Pool = &cp
				} else {
					if cur.Discipline != pc.Pool.Discipline {
						cur.Discipline = "mixed"
					}
					cur.Hits += pc.Pool.Hits
					cur.Misses += pc.Pool.Misses
					cur.Returns += pc.Pool.Returns
					cur.Refills += pc.Pool.Refills
					cur.Slabs += pc.Pool.Slabs
					cur.SlabBytes += pc.Pool.SlabBytes
					cur.Held += pc.Pool.Held
				}
			}
			var rcc struct {
				Race *obs.RaceInfo `json:"race"`
			}
			if json.Unmarshal(o.Payload, &rcc) == nil && rcc.Race != nil {
				// Sum verdicts and coverage across checked cells; the
				// first cell with findings supplies the headline First.
				cur := p.run.Race
				if cur == nil {
					cp := *rcc.Race
					p.run.Race = &cp
				} else {
					cur.Findings += rcc.Race.Findings
					cur.Publication += rcc.Race.Publication
					cur.Privatization += rcc.Race.Privatization
					cur.Mixed += rcc.Race.Mixed
					cur.Metadata += rcc.Race.Metadata
					cur.QuarantineBypass += rcc.Race.QuarantineBypass
					cur.DurableOrdering += rcc.Race.DurableOrdering
					cur.Words += rcc.Race.Words
					cur.Blocks += rcc.Race.Blocks
					cur.Events += rcc.Race.Events
					if cur.First == "" {
						cur.First = rcc.Race.First
					}
				}
			}
			var cc struct {
				Conflict *obs.ConflictInfo `json:"conflict"`
			}
			if json.Unmarshal(o.Payload, &cc) == nil && cc.Conflict != nil {
				// Sum counters across observed cells; the first cell with
				// an exemplar supplies the headline First, and the chain
				// aggregate keeps the longest cascade of any cell.
				cur := p.run.Conflict
				if cur == nil {
					cp := *cc.Conflict
					p.run.Conflict = &cp
				} else {
					cur.Events += cc.Conflict.Events
					cur.TrueSharing += cc.Conflict.TrueSharing
					cur.FalseSharing += cc.Conflict.FalseSharing
					cur.StripeAlias += cc.Conflict.StripeAlias
					cur.Metadata += cc.Conflict.Metadata
					cur.Other += cc.Conflict.Other
					cur.WastedCycles += cc.Conflict.WastedCycles
					cur.WastedTrue += cc.Conflict.WastedTrue
					cur.WastedFalse += cc.Conflict.WastedFalse
					cur.WastedAlias += cc.Conflict.WastedAlias
					cur.WastedMeta += cc.Conflict.WastedMeta
					cur.WastedOther += cc.Conflict.WastedOther
					cur.SameLine += cc.Conflict.SameLine
					cur.CrossBlock += cc.Conflict.CrossBlock
					cur.Edges += cc.Conflict.Edges
					if cc.Conflict.LongestChain > cur.LongestChain {
						cur.LongestChain = cc.Conflict.LongestChain
					}
					if cc.Conflict.TopSiteWasted > cur.TopSiteWasted {
						cur.TopSite = cc.Conflict.TopSite
						cur.TopSiteWasted = cc.Conflict.TopSiteWasted
					}
					if cc.Conflict.TopOffenderHits > cur.TopOffenderHits {
						cur.TopOffender = cc.Conflict.TopOffender
						cur.TopOffenderHits = cc.Conflict.TopOffenderHits
					}
					if cur.First == "" {
						cur.First = cc.Conflict.First
					}
				}
			}
		}
		if len(profiles) > 0 {
			// Deduplicated cells share one Outcome (and Profile pointer):
			// like deltas, each distinct profile merges exactly once, at
			// its first reference, in cell-index order.
			p.run.Profile = prof.Merge(profiles...)
			p.run.Profile.Label = p.run.ID
		}
		p.run.Heap = heapSet
		p.run.Sweep = sw
		if firstErr != nil {
			p.run.Err = firstErr
			continue
		}
		p.run.Result, p.run.Err = reduceRecovered(p.b)
	}
	return runs, stats
}

// planRecovered runs the experiment's Plan with panic capture.
func planRecovered(e *Experiment, b *Builder) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("harness: planning %s panicked: %v", e.ID, r)
		}
	}()
	return e.Plan(b)
}

// reduceRecovered runs the plan's reducer with panic capture.
func reduceRecovered(b *Builder) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("harness: reducing %s panicked: %v", b.id, r)
		}
	}()
	if b.fn == nil {
		return nil, fmt.Errorf("harness: experiment %s installed no reducer", b.id)
	}
	return b.fn()
}

// Record converts one experiment run into the machine-readable v2 run
// artifact, attaching whatever the session's recorder collected.
func (s *Session) Record(run *ExperimentRun) *obs.RunRecord {
	rec := obs.NewRunRecord(run.ID)
	if run.Result != nil {
		rec.Title = run.Result.Title
	} else if run.Experiment != nil {
		rec.Title = run.Experiment.Paper
	}
	rec.Status = run.Health.Status()
	rec.Failure = run.Health.Failure()

	cfg := obs.RunConfig{Full: s.Spec.Full, Seed: s.Spec.seed()}
	if s.Spec.Reps != nil {
		cfg.Reps = *s.Spec.Reps
	}
	extra := map[string]string{}
	if s.Spec.CM != stm.CMSuicide {
		extra["cm"] = s.Spec.CM.String()
	}
	if s.Spec.RetryCap != nil {
		extra["retry_cap"] = fmt.Sprintf("%d", *s.Spec.RetryCap)
	}
	if s.Spec.Fault != "" {
		extra["fault"] = s.Spec.Fault
	}
	if s.Spec.Deadline != nil {
		extra["deadline"] = fmt.Sprintf("%d", *s.Spec.Deadline)
	}
	if s.Spec.Pmem {
		extra["pmem"] = "on"
	}
	if s.Spec.Crash != "" {
		extra["crash"] = s.Spec.Crash
	}
	if s.Spec.Pool != stm.PoolNone {
		extra["pool"] = s.Spec.Pool.String()
	}
	if len(extra) > 0 {
		cfg.Extra = extra
	}
	rec.Config = cfg

	if run.Sweep != nil {
		sw := *run.Sweep
		sw.Jobs = s.jobs()
		rec.Sweep = &sw
	}
	if r := run.Result; r != nil {
		for _, t := range r.Tables {
			rec.Tables = append(rec.Tables, obs.Table{Title: t.Title, Columns: t.Columns, Rows: t.Rows})
		}
		for _, sr := range r.Series {
			rec.Series = append(rec.Series, obs.Series{Label: sr.Label, X: sr.X, Y: sr.Y, Err: sr.Err})
		}
		rec.Notes = r.Notes
	}
	if run.Profile != nil {
		rec.Profile = run.Profile.Info()
	}
	if run.Heap != nil {
		rec.Heap = run.Heap.Info()
	}
	if run.Recovery != nil {
		r := *run.Recovery
		rec.Recovery = &r
	}
	if run.Pool != nil {
		p := *run.Pool
		rec.Pool = &p
	}
	if run.Race != nil {
		r := *run.Race
		rec.Race = &r
	}
	if run.Conflict != nil {
		c := *run.Conflict
		rec.Conflict = &c
	}
	rec.Attach(s.Spec.Obs)
	return rec
}

// RunExperiment runs a single experiment serially with no cache — the
// spec-level equivalent of the old monolithic Run entry point.
func RunExperiment(e *Experiment, spec *Spec) (*Result, error) {
	runs, _ := (&Session{Spec: spec}).Run([]string{e.ID})
	return runs[0].Result, runs[0].Err
}
