package harness

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Chart renders a Result's series as a simple ASCII line chart, giving
// the regenerated figures an actual figure. All series share one plot;
// each gets a distinct marker.
func Chart(w io.Writer, r *Result, width, height int) {
	if len(r.Series) == 0 {
		return
	}
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 16
	}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range r.Series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if minX == maxX {
		maxX = minX + 1
	}
	if minY == maxY {
		maxY = minY + 1
	}
	// A little headroom.
	pad := (maxY - minY) * 0.05
	minY -= pad
	maxY += pad

	markers := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	plot := func(x, y float64, m byte) {
		cx := int(math.Round((x - minX) / (maxX - minX) * float64(width-1)))
		cy := int(math.Round((y - minY) / (maxY - minY) * float64(height-1)))
		row := height - 1 - cy
		if row >= 0 && row < height && cx >= 0 && cx < width {
			if grid[row][cx] != ' ' && grid[row][cx] != m {
				grid[row][cx] = '?' // overlapping series
			} else {
				grid[row][cx] = m
			}
		}
	}
	for si, s := range r.Series {
		m := markers[si%len(markers)]
		// Connect points with linear interpolation for a line-ish look.
		for i := 1; i < len(s.X); i++ {
			steps := width / max(1, len(s.X)-1)
			for k := 0; k <= steps; k++ {
				f := float64(k) / float64(max(1, steps))
				plot(s.X[i-1]+(s.X[i]-s.X[i-1])*f, s.Y[i-1]+(s.Y[i]-s.Y[i-1])*f, m)
			}
		}
		for i := range s.X {
			plot(s.X[i], s.Y[i], m)
		}
	}

	fmt.Fprintf(w, "%s\n", r.Title)
	for i, row := range grid {
		label := "        "
		if i == 0 {
			label = fmt.Sprintf("%8.3g", maxY)
		} else if i == height-1 {
			label = fmt.Sprintf("%8.3g", minY)
		}
		fmt.Fprintf(w, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", width))
	fmt.Fprintf(w, "%s  %-8.3g%s%8.3g\n", strings.Repeat(" ", 8), minX,
		strings.Repeat(" ", max(0, width-16)), maxX)
	for si, s := range r.Series {
		fmt.Fprintf(w, "  %c %s\n", markers[si%len(markers)], s.Label)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
