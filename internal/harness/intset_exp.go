package harness

import (
	"fmt"

	"repro/internal/intset"
)

// intsetScale returns the workload parameters for the synthetic
// benchmark: the paper's 4096/8192 at full scale, a shape-preserving
// reduction otherwise.
func intsetScale(full bool, kind intset.Kind) (initial, keyRange, ops int) {
	if full {
		return 4096, 8192, 400
	}
	// The linked list is O(n) per operation; keep it smaller.
	if kind == intset.LinkedList {
		return 768, 1536, 120
	}
	return 2048, 4096, 300
}

func intsetThreads() []int { return []int{1, 2, 4, 6, 8} }

// intsetCfg builds the write-dominated synthetic configuration used by
// several experiments (so their cells hash — and dedupe — identically).
func intsetCfg(full bool, kind intset.Kind, aname string, threads int) intset.Config {
	initial, keyRange, ops := intsetScale(full, kind)
	return intset.Config{
		Kind:         kind,
		Allocator:    aname,
		Threads:      threads,
		InitialSize:  initial,
		KeyRange:     keyRange,
		UpdatePct:    60,
		OpsPerThread: ops,
	}
}

// fig4 (+tab3 data): throughput of the three structures across thread
// counts, write-dominated workload. Both experiments declare the same
// cells, so a session running both executes the sweep once.
func init() {
	Register(&Experiment{
		ID:    "fig4",
		Paper: "Figure 4: throughput of linked list / hashset / red-black tree (60% updates)",
		Plan:  func(b *Builder) error { return planFig4Tab3(b, "fig4") },
	})
	Register(&Experiment{
		ID:    "tab3",
		Paper: "Table 3: best and worst allocators per data structure (write-dominated)",
		Plan:  func(b *Builder) error { return planFig4Tab3(b, "tab3") },
	})
}

func planFig4Tab3(b *Builder, id string) error {
	reps := b.Reps(2, 5)
	kinds := intset.Kinds()
	threads := intsetThreads()
	sweeps := make([][][]IntsetSweep, len(kinds))
	for ki, kind := range kinds {
		sweeps[ki] = make([][]IntsetSweep, len(threads))
		for ni, n := range threads {
			sweeps[ki][ni] = make([]IntsetSweep, len(Allocators()))
			for ai, aname := range Allocators() {
				sweeps[ki][ni][ai] = b.IntsetSweep(intsetCfg(b.Spec().Full, kind, aname, n), reps)
			}
		}
	}
	b.Reduce(func() (*Result, error) {
		res := &Result{ID: id, Title: "Synthetic benchmark, 60% updates"}
		best := Table{
			Title:   "Best and worst allocators (Table 3)",
			Columns: []string{"Application", "Best", "Worst", "Perf. Diff.", "Threads"},
		}
		for ki, kind := range kinds {
			t := Table{Title: fmt.Sprintf("%s throughput (tx/s)", kind), Columns: []string{"Threads"}}
			for _, a := range Allocators() {
				t.Columns = append(t.Columns, DisplayName(a))
			}
			// peak[a] tracks each allocator's best throughput over thread
			// counts, as Table 3 compares maxima.
			peak := make([]float64, len(Allocators()))
			peakThreads := make([]int, len(Allocators()))
			series := make([]Series, len(Allocators()))
			for ai, a := range Allocators() {
				series[ai].Label = fmt.Sprintf("%s/%s", kind, DisplayName(a))
			}
			for ni, n := range threads {
				row := []string{fmt.Sprintf("%d", n)}
				for ai := range Allocators() {
					thr := sweeps[ki][ni][ai].Thr()
					row = append(row, fmt.Sprintf("%.3g", thr.Mean))
					series[ai].X = append(series[ai].X, float64(n))
					series[ai].Y = append(series[ai].Y, thr.Mean)
					series[ai].Err = append(series[ai].Err, thr.CI95)
					if thr.Mean > peak[ai] {
						peak[ai] = thr.Mean
						peakThreads[ai] = n
					}
				}
				t.Rows = append(t.Rows, row)
			}
			res.Tables = append(res.Tables, t)
			res.Series = append(res.Series, series...)

			bi, wi := bestWorst(peak, false)
			best.Rows = append(best.Rows, []string{
				string(kind),
				DisplayName(Allocators()[bi]),
				DisplayName(Allocators()[wi]),
				fmt.Sprintf("%.2f%%", pctDiff(peak[bi], peak[wi])),
				fmt.Sprintf("%d", peakThreads[bi]),
			})
		}
		res.Tables = append(res.Tables, best)
		return res, nil
	})
	return nil
}

// tab4: percentage of aborted transactions and L1 miss ratio for the
// sorted linked list.
func init() {
	Register(&Experiment{
		ID:    "tab4",
		Paper: "Table 4: aborted transactions and L1 data misses (sorted linked list, 60% updates)",
		Plan: func(b *Builder) error {
			reps := b.Reps(1, 3)
			threads := intsetThreads()
			sweeps := make([][]IntsetSweep, len(threads))
			for ni, n := range threads {
				sweeps[ni] = make([]IntsetSweep, len(Allocators()))
				for ai, aname := range Allocators() {
					sweeps[ni][ai] = b.IntsetSweep(intsetCfg(b.Spec().Full, intset.LinkedList, aname, n), reps)
				}
			}
			b.Reduce(func() (*Result, error) {
				t := Table{Columns: []string{"#P"}}
				for _, a := range Allocators() {
					t.Columns = append(t.Columns, DisplayName(a)+" aborts", DisplayName(a)+" L1miss")
				}
				for ni, n := range threads {
					row := []string{fmt.Sprintf("%d", n)}
					for ai := range Allocators() {
						abort, l1 := sweeps[ni][ai].Abort(), sweeps[ni][ai].L1()
						row = append(row, fmt.Sprintf("%04.1f%%", abort.Mean*100), fmt.Sprintf("%.1f%%", l1.Mean*100))
					}
					t.Rows = append(t.Rows, row)
				}
				return &Result{
					ID:     "tab4",
					Title:  "Linked-list abort and L1 miss rates",
					Tables: []Table{t},
					Notes: []string{
						"expected shape: Glibc fewest aborts (32-byte spacing dodges stripe sharing)",
						"but the highest L1 miss ratio (halved cache density).",
					},
				}, nil
			})
			return nil
		},
	})
}

// fig6: relative speedup of shift 4 over shift 5 for the linked list.
func init() {
	Register(&Experiment{
		ID:    "fig6",
		Paper: "Figure 6: relative speedup (-1) of the linked list with shift 4 vs shift 5",
		Plan: func(b *Builder) error {
			reps := b.Reps(1, 3)
			threads := intsetThreads()
			type pair struct{ s5, s4 IntsetSweep }
			sweeps := make([][]pair, len(threads))
			for ni, n := range threads {
				sweeps[ni] = make([]pair, len(Allocators()))
				for ai, aname := range Allocators() {
					base := intsetCfg(b.Spec().Full, intset.LinkedList, aname, n)
					s5 := base
					s5.Shift = 5
					s4 := base
					s4.Shift = 4
					sweeps[ni][ai] = pair{s5: b.IntsetSweep(s5, reps), s4: b.IntsetSweep(s4, reps)}
				}
			}
			b.Reduce(func() (*Result, error) {
				t := Table{Columns: []string{"Threads"}}
				for _, a := range Allocators() {
					t.Columns = append(t.Columns, DisplayName(a))
				}
				series := make([]Series, len(Allocators()))
				for ai, a := range Allocators() {
					series[ai].Label = DisplayName(a)
				}
				for ni, n := range threads {
					row := []string{fmt.Sprintf("%d", n)}
					for ai := range Allocators() {
						t5, t4 := sweeps[ni][ai].s5.Thr(), sweeps[ni][ai].s4.Thr()
						rel := t4.Mean/t5.Mean - 1
						row = append(row, fmt.Sprintf("%+.3f", rel))
						series[ai].X = append(series[ai].X, float64(n))
						series[ai].Y = append(series[ai].Y, rel)
					}
					t.Rows = append(t.Rows, row)
				}
				return &Result{
					ID:     "fig6",
					Title:  "Shift-amount sensitivity (speedup-1 of shift 4 over shift 5)",
					Tables: []Table{t},
					Series: series,
					Notes: []string{
						"expected shape: negative for Glibc (nothing to gain, extra ORT pressure);",
						"positive at higher thread counts for the 16-byte allocators.",
					},
				}, nil
			})
			return nil
		},
	})
}
