package harness

import (
	"fmt"

	"repro/internal/intset"
	"repro/internal/sim"
)

// intsetScale returns the workload parameters for the synthetic
// benchmark: the paper's 4096/8192 at full scale, a shape-preserving
// reduction otherwise.
func intsetScale(full bool, kind intset.Kind) (initial, keyRange, ops int) {
	if full {
		return 4096, 8192, 400
	}
	// The linked list is O(n) per operation; keep it smaller.
	if kind == intset.LinkedList {
		return 768, 1536, 120
	}
	return 2048, 4096, 300
}

func intsetThreads() []int { return []int{1, 2, 4, 6, 8} }

// runIntset executes reps repetitions and returns summarized
// throughput (tx/s), abort rate and L1 miss ratio.
func runIntset(cfg intset.Config, reps int, opts Options) (thr, abort, l1 sim.Summary, err error) {
	cfg.Obs = opts.Obs
	cfg.CM, err = opts.stmCM()
	if err != nil {
		return thr, abort, l1, err
	}
	cfg.RetryCap = opts.RetryCap
	cfg.Fault = opts.Fault
	cfg.Deadline = opts.Deadline
	var ths, abs, l1s []float64
	for r := 0; r < reps; r++ {
		cfg.Seed = opts.seed() + uint64(r)*7919
		res, e := intset.Run(cfg)
		if e != nil {
			return thr, abort, l1, e
		}
		opts.Health.Note(res.Status, res.Failure)
		ths = append(ths, res.Throughput)
		abs = append(abs, res.Tx.AbortRate())
		l1s = append(l1s, res.L1Miss)
	}
	return sim.Summarize(ths), sim.Summarize(abs), sim.Summarize(l1s), nil
}

// fig4 (+tab3 data): throughput of the three structures across thread
// counts, write-dominated workload.
func init() {
	Register(&Experiment{
		ID:    "fig4",
		Paper: "Figure 4: throughput of linked list / hashset / red-black tree (60% updates)",
		Run:   func(opts Options) (*Result, error) { return runFig4Tab3(opts, "fig4") },
	})
	Register(&Experiment{
		ID:    "tab3",
		Paper: "Table 3: best and worst allocators per data structure (write-dominated)",
		Run:   func(opts Options) (*Result, error) { return runFig4Tab3(opts, "tab3") },
	})
}

func runFig4Tab3(opts Options, id string) (*Result, error) {
	reps := opts.reps(2, 5)
	res := &Result{ID: id, Title: "Synthetic benchmark, 60% updates"}
	best := Table{
		Title:   "Best and worst allocators (Table 3)",
		Columns: []string{"Application", "Best", "Worst", "Perf. Diff.", "Threads"},
	}
	for _, kind := range intset.Kinds() {
		initial, keyRange, ops := intsetScale(opts.Full, kind)
		t := Table{Title: fmt.Sprintf("%s throughput (tx/s)", kind), Columns: []string{"Threads"}}
		for _, a := range Allocators() {
			t.Columns = append(t.Columns, DisplayName(a))
		}
		// peak[a] tracks each allocator's best throughput over thread
		// counts, as Table 3 compares maxima.
		peak := make([]float64, len(Allocators()))
		peakThreads := make([]int, len(Allocators()))
		series := make([]Series, len(Allocators()))
		for ai, a := range Allocators() {
			series[ai].Label = fmt.Sprintf("%s/%s", kind, DisplayName(a))
		}
		for _, n := range intsetThreads() {
			row := []string{fmt.Sprintf("%d", n)}
			for ai, aname := range Allocators() {
				thr, _, _, err := runIntset(intset.Config{
					Kind:         kind,
					Allocator:    aname,
					Threads:      n,
					InitialSize:  initial,
					KeyRange:     keyRange,
					UpdatePct:    60,
					OpsPerThread: ops,
				}, reps, opts)
				if err != nil {
					return nil, err
				}
				row = append(row, fmt.Sprintf("%.3g", thr.Mean))
				series[ai].X = append(series[ai].X, float64(n))
				series[ai].Y = append(series[ai].Y, thr.Mean)
				series[ai].Err = append(series[ai].Err, thr.CI95)
				if thr.Mean > peak[ai] {
					peak[ai] = thr.Mean
					peakThreads[ai] = n
				}
			}
			t.Rows = append(t.Rows, row)
		}
		res.Tables = append(res.Tables, t)
		res.Series = append(res.Series, series...)

		b, w := bestWorst(peak, false)
		best.Rows = append(best.Rows, []string{
			string(kind),
			DisplayName(Allocators()[b]),
			DisplayName(Allocators()[w]),
			fmt.Sprintf("%.2f%%", pctDiff(peak[b], peak[w])),
			fmt.Sprintf("%d", peakThreads[b]),
		})
	}
	res.Tables = append(res.Tables, best)
	return res, nil
}

// tab4: percentage of aborted transactions and L1 miss ratio for the
// sorted linked list.
func init() {
	Register(&Experiment{
		ID:    "tab4",
		Paper: "Table 4: aborted transactions and L1 data misses (sorted linked list, 60% updates)",
		Run: func(opts Options) (*Result, error) {
			initial, keyRange, ops := intsetScale(opts.Full, intset.LinkedList)
			reps := opts.reps(1, 3)
			t := Table{Columns: []string{"#P"}}
			for _, a := range Allocators() {
				t.Columns = append(t.Columns, DisplayName(a)+" aborts", DisplayName(a)+" L1miss")
			}
			for _, n := range intsetThreads() {
				row := []string{fmt.Sprintf("%d", n)}
				for _, aname := range Allocators() {
					_, abort, l1, err := runIntset(intset.Config{
						Kind:         intset.LinkedList,
						Allocator:    aname,
						Threads:      n,
						InitialSize:  initial,
						KeyRange:     keyRange,
						UpdatePct:    60,
						OpsPerThread: ops,
					}, reps, opts)
					if err != nil {
						return nil, err
					}
					row = append(row, fmt.Sprintf("%04.1f%%", abort.Mean*100), fmt.Sprintf("%.1f%%", l1.Mean*100))
				}
				t.Rows = append(t.Rows, row)
			}
			return &Result{
				ID:     "tab4",
				Title:  "Linked-list abort and L1 miss rates",
				Tables: []Table{t},
				Notes: []string{
					"expected shape: Glibc fewest aborts (32-byte spacing dodges stripe sharing)",
					"but the highest L1 miss ratio (halved cache density).",
				},
			}, nil
		},
	})
}

// fig6: relative speedup of shift 4 over shift 5 for the linked list.
func init() {
	Register(&Experiment{
		ID:    "fig6",
		Paper: "Figure 6: relative speedup (-1) of the linked list with shift 4 vs shift 5",
		Run: func(opts Options) (*Result, error) {
			initial, keyRange, ops := intsetScale(opts.Full, intset.LinkedList)
			reps := opts.reps(1, 3)
			t := Table{Columns: []string{"Threads"}}
			for _, a := range Allocators() {
				t.Columns = append(t.Columns, DisplayName(a))
			}
			series := make([]Series, len(Allocators()))
			for ai, a := range Allocators() {
				series[ai].Label = DisplayName(a)
			}
			for _, n := range intsetThreads() {
				row := []string{fmt.Sprintf("%d", n)}
				for ai, aname := range Allocators() {
					base := intset.Config{
						Kind:         intset.LinkedList,
						Allocator:    aname,
						Threads:      n,
						InitialSize:  initial,
						KeyRange:     keyRange,
						UpdatePct:    60,
						OpsPerThread: ops,
					}
					s5 := base
					s5.Shift = 5
					t5, _, _, err := runIntset(s5, reps, opts)
					if err != nil {
						return nil, err
					}
					s4 := base
					s4.Shift = 4
					t4, _, _, err := runIntset(s4, reps, opts)
					if err != nil {
						return nil, err
					}
					rel := t4.Mean/t5.Mean - 1
					row = append(row, fmt.Sprintf("%+.3f", rel))
					series[ai].X = append(series[ai].X, float64(n))
					series[ai].Y = append(series[ai].Y, rel)
				}
				t.Rows = append(t.Rows, row)
			}
			return &Result{
				ID:     "fig6",
				Title:  "Shift-amount sensitivity (speedup-1 of shift 4 over shift 5)",
				Tables: []Table{t},
				Series: series,
				Notes: []string{
					"expected shape: negative for Glibc (nothing to gain, extra ORT pressure);",
					"positive at higher thread counts for the 16-byte allocators.",
				},
			}, nil
		},
	})
}
