package harness

import (
	"fmt"
	"io"
	"strings"
)

// PrintMarkdown renders a result as GitHub-flavoured markdown, for
// pasting into EXPERIMENTS.md-style documents.
func PrintMarkdown(w io.Writer, r *Result) {
	fmt.Fprintf(w, "## %s — %s\n", r.ID, r.Title)
	for _, t := range r.Tables {
		if t.Title != "" {
			fmt.Fprintf(w, "\n**%s**\n", t.Title)
		}
		fmt.Fprintf(w, "\n| %s |\n", strings.Join(t.Columns, " | "))
		fmt.Fprintf(w, "|%s\n", strings.Repeat("---|", len(t.Columns)))
		for _, row := range t.Rows {
			fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
		}
	}
	for _, s := range r.Series {
		fmt.Fprintf(w, "\n**series %s**\n\n| x | y |\n|---|---|\n", s.Label)
		for i := range s.X {
			if len(s.Err) == len(s.X) && s.Err[i] != 0 {
				fmt.Fprintf(w, "| %g | %.4g ± %.2g |\n", s.X[i], s.Y[i], s.Err[i])
			} else {
				fmt.Fprintf(w, "| %g | %.4g |\n", s.X[i], s.Y[i])
			}
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "\n> %s\n", n)
	}
	fmt.Fprintln(w)
}
