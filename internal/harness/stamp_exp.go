package harness

import (
	"fmt"

	_ "repro/internal/stamp/bayes"
	_ "repro/internal/stamp/genome"
	_ "repro/internal/stamp/intruder"
	_ "repro/internal/stamp/kmeans"
	_ "repro/internal/stamp/labyrinth"
	_ "repro/internal/stamp/ssca2"
	_ "repro/internal/stamp/vacation"
	_ "repro/internal/stamp/yada"

	"repro/internal/sim"
	"repro/internal/stamp"
)

// figApps are the six applications of Figure 7 (Kmeans and SSCA2 are
// dropped there, as in the paper, for being allocator-insensitive).
func figApps() []string {
	return []string{"bayes", "genome", "intruder", "labyrinth", "vacation", "yada"}
}

func stampThreads() []int { return []int{1, 2, 4, 8} }

func stampScale(full bool) stamp.Scale {
	if full {
		return stamp.Ref
	}
	return stamp.Quick
}

// runStamp executes reps repetitions and summarizes the parallel-phase
// execution time in modelled milliseconds.
func runStamp(cfg stamp.Config, reps int, opts Options) (sim.Summary, stamp.Result, error) {
	cfg.Obs = opts.Obs
	cm, err := opts.stmCM()
	if err != nil {
		return sim.Summary{}, stamp.Result{}, err
	}
	cfg.CM = cm
	cfg.RetryCap = opts.RetryCap
	cfg.Fault = opts.Fault
	cfg.Deadline = opts.Deadline
	var times []float64
	var last stamp.Result
	for r := 0; r < reps; r++ {
		cfg.Seed = opts.seed() + uint64(r)*104729
		res, err := stamp.Run(cfg)
		if err != nil {
			return sim.Summary{}, last, err
		}
		opts.Health.Note(res.Status, res.Failure)
		times = append(times, res.Seconds*1e3)
		last = res
	}
	return sim.Summarize(times), last, nil
}

// fig1: the motivation figure — Intruder and Yada at 8 threads with
// Glibc vs Hoard.
func init() {
	Register(&Experiment{
		ID:    "fig1",
		Paper: "Figure 1: influence of allocators on Intruder and Yada (8 cores, Glibc vs Hoard)",
		Run: func(opts Options) (*Result, error) {
			reps := opts.reps(2, 5)
			t := Table{Columns: []string{"Application", "Glibc (ms)", "Hoard (ms)", "Winner"}}
			for _, app := range []string{"intruder", "yada"} {
				var means [2]float64
				row := []string{app}
				for i, aname := range []string{"glibc", "hoard"} {
					s, _, err := runStamp(stamp.Config{
						App: app, Allocator: aname, Threads: 8, Scale: stampScale(opts.Full),
					}, reps, opts)
					if err != nil {
						return nil, err
					}
					means[i] = s.Mean
					row = append(row, fmt.Sprintf("%.3g ± %.2g", s.Mean, s.CI95))
				}
				winner := "Glibc"
				if means[1] < means[0] {
					winner = "Hoard"
				}
				row = append(row, winner)
				t.Rows = append(t.Rows, row)
			}
			return &Result{
				ID:     "fig1",
				Title:  "Motivation: the best-performing allocator changes between applications",
				Tables: []Table{t},
				Notes:  []string{"paper: Glibc wins Intruder, Hoard wins Yada (both at 8 cores)"},
			}, nil
		},
	})
}

// tab5: the allocation characterization, from instrumented sequential
// runs (as in the paper).
func init() {
	Register(&Experiment{
		ID:    "tab5",
		Paper: "Table 5: characterization of memory allocations of the STAMP benchmark",
		Run: func(opts Options) (*Result, error) {
			res := &Result{ID: "tab5", Title: "Allocation profile per app, region and size class (sequential run)"}
			t := Table{Columns: []string{"App", "Region", "<=16", "<=32", "<=48", "<=64", "<=96", "<=128", "<=256", ">256", "#mallocs", "#frees", "bytes"}}
			cm, err := opts.stmCM()
			if err != nil {
				return nil, err
			}
			for _, app := range stamp.Names() {
				out, err := stamp.Run(stamp.Config{
					App: app, Allocator: "tbb", Threads: 1, Scale: stampScale(opts.Full),
					Profile: true, Seed: opts.seed(),
					CM: cm, RetryCap: opts.RetryCap, Fault: opts.Fault, Deadline: opts.Deadline,
				})
				if err != nil {
					return nil, err
				}
				opts.Health.Note(out.Status, out.Failure)
				p := out.Profile
				if p == nil { // run wound down (watchdog / captured panic) before profiling finished
					t.Rows = append(t.Rows, []string{app, "(" + out.Status + ")", "", "", "", "", "", "", "", "", "", "", ""})
					continue
				}
				for _, reg := range []stamp.Region{stamp.RegionSeq, stamp.RegionPar, stamp.RegionTx} {
					row := []string{app, reg.String()}
					for b := 0; b < 8; b++ {
						row = append(row, fmt.Sprintf("%d", p.Counts[reg][b]))
					}
					row = append(row,
						fmt.Sprintf("%d", p.Mallocs[reg]),
						fmt.Sprintf("%d", p.Frees[reg]),
						fmt.Sprintf("%d", p.Bytes[reg]))
					t.Rows = append(t.Rows, row)
				}
			}
			res.Tables = []Table{t}
			res.Notes = []string{
				"expected shapes: kmeans & ssca2 allocate only in seq; genome's tx allocs all <=16B;",
				"intruder allocates in tx and frees in par (privatization); yada heaviest tx churn.",
			}
			return res, nil
		},
	})
}

// fig7 + tab6: STAMP execution times per allocator and the best/worst
// summary.
func init() {
	Register(&Experiment{
		ID:    "fig7",
		Paper: "Figure 7: execution time with different allocators for the STAMP applications",
		Run:   func(opts Options) (*Result, error) { return runFig7Tab6(opts, "fig7") },
	})
	Register(&Experiment{
		ID:    "tab6",
		Paper: "Table 6: best and worst allocators for each STAMP application",
		Run:   func(opts Options) (*Result, error) { return runFig7Tab6(opts, "tab6") },
	})
}

func runFig7Tab6(opts Options, id string) (*Result, error) {
	reps := opts.reps(2, 5)
	res := &Result{ID: id, Title: "STAMP execution time (modelled ms)"}
	best := Table{
		Title:   "Best and worst allocators (Table 6)",
		Columns: []string{"Application", "Best", "Worst", "Perf. Diff.", "Threads"},
	}
	for _, app := range figApps() {
		t := Table{Title: app, Columns: []string{"Threads"}}
		for _, a := range Allocators() {
			t.Columns = append(t.Columns, DisplayName(a))
		}
		series := make([]Series, len(Allocators()))
		// Track each allocator's best (minimum) time and where.
		bestTime := make([]float64, len(Allocators()))
		bestThreads := make([]int, len(Allocators()))
		for ai, a := range Allocators() {
			series[ai].Label = fmt.Sprintf("%s/%s", app, DisplayName(a))
		}
		for _, n := range stampThreads() {
			row := []string{fmt.Sprintf("%d", n)}
			for ai, aname := range Allocators() {
				s, _, err := runStamp(stamp.Config{
					App: app, Allocator: aname, Threads: n, Scale: stampScale(opts.Full),
				}, reps, opts)
				if err != nil {
					return nil, err
				}
				row = append(row, fmt.Sprintf("%.3g", s.Mean))
				series[ai].X = append(series[ai].X, float64(n))
				series[ai].Y = append(series[ai].Y, s.Mean)
				series[ai].Err = append(series[ai].Err, s.CI95)
				if bestTime[ai] == 0 || s.Mean < bestTime[ai] {
					bestTime[ai] = s.Mean
					bestThreads[ai] = n
				}
			}
			t.Rows = append(t.Rows, row)
		}
		res.Tables = append(res.Tables, t)
		res.Series = append(res.Series, series...)

		b, w := bestWorst(bestTime, true)
		best.Rows = append(best.Rows, []string{
			app,
			DisplayName(Allocators()[b]),
			DisplayName(Allocators()[w]),
			fmt.Sprintf("%.1f%%", pctDiff(bestTime[b], bestTime[w])),
			fmt.Sprintf("%d", bestThreads[b]),
		})
	}
	res.Tables = append(res.Tables, best)
	return res, nil
}

// fig8: speedup curves for Genome and Yada.
func init() {
	Register(&Experiment{
		ID:    "fig8",
		Paper: "Figure 8: speedup curves for Genome and Yada with different allocators",
		Run: func(opts Options) (*Result, error) {
			reps := opts.reps(2, 5)
			res := &Result{ID: "fig8", Title: "Speedup over each allocator's own 1-thread run"}
			for _, app := range []string{"genome", "yada"} {
				t := Table{Title: app, Columns: []string{"Threads"}}
				for _, a := range Allocators() {
					t.Columns = append(t.Columns, DisplayName(a))
				}
				base := make([]float64, len(Allocators()))
				var rows [][]string
				series := make([]Series, len(Allocators()))
				for ai, a := range Allocators() {
					series[ai].Label = fmt.Sprintf("%s/%s", app, DisplayName(a))
				}
				for _, n := range stampThreads() {
					row := []string{fmt.Sprintf("%d", n)}
					for ai, aname := range Allocators() {
						s, _, err := runStamp(stamp.Config{
							App: app, Allocator: aname, Threads: n, Scale: stampScale(opts.Full),
						}, reps, opts)
						if err != nil {
							return nil, err
						}
						if n == 1 {
							base[ai] = s.Mean
						}
						sp := base[ai] / s.Mean
						row = append(row, fmt.Sprintf("%.2f", sp))
						series[ai].X = append(series[ai].X, float64(n))
						series[ai].Y = append(series[ai].Y, sp)
					}
					rows = append(rows, row)
				}
				t.Rows = rows
				res.Tables = append(res.Tables, t)
				res.Series = append(res.Series, series...)
			}
			res.Notes = []string{
				"paper: Genome's Glibc speedup looks best only because its 1-thread run is slow;",
				"Yada does not scale under Glibc while it does under the others.",
			}
			return res, nil
		},
	})
}

// tab7: gains from the STM-level transactional-object caching
// optimization.
func init() {
	Register(&Experiment{
		ID:    "tab7",
		Paper: "Table 7: performance gains with tx-object caching optimizations (8 threads)",
		Run: func(opts Options) (*Result, error) {
			reps := opts.reps(2, 5)
			apps := []string{"genome", "intruder", "vacation", "yada"}
			t := Table{Columns: []string{"App"}}
			for _, a := range Allocators() {
				t.Columns = append(t.Columns, DisplayName(a))
			}
			for _, app := range apps {
				row := []string{app}
				for _, aname := range Allocators() {
					off, _, err := runStamp(stamp.Config{
						App: app, Allocator: aname, Threads: 8, Scale: stampScale(opts.Full),
					}, reps, opts)
					if err != nil {
						return nil, err
					}
					on, _, err := runStamp(stamp.Config{
						App: app, Allocator: aname, Threads: 8, Scale: stampScale(opts.Full),
						CacheTx: true,
					}, reps, opts)
					if err != nil {
						return nil, err
					}
					gain := (off.Mean - on.Mean) / off.Mean * 100
					row = append(row, fmt.Sprintf("%+.2f%%", gain))
				}
				t.Rows = append(t.Rows, row)
			}
			return &Result{
				ID:     "tab7",
				Title:  "Gain from caching transactional objects at the STM level",
				Tables: []Table{t},
				Notes: []string{
					"expected shape: largest gains where the allocator lacks thread-private caching",
					"(Glibc) and the app churns tx memory (Yada); ~neutral for TBB/TCMalloc.",
				},
			}, nil
		},
	})
}
