package harness

import (
	"fmt"

	_ "repro/internal/stamp/bayes"
	_ "repro/internal/stamp/genome"
	_ "repro/internal/stamp/intruder"
	_ "repro/internal/stamp/kmeans"
	_ "repro/internal/stamp/labyrinth"
	_ "repro/internal/stamp/ssca2"
	_ "repro/internal/stamp/vacation"
	_ "repro/internal/stamp/yada"

	"repro/internal/stamp"
)

// figApps are the six applications of Figure 7 (Kmeans and SSCA2 are
// dropped there, as in the paper, for being allocator-insensitive).
func figApps() []string {
	return []string{"bayes", "genome", "intruder", "labyrinth", "vacation", "yada"}
}

func stampThreads() []int { return []int{1, 2, 4, 8} }

func stampScale(full bool) stamp.Scale {
	if full {
		return stamp.Ref
	}
	return stamp.Quick
}

// stampCfg builds the plain timed configuration shared by the STAMP
// experiments, so overlapping sweeps (fig7/fig8/tab7) dedupe.
func stampCfg(full bool, app, aname string, threads int) stamp.Config {
	return stamp.Config{App: app, Allocator: aname, Threads: threads, Scale: stampScale(full)}
}

// fig1: the motivation figure — Intruder and Yada at 8 threads with
// Glibc vs Hoard.
func init() {
	Register(&Experiment{
		ID:    "fig1",
		Paper: "Figure 1: influence of allocators on Intruder and Yada (8 cores, Glibc vs Hoard)",
		Plan: func(b *Builder) error {
			reps := b.Reps(2, 5)
			apps := []string{"intruder", "yada"}
			allocs := []string{"glibc", "hoard"}
			sweeps := make([][]StampSweep, len(apps))
			for pi, app := range apps {
				sweeps[pi] = make([]StampSweep, len(allocs))
				for ai, aname := range allocs {
					sweeps[pi][ai] = b.StampSweep(stampCfg(b.Spec().Full, app, aname, 8), reps)
				}
			}
			b.Reduce(func() (*Result, error) {
				t := Table{Columns: []string{"Application", "Glibc (ms)", "Hoard (ms)", "Winner"}}
				for pi, app := range apps {
					var means [2]float64
					row := []string{app}
					for ai := range allocs {
						s := sweeps[pi][ai].Ms()
						means[ai] = s.Mean
						row = append(row, fmt.Sprintf("%.3g ± %.2g", s.Mean, s.CI95))
					}
					winner := "Glibc"
					if means[1] < means[0] {
						winner = "Hoard"
					}
					row = append(row, winner)
					t.Rows = append(t.Rows, row)
				}
				return &Result{
					ID:     "fig1",
					Title:  "Motivation: the best-performing allocator changes between applications",
					Tables: []Table{t},
					Notes:  []string{"paper: Glibc wins Intruder, Hoard wins Yada (both at 8 cores)"},
				}, nil
			})
			return nil
		},
	})
}

// tab5: the allocation characterization, from instrumented sequential
// runs (as in the paper).
func init() {
	Register(&Experiment{
		ID:    "tab5",
		Paper: "Table 5: characterization of memory allocations of the STAMP benchmark",
		Plan: func(b *Builder) error {
			apps := stamp.Names()
			probes := make([]Handle[StampProbe], len(apps))
			for pi, app := range apps {
				cfg := stampCfg(b.Spec().Full, app, "tbb", 1)
				cfg.Profile = true
				probes[pi] = b.StampProbeCell(cfg)
			}
			b.Reduce(func() (*Result, error) {
				res := &Result{ID: "tab5", Title: "Allocation profile per app, region and size class (sequential run)"}
				t := Table{Columns: []string{"App", "Region", "<=16", "<=32", "<=48", "<=64", "<=96", "<=128", "<=256", ">256", "#mallocs", "#frees", "bytes"}}
				for pi, app := range apps {
					out := probes[pi].Get()
					p := out.Profile
					if p == nil { // run wound down (watchdog / captured panic) before profiling finished
						t.Rows = append(t.Rows, []string{app, "(" + out.Status + ")", "", "", "", "", "", "", "", "", "", "", ""})
						continue
					}
					for _, reg := range []stamp.Region{stamp.RegionSeq, stamp.RegionPar, stamp.RegionTx} {
						row := []string{app, reg.String()}
						for bk := 0; bk < 8; bk++ {
							row = append(row, fmt.Sprintf("%d", p.Counts[reg][bk]))
						}
						row = append(row,
							fmt.Sprintf("%d", p.Mallocs[reg]),
							fmt.Sprintf("%d", p.Frees[reg]),
							fmt.Sprintf("%d", p.Bytes[reg]))
						t.Rows = append(t.Rows, row)
					}
				}
				res.Tables = []Table{t}
				res.Notes = []string{
					"expected shapes: kmeans & ssca2 allocate only in seq; genome's tx allocs all <=16B;",
					"intruder allocates in tx and frees in par (privatization); yada heaviest tx churn.",
				}
				return res, nil
			})
			return nil
		},
	})
}

// fig7 + tab6: STAMP execution times per allocator and the best/worst
// summary. Both declare the same cells, so a session running both (or
// fig8 / tab7, whose sweeps overlap) executes each configuration once.
func init() {
	Register(&Experiment{
		ID:    "fig7",
		Paper: "Figure 7: execution time with different allocators for the STAMP applications",
		Plan:  func(b *Builder) error { return planFig7Tab6(b, "fig7") },
	})
	Register(&Experiment{
		ID:    "tab6",
		Paper: "Table 6: best and worst allocators for each STAMP application",
		Plan:  func(b *Builder) error { return planFig7Tab6(b, "tab6") },
	})
}

func planFig7Tab6(b *Builder, id string) error {
	reps := b.Reps(2, 5)
	apps := figApps()
	threads := stampThreads()
	sweeps := make([][][]StampSweep, len(apps))
	for pi, app := range apps {
		sweeps[pi] = make([][]StampSweep, len(threads))
		for ni, n := range threads {
			sweeps[pi][ni] = make([]StampSweep, len(Allocators()))
			for ai, aname := range Allocators() {
				sweeps[pi][ni][ai] = b.StampSweep(stampCfg(b.Spec().Full, app, aname, n), reps)
			}
		}
	}
	b.Reduce(func() (*Result, error) {
		res := &Result{ID: id, Title: "STAMP execution time (modelled ms)"}
		best := Table{
			Title:   "Best and worst allocators (Table 6)",
			Columns: []string{"Application", "Best", "Worst", "Perf. Diff.", "Threads"},
		}
		for pi, app := range apps {
			t := Table{Title: app, Columns: []string{"Threads"}}
			for _, a := range Allocators() {
				t.Columns = append(t.Columns, DisplayName(a))
			}
			series := make([]Series, len(Allocators()))
			// Track each allocator's best (minimum) time and where.
			bestTime := make([]float64, len(Allocators()))
			bestThreads := make([]int, len(Allocators()))
			for ai, a := range Allocators() {
				series[ai].Label = fmt.Sprintf("%s/%s", app, DisplayName(a))
			}
			for ni, n := range threads {
				row := []string{fmt.Sprintf("%d", n)}
				for ai := range Allocators() {
					s := sweeps[pi][ni][ai].Ms()
					row = append(row, fmt.Sprintf("%.3g", s.Mean))
					series[ai].X = append(series[ai].X, float64(n))
					series[ai].Y = append(series[ai].Y, s.Mean)
					series[ai].Err = append(series[ai].Err, s.CI95)
					if bestTime[ai] == 0 || s.Mean < bestTime[ai] {
						bestTime[ai] = s.Mean
						bestThreads[ai] = n
					}
				}
				t.Rows = append(t.Rows, row)
			}
			res.Tables = append(res.Tables, t)
			res.Series = append(res.Series, series...)

			bi, wi := bestWorst(bestTime, true)
			best.Rows = append(best.Rows, []string{
				app,
				DisplayName(Allocators()[bi]),
				DisplayName(Allocators()[wi]),
				fmt.Sprintf("%.1f%%", pctDiff(bestTime[bi], bestTime[wi])),
				fmt.Sprintf("%d", bestThreads[bi]),
			})
		}
		res.Tables = append(res.Tables, best)
		return res, nil
	})
	return nil
}

// fig8: speedup curves for Genome and Yada.
func init() {
	Register(&Experiment{
		ID:    "fig8",
		Paper: "Figure 8: speedup curves for Genome and Yada with different allocators",
		Plan: func(b *Builder) error {
			reps := b.Reps(2, 5)
			apps := []string{"genome", "yada"}
			threads := stampThreads()
			sweeps := make([][][]StampSweep, len(apps))
			for pi, app := range apps {
				sweeps[pi] = make([][]StampSweep, len(threads))
				for ni, n := range threads {
					sweeps[pi][ni] = make([]StampSweep, len(Allocators()))
					for ai, aname := range Allocators() {
						sweeps[pi][ni][ai] = b.StampSweep(stampCfg(b.Spec().Full, app, aname, n), reps)
					}
				}
			}
			b.Reduce(func() (*Result, error) {
				res := &Result{ID: "fig8", Title: "Speedup over each allocator's own 1-thread run"}
				for pi, app := range apps {
					t := Table{Title: app, Columns: []string{"Threads"}}
					for _, a := range Allocators() {
						t.Columns = append(t.Columns, DisplayName(a))
					}
					base := make([]float64, len(Allocators()))
					var rows [][]string
					series := make([]Series, len(Allocators()))
					for ai, a := range Allocators() {
						series[ai].Label = fmt.Sprintf("%s/%s", app, DisplayName(a))
					}
					for ni, n := range threads {
						row := []string{fmt.Sprintf("%d", n)}
						for ai := range Allocators() {
							s := sweeps[pi][ni][ai].Ms()
							if n == 1 {
								base[ai] = s.Mean
							}
							sp := base[ai] / s.Mean
							row = append(row, fmt.Sprintf("%.2f", sp))
							series[ai].X = append(series[ai].X, float64(n))
							series[ai].Y = append(series[ai].Y, sp)
						}
						rows = append(rows, row)
					}
					t.Rows = rows
					res.Tables = append(res.Tables, t)
					res.Series = append(res.Series, series...)
				}
				res.Notes = []string{
					"paper: Genome's Glibc speedup looks best only because its 1-thread run is slow;",
					"Yada does not scale under Glibc while it does under the others.",
				}
				return res, nil
			})
			return nil
		},
	})
}

// tab7: gains from the STM-level transactional-object caching
// optimization.
func init() {
	Register(&Experiment{
		ID:    "tab7",
		Paper: "Table 7: performance gains with tx-object caching optimizations (8 threads)",
		Plan: func(b *Builder) error {
			reps := b.Reps(2, 5)
			apps := []string{"genome", "intruder", "vacation", "yada"}
			type pair struct{ off, on StampSweep }
			sweeps := make([][]pair, len(apps))
			for pi, app := range apps {
				sweeps[pi] = make([]pair, len(Allocators()))
				for ai, aname := range Allocators() {
					off := stampCfg(b.Spec().Full, app, aname, 8)
					on := off
					on.CacheTx = true
					sweeps[pi][ai] = pair{off: b.StampSweep(off, reps), on: b.StampSweep(on, reps)}
				}
			}
			b.Reduce(func() (*Result, error) {
				t := Table{Columns: []string{"App"}}
				for _, a := range Allocators() {
					t.Columns = append(t.Columns, DisplayName(a))
				}
				for pi, app := range apps {
					row := []string{app}
					for ai := range Allocators() {
						off, on := sweeps[pi][ai].off.Ms(), sweeps[pi][ai].on.Ms()
						gain := (off.Mean - on.Mean) / off.Mean * 100
						row = append(row, fmt.Sprintf("%+.2f%%", gain))
					}
					t.Rows = append(t.Rows, row)
				}
				return &Result{
					ID:     "tab7",
					Title:  "Gain from caching transactional objects at the STM level",
					Tables: []Table{t},
					Notes: []string{
						"expected shape: largest gains where the allocator lacks thread-private caching",
						"(Glibc) and the app churns tx memory (Yada); ~neutral for TBB/TCMalloc.",
					},
				}, nil
			})
			return nil
		},
	})
}
