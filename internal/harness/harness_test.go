package harness

import (
	"bytes"
	"strings"
	"testing"
)

func intPtr(v int) *int { return &v }

func TestAllExperimentsRegistered(t *testing.T) {
	want := []string{
		"tab1", "tab2", "fig1", "fig2", "fig3",
		"fig4", "tab3", "tab4", "fig5", "fig6",
		"fig4rates", "tab5", "appchar", "fig7", "tab6", "fig8", "tab7", "hytm", "pooling",
	}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	ids := IDs()
	if len(ids) != len(want) {
		t.Errorf("IDs() has %d entries, want %d: %v", len(ids), len(want), ids)
	}
}

func TestIDsOrderedForPresentation(t *testing.T) {
	ids := IDs()
	if ids[0] != "tab1" || ids[1] != "tab2" {
		t.Errorf("presentation order broken: %v", ids[:3])
	}
}

// The static experiments (no workload runs) must produce well-formed
// results quickly.
func TestStaticExperiments(t *testing.T) {
	for _, id := range []string{"tab1", "tab2", "fig2", "fig5"} {
		e, _ := Get(id)
		res, err := RunExperiment(e, &Spec{})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if res.ID != id || len(res.Tables) == 0 {
			t.Errorf("%s: malformed result %+v", id, res)
		}
		for _, tab := range res.Tables {
			for _, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Errorf("%s: row width %d != %d columns", id, len(row), len(tab.Columns))
				}
			}
		}
	}
}

func TestTab1MatchesPaperValues(t *testing.T) {
	e, _ := Get("tab1")
	res, err := RunExperiment(e, &Spec{})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if rows[0][2] != "32 bytes" {
		t.Errorf("Glibc min size = %q, want 32 bytes", rows[0][2])
	}
	if rows[1][2] != "16 bytes" {
		t.Errorf("Hoard min size = %q, want 16 bytes", rows[1][2])
	}
	if rows[3][4] != "incremental" {
		t.Errorf("TCMalloc granularity = %q, want incremental", rows[3][4])
	}
}

func TestFig2TraceShowsAdjacency(t *testing.T) {
	e, _ := Get("fig2")
	res, err := RunExperiment(e, &Spec{})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	// Steps 1 and 2 (different threads) must land on the same cache
	// line.
	if rows[0][3] != rows[1][3] {
		t.Errorf("threads' first blocks on different lines: %s vs %s", rows[0][3], rows[1][3])
	}
}

func TestPrintRendersEverything(t *testing.T) {
	res := &Result{
		ID:     "x",
		Title:  "demo",
		Tables: []Table{{Title: "t", Columns: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}}},
		Series: []Series{{Label: "s", X: []float64{1}, Y: []float64{2}, Err: []float64{0.1}}},
		Notes:  []string{"hello"},
	}
	var buf bytes.Buffer
	Print(&buf, res)
	out := buf.String()
	for _, want := range []string{"demo", "a", "1", "series s", "±0.1", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("Print output missing %q:\n%s", want, out)
		}
	}
}

func TestBestWorstAndPctDiff(t *testing.T) {
	b, w := bestWorst([]float64{3, 1, 2}, true)
	if b != 1 || w != 0 {
		t.Errorf("bestWorst lower: %d %d", b, w)
	}
	b, w = bestWorst([]float64{3, 1, 2}, false)
	if b != 0 || w != 1 {
		t.Errorf("bestWorst higher: %d %d", b, w)
	}
	if d := pctDiff(1, 2); d != 100 {
		t.Errorf("pctDiff(1,2) = %v, want 100", d)
	}
	if d := pctDiff(2, 1); d != 100 {
		t.Errorf("pctDiff(2,1) = %v, want 100", d)
	}
	if d := pctDiff(0, 5); d != 0 {
		t.Errorf("pctDiff(0,5) = %v, want 0 (guarded)", d)
	}
}

func TestDisplayNames(t *testing.T) {
	cases := map[string]string{
		"glibc": "Glibc", "hoard": "Hoard", "tbb": "TBBMalloc", "tcmalloc": "TCMalloc", "x": "x",
	}
	for in, want := range cases {
		if got := DisplayName(in); got != want {
			t.Errorf("DisplayName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestChartRendersSeries(t *testing.T) {
	res := &Result{
		Title: "demo chart",
		Series: []Series{
			{Label: "a", X: []float64{1, 2, 4, 8}, Y: []float64{1, 2, 3, 4}},
			{Label: "b", X: []float64{1, 2, 4, 8}, Y: []float64{4, 3, 2, 1}},
		},
	}
	var buf bytes.Buffer
	Chart(&buf, res, 40, 10)
	out := buf.String()
	for _, want := range []string{"demo chart", "*", "o", "a\n", "b\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines < 12 {
		t.Errorf("chart too short: %d lines", lines)
	}
}

func TestChartEmptySeriesNoOutput(t *testing.T) {
	var buf bytes.Buffer
	Chart(&buf, &Result{Title: "x"}, 40, 10)
	if buf.Len() != 0 {
		t.Errorf("chart emitted %d bytes for empty series", buf.Len())
	}
}

// Smoke-run the cheap dynamic experiments end to end (single rep).
func TestDynamicExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs workloads")
	}
	for _, id := range []string{"fig1", "fig3", "hytm", "appchar"} {
		e, ok := Get(id)
		if !ok {
			t.Fatalf("%s missing", id)
		}
		res, err := RunExperiment(e, &Spec{Reps: intPtr(1)})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(res.Tables) == 0 {
			t.Errorf("%s produced no tables", id)
		}
		for _, tab := range res.Tables {
			if len(tab.Rows) == 0 {
				t.Errorf("%s: empty table %q", id, tab.Title)
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Errorf("%s: ragged row in %q", id, tab.Title)
				}
			}
		}
	}
}

// The heavier experiments run under one scaled-down repetition too.
func TestHeavyExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many workloads")
	}
	for _, id := range []string{"fig4rates", "tab5"} {
		e, _ := Get(id)
		res, err := RunExperiment(e, &Spec{Reps: intPtr(1)})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(res.Tables) == 0 {
			t.Errorf("%s produced no tables", id)
		}
	}
}

func TestPrintMarkdown(t *testing.T) {
	res := &Result{
		ID:     "x",
		Title:  "demo",
		Tables: []Table{{Title: "t", Columns: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}}},
		Series: []Series{{Label: "s", X: []float64{1}, Y: []float64{2}}},
		Notes:  []string{"n"},
	}
	var buf bytes.Buffer
	PrintMarkdown(&buf, res)
	out := buf.String()
	for _, want := range []string{"## x — demo", "| a | b |", "|---|---|", "| 1 | 2 |", "> n"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}
