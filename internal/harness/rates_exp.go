package harness

import (
	"fmt"

	"repro/internal/intset"
)

// fig4rates: the paper ran its synthetic benchmark at three update
// rates — read-only, read-dominated (20%) and write-dominated (60%) —
// but printed only the write-dominated results for space. This
// experiment provides the other two for the linked list, showing how
// the allocator effects grow with the update rate.
func init() {
	Register(&Experiment{
		ID:    "fig4rates",
		Paper: "§4/§5 update-rate sweep: read-only, read-dominated, write-dominated (linked list, 8 threads)",
		Plan: func(b *Builder) error {
			initial, keyRange, ops := intsetScale(b.Spec().Full, intset.LinkedList)
			reps := b.Reps(1, 3)
			rates := []int{0, 20, 60}
			sweeps := make([][]IntsetSweep, len(rates))
			for ri, rate := range rates {
				sweeps[ri] = make([]IntsetSweep, len(Allocators()))
				for ai, aname := range Allocators() {
					sweeps[ri][ai] = b.IntsetSweep(intset.Config{
						Kind:         intset.LinkedList,
						Allocator:    aname,
						Threads:      8,
						InitialSize:  initial,
						KeyRange:     keyRange,
						UpdatePct:    rate,
						OpsPerThread: ops,
					}, reps)
				}
			}
			b.Reduce(func() (*Result, error) {
				res := &Result{ID: "fig4rates", Title: "Update-rate sensitivity (linked list, 8 threads)"}
				for ri, rate := range rates {
					t := Table{
						Title:   fmt.Sprintf("%d%% updates", rate),
						Columns: []string{"Allocator", "Throughput (tx/s)", "Abort rate", "False aborts"},
					}
					for ai, aname := range Allocators() {
						var thrSum, abortSum, falseSum float64
						cells := sweeps[ri][ai].Cells()
						for _, c := range cells {
							thrSum += c.Throughput
							abortSum += c.AbortRate
							falseSum += float64(c.FalseAborts)
						}
						n := float64(len(cells))
						t.Rows = append(t.Rows, []string{
							DisplayName(aname),
							fmt.Sprintf("%.3g", thrSum/n),
							fmt.Sprintf("%.1f%%", abortSum/n*100),
							fmt.Sprintf("%.0f", falseSum/n),
						})
					}
					res.Tables = append(res.Tables, t)
				}
				res.Notes = []string{
					"read-only runs never abort regardless of allocator;",
					"allocator separation grows with the update rate (the paper used 60% as the",
					"most allocator-sensitive configuration).",
				}
				return res, nil
			})
			return nil
		},
	})
}
