package harness

import (
	"fmt"

	"repro/internal/intset"
)

// fig4rates: the paper ran its synthetic benchmark at three update
// rates — read-only, read-dominated (20%) and write-dominated (60%) —
// but printed only the write-dominated results for space. This
// experiment provides the other two for the linked list, showing how
// the allocator effects grow with the update rate.
func init() {
	Register(&Experiment{
		ID:    "fig4rates",
		Paper: "§4/§5 update-rate sweep: read-only, read-dominated, write-dominated (linked list, 8 threads)",
		Run: func(opts Options) (*Result, error) {
			initial, keyRange, ops := intsetScale(opts.Full, intset.LinkedList)
			cm, err := opts.stmCM()
			if err != nil {
				return nil, err
			}
			reps := opts.reps(1, 3)
			res := &Result{ID: "fig4rates", Title: "Update-rate sensitivity (linked list, 8 threads)"}
			for _, rate := range []int{0, 20, 60} {
				t := Table{
					Title:   fmt.Sprintf("%d%% updates", rate),
					Columns: []string{"Allocator", "Throughput (tx/s)", "Abort rate", "False aborts"},
				}
				for _, aname := range Allocators() {
					var thrSum, abortSum, falseSum float64
					for r := 0; r < reps; r++ {
						out, err := intset.Run(intset.Config{
							Kind:         intset.LinkedList,
							Allocator:    aname,
							Threads:      8,
							InitialSize:  initial,
							KeyRange:     keyRange,
							UpdatePct:    rate,
							OpsPerThread: ops,
							Seed:         opts.seed() + uint64(r)*7919,
							Obs:          opts.Obs,
							CM:           cm,
							RetryCap:     opts.RetryCap,
							Fault:        opts.Fault,
							Deadline:     opts.Deadline,
						})
						if err != nil {
							return nil, err
						}
						opts.Health.Note(out.Status, out.Failure)
						thrSum += out.Throughput
						abortSum += out.Tx.AbortRate()
						falseSum += float64(out.Tx.FalseAborts)
					}
					n := float64(reps)
					t.Rows = append(t.Rows, []string{
						DisplayName(aname),
						fmt.Sprintf("%.3g", thrSum/n),
						fmt.Sprintf("%.1f%%", abortSum/n*100),
						fmt.Sprintf("%.0f", falseSum/n),
					})
				}
				res.Tables = append(res.Tables, t)
			}
			res.Notes = []string{
				"read-only runs never abort regardless of allocator;",
				"allocator separation grows with the update rate (the paper used 60% as the",
				"most allocator-sensitive configuration).",
			}
			return res, nil
		},
	})
}
