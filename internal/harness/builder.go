package harness

import (
	"encoding/json"
	"fmt"

	"repro/internal/heapscope"
	"repro/internal/htm"
	"repro/internal/intset"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/sim"
	"repro/internal/stamp"
	"repro/internal/stm"
	"repro/internal/sweep"
	"repro/internal/threadtest"
)

// Builder is what an experiment plans against: instead of running
// workloads inline, an experiment's Plan function declares its cells —
// one per (configuration, repetition) point — receives typed handles to
// their future payloads, and installs a Reduce closure that folds the
// payloads into the printable Result. The split is what lets the sweep
// scheduler run cells in any order on any goroutine (or skip them via
// the cache) while reduction stays a straight-line serial function.
type Builder struct {
	id    string
	spec  *Spec
	cells []sweep.Cell
	outs  []sweep.Outcome // filled by the session before reduce runs
	fn    func() (*Result, error)
}

// Spec exposes the validated spec so plans can scale themselves
// (reps, Full, derived parameters).
func (b *Builder) Spec() *Spec { return b.spec }

// Reps resolves the effective repetition count for this plan.
func (b *Builder) Reps(quick, full int) int { return b.spec.reps(quick, full) }

// Reduce installs the fold from cell payloads to the Result. Handles
// are only valid inside it.
func (b *Builder) Reduce(fn func() (*Result, error)) { b.fn = fn }

// Handle is a typed reference to one cell's future payload.
type Handle[T any] struct {
	b   *Builder
	idx int
}

// Get decodes the cell's payload. Valid only inside Reduce; a decode
// mismatch is a harness bug and panics (the session converts it to an
// experiment error).
func (h Handle[T]) Get() T {
	out := h.b.outs[h.idx]
	var v T
	if err := json.Unmarshal(out.Payload, &v); err != nil {
		panic(fmt.Errorf("harness: decode payload of cell %s: %w", out.Key, err))
	}
	return v
}

// CellHealth is embedded in cell payloads that carry a degradation
// status; the session folds every cell's health into the experiment
// aggregate before reducing.
type CellHealth struct {
	Status  string `json:"status,omitempty"`
	Failure string `json:"failure,omitempty"`
}

// addCell registers one cell: key names it, spec (serialized
// canonically) plus the derived seed identify it for caching, and run
// executes it against a private per-cell recorder, profiler and heap
// collector (each nil when the session is unobserved/unprofiled/
// unwatched).
func addCell[T any](b *Builder, key string, spec any, seed uint64, run func(rec *obs.Recorder, pp *prof.Profiler, hc *heapscope.Collector) (any, error)) Handle[T] {
	raw, err := json.Marshal(spec)
	if err != nil {
		panic(fmt.Errorf("harness: encode spec of cell %s: %w", key, err))
	}
	parent := b.spec.Obs
	profiled := b.spec.Profile
	watched := b.spec.Heap
	cadence := b.spec.HeapCadence
	b.cells = append(b.cells, sweep.Cell{
		Key:  key,
		Spec: raw,
		Seed: seed,
		Run: func() (any, *obs.Delta, *prof.Profile, *heapscope.Series, error) {
			var rec *obs.Recorder
			if parent != nil {
				rec = parent.Sibling()
			}
			var pp *prof.Profiler
			if profiled {
				pp = prof.New()
				pp.SetRecorder(rec)
			}
			var hc *heapscope.Collector
			if watched {
				hc = heapscope.New(cadence)
			}
			payload, err := run(rec, pp, hc)
			if err != nil {
				return nil, nil, nil, nil, err
			}
			var delta *obs.Delta
			if rec != nil {
				delta = rec.Delta()
			}
			var pf *prof.Profile
			if pp != nil {
				pf = pp.Profile()
				pf.Label = key
			}
			var hp *heapscope.Series
			if hc != nil {
				hp = hc.Series(key)
			}
			return payload, delta, pf, hp, nil
		},
	})
	return Handle[T]{b: b, idx: len(b.cells) - 1}
}

// ---- intset cells ----

// IntsetCell is the payload of one synthetic-benchmark run.
type IntsetCell struct {
	Throughput  float64           `json:"thr"`
	AbortRate   float64           `json:"abort_rate"`
	L1Miss      float64           `json:"l1_miss"`
	FalseAborts uint64            `json:"false_aborts"`
	Recovery    *obs.RecoveryInfo `json:"recovery,omitempty"` // durable-memory verdict; nil when pmem is off
	Pool        *obs.PoolInfo     `json:"pool,omitempty"`     // tx-pool traffic; nil when the run was unpooled
	Race        *obs.RaceInfo     `json:"race,omitempty"`     // race-checker verdict; nil when unchecked
	Conflict    *obs.ConflictInfo `json:"conflict,omitempty"` // abort forensics; nil when unobserved
	CellHealth
}

// poolTag names a non-default pooling discipline in a cell key. The
// PoolNone baseline contributes nothing, so legacy keys — and the seeds
// DeriveSeed mints from them — are byte-identical to pre-pooling runs.
func poolTag(p stm.Pooling) string {
	if p == stm.PoolNone {
		return ""
	}
	return "/p" + p.String()
}

// aliasTag names the stripe-alias demo knobs in a cell key. The
// defaults contribute nothing, so legacy keys — and the seeds
// DeriveSeed mints from them — are byte-identical to pre-demo runs.
func aliasTag(cfg intset.Config) string {
	if !cfg.SeedAlias && cfg.OrtBits == 0 {
		return ""
	}
	return fmt.Sprintf("/sa%v-ob%d", cfg.SeedAlias, cfg.OrtBits)
}

func intsetKey(prefix string, cfg intset.Config, rep int) string {
	return fmt.Sprintf("%s/%s/%s/t%d/u%d/i%d/k%d/o%d/s%d/d%d/h%d/c%v%s%s/r%d",
		prefix, cfg.Kind, cfg.Allocator, cfg.Threads, cfg.UpdatePct, cfg.InitialSize,
		cfg.KeyRange, cfg.OpsPerThread, cfg.Shift, cfg.Design, cfg.HashBuckets, cfg.CacheTx,
		poolTag(cfg.Pool), aliasTag(cfg), rep)
}

// applyRobustness threads the spec's policy knobs into a workload
// config. The workload parameters stay the experiment's business; the
// policy is the spec's.
func (b *Builder) applyIntset(cfg intset.Config) intset.Config {
	cfg.Obs = nil
	cfg.CM = b.spec.CM
	cfg.RetryCap = b.spec.retryCap()
	cfg.Fault = b.spec.Fault
	cfg.Deadline = b.spec.deadline()
	cfg.Pmem = b.spec.Pmem
	cfg.Crash = b.spec.Crash
	cfg.Race = b.spec.Race
	cfg.Conflict = b.spec.Conflict
	if b.spec.Pool != stm.PoolNone {
		cfg.Pool = b.spec.Pool
	}
	return cfg
}

// Intset declares one synthetic-benchmark cell.
func (b *Builder) Intset(cfg intset.Config, rep int) Handle[IntsetCell] {
	cfg = b.applyIntset(cfg)
	key := intsetKey("intset", cfg, rep)
	cfg.Seed = sweep.DeriveSeed(b.spec.seed(), key)
	sp := b.spec
	return addCell[IntsetCell](b, key, cfg, cfg.Seed, func(rec *obs.Recorder, pp *prof.Profiler, hc *heapscope.Collector) (any, error) {
		c := cfg
		c.Obs = rec
		c.Prof = pp
		c.Heap = hc
		c.Plan = sp.cellPlan(c.Seed)
		res, err := intset.Run(c)
		if err != nil {
			return nil, err
		}
		return IntsetCell{
			Throughput:  res.Throughput,
			AbortRate:   res.Tx.AbortRate(),
			L1Miss:      res.L1Miss,
			FalseAborts: res.Tx.FalseAborts,
			Recovery:    res.Recovery,
			Pool:        res.Pool,
			Race:        res.Race,
			Conflict:    res.Conflict,
			CellHealth:  CellHealth{Status: res.Status, Failure: res.Failure},
		}, nil
	})
}

// IntsetSweep declares reps repetitions of one configuration.
func (b *Builder) IntsetSweep(cfg intset.Config, reps int) IntsetSweep {
	s := IntsetSweep{hs: make([]Handle[IntsetCell], reps)}
	for r := 0; r < reps; r++ {
		s.hs[r] = b.Intset(cfg, r)
	}
	return s
}

// IntsetSweep summarizes the repetitions of one intset configuration.
type IntsetSweep struct{ hs []Handle[IntsetCell] }

// Cells decodes all repetition payloads (Reduce-time only).
func (s IntsetSweep) Cells() []IntsetCell {
	out := make([]IntsetCell, len(s.hs))
	for i, h := range s.hs {
		out[i] = h.Get()
	}
	return out
}

// Thr summarizes throughput over the repetitions.
func (s IntsetSweep) Thr() sim.Summary {
	var xs []float64
	for _, c := range s.Cells() {
		xs = append(xs, c.Throughput)
	}
	return sim.Summarize(xs)
}

// Abort summarizes the abort rate over the repetitions.
func (s IntsetSweep) Abort() sim.Summary {
	var xs []float64
	for _, c := range s.Cells() {
		xs = append(xs, c.AbortRate)
	}
	return sim.Summarize(xs)
}

// L1 summarizes the L1 miss ratio over the repetitions.
func (s IntsetSweep) L1() sim.Summary {
	var xs []float64
	for _, c := range s.Cells() {
		xs = append(xs, c.L1Miss)
	}
	return sim.Summarize(xs)
}

// ---- stamp cells ----

// StampCell is the payload of one timed STAMP run.
type StampCell struct {
	Ms       float64           `json:"ms"`                 // parallel-phase time in modelled milliseconds
	Recovery *obs.RecoveryInfo `json:"recovery,omitempty"` // durable-memory verdict; nil when pmem is off
	Pool     *obs.PoolInfo     `json:"pool,omitempty"`     // tx-pool traffic; nil when the run was unpooled
	Race     *obs.RaceInfo     `json:"race,omitempty"`     // race-checker verdict; nil when unchecked
	Conflict *obs.ConflictInfo `json:"conflict,omitempty"` // abort forensics; nil when unobserved
	CellHealth
}

// StampProbe is the payload of one instrumented STAMP run (application
// characterization and allocation profile).
type StampProbe struct {
	Tx       stm.TxStats       `json:"tx"`
	L1Miss   float64           `json:"l1_miss"`
	Profile  *stamp.Profile    `json:"profile,omitempty"`
	Race     *obs.RaceInfo     `json:"race,omitempty"`     // race-checker verdict; nil when unchecked
	Conflict *obs.ConflictInfo `json:"conflict,omitempty"` // abort forensics; nil when unobserved
	CellHealth
}

func stampKey(cfg stamp.Config, rep int) string {
	return fmt.Sprintf("stamp/%s/%s/t%d/sc%d/v%d/s%d/c%v%s/p%v/r%d",
		cfg.App, cfg.Allocator, cfg.Threads, cfg.Scale, cfg.Variant, cfg.Shift,
		cfg.CacheTx, poolTag(cfg.Pool), cfg.Profile, rep)
}

func (b *Builder) applyStamp(cfg stamp.Config) stamp.Config {
	cfg.Obs = nil
	cfg.CM = b.spec.CM
	cfg.RetryCap = b.spec.retryCap()
	cfg.Fault = b.spec.Fault
	cfg.Deadline = b.spec.deadline()
	cfg.Pmem = b.spec.Pmem
	cfg.Crash = b.spec.Crash
	cfg.Race = b.spec.Race
	cfg.Conflict = b.spec.Conflict
	if b.spec.Pool != stm.PoolNone {
		cfg.Pool = b.spec.Pool
	}
	return cfg
}

func (b *Builder) stampCell(cfg stamp.Config, rep int) (stamp.Config, string) {
	cfg = b.applyStamp(cfg)
	key := stampKey(cfg, rep)
	cfg.Seed = sweep.DeriveSeed(b.spec.seed(), key)
	return cfg, key
}

// Stamp declares one timed STAMP cell.
func (b *Builder) Stamp(cfg stamp.Config, rep int) Handle[StampCell] {
	cfg, key := b.stampCell(cfg, rep)
	sp := b.spec
	return addCell[StampCell](b, key, cfg, cfg.Seed, func(rec *obs.Recorder, pp *prof.Profiler, hc *heapscope.Collector) (any, error) {
		c := cfg
		c.Obs = rec
		c.Prof = pp
		c.Heap = hc
		c.Plan = sp.cellPlan(c.Seed)
		res, err := stamp.Run(c)
		if err != nil {
			return nil, err
		}
		return StampCell{
			Ms:         res.Seconds * 1e3,
			Recovery:   res.Recovery,
			Pool:       res.Pool,
			Race:       res.Race,
			Conflict:   res.Conflict,
			CellHealth: CellHealth{Status: res.Status, Failure: res.Failure},
		}, nil
	})
}

// StampSweep declares reps repetitions of one configuration.
func (b *Builder) StampSweep(cfg stamp.Config, reps int) StampSweep {
	s := StampSweep{hs: make([]Handle[StampCell], reps)}
	for r := 0; r < reps; r++ {
		s.hs[r] = b.Stamp(cfg, r)
	}
	return s
}

// StampProbeCell declares one instrumented STAMP cell. Its key carries
// a distinct prefix: a probe runs the same workload as a timed cell but
// its payload has a different shape, so the two must never deduplicate
// against each other even when their configs coincide (appchar's probes
// vs fig7's timed runs).
func (b *Builder) StampProbeCell(cfg stamp.Config) Handle[StampProbe] {
	cfg = b.applyStamp(cfg)
	key := "probe/" + stampKey(cfg, 0)
	cfg.Seed = sweep.DeriveSeed(b.spec.seed(), key)
	sp := b.spec
	return addCell[StampProbe](b, key, cfg, cfg.Seed, func(rec *obs.Recorder, pp *prof.Profiler, hc *heapscope.Collector) (any, error) {
		c := cfg
		c.Obs = rec
		c.Prof = pp
		c.Heap = hc
		c.Plan = sp.cellPlan(c.Seed)
		res, err := stamp.Run(c)
		if err != nil {
			return nil, err
		}
		return StampProbe{
			Tx:         res.Tx,
			L1Miss:     res.L1Miss,
			Profile:    res.Profile,
			Race:       res.Race,
			Conflict:   res.Conflict,
			CellHealth: CellHealth{Status: res.Status, Failure: res.Failure},
		}, nil
	})
}

// StampSweep summarizes the repetitions of one STAMP configuration.
type StampSweep struct{ hs []Handle[StampCell] }

// Cells decodes all repetition payloads (Reduce-time only).
func (s StampSweep) Cells() []StampCell {
	out := make([]StampCell, len(s.hs))
	for i, h := range s.hs {
		out[i] = h.Get()
	}
	return out
}

// Ms summarizes the execution time (modelled ms) over the repetitions.
func (s StampSweep) Ms() sim.Summary {
	var xs []float64
	for _, c := range s.Cells() {
		xs = append(xs, c.Ms)
	}
	return sim.Summarize(xs)
}

// ---- threadtest cells ----

// ThreadtestCell is the payload of one allocator-microbenchmark run.
type ThreadtestCell struct {
	Throughput float64 `json:"thr"` // malloc/free pairs per modelled second
}

// Threadtest declares one allocator-microbenchmark cell. The workload
// is deterministic (no seed), but rep still names distinct cells so
// repetition counts keep their meaning.
func (b *Builder) Threadtest(cfg threadtest.Config, rep int) Handle[ThreadtestCell] {
	key := fmt.Sprintf("threadtest/%s/t%d/b%d/o%d/w%d/r%d",
		cfg.Allocator, cfg.Threads, cfg.BlockSize, cfg.OpsPerThread, cfg.TouchWords, rep)
	seed := sweep.DeriveSeed(b.spec.seed(), key)
	return addCell[ThreadtestCell](b, key, cfg, seed, func(*obs.Recorder, *prof.Profiler, *heapscope.Collector) (any, error) {
		res, err := threadtest.Run(cfg)
		if err != nil {
			return nil, err
		}
		return ThreadtestCell{Throughput: res.Throughput}, nil
	})
}

// ThreadtestSweep declares reps repetitions of one configuration.
func (b *Builder) ThreadtestSweep(cfg threadtest.Config, reps int) ThreadtestSweep {
	s := ThreadtestSweep{hs: make([]Handle[ThreadtestCell], reps)}
	for r := 0; r < reps; r++ {
		s.hs[r] = b.Threadtest(cfg, r)
	}
	return s
}

// ThreadtestSweep summarizes the repetitions of one configuration.
type ThreadtestSweep struct{ hs []Handle[ThreadtestCell] }

// Thr summarizes throughput over the repetitions.
func (s ThreadtestSweep) Thr() sim.Summary {
	var xs []float64
	for _, h := range s.hs {
		xs = append(xs, h.Get().Throughput)
	}
	return sim.Summarize(xs)
}

// ---- HyTM cells ----

// HyTMCell is the payload of one best-effort-HTM run.
type HyTMCell struct {
	Throughput float64   `json:"thr"`
	HTM        htm.Stats `json:"htm"`
}

// HyTM declares one hybrid-TM cell.
func (b *Builder) HyTM(cfg intset.Config, rep int) Handle[HyTMCell] {
	cfg.Obs = nil
	key := intsetKey("hytm", cfg, rep)
	cfg.Seed = sweep.DeriveSeed(b.spec.seed(), key)
	return addCell[HyTMCell](b, key, cfg, cfg.Seed, func(rec *obs.Recorder, _ *prof.Profiler, _ *heapscope.Collector) (any, error) {
		c := cfg
		c.Obs = rec
		res, err := intset.RunHyTM(c)
		if err != nil {
			return nil, err
		}
		return HyTMCell{Throughput: res.Throughput, HTM: res.HTM}, nil
	})
}

// ---- static cells ----

// staticSpec identifies a static (computed, workload-free) cell.
type staticSpec struct {
	ID   string `json:"id"`
	Full bool   `json:"full"`
}

// Static declares a cell that computes its Result directly — for the
// paper items that are demonstrations or self-descriptions rather than
// sweeps (tab1, tab2, fig2, fig5). The whole Result is the payload.
func (b *Builder) Static(fn func() (*Result, error)) Handle[Result] {
	key := "static/" + b.id
	spec := staticSpec{ID: b.id, Full: b.spec.Full}
	seed := sweep.DeriveSeed(b.spec.seed(), key)
	return addCell[Result](b, key, spec, seed, func(*obs.Recorder, *prof.Profiler, *heapscope.Collector) (any, error) {
		return fn()
	})
}
