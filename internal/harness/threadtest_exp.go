package harness

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/threadtest"
)

// fig3: allocator throughput for malloc/free pairs across block sizes,
// 8 threads.
func init() {
	Register(&Experiment{
		ID:    "fig3",
		Paper: "Figure 3: throughput of the studied allocators for different block sizes (8 threads)",
		Run: func(opts Options) (*Result, error) {
			sizes := []uint64{16, 64, 128, 256, 512, 2048, 8192}
			ops := 2000
			if opts.Full {
				ops = 10000
			}
			reps := opts.reps(2, 5)

			res := &Result{ID: "fig3", Title: "threadtest throughput (million op/s)"}
			t := Table{Columns: []string{"Block size"}}
			for _, a := range Allocators() {
				t.Columns = append(t.Columns, DisplayName(a))
			}
			series := make([]Series, len(Allocators()))
			for i, a := range Allocators() {
				series[i].Label = DisplayName(a)
			}
			for _, size := range sizes {
				row := []string{fmt.Sprintf("%d", size)}
				for ai, aname := range Allocators() {
					var samples []float64
					for r := 0; r < reps; r++ {
						out, err := threadtest.Run(threadtest.Config{
							Allocator:    aname,
							Threads:      8,
							BlockSize:    size,
							OpsPerThread: ops,
						})
						if err != nil {
							return nil, err
						}
						samples = append(samples, out.Throughput/1e6)
					}
					s := sim.Summarize(samples)
					row = append(row, fmt.Sprintf("%.2f", s.Mean))
					series[ai].X = append(series[ai].X, float64(size))
					series[ai].Y = append(series[ai].Y, s.Mean)
					series[ai].Err = append(series[ai].Err, s.CI95)
				}
				t.Rows = append(t.Rows, row)
			}
			res.Tables = []Table{t}
			res.Series = series
			res.Notes = []string{
				"expected shapes: TCMalloc weak at 16B (false sharing), strong elsewhere;",
				"Hoard fast through 256B then drops; TBB flat until ~8KB then collapses;",
				"Glibc pays an arena lock on every operation.",
			}
			return res, nil
		},
	})
}
