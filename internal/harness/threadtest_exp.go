package harness

import (
	"fmt"

	"repro/internal/threadtest"
)

// fig3: allocator throughput for malloc/free pairs across block sizes,
// 8 threads.
func init() {
	Register(&Experiment{
		ID:    "fig3",
		Paper: "Figure 3: throughput of the studied allocators for different block sizes (8 threads)",
		Plan: func(b *Builder) error {
			sizes := []uint64{16, 64, 128, 256, 512, 2048, 8192}
			ops := 2000
			if b.Spec().Full {
				ops = 10000
			}
			reps := b.Reps(2, 5)
			sweeps := make([][]ThreadtestSweep, len(sizes))
			for si, size := range sizes {
				sweeps[si] = make([]ThreadtestSweep, len(Allocators()))
				for ai, aname := range Allocators() {
					sweeps[si][ai] = b.ThreadtestSweep(threadtest.Config{
						Allocator:    aname,
						Threads:      8,
						BlockSize:    size,
						OpsPerThread: ops,
					}, reps)
				}
			}
			b.Reduce(func() (*Result, error) {
				res := &Result{ID: "fig3", Title: "threadtest throughput (million op/s)"}
				t := Table{Columns: []string{"Block size"}}
				for _, a := range Allocators() {
					t.Columns = append(t.Columns, DisplayName(a))
				}
				series := make([]Series, len(Allocators()))
				for i, a := range Allocators() {
					series[i].Label = DisplayName(a)
				}
				for si, size := range sizes {
					row := []string{fmt.Sprintf("%d", size)}
					for ai := range Allocators() {
						s := sweeps[si][ai].Thr()
						s.Mean /= 1e6
						s.CI95 /= 1e6
						row = append(row, fmt.Sprintf("%.2f", s.Mean))
						series[ai].X = append(series[ai].X, float64(size))
						series[ai].Y = append(series[ai].Y, s.Mean)
						series[ai].Err = append(series[ai].Err, s.CI95)
					}
					t.Rows = append(t.Rows, row)
				}
				res.Tables = []Table{t}
				res.Series = series
				res.Notes = []string{
					"expected shapes: TCMalloc weak at 16B (false sharing), strong elsewhere;",
					"Hoard fast through 256B then drops; TBB flat until ~8KB then collapses;",
					"Glibc pays an arena lock on every operation.",
				}
				return res, nil
			})
			return nil
		},
	})
}
