package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sweep"
)

// recordBytes serializes a run's record with the execution provenance
// zeroed: pool width and executed-vs-cached counts are allowed to vary
// between byte-identical runs, like wall-clock time, and are excluded
// from the comparison. The result itself — cell set, tables, series —
// must not vary.
func recordBytes(t *testing.T, s *Session, run *ExperimentRun) []byte {
	t.Helper()
	rec := s.Record(run)
	if rec.Sweep != nil {
		rec.Sweep.Jobs = 0
		rec.Sweep.Executed = 0
		rec.Sweep.Cached = 0
	}
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func runAll(t *testing.T, jobs int, cache *sweep.Cache) (map[string][]byte, sweep.Stats) {
	t.Helper()
	one := 1
	s := &Session{Spec: &Spec{Reps: &one}, Jobs: jobs, Cache: cache}
	runs, stats := s.Run(IDs())
	recs := make(map[string][]byte, len(runs))
	for _, r := range runs {
		if r.Err != nil {
			t.Fatalf("jobs=%d: %s failed: %v", jobs, r.ID, r.Err)
		}
		recs[r.ID] = recordBytes(t, s, r)
	}
	return recs, stats
}

// TestSessionParallelByteIdentity is the tentpole guarantee: every
// experiment's run record is byte-identical whether its cells run
// serially or on a wide work-stealing pool.
func TestSessionParallelByteIdentity(t *testing.T) {
	serial, _ := runAll(t, 1, nil)
	for _, jobs := range []int{4, 8} {
		parallel, _ := runAll(t, jobs, nil)
		for _, id := range IDs() {
			if !bytes.Equal(serial[id], parallel[id]) {
				t.Errorf("%s: record bytes differ between -jobs 1 and -jobs %d", id, jobs)
			}
		}
	}
}

// TestSessionCacheRoundTrip reruns a session against a warm cache: the
// second pass must execute nothing, serve every cell from disk, and
// reproduce the records byte for byte.
func TestSessionCacheRoundTrip(t *testing.T) {
	ids := []string{"tab4", "fig3"}
	one := 1
	run := func(cache *sweep.Cache) (map[string][]byte, map[string]*obs.SweepInfo, sweep.Stats) {
		s := &Session{Spec: &Spec{Reps: &one}, Jobs: 2, Cache: cache}
		runs, stats := s.Run(ids)
		recs := make(map[string][]byte)
		infos := make(map[string]*obs.SweepInfo)
		for _, r := range runs {
			if r.Err != nil {
				t.Fatalf("%s failed: %v", r.ID, r.Err)
			}
			recs[r.ID] = recordBytes(t, s, r)
			infos[r.ID] = r.Sweep
		}
		return recs, infos, stats
	}
	cache, err := sweep.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cold, coldInfo, coldStats := run(cache)
	if coldStats.Cached != 0 || coldStats.Executed == 0 {
		t.Fatalf("cold stats = %+v, want all executed", coldStats)
	}
	warm, warmInfo, warmStats := run(cache)
	if warmStats.Executed != 0 || warmStats.Cached != coldStats.Executed {
		t.Fatalf("warm stats = %+v, want all %d unique cells cached", warmStats, coldStats.Executed)
	}
	for _, id := range ids {
		if !bytes.Equal(cold[id], warm[id]) {
			t.Errorf("%s: cached record differs from executed record", id)
		}
		if ci, wi := coldInfo[id], warmInfo[id]; ci.CellSet != wi.CellSet || wi.Executed != 0 || wi.Cached != wi.Cells {
			t.Errorf("%s: sweep provenance cold=%+v warm=%+v, want warm fully cached with same cell set", id, ci, wi)
		}
	}
	// A different base seed is a different cell set: everything reruns.
	seed := uint64(42)
	s := &Session{Spec: &Spec{Reps: &one, Seed: &seed}, Jobs: 2, Cache: cache}
	runs, stats := s.Run(ids)
	for _, r := range runs {
		if r.Err != nil {
			t.Fatalf("%s failed: %v", r.ID, r.Err)
		}
	}
	if stats.Cached != 0 {
		t.Errorf("reseeded stats = %+v, want no cache hits", stats)
	}
}

// TestSessionObservedRunsBypassCache pins the invariant that a session
// with a recorder never touches the cache: a cache hit could not
// replay the event trace into the recorder.
func TestSessionObservedRunsBypassCache(t *testing.T) {
	cache, err := sweep.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	one := 1
	warmup := &Session{Spec: &Spec{Reps: &one}, Cache: cache}
	if runs, _ := warmup.Run([]string{"tab4"}); runs[0].Err != nil {
		t.Fatal(runs[0].Err)
	}
	rec := obs.New(obs.Config{})
	s := &Session{Spec: &Spec{Reps: &one, Obs: rec}, Cache: cache}
	runs, stats := s.Run([]string{"tab4"})
	if runs[0].Err != nil {
		t.Fatal(runs[0].Err)
	}
	if stats.Cached != 0 {
		t.Errorf("observed run stats = %+v, want the cache bypassed", stats)
	}
	if len(rec.Events()) == 0 {
		t.Error("observed run produced no events")
	}
}

// TestSessionStormFaultParallel schedules a transaction-heavy
// experiment under an abort-storm fault plan on a wide pool — the
// scheduler soak for `go test -race`.
func TestSessionStormFaultParallel(t *testing.T) {
	one := 1
	spec := &Spec{Reps: &one, Fault: "storm@20000:24000"}
	s := &Session{Spec: spec, Jobs: 8}
	runs, stats := s.Run([]string{"tab4"})
	if runs[0].Err != nil {
		t.Fatal(runs[0].Err)
	}
	if stats.Errors != 0 {
		t.Errorf("stats = %+v, want no cell errors under the storm", stats)
	}
	serial := &Session{Spec: spec, Jobs: 1}
	sruns, _ := serial.Run([]string{"tab4"})
	if sruns[0].Err != nil {
		t.Fatal(sruns[0].Err)
	}
	if !bytes.Equal(recordBytes(t, s, runs[0]), recordBytes(t, serial, sruns[0])) {
		t.Error("storm-fault records differ between jobs 1 and 8")
	}
}

func TestSpecValidate(t *testing.T) {
	if err := (&Spec{}).Validate(); err != nil {
		t.Error("zero spec must validate:", err)
	}
	bad := 0
	if err := (&Spec{Reps: &bad}).Validate(); err == nil {
		t.Error("Reps=0 override must be rejected")
	}
	if err := (&Spec{CM: 99}).Validate(); err == nil {
		t.Error("unknown CM must be rejected")
	}
	if err := (&Spec{Fault: "bogus@"}).Validate(); err == nil {
		t.Error("unparsable fault plan must be rejected")
	}
	if err := (&Spec{Fault: "storm@1:2"}).Validate(); err != nil {
		t.Error("valid fault plan must pass:", err)
	}
}

func TestSessionUnknownExperiment(t *testing.T) {
	s := &Session{Spec: &Spec{}}
	runs, _ := s.Run([]string{"no-such-experiment"})
	if runs[0].Err == nil || !strings.Contains(runs[0].Err.Error(), "no-such-experiment") {
		t.Errorf("unknown id error = %v, want it named", runs[0].Err)
	}
}
