package harness

import (
	"bytes"
	"testing"
)

// profiledRun executes one experiment with per-cell profiling on the
// given pool width and returns the merged profile's folded bytes plus
// the run itself.
func profiledRun(t *testing.T, jobs int) ([]byte, *ExperimentRun, *Session) {
	t.Helper()
	one := 1
	s := &Session{Spec: &Spec{Reps: &one, Profile: true}, Jobs: jobs}
	runs, _ := s.Run([]string{"tab4"})
	r := runs[0]
	if r.Err != nil {
		t.Fatalf("jobs=%d: %v", jobs, r.Err)
	}
	if r.Profile == nil {
		t.Fatalf("jobs=%d: profiled session must attach a merged profile", jobs)
	}
	var buf bytes.Buffer
	if err := r.Profile.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), r, s
}

// TestSessionProfileJobsByteIdentity pins the merge determinism
// guarantee: the merged per-cell profile — down to its folded-stacks
// bytes — is identical whether the sweep ran serially or on a wide
// work-stealing pool.
func TestSessionProfileJobsByteIdentity(t *testing.T) {
	serial, r, s := profiledRun(t, 1)
	if len(serial) == 0 || r.Profile.TotalCycles == 0 {
		t.Fatal("merged profile is empty")
	}
	if r.Profile.Label != r.ID {
		t.Errorf("merged profile label = %q, want the run id %q", r.Profile.Label, r.ID)
	}
	rec := s.Record(r)
	if rec.Profile == nil || rec.Profile.TotalCycles != r.Profile.TotalCycles {
		t.Errorf("run record profile section = %+v, want totals matching the merged profile", rec.Profile)
	}
	for _, jobs := range []int{4, 8} {
		parallel, _, _ := profiledRun(t, jobs)
		if !bytes.Equal(serial, parallel) {
			t.Errorf("folded profile bytes differ between -jobs 1 and -jobs %d", jobs)
		}
	}
}

// TestSessionProfileDoesNotChangeResults pins transparency: switching
// profiling on must not perturb the experiment's record (profiling
// reads clocks, it never ticks them). Only the record's profile
// section may differ.
func TestSessionProfileDoesNotChangeResults(t *testing.T) {
	one := 1
	plain := &Session{Spec: &Spec{Reps: &one}, Jobs: 2}
	runs, _ := plain.Run([]string{"tab4"})
	if runs[0].Err != nil {
		t.Fatal(runs[0].Err)
	}
	want := recordBytes(t, plain, runs[0])

	_, r, s := profiledRun(t, 2)
	rec := s.Record(r)
	if rec.Profile == nil {
		t.Fatal("profiled record lacks a profile section")
	}
	rec.Profile = nil
	if rec.Sweep != nil {
		rec.Sweep.Jobs = 0
		rec.Sweep.Executed = 0
		rec.Sweep.Cached = 0
	}
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		t.Error("profiling changed the experiment record beyond its profile section")
	}
}
