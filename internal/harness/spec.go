package harness

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/stm"
)

// Spec is the typed experiment specification: what to run, at which
// scale, under which robustness policy. It replaces the stringly-typed
// Options (contention manager as a free-form string, zero-means-default
// integers) with enum and explicit-override fields that validate at
// construction time instead of deep inside an experiment loop.
//
// Nil pointer fields mean "use the per-experiment default"; a non-nil
// pointer is an explicit override, so overriding *to zero* (e.g.
// RetryCap pointing at 0 = stm.NoRetryCap semantics via validation) is
// expressible, which the old zero-means-default ints could not say.
type Spec struct {
	Full bool    // paper-scale parameters instead of quick ones
	Reps *int    // repetitions for mean/CI; nil = per-experiment default
	Seed *uint64 // base seed; nil = the suite default

	CM       stm.CM  // contention manager (typed; default CMSuicide)
	RetryCap *uint64 // irrevocable-fallback threshold; nil = STM default
	Fault    string  // fault-plan spec (internal/fault grammar); "" disables
	Deadline *uint64 // virtual-cycle watchdog bound per workload phase; nil = none

	Pmem  bool   // durable heap on every workload cell: redo-logged commits, priced flush/fence
	Crash string // crash-injection clauses (fault crash grammar); "" disables; implies Pmem

	// Pool forces a tx-object pooling discipline onto every workload
	// cell. PoolNone (the default) leaves each experiment's own choice
	// in place — it is "no override", not "strip pooling", so cells are
	// byte-identical to a spec that predates the field.
	Pool stm.Pooling

	// plan is the Fault+Crash spec parsed once by Validate; cells take
	// per-seed clones (fault.Plan.CloneSeeded) instead of re-parsing.
	plan *fault.Plan

	Obs     *obs.Recorder // observability sink; nil disables
	Profile bool          // per-cell cycle-attribution profiling
	Health  *Health       // aggregated run status; nil = one is created per experiment

	Heap        bool   // per-cell allocator-state telemetry (heapscope)
	HeapCadence uint64 // snapshot interval in virtual cycles; 0 = heapscope.DefaultCadence

	// Race attaches the happens-before race checker (internal/race) to
	// every workload cell. A pure observer — checked cells compute
	// byte-identical results — but race cells bypass the result cache so
	// the verdict always comes from a fresh execution.
	Race bool

	// Conflict attaches the abort-forensics observatory
	// (internal/conflict) to every workload cell. A pure observer —
	// observed cells compute byte-identical results — but conflict cells
	// bypass the result cache so the forensics always come from a fresh
	// execution.
	Conflict bool
}

// DefaultSeed is the suite's base seed when Spec.Seed is nil.
const DefaultSeed = 0x9a9e7

// Validate checks the spec once, up front: experiments can then trust
// every field. It fails fast with the allowed names/grammar instead of
// letting a bad contention manager or fault plan surface mid-sweep.
func (s *Spec) Validate() error {
	switch s.CM {
	case stm.CMSuicide, stm.CMBackoff, stm.CMKarma, stm.CMAggressive:
	default:
		return fmt.Errorf("harness: invalid contention manager %v (known: %v)", s.CM, stm.CMNames())
	}
	if s.Reps != nil && *s.Reps < 1 {
		return fmt.Errorf("harness: reps override must be >= 1, got %d", *s.Reps)
	}
	if spec := fault.Join(s.Fault, s.Crash); spec != "" {
		plan, err := fault.Parse(spec, 1)
		if err != nil {
			return fmt.Errorf("harness: invalid fault plan: %w", err)
		}
		if s.Crash != "" && !plan.HasCrash() {
			return fmt.Errorf("harness: crash spec %q contains no crash clause", s.Crash)
		}
		s.plan = plan
	}
	return nil
}

// cellPlan hands one cell its own deterministic instance of the parsed
// fault plan: a clone re-seeded with the cell's derived seed, so plans
// never share mutable trigger state across cells and cells never
// re-parse the spec.
func (s *Spec) cellPlan(seed uint64) *fault.Plan {
	if s.plan == nil {
		return nil
	}
	return s.plan.CloneSeeded(seed)
}

// reps resolves the effective repetition count.
func (s *Spec) reps(quick, full int) int {
	if s.Reps != nil {
		return *s.Reps
	}
	if s.Full {
		return full
	}
	return quick
}

// seed resolves the effective base seed.
func (s *Spec) seed() uint64 {
	if s.Seed != nil && *s.Seed != 0 {
		return *s.Seed
	}
	return DefaultSeed
}

// retryCap resolves the effective retry cap (0 = STM default).
func (s *Spec) retryCap() uint64 {
	if s.RetryCap == nil {
		return 0
	}
	return *s.RetryCap
}

// deadline resolves the effective watchdog deadline (0 = none).
func (s *Spec) deadline() uint64 {
	if s.Deadline == nil {
		return 0
	}
	return *s.Deadline
}

// child clones the spec for one experiment, giving it a private Health
// aggregate when the caller did not supply a shared one.
func (s *Spec) child() *Spec {
	c := *s
	if c.Health == nil {
		c.Health = &Health{}
	}
	return &c
}
