package harness

import (
	"fmt"

	"repro/internal/intset"
	"repro/internal/stm"
)

// poolDisciplines is the sweep order for the tx-pooling axis: the
// paper's malloc baseline, its §6.2 cache, then the two disciplines
// grown out of it (ActionMemoryPool-style reuse, BatchActionAllocator-
// style slab batching).
func poolDisciplines() []stm.Pooling {
	return []stm.Pooling{stm.PoolNone, stm.PoolCache, stm.PoolReuse, stm.PoolBatch}
}

// poolTxnTotals is the transaction-count scaling axis: 10^3–10^6 total
// update transactions at full scale, the affordable prefix otherwise.
func poolTxnTotals(full bool) []int {
	if full {
		return []int{1_000, 10_000, 100_000, 1_000_000}
	}
	return []int{1_000, 10_000}
}

// pooling: the fig4 grid gains a pooling-discipline axis. Part one
// sweeps discipline × allocator on the write-dominated hash set (the
// structure whose per-tx node churn the disciplines target); part two
// scales total transactions 10^3–10^6 per discipline so the crossover
// between per-tx malloc, demand caching and bulk allocation is visible.
func init() {
	Register(&Experiment{
		ID:    "pooling",
		Paper: "Pooling sweep: tx-object disciplines (none/cache/pool/batch) across allocators and txn counts",
		Plan: func(b *Builder) error {
			reps := b.Reps(1, 3)
			full := b.Spec().Full
			discs := poolDisciplines()
			threads := 8

			// Part 1: discipline x allocator at the fig4 operating point.
			grid := make([][]IntsetSweep, len(discs))
			for di, d := range discs {
				grid[di] = make([]IntsetSweep, len(Allocators()))
				for ai, aname := range Allocators() {
					cfg := intsetCfg(full, intset.HashSet, aname, threads)
					cfg.Pool = d
					grid[di][ai] = b.IntsetSweep(cfg, reps)
				}
			}

			// Part 2: discipline x total transactions on the default
			// allocator.
			totals := poolTxnTotals(full)
			scale := make([][]IntsetSweep, len(discs))
			for di, d := range discs {
				scale[di] = make([]IntsetSweep, len(totals))
				for ti, total := range totals {
					cfg := intsetCfg(full, intset.HashSet, "glibc", threads)
					cfg.Pool = d
					cfg.OpsPerThread = total / threads
					scale[di][ti] = b.IntsetSweep(cfg, reps)
				}
			}

			b.Reduce(func() (*Result, error) {
				res := &Result{ID: "pooling", Title: "Transaction-object pooling disciplines (hash set, 60% updates)"}

				t := Table{
					Title:   fmt.Sprintf("Throughput (tx/s) by discipline, %d threads", threads),
					Columns: []string{"Discipline"},
				}
				for _, a := range Allocators() {
					t.Columns = append(t.Columns, DisplayName(a))
				}
				t.Columns = append(t.Columns, "Pool hit rate")
				for di, d := range discs {
					row := []string{d.String()}
					var hits, gets uint64
					for ai := range Allocators() {
						row = append(row, fmt.Sprintf("%.3g", grid[di][ai].Thr().Mean))
						for _, c := range grid[di][ai].Cells() {
							if c.Pool != nil {
								hits += c.Pool.Hits
								gets += c.Pool.Hits + c.Pool.Misses
							}
						}
					}
					if gets > 0 {
						row = append(row, fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(gets)))
					} else {
						row = append(row, "-")
					}
					t.Rows = append(t.Rows, row)
				}
				res.Tables = append(res.Tables, t)

				st := Table{
					Title:   "Throughput (tx/s) vs total transactions (glibc)",
					Columns: []string{"Txns"},
				}
				series := make([]Series, len(discs))
				for di, d := range discs {
					st.Columns = append(st.Columns, d.String())
					series[di].Label = "pooling/" + d.String()
				}
				for ti, total := range totals {
					row := []string{fmt.Sprintf("%d", total)}
					for di := range discs {
						thr := scale[di][ti].Thr()
						row = append(row, fmt.Sprintf("%.3g", thr.Mean))
						series[di].X = append(series[di].X, float64(total))
						series[di].Y = append(series[di].Y, thr.Mean)
						series[di].Err = append(series[di].Err, thr.CI95)
					}
					st.Rows = append(st.Rows, row)
				}
				res.Tables = append(res.Tables, st)
				res.Series = append(res.Series, series...)
				res.Notes = []string{
					"none = per-tx malloc baseline; cache = the paper's §6.2 thread-local cache;",
					"pool = eager pool-and-reuse (contiguous refill runs); batch = slab carving.",
					"expected shape: the pooled disciplines converge as txn counts amortize warmup,",
					"with batch doing the fewest allocator operations.",
				}
				return res, nil
			})
			return nil
		},
	})
}
