// Package harness regenerates the paper's evaluation: every figure and
// table of Baldassin, Borin & Araujo (PPoPP 2015) has a registered
// experiment that runs the corresponding workloads on this repository's
// substrate and prints the same rows/series the paper reports.
//
// Experiments run at two scales: Quick (default; minutes for the whole
// suite, preserving every qualitative shape) and Full (the paper's
// parameters where feasible).
package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/obs"
	"repro/internal/stm"
)

// Options configure an experiment run.
type Options struct {
	Full bool          // paper-scale parameters instead of quick ones
	Reps int           // repetitions for mean/CI (defaults per experiment)
	Seed uint64        // base seed; reps derive their own
	Obs  *obs.Recorder // observability sink threaded into every workload; nil disables

	// Robustness knobs, threaded into every workload run.
	CM       string  // contention manager name (stm.ParseCM); "" = suicide
	RetryCap uint64  // irrevocable-fallback threshold (0 = STM default)
	Fault    string  // fault-plan spec (internal/fault grammar); "" disables
	Deadline uint64  // virtual-cycle watchdog bound per workload phase; 0 disables
	Health   *Health // aggregated run status across the experiment; nil disables
}

// Health aggregates workload run statuses across one experiment:
// the worst of ok < degraded < failed wins, and every non-ok failure
// detail is kept so the run record explains how the run was wound down.
type Health struct {
	status   string
	failures []string
}

func statusRank(s string) int {
	switch s {
	case obs.StatusFailed:
		return 2
	case obs.StatusDegraded:
		return 1
	}
	return 0
}

// Note folds one workload outcome into the aggregate.
func (h *Health) Note(status, failure string) {
	if h == nil {
		return
	}
	if statusRank(status) > statusRank(h.status) {
		h.status = status
	}
	if failure != "" {
		h.failures = append(h.failures, failure)
	}
}

// Status returns the aggregated status ("" means every run was ok).
func (h *Health) Status() string {
	if h == nil {
		return ""
	}
	return h.status
}

// Failure returns a one-line summary of the collected failure details.
func (h *Health) Failure() string {
	if h == nil || len(h.failures) == 0 {
		return ""
	}
	if len(h.failures) == 1 {
		return h.failures[0]
	}
	return fmt.Sprintf("%s (+%d more)", h.failures[0], len(h.failures)-1)
}

// stmCM resolves the options' contention-manager name.
func (o Options) stmCM() (stm.CM, error) { return stm.ParseCM(o.CM) }

func (o Options) reps(quick, full int) int {
	if o.Reps > 0 {
		return o.Reps
	}
	if o.Full {
		return full
	}
	return quick
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 0x9a9e7
	}
	return o.Seed
}

// Table is one printable table of results.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Series is one plottable line: label plus (x, y[, err]) points.
type Series struct {
	Label string
	X     []float64
	Y     []float64
	Err   []float64
}

// Result is what an experiment produces.
type Result struct {
	ID     string
	Title  string
	Tables []Table
	Series []Series
	Notes  []string
}

// Experiment regenerates one paper item.
type Experiment struct {
	ID    string // "fig1", "tab4", ...
	Paper string // what it reproduces
	Run   func(opts Options) (*Result, error)
}

var registry = map[string]*Experiment{}

// Register installs an experiment (called from this package's files).
func Register(e *Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("harness: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given id.
func Get(id string) (*Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// IDs returns all experiment ids in presentation order.
func IDs() []string {
	order := []string{
		"tab1", "tab2", "fig1", "fig2", "fig3",
		"fig4", "tab3", "tab4", "fig5", "fig6",
		"fig4rates", "tab5", "appchar", "fig7", "tab6", "fig8", "tab7", "hytm",
	}
	var out []string
	for _, id := range order {
		if _, ok := registry[id]; ok {
			out = append(out, id)
		}
	}
	var rest []string
	for id := range registry {
		found := false
		for _, o := range out {
			if o == id {
				found = true
			}
		}
		if !found {
			rest = append(rest, id)
		}
	}
	sort.Strings(rest)
	return append(out, rest...)
}

// Print renders a result as text.
func Print(w io.Writer, r *Result) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	for _, t := range r.Tables {
		if t.Title != "" {
			fmt.Fprintf(w, "\n-- %s --\n", t.Title)
		}
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, strings.Join(t.Columns, "\t"))
		for _, row := range t.Rows {
			fmt.Fprintln(tw, strings.Join(row, "\t"))
		}
		tw.Flush()
	}
	for _, s := range r.Series {
		fmt.Fprintf(w, "\nseries %s:\n", s.Label)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		for i := range s.X {
			if len(s.Err) == len(s.X) && s.Err[i] != 0 {
				fmt.Fprintf(tw, "  x=%g\ty=%.4g\t±%.2g\n", s.X[i], s.Y[i], s.Err[i])
			} else {
				fmt.Fprintf(tw, "  x=%g\ty=%.4g\n", s.X[i], s.Y[i])
			}
		}
		tw.Flush()
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// RunRecordFor converts an experiment result into the machine-readable
// run artifact, attaching whatever the options' recorder collected.
func RunRecordFor(r *Result, opts Options) *obs.RunRecord {
	cfg := obs.RunConfig{Full: opts.Full, Reps: opts.Reps, Seed: opts.seed()}
	if opts.CM != "" || opts.RetryCap != 0 || opts.Fault != "" || opts.Deadline != 0 {
		cfg.Extra = map[string]string{}
		if opts.CM != "" {
			cfg.Extra["cm"] = opts.CM
		}
		if opts.RetryCap != 0 {
			cfg.Extra["retry_cap"] = fmt.Sprintf("%d", opts.RetryCap)
		}
		if opts.Fault != "" {
			cfg.Extra["fault"] = opts.Fault
		}
		if opts.Deadline != 0 {
			cfg.Extra["deadline"] = fmt.Sprintf("%d", opts.Deadline)
		}
	}
	rec := &obs.RunRecord{
		Schema:     obs.RunRecordSchema,
		Experiment: r.ID,
		Title:      r.Title,
		Status:     opts.Health.Status(),
		Failure:    opts.Health.Failure(),
		Config:     cfg,
		Notes:      r.Notes,
	}
	for _, t := range r.Tables {
		rec.Tables = append(rec.Tables, obs.Table{Title: t.Title, Columns: t.Columns, Rows: t.Rows})
	}
	for _, s := range r.Series {
		rec.Series = append(rec.Series, obs.Series{Label: s.Label, X: s.X, Y: s.Y, Err: s.Err})
	}
	rec.Attach(opts.Obs)
	return rec
}

// Allocators lists the allocator names in the paper's order.
func Allocators() []string { return []string{"glibc", "hoard", "tbb", "tcmalloc"} }

// DisplayName maps an allocator name to the paper's capitalization.
func DisplayName(a string) string {
	switch a {
	case "glibc":
		return "Glibc"
	case "hoard":
		return "Hoard"
	case "tbb":
		return "TBBMalloc"
	case "tcmalloc":
		return "TCMalloc"
	}
	return a
}

// bestWorst returns the indices of the min and max of xs (lower is
// better when lowerBetter).
func bestWorst(xs []float64, lowerBetter bool) (best, worst int) {
	best, worst = 0, 0
	for i, v := range xs {
		if lowerBetter && v < xs[best] || !lowerBetter && v > xs[best] {
			best = i
		}
		if lowerBetter && v > xs[worst] || !lowerBetter && v < xs[worst] {
			worst = i
		}
	}
	return best, worst
}

// pctDiff returns |a-b| / min(a,b) * 100.
func pctDiff(a, b float64) float64 {
	lo := a
	if b < lo {
		lo = b
	}
	hi := a + b - lo
	if lo == 0 {
		return 0
	}
	return (hi - lo) / lo * 100
}
