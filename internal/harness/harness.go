// Package harness regenerates the paper's evaluation: every figure and
// table of Baldassin, Borin & Araujo (PPoPP 2015) has a registered
// experiment that runs the corresponding workloads on this repository's
// substrate and prints the same rows/series the paper reports.
//
// Experiments run at two scales: Quick (default; minutes for the whole
// suite, preserving every qualitative shape) and Full (the paper's
// parameters where feasible).
package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/obs"
)

// Health aggregates workload run statuses across one experiment:
// the worst of ok < degraded < failed wins, and every non-ok failure
// detail is kept so the run record explains how the run was wound down.
type Health struct {
	status   string
	failures []string
}

func statusRank(s string) int {
	switch s {
	case obs.StatusFailed:
		return 2
	case obs.StatusDegraded:
		return 1
	}
	return 0
}

// Note folds one workload outcome into the aggregate.
func (h *Health) Note(status, failure string) {
	if h == nil {
		return
	}
	if statusRank(status) > statusRank(h.status) {
		h.status = status
	}
	if failure != "" {
		h.failures = append(h.failures, failure)
	}
}

// Status returns the aggregated status ("" means every run was ok).
func (h *Health) Status() string {
	if h == nil {
		return ""
	}
	return h.status
}

// Failure returns a one-line summary of the collected failure details.
func (h *Health) Failure() string {
	if h == nil || len(h.failures) == 0 {
		return ""
	}
	if len(h.failures) == 1 {
		return h.failures[0]
	}
	return fmt.Sprintf("%s (+%d more)", h.failures[0], len(h.failures)-1)
}

// Table is one printable table of results.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Series is one plottable line: label plus (x, y[, err]) points.
type Series struct {
	Label string
	X     []float64
	Y     []float64
	Err   []float64
}

// Result is what an experiment produces.
type Result struct {
	ID     string
	Title  string
	Tables []Table
	Series []Series
	Notes  []string
}

// Experiment regenerates one paper item. Plan declares the
// experiment's cells against the builder and installs the reducer that
// folds their payloads into the printable Result; the session (or the
// legacy Run adapter) executes the cells through the sweep scheduler.
type Experiment struct {
	ID    string // "fig1", "tab4", ...
	Paper string // what it reproduces
	Plan  func(b *Builder) error
}

var registry = map[string]*Experiment{}

// Register installs an experiment (called from this package's files).
func Register(e *Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("harness: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given id.
func Get(id string) (*Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// IDs returns all experiment ids in presentation order.
func IDs() []string {
	order := []string{
		"tab1", "tab2", "fig1", "fig2", "fig3",
		"fig4", "tab3", "tab4", "fig5", "fig6",
		"fig4rates", "tab5", "appchar", "fig7", "tab6", "fig8", "tab7", "hytm", "pooling",
	}
	var out []string
	for _, id := range order {
		if _, ok := registry[id]; ok {
			out = append(out, id)
		}
	}
	var rest []string
	for id := range registry {
		found := false
		for _, o := range out {
			if o == id {
				found = true
			}
		}
		if !found {
			rest = append(rest, id)
		}
	}
	sort.Strings(rest)
	return append(out, rest...)
}

// Print renders a result as text.
func Print(w io.Writer, r *Result) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	for _, t := range r.Tables {
		if t.Title != "" {
			fmt.Fprintf(w, "\n-- %s --\n", t.Title)
		}
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, strings.Join(t.Columns, "\t"))
		for _, row := range t.Rows {
			fmt.Fprintln(tw, strings.Join(row, "\t"))
		}
		tw.Flush()
	}
	for _, s := range r.Series {
		fmt.Fprintf(w, "\nseries %s:\n", s.Label)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		for i := range s.X {
			if len(s.Err) == len(s.X) && s.Err[i] != 0 {
				fmt.Fprintf(tw, "  x=%g\ty=%.4g\t±%.2g\n", s.X[i], s.Y[i], s.Err[i])
			} else {
				fmt.Fprintf(tw, "  x=%g\ty=%.4g\n", s.X[i], s.Y[i])
			}
		}
		tw.Flush()
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Allocators lists the allocator names in the paper's order.
func Allocators() []string { return []string{"glibc", "hoard", "tbb", "tcmalloc"} }

// DisplayName maps an allocator name to the paper's capitalization.
func DisplayName(a string) string {
	switch a {
	case "glibc":
		return "Glibc"
	case "hoard":
		return "Hoard"
	case "tbb":
		return "TBBMalloc"
	case "tcmalloc":
		return "TCMalloc"
	}
	return a
}

// bestWorst returns the indices of the min and max of xs (lower is
// better when lowerBetter).
func bestWorst(xs []float64, lowerBetter bool) (best, worst int) {
	best, worst = 0, 0
	for i, v := range xs {
		if lowerBetter && v < xs[best] || !lowerBetter && v > xs[best] {
			best = i
		}
		if lowerBetter && v > xs[worst] || !lowerBetter && v < xs[worst] {
			worst = i
		}
	}
	return best, worst
}

// pctDiff returns |a-b| / min(a,b) * 100.
func pctDiff(a, b float64) float64 {
	lo := a
	if b < lo {
		lo = b
	}
	hi := a + b - lo
	if lo == 0 {
		return 0
	}
	return (hi - lo) / lo * 100
}
