package harness

import (
	"fmt"

	"repro/internal/intset"
)

// hytm: the paper's future-work configuration — the same allocator
// comparison on a best-effort HTM with lock-elision fallback, where
// conflicts are detected at cache-line granularity, so the allocator's
// line-sharing behaviour becomes transactional-abort behaviour
// directly.
func init() {
	Register(&Experiment{
		ID:    "hytm",
		Paper: "future work (§7): allocator influence on a best-effort HTM / hybrid TM",
		Plan: func(b *Builder) error {
			initial, keyRange, ops := intsetScale(b.Spec().Full, intset.HashSet)
			reps := b.Reps(1, 3)
			handles := make([][]Handle[HyTMCell], len(Allocators()))
			for ai, aname := range Allocators() {
				handles[ai] = make([]Handle[HyTMCell], reps)
				for r := 0; r < reps; r++ {
					handles[ai][r] = b.HyTM(intset.Config{
						Kind:         intset.HashSet,
						Allocator:    aname,
						Threads:      8,
						InitialSize:  initial,
						KeyRange:     keyRange,
						UpdatePct:    60,
						OpsPerThread: ops,
					}, r)
				}
			}
			b.Reduce(func() (*Result, error) {
				t := Table{
					Title: "hash set, 60% updates, 8 threads, HTM + lock-elision fallback",
					Columns: []string{
						"Allocator", "Throughput (tx/s)", "HTM commits", "HTM aborts",
						"conflict", "capacity", "lock", "alloc", "fallbacks",
					},
				}
				series := make([]Series, 1)
				series[0].Label = "HTM conflict aborts per allocator (x=allocator index)"
				for ai, aname := range Allocators() {
					var thr float64
					var agg HyTMCell
					for _, h := range handles[ai] {
						c := h.Get()
						thr += c.Throughput
						agg = c
					}
					thr /= float64(len(handles[ai]))
					st := agg.HTM
					t.Rows = append(t.Rows, []string{
						DisplayName(aname),
						fmt.Sprintf("%.3g", thr),
						fmt.Sprintf("%d", st.HTMCommits),
						fmt.Sprintf("%d", st.HTMAborts),
						fmt.Sprintf("%d", st.ByReason[0]), // conflict
						fmt.Sprintf("%d", st.ByReason[1]), // capacity
						fmt.Sprintf("%d", st.ByReason[2]), // lock
						fmt.Sprintf("%d", st.ByReason[3]), // alloc
						fmt.Sprintf("%d", st.Fallbacks),
					})
					series[0].X = append(series[0].X, float64(ai))
					series[0].Y = append(series[0].Y, float64(st.ByReason[0]))
				}
				return &Result{
					ID:     "hytm",
					Title:  "Allocators under hybrid (HTM + fallback) transactional memory",
					Tables: []Table{t},
					Series: series,
					Notes: []string{
						"HTM detects conflicts per 64-byte line: allocators that pack several nodes",
						"per line (or hand adjacent blocks to different threads) convert their",
						"false-sharing behaviour directly into transactional aborts.",
					},
				}, nil
			})
			return nil
		},
	})
}
