package harness

import (
	"fmt"

	"repro/internal/stamp"
)

// appchar: the qualitative application characterization the paper's §4
// leans on ("different behavior concerning time in transaction, level
// of contention, size of read/write sets, and transaction length"),
// measured from instrumented runs of this repository's ports.
func init() {
	Register(&Experiment{
		ID:    "appchar",
		Paper: "§4 application characterization: contention, set sizes, tx memory behaviour",
		Plan: func(b *Builder) error {
			apps := stamp.Names()
			probes := make([]Handle[StampProbe], len(apps))
			for pi, app := range apps {
				probes[pi] = b.StampProbeCell(stampCfg(b.Spec().Full, app, "tbb", 8))
			}
			b.Reduce(func() (*Result, error) {
				t := Table{
					Columns: []string{
						"App", "Commits", "Abort rate", "False aborts",
						"Max read set", "Max write set", "Tx mallocs", "Tx frees",
						"L1 miss",
					},
				}
				for pi, app := range apps {
					res := probes[pi].Get()
					t.Rows = append(t.Rows, []string{
						app,
						fmt.Sprintf("%d", res.Tx.Commits),
						fmt.Sprintf("%.1f%%", res.Tx.AbortRate()*100),
						fmt.Sprintf("%d", res.Tx.FalseAborts),
						fmt.Sprintf("%d", res.Tx.MaxReadSet),
						fmt.Sprintf("%d", res.Tx.MaxWriteSet),
						fmt.Sprintf("%d", res.Tx.AllocsInTx),
						fmt.Sprintf("%d", res.Tx.FreesInTx),
						fmt.Sprintf("%.2f%%", res.L1Miss*100),
					})
				}
				return &Result{
					ID:     "appchar",
					Title:  "STAMP characterization on this substrate (8 threads, TBBMalloc)",
					Tables: []Table{t},
					Notes: []string{
						"qualitative expectations: labyrinth/yada long transactions (large sets);",
						"kmeans/ssca2 short ones with no tx allocation; intruder/yada high contention.",
					},
				}, nil
			})
			return nil
		},
	})
}
