package harness

import (
	"fmt"

	"repro/internal/stamp"
)

// appchar: the qualitative application characterization the paper's §4
// leans on ("different behavior concerning time in transaction, level
// of contention, size of read/write sets, and transaction length"),
// measured from instrumented runs of this repository's ports.
func init() {
	Register(&Experiment{
		ID:    "appchar",
		Paper: "§4 application characterization: contention, set sizes, tx memory behaviour",
		Run: func(opts Options) (*Result, error) {
			t := Table{
				Columns: []string{
					"App", "Commits", "Abort rate", "False aborts",
					"Max read set", "Max write set", "Tx mallocs", "Tx frees",
					"L1 miss",
				},
			}
			cm, err := opts.stmCM()
			if err != nil {
				return nil, err
			}
			for _, app := range stamp.Names() {
				res, err := stamp.Run(stamp.Config{
					App: app, Allocator: "tbb", Threads: 8,
					Scale: stampScale(opts.Full), Seed: opts.seed(), Obs: opts.Obs,
					CM: cm, RetryCap: opts.RetryCap, Fault: opts.Fault, Deadline: opts.Deadline,
				})
				if err != nil {
					return nil, err
				}
				opts.Health.Note(res.Status, res.Failure)
				t.Rows = append(t.Rows, []string{
					app,
					fmt.Sprintf("%d", res.Tx.Commits),
					fmt.Sprintf("%.1f%%", res.Tx.AbortRate()*100),
					fmt.Sprintf("%d", res.Tx.FalseAborts),
					fmt.Sprintf("%d", res.Tx.MaxReadSet),
					fmt.Sprintf("%d", res.Tx.MaxWriteSet),
					fmt.Sprintf("%d", res.Tx.AllocsInTx),
					fmt.Sprintf("%d", res.Tx.FreesInTx),
					fmt.Sprintf("%.2f%%", res.L1Miss*100),
				})
			}
			return &Result{
				ID:     "appchar",
				Title:  "STAMP characterization on this substrate (8 threads, TBBMalloc)",
				Tables: []Table{t},
				Notes: []string{
					"qualitative expectations: labyrinth/yada long transactions (large sets);",
					"kmeans/ssca2 short ones with no tx allocation; intruder/yada high contention.",
				},
			}, nil
		},
	})
}
