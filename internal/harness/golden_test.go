package harness

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// goldenResult is a fixed Result exercising every formatter feature:
// titled and untitled tables, series with and without error bars, and
// notes.
func goldenResult() *Result {
	return &Result{
		ID:    "figX",
		Title: "Golden formatter fixture",
		Tables: []Table{
			{
				Columns: []string{"Threads", "Glibc", "Hoard"},
				Rows: [][]string{
					{"1", "1.00", "1.10"},
					{"8", "4.20", "6.30"},
				},
			},
			{
				Title:   "Best and worst",
				Columns: []string{"Application", "Best", "Worst"},
				Rows:    [][]string{{"list", "Glibc", "TCMalloc"}},
			},
		},
		Series: []Series{
			{Label: "list/Glibc", X: []float64{1, 2, 4}, Y: []float64{1, 1.8, 3.1}, Err: []float64{0, 0.2, 0.4}},
			{Label: "list/Hoard", X: []float64{1, 2, 4}, Y: []float64{1.1, 2.1, 3.9}},
		},
		Notes: []string{"fixture note: shapes, not absolute values"},
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/harness -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestPrintGolden(t *testing.T) {
	var buf bytes.Buffer
	Print(&buf, goldenResult())
	checkGolden(t, "print.golden", buf.Bytes())
}

func TestPrintMarkdownGolden(t *testing.T) {
	var buf bytes.Buffer
	PrintMarkdown(&buf, goldenResult())
	checkGolden(t, "markdown.golden", buf.Bytes())
}

func TestChartGolden(t *testing.T) {
	var buf bytes.Buffer
	Chart(&buf, goldenResult(), 48, 10)
	checkGolden(t, "chart.golden", buf.Bytes())
}

// Chart on a result without series must print nothing at all.
func TestChartNoSeries(t *testing.T) {
	var buf bytes.Buffer
	Chart(&buf, &Result{ID: "x"}, 48, 10)
	if buf.Len() != 0 {
		t.Fatalf("Chart printed %q for a series-less result", buf.String())
	}
}
