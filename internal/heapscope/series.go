// Package heapscope is the allocator-state telemetry layer: a
// deterministic, virtual-time-driven observer that snapshots each
// allocator's internals on a configurable virtual-cycle cadence and
// emits the result as a canonical tmheap/series/v1 time series.
//
// Where internal/obs records *events* and internal/prof attributes
// *cycles*, heapscope captures the evolving *shape* of the simulated
// heap: per-size-class free-list depths, internal/external
// fragmentation and blowup (in-use vs reserved bytes), hoard superblock
// occupancy and emptiness-threshold migrations, tcmalloc thread-cache
// vs central-list balances, per-cache-line sharing (distinct owning
// threads per 64-byte line, ownership churn) and ORT-stripe occupancy
// histograms — the placement state behind the paper's Fig. 2/Fig. 5
// pathologies.
//
// Everything here is a pure observer. The collector is driven from the
// vtime scheduler loop (never from a simulated thread), reads only the
// allocators' Go-side metadata through alloc.HeapInspector, and keeps
// its own shadow of the block lifecycle via mem.HeapWatcher — so a run
// with telemetry enabled is byte-identical to one without, and the
// emitted series is byte-identical at any sweep pool width.
package heapscope

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

// Schema identifies the series artifact format. tmlayout -heap-geometry
// emits the same schema with empty sample lists, so static geometry and
// runtime series are diffable with the same tooling.
const Schema = "tmheap/series/v1"

// DefaultCadence is the default snapshot interval in virtual cycles.
const DefaultCadence = 1 << 20

// Sample is one cadence-aligned snapshot of allocator state. Cycle is
// the virtual-time instant the snapshot describes; Epoch/Phase tie it to
// the workload phase (clocks reset between phases, so Cycle restarts).
type Sample struct {
	Epoch int    `json:"epoch"`
	Phase string `json:"phase"`
	Cycle uint64 `json:"cycle"`

	// Block-lifecycle shadow: what the application holds.
	LiveBlocks     uint64 `json:"live_blocks"`
	LiveBytes      uint64 `json:"live_bytes"`      // Σ usable (size-class) bytes of live blocks
	RequestedBytes uint64 `json:"requested_bytes"` // Σ requested bytes of live blocks

	// Allocator footprint and the derived fragmentation ratios.
	ReservedBytes uint64  `json:"reserved_bytes"` // allocator-mapped bytes (arenas/superblocks/spans/mmaps)
	InternalFrag  float64 `json:"internal_frag"`  // (live − requested) / live
	ExternalFrag  float64 `json:"external_frag"`  // (reserved − live) / reserved
	Blowup        float64 `json:"blowup"`         // reserved / live

	// Free capacity, split by synchronization regime.
	FreeBlocks   uint64   `json:"free_blocks"`
	FreeBytes    uint64   `json:"free_bytes"`
	FreeDepths   []uint64 `json:"free_depths,omitempty"` // per class, aligned with Series.Classes
	CacheBytes   uint64   `json:"cache_bytes"`           // idle in sync-free thread-local caches
	CentralBytes uint64   `json:"central_bytes"`         // idle on shared (central/global/bin) lists

	// Superblock/arena structure.
	Superblocks      uint64  `json:"superblocks"`
	EmptySuperblocks uint64  `json:"empty_superblocks"`
	Occupancy        float64 `json:"occupancy"` // used blocks / block capacity across assigned superblocks
	Migrations       uint64  `json:"migrations"`
	Arenas           uint64  `json:"arenas"`

	// Placement sharing: cache lines and ORT stripes.
	SharedLines uint64   `json:"shared_lines"` // 64-byte lines holding live blocks of ≥2 threads
	LineChurn   uint64   `json:"line_churn"`   // cumulative line-ownership extensions
	MaxStripe   uint64   `json:"max_stripe"`   // max live blocks aliasing one ORT entry
	StripeHist  []uint64 `json:"stripe_hist"`  // ORT entries by live-block count: [1, 2, 3, 4+]
}

// Geometry is an allocator's static layout parameters — stable for its
// lifetime, emitted with every series and standalone by tmlayout
// -heap-geometry.
type Geometry struct {
	SuperblockBytes uint64 `json:"superblock_bytes"` // superblock/span/arena granularity
	MinBlock        uint64 `json:"min_block"`
	MaxBlock        uint64 `json:"max_block"` // largest class-served request
}

// Series is one allocator's telemetry over one sweep cell.
type Series struct {
	Label     string    `json:"label"` // the cell's cache key — its identity across runs
	Allocator string    `json:"allocator"`
	Cadence   uint64    `json:"cadence"`
	Classes   []uint64  `json:"classes,omitempty"` // static class table (empty: dynamic bins)
	Geometry  *Geometry `json:"geometry,omitempty"`
	Samples   []Sample  `json:"samples"`
}

// Set is the tmheap/series/v1 artifact: the series of every observed
// cell of one experiment, in deterministic cell-index order.
type Set struct {
	Schema string    `json:"schema"`
	Label  string    `json:"label,omitempty"` // experiment name
	Series []*Series `json:"series"`
}

// NewSet returns an empty artifact stamped with the schema.
func NewSet(label string) *Set {
	return &Set{Schema: Schema, Label: label, Series: []*Series{}}
}

// Add appends a series (nil-safe on the series for skipped cells).
func (s *Set) Add(sr *Series) {
	if sr != nil {
		s.Series = append(s.Series, sr)
	}
}

// Info summarizes the artifact for the run record's HeapInfo block.
func (s *Set) Info() *obs.HeapInfo {
	if s == nil {
		return nil
	}
	info := &obs.HeapInfo{Schema: Schema}
	seen := map[string]bool{}
	for _, sr := range s.Series {
		info.Series++
		info.Samples += len(sr.Samples)
		if info.Cadence == 0 {
			info.Cadence = sr.Cadence
		}
		if !seen[sr.Allocator] {
			seen[sr.Allocator] = true
			info.Allocators = append(info.Allocators, sr.Allocator)
		}
	}
	return info
}

// WriteJSON serializes the artifact with stable formatting.
func (s *Set) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteFile writes the artifact to path.
func (s *Set) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadJSON deserializes a tmheap/series/v1 artifact, rejecting unknown
// schemas rather than silently misreading them.
func ReadJSON(r io.Reader) (*Set, error) {
	var s Set
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	if s.Schema != Schema {
		return nil, fmt.Errorf("heapscope: unknown series schema %q (want %q)", s.Schema, Schema)
	}
	return &s, nil
}

// ReadFile reads the artifact at path.
func ReadFile(path string) (*Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := ReadJSON(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
