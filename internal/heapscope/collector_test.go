package heapscope

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/vtime"
)

// fakeHeap is a hand-constructed HeapInspector: every snapshot sees
// exactly the state the test planted, so the fragmentation and blowup
// arithmetic is checked against paper definitions, not another
// implementation.
type fakeHeap struct {
	st alloc.HeapState
}

func (f *fakeHeap) Name() string                             { return "fake" }
func (f *fakeHeap) Malloc(*vtime.Thread, uint64) mem.Addr    { return 0 }
func (f *fakeHeap) Free(*vtime.Thread, mem.Addr)             {}
func (f *fakeHeap) BlockSize(*vtime.Thread, mem.Addr) uint64 { return 0 }
func (f *fakeHeap) Stats() alloc.Stats                       { return alloc.Stats{} }
func (f *fakeHeap) Describe() alloc.Description              { return alloc.Description{} }
func (f *fakeHeap) InspectHeap() alloc.HeapState             { return f.st }

func attach(t *testing.T, st alloc.HeapState, cadence uint64) *Collector {
	t.Helper()
	c := New(cadence)
	c.Attach(&fakeHeap{st: st}, mem.NewSpace())
	return c
}

func almost(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

// TestFragmentationMath pins the three ratios against a hand-built
// heap: two live blocks (64B class holding a 48B request, 128B class
// holding a 100B request) inside a 4096-byte reservation.
func TestFragmentationMath(t *testing.T) {
	st := alloc.HeapState{
		Reserved: 4096,
		Classes: []alloc.HeapClass{
			{Size: 64, Free: 2, Cached: 1},
			{Size: 128, Free: 0, Cached: 0},
		},
		CacheBytes:      64,
		CentralBytes:    128,
		SuperblockBytes: 1024,
		MinBlock:        8,
		MaxBlock:        128,
	}
	c := attach(t, st, 1<<20)
	c.OnHeapAlloc("fake", 0x1000, 48, 64, 0, 10)
	c.OnHeapAlloc("fake", 0x2000, 100, 128, 1, 20)
	c.Finish(100)

	if len(c.samples) != 1 {
		t.Fatalf("samples = %d, want 1", len(c.samples))
	}
	s := c.samples[0]
	if s.LiveBlocks != 2 || s.LiveBytes != 192 || s.RequestedBytes != 148 {
		t.Fatalf("live = %d blocks / %d usable / %d requested, want 2/192/148",
			s.LiveBlocks, s.LiveBytes, s.RequestedBytes)
	}
	almost(t, "internal frag", s.InternalFrag, float64(192-148)/192)
	almost(t, "external frag", s.ExternalFrag, float64(4096-192)/4096)
	almost(t, "blowup", s.Blowup, 4096.0/192)
	if s.ReservedBytes != 4096 {
		t.Errorf("reserved = %d, want 4096", s.ReservedBytes)
	}
	if want := []uint64{3, 0}; len(s.FreeDepths) != 2 || s.FreeDepths[0] != want[0] || s.FreeDepths[1] != want[1] {
		t.Errorf("free depths = %v, want %v", s.FreeDepths, want)
	}
	if s.FreeBlocks != 3 || s.FreeBytes != 192 {
		t.Errorf("free = %d blocks / %d bytes, want 3/192", s.FreeBlocks, s.FreeBytes)
	}
}

// TestEmptyHeapRatios: with nothing live, every ratio must stay finite
// (zero live bytes divides nothing).
func TestEmptyHeapRatios(t *testing.T) {
	c := attach(t, alloc.HeapState{Reserved: 4096}, 1<<20)
	c.Finish(50)
	s := c.samples[0]
	if s.InternalFrag != 0 || s.Blowup != 0 {
		t.Errorf("empty heap: internal=%v blowup=%v, want 0/0", s.InternalFrag, s.Blowup)
	}
	almost(t, "external frag of empty heap", s.ExternalFrag, 1.0)
}

// TestLineSharing drives two threads onto one 64-byte line and back
// off it, checking the incremental shared-line count and churn.
func TestLineSharing(t *testing.T) {
	c := attach(t, alloc.HeapState{}, 1<<20)
	c.OnHeapAlloc("fake", 0x40, 32, 32, 0, 1) // line 1
	if c.sharedLines != 0 || c.churn != 0 {
		t.Fatalf("one owner: shared=%d churn=%d, want 0/0", c.sharedLines, c.churn)
	}
	c.OnHeapAlloc("fake", 0x60, 32, 32, 1, 2) // same line, other thread
	if c.sharedLines != 1 {
		t.Errorf("two owners: shared = %d, want 1", c.sharedLines)
	}
	if c.churn != 1 {
		t.Errorf("ownership extension: churn = %d, want 1", c.churn)
	}
	c.OnHeapFree(0x60, 1, 3)
	if c.sharedLines != 0 {
		t.Errorf("back to one owner: shared = %d, want 0", c.sharedLines)
	}
	c.OnHeapFree(0x40, 0, 4)
	if len(c.lines) != 0 {
		t.Errorf("all freed: %d lines tracked, want 0", len(c.lines))
	}
	if c.churn != 1 {
		t.Errorf("churn is cumulative: got %d, want 1", c.churn)
	}
}

// TestReuseRevivesWithNewOwner mirrors the shadow-map semantics: a
// tx-cache reuse revives the freed block with the reusing thread as
// owner and the original extent.
func TestReuseRevivesWithNewOwner(t *testing.T) {
	c := attach(t, alloc.HeapState{}, 1<<20)
	c.OnHeapAlloc("fake", 0x40, 24, 32, 0, 1)
	c.OnHeapFree(0x40, 0, 2)
	if c.liveBlocks != 0 {
		t.Fatalf("after free: %d live, want 0", c.liveBlocks)
	}
	c.OnHeapReuse(0x40, 3, 3)
	if c.liveBlocks != 1 || c.liveBytes != 32 || c.reqBytes != 24 {
		t.Fatalf("after reuse: %d live / %d usable / %d req, want 1/32/24",
			c.liveBlocks, c.liveBytes, c.reqBytes)
	}
	ln := c.lines[0x40>>lineShift]
	if ln == nil || ln.owners[3] != 1 || len(ln.owners) != 1 {
		t.Errorf("reused block must be owned by the reusing thread: %+v", ln)
	}
	// Reuse of a live block and free of an unknown base are ignored.
	c.OnHeapReuse(0x40, 5, 4)
	c.OnHeapFree(0xdead0, 0, 5)
	if c.liveBlocks != 1 || c.lines[0x40>>lineShift].owners[3] != 1 {
		t.Error("reuse-of-live / free-of-unknown must be no-ops")
	}
}

// TestSameBaseOverwrite: the allocator handing out a base the watcher
// still tracks as live (mirrors the shadow map's overwrite) retracts
// the stale entry first, keeping totals exact.
func TestSameBaseOverwrite(t *testing.T) {
	c := attach(t, alloc.HeapState{}, 1<<20)
	c.OnHeapAlloc("fake", 0x100, 16, 16, 0, 1)
	c.OnHeapAlloc("fake", 0x100, 64, 64, 1, 2)
	if c.liveBlocks != 1 || c.liveBytes != 64 || c.reqBytes != 64 {
		t.Errorf("overwrite: %d live / %d usable / %d req, want 1/64/64",
			c.liveBlocks, c.liveBytes, c.reqBytes)
	}
}

// TestStripeOccupancy checks the ORT aliasing histogram: two blocks a
// full table apart land on the same entry.
func TestStripeOccupancy(t *testing.T) {
	c := attach(t, alloc.HeapState{}, 1<<20)
	c.OnHeapAlloc("fake", 0x40, 32, 32, 0, 1)
	alias := mem.Addr(0x40 + (uint64(c.ortSize) << c.shift))
	c.OnHeapAlloc("fake", alias, 32, 32, 1, 2)
	c.Finish(10)
	s := c.samples[0]
	if s.MaxStripe != 2 {
		t.Errorf("max stripe = %d, want 2 (aliased entry)", s.MaxStripe)
	}
	if want := []uint64{0, 1, 0, 0}; len(s.StripeHist) != 4 ||
		s.StripeHist[0] != want[0] || s.StripeHist[1] != want[1] ||
		s.StripeHist[2] != want[2] || s.StripeHist[3] != want[3] {
		t.Errorf("stripe hist = %v, want %v", s.StripeHist, want)
	}
	c.OnHeapFree(alias, 1, 3)
	c.Finish(20)
	s = c.samples[1]
	if s.MaxStripe != 1 || s.StripeHist[0] != 1 || s.StripeHist[1] != 0 {
		t.Errorf("after free: max=%d hist=%v, want 1 and [1 0 0 0]", s.MaxStripe, s.StripeHist)
	}
}

// TestCadenceAndPhases: Sample emits one snapshot per elapsed cadence
// interval stamped at its exact due cycle, and Phase restarts the
// cycle axis under a new epoch.
func TestCadenceAndPhases(t *testing.T) {
	c := attach(t, alloc.HeapState{}, 100)
	c.Sample(50) // nothing due yet
	if len(c.samples) != 0 {
		t.Fatalf("before first cadence: %d samples, want 0", len(c.samples))
	}
	c.Sample(350) // catches up: due at 100, 200, 300
	if len(c.samples) != 3 {
		t.Fatalf("after catch-up: %d samples, want 3", len(c.samples))
	}
	for i, want := range []uint64{100, 200, 300} {
		if c.samples[i].Cycle != want {
			t.Errorf("sample %d at cycle %d, want %d", i, c.samples[i].Cycle, want)
		}
		if c.samples[i].Epoch != 0 || c.samples[i].Phase != "init" {
			t.Errorf("sample %d epoch/phase = %d/%q, want 0/init", i, c.samples[i].Epoch, c.samples[i].Phase)
		}
	}
	c.Phase("run", 360)
	c.Sample(150)
	c.Finish(170)
	n := len(c.samples)
	if n != 6 {
		t.Fatalf("after phase: %d samples, want 6", n)
	}
	if s := c.samples[3]; s.Cycle != 360 || s.Epoch != 0 || s.Phase != "init" {
		t.Errorf("phase-close sample = cycle %d epoch %d %q, want 360/0/init", s.Cycle, s.Epoch, s.Phase)
	}
	if s := c.samples[4]; s.Cycle != 100 || s.Epoch != 1 || s.Phase != "run" {
		t.Errorf("new-phase sample = cycle %d epoch %d %q, want 100/1/run", s.Cycle, s.Epoch, s.Phase)
	}
}

// TestSeriesRoundTrip: WriteJSON then ReadJSON reproduces the set, and
// Info summarizes it for the run record.
func TestSeriesRoundTrip(t *testing.T) {
	c := attach(t, alloc.HeapState{Reserved: 1024, SuperblockBytes: 512, MinBlock: 8, MaxBlock: 256,
		Classes: []alloc.HeapClass{{Size: 16}}}, 1<<20)
	c.OnHeapAlloc("fake", 0x40, 16, 16, 0, 1)
	c.Finish(42)
	set := NewSet("test")
	set.Add(c.Series("cell/a"))
	set.Add(nil) // skipped cells are nil-safe

	var buf bytes.Buffer
	if err := set.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Series) != 1 || got.Series[0].Allocator != "fake" || len(got.Series[0].Samples) != 1 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Series[0].Geometry == nil || got.Series[0].Geometry.SuperblockBytes != 512 {
		t.Errorf("geometry lost in round trip: %+v", got.Series[0].Geometry)
	}

	info := set.Info()
	if info.Schema != Schema || info.Series != 1 || info.Samples != 1 || info.Cadence != 1<<20 {
		t.Errorf("info = %+v, want schema/1 series/1 sample/default cadence", info)
	}
	if len(info.Allocators) != 1 || info.Allocators[0] != "fake" {
		t.Errorf("info allocators = %v, want [fake]", info.Allocators)
	}

	// Unknown schemas are rejected, not misread.
	if _, err := ReadJSON(bytes.NewReader([]byte(`{"schema":"bogus/v9","series":[]}`))); err == nil {
		t.Error("unknown schema must fail to decode")
	}
}
