package heapscope

import (
	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/stm"
)

// lineShift is the cache-line granularity of the sharing map (64-byte
// lines, matching the cache model).
const lineShift = 6

// block is the collector's shadow of one live allocation. Mirroring the
// sanitizer's shadow-map semantics: an entry survives its free (freed
// flag) so a later OnHeapReuse can revive it with the original extent.
type block struct {
	usable uint64
	req    uint64
	tid    int // owning (allocating or reusing) thread
	freed  bool
}

// line tracks which threads own live blocks touching one 64-byte line.
type line struct {
	owners map[int]uint32 // tid -> live blocks of that thread on this line
}

// Collector is the per-cell telemetry instrument. It implements
// mem.HeapWatcher (block-lifecycle shadow) and vtime.HeapSampler
// (cadence-driven snapshots); Attach wires it to one allocator and its
// space. It keeps running counters so a snapshot is O(size classes),
// never O(heap).
//
// A Collector is single-cell, single-engine state: the vtime engine
// serializes all callbacks, so no locking is needed, and because every
// input is virtual-time-deterministic, the collected series is
// byte-identical across host schedules and sweep pool widths.
type Collector struct {
	cadence uint64
	shift   uint   // ORT placement-key shift (stripe bytes = 1<<shift)
	ortSize uint64 // ORT entry count for aliasing

	name string
	heap alloc.Allocator
	rec  *obs.Recorder // Prometheus gauges + Perfetto counter tracks; nil disables

	// Block-lifecycle shadow with running totals.
	blocks     map[mem.Addr]*block
	liveBlocks uint64
	liveBytes  uint64
	reqBytes   uint64

	// Cache-line sharing map.
	lines       map[uint64]*line
	sharedLines uint64 // lines currently owned by ≥2 threads
	churn       uint64 // cumulative ownership extensions of nonempty lines

	// ORT-stripe occupancy: live blocks aliasing each ORT entry, with an
	// incrementally maintained count histogram (occHist[c] = entries with
	// exactly c aliasing blocks; index 0 unused).
	stripes map[uint64]uint32
	occHist []uint64

	epoch   int
	phase   string
	nextDue uint64
	classes []uint64
	geom    *Geometry
	samples []Sample
}

// New builds a collector snapshotting every cadence virtual cycles
// (0 selects DefaultCadence). The ORT geometry defaults to the STM's.
func New(cadence uint64) *Collector {
	if cadence == 0 {
		cadence = DefaultCadence
	}
	return &Collector{
		cadence: cadence,
		shift:   stm.DefaultShift,
		ortSize: 1 << stm.DefaultOrtBits,
		blocks:  make(map[mem.Addr]*block),
		lines:   make(map[uint64]*line),
		stripes: make(map[uint64]uint32),
		occHist: make([]uint64, 1),
		phase:   "init",
		nextDue: cadence,
	}
}

// Attach wires the collector to one allocator and its space: the class
// table and static geometry are read once, and the space's heap-watcher
// slot is taken. Call before any simulated thread allocates.
func (c *Collector) Attach(a alloc.Allocator, space *mem.Space) {
	c.heap = a
	c.name = a.Name()
	if st, ok := alloc.InspectHeap(a); ok {
		for _, cl := range st.Classes {
			c.classes = append(c.classes, cl.Size)
		}
		c.geom = &Geometry{
			SuperblockBytes: st.SuperblockBytes,
			MinBlock:        st.MinBlock,
			MaxBlock:        st.MaxBlock,
		}
	}
	space.SetHeapWatcher(c)
}

// SetRecorder attaches the obs recorder that receives Prometheus gauges
// and Perfetto counter samples alongside the series (nil disables).
func (c *Collector) SetRecorder(r *obs.Recorder) { c.rec = r }

// Cadence returns the snapshot interval in virtual cycles.
func (c *Collector) Cadence() uint64 { return c.cadence }

// Sample implements vtime.HeapSampler: called from the scheduler loop
// with the monotone min-runnable clock, it snapshots once per elapsed
// cadence interval, stamping each snapshot at its exact due cycle so
// the series is a pure function of virtual time.
func (c *Collector) Sample(now uint64) {
	for now >= c.nextDue {
		c.snapshot(c.nextDue)
		c.nextDue += c.cadence
	}
}

// Phase closes the outgoing phase with a snapshot at now (its final
// clock) and starts a new epoch named name. Workloads call it where
// they reset the engine clocks, so Cycle restarts with the new phase.
func (c *Collector) Phase(name string, now uint64) {
	c.snapshot(now)
	c.epoch++
	c.phase = name
	c.nextDue = c.cadence
}

// Finish closes the final phase with a snapshot at now (the region's
// end clock).
func (c *Collector) Finish(now uint64) { c.snapshot(now) }

// Series packages the collected samples under the cell's label.
func (c *Collector) Series(label string) *Series {
	samples := c.samples
	if samples == nil {
		samples = []Sample{}
	}
	return &Series{
		Label:     label,
		Allocator: c.name,
		Cadence:   c.cadence,
		Classes:   c.classes,
		Geometry:  c.geom,
		Samples:   samples,
	}
}

// OnHeapAlloc implements mem.HeapWatcher.
func (c *Collector) OnHeapAlloc(_ string, base mem.Addr, req, usable uint64, tid int, _ uint64) {
	if b, ok := c.blocks[base]; ok {
		if !b.freed {
			// Same base handed out twice without an intervening free (the
			// shadow map overwrites here too): retract the stale entry.
			c.retract(base, b)
		}
		delete(c.blocks, base)
	}
	b := &block{usable: usable, req: req, tid: tid}
	c.blocks[base] = b
	c.admit(base, b)
}

// OnHeapFree implements mem.HeapWatcher: first free wins; unknown bases
// (bad pointers the allocator rejects after notifying) are ignored.
func (c *Collector) OnHeapFree(base mem.Addr, _ int, _ uint64) {
	b, ok := c.blocks[base]
	if !ok || b.freed {
		return
	}
	b.freed = true
	c.retract(base, b)
}

// OnHeapReuse implements mem.HeapWatcher: a block revived from a
// transaction-local cache comes back with its original extent but the
// reusing thread as owner.
func (c *Collector) OnHeapReuse(base mem.Addr, tid int, _ uint64) {
	b, ok := c.blocks[base]
	if !ok || !b.freed {
		return
	}
	b.freed = false
	b.tid = tid
	c.admit(base, b)
}

// admit adds a live block's contributions to the running counters.
func (c *Collector) admit(base mem.Addr, b *block) {
	c.liveBlocks++
	c.liveBytes += b.usable
	c.reqBytes += b.req
	end := base + mem.Addr(b.usable) - 1
	for l := uint64(base) >> lineShift; l <= uint64(end)>>lineShift; l++ {
		ln := c.lines[l]
		if ln == nil {
			ln = &line{owners: make(map[int]uint32)}
			c.lines[l] = ln
		}
		if len(ln.owners) > 0 && ln.owners[b.tid] == 0 {
			c.churn++
		}
		before := len(ln.owners)
		ln.owners[b.tid]++
		if before == 1 && len(ln.owners) == 2 {
			c.sharedLines++
		}
	}
	for k := uint64(base) >> c.shift; k <= uint64(end)>>c.shift; k++ {
		c.stripeDelta(k%c.ortSize, +1)
	}
}

// retract removes a block's contributions (on free, or on a same-base
// overwrite).
func (c *Collector) retract(base mem.Addr, b *block) {
	c.liveBlocks--
	c.liveBytes -= b.usable
	c.reqBytes -= b.req
	end := base + mem.Addr(b.usable) - 1
	for l := uint64(base) >> lineShift; l <= uint64(end)>>lineShift; l++ {
		ln := c.lines[l]
		if ln == nil {
			continue
		}
		if n := ln.owners[b.tid]; n > 1 {
			ln.owners[b.tid] = n - 1
		} else {
			delete(ln.owners, b.tid)
			if len(ln.owners) == 1 {
				c.sharedLines--
			}
			if len(ln.owners) == 0 {
				delete(c.lines, l)
			}
		}
	}
	for k := uint64(base) >> c.shift; k <= uint64(end)>>c.shift; k++ {
		c.stripeDelta(k%c.ortSize, -1)
	}
}

// stripeDelta adjusts one ORT entry's live-block count and keeps the
// occupancy histogram in step.
func (c *Collector) stripeDelta(entry uint64, d int) {
	old := c.stripes[entry]
	if old > 0 {
		c.occHist[old]--
	}
	var nw uint32
	if d > 0 {
		nw = old + 1
	} else if old > 0 {
		nw = old - 1
	}
	if nw == 0 {
		delete(c.stripes, entry)
		return
	}
	c.stripes[entry] = nw
	for uint32(len(c.occHist)) <= nw {
		c.occHist = append(c.occHist, 0)
	}
	c.occHist[nw]++
}

// snapshot appends one sample at virtual cycle cyc, combining the
// running lifecycle counters with a fresh InspectHeap view. Pure
// observation: Go-side state only.
func (c *Collector) snapshot(cyc uint64) {
	s := Sample{
		Epoch:          c.epoch,
		Phase:          c.phase,
		Cycle:          cyc,
		LiveBlocks:     c.liveBlocks,
		LiveBytes:      c.liveBytes,
		RequestedBytes: c.reqBytes,
		SharedLines:    c.sharedLines,
		LineChurn:      c.churn,
	}
	if c.liveBytes > 0 {
		s.InternalFrag = float64(c.liveBytes-c.reqBytes) / float64(c.liveBytes)
	}
	if st, ok := alloc.InspectHeap(c.heap); ok {
		s.ReservedBytes = st.Reserved
		s.CacheBytes = st.CacheBytes
		s.CentralBytes = st.CentralBytes
		s.FreeBytes = st.CacheBytes + st.CentralBytes
		s.FreeBlocks = st.FreeBlocks()
		s.Superblocks = st.Superblocks
		s.EmptySuperblocks = st.EmptySuperblocks
		s.Migrations = st.Migrations
		s.Arenas = st.Arenas
		if st.SBCapacity > 0 {
			s.Occupancy = float64(st.SBUsedBlocks) / float64(st.SBCapacity)
		}
		if st.Reserved > 0 && st.Reserved >= c.liveBytes {
			s.ExternalFrag = float64(st.Reserved-c.liveBytes) / float64(st.Reserved)
		}
		if c.liveBytes > 0 && st.Reserved > 0 {
			s.Blowup = float64(st.Reserved) / float64(c.liveBytes)
		}
		if len(c.classes) > 0 {
			depth := make(map[uint64]uint64, len(st.Classes))
			for _, cl := range st.Classes {
				depth[cl.Size] = cl.Free + cl.Cached
			}
			s.FreeDepths = make([]uint64, len(c.classes))
			for i, sz := range c.classes {
				s.FreeDepths[i] = depth[sz]
			}
		}
	}
	for i := len(c.occHist) - 1; i > 0; i-- {
		if c.occHist[i] > 0 {
			s.MaxStripe = uint64(i)
			break
		}
	}
	s.StripeHist = make([]uint64, 4)
	for i := 1; i < len(c.occHist); i++ {
		switch {
		case i <= 3:
			s.StripeHist[i-1] += c.occHist[i]
		default:
			s.StripeHist[3] += c.occHist[i]
		}
	}
	c.samples = append(c.samples, s)
	c.publish(&s)
}

// publish mirrors a sample into the obs layer: Prometheus gauges (last
// value wins) and Perfetto counter tracks at the sample's cycle.
func (c *Collector) publish(s *Sample) {
	if c.rec == nil {
		return
	}
	pfx := `heap_` + c.name + "_"
	c.rec.Gauge(pfx+"live_bytes", float64(s.LiveBytes))
	c.rec.Gauge(pfx+"reserved_bytes", float64(s.ReservedBytes))
	c.rec.Gauge(pfx+"blowup", s.Blowup)
	c.rec.Gauge(pfx+"internal_frag", s.InternalFrag)
	c.rec.Gauge(pfx+"external_frag", s.ExternalFrag)
	c.rec.Gauge(pfx+"shared_lines", float64(s.SharedLines))
	c.rec.Gauge(pfx+"max_stripe", float64(s.MaxStripe))
	track := "heap/" + c.name + "/"
	c.rec.Counter(track+"live_bytes", s.Cycle, s.LiveBytes)
	c.rec.Counter(track+"reserved_bytes", s.Cycle, s.ReservedBytes)
	c.rec.Counter(track+"shared_lines", s.Cycle, s.SharedLines)
	c.rec.Counter(track+"central_bytes", s.Cycle, s.CentralBytes)
	c.rec.Counter(track+"cache_bytes", s.Cycle, s.CacheBytes)
}
