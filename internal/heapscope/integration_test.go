package heapscope_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	_ "repro/internal/alloc/glibc"
	_ "repro/internal/alloc/hoard"
	_ "repro/internal/alloc/tbb"
	_ "repro/internal/alloc/tcmalloc"

	"repro/internal/heapscope"
	"repro/internal/intset"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/sweep"
)

var update = flag.Bool("update", false, "rewrite the golden tmheap/series/v1 artifact")

// watchCfg is the fixed-seed workload every integration test observes:
// small enough to run in milliseconds, busy enough to exercise free
// lists, superblocks, sharing and the phase boundary.
func watchCfg(allocator string) intset.Config {
	return intset.Config{
		Kind:         intset.LinkedList,
		Allocator:    allocator,
		Threads:      4,
		InitialSize:  64,
		KeyRange:     128,
		UpdatePct:    60,
		OpsPerThread: 100,
		Seed:         0x9a9e7,
	}
}

// watchRun runs the workload under a collector and packages its series.
func watchRun(t *testing.T, allocator string, cadence uint64) *heapscope.Series {
	t.Helper()
	cfg := watchCfg(allocator)
	hc := heapscope.New(cadence)
	cfg.Heap = hc
	res, err := intset.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != obs.StatusOK {
		t.Fatalf("run degraded: %s %s", res.Status, res.Failure)
	}
	return hc.Series("golden/" + allocator)
}

// TestGoldenSeries pins the byte-exact tmheap/series/v1 artifact of a
// fixed-seed run for two allocators. Any drift in the allocators, the
// virtual-time engine, the collector or the JSON encoding shows up as
// a diff here; refresh intentionally with -update.
func TestGoldenSeries(t *testing.T) {
	set := heapscope.NewSet("golden")
	for _, name := range []string{"glibc", "hoard"} {
		set.Add(watchRun(t, name, 1<<16))
	}
	var buf bytes.Buffer
	if err := set.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_series.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/heapscope -run Golden -update` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("series drifted from the golden artifact %s (re-run with -update if intentional); got %d bytes, want %d",
			golden, buf.Len(), len(want))
	}
}

// TestSeriesJobsIdentity runs the same observed cells through the
// sweep scheduler at pool widths 1, 4 and 8 and requires byte-identical
// artifacts: the collector is driven by each cell's private engine, so
// host parallelism must never leak into the series.
func TestSeriesJobsIdentity(t *testing.T) {
	allocs := []string{"glibc", "hoard", "tbb", "tcmalloc"}
	runAt := func(jobs int) []byte {
		var cells []sweep.Cell
		for _, name := range allocs {
			name := name
			cfg := watchCfg(name)
			spec, err := json.Marshal(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cells = append(cells, sweep.Cell{
				Key:  "heapwatch/" + name,
				Spec: spec,
				Seed: cfg.Seed,
				Run: func() (any, *obs.Delta, *prof.Profile, *heapscope.Series, error) {
					c := cfg
					hc := heapscope.New(1 << 16)
					c.Heap = hc
					res, err := intset.Run(c)
					if err != nil {
						return nil, nil, nil, nil, err
					}
					return res, nil, nil, hc.Series("heapwatch/" + name), nil
				},
			})
		}
		sched := &sweep.Scheduler{Jobs: jobs}
		outs, _ := sched.Run(cells)
		set := heapscope.NewSet("jobs-identity")
		for _, o := range outs {
			if o.Err != nil {
				t.Fatal(o.Err)
			}
			set.Add(o.Heap)
		}
		var buf bytes.Buffer
		if err := set.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	base := runAt(1)
	for _, jobs := range []int{4, 8} {
		if got := runAt(jobs); !bytes.Equal(got, base) {
			t.Errorf("series at -jobs %d differ from -jobs 1 (%d vs %d bytes)", jobs, len(got), len(base))
		}
	}
}

// TestSnapshotTransparency: a watched run must report byte-identical
// results to an unwatched one — the collector is a pure observer, so
// the only difference a caller can see is the series itself.
func TestSnapshotTransparency(t *testing.T) {
	for _, name := range []string{"glibc", "hoard", "tbb", "tcmalloc"} {
		plainCfg := watchCfg(name)
		plain, err := intset.Run(plainCfg)
		if err != nil {
			t.Fatal(err)
		}
		watchedCfg := watchCfg(name)
		hc := heapscope.New(1 << 16)
		watchedCfg.Heap = hc
		watched, err := intset.Run(watchedCfg)
		if err != nil {
			t.Fatal(err)
		}
		pj, err := json.Marshal(plain)
		if err != nil {
			t.Fatal(err)
		}
		wj, err := json.Marshal(watched)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pj, wj) {
			t.Errorf("%s: watched run result differs from plain run:\nplain:   %s\nwatched: %s", name, pj, wj)
		}
		if len(hc.Series("x").Samples) == 0 {
			t.Errorf("%s: watched run collected no samples", name)
		}
	}
}

// BenchmarkRunPlain / BenchmarkRunWatched measure the heapscope
// overhead on the same fixed workload: the delta between the two is
// the full cost of telemetry (watcher callbacks + cadence snapshots).
func BenchmarkRunPlain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := intset.Run(watchCfg("hoard")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunWatched(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := watchCfg("hoard")
		cfg.Heap = heapscope.New(1 << 16)
		if _, err := intset.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollectorSnapshot isolates the per-snapshot cost at a
// realistic live-heap size.
func BenchmarkCollectorSnapshot(b *testing.B) {
	cfg := watchCfg("tcmalloc")
	hc := heapscope.New(1 << 62) // never fires on cadence; we snapshot by hand
	cfg.Heap = hc
	if _, err := intset.Run(cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hc.Finish(uint64(i))
	}
}
