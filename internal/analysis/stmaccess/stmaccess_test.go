package stmaccess_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/stmaccess"
)

func TestFixtures(t *testing.T) {
	framework.RunFixture(t, stmaccess.Analyzer, filepath.Join("testdata", "txbody"))
}
