// Package app is the stmaccess fixture: raw substrate access inside a
// *stm.Tx closure must be flagged, the transactional wrappers and
// accesses outside closures must not, and the Tx handle must not
// escape.
package app

import (
	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/stm"
	"repro/internal/vtime"
)

var leaked *stm.Tx

func bad(th *vtime.Thread, space *mem.Space, a alloc.Allocator, p mem.Addr) func(*stm.Tx) {
	ch := make(chan *stm.Tx, 1)
	return func(tx *stm.Tx) {
		tx.Store(p, tx.Load(p)+1)
		_ = th.Load(p)        // want "raw Thread.Load inside a transaction"
		_ = th.LoadRelaxed(p) // want "raw Thread.LoadRelaxed inside a transaction"
		th.Store(p, 1)        // want "raw Thread.Store inside a transaction"
		_ = space.Load(p)     // want "raw Space.Load inside a transaction"
		_ = a.Malloc(th, 64)  // want "raw Allocator.Malloc inside a transaction"
		a.Free(th, p)         // want "raw Allocator.Free inside a transaction"
		leaked = tx           // want "Tx assigned to \"leaked\", declared outside the closure"
		ch <- tx              // want "Tx sent on a channel"
	}
}

func annotated(th *vtime.Thread, p mem.Addr) func(*stm.Tx) {
	return func(tx *stm.Tx) {
		tx.Load(p)
		//tmvet:allow stmaccess: fixture models a privatized read of immutable data
		_ = th.Load(p)
	}
}

func outsideClosure(th *vtime.Thread, space *mem.Space, p mem.Addr) uint64 {
	// Raw access outside any transaction is the substrate working as
	// intended (initialization, validation, write-back).
	th.Store(p, 2)
	return space.Load(p)
}

func nonTxClosure(th *vtime.Thread, p mem.Addr) func() {
	return func() { th.Store(p, 3) }
}
