// Package stmaccess checks the STM isolation invariant: inside a
// transaction body — a function literal taking a *stm.Tx — every access
// to the simulated heap must go through the transaction (tx.Load,
// tx.Store, tx.Malloc, tx.Free). Raw reads through vtime.Thread or
// mem.Space, or allocator calls that bypass the transactional wrappers,
// would dodge the ownership-record protocol: no conflict detection, no
// rollback, no sanitizer check — exactly the class of bug the paper's
// privatization discussion warns about. The Tx handle must also not
// escape its closure: a stored Tx outlives its validity the moment the
// transaction commits or aborts.
//
// The stm package itself is exempt — it implements the protocol the
// rule enforces.
package stmaccess

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the stmaccess checker.
var Analyzer = &framework.Analyzer{
	Name: "stmaccess",
	Doc:  "inside tx closures, heap access must go through the Tx; the Tx must not escape",
	Run:  run,
}

// forbidden maps (defining package suffix, type name) to the method
// names that bypass the transaction.
var forbidden = map[[2]string]map[string]bool{
	{"internal/vtime", "Thread"}: {"Load": true, "LoadRelaxed": true, "Store": true, "CAS": true},
	{"internal/mem", "Space"}:    {"Load": true, "Store": true, "CompareAndSwap": true},
	{"internal/alloc", "Allocator"}: {
		"Malloc": true, "Free": true,
	},
}

func run(p *framework.Pass) error {
	if p.Pkg.Types.Name() == "stm" {
		return nil
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			txVars := txParams(p, lit)
			if len(txVars) == 0 {
				return true
			}
			checkBody(p, lit, txVars)
			return true
		})
	}
	return nil
}

// txParams returns the *stm.Tx parameters of a function literal.
func txParams(p *framework.Pass, lit *ast.FuncLit) map[types.Object]bool {
	out := map[types.Object]bool{}
	if lit.Type.Params == nil {
		return out
	}
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			obj := p.Pkg.Info.Defs[name]
			if obj == nil {
				continue
			}
			if named, ok := deref(obj.Type()); ok && isType(named, "internal/stm", "Tx") {
				out[obj] = true
			}
		}
	}
	return out
}

func checkBody(p *framework.Pass, lit *ast.FuncLit, txVars map[types.Object]bool) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A nested closure gets its own pass when it declares its own
			// Tx; accesses inside it still belong to this transaction's
			// dynamic extent, so keep walking.
			return true
		case *ast.CallExpr:
			checkRawAccess(p, n)
		case *ast.AssignStmt:
			checkEscapeAssign(p, lit, n, txVars)
		case *ast.SendStmt:
			if obj := identObj(p, n.Value); obj != nil && txVars[obj] {
				p.Reportf(n.Pos(), "Tx sent on a channel escapes its transaction; pass values, not the handle")
			}
		}
		return true
	})
}

// checkRawAccess flags method calls that bypass the transaction.
func checkRawAccess(p *framework.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := p.Pkg.Info.Selections[sel]
	if !ok {
		return
	}
	recv, ok := deref(selection.Recv())
	if !ok {
		return
	}
	for key, methods := range forbidden {
		if isType(recv, key[0], key[1]) && methods[sel.Sel.Name] {
			p.Reportf(call.Pos(),
				"raw %s.%s inside a transaction bypasses the STM protocol; use the tx.%s wrapper",
				key[1], sel.Sel.Name, txEquivalent(sel.Sel.Name))
			return
		}
	}
}

// txEquivalent names the transactional wrapper for a raw method.
func txEquivalent(m string) string {
	switch m {
	case "CAS", "CompareAndSwap":
		return "Load/Store"
	default:
		return m
	}
}

// checkEscapeAssign flags `outer = tx`: assignment of a Tx parameter to
// a variable declared outside the closure.
func checkEscapeAssign(p *framework.Pass, lit *ast.FuncLit, as *ast.AssignStmt, txVars map[types.Object]bool) {
	for i, rhs := range as.Rhs {
		obj := identObj(p, rhs)
		if obj == nil || !txVars[obj] {
			continue
		}
		if i >= len(as.Lhs) {
			continue
		}
		lhsObj := identObj(p, as.Lhs[i])
		if lhsObj == nil {
			// Field stores and index stores always reach memory that can
			// outlive the closure.
			p.Reportf(as.Pos(), "Tx stored outside its closure escapes the transaction")
			continue
		}
		if lhsObj.Pos() < lit.Pos() || lhsObj.Pos() > lit.End() {
			p.Reportf(as.Pos(), "Tx assigned to %q, declared outside the closure; the handle dies with the transaction", lhsObj.Name())
		}
	}
}

// identObj resolves an expression to the object of a plain identifier,
// unwrapping parentheses.
func identObj(p *framework.Pass, e ast.Expr) types.Object {
	for {
		if pe, ok := e.(*ast.ParenExpr); ok {
			e = pe.X
			continue
		}
		break
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if o := p.Pkg.Info.Uses[id]; o != nil {
		return o
	}
	return p.Pkg.Info.Defs[id]
}

// deref unwraps one level of pointer and reports the named type.
func deref(t types.Type) (*types.Named, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	return n, ok
}

// isType reports whether the named type is pkgSuffix.name.
func isType(n *types.Named, pkgSuffix, name string) bool {
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), pkgSuffix) && obj.Name() == name
}
