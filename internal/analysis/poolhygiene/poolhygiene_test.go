package poolhygiene_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/poolhygiene"
)

func TestPoolHygiene(t *testing.T) {
	framework.RunFixture(t, poolhygiene.Analyzer, filepath.Join("testdata", "pools"))
}
