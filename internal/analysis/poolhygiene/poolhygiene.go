// Package poolhygiene checks the transaction-pool recycling contract
// from the paper's §6.2 study: a block served by TxPool.Get belongs to
// the pool's discipline for its whole life, so handing it to a raw
// Allocator.Free bypasses the pool's accounting — the pool still
// believes it may serve the block again, and the allocator is
// simultaneously free to reuse the words for in-band metadata. The
// companion rule keeps a pool variable on one discipline for life:
// reassigning it from NewTxPool with a different policy silently mixes
// blocks parked under the old discipline's invariants with the new
// one's, which is how the cache/reuse/batch comparisons stop measuring
// what they claim to. The stm package itself is exempt: it owns the
// pool implementations and the default Put/quarantine routing.
package poolhygiene

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the poolhygiene checker.
var Analyzer = &framework.Analyzer{
	Name: "poolhygiene",
	Doc:  "pooled blocks return through Put, and a pool keeps one recycling discipline for life",
	Run:  run,
}

func run(p *framework.Pass) error {
	if p.Pkg.Types.Name() == "stm" {
		return nil
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(p, fd.Body)
		}
	}
	return nil
}

// checkFunc applies both rules to one function body.
func checkFunc(p *framework.Pass, body *ast.BlockStmt) {
	// pooled: variable -> position of the TxPool.Get that tainted it.
	pooled := map[types.Object]token.Pos{}
	// disciplines: pool variable -> source text of its first NewTxPool
	// argument.
	disciplines := map[types.Object]string{}

	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) == 0 {
			return true
		}
		// Assignments are matched positionally; multi-value calls
		// (x, err := f()) have one Rhs and never return a pool or a
		// pooled address here, so index pairing is safe.
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			obj := identObj(p, lhs)
			if obj == nil {
				continue
			}
			call, ok := as.Rhs[i].(*ast.CallExpr)
			if !ok {
				continue
			}
			if isMethodCall(p, call, "internal/stm", "TxPool", "Get") {
				if _, seen := pooled[obj]; !seen {
					pooled[obj] = call.Pos()
				}
			}
			if arg, ok := newTxPoolArg(p, call); ok {
				if prev, seen := disciplines[obj]; seen && prev != arg {
					p.Reportf(call.Pos(),
						"pool %q reused across disciplines: first NewTxPool(%s), now NewTxPool(%s); blocks parked under the old policy leak into the new one",
						obj.Name(), prev, arg)
				} else if !seen {
					disciplines[obj] = arg
				}
			}
		}
		return true
	})
	if len(pooled) == 0 {
		return
	}

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isMethodCall(p, call, "internal/alloc", "Allocator", "Free") {
			return true
		}
		for _, arg := range call.Args {
			obj := identObj(p, arg)
			if obj == nil {
				continue
			}
			if got, tainted := pooled[obj]; tainted && call.Pos() > got {
				p.Reportf(call.Pos(),
					"block %q came from TxPool.Get but is freed raw; return it with Put so the pool's accounting stays truthful",
					obj.Name())
			}
		}
		return true
	})
}

// newTxPoolArg reports the source text of the discipline argument if
// call is stm.NewTxPool(...).
func newTxPoolArg(p *framework.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "NewTxPool" {
		return "", false
	}
	obj := p.Pkg.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/stm") {
		return "", false
	}
	if len(call.Args) != 1 {
		return "", false
	}
	return types.ExprString(call.Args[0]), true
}

// isMethodCall reports whether call invokes pkgSuffix.typeName.method.
func isMethodCall(p *framework.Pass, call *ast.CallExpr, pkgSuffix, typeName, method string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	selection, ok := p.Pkg.Info.Selections[sel]
	if !ok {
		return false
	}
	recv, ok := deref(selection.Recv())
	if !ok {
		return false
	}
	return isType(recv, pkgSuffix, typeName)
}

// identObj resolves an expression to the object of a plain identifier,
// unwrapping parentheses.
func identObj(p *framework.Pass, e ast.Expr) types.Object {
	for {
		if pe, ok := e.(*ast.ParenExpr); ok {
			e = pe.X
			continue
		}
		break
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if o := p.Pkg.Info.Uses[id]; o != nil {
		return o
	}
	return p.Pkg.Info.Defs[id]
}

// deref unwraps one level of pointer and reports the named type.
func deref(t types.Type) (*types.Named, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	return n, ok
}

// isType reports whether the named type is pkgSuffix.name.
func isType(n *types.Named, pkgSuffix, name string) bool {
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), pkgSuffix) && obj.Name() == name
}
