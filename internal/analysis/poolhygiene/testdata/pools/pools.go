// Package app is the poolhygiene fixture: blocks served by TxPool.Get
// must return through Put rather than a raw free, and a pool variable
// keeps one recycling discipline for life.
package app

import (
	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/stm"
	"repro/internal/vtime"
)

func rawFreeOfPooledBlock(th *vtime.Thread, tx *stm.Tx, pool stm.TxPool, a alloc.Allocator) {
	var p mem.Addr
	p = pool.Get(tx, 64)
	if p == 0 {
		return
	}
	a.Free(th, p) // want "came from TxPool.Get but is freed raw"
}

func putIsTheRightPath(tx *stm.Tx, pool stm.TxPool) {
	p := pool.Get(tx, 64)
	if p == 0 {
		return
	}
	pool.Put(tx, p, 64)
}

func disciplineSwitch() stm.TxPool {
	pool := stm.NewTxPool(stm.PoolCache)
	pool = stm.NewTxPool(stm.PoolReuse) // want "reused across disciplines"
	return pool
}

func samePoolRebuiltIsFine() stm.TxPool {
	pool := stm.NewTxPool(stm.PoolBatch)
	pool.Flush(nil)
	pool = stm.NewTxPool(stm.PoolBatch)
	return pool
}

func distinctPoolsAreFine() (stm.TxPool, stm.TxPool) {
	cache := stm.NewTxPool(stm.PoolCache)
	reuse := stm.NewTxPool(stm.PoolReuse)
	return cache, reuse
}

func freeOfUnpooledBlockIsFine(th *vtime.Thread, a alloc.Allocator) {
	p := a.Malloc(th, 64)
	a.Free(th, p)
}

func annotated(th *vtime.Thread, tx *stm.Tx, pool stm.TxPool, a alloc.Allocator) {
	p := pool.Get(tx, 64)
	if p == 0 {
		return
	}
	//tmvet:allow poolhygiene: fixture models teardown after the pool itself is discarded
	a.Free(th, p)
}
