// Package norecord is the recordhygiene negative fixture: no RunRecord
// struct is defined, so bare untagged structs are out of scope — no
// findings expected.
package norecord

type Config struct {
	Threads int
	Name    string
}
