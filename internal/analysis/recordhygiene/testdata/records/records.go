// Package records is the recordhygiene fixture: it defines a RunRecord
// whose schema closure (through field types) must have json tags and
// test coverage on every exported field.
package records

// RunRecord mimics the real artifact schema.
type RunRecord struct {
	Schema   string    `json:"schema"`
	Summary  Summary   `json:"summary"`
	Sweep    *Sweep    `json:"sweep,omitempty"`
	Rows     []Row     `json:"rows,omitempty"`
	Recovery *Recovery `json:"recovery,omitempty"`
	Pool     *Pool     `json:"pool,omitempty"`
	Conflict *Conflict `json:"conflict,omitempty"`
	NoTag    int       // want "schema field RunRecord.NoTag has no json tag"
	//tmvet:allow recordhygiene: fixture demonstrates a deliberately untested field
	Exempt int `json:"exempt"`

	hidden int // unexported: out of scope
}

// Summary is reached through a value field.
type Summary struct {
	Ops      uint64 `json:"ops"`
	Untested uint64 `json:"untested"` // want "schema field Summary.Untested is not mentioned in any _test.go file"
}

// Sweep is reached through a pointer field.
type Sweep struct {
	Cells int `json:"cells"`
}

// Row is reached through a slice field.
type Row struct {
	Label string `json:"label"`
}

// Recovery mimics the durability verdict block: a late schema addition
// reached through an optional pointer field. The closure must still
// pull it in, and a field added here without a matching mention in the
// round-trip test is exactly the drift the analyzer exists to catch.
type Recovery struct {
	Verdict string `json:"verdict"`
	Torn    int    `json:"torn"`
	Missed  int    `json:"missed"` // want "schema field Recovery.Missed is not mentioned in any _test.go file"
	Untag   bool   // want "schema field Recovery.Untag has no json tag"
}

// Pool mimics the tx-pooling traffic block: like Recovery, a late
// optional-pointer schema addition whose fields must not drift in
// untested.
type Pool struct {
	Discipline string `json:"discipline"`
	Hits       uint64 `json:"hits"`
	Stale      uint64 `json:"stale"` // want "schema field Pool.Stale is not mentioned in any _test.go file"
}

// Conflict mimics the abort-forensics summary block: the newest
// optional-pointer schema addition; its per-class counters must not
// drift in untested either.
type Conflict struct {
	Observed bool   `json:"observed"`
	Events   int    `json:"events"`
	Wasted   uint64 `json:"wasted"`
	Orphan   int    `json:"orphan"` // want "schema field Conflict.Orphan is not mentioned in any _test.go file"
}

// Unrelated is not reachable from RunRecord, so its bare field is out
// of scope.
type Unrelated struct {
	Loose int
}

func use() { _ = RunRecord{}.hidden }
