package records

// The fixture's "round-trip test": mentioning a field here marks it
// covered. Untested, Exempt and Missed are deliberately absent.
func roundTrip() RunRecord {
	rec := RunRecord{
		Schema:  "v1",
		Summary: Summary{Ops: 1},
		Sweep:   &Sweep{Cells: 2},
		Rows:    []Row{{Label: "a"}},
		NoTag:   3,
		Recovery: &Recovery{
			Verdict: "ok",
			Torn:    4,
			Untag:   true,
		},
		Pool: &Pool{
			Discipline: "batch",
			Hits:       5,
		},
		Conflict: &Conflict{
			Observed: true,
			Events:   6,
			Wasted:   7,
		},
	}
	return rec
}
