package records

// The fixture's "round-trip test": mentioning a field here marks it
// covered. Untested and Exempt are deliberately absent.
func roundTrip() RunRecord {
	rec := RunRecord{
		Schema:  "v1",
		Summary: Summary{Ops: 1},
		Sweep:   &Sweep{Cells: 2},
		Rows:    []Row{{Label: "a"}},
		NoTag:   3,
	}
	return rec
}
