package recordhygiene_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/recordhygiene"
)

func TestFixtures(t *testing.T) {
	framework.RunFixture(t, recordhygiene.Analyzer, filepath.Join("testdata", "records"))
	framework.RunFixture(t, recordhygiene.Analyzer, filepath.Join("testdata", "norecord"))
}
