// Package recordhygiene checks the run-record schema contract: every
// exported field of the RunRecord struct — and of every named struct
// type reachable from it through field types in the same package — must
// carry a json tag and be exercised by the package's own tests (the
// v1/v2 decoder round-trip). A field that serializes without coverage
// is exactly how a schema drifts: it ships in BENCH_*.json files, no
// test pins its round-trip, and the next decoder change silently drops
// it. Fields that are deliberately excluded take a //tmvet:allow
// annotation with the reason.
//
// Packages that do not define a RunRecord struct are out of scope.
package recordhygiene

import (
	"go/ast"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the recordhygiene checker.
var Analyzer = &framework.Analyzer{
	Name: "recordhygiene",
	Doc:  "every run-record field needs a json tag and test round-trip coverage",
	Run:  run,
}

func run(p *framework.Pass) error {
	// Named struct declarations in non-test files of this package.
	structs := map[string]*ast.StructType{}
	for _, f := range p.Pkg.Files {
		if p.Pkg.TestFiles[f] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			if st, ok := ts.Type.(*ast.StructType); ok {
				structs[ts.Name.Name] = st
			}
			return true
		})
	}
	if structs["RunRecord"] == nil {
		return nil
	}

	// Closure over field types: every named struct the record embeds,
	// points to, or holds slices/maps of is part of the schema.
	schema := map[string]bool{}
	var add func(name string)
	add = func(name string) {
		if schema[name] || structs[name] == nil {
			return
		}
		schema[name] = true
		for _, field := range structs[name].Fields.List {
			for _, ref := range typeNames(field.Type) {
				add(ref)
			}
		}
	}
	add("RunRecord")

	// Identifiers the package's tests mention — field names appearing in
	// composite literals, selectors, or any other position count as
	// coverage hooks.
	covered := map[string]bool{}
	for _, f := range p.Pkg.Files {
		if !p.Pkg.TestFiles[f] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				covered[id.Name] = true
			}
			return true
		})
	}
	hasTests := len(covered) > 0

	for name := range schema {
		for _, field := range structs[name].Fields.List {
			for _, fname := range field.Names {
				if !fname.IsExported() {
					continue
				}
				if field.Tag == nil || !strings.Contains(field.Tag.Value, `json:"`) {
					p.Reportf(fname.Pos(), "schema field %s.%s has no json tag; run-record fields must serialize explicitly", name, fname.Name)
				}
				if hasTests && !covered[fname.Name] {
					p.Reportf(fname.Pos(), "schema field %s.%s is not mentioned in any _test.go file; add round-trip coverage or annotate why it is exempt", name, fname.Name)
				}
			}
		}
	}
	return nil
}

// typeNames lists the identifiers of named types a field type
// references, unwrapping pointers, slices, arrays and map values.
func typeNames(e ast.Expr) []string {
	switch e := e.(type) {
	case *ast.Ident:
		return []string{e.Name}
	case *ast.StarExpr:
		return typeNames(e.X)
	case *ast.ArrayType:
		return typeNames(e.Elt)
	case *ast.MapType:
		return append(typeNames(e.Key), typeNames(e.Value)...)
	}
	return nil
}
