package nodeterm_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/nodeterm"
)

func TestFixtures(t *testing.T) {
	framework.RunFixture(t, nodeterm.Analyzer, filepath.Join("testdata", "bad"))
	framework.RunFixture(t, nodeterm.Analyzer, filepath.Join("testdata", "cliflags"))
}
