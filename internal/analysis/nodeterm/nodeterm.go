// Package nodeterm checks the repository's determinism invariant: run
// records and cell hashes must be reproducible byte-for-byte, so the
// packages that produce them may not read wall-clock time, draw from
// math/rand's process-global source, or let map iteration order leak
// into ordered output.
//
// Three rules, applied to non-test sources:
//
//   - No time.Now/Since/Until anywhere except the cliflags package,
//     whose Stopwatch is the one sanctioned wall-clock reader (it feeds
//     stderr progress lines only). internal/sweep's host-time stats
//     carry //tmvet:allow annotations with their justification.
//   - No package-level math/rand functions (Intn, Float64, Shuffle,
//     ...): they draw from the global source. Constructing a local
//     generator (rand.New, rand.NewSource, rand.NewZipf) and calling
//     its methods is fine — local generators take derived seeds.
//   - In the record-producing packages (obs, sweep, harness), a
//     range over a map may not append into a slice unless the slice is
//     subsequently sorted in the same function: an unsorted collect
//     would order record bytes by map iteration.
package nodeterm

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the nodeterm checker.
var Analyzer = &framework.Analyzer{
	Name: "nodeterm",
	Doc:  "forbid wall-clock reads, global math/rand, and map-ordered output in record-producing code",
	Run:  run,
}

var timeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// Constructors of local generators are allowed; everything else at
// package level draws from the global source.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// recordPkgs produce run records or cell hashes; map iteration order
// must not reach their output.
var recordPkgs = map[string]bool{"obs": true, "sweep": true, "harness": true}

func run(p *framework.Pass) error {
	pkgName := p.Pkg.Types.Name()
	if pkgName == "cliflags" {
		return nil
	}
	for _, f := range p.Pkg.Files {
		if p.Pkg.TestFiles[f] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(p, n)
			case *ast.FuncDecl:
				if recordPkgs[pkgName] && n.Body != nil {
					checkMapOrder(p, n.Body)
				}
			case *ast.FuncLit:
				if recordPkgs[pkgName] {
					checkMapOrder(p, n.Body)
				}
			}
			return true
		})
	}
	return nil
}

// checkCall flags qualified calls into time and math/rand.
func checkCall(p *framework.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := qualifiedFunc(p, sel)
	if obj == nil || obj.Pkg() == nil {
		return
	}
	switch obj.Pkg().Path() {
	case "time":
		if timeFuncs[obj.Name()] {
			p.Reportf(call.Pos(),
				"time.%s reads the wall clock; results must derive from virtual time (use cliflags.Stopwatch for stderr timing)",
				obj.Name())
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[obj.Name()] {
			p.Reportf(call.Pos(),
				"rand.%s draws from the process-global source; construct a local generator from a derived seed (sweep.DeriveSeed)",
				obj.Name())
		}
	}
}

// qualifiedFunc resolves pkg.Func selectors — a selector whose base is
// a package name, which excludes method calls on values (a *rand.Rand
// method is fine; the package-level function of the same name is not).
func qualifiedFunc(p *framework.Pass, sel *ast.SelectorExpr) types.Object {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	if _, ok := p.Pkg.Info.Uses[id].(*types.PkgName); !ok {
		return nil
	}
	return p.Pkg.Info.Uses[sel.Sel]
}

// checkMapOrder flags, within one function body, map ranges that append
// into a slice which is never sorted afterwards. The collect-then-sort
// idiom (append keys, sort.Slice them, iterate sorted) is recognized
// and passes.
func checkMapOrder(p *framework.Pass, body *ast.BlockStmt) {
	type candidate struct {
		rng    *ast.RangeStmt
		target types.Object
	}
	var cands []candidate
	sorted := map[types.Object]bool{} // slices passed to a sort call after their collect
	var sortCalls []struct {
		pos  int
		args []types.Object
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			tv, ok := p.Pkg.Info.Types[n.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if obj := appendTarget(p, n.Body); obj != nil {
				cands = append(cands, candidate{rng: n, target: obj})
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := qualifiedFunc(p, sel)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if path := obj.Pkg().Path(); path != "sort" && path != "slices" {
				return true
			}
			call := struct {
				pos  int
				args []types.Object
			}{pos: int(n.Pos())}
			for _, a := range n.Args {
				if id, ok := a.(*ast.Ident); ok {
					if o := p.Pkg.Info.Uses[id]; o != nil {
						call.args = append(call.args, o)
					}
				}
			}
			sortCalls = append(sortCalls, call)
		}
		return true
	})

	for _, c := range cands {
		for _, sc := range sortCalls {
			if sc.pos <= int(c.rng.Pos()) {
				continue
			}
			for _, a := range sc.args {
				if a == c.target {
					sorted[c.target] = true
				}
			}
		}
		if !sorted[c.target] {
			p.Reportf(c.rng.Pos(),
				"range over a map appends to %q without a later sort; iteration order would leak into record output",
				c.target.Name())
		}
	}
}

// appendTarget returns the object of the slice variable an `x =
// append(x, ...)` inside body assigns to, or nil when the body does not
// collect into a slice.
func appendTarget(p *framework.Pass, body *ast.BlockStmt) types.Object {
	var target types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			return true
		}
		if _, builtin := p.Pkg.Info.Uses[fn].(*types.Builtin); !builtin {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if o := p.Pkg.Info.Uses[id]; o != nil {
				target = o
			} else if o := p.Pkg.Info.Defs[id]; o != nil {
				target = o
			}
		}
		return true
	})
	return target
}
