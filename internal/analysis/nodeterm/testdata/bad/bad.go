// Package obs is a nodeterm fixture: its name puts it in the
// record-producing set, so the map-ordering rule applies alongside the
// wall-clock and global-rand rules.
package obs

import (
	"math/rand"
	"sort"
	"time"
)

func clock() int64 {
	t := time.Now()    // want "time.Now reads the wall clock"
	d := time.Since(t) // want "time.Since reads the wall clock"
	return int64(d)
}

func annotated() time.Time {
	//tmvet:allow nodeterm: fixture demonstrates a justified suppression
	return time.Now()
}

func globalRand() int {
	return rand.Intn(10) // want "rand.Intn draws from the process-global source"
}

func localRand() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(10)
}

func unsortedCollect(m map[string]int) []string {
	var keys []string
	for k := range m { // want "range over a map appends to \"keys\" without a later sort"
		keys = append(keys, k)
	}
	return keys
}

func sortedCollect(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func mapToMap(m map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		out[k] = v
	}
	return out
}

//tmvet:allow nodeterm // want "malformed annotation"
