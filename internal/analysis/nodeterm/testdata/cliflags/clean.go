// Package cliflags is the nodeterm negative fixture: the real cliflags
// package owns the one sanctioned wall-clock reader (Stopwatch, which
// feeds stderr progress lines only), so the analyzer whitelists the
// package structurally — no findings expected anywhere in this file.
package cliflags

import "time"

func start() time.Time { return time.Now() }

func elapsed(t time.Time) time.Duration { return time.Since(t) }
