// Package app is the txescape fixture: an address born inside a tx
// closure and stored to an outer variable must not reach a raw
// operation afterwards, unless an Engine.Run barrier intervenes.
package app

import (
	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/stm"
	"repro/internal/vtime"
)

func rawFreeAfterEscape(th *vtime.Thread, st *stm.STM, a alloc.Allocator) {
	var p mem.Addr
	st.Atomic(th, func(tx *stm.Tx) {
		p = tx.Malloc(64)
		tx.Store(p, 1)
	})
	a.Free(th, p) // want "escaped a tx closure and reaches raw Allocator.Free"
}

func rawLoadAfterEscape(th *vtime.Thread, space *mem.Space, st *stm.STM) uint64 {
	var p mem.Addr
	st.Atomic(th, func(tx *stm.Tx) { p = tx.Malloc(8) })
	x := th.Load(p)          // want "escaped a tx closure and reaches raw Thread.Load"
	return x + space.Load(p) // want "escaped a tx closure and reaches raw Space.Load"
}

func barrierClearsTaint(e *vtime.Engine, a alloc.Allocator, st *stm.STM) {
	var p mem.Addr
	var last *vtime.Thread
	e.Run(func(t *vtime.Thread) {
		last = t
		st.Atomic(t, func(tx *stm.Tx) { p = tx.Malloc(64) })
	})
	// Run returned: every commit is globally ordered before this point,
	// so the raw teardown free is safe.
	a.Free(last, p)
}

func useBeforeEscapeIsFine(th *vtime.Thread, st *stm.STM, a alloc.Allocator, q mem.Addr) {
	p := q
	a.Free(th, p) // before the closure: nothing has escaped yet
	st.Atomic(th, func(tx *stm.Tx) { p = tx.Malloc(64) })
	_ = p
}

func insideTxIsStmaccessTurf(th *vtime.Thread, st *stm.STM, a alloc.Allocator) {
	var p mem.Addr
	st.Atomic(th, func(tx *stm.Tx) {
		p = tx.Malloc(64)
	})
	st.Atomic(th, func(tx *stm.Tx) {
		// Transactional use of the escaped address is the published
		// path working as intended.
		tx.Store(p, 2)
	})
}

func localAddrNeverEscapes(th *vtime.Thread, st *stm.STM) {
	st.Atomic(th, func(tx *stm.Tx) {
		p := tx.Malloc(64)
		tx.Store(p, 3)
	})
}

func annotated(th *vtime.Thread, st *stm.STM, a alloc.Allocator) {
	var p mem.Addr
	st.Atomic(th, func(tx *stm.Tx) { p = tx.Malloc(64) })
	//tmvet:allow txescape: fixture models a deliberately planted publication race
	a.Free(th, p)
}
