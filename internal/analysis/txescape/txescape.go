// Package txescape checks the publication discipline on simulated
// addresses: a mem.Addr produced inside a transaction body — a function
// literal taking a *stm.Tx — and stored to a variable declared outside
// that closure has escaped the transaction. Feeding the escaped address
// to a raw (non-transactional) operation later in the same function —
// Thread.Load/Store/CAS, Space access, an allocator Free — races the
// committing transaction: the raw side never consults the ownership
// records, so nothing orders it after the commit that published the
// address. That is exactly the publication/privatization hazard the
// paper's allocator discussion turns on (a raw free hands the block to
// the allocator, which may immediately reuse the words for in-band
// metadata).
//
// A call to Engine.Run between the escape and the raw use clears the
// taint: Run's return is a full barrier — every thread has finished, so
// the commit that published the address happened-before anything after
// it (harvest, validation and teardown read raw by design). The stm
// package itself is exempt, as in stmaccess: it implements the protocol
// the rule enforces.
package txescape

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the txescape checker.
var Analyzer = &framework.Analyzer{
	Name: "txescape",
	Doc:  "simulated addresses born in a tx closure must not reach raw operations without a barrier",
	Run:  run,
}

// rawOps maps (defining package suffix, type name) to the method names
// that consume an address outside the STM protocol.
var rawOps = map[[2]string]map[string]bool{
	{"internal/vtime", "Thread"}:    {"Load": true, "Store": true, "CAS": true},
	{"internal/mem", "Space"}:       {"Load": true, "Store": true, "CompareAndSwap": true},
	{"internal/alloc", "Allocator"}: {"Free": true},
}

func run(p *framework.Pass) error {
	if p.Pkg.Types.Name() == "stm" {
		return nil
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(p, fd.Body)
		}
	}
	return nil
}

// checkFunc analyzes one function body: collect the tx closures, the
// addresses escaping them, the barriers, then flag raw uses of escaped
// addresses not ordered by a barrier.
func checkFunc(p *framework.Pass, body *ast.BlockStmt) {
	var closures []*ast.FuncLit // tx closures, in source order
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && hasTxParam(p, lit) {
			closures = append(closures, lit)
		}
		return true
	})
	if len(closures) == 0 {
		return
	}

	// escapes: variable -> position after which its value is tainted
	// (the closure's end: the address exists only once the tx ran).
	escapes := map[types.Object]token.Pos{}
	for _, lit := range closures {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range as.Lhs {
				obj := identObj(p, lhs)
				if obj == nil || !isAddr(obj.Type()) {
					continue
				}
				if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
					continue // declared inside the closure: dies with it
				}
				if _, seen := escapes[obj]; !seen {
					escapes[obj] = lit.End()
				}
			}
			return true
		})
	}
	if len(escapes) == 0 {
		return
	}

	// barriers: Engine.Run return positions. A raw use after one is
	// ordered after every commit inside it.
	var barriers []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, name, ok := methodRecv(p, call); ok &&
			isType(recv, "internal/vtime", "Engine") && name == "Run" {
			barriers = append(barriers, call.End())
		}
		return true
	})
	sort.Slice(barriers, func(i, j int) bool { return barriers[i] < barriers[j] })

	inTx := func(pos token.Pos) bool {
		for _, lit := range closures {
			if pos >= lit.Pos() && pos <= lit.End() {
				return true
			}
		}
		return false
	}
	ordered := func(escape, use token.Pos) bool {
		for _, b := range barriers {
			if b > escape && b < use {
				return true
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || inTx(call.Pos()) {
			return true
		}
		recv, name, ok := methodRecv(p, call)
		if !ok {
			return true
		}
		hit := false
		for key, methods := range rawOps {
			if isType(recv, key[0], key[1]) && methods[name] {
				hit = true
				break
			}
		}
		if !hit {
			return true
		}
		for _, arg := range call.Args {
			obj := identObj(p, arg)
			if obj == nil {
				continue
			}
			escape, tainted := escapes[obj]
			if !tainted || call.Pos() < escape || ordered(escape, call.Pos()) {
				continue
			}
			p.Reportf(call.Pos(),
				"address %q escaped a tx closure and reaches raw %s.%s with no barrier in between; the raw side races the publishing commit",
				obj.Name(), recv.Obj().Name(), name)
		}
		return true
	})
}

// hasTxParam reports whether the literal takes a *stm.Tx parameter.
func hasTxParam(p *framework.Pass, lit *ast.FuncLit) bool {
	if lit.Type.Params == nil {
		return false
	}
	for _, field := range lit.Type.Params.List {
		if named, ok := deref(p.Pkg.Info.TypeOf(field.Type)); ok && isType(named, "internal/stm", "Tx") {
			return true
		}
	}
	return false
}

// methodRecv resolves a call to (receiver named type, method name).
func methodRecv(p *framework.Pass, call *ast.CallExpr) (*types.Named, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	selection, ok := p.Pkg.Info.Selections[sel]
	if !ok {
		return nil, "", false
	}
	recv, ok := deref(selection.Recv())
	if !ok {
		return nil, "", false
	}
	return recv, sel.Sel.Name, true
}

// isAddr reports whether t is mem.Addr.
func isAddr(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && isType(n, "internal/mem", "Addr")
}

// identObj resolves an expression to the object of a plain identifier,
// unwrapping parentheses.
func identObj(p *framework.Pass, e ast.Expr) types.Object {
	for {
		if pe, ok := e.(*ast.ParenExpr); ok {
			e = pe.X
			continue
		}
		break
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if o := p.Pkg.Info.Uses[id]; o != nil {
		return o
	}
	return p.Pkg.Info.Defs[id]
}

// deref unwraps one level of pointer and reports the named type.
func deref(t types.Type) (*types.Named, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	return n, ok
}

// isType reports whether the named type is pkgSuffix.name.
func isType(n *types.Named, pkgSuffix, name string) bool {
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), pkgSuffix) && obj.Name() == name
}
