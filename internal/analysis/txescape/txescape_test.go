package txescape_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/txescape"
)

func TestTxEscape(t *testing.T) {
	framework.RunFixture(t, txescape.Analyzer, filepath.Join("testdata", "escape"))
}
