// Package addrhygiene checks the simulated-address invariant: mem.Addr
// values name words in the simulated space and are produced only by the
// substrate (mem, the allocator models, stm, vtime). Consumer code may
// offset an Addr (p + 8, p - mem.WordSize) but must not conjure one
// from host-side integers, convert it to a host pointer width, or
// apply placement arithmetic (*, /, %) that belongs to the allocators.
// Mixing the two address domains is how a simulated pointer silently
// becomes a host index — the bug class the sanitizer's wild-address
// check catches at run time; this analyzer catches it at vet time.
package addrhygiene

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the addrhygiene checker.
var Analyzer = &framework.Analyzer{
	Name: "addrhygiene",
	Doc:  "mem.Addr must not mix with host integers: no uintptr/unsafe conversions, no signed-to-Addr conjuring, no placement arithmetic outside the substrate",
	Run:  run,
}

// producers implement the address space and the allocators; they own
// placement arithmetic by definition.
var producers = map[string]bool{
	"mem": true, "alloc": true, "glibc": true, "hoard": true, "tbb": true,
	"tcmalloc": true, "stm": true, "vtime": true, "htm": true, "cachesim": true,
}

func run(p *framework.Pass) error {
	if producers[p.Pkg.Types.Name()] {
		return nil
	}

	// First pass: conversions to Addr that sit directly under a +/-
	// whose other operand is already an Addr are offset arithmetic, the
	// one sanctioned way to move a pointer.
	offsetConv := map[*ast.CallExpr]bool{}
	p.Inspect(func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.ADD && be.Op != token.SUB) {
			return true
		}
		xAddr := isAddrType(p, be.X)
		yAddr := isAddrType(p, be.Y)
		if xAddr {
			if c, ok := be.Y.(*ast.CallExpr); ok && isAddrConversion(p, c) {
				offsetConv[c] = true
			}
		}
		if yAddr {
			if c, ok := be.X.(*ast.CallExpr); ok && isAddrConversion(p, c) {
				offsetConv[c] = true
			}
		}
		return true
	})

	p.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkConversion(p, n, offsetConv)
		case *ast.BinaryExpr:
			checkArith(p, n)
		}
		return true
	})
	return nil
}

func checkConversion(p *framework.Pass, call *ast.CallExpr, offsetConv map[*ast.CallExpr]bool) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := p.Pkg.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	argT := p.Pkg.Info.Types[call.Args[0]].Type
	if argT == nil {
		return
	}
	switch {
	case isAddr(tv.Type):
		basic, ok := argT.Underlying().(*types.Basic)
		if !ok {
			return
		}
		switch {
		case basic.Kind() == types.Uintptr:
			p.Reportf(call.Pos(), "mem.Addr built from a uintptr mixes host and simulated address domains")
		case basic.Info()&types.IsUnsigned != 0, basic.Info()&types.IsUntyped != 0:
			// uint64 and friends carry simulated words; untyped constants
			// are literals.
		case basic.Info()&types.IsInteger != 0 && !offsetConv[call]:
			p.Reportf(call.Pos(), "mem.Addr conjured from a signed integer; only Addr ± offset arithmetic may convert, and only inline")
		}
	case isUintptrOrUnsafe(tv.Type):
		if isAddr(argT) {
			p.Reportf(call.Pos(), "mem.Addr converted to a host pointer width; simulated addresses never leave the simulated space")
		}
	}
}

func checkArith(p *framework.Pass, be *ast.BinaryExpr) {
	switch be.Op {
	case token.AND, token.AND_NOT:
		// Masking with a constant (addr &^ 7) is alignment, not
		// placement: byte-granular consumers align down to the
		// containing word.
		if isConst(p, be.X) || isConst(p, be.Y) {
			return
		}
	case token.MUL, token.QUO, token.REM, token.SHL, token.SHR, token.OR, token.XOR:
	default:
		return
	}
	if isAddrType(p, be.X) || isAddrType(p, be.Y) {
		p.Reportf(be.Pos(),
			"%s on a mem.Addr is placement arithmetic; it belongs to the allocator models, not their callers", be.Op)
	}
}

func isConst(p *framework.Pass, e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	return ok && tv.Value != nil
}

func isAddrType(p *framework.Pass, e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	return ok && tv.Type != nil && isAddr(tv.Type)
}

// isAddrConversion reports whether call is a conversion whose target
// type is mem.Addr.
func isAddrConversion(p *framework.Pass, call *ast.CallExpr) bool {
	tv, ok := p.Pkg.Info.Types[call.Fun]
	return ok && tv.IsType() && isAddr(tv.Type)
}

func isAddr(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/mem") && obj.Name() == "Addr"
}

func isUintptrOrUnsafe(t types.Type) bool {
	if b, ok := t.(*types.Basic); ok {
		return b.Kind() == types.Uintptr || b.Kind() == types.UnsafePointer
	}
	return false
}
