// Package tcmalloc is the addrhygiene negative fixture: its name marks
// it as a substrate package, so placement arithmetic that would be
// flagged in a consumer passes here — no findings expected.
package tcmalloc

import "repro/internal/mem"

func placement(base mem.Addr, class, idx uint64) mem.Addr {
	span := base + mem.Addr(class*8192)
	return span + mem.Addr(idx)*64
}

func pageOf(a mem.Addr) uint64 { return uint64(a>>16) % 1024 }

func carve(a mem.Addr, i int) mem.Addr { return mem.Addr(i) * 8 }
