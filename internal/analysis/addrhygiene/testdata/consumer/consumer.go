// Package consumer is the addrhygiene fixture for code outside the
// substrate: offsetting an Addr is fine, conjuring or re-domaining one
// is not.
package consumer

import "repro/internal/mem"

func arithmetic(p mem.Addr, i int, u uint64) {
	_ = p + 8            // offset: fine
	_ = p - mem.WordSize // offset by constant: fine
	_ = p + mem.Addr(i)  // inline signed offset: fine
	_ = p &^ 7           // constant alignment mask: fine
	_ = mem.Addr(u)      // unsigned carries simulated words: fine

	q := mem.Addr(i) // want "mem.Addr conjured from a signed integer"
	_ = uintptr(p)   // want "mem.Addr converted to a host pointer width"
	_ = p * 2        // want "placement arithmetic"
	_ = p % 8        // want "placement arithmetic"
	_ = p << 1       // want "placement arithmetic"
	_ = q
}

func conjureFromUintptr(h uintptr) mem.Addr {
	return mem.Addr(h) // want "mem.Addr built from a uintptr"
}

func annotated(p mem.Addr) mem.Addr {
	//tmvet:allow addrhygiene: fixture demonstrates a justified suppression
	return p % 8
}
