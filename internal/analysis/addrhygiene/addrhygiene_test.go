package addrhygiene_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/addrhygiene"
	"repro/internal/analysis/framework"
)

func TestFixtures(t *testing.T) {
	framework.RunFixture(t, addrhygiene.Analyzer, filepath.Join("testdata", "consumer"))
	framework.RunFixture(t, addrhygiene.Analyzer, filepath.Join("testdata", "producer"))
}
