// Package framework is a small, dependency-free harness for static
// analyzers in the spirit of golang.org/x/tools/go/analysis: an
// Analyzer inspects one type-checked package and reports diagnostics.
// The x/tools module is deliberately not used — the repository builds
// offline from the standard library alone — so the framework supplies
// the three pieces tmvet needs: a package loader driven by `go list
// -export` (loader.go), the Analyzer/Pass/Diagnostic surface (this
// file), and a fixture runner for analyzer self-tests (fixture.go).
//
// Suppression follows the repository's annotation grammar:
//
//	//tmvet:allow <analyzer>[,<analyzer>...]: <reason>
//
// placed on the flagged line or the line directly above it. The reason
// is mandatory: an annotation without one is itself reported, so every
// suppressed finding carries its justification in the source.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one invariant checker.
type Analyzer struct {
	Name string // short lower-case identifier used in findings and allow annotations
	Doc  string // one-paragraph description of the invariant
	Run  func(*Pass) error
}

// Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding. Allowed findings — suppressed by a
// //tmvet:allow annotation — stay in the result so callers can report
// suppression status (tmvet -json); they never gate.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Allowed  bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// allowRe matches the annotation grammar; the reason group must be
// non-empty after trimming.
var allowRe = regexp.MustCompile(`^//tmvet:allow\s+([a-z][a-z0-9_,\s]*):\s*(.*)$`)

// allowEntry is one analyzer name in one annotation; used tracks
// whether any diagnostic was suppressed by it, so unused entries can be
// reported as stale.
type allowEntry struct {
	pos  token.Position
	used bool
}

// allowSet maps file -> line -> analyzer names allowed on that line.
type allowSet map[string]map[int]map[string]*allowEntry

// collectAllows scans a package's comments for allow annotations,
// returning the suppression set plus diagnostics for malformed
// annotations (missing reason, unparsable grammar).
func collectAllows(pkg *Package) (allowSet, []Diagnostic) {
	allows := allowSet{}
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//tmvet:") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil || strings.TrimSpace(m[2]) == "" {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						Analyzer: "tmvet",
						Message:  "malformed annotation: want //tmvet:allow <analyzer>: <reason> with a non-empty reason",
					})
					continue
				}
				file := allows[pos.Filename]
				if file == nil {
					file = map[int]map[string]*allowEntry{}
					allows[pos.Filename] = file
				}
				names := file[pos.Line]
				if names == nil {
					names = map[string]*allowEntry{}
					file[pos.Line] = names
				}
				for _, name := range strings.Split(m[1], ",") {
					names[strings.TrimSpace(name)] = &allowEntry{pos: pos}
				}
			}
		}
	}
	return allows, bad
}

// allowed reports whether a diagnostic is suppressed: an annotation for
// its analyzer sits on the same line or the line directly above. A
// match marks the entry used, which is what keeps it off the stale
// list.
func (a allowSet) allowed(d Diagnostic) bool {
	file := a[d.Pos.Filename]
	if file == nil {
		return false
	}
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		if names := file[line]; names != nil && names[d.Analyzer] != nil {
			names[d.Analyzer].used = true
			return true
		}
	}
	return false
}

// stale reports annotation entries for analyzers in ran that suppressed
// no finding: the hazard they once marked is gone (or moved), so the
// annotation now hides nothing and would mask a future regression.
// Entries naming analyzers outside ran are skipped — a partial -run
// cannot tell whether the missing analyzer would still fire.
func (a allowSet) stale(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, lines := range a {
		for _, names := range lines {
			for name, e := range names {
				if ran[name] && !e.used {
					out = append(out, Diagnostic{
						Pos:      e.pos,
						Analyzer: "tmvet",
						Message:  fmt.Sprintf("stale suppression: %s reports no finding here; delete the //tmvet:allow annotation", name),
					})
				}
			}
		}
	}
	return out
}

// RunAnalyzers applies every analyzer to every package and returns the
// findings sorted by position. Findings matched by an allow annotation
// come back with Allowed set instead of being dropped, so callers can
// surface suppression status; annotations that suppressed nothing for
// an analyzer that ran are themselves findings (stale suppression, not
// Allowed — tmvet's own diagnostics are never suppressible). Packages
// that failed to type-check contribute a finding instead of being
// analyzed: an unparsable repository must fail the gate loudly, not
// pass it silently.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		if pkg.IllTyped != nil {
			out = append(out, Diagnostic{
				Pos:      token.Position{Filename: pkg.Dir},
				Analyzer: "tmvet",
				Message:  fmt.Sprintf("package %s does not type-check: %v", pkg.Path, pkg.IllTyped),
			})
			continue
		}
		allows, bad := collectAllows(pkg)
		out = append(out, bad...)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range pass.diags {
				d.Allowed = allows.allowed(d)
				out = append(out, d)
			}
		}
		out = append(out, allows.stale(ran)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out, nil
}

// Inspect walks every file of the pass's package in source order.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}
