package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const annotated = `package x

//tmvet:allow nodeterm: reason one
var a int

var b int //tmvet:allow stmaccess, addrhygiene: two analyzers, one line

//tmvet:allow nodeterm
var c int

//tmvet:allow nodeterm:
var d int
`

func parseOne(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: "x", Fset: fset, Files: []*ast.File{f}, TestFiles: map[*ast.File]bool{}}
}

func TestAnnotationGrammar(t *testing.T) {
	pkg := parseOne(t, annotated)
	allows, bad := collectAllows(pkg)
	if len(bad) != 2 {
		t.Fatalf("malformed annotations = %d (%v), want 2: missing colon and empty reason", len(bad), bad)
	}
	for _, d := range bad {
		if d.Analyzer != "tmvet" {
			t.Errorf("malformed annotation attributed to %q, want tmvet", d.Analyzer)
		}
	}

	at := func(line int, analyzer string) bool {
		return allows.allowed(Diagnostic{
			Pos:      token.Position{Filename: "x.go", Line: line},
			Analyzer: analyzer,
		})
	}
	// Line 4 (var a) is covered by the annotation on line 3.
	if !at(4, "nodeterm") {
		t.Error("annotation on the line above must suppress")
	}
	if at(4, "stmaccess") {
		t.Error("annotation must only suppress its named analyzer")
	}
	// Line 6 (var b) has a same-line annotation naming two analyzers.
	if !at(6, "stmaccess") || !at(6, "addrhygiene") {
		t.Error("same-line annotation with an analyzer list must suppress both")
	}
	// Two lines below an annotation is out of range.
	if at(5, "nodeterm") {
		t.Error("an annotation must not reach two lines down")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:      token.Position{Filename: "p/f.go", Line: 7, Column: 3},
		Analyzer: "nodeterm",
		Message:  "msg",
	}
	if got, want := d.String(), "p/f.go:7:3: nodeterm: msg"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

const suppressions = `package x

//tmvet:allow nodeterm: this one will be consumed
var a int

//tmvet:allow stmaccess: this one suppresses nothing
var b int

//tmvet:allow addrhygiene: names an analyzer that did not run
var c int
`

func TestStaleSuppression(t *testing.T) {
	pkg := parseOne(t, suppressions)
	allows, bad := collectAllows(pkg)
	if len(bad) != 0 {
		t.Fatalf("malformed annotations: %v", bad)
	}

	// Consume the nodeterm entry the way RunAnalyzers would.
	d := Diagnostic{
		Pos:      token.Position{Filename: "x.go", Line: 4},
		Analyzer: "nodeterm",
	}
	if !allows.allowed(d) {
		t.Fatal("nodeterm diagnostic on line 4 must be suppressed")
	}

	// Only nodeterm and stmaccess ran: the unused stmaccess entry is
	// stale, the consumed nodeterm entry is not, and the addrhygiene
	// entry cannot be judged.
	got := allows.stale(map[string]bool{"nodeterm": true, "stmaccess": true})
	if len(got) != 1 {
		t.Fatalf("stale = %v, want exactly the stmaccess entry", got)
	}
	s := got[0]
	if s.Analyzer != "tmvet" {
		t.Errorf("stale finding attributed to %q, want tmvet (not suppressible)", s.Analyzer)
	}
	if s.Pos.Line != 6 {
		t.Errorf("stale finding at line %d, want 6", s.Pos.Line)
	}
	if want := "stale suppression: stmaccess reports no finding here"; !strings.Contains(s.Message, want) {
		t.Errorf("stale message %q does not contain %q", s.Message, want)
	}
}
