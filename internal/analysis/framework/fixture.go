package framework

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// wantRe extracts analysistest-style expectations: a trailing comment
// `// want "regexp"` on the line a diagnostic should land on.
var wantRe = regexp.MustCompile(`// want (".*")\s*$`)

// RunFixture loads the fixture package in dir (every .go file, with
// files named *_test.go treated as the package's test files), runs the
// analyzer over it, and matches the surviving diagnostics against the
// `// want "re"` expectations: every diagnostic must be expected and
// every expectation must fire. Fixture imports resolve through `go
// list -export`, so fixtures may import both the standard library and
// this repository's packages.
func RunFixture(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	pkg, err := loadFixture(dir)
	if err != nil {
		t.Fatalf("fixture %s: %v", dir, err)
	}
	if pkg.IllTyped != nil {
		t.Fatalf("fixture %s does not type-check: %v", dir, pkg.IllTyped)
	}
	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("fixture %s: %v", dir, err)
	}

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := map[string][]*want{} // "file:line" -> expectations
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pat, err := strconv.Unquote(m[1])
				if err != nil {
					t.Fatalf("fixture %s: bad want %s: %v", dir, c.Text, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("fixture %s: bad want regexp %q: %v", dir, pat, err)
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				wants[key] = append(wants[key], &want{re: re})
			}
		}
	}

	for _, d := range diags {
		if d.Allowed {
			// Suppressed findings don't gate; fixtures exercising the
			// annotation grammar assert their absence, not their text.
			continue
		}
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	keys := make([]string, 0, len(wants))
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q did not fire", k, w.re)
			}
		}
	}
}

// loadFixture parses and type-checks one fixture directory as a single
// package unit.
func loadFixture(dir string) (*Package, error) {
	names, err := fixtureSources(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	pkg := &Package{
		Path:      "fixture/" + filepath.Base(dir),
		Dir:       dir,
		Fset:      fset,
		TestFiles: map[*ast.File]bool{},
	}
	imports := map[string]bool{}
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
		if strings.HasSuffix(name, "_test.go") {
			pkg.TestFiles[f] = true
		}
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil && p != "unsafe" {
				imports[p] = true
			}
		}
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}

	exports := map[string]string{}
	if len(imports) > 0 {
		args := []string{"list", "-e", "-export", "-deps", "-json=ImportPath,Export"}
		for p := range imports {
			args = append(args, p)
		}
		entries, err := goList(dir, args...)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.Export != "" {
				exports[e.ImportPath] = e.Export
			}
		}
	}

	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: exportImporter(fset, exports),
		Error: func(err error) {
			if pkg.IllTyped == nil {
				pkg.IllTyped = err
			}
		},
	}
	tpkg, err := conf.Check(pkg.Path, fset, pkg.Files, pkg.Info)
	pkg.Types = tpkg
	if err != nil && pkg.IllTyped == nil {
		pkg.IllTyped = err
	}
	return pkg, nil
}

// fixtureSources lists the fixture's .go files in deterministic order.
func fixtureSources(dir string) ([]string, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, de := range des {
		if !de.IsDir() && strings.HasSuffix(de.Name(), ".go") {
			names = append(names, de.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}
