package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked analysis unit: a package's source files
// (including its in-package _test.go files when present) together with
// the go/types objects resolved over them.
type Package struct {
	Path  string // import path (test-augmented variants use the base path)
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	// TestFiles marks which entries of Files came from _test.go sources;
	// analyzers that exempt tests (nodeterm) or that only read tests
	// (recordhygiene's coverage scan) key off it.
	TestFiles map[*ast.File]bool
	Types     *types.Package
	Info      *types.Info
	IllTyped  error // first type error, when the package does not check
}

// listEntry is the subset of `go list -json` fields the loader reads.
type listEntry struct {
	ImportPath string
	ForTest    string
	Name       string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
}

// goList runs `go list` in dir with the given arguments and decodes the
// JSON stream.
func goList(dir string, args ...string) ([]listEntry, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var entries []listEntry
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %w", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// Load type-checks the packages matched by patterns (run from dir),
// resolving imports through the gc export data that `go list -export`
// produces — no network, no module downloads, standard library only.
// Every matched package becomes one analysis unit; packages with
// in-package tests are loaded in their test-augmented form, and
// external _test packages become units of their own.
func Load(dir string, patterns ...string) ([]*Package, error) {
	modPath, err := modulePath(dir)
	if err != nil {
		return nil, err
	}
	args := append([]string{
		"list", "-e", "-export", "-deps", "-test",
		"-json=ImportPath,ForTest,Name,Dir,Export,Standard,GoFiles",
	}, patterns...)
	entries, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}

	// Export data by plain import path. Test-augmented variants carry a
	// bracketed suffix; strip it only when no plain entry exists, so
	// cross-package imports always resolve to the plain build.
	exports := map[string]string{}
	for _, e := range entries {
		if e.Export == "" {
			continue
		}
		path := e.ImportPath
		if i := strings.IndexByte(path, ' '); i >= 0 {
			path = path[:i]
		}
		if _, ok := exports[path]; !ok || !strings.Contains(e.ImportPath, " ") {
			exports[path] = e.Export
		}
	}

	// Pick analysis units among the module's own packages: the
	// test-augmented variant supersedes the plain one; synthesized
	// ".test" mains are skipped (their only file is generated).
	type unit struct{ entry listEntry }
	units := map[string]unit{} // display path -> chosen entry
	for _, e := range entries {
		if e.Standard || e.Dir == "" || len(e.GoFiles) == 0 {
			continue
		}
		base := e.ImportPath
		if i := strings.IndexByte(base, ' '); i >= 0 {
			base = base[:i]
		}
		if !strings.HasPrefix(base, modPath) || strings.HasSuffix(base, ".test") {
			continue
		}
		cur, ok := units[base]
		if !ok || e.ForTest != "" && cur.entry.ForTest == "" {
			units[base] = unit{entry: e}
		}
	}

	var pkgs []*Package
	for base, u := range units {
		pkg, err := check(base, u.entry, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// modulePath reads the module path governing dir.
func modulePath(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go list -m in %s: %w", dir, err)
	}
	return strings.TrimSpace(string(out)), nil
}

// exportImporter resolves import paths through export-data files.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// check parses and type-checks one unit.
func check(path string, e listEntry, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	pkg := &Package{
		Path:      path,
		Dir:       e.Dir,
		Fset:      fset,
		TestFiles: map[*ast.File]bool{},
	}
	for _, name := range e.GoFiles {
		full := name
		if !filepath.IsAbs(full) {
			full = filepath.Join(e.Dir, name)
		}
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", full, err)
		}
		pkg.Files = append(pkg.Files, f)
		if strings.HasSuffix(name, "_test.go") {
			pkg.TestFiles[f] = true
		}
	}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: exportImporter(fset, exports),
		Error: func(err error) {
			if pkg.IllTyped == nil {
				pkg.IllTyped = err
			}
		},
	}
	tpkg, err := conf.Check(path, fset, pkg.Files, pkg.Info)
	pkg.Types = tpkg
	if err != nil && pkg.IllTyped == nil {
		pkg.IllTyped = err
	}
	return pkg, nil
}
