// Package bayes ports STAMP's bayes: Bayesian-network structure
// learning by hill climbing. Binary records are sampled from a hidden
// random network; learner threads pop edge-insertion tasks from a
// shared transactional queue, revalidate them against the current graph
// (acyclicity, parent bound) inside a transaction, apply them, and then
// — outside the transaction — score follow-up candidates by counting
// query sweeps over the data (the ad-tree work of the original) before
// queueing the best one.
//
// As in the paper (Table 5), transactional allocation is tiny (a
// handful of task records), transactions are long (graph validation)
// and the application is noted for high run-to-run variance.
//
// Simplification versus the C original (documented in DESIGN.md):
// counts are computed by direct data sweeps rather than through a
// cached ad-tree, and the score is the plain log-likelihood gain with a
// fixed penalty rather than STAMP's configurable variants.
package bayes

import (
	"fmt"
	"math"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stamp"
	"repro/internal/stm"
	"repro/internal/txstruct"
	"repro/internal/vtime"
)

func init() {
	stamp.Register("bayes", func() stamp.App { return &Bayes{} })
}

// Task record (transactionally allocated, 32 bytes): from, to, score
// bits, pad.
const (
	tkFrom  = 0
	tkTo    = 8
	tkScore = 16
	tkSize  = 32
)

// Bayes is the application state.
type Bayes struct {
	vars       int
	records    int
	maxParents int
	penalty    float64

	data  mem.Addr // records*vars bytes (0/1)
	adj   mem.Addr // vars*vars words: adjacency matrix (tx)
	queue *txstruct.Queue

	inserted int
	rejected int
}

// Name implements stamp.App.
func (a *Bayes) Name() string { return "bayes" }

func (a *Bayes) params(s stamp.Scale) {
	switch s {
	case stamp.Ref:
		a.vars, a.records, a.maxParents = 24, 1024, 3
	default:
		a.vars, a.records, a.maxParents = 10, 160, 2
	}
	a.penalty = 0.5 * math.Log(float64(a.records))
}

func (a *Bayes) adjCell(from, to int) mem.Addr {
	return a.adj + mem.Addr((from*a.vars+to)*8)
}

func (a *Bayes) dataByte(th *vtime.Thread, rec, v int) byte {
	addr := a.data + mem.Addr(rec*a.vars+v)
	w := th.Load(addr &^ 7)
	return byte(w >> ((uint64(addr) & 7) * 8))
}

// Setup implements stamp.App: samples data from a hidden chain-shaped
// network and seeds the task queue with each variable's best first
// parent.
func (a *Bayes) Setup(w *stamp.World) {
	a.params(w.Scale)
	w.Seq(func(th *vtime.Thread) {
		defer w.Region(th, "bayes/setup")()
		rng := sim.NewRand(w.Seed)
		a.data = w.Calloc(th, uint64(a.records*a.vars))
		a.adj = w.Calloc(th, uint64(a.vars*a.vars*8))

		// Hidden model: var 0 is a coin; var i copies var i-1 with 85%
		// probability. This creates strong, learnable dependencies.
		rec := make([]byte, a.vars)
		for r := 0; r < a.records; r++ {
			for v := 0; v < a.vars; v++ {
				if v == 0 {
					rec[v] = byte(rng.Intn(2))
				} else if rng.Intn(100) < 85 {
					rec[v] = rec[v-1]
				} else {
					rec[v] = byte(rng.Intn(2))
				}
			}
			w.Space.WriteBytes(a.data+mem.Addr(r*a.vars), rec)
			th.Tick(uint64(a.vars))
		}

		w.Atomic(th, func(tx *stm.Tx) { a.queue = txstruct.NewQueue(tx, 64) })
		// Seed: best single-parent insertion per variable.
		for v := 0; v < a.vars; v++ {
			from, gain := a.bestParent(th, nil, v)
			if from >= 0 && gain > 0 {
				w.Atomic(th, func(tx *stm.Tx) {
					t := tx.Malloc(tkSize)
					tx.Store(t+tkFrom, uint64(from))
					tx.Store(t+tkTo, uint64(v))
					tx.Store(t+tkScore, math.Float64bits(gain))
					a.queue.Push(tx, uint64(t))
				})
			}
		}
	})
}

// parentsOfTx returns to's current parents via transactional reads.
func (a *Bayes) parentsOfTx(tx *stm.Tx, to int) []int {
	var ps []int
	for f := 0; f < a.vars; f++ {
		if tx.Load(a.adjCell(f, to)) != 0 {
			ps = append(ps, f)
		}
	}
	return ps
}

// parentsOf reads to's parents non-transactionally (scoring snapshot).
func (a *Bayes) parentsOf(th *vtime.Thread, to int) []int {
	var ps []int
	for f := 0; f < a.vars; f++ {
		if th.Load(a.adjCell(f, to)) != 0 {
			ps = append(ps, f)
		}
	}
	return ps
}

// localScore computes the log-likelihood of variable v given parents,
// minus a complexity penalty, by sweeping the data (the ad-tree work).
func (a *Bayes) localScore(th *vtime.Thread, parents []int, v int) float64 {
	nCfg := 1 << uint(len(parents))
	counts := make([][2]float64, nCfg)
	for r := 0; r < a.records; r++ {
		cfg := 0
		for i, p := range parents {
			if a.dataByte(th, r, p) != 0 {
				cfg |= 1 << uint(i)
			}
		}
		counts[cfg][a.dataByte(th, r, v)]++
	}
	th.Work(uint64(a.records * (len(parents) + 1)))
	score := 0.0
	for _, c := range counts {
		tot := c[0] + c[1]
		for b := 0; b < 2; b++ {
			if c[b] > 0 {
				score += c[b] * math.Log(c[b]/tot)
			}
		}
	}
	return score - a.penalty*float64(nCfg)
}

// bestParent returns the best new parent for v given the current
// parent set and its gain.
func (a *Bayes) bestParent(th *vtime.Thread, parents []int, v int) (int, float64) {
	base := a.localScore(th, parents, v)
	bestFrom, bestGain := -1, 0.0
	if len(parents) >= a.maxParents {
		return -1, 0
	}
	for f := 0; f < a.vars; f++ {
		if f == v || contains(parents, f) {
			continue
		}
		gain := a.localScore(th, append(append([]int(nil), parents...), f), v) - base
		if gain > bestGain {
			bestFrom, bestGain = f, gain
		}
	}
	return bestFrom, bestGain
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// createsCycleTx checks (transactionally) whether adding from->to
// creates a cycle: is from reachable from to?
func (a *Bayes) createsCycleTx(tx *stm.Tx, from, to int) bool {
	seen := make([]bool, a.vars)
	stack := []int{to}
	seen[to] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v == from {
			return true
		}
		for nxt := 0; nxt < a.vars; nxt++ {
			if !seen[nxt] && tx.Load(a.adjCell(v, nxt)) != 0 {
				seen[nxt] = true
				stack = append(stack, nxt)
			}
		}
	}
	return false
}

// Parallel implements stamp.App: the learner loop.
func (a *Bayes) Parallel(w *stamp.World, th *vtime.Thread) {
	defer w.Region(th, "bayes/parallel")()
	for {
		var task mem.Addr
		w.Atomic(th, func(tx *stm.Tx) {
			if v, ok := a.queue.Pop(tx); ok {
				task = mem.Addr(v)
			} else {
				task = 0
			}
		})
		if task == 0 {
			return
		}
		from := int(th.Load(task + tkFrom))
		to := int(th.Load(task + tkTo))

		applied := false
		w.Atomic(th, func(tx *stm.Tx) {
			applied = false
			if tx.Load(a.adjCell(from, to)) != 0 {
				return // already inserted
			}
			if len(a.parentsOfTx(tx, to)) >= a.maxParents {
				return
			}
			if a.createsCycleTx(tx, from, to) {
				return
			}
			tx.Store(a.adjCell(from, to), 1)
			applied = true
		})
		if !applied {
			a.rejected++
			continue
		}
		a.inserted++
		// Compute the next candidate for this variable outside any
		// transaction (the heavy ad-tree scoring), then queue it.
		parents := a.parentsOf(th, to)
		nf, gain := a.bestParent(th, parents, to)
		if nf >= 0 && gain > 0 {
			w.Atomic(th, func(tx *stm.Tx) {
				t := tx.Malloc(tkSize)
				tx.Store(t+tkFrom, uint64(nf))
				tx.Store(t+tkTo, uint64(to))
				tx.Store(t+tkScore, math.Float64bits(gain))
				a.queue.Push(tx, uint64(t))
			})
		}
	}
}

// Validate implements stamp.App: the learned graph must be a DAG within
// the parent bound, and the hill climb must have learned something.
func (a *Bayes) Validate(w *stamp.World) error {
	th := vtime.Solo(w.Space, 0, nil)
	// Parent bounds.
	for v := 0; v < a.vars; v++ {
		if n := len(a.parentsOf(th, v)); n > a.maxParents {
			return fmt.Errorf("variable %d has %d parents (max %d)", v, n, a.maxParents)
		}
	}
	// Acyclicity (Kahn).
	indeg := make([]int, a.vars)
	for f := 0; f < a.vars; f++ {
		for t := 0; t < a.vars; t++ {
			if th.Load(a.adjCell(f, t)) != 0 {
				indeg[t]++
			}
		}
	}
	var order []int
	for v := 0; v < a.vars; v++ {
		if indeg[v] == 0 {
			order = append(order, v)
		}
	}
	for i := 0; i < len(order); i++ {
		v := order[i]
		for t := 0; t < a.vars; t++ {
			if th.Load(a.adjCell(v, t)) != 0 {
				indeg[t]--
				if indeg[t] == 0 {
					order = append(order, t)
				}
			}
		}
	}
	if len(order) != a.vars {
		return fmt.Errorf("learned graph has a cycle")
	}
	if a.inserted == 0 {
		return fmt.Errorf("no edge was learned")
	}
	return nil
}
