package bayes_test

import (
	"testing"

	"repro/internal/stamp"
	_ "repro/internal/stamp/bayes"
	"repro/internal/stamp/stamptest"
)

func TestBayes(t *testing.T)              { stamptest.Check(t, "bayes", true) }
func TestBayesDeterministic(t *testing.T) { stamptest.CheckDeterministic(t, "bayes") }

// Table 5 shape: bayes performs only a handful of (32-byte) allocations
// inside transactions.
func TestBayesTinyTxAllocation(t *testing.T) {
	res, err := stamp.Run(stamp.Config{App: "bayes", Allocator: "glibc", Threads: 1, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile
	if p.Mallocs[stamp.RegionTx] == 0 {
		t.Fatal("no tx allocations (task records missing)")
	}
	if p.Mallocs[stamp.RegionTx] > 1000 {
		t.Errorf("tx allocations = %d; bayes should allocate only task records", p.Mallocs[stamp.RegionTx])
	}
}

// The learner must recover most of the hidden chain v[i-1] -> v[i].
func TestBayesLearnsChain(t *testing.T) {
	res, err := stamp.Run(stamp.Config{App: "bayes", Allocator: "tbb", Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
}
