package stamp_test

import (
	"testing"

	_ "repro/internal/alloc/glibc"
	_ "repro/internal/alloc/hoard"
	_ "repro/internal/alloc/tbb"
	_ "repro/internal/alloc/tcmalloc"

	"repro/internal/obs"
	"repro/internal/stamp"
	"repro/internal/stm"
)

// TestAppsSurviveOOMPlan runs every STAMP application under an
// injected-OOM fault plan with backoff contention management and a
// watchdog deadline, and checks the graceful-degradation contract:
// the run terminates (no host hang), the status is ok or degraded
// (never an error or a captured panic), and deterministic transient
// OOMs were actually injected and survived.
func TestAppsSurviveOOMPlan(t *testing.T) {
	for _, app := range stamp.Names() {
		t.Run(app, func(t *testing.T) {
			res, err := stamp.Run(stamp.Config{
				App:       app,
				Allocator: "tbb",
				Threads:   2,
				Scale:     stamp.Quick,
				CM:        stm.CMBackoff,
				RetryCap:  64,
				Fault:     "oom@10x2,oom%1,lat%2:200",
				Deadline:  2_000_000_000,
				Seed:      7,
			})
			if err != nil {
				t.Fatalf("Run returned an error under faults: %v", err)
			}
			switch res.Status {
			case obs.StatusOK, obs.StatusDegraded:
			default:
				t.Fatalf("status = %q (%s), want ok or degraded", res.Status, res.Failure)
			}
			// oom@10x2 fails the 10th and 11th allocation requests; apps
			// that allocate less than that (ssca2, kmeans at Quick scale)
			// legitimately never see the injected fault.
			if res.Alloc.Mallocs >= 12 && res.Alloc.FailedMallocs < 2 {
				t.Errorf("FailedMallocs = %d over %d mallocs, want >= 2 (oom@10x2 must fire)",
					res.Alloc.FailedMallocs, res.Alloc.Mallocs)
			}
		})
	}
}

// TestSameSeedSameOutcome pins fault-plan determinism end to end: two
// runs with identical configuration and seed must agree on every
// reported number.
func TestSameSeedSameOutcome(t *testing.T) {
	cfg := stamp.Config{
		App:       "genome",
		Allocator: "glibc",
		Threads:   4,
		Scale:     stamp.Quick,
		Fault:     "oom%2,lat%5:300,storm@20000:24000",
		RetryCap:  64,
		Deadline:  2_000_000_000,
		Seed:      42,
	}
	a, err := stamp.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := stamp.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Tx != b.Tx || a.Alloc != b.Alloc || a.Status != b.Status {
		t.Errorf("same seed diverged:\n  run1: cycles=%d tx=%+v status=%q\n  run2: cycles=%d tx=%+v status=%q",
			a.Cycles, a.Tx, a.Status, b.Cycles, b.Tx, b.Status)
	}
}
