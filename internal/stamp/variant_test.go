package stamp_test

import (
	"testing"

	_ "repro/internal/alloc/tbb"
	_ "repro/internal/stamp/kmeans"
	_ "repro/internal/stamp/vacation"

	"repro/internal/stamp"
)

// STAMP defines low- and high-contention configurations for kmeans and
// vacation; the paper uses the high one. Both must validate, and the
// low-contention variant must in fact contend less.
func TestVariantsValidateAndOrder(t *testing.T) {
	for _, app := range []string{"kmeans", "vacation"} {
		high, err := stamp.Run(stamp.Config{App: app, Allocator: "tbb", Threads: 8})
		if err != nil {
			t.Fatalf("%s high: %v", app, err)
		}
		low, err := stamp.Run(stamp.Config{App: app, Allocator: "tbb", Threads: 8, Variant: stamp.LowContention})
		if err != nil {
			t.Fatalf("%s low: %v", app, err)
		}
		if low.Tx.AbortRate() >= high.Tx.AbortRate() {
			t.Errorf("%s: low-contention abort rate %.3f not below high %.3f",
				app, low.Tx.AbortRate(), high.Tx.AbortRate())
		}
	}
}
