package stamp_test

import (
	"strings"
	"testing"

	_ "repro/internal/stamp/bayes"
	_ "repro/internal/stamp/genome"
	_ "repro/internal/stamp/intruder"
	_ "repro/internal/stamp/kmeans"
	_ "repro/internal/stamp/labyrinth"
	_ "repro/internal/stamp/ssca2"
	_ "repro/internal/stamp/vacation"
	_ "repro/internal/stamp/yada"

	"repro/internal/stamp"
)

func TestRunUnknownApp(t *testing.T) {
	_, err := stamp.Run(stamp.Config{App: "nosuch", Allocator: "tbb"})
	if err == nil || !strings.Contains(err.Error(), "unknown app") {
		t.Errorf("err = %v, want unknown app", err)
	}
}

func TestRunUnknownAllocator(t *testing.T) {
	_, err := stamp.Run(stamp.Config{App: "kmeans", Allocator: "nosuch"})
	if err == nil {
		t.Error("unknown allocator accepted")
	}
}

func TestNamesOrdered(t *testing.T) {
	names := stamp.Names()
	if len(names) != 8 || names[0] != "bayes" || names[7] != "yada" {
		t.Errorf("Names() = %v", names)
	}
}

func TestRegionStrings(t *testing.T) {
	if stamp.RegionSeq.String() != "seq" || stamp.RegionPar.String() != "par" || stamp.RegionTx.String() != "tx" {
		t.Error("region names wrong")
	}
}

func TestBucketBoundaries(t *testing.T) {
	cases := map[uint64]int{1: 0, 16: 0, 17: 1, 32: 1, 48: 2, 64: 3, 96: 4, 128: 5, 256: 6, 257: 7, 1 << 20: 7}
	for size, want := range cases {
		if got := stamp.Bucket(size); got != want {
			t.Errorf("Bucket(%d) = %d, want %d", size, got, want)
		}
	}
}
