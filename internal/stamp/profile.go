package stamp

import (
	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/stm"
	"repro/internal/vtime"
)

// Region classifies where an allocation was issued, as in the paper's
// Table 5: the sequential phase, the parallel region outside any
// transaction, or inside a transaction.
type Region int

// Allocation regions.
const (
	RegionSeq Region = iota
	RegionPar
	RegionTx
	regionCount
)

func (r Region) String() string {
	switch r {
	case RegionSeq:
		return "seq"
	case RegionPar:
		return "par"
	case RegionTx:
		return "tx"
	}
	return "?"
}

// SizeClassBuckets are Table 5's size-class columns; the last bucket is
// "> 256".
var SizeClassBuckets = []uint64{16, 32, 48, 64, 96, 128, 256}

// Profile is the Table 5 characterization: allocation counts per size
// class and region, plus totals.
type Profile struct {
	Counts  [regionCount][8]uint64 // [region][bucket]; bucket 7 = >256
	Mallocs [regionCount]uint64
	Frees   [regionCount]uint64
	Bytes   [regionCount]uint64 // total requested bytes
}

// Bucket maps a request size to its Table 5 column.
func Bucket(size uint64) int {
	for i, b := range SizeClassBuckets {
		if size <= b {
			return i
		}
	}
	return len(SizeClassBuckets)
}

// TotalMallocs sums mallocs over regions.
func (p *Profile) TotalMallocs() uint64 {
	return p.Mallocs[RegionSeq] + p.Mallocs[RegionPar] + p.Mallocs[RegionTx]
}

// TotalFrees sums frees over regions.
func (p *Profile) TotalFrees() uint64 {
	return p.Frees[RegionSeq] + p.Frees[RegionPar] + p.Frees[RegionTx]
}

// TotalBytes sums requested bytes over regions.
func (p *Profile) TotalBytes() uint64 {
	return p.Bytes[RegionSeq] + p.Bytes[RegionPar] + p.Bytes[RegionTx]
}

// profAlloc wraps the system allocator and attributes each operation to
// a region. The engine serializes execution, so plain counters suffice.
type profAlloc struct {
	alloc.Allocator
	stm      *stm.STM
	parallel bool
	p        Profile
	// quarantined holds blocks already counted as tx frees via
	// NoteTxFree; their allocator-level Free arrives later from the
	// STM's quarantine release and must not be counted again.
	quarantined map[mem.Addr]struct{}
}

func newProfAlloc(base alloc.Allocator) *profAlloc {
	return &profAlloc{Allocator: base}
}

func (pa *profAlloc) region(th *vtime.Thread) Region {
	if !pa.parallel {
		return RegionSeq
	}
	if pa.stm != nil && pa.stm.InTx(th.ID()) {
		return RegionTx
	}
	return RegionPar
}

// Malloc implements alloc.Allocator.
func (pa *profAlloc) Malloc(th *vtime.Thread, size uint64) mem.Addr {
	r := pa.region(th)
	pa.p.Mallocs[r]++
	pa.p.Bytes[r] += size
	pa.p.Counts[r][Bucket(size)]++
	return pa.Allocator.Malloc(th, size)
}

// Free implements alloc.Allocator.
func (pa *profAlloc) Free(th *vtime.Thread, addr mem.Addr) {
	if _, ok := pa.quarantined[addr]; ok {
		delete(pa.quarantined, addr)
	} else {
		pa.p.Frees[pa.region(th)]++
	}
	pa.Allocator.Free(th, addr)
}

// NoteTxFree implements stm.TxFreeNoter: a transactionally issued free
// is attributed to the tx region when it commits, not when the
// quarantine eventually releases the block.
func (pa *profAlloc) NoteTxFree(addr mem.Addr) {
	pa.p.Frees[RegionTx]++
	if pa.quarantined == nil {
		pa.quarantined = map[mem.Addr]struct{}{}
	}
	pa.quarantined[addr] = struct{}{}
}

func (pa *profAlloc) profile() *Profile {
	p := pa.p
	return &p
}
