// Package labyrinth ports STAMP's labyrinth: Lee-style path routing in
// a 3-D grid. Each router transactionally pops a (source, destination)
// work item, copies the shared grid into a *privately allocated* buffer
// (the large parallel-region allocations of the paper's Table 5),
// performs a breadth-first expansion on the copy, and then claims the
// found path in the shared grid inside a short transaction that
// conflicts only when another router took one of the same cells.
package labyrinth

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stamp"
	"repro/internal/stm"
	"repro/internal/txstruct"
	"repro/internal/vtime"
)

func init() {
	stamp.Register("labyrinth", func() stamp.App { return &Labyrinth{} })
}

// Cell states in the shared grid.
const (
	cellFree = 0
	cellWall = ^uint64(0)
	// path cells hold the path id + 2 (ids start at 0; value 1 is the
	// temporary "endpoint" marker in private copies)
)

// Labyrinth is the application state.
type Labyrinth struct {
	x, y, z int
	nPaths  int

	grid  mem.Addr // x*y*z words, shared
	queue *txstruct.Queue
	pairs [][2]int // cell indices (src, dst) per path id

	routed   []bool
	failures int
}

// Name implements stamp.App.
func (a *Labyrinth) Name() string { return "labyrinth" }

func (a *Labyrinth) params(s stamp.Scale) {
	switch s {
	case stamp.Ref:
		// 76*76*3 cells * 8 B = 135 KiB per private copy: above every
		// allocator's large-object threshold (including Glibc's 128 KiB
		// mmap threshold), as the paper's 512x512x7 grid was.
		a.x, a.y, a.z, a.nPaths = 76, 76, 3, 48
	default:
		a.x, a.y, a.z, a.nPaths = 16, 16, 3, 12
	}
}

func (a *Labyrinth) cells() int { return a.x * a.y * a.z }

func (a *Labyrinth) cellAddr(i int) mem.Addr { return a.grid + mem.Addr(i*8) }

// neighbors appends the orthogonal neighbours of cell i to buf.
func (a *Labyrinth) neighbors(i int, buf []int) []int {
	cx := i % a.x
	cy := (i / a.x) % a.y
	cz := i / (a.x * a.y)
	if cx > 0 {
		buf = append(buf, i-1)
	}
	if cx < a.x-1 {
		buf = append(buf, i+1)
	}
	if cy > 0 {
		buf = append(buf, i-a.x)
	}
	if cy < a.y-1 {
		buf = append(buf, i+a.x)
	}
	if cz > 0 {
		buf = append(buf, i-a.x*a.y)
	}
	if cz < a.z-1 {
		buf = append(buf, i+a.x*a.y)
	}
	return buf
}

// Setup implements stamp.App: builds the maze and the work queue.
func (a *Labyrinth) Setup(w *stamp.World) {
	a.params(w.Scale)
	a.routed = make([]bool, a.nPaths)
	w.Seq(func(th *vtime.Thread) {
		defer w.Region(th, "labyrinth/setup")()
		rng := sim.NewRand(w.Seed)
		a.grid = w.Calloc(th, uint64(a.cells()*8))
		// Sprinkle walls (~8%).
		for i := 0; i < a.cells()/12; i++ {
			th.Store(a.cellAddr(rng.Intn(a.cells())), cellWall)
		}
		w.Atomic(th, func(tx *stm.Tx) { a.queue = txstruct.NewQueue(tx, uint64(a.nPaths+1)) })
		for p := 0; p < a.nPaths; p++ {
			var src, dst int
			for {
				src = rng.Intn(a.cells())
				dst = rng.Intn(a.cells())
				if src != dst && th.Load(a.cellAddr(src)) == cellFree && th.Load(a.cellAddr(dst)) == cellFree {
					break
				}
			}
			a.pairs = append(a.pairs, [2]int{src, dst})
			w.Atomic(th, func(tx *stm.Tx) { a.queue.Push(tx, uint64(p)) })
		}
	})
}

// Parallel implements stamp.App: the router loop.
func (a *Labyrinth) Parallel(w *stamp.World, th *vtime.Thread) {
	defer w.Region(th, "labyrinth/parallel")()
	nCells := a.cells()
	for {
		pathID := -1
		w.Atomic(th, func(tx *stm.Tx) {
			if v, ok := a.queue.Pop(tx); ok {
				pathID = int(v)
			} else {
				pathID = -1
			}
		})
		if pathID < 0 {
			return
		}
		src, dst := a.pairs[pathID][0], a.pairs[pathID][1]

		for attempt := 0; ; attempt++ {
			// Private grid copy: a large parallel-region allocation,
			// freed in the parallel region too. The snapshot reads are
			// deliberately racy — STAMP's documented benign race: a
			// stale cell only sends the wave through a spot the claim
			// transaction below revalidates before storing.
			private := w.Malloc(th, uint64(nCells*8))
			for i := 0; i < nCells; i++ {
				th.Store(private+mem.Addr(i*8), th.LoadRelaxed(a.cellAddr(i)))
			}
			path := a.expand(th, private, src, dst)
			w.Allocator.Free(th, private)
			if path == nil {
				a.failures++ // unroutable with current grid
				break
			}
			// Claim the path transactionally; bail out if any cell was
			// taken since the copy.
			claimed := false
			w.Atomic(th, func(tx *stm.Tx) {
				claimed = true
				for _, c := range path {
					if tx.Load(a.cellAddr(c)) != cellFree {
						claimed = false
						return
					}
				}
				for _, c := range path {
					tx.Store(a.cellAddr(c), uint64(pathID)+2)
				}
			})
			if claimed {
				a.routed[pathID] = true
				break
			}
			th.Work(200) // back off before re-copying, as the C code re-tries
			if attempt > 50 {
				a.failures++
				break
			}
		}
	}
}

// expand runs the Lee breadth-first wave on the private copy and
// returns the path (including endpoints), or nil when unroutable.
func (a *Labyrinth) expand(th *vtime.Thread, private mem.Addr, src, dst int) []int {
	nCells := a.cells()
	dist := make([]int32, nCells)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	frontier := []int{src}
	var nbuf [6]int
	found := false
	for len(frontier) > 0 && !found {
		var next []int
		for _, c := range frontier {
			for _, n := range a.neighbors(c, nbuf[:0]) {
				if dist[n] >= 0 {
					continue
				}
				// Reading the private copy is priced like the C code's
				// grid scan.
				v := th.Load(private + mem.Addr(n*8))
				if n == dst {
					dist[n] = dist[c] + 1
					found = true
					break
				}
				if v != cellFree {
					continue
				}
				dist[n] = dist[c] + 1
				next = append(next, n)
			}
			if found {
				break
			}
		}
		frontier = next
	}
	if !found {
		return nil
	}
	// Trace back.
	path := []int{dst}
	cur := dst
	for cur != src {
		for _, n := range a.neighbors(cur, nbuf[:0]) {
			if dist[n] == dist[cur]-1 {
				cur = n
				break
			}
		}
		path = append(path, cur)
	}
	return path
}

// Validate implements stamp.App: routed paths occupy connected strips
// of their own id, and no cell belongs to two paths (ids are exclusive
// by construction — verify counts match).
func (a *Labyrinth) Validate(w *stamp.World) error {
	th := vtime.Solo(w.Space, 0, nil)
	routedCount := 0
	for p, ok := range a.routed {
		if !ok {
			continue
		}
		routedCount++
		src, dst := a.pairs[p][0], a.pairs[p][1]
		// BFS through cells of this path id must connect src to dst.
		id := uint64(p) + 2
		if th.Load(a.cellAddr(src)) != id || th.Load(a.cellAddr(dst)) != id {
			return fmt.Errorf("path %d: endpoints not claimed", p)
		}
		seen := map[int]bool{src: true}
		frontier := []int{src}
		var nbuf [6]int
		reached := false
		for len(frontier) > 0 && !reached {
			var next []int
			for _, c := range frontier {
				for _, n := range a.neighbors(c, nbuf[:0]) {
					if seen[n] || th.Load(a.cellAddr(n)) != id {
						continue
					}
					if n == dst {
						reached = true
					}
					seen[n] = true
					next = append(next, n)
				}
			}
			frontier = next
		}
		if !reached {
			return fmt.Errorf("path %d: not connected in shared grid", p)
		}
	}
	if routedCount+a.failures < a.nPaths {
		return fmt.Errorf("%d paths unaccounted for", a.nPaths-routedCount-a.failures)
	}
	if routedCount == 0 {
		return fmt.Errorf("no path routed at all")
	}
	return nil
}
