package labyrinth_test

import (
	"testing"

	"repro/internal/stamp"
	_ "repro/internal/stamp/labyrinth"
	"repro/internal/stamp/stamptest"
)

func TestLabyrinth(t *testing.T)              { stamptest.Check(t, "labyrinth", true) }
func TestLabyrinthDeterministic(t *testing.T) { stamptest.CheckDeterministic(t, "labyrinth") }

// Table 5 shape: labyrinth's allocation traffic is in the parallel
// region (grid copies), with essentially nothing inside transactions.
func TestLabyrinthParRegionAllocation(t *testing.T) {
	res, err := stamp.Run(stamp.Config{App: "labyrinth", Allocator: "tcmalloc", Threads: 2, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile
	if p.Mallocs[stamp.RegionPar] == 0 {
		t.Fatal("no parallel-region allocations (grid copies missing)")
	}
	if p.Mallocs[stamp.RegionTx] > p.Mallocs[stamp.RegionPar] {
		t.Errorf("tx allocations (%d) exceed par (%d)", p.Mallocs[stamp.RegionTx], p.Mallocs[stamp.RegionPar])
	}
	if p.Bytes[stamp.RegionPar] < 16*1024 {
		t.Errorf("par bytes %d suspiciously small for grid copies", p.Bytes[stamp.RegionPar])
	}
}
