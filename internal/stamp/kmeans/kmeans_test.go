package kmeans_test

import (
	"testing"

	"repro/internal/stamp"
	_ "repro/internal/stamp/kmeans"
	"repro/internal/stamp/stamptest"
)

func TestKMeans(t *testing.T)              { stamptest.Check(t, "kmeans", true) }
func TestKMeansDeterministic(t *testing.T) { stamptest.CheckDeterministic(t, "kmeans") }

// kmeans must not allocate inside transactions (Table 5).
func TestKMeansNoTxAllocation(t *testing.T) {
	res, err := stamp.Run(stamp.Config{App: "kmeans", Allocator: "tbb", Threads: 4, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile
	if p.Mallocs[stamp.RegionTx] != 0 || p.Mallocs[stamp.RegionPar] != 0 {
		t.Errorf("kmeans allocated outside seq: %+v", p.Mallocs)
	}
	if p.Mallocs[stamp.RegionSeq] == 0 {
		t.Error("no seq allocations recorded")
	}
}
