// Package kmeans ports STAMP's kmeans: Lloyd's clustering where each
// point's assignment updates the shared cluster accumulators inside a
// transaction. Like the original (and per the paper's Table 5), it
// allocates only during initialization — never inside transactions —
// making it one of the paper's two allocator-insensitive control
// applications.
package kmeans

import (
	"fmt"
	"math"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stamp"
	"repro/internal/stm"
	"repro/internal/vtime"
)

func init() {
	stamp.Register("kmeans", func() stamp.App { return &KMeans{} })
}

// KMeans is the application state.
type KMeans struct {
	n, d, k    int
	iterations int

	points  mem.Addr // n*d float64 words
	centers mem.Addr // k*d float64 words
	newSum  mem.Addr // k*d float64 words (tx-updated)
	newLen  mem.Addr // k words (tx-updated)
	barrier *vtime.Barrier

	assignedTotal int
}

// Name implements stamp.App.
func (a *KMeans) Name() string { return "kmeans" }

func (a *KMeans) params(s stamp.Scale, v stamp.Variant) {
	switch s {
	case stamp.Ref:
		a.n, a.d, a.k, a.iterations = 2048, 8, 16, 4
	default:
		a.n, a.d, a.k, a.iterations = 384, 4, 8, 3
	}
	if v == stamp.LowContention {
		// STAMP's low-contention kmeans uses more clusters, spreading
		// the accumulator updates across more transactions' targets.
		a.k *= 4
	}
}

func fbits(f float64) uint64             { return math.Float64bits(f) }
func ffrom(b uint64) float64             { return math.Float64frombits(b) }
func word(base mem.Addr, i int) mem.Addr { return base + mem.Addr(i*8) }

// Setup implements stamp.App: generates clustered points and takes the
// first k points as initial centers.
func (a *KMeans) Setup(w *World) {
	a.params(w.Scale, w.Variant)
	a.barrier = vtime.NewBarrier(w.Threads)
	w.Seq(func(th *vtime.Thread) {
		defer w.Region(th, "kmeans/setup")()
		a.points = w.Malloc(th, uint64(a.n*a.d*8))
		a.centers = w.Malloc(th, uint64(a.k*a.d*8))
		a.newSum = w.Calloc(th, uint64(a.k*a.d*8))
		a.newLen = w.Calloc(th, uint64(a.k*8))
		rng := sim.NewRand(w.Seed)
		for i := 0; i < a.n; i++ {
			c := i % a.k
			for j := 0; j < a.d; j++ {
				v := float64(c) + rng.Float64()*0.5
				th.Store(word(a.points, i*a.d+j), fbits(v))
			}
		}
		for c := 0; c < a.k; c++ {
			for j := 0; j < a.d; j++ {
				th.Store(word(a.centers, c*a.d+j), th.Load(word(a.points, c*a.d+j)))
			}
		}
	})
}

// World aliases the framework type for brevity.
type World = stamp.World

// Parallel implements stamp.App: the threaded clustering iterations.
func (a *KMeans) Parallel(w *World, th *vtime.Thread) {
	defer w.Region(th, "kmeans/parallel")()
	for it := 0; it < a.iterations; it++ {
		lo := th.ID() * a.n / w.Threads
		hi := (th.ID() + 1) * a.n / w.Threads
		for i := lo; i < hi; i++ {
			// Distance computation reads points and centers
			// non-transactionally: centers are stable within an
			// iteration, as in STAMP.
			best, bestDist := 0, math.MaxFloat64
			for c := 0; c < a.k; c++ {
				var dist float64
				for j := 0; j < a.d; j++ {
					diff := ffrom(th.Load(word(a.points, i*a.d+j))) -
						ffrom(th.Load(word(a.centers, c*a.d+j)))
					dist += diff * diff
				}
				th.Work(uint64(a.d * 4))
				if dist < bestDist {
					best, bestDist = c, dist
				}
			}
			// The accumulator update is the transaction.
			w.Atomic(th, func(tx *stm.Tx) {
				tx.Store(word(a.newLen, best), tx.Load(word(a.newLen, best))+1)
				for j := 0; j < a.d; j++ {
					cur := ffrom(tx.Load(word(a.newSum, best*a.d+j)))
					//tmvet:allow stmaccess: points are immutable during the phase; the raw load models STAMP's unlogged read of private input data
					p := ffrom(th.Load(word(a.points, i*a.d+j)))
					tx.Store(word(a.newSum, best*a.d+j), fbits(cur+p))
				}
			})
		}
		a.barrier.Wait(th)
		if th.ID() == 0 {
			// Recompute centers sequentially, as STAMP's main loop does.
			total := 0
			for c := 0; c < a.k; c++ {
				cnt := th.Load(word(a.newLen, c))
				total += int(cnt)
				for j := 0; j < a.d; j++ {
					if cnt > 0 {
						sum := ffrom(th.Load(word(a.newSum, c*a.d+j)))
						th.Store(word(a.centers, c*a.d+j), fbits(sum/float64(cnt)))
					}
					th.Store(word(a.newSum, c*a.d+j), 0)
				}
				th.Store(word(a.newLen, c), 0)
			}
			a.assignedTotal = total
		}
		a.barrier.Wait(th)
	}
}

// Validate implements stamp.App.
func (a *KMeans) Validate(w *World) error {
	if a.assignedTotal != a.n {
		return fmt.Errorf("last iteration assigned %d points, want %d", a.assignedTotal, a.n)
	}
	th := vtime.Solo(w.Space, 0, nil)
	for c := 0; c < a.k; c++ {
		for j := 0; j < a.d; j++ {
			v := ffrom(th.Load(word(a.centers, c*a.d+j)))
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("center %d dim %d is %v", c, j, v)
			}
		}
	}
	return nil
}
