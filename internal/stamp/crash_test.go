package stamp_test

import (
	"encoding/json"
	"testing"

	"repro/internal/obs"
	"repro/internal/stamp"

	_ "repro/internal/stamp/genome"
	_ "repro/internal/stamp/vacation"
)

// TestStampCrashRecovery halts a STAMP application mid-commit and
// requires recovery to verify clean for each allocator model.
func TestStampCrashRecovery(t *testing.T) {
	for _, a := range []string{"glibc", "hoard", "tbb", "tcmalloc"} {
		t.Run(a, func(t *testing.T) {
			res, err := stamp.Run(stamp.Config{
				App: "genome", Allocator: a, Threads: 2,
				Crash: "crashphase:commit@10",
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Recovery == nil || !res.Recovery.Crashed {
				t.Fatalf("crash never fired: %+v", res.Recovery)
			}
			if res.Status != obs.StatusOK {
				t.Fatalf("status = %q (%s): %+v", res.Status, res.Failure, res.Recovery)
			}
		})
	}
}

// TestStampCrashDeterministic requires byte-identical recovery info
// across identical crashed runs.
func TestStampCrashDeterministic(t *testing.T) {
	cfg := stamp.Config{App: "vacation", Allocator: "tbb", Threads: 2, Crash: "crash@20000"}
	r1, err := stamp.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := stamp.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(r1.Recovery)
	j2, _ := json.Marshal(r2.Recovery)
	if string(j1) != string(j2) {
		t.Fatalf("recovery differs:\n%s\n%s", j1, j2)
	}
}
