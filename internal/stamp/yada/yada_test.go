package yada_test

import (
	"testing"

	"repro/internal/stamp"
	"repro/internal/stamp/stamptest"
	_ "repro/internal/stamp/yada"
)

func TestYada(t *testing.T)              { stamptest.Check(t, "yada", true) }
func TestYadaDeterministic(t *testing.T) { stamptest.CheckDeterministic(t, "yada") }

// Table 5 shape: yada both allocates and frees heavily inside
// transactions (cavity retriangulation).
func TestYadaTxAllocAndFree(t *testing.T) {
	res, err := stamp.Run(stamp.Config{App: "yada", Allocator: "glibc", Threads: 1, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile
	if p.Mallocs[stamp.RegionTx] == 0 || p.Frees[stamp.RegionTx] == 0 {
		t.Errorf("yada tx profile: mallocs %d frees %d, want both nonzero",
			p.Mallocs[stamp.RegionTx], p.Frees[stamp.RegionTx])
	}
}

// Yada under contention must still produce a consistent mesh and show a
// meaningful abort rate (the paper calls out its high abort rate).
func TestYadaAbortsUnderContention(t *testing.T) {
	res, err := stamp.Run(stamp.Config{App: "yada", Allocator: "tbb", Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tx.Aborts == 0 {
		t.Log("note: no aborts at quick scale") // informational, scale-dependent
	}
}
