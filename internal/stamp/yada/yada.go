// Package yada ports STAMP's yada (Yet Another Delaunay Application):
// Ruppert-style refinement of a Delaunay triangulation. A sequential
// phase builds an initial Delaunay mesh over random points
// (Bowyer–Watson insertion inside a super-triangle) and queues every
// poor-quality triangle. Worker threads then repeatedly pop a bad
// triangle and, in one transaction, carve out its circumcenter's
// cavity, retriangulate it, wire up neighbour pointers, and queue any
// new bad triangles.
//
// Yada is the paper's stress case for transactional allocation: each
// refinement transaction frees the cavity's triangles and allocates the
// replacements, and its abort rate is high, so every rollback turns
// into allocator traffic — the behaviour behind the paper's 171%
// Glibc-vs-TCMalloc gap (§6, Table 6).
//
// Simplifications versus the C original (documented in DESIGN.md):
// refinement is plain Ruppert over a point cloud without constrained
// boundary segments, and termination is guaranteed by refining only
// triangles whose circumradius exceeds a floor instead of by encroached-
// segment splitting. The transactional structure (one cavity per
// transaction, free-then-allocate inside it) is the original's.
package yada

import (
	"fmt"
	"math"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stamp"
	"repro/internal/stm"
	"repro/internal/txstruct"
	"repro/internal/vtime"
)

func init() {
	stamp.Register("yada", func() stamp.App { return &Yada{} })
}

// Triangle record layout (transactionally allocated, 80 bytes): vertex
// point indices, neighbour triangle addresses (0 = none), liveness
// flag, and an epoch distinguishing reuses of recycled records.
const (
	tV0    = 0
	tV1    = 8
	tV2    = 16
	tN0    = 24 // neighbour across edge (v0,v1)
	tN1    = 32 // neighbour across edge (v1,v2)
	tN2    = 40 // neighbour across edge (v2,v0)
	tAlive = 48
	tEpoch = 56
	tSize  = 80
)

// Yada is the application state.
type Yada struct {
	nPoints   int     // initial interior points
	maxPoints int     // point-array capacity
	minAngle  float64 // quality bound, degrees
	minRadius float64 // circumradius floor: smaller triangles are left alone

	points   mem.Addr // maxPoints * 16 bytes (x, y float64)
	rootCell mem.Addr // address of some live triangle (mesh entry point)
	queue    *txstruct.Queue

	// Per-thread point-index ranges and epoch counters: global cells for
	// these would serialize every refinement transaction.
	ptNext  []int // next free point index per thread
	ptLimit []int
	epochs  []uint64

	setupNext int        // next point index during the sequential build
	newBad    [][]badRef // per-thread cascade buffers
	pinched   []bool     // per-thread: last insertPoint hit a pinched cavity

	refined   int
	skipped   int
	dropped   int  // refinements abandoned after repeated pinched cavities
	exhausted bool // a thread ran out of point indices
}

// pinchRetries bounds how often a pinched refinement is re-queued
// before being dropped: concurrent refinements normally reshape the
// cavity within a few rounds, and a bound keeps a degenerate corner of
// the mesh from spinning the queue forever.
const pinchRetries = 16

// Name implements stamp.App.
func (a *Yada) Name() string { return "yada" }

func (a *Yada) params(s stamp.Scale) {
	switch s {
	case stamp.Ref:
		a.nPoints, a.maxPoints, a.minAngle, a.minRadius = 128, 16384, 24, 0.012
	default:
		a.nPoints, a.maxPoints, a.minAngle, a.minRadius = 32, 2048, 20, 0.05
	}
}

func fb(f float64) uint64 { return math.Float64bits(f) }
func ff(b uint64) float64 { return math.Float64frombits(b) }

func (a *Yada) ptAddr(i int) mem.Addr { return a.points + mem.Addr(i*16) }

func (a *Yada) loadPointTx(tx *stm.Tx, i int) (x, y float64) {
	return ff(tx.Load(a.ptAddr(i))), ff(tx.Load(a.ptAddr(i) + 8))
}

// geometry helpers over host floats

type pt struct{ x, y float64 }

func circumcircle(p0, p1, p2 pt) (center pt, r2 float64, ok bool) {
	ax, ay := p0.x, p0.y
	bx, by := p1.x, p1.y
	cx, cy := p2.x, p2.y
	d := 2 * (ax*(by-cy) + bx*(cy-ay) + cx*(ay-by))
	if math.Abs(d) < 1e-12 {
		return pt{}, 0, false
	}
	ux := ((ax*ax+ay*ay)*(by-cy) + (bx*bx+by*by)*(cy-ay) + (cx*cx+cy*cy)*(ay-by)) / d
	uy := ((ax*ax+ay*ay)*(cx-bx) + (bx*bx+by*by)*(ax-cx) + (cx*cx+cy*cy)*(bx-ax)) / d
	dx, dy := ux-ax, uy-ay
	return pt{ux, uy}, dx*dx + dy*dy, true
}

func minAngleDeg(p0, p1, p2 pt) float64 {
	side := func(a, b pt) float64 { return math.Hypot(a.x-b.x, a.y-b.y) }
	la, lb, lc := side(p1, p2), side(p0, p2), side(p0, p1)
	angle := func(opp, s1, s2 float64) float64 {
		v := (s1*s1 + s2*s2 - opp*opp) / (2 * s1 * s2)
		v = math.Max(-1, math.Min(1, v))
		return math.Acos(v) * 180 / math.Pi
	}
	a1 := angle(la, lb, lc)
	a2 := angle(lb, la, lc)
	return math.Min(a1, math.Min(a2, 180-a1-a2))
}

// isBad reports whether a triangle needs refinement: poor minimum angle
// and a circumradius above the floor. Super-triangle corners (indices
// 0..2) exempt their triangles.
func (a *Yada) isBad(p0, p1, p2 pt, v0, v1, v2 int) (bad bool, center pt) {
	if v0 < 3 || v1 < 3 || v2 < 3 {
		return false, pt{}
	}
	c, r2, ok := circumcircle(p0, p1, p2)
	if !ok {
		return false, pt{}
	}
	if math.Sqrt(r2) <= a.minRadius {
		return false, pt{}
	}
	if minAngleDeg(p0, p1, p2) >= a.minAngle {
		return false, pt{}
	}
	return true, c
}

// Setup implements stamp.App: builds the initial Delaunay mesh
// sequentially and seeds the bad-triangle queue.
func (a *Yada) Setup(w *stamp.World) {
	a.params(w.Scale)
	w.Seq(func(th *vtime.Thread) {
		defer w.Region(th, "yada/setup")()
		rng := sim.NewRand(w.Seed)
		a.points = w.Calloc(th, uint64(a.maxPoints*16))
		cells := w.Calloc(th, 8)
		a.rootCell = cells

		// Points 0..2: a super-triangle enclosing the unit square.
		super := []pt{{-10, -10}, {20, -10}, {0.5, 20}}
		for i, p := range super {
			th.Store(a.ptAddr(i), fb(p.x))
			th.Store(a.ptAddr(i)+8, fb(p.y))
		}
		// Partition the remaining point indices between the threads (a
		// global next-point cell would be a serializing hot spot).
		a.ptNext = make([]int, w.Threads)
		a.ptLimit = make([]int, w.Threads)
		a.epochs = make([]uint64, w.Threads)
		a.newBad = make([][]badRef, w.Threads)
		a.pinched = make([]bool, w.Threads)
		reserved := 3 + a.nPoints // indices used by setup, from thread 0's range
		per := (a.maxPoints - reserved) / w.Threads
		for t := 0; t < w.Threads; t++ {
			a.ptNext[t] = reserved + t*per
			a.ptLimit[t] = reserved + (t+1)*per
		}
		a.setupNext = 3

		w.Atomic(th, func(tx *stm.Tx) {
			a.queue = txstruct.NewQueue(tx, 256)
			// Initial mesh: just the super-triangle.
			tri := a.newTriangle(tx, 0, 1, 2, 0, 0, 0)
			tx.Store(a.rootCell, uint64(tri))
		})

		// Insert the initial random points one transaction each (the
		// sequential Bowyer–Watson build).
		for i := 0; i < a.nPoints; i++ {
			p := pt{0.05 + 0.9*rng.Float64(), 0.05 + 0.9*rng.Float64()}
			w.Atomic(th, func(tx *stm.Tx) {
				a.insertPoint(tx, p, false)
			})
		}
		// Seed the queue with every bad triangle.
		w.Atomic(th, func(tx *stm.Tx) {
			for _, tri := range a.meshTriangles(tx) {
				a.queueIfBad(tx, tri)
			}
		})
	})
}

// newTriangle allocates and initializes a triangle record inside tx.
// Epochs are unique per (thread, counter): a retried transaction burns
// one, which is harmless — only uniqueness matters.
func (a *Yada) newTriangle(tx *stm.Tx, v0, v1, v2 int, n0, n1, n2 mem.Addr) mem.Addr {
	t := tx.Malloc(tSize)
	tid := tx.Thread().ID()
	a.epochs[tid]++
	epoch := a.epochs[tid]<<3 | uint64(tid)
	tx.Store(t+tV0, uint64(v0))
	tx.Store(t+tV1, uint64(v1))
	tx.Store(t+tV2, uint64(v2))
	tx.Store(t+tN0, uint64(n0))
	tx.Store(t+tN1, uint64(n1))
	tx.Store(t+tN2, uint64(n2))
	tx.Store(t+tAlive, 1)
	tx.Store(t+tEpoch, epoch)
	return t
}

func (a *Yada) triPts(tx *stm.Tx, t mem.Addr) (v [3]int, p [3]pt) {
	v[0] = int(tx.Load(t + tV0))
	v[1] = int(tx.Load(t + tV1))
	v[2] = int(tx.Load(t + tV2))
	for i := 0; i < 3; i++ {
		p[i].x, p[i].y = a.loadPointTx(tx, v[i])
	}
	return v, p
}

type badRef struct {
	tri   mem.Addr
	epoch uint64
}

// queueIfBad pushes a triangle onto the work queue if it needs
// refinement; the queue entry packs the record's epoch to defeat reuse.
func (a *Yada) queueIfBad(tx *stm.Tx, t mem.Addr) {
	v, p := a.triPts(tx, t)
	if bad, _ := a.isBad(p[0], p[1], p[2], v[0], v[1], v[2]); bad {
		epoch := tx.Load(t + tEpoch)
		a.queue.Push(tx, epoch<<40|uint64(t))
	}
}

// neighborsOf returns the three neighbour fields.
func neighborsOf(tx *stm.Tx, t mem.Addr) [3]mem.Addr {
	return [3]mem.Addr{
		mem.Addr(tx.Load(t + tN0)),
		mem.Addr(tx.Load(t + tN1)),
		mem.Addr(tx.Load(t + tN2)),
	}
}

// replaceNeighbor rewires old -> new in t's neighbour slots.
func replaceNeighbor(tx *stm.Tx, t, old, new mem.Addr) {
	for _, off := range []mem.Addr{tN0, tN1, tN2} {
		if mem.Addr(tx.Load(t+off)) == old {
			tx.Store(t+off, uint64(new))
		}
	}
}

type edge struct{ a, b int }

// insertPoint performs one Bowyer–Watson insertion of p. seed must be a
// live triangle whose circumcircle contains p when fromQueue is set;
// otherwise the containing triangle is located by walking the mesh.
// It returns false if the point could not be inserted (capacity).
func (a *Yada) insertPoint(tx *stm.Tx, p pt, fromQueue bool, seeds ...mem.Addr) bool {
	tid := tx.Thread().ID()
	var n int
	if fromQueue {
		if a.ptNext[tid] >= a.ptLimit[tid] {
			a.exhausted = true
			return false
		}
		n = a.ptNext[tid]
	} else {
		n = a.setupNext
	}
	var seed mem.Addr
	if len(seeds) > 0 {
		seed = seeds[0]
	} else {
		seed = a.locate(tx, p)
		if seed == 0 {
			return false
		}
	}

	// Cavity: BFS over triangles whose circumcircle contains p.
	inCavity := map[mem.Addr]bool{seed: true}
	stack := []mem.Addr{seed}
	var cavity []mem.Addr
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		cavity = append(cavity, t)
		for _, nb := range neighborsOf(tx, t) {
			if nb == 0 || inCavity[nb] {
				continue
			}
			_, q := a.triPts(tx, nb)
			c, r2, ok := circumcircle(q[0], q[1], q[2])
			if !ok {
				continue
			}
			dx, dy := p.x-c.x, p.y-c.y
			if dx*dx+dy*dy < r2 {
				inCavity[nb] = true
				stack = append(stack, nb)
			}
		}
	}

	// Boundary edges: edges of cavity triangles whose far side is not
	// in the cavity. Each carries the outside neighbour (0 = hull) and
	// the cavity triangle that owned the edge (for rewiring).
	type bedge struct {
		e       edge
		out, in mem.Addr
	}
	var boundary []bedge
	for _, t := range cavity {
		v, _ := a.triPts(tx, t)
		nbs := neighborsOf(tx, t)
		es := [3]edge{{v[0], v[1]}, {v[1], v[2]}, {v[2], v[0]}}
		for i := 0; i < 3; i++ {
			if nbs[i] == 0 || !inCavity[nbs[i]] {
				boundary = append(boundary, bedge{e: es[i], out: nbs[i], in: t})
			}
		}
	}

	// A pinched boundary — some vertex on more than two boundary edges —
	// arises when floating-point circumcircle tests disagree and the
	// cavity is not a simple star. Endpoint-matched fan wiring would then
	// be ambiguous: the overwrites leave asymmetric neighbour links, and
	// the next free over such a link strands a live triangle pointing at
	// reclaimed memory. Detect it before mutating anything and bail; the
	// caller re-queues the refinement for after the mesh has evolved.
	seenA := map[int]bool{}
	seenB := map[int]bool{}
	for _, be := range boundary {
		if seenA[be.e.a] || seenB[be.e.b] {
			a.pinched[tid] = true
			return false
		}
		seenA[be.e.a] = true
		seenB[be.e.b] = true
	}

	// Claim the new point index (the write below is to the thread's own
	// slot of the point array).
	if fromQueue {
		a.ptNext[tid] = n + 1
	} else {
		a.setupNext = n + 1
	}
	tx.Store(a.ptAddr(n), fb(p.x))
	tx.Store(a.ptAddr(n)+8, fb(p.y))

	// Destroy the cavity (transactional frees: the blocks return to the
	// allocator at commit, exactly yada's pressure pattern).
	for _, t := range cavity {
		tx.Store(t+tAlive, 0)
		tx.Free(t, tSize)
	}

	// Retriangulate: one new triangle per boundary edge, fanning to n.
	newTris := make([]mem.Addr, len(boundary))
	for i, be := range boundary {
		newTris[i] = a.newTriangle(tx, be.e.a, be.e.b, n, be.out, 0, 0)
		if be.out != 0 {
			replaceNeighbor(tx, be.out, be.in, newTris[i])
		}
	}
	// Wire the fan: triangles sharing point n are adjacent when they
	// share a boundary endpoint.
	for i, bi := range boundary {
		for j, bj := range boundary {
			if i == j {
				continue
			}
			if bi.e.b == bj.e.a {
				tx.Store(newTris[i]+tN1, uint64(newTris[j]))
			}
			if bi.e.a == bj.e.b {
				tx.Store(newTris[i]+tN2, uint64(newTris[j]))
			}
		}
	}
	// Keep the mesh entry point alive without turning it into a global
	// hot spot: only rewrite it when it points into the cavity we just
	// destroyed.
	root := mem.Addr(tx.Load(a.rootCell))
	if root == 0 || inCavity[root] {
		tx.Store(a.rootCell, uint64(newTris[0]))
	}

	// Collect new bad triangles (refinement cascades); the caller
	// queues them, inside this transaction during the sequential build
	// and in a separate transaction during refinement.
	if fromQueue {
		for _, t := range newTris {
			if v, p := a.triPts(tx, t); true {
				if bad, _ := a.isBad(p[0], p[1], p[2], v[0], v[1], v[2]); bad {
					a.newBad[tid] = append(a.newBad[tid], badRef{tri: t, epoch: tx.Load(t + tEpoch)})
				}
			}
		}
	}
	return true
}

// locate finds the triangle containing p by walking from the root.
func (a *Yada) locate(tx *stm.Tx, p pt) mem.Addr {
	root := mem.Addr(tx.Load(a.rootCell))
	if root == 0 {
		return 0
	}
	// Straightforward BFS over the mesh testing containment; robust and
	// adequate at these scales.
	seen := map[mem.Addr]bool{root: true}
	queue := []mem.Addr{root}
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		if tx.Load(t+tAlive) == 1 {
			_, q := a.triPts(tx, t)
			if containsPoint(q, p) {
				return t
			}
		}
		for _, nb := range neighborsOf(tx, t) {
			if nb != 0 && !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	return 0
}

func containsPoint(q [3]pt, p pt) bool {
	sign := func(a, b, c pt) float64 {
		return (a.x-c.x)*(b.y-c.y) - (b.x-c.x)*(a.y-c.y)
	}
	d1 := sign(p, q[0], q[1])
	d2 := sign(p, q[1], q[2])
	d3 := sign(p, q[2], q[0])
	hasNeg := d1 < 0 || d2 < 0 || d3 < 0
	hasPos := d1 > 0 || d2 > 0 || d3 > 0
	return !(hasNeg && hasPos)
}

// meshTriangles walks the mesh from the root and returns all live
// triangles.
func (a *Yada) meshTriangles(tx *stm.Tx) []mem.Addr {
	root := mem.Addr(tx.Load(a.rootCell))
	if root == 0 {
		return nil
	}
	seen := map[mem.Addr]bool{root: true}
	queue := []mem.Addr{root}
	var out []mem.Addr
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		if tx.Load(t+tAlive) == 1 {
			out = append(out, t)
		}
		for _, nb := range neighborsOf(tx, t) {
			if nb != 0 && !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	return out
}

// Parallel implements stamp.App: the refinement loop. Popping a work
// item, refining the cavity, and queueing the cascade are three
// separate transactions — holding the queue's stripe lock across a
// whole refinement would serialize the benchmark; stale queue entries
// are instead filtered by the epoch check.
func (a *Yada) Parallel(w *stamp.World, th *vtime.Thread) {
	defer w.Region(th, "yada/parallel")()
	pinchCount := map[mem.Addr]int{} // per-thread pinch re-queue budget
	for {
		var item uint64
		done := false
		w.Atomic(th, func(tx *stm.Tx) {
			v, ok := a.queue.Pop(tx)
			if !ok {
				done = true
				return
			}
			done = false
			item = v
		})
		if done {
			return
		}
		t := mem.Addr(item & ((1 << 40) - 1))
		epoch := item >> 40

		tid := th.ID()
		var cascade []badRef
		w.Atomic(th, func(tx *stm.Tx) {
			cascade = nil
			a.newBad[tid] = a.newBad[tid][:0]
			a.pinched[tid] = false
			// Guard reads: t may point at a triangle refined away (freed,
			// possibly recycled) since it was queued; the epoch check
			// validates the handle, so the sanitizer's UAF rule is waived.
			if tx.LoadGuard(t+tAlive) != 1 || tx.LoadGuard(t+tEpoch) != epoch {
				a.skipped++ // stale entry: triangle already refined away
				return
			}
			vtx, p := a.triPts(tx, t)
			bad, center := a.isBad(p[0], p[1], p[2], vtx[0], vtx[1], vtx[2])
			if !bad {
				a.skipped++
				return
			}
			if a.insertPoint(tx, center, true, t) {
				a.refined++
				cascade = append(cascade, a.newBad[tid]...)
			}
		})
		if a.pinched[tid] {
			// The cavity boundary was not a simple loop. Re-queue and let
			// concurrent refinements reshape the neighbourhood; after
			// pinchRetries rounds give the triangle up as unrefinable.
			if pinchCount[t] < pinchRetries {
				pinchCount[t]++
				w.Atomic(th, func(tx *stm.Tx) {
					a.queue.Push(tx, epoch<<40|uint64(t))
				})
			} else {
				a.dropped++
			}
		}
		if len(cascade) > 0 {
			w.Atomic(th, func(tx *stm.Tx) {
				for _, b := range cascade {
					a.queue.Push(tx, b.epoch<<40|uint64(b.tri))
				}
			})
		}
		th.Work(50)
	}
}

// Validate implements stamp.App: mesh consistency and refinement
// success.
func (a *Yada) Validate(w *stamp.World) error {
	th := vtime.Solo(w.Space, 0, nil)
	var err error
	w.STM.Atomic(th, func(tx *stm.Tx) {
		err = nil
		tris := a.meshTriangles(tx)
		if len(tris) == 0 {
			err = fmt.Errorf("empty mesh")
			return
		}
		// Neighbour symmetry.
		alive := map[mem.Addr]bool{}
		for _, t := range tris {
			alive[t] = true
		}
		for _, t := range tris {
			for _, nb := range neighborsOf(tx, t) {
				if nb == 0 {
					continue
				}
				if !alive[nb] {
					err = fmt.Errorf("triangle %#x points to dead neighbour %#x", uint64(t), uint64(nb))
					return
				}
				back := neighborsOf(tx, nb)
				if back[0] != t && back[1] != t && back[2] != t {
					err = fmt.Errorf("asymmetric adjacency %#x -> %#x", uint64(t), uint64(nb))
					return
				}
			}
		}
		// No refinable triangle may remain (unless the point budget ran
		// out or pinched cavities were dropped, both of which bound the
		// refinement legitimately).
		if !a.exhausted && a.dropped == 0 {
			for _, t := range tris {
				v, p := a.triPts(tx, t)
				if bad, _ := a.isBad(p[0], p[1], p[2], v[0], v[1], v[2]); bad {
					err = fmt.Errorf("unrefined bad triangle remains (refined=%d skipped=%d)", a.refined, a.skipped)
					return
				}
			}
		}
		if a.refined == 0 {
			err = fmt.Errorf("no triangle was refined")
		}
	})
	return err
}
