package intruder_test

import (
	"testing"

	"repro/internal/stamp"
	_ "repro/internal/stamp/intruder"
	"repro/internal/stamp/stamptest"
)

func TestIntruder(t *testing.T)              { stamptest.Check(t, "intruder", true) }
func TestIntruderDeterministic(t *testing.T) { stamptest.CheckDeterministic(t, "intruder") }

// Table 5 shape: intruder allocates inside transactions and frees in
// the parallel region (privatization).
func TestIntruderPrivatizationPattern(t *testing.T) {
	res, err := stamp.Run(stamp.Config{App: "intruder", Allocator: "hoard", Threads: 1, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile
	if p.Mallocs[stamp.RegionTx] == 0 {
		t.Fatal("no tx allocations")
	}
	if p.Frees[stamp.RegionPar] == 0 {
		t.Error("no frees in the parallel region; privatization pattern missing")
	}
	// The flow-map tree nodes are freed transactionally (as in the C
	// version), but the bulk of the reassembly memory must be released
	// in the parallel region.
	if p.Frees[stamp.RegionPar] <= p.Frees[stamp.RegionTx] {
		t.Errorf("par frees %d not dominant over tx frees %d", p.Frees[stamp.RegionPar], p.Frees[stamp.RegionTx])
	}
}
