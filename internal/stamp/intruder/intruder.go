// Package intruder ports STAMP's intruder: network intrusion detection
// over fragmented flows. Threads transactionally pop packet fragments
// from a shared queue and assemble them in a shared flow map; when a
// flow completes, the thread removes it from the map and — outside any
// transaction — decodes the payload and runs the attack detector, then
// frees the reassembly structures.
//
// This preserves intruder's signature allocation pattern from the
// paper's Table 5: many small allocations *inside* transactions whose
// matching frees happen *outside* (privatization), which is what made
// Hoard's heap locks the bottleneck in §6.
package intruder

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stamp"
	"repro/internal/stm"
	"repro/internal/txstruct"
	"repro/internal/vtime"
)

func init() {
	stamp.Register("intruder", func() stamp.App { return &Intruder{} })
}

// Fragment record (sequentially allocated packet stream): flow id,
// fragment index, fragment count, payload length, payload bytes.
const (
	frFlow  = 0
	frIdx   = 8
	frCount = 16
	frLen   = 24
	frData  = 32
)

// Flow reassembly record (transactionally allocated): fragments seen,
// fragment count, slots pointer.
const (
	flSeen  = 0
	flCount = 8
	flSlots = 16
	flSize  = 32
)

var signature = []byte("ATTACK")

// Intruder is the application state.
type Intruder struct {
	flows     int
	maxFrags  int
	fragBytes int
	attacks   int

	queue   *txstruct.Queue
	flowMap *txstruct.RBTree

	planted  int
	found    int
	finished int
}

// Name implements stamp.App.
func (a *Intruder) Name() string { return "intruder" }

func (a *Intruder) params(s stamp.Scale) {
	switch s {
	case stamp.Ref:
		a.flows, a.maxFrags, a.fragBytes, a.attacks = 2048, 6, 64, 128
	default:
		a.flows, a.maxFrags, a.fragBytes, a.attacks = 96, 4, 32, 12
	}
}

// Setup implements stamp.App: builds the shuffled fragment stream.
func (a *Intruder) Setup(w *stamp.World) {
	a.params(w.Scale)
	w.Seq(func(th *vtime.Thread) {
		defer w.Region(th, "intruder/setup")()
		rng := sim.NewRand(w.Seed)
		w.Atomic(th, func(tx *stm.Tx) {
			a.queue = txstruct.NewQueue(tx, 256)
			a.flowMap = txstruct.NewRBTree(tx)
		})
		var frags []mem.Addr
		for f := 0; f < a.flows; f++ {
			n := 1 + rng.Intn(a.maxFrags)
			attack := f < a.attacks
			// Payload: random bytes; attack flows embed the signature
			// across the flow's payload.
			payload := make([]byte, n*a.fragBytes)
			for i := range payload {
				payload[i] = byte('a' + rng.Intn(26))
			}
			if attack {
				off := rng.Intn(len(payload) - len(signature))
				copy(payload[off:], signature)
				a.planted++
			}
			for i := 0; i < n; i++ {
				rec := w.Malloc(th, uint64(frData+a.fragBytes))
				th.Store(rec+frFlow, uint64(f))
				th.Store(rec+frIdx, uint64(i))
				th.Store(rec+frCount, uint64(n))
				th.Store(rec+frLen, uint64(a.fragBytes))
				w.Space.WriteBytes(rec+frData, payload[i*a.fragBytes:(i+1)*a.fragBytes])
				th.Tick(uint64(a.fragBytes))
				frags = append(frags, rec)
			}
		}
		// Shuffle fragments into the stream, as the packet capture
		// interleaves flows.
		for i := len(frags) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			frags[i], frags[j] = frags[j], frags[i]
		}
		for _, rec := range frags {
			w.Atomic(th, func(tx *stm.Tx) { a.queue.Push(tx, uint64(rec)) })
		}
	})
}

// Parallel implements stamp.App: the capture/reassembly/detect loop.
func (a *Intruder) Parallel(w *stamp.World, th *vtime.Thread) {
	defer w.Region(th, "intruder/parallel")()
	for {
		var rec mem.Addr
		w.Atomic(th, func(tx *stm.Tx) {
			v, ok := a.queue.Pop(tx)
			if !ok {
				rec = 0
				return
			}
			rec = mem.Addr(v)
		})
		if rec == 0 {
			return
		}
		flow := int64(th.Load(rec + frFlow))
		idx := th.Load(rec + frIdx)
		count := th.Load(rec + frCount)

		var completed mem.Addr // flow record, privatized when complete
		w.Atomic(th, func(tx *stm.Tx) {
			completed = 0
			var fl mem.Addr
			if v, ok := a.flowMap.Get(tx, flow); ok {
				fl = mem.Addr(v)
			} else {
				fl = tx.Malloc(flSize)
				slots := tx.Malloc(count * 8)
				for i := uint64(0); i < count; i++ {
					tx.Store(slots+mem.Addr(i*8), 0)
				}
				tx.Store(fl+flSeen, 0)
				tx.Store(fl+flCount, count)
				tx.Store(fl+flSlots, uint64(slots))
				a.flowMap.Insert(tx, flow, uint64(fl))
			}
			slots := mem.Addr(tx.Load(fl + flSlots))
			if tx.Load(slots+mem.Addr(idx*8)) != 0 {
				return // duplicate fragment
			}
			tx.Store(slots+mem.Addr(idx*8), uint64(rec))
			seen := tx.Load(fl+flSeen) + 1
			tx.Store(fl+flSeen, seen)
			if seen == count {
				a.flowMap.Remove(tx, flow)
				completed = fl
			}
		})
		if completed == 0 {
			continue
		}
		// Privatized: decode and detect outside any transaction, then
		// free the reassembly structures in the parallel region — the
		// paper's privatization pattern.
		slots := mem.Addr(th.Load(completed + flSlots))
		n := th.Load(completed + flCount)
		payload := make([]byte, 0, int(n)*a.fragBytes)
		for i := uint64(0); i < n; i++ {
			fr := mem.Addr(th.Load(slots + mem.Addr(i*8)))
			l := int(th.Load(fr + frLen))
			for b := 0; b < l; b++ {
				addr := fr + frData + mem.Addr(b)
				word := th.Load(addr &^ 7)
				payload = append(payload, byte(word>>((uint64(addr)&7)*8)))
			}
		}
		if containsSig(payload) {
			a.found++ // engine serializes: safe
		}
		th.Work(uint64(len(payload)))
		w.Allocator.Free(th, slots)
		//tmvet:allow txescape: the committed Remove privatized the flow, so the raw free cannot race a reader
		w.Allocator.Free(th, completed)
		a.finished++
	}
}

func containsSig(p []byte) bool {
	for i := 0; i+len(signature) <= len(p); i++ {
		match := true
		for j := range signature {
			if p[i+j] != signature[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// Validate implements stamp.App.
func (a *Intruder) Validate(w *stamp.World) error {
	if a.finished != a.flows {
		return fmt.Errorf("processed %d flows, want %d", a.finished, a.flows)
	}
	if a.found != a.planted {
		return fmt.Errorf("detected %d attacks, planted %d", a.found, a.planted)
	}
	th := vtime.Solo(w.Space, 0, nil)
	var leftover int
	w.STM.Atomic(th, func(tx *stm.Tx) { leftover = a.flowMap.Len(tx) })
	if leftover != 0 {
		return fmt.Errorf("%d flows stuck in the reassembly map", leftover)
	}
	return nil
}
