package ssca2_test

import (
	"testing"

	"repro/internal/stamp"
	_ "repro/internal/stamp/ssca2"
	"repro/internal/stamp/stamptest"
)

func TestSSCA2(t *testing.T)              { stamptest.Check(t, "ssca2", true) }
func TestSSCA2Deterministic(t *testing.T) { stamptest.CheckDeterministic(t, "ssca2") }

// ssca2 allocates only during initialization (Table 5).
func TestSSCA2InitOnlyAllocation(t *testing.T) {
	res, err := stamp.Run(stamp.Config{App: "ssca2", Allocator: "hoard", Threads: 4, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile
	if p.Mallocs[stamp.RegionTx] != 0 {
		t.Errorf("ssca2 allocated in tx: %+v", p.Mallocs)
	}
}
