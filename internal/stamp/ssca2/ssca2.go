// Package ssca2 ports STAMP's SSCA2 (kernel 1, graph construction):
// threads cooperatively build a compact adjacency structure from an
// edge list, using transactions to claim per-vertex degree counters and
// adjacency slots. Like the original (paper Table 5), all memory is
// allocated during initialization — the paper's second
// allocator-insensitive control application.
package ssca2

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stamp"
	"repro/internal/stm"
	"repro/internal/vtime"
)

func init() {
	stamp.Register("ssca2", func() stamp.App { return &SSCA2{} })
}

// SSCA2 is the application state.
type SSCA2 struct {
	v, e int

	edgeU, edgeV mem.Addr // e words each
	deg          mem.Addr // v words: degree counters (tx phase A)
	offset       mem.Addr // v+1 words: prefix sums (seq between phases)
	fill         mem.Addr // v words: next slot per vertex (tx phase B)
	adj          mem.Addr // e words: adjacency targets (+1 so 0 = empty)
	barrier      *vtime.Barrier
}

// Name implements stamp.App.
func (a *SSCA2) Name() string { return "ssca2" }

func (a *SSCA2) params(s stamp.Scale) {
	switch s {
	case stamp.Ref:
		a.v, a.e = 2048, 8192
	default:
		a.v, a.e = 256, 1024
	}
}

func w64(base mem.Addr, i int) mem.Addr { return base + mem.Addr(i*8) }

// Setup implements stamp.App: generates the edge list and allocates the
// graph arrays (all sequential allocation).
func (a *SSCA2) Setup(w *stamp.World) {
	a.params(w.Scale)
	a.barrier = vtime.NewBarrier(w.Threads)
	w.Seq(func(th *vtime.Thread) {
		defer w.Region(th, "ssca2/setup")()
		a.edgeU = w.Malloc(th, uint64(a.e*8))
		a.edgeV = w.Malloc(th, uint64(a.e*8))
		a.deg = w.Calloc(th, uint64(a.v*8))
		a.offset = w.Calloc(th, uint64((a.v+1)*8))
		a.fill = w.Calloc(th, uint64(a.v*8))
		a.adj = w.Calloc(th, uint64(a.e*8))
		rng := sim.NewRand(w.Seed)
		for i := 0; i < a.e; i++ {
			// Power-law-ish skew: a quarter of the edges hit a small
			// hub set, the SSCA2 clique flavour.
			u := rng.Intn(a.v)
			if rng.Intn(4) == 0 {
				u = rng.Intn(a.v / 16)
			}
			th.Store(w64(a.edgeU, i), uint64(u))
			th.Store(w64(a.edgeV, i), uint64(rng.Intn(a.v)))
		}
	})
}

// Parallel implements stamp.App: phase A counts degrees under
// transactions, a prefix sum runs on thread 0, phase B claims slots
// transactionally and writes targets into privatized slots.
func (a *SSCA2) Parallel(w *stamp.World, th *vtime.Thread) {
	defer w.Region(th, "ssca2/parallel")()
	lo := th.ID() * a.e / w.Threads
	hi := (th.ID() + 1) * a.e / w.Threads

	for i := lo; i < hi; i++ {
		u := int(th.Load(w64(a.edgeU, i)))
		w.Atomic(th, func(tx *stm.Tx) {
			tx.Store(w64(a.deg, u), tx.Load(w64(a.deg, u))+1)
		})
	}
	a.barrier.Wait(th)
	if th.ID() == 0 {
		var sum uint64
		for vtx := 0; vtx < a.v; vtx++ {
			th.Store(w64(a.offset, vtx), sum)
			sum += th.Load(w64(a.deg, vtx))
		}
		th.Store(w64(a.offset, a.v), sum)
	}
	a.barrier.Wait(th)
	for i := lo; i < hi; i++ {
		u := int(th.Load(w64(a.edgeU, i)))
		v := th.Load(w64(a.edgeV, i))
		var slot uint64
		w.Atomic(th, func(tx *stm.Tx) {
			slot = tx.Load(w64(a.fill, u))
			tx.Store(w64(a.fill, u), slot+1)
		})
		// The claimed slot is private now: a plain store suffices, as
		// in the original kernel.
		th.Store(w64(a.adj, int(th.Load(w64(a.offset, u))+slot)), v+1)
	}
}

// Validate implements stamp.App.
func (a *SSCA2) Validate(w *stamp.World) error {
	th := vtime.Solo(w.Space, 0, nil)
	var total uint64
	for vtx := 0; vtx < a.v; vtx++ {
		d := th.Load(w64(a.deg, vtx))
		f := th.Load(w64(a.fill, vtx))
		if d != f {
			return fmt.Errorf("vertex %d: degree %d but %d slots filled", vtx, d, f)
		}
		total += d
	}
	if total != uint64(a.e) {
		return fmt.Errorf("total degree %d, want %d", total, a.e)
	}
	if off := th.Load(w64(a.offset, a.v)); off != uint64(a.e) {
		return fmt.Errorf("offset sum %d, want %d", off, a.e)
	}
	for i := 0; i < a.e; i++ {
		if th.Load(w64(a.adj, i)) == 0 {
			return fmt.Errorf("adjacency slot %d never filled", i)
		}
	}
	return nil
}
