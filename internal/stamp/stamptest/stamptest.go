// Package stamptest provides the shared test helper that runs a STAMP
// application across allocators and thread counts and checks its
// validation, determinism and transactional activity.
package stamptest

import (
	"testing"

	_ "repro/internal/alloc/glibc"
	_ "repro/internal/alloc/hoard"
	_ "repro/internal/alloc/tbb"
	_ "repro/internal/alloc/tcmalloc"

	"repro/internal/stamp"
)

// Check runs app with every allocator at 1 and 4 threads (Quick scale)
// and asserts validation passes and results are sane. wantTx requires
// at least one committed transaction.
func Check(t *testing.T, app string, wantTx bool) {
	t.Helper()
	for _, name := range []string{"glibc", "hoard", "tbb", "tcmalloc"} {
		for _, threads := range []int{1, 4} {
			res, err := stamp.Run(stamp.Config{App: app, Allocator: name, Threads: threads})
			if err != nil {
				t.Fatalf("%s/%s/%d: %v", app, name, threads, err)
			}
			if res.Cycles == 0 {
				t.Errorf("%s/%s/%d: zero parallel time", app, name, threads)
			}
			if wantTx && res.Tx.Commits == 0 {
				t.Errorf("%s/%s/%d: no transactions committed", app, name, threads)
			}
		}
	}
}

// CheckDeterministic runs app twice with identical configs and compares
// virtual time and abort counts.
func CheckDeterministic(t *testing.T, app string) {
	t.Helper()
	cfg := stamp.Config{App: app, Allocator: "tcmalloc", Threads: 4}
	a, err := stamp.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := stamp.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Tx.Aborts != b.Tx.Aborts {
		t.Errorf("%s nondeterministic: cycles %d/%d aborts %d/%d",
			app, a.Cycles, b.Cycles, a.Tx.Aborts, b.Tx.Aborts)
	}
}
