// Package stamp hosts Go ports of the STAMP benchmark suite (Minh et
// al., IISWC 2008) running over the repository's STM, allocator models
// and virtual-time machine. Each application keeps the transactional
// structure of the original — what it allocates and frees inside
// transactions versus in the parallel region, the shape of its read and
// write sets, and its phase structure — which is what the paper's
// evaluation (§6) exercises.
//
// Applications register themselves by name; the harness runs them via
// Run with a chosen allocator, thread count and scale.
package stamp

import (
	"fmt"
	"sort"

	"repro/internal/alloc"
	"repro/internal/cachesim"
	"repro/internal/conflict"
	"repro/internal/fault"
	"repro/internal/heapscope"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/prof"
	"repro/internal/race"
	"repro/internal/stm"
	"repro/internal/vtime"
)

// Scale selects a workload size. Quick keeps unit tests fast; Ref
// approximates the paper's "large data set" shapes scaled to this
// simulator.
type Scale int

// Workload scales.
const (
	Quick Scale = iota
	Ref
)

// Variant selects between an application's recommended configurations
// where STAMP defines two (kmeans and vacation); the paper evaluates
// the high-contention one.
type Variant int

// Application variants.
const (
	HighContention Variant = iota // the paper's choice (default)
	LowContention
)

// Config parameterizes one application run.
type Config struct {
	App       string
	Allocator string
	Threads   int
	Scale     Scale
	Variant   Variant
	Shift     uint
	// CacheTx is the deprecated boolean spelling of Pool == PoolCache;
	// it is kept for old callers and conflicts with a non-none Pool.
	CacheTx  bool
	Pool     stm.Pooling // tx-object recycling discipline (none/cache/pool/batch)
	Seed     uint64
	Profile  bool          // collect the Table 5 allocation profile
	Obs      *obs.Recorder // event/metric sink; nil disables
	CM       stm.CM        // contention manager (default CMSuicide)
	RetryCap uint64        // irrevocable-fallback threshold (0 = default)
	Fault    string        // fault-plan spec (internal/fault grammar); "" disables
	Deadline uint64        // virtual-cycle watchdog bound per phase; 0 disables
	Pmem     bool          // durable heap: redo-logged commits, priced flush/fence
	Crash    string        // crash-injection clauses (fault grammar); implies Pmem
	// Plan, when non-nil, is a pre-parsed (and freshly cloned) fault
	// plan that replaces parsing Fault/Crash — harness cells parse the
	// spec once and hand each run its own clone. Excluded from spec
	// hashing: the strings above already identify the plan.
	Plan *fault.Plan `json:"-"`
	// Prof, when non-nil, attributes every virtual cycle of the run to
	// (thread, region-stack, allocator) buckets. Excluded from spec
	// hashing — profiling never changes what a cell computes.
	Prof *prof.Profiler `json:"-"`
	// Heap, when non-nil, collects allocator-state telemetry on a
	// virtual-cycle cadence. Excluded from spec hashing — snapshots are
	// pure observers and never change what a cell computes.
	Heap *heapscope.Collector `json:"-"`
	// Race attaches the happens-before race checker (internal/race) to
	// the run. Excluded from spec hashing — the checker is a pure
	// observer; a checked run is byte-identical to an unchecked one.
	Race bool `json:"-"`
	// Conflict attaches the abort-forensics observatory
	// (internal/conflict) to the run. Excluded from spec hashing — the
	// observatory is a pure observer; an observed run is byte-identical
	// to a plain one.
	Conflict bool `json:"-"`
}

// Result reports one run.
type Result struct {
	Config     Config
	InitCycles uint64 // sequential-phase virtual time
	Cycles     uint64 // parallel-phase virtual time (the reported time)
	Seconds    float64
	Tx         stm.TxStats
	Alloc      alloc.Stats
	Cache      cachesim.CoreStats
	L1Miss     float64
	Profile    *Profile
	Status     string // obs.StatusOK / StatusDegraded / StatusFailed
	Failure    string // watchdog / validation / panic detail when not ok
	// Recovery carries the durable-memory verdict: flush/fence/log
	// traffic for every Pmem run, plus the crash point and invariant
	// sweep when a crash clause fired. Nil when Pmem is off.
	Recovery *obs.RecoveryInfo
	// Pool carries the tx-pooling discipline and its traffic counters.
	// Nil when the run used the PoolNone baseline.
	Pool *obs.PoolInfo
	// Race carries the happens-before checker's verdict and coverage
	// counters. Nil when the checker was not attached.
	Race *obs.RaceInfo
	// Conflict carries the abort-forensics summary. Nil when the
	// observatory was not attached.
	Conflict *obs.ConflictInfo
}

// World is the environment an application runs in.
type World struct {
	Space     *mem.Space
	Engine    *vtime.Engine
	STM       *stm.STM
	Allocator alloc.Allocator // profiling wrapper when Profile is set
	Threads   int
	Scale     Scale
	Variant   Variant
	Seed      uint64
	Prof      *prof.Profiler // cycle-attribution profiler; nil disables
	prof      *profAlloc
}

// Region opens a named profiler region on th and returns its closer,
// for use as `defer w.Region(th, "app/phase")()`. A no-op closure when
// profiling is off, so applications can call it unconditionally.
func (w *World) Region(th *vtime.Thread, name string) func() {
	p := w.Prof
	if p == nil {
		return func() {}
	}
	p.Begin(th, name)
	return func() { p.End(th) }
}

// mallocRetries and mallocRetryWait bound how long a non-transactional
// allocation waits out a transient failure before declaring the system
// out of memory.
const (
	mallocRetries   = 8
	mallocRetryWait = 4096
)

// Malloc allocates outside a transaction. The allocator's failure path
// (injected OOM or an exhausted quota) is retried a bounded number of
// times in virtual time — transient faults clear, persistent ones panic
// wrapping mem.ErrNoMemory, which Run captures into a failed-status
// result instead of tearing the process down.
func (w *World) Malloc(th *vtime.Thread, size uint64) mem.Addr {
	if a := w.Allocator.Malloc(th, size); a != 0 {
		return a
	}
	for i := 0; i < mallocRetries; i++ {
		th.Tick(mallocRetryWait)
		if a := w.Allocator.Malloc(th, size); a != 0 {
			return a
		}
	}
	panic(fmt.Errorf("stamp: failed to allocate %d bytes: %w", size, mem.ErrNoMemory))
}

// Calloc allocates a zero-filled block, as the C applications do via
// calloc: allocators hand out recycled blocks with free-list links in
// their first words, so counters and tables must be cleared explicitly.
func (w *World) Calloc(th *vtime.Thread, size uint64) mem.Addr {
	a := w.Malloc(th, size)
	for off := uint64(0); off < size; off += 8 {
		th.Store(a+mem.Addr(off), 0)
	}
	return a
}

// Seq runs fn on thread 0 with the others parked (the sequential
// phase).
func (w *World) Seq(fn func(th *vtime.Thread)) {
	w.Engine.Run(func(th *vtime.Thread) {
		if th.ID() == 0 {
			fn(th)
		}
	})
}

// Par runs fn on every thread (the parallel phase).
func (w *World) Par(fn func(th *vtime.Thread)) {
	w.Engine.Run(fn)
}

// Atomic is shorthand for the world's STM.
func (w *World) Atomic(th *vtime.Thread, fn func(tx *stm.Tx)) {
	w.STM.Atomic(th, fn)
}

// App is one STAMP application.
type App interface {
	Name() string
	// Setup performs the sequential initialization phase.
	Setup(w *World)
	// Parallel runs the transactional parallel phase; it is invoked
	// once per thread, inside the engine.
	Parallel(w *World, th *vtime.Thread)
	// Validate checks the final state and returns an error on any
	// inconsistency (run after the parallel phase, single-threaded).
	Validate(w *World) error
}

// Factory builds a fresh App instance.
type Factory func() App

var registry = map[string]Factory{}

// Register installs an application factory.
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("stamp: duplicate app %q", name))
	}
	registry[name] = f
}

// Names returns registered application names in the paper's order.
func Names() []string {
	order := []string{"bayes", "genome", "intruder", "kmeans", "labyrinth", "ssca2", "vacation", "yada"}
	var out []string
	for _, n := range order {
		if _, ok := registry[n]; ok {
			out = append(out, n)
		}
	}
	var rest []string
	for n := range registry {
		seen := false
		for _, o := range out {
			if o == n {
				seen = true
			}
		}
		if !seen {
			rest = append(rest, n)
		}
	}
	sort.Strings(rest)
	return append(out, rest...)
}

// New instantiates the named application.
func New(name string) (App, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("stamp: unknown app %q (known: %v)", name, Names())
	}
	return f(), nil
}

// Run executes one full application run: setup (sequential), parallel
// phase (timed), validation. Configuration errors come back as errors;
// once a run starts it always produces a Result — wound down by the
// watchdog or spoiled by injected faults means Status degraded, a
// captured panic means Status failed — so callers can emit a
// machine-readable run record whatever happened.
func Run(cfg Config) (res Result, err error) {
	app, err := New(cfg.App)
	if err != nil {
		return Result{}, err
	}
	if cfg.Threads == 0 {
		cfg.Threads = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x57a3b
	}
	space := mem.NewSpace()
	base, err := alloc.New(cfg.Allocator, space, cfg.Threads)
	if err != nil {
		return Result{}, err
	}
	plan := cfg.Plan
	if plan == nil {
		if spec := fault.Join(cfg.Fault, cfg.Crash); spec != "" {
			plan, err = fault.Parse(spec, cfg.Seed)
			if err != nil {
				return Result{}, err
			}
		}
	}
	if plan != nil {
		plan.SetObserver(cfg.Obs)
		plan.ApplyQuota(space)
		alloc.Inject(base, plan)
	}
	var durable *pmem.Pmem
	if cfg.Pmem || cfg.Crash != "" || (plan != nil && plan.HasCrash()) {
		durable = pmem.Attach(space, plan)
		alloc.Journal(base, durable)
	}
	defer func() {
		if r := recover(); r != nil {
			res.Config = cfg
			res.Status = obs.StatusFailed
			res.Failure = fmt.Sprint(r)
			err = nil
		}
	}()
	cache := cachesim.New(cachesim.DefaultCores)
	engineCfg := vtime.Config{
		Cache: cache, Obs: cfg.Obs, Deadline: cfg.Deadline,
	}
	if cfg.Prof != nil {
		engineCfg.Prof = cfg.Prof
	}
	if cfg.Heap != nil {
		cfg.Heap.Attach(base, space)
		cfg.Heap.SetRecorder(cfg.Obs)
		engineCfg.Heap = cfg.Heap
	}
	var checker *race.Checker
	if cfg.Race {
		checker = race.New(cfg.Threads)
		engineCfg.Race = checker
		space.SetRaceWatcher(checker)
	}
	var observatory *conflict.Observatory
	if cfg.Conflict {
		observatory = conflict.New(cfg.Threads, cfg.Shift)
		space.SetConflictWatcher(observatory)
	}
	engine := vtime.NewEngine(space, cfg.Threads, engineCfg)
	alloc.Observe(base, cfg.Obs)
	alloc.Profile(base, cfg.Prof)
	cfg.Obs.BeginPhase(fmt.Sprintf("stamp/%s/%s/t%d", cfg.App, cfg.Allocator, cfg.Threads))

	w := &World{
		Space:     space,
		Engine:    engine,
		Threads:   cfg.Threads,
		Scale:     cfg.Scale,
		Variant:   cfg.Variant,
		Seed:      cfg.Seed,
		Prof:      cfg.Prof,
		Allocator: base,
	}
	if cfg.Profile {
		w.prof = newProfAlloc(base)
		w.Allocator = w.prof
	}
	stmCfg := stm.Config{
		Shift:          cfg.Shift,
		Allocator:      w.Allocator,
		CacheTxObjects: cfg.CacheTx,
		Pooling:        cfg.Pool,
		Obs:            cfg.Obs,
		CM:             cfg.CM,
		RetryCap:       cfg.RetryCap,
		Prof:           cfg.Prof,
	}
	if plan != nil {
		stmCfg.Fault = plan
	}
	if durable != nil {
		durable.SetStopper(engine)
		stmCfg.Durable = durable
	}
	if checker != nil {
		stmCfg.Race = checker
	}
	if observatory != nil {
		stmCfg.Conflict = observatory
	}
	w.STM = stm.New(space, stmCfg)
	if w.prof != nil {
		w.prof.stm = w.STM
	}

	app.Setup(w)
	initCycles := engine.MaxClock()
	if engine.DeadlineExceeded() {
		return Result{
			Config:  cfg,
			Status:  obs.StatusDegraded,
			Failure: fmt.Sprintf("virtual-time deadline %d exceeded during setup", cfg.Deadline),
		}, nil
	}

	// Durable baseline: everything setup built persists before the
	// timed phase, so a crash can only tear parallel-phase state.
	if durable != nil && !durable.Crashed() {
		func() {
			defer swallowStop()
			durable.Checkpoint(vtime.Solo(space, 0, nil))
		}()
	}

	// Timed parallel phase.
	if cfg.Heap != nil {
		cfg.Heap.Phase("run", initCycles)
	}
	engine.ResetClocks()
	txBase := w.STM.Stats()
	cacheBase := cache.TotalStats()
	if w.prof != nil {
		w.prof.parallel = true
	}
	if !engine.Stopped() {
		engine.Run(func(th *vtime.Thread) { app.Parallel(w, th) })
	}
	if w.prof != nil {
		w.prof.parallel = false
	}
	cycles := engine.MaxClock()
	if cfg.Heap != nil {
		cfg.Heap.Finish(cycles)
	}
	txAfter := w.STM.Stats()

	status, failure := obs.StatusOK, ""
	if engine.DeadlineExceeded() {
		status = obs.StatusDegraded
		failure = fmt.Sprintf("virtual-time deadline %d exceeded in the parallel phase", cfg.Deadline)
	} else if engine.Stopped() {
		// A crash clause halted the run: the application's final state is
		// torn by design, so validation is recovery's job, not the app's.
	} else if err := app.Validate(w); err != nil {
		if plan == nil {
			return Result{}, fmt.Errorf("stamp: %s validation failed: %w", cfg.App, err)
		}
		// Under an active fault plan a validation failure is an expected
		// degraded outcome (e.g. work dropped by an abort storm), not a
		// harness error: record it and keep the artifacts flowing.
		status = obs.StatusDegraded
		failure = fmt.Sprintf("validation failed under fault plan %q: %v", cfg.Fault, err)
	}

	total := cache.TotalStats()
	phase := cachesim.CoreStats{
		Accesses:   total.Accesses - cacheBase.Accesses,
		L1Misses:   total.L1Misses - cacheBase.L1Misses,
		L2Misses:   total.L2Misses - cacheBase.L2Misses,
		CohMisses:  total.CohMisses - cacheBase.CohMisses,
		FalseShare: total.FalseShare - cacheBase.FalseShare,
		InvalsSent: total.InvalsSent - cacheBase.InvalsSent,
	}
	res = Result{
		Config:     cfg,
		InitCycles: initCycles,
		Cycles:     cycles,
		Seconds:    vtime.Seconds(cycles),
		Tx:         txAfter.Sub(txBase),
		Alloc:      base.Stats(),
		Cache:      phase,
		L1Miss:     phase.L1MissRatio(),
		Status:     status,
		Failure:    failure,
	}
	if w.prof != nil {
		res.Profile = w.prof.profile()
	}
	if d := w.STM.Pooling(); d != stm.PoolNone {
		ps := w.STM.PoolStats()
		res.Pool = &obs.PoolInfo{
			Discipline: d.String(),
			Hits:       ps.Hits, Misses: ps.Misses, Returns: ps.Returns,
			Refills: ps.Refills, Slabs: ps.Slabs, SlabBytes: ps.SlabBytes,
			Held: ps.Held,
		}
	}
	if durable != nil {
		if durable.Crashed() {
			info := durable.Recover(vtime.Solo(space, 0, nil), base)
			res.Recovery = info
			res.Status = info.Verdict
			if info.Verdict != obs.StatusOK {
				res.Failure = fmt.Sprintf("crash recovery %s at cycle %d phase %s (lost=%d resurrected=%d chain_breaks=%d shadow_bad=%d)",
					info.Verdict, info.CrashCycle, info.CrashPhase,
					info.LostWrites, info.Resurrected, info.ChainBreaks, info.ShadowBad)
			}
		} else {
			res.Recovery = durable.Info()
		}
	}
	if checker != nil {
		res.Race = checker.Info()
		if res.Race.Findings > 0 && res.Status == obs.StatusOK {
			res.Status = obs.StatusFailed
			res.Failure = "race: " + res.Race.First
		}
	}
	if observatory != nil {
		res.Conflict = observatory.Info()
	}
	return res, nil
}

// swallowStop absorbs the simulated-crash panic on a solo (engineless)
// thread, mirroring what the engine does for its workers.
func swallowStop() {
	if r := recover(); r != nil {
		if _, ok := r.(vtime.StopSignal); !ok {
			panic(r)
		}
	}
}
