// Package stamp hosts Go ports of the STAMP benchmark suite (Minh et
// al., IISWC 2008) running over the repository's STM, allocator models
// and virtual-time machine. Each application keeps the transactional
// structure of the original — what it allocates and frees inside
// transactions versus in the parallel region, the shape of its read and
// write sets, and its phase structure — which is what the paper's
// evaluation (§6) exercises.
//
// Applications register themselves by name; the harness runs them via
// Run with a chosen allocator, thread count and scale.
package stamp

import (
	"fmt"
	"sort"

	"repro/internal/alloc"
	"repro/internal/cachesim"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/stm"
	"repro/internal/vtime"
)

// Scale selects a workload size. Quick keeps unit tests fast; Ref
// approximates the paper's "large data set" shapes scaled to this
// simulator.
type Scale int

// Workload scales.
const (
	Quick Scale = iota
	Ref
)

// Variant selects between an application's recommended configurations
// where STAMP defines two (kmeans and vacation); the paper evaluates
// the high-contention one.
type Variant int

// Application variants.
const (
	HighContention Variant = iota // the paper's choice (default)
	LowContention
)

// Config parameterizes one application run.
type Config struct {
	App       string
	Allocator string
	Threads   int
	Scale     Scale
	Variant   Variant
	Shift     uint
	CacheTx   bool
	Seed      uint64
	Profile   bool          // collect the Table 5 allocation profile
	Obs       *obs.Recorder // event/metric sink; nil disables
}

// Result reports one run.
type Result struct {
	Config     Config
	InitCycles uint64 // sequential-phase virtual time
	Cycles     uint64 // parallel-phase virtual time (the reported time)
	Seconds    float64
	Tx         stm.TxStats
	Alloc      alloc.Stats
	Cache      cachesim.CoreStats
	L1Miss     float64
	Profile    *Profile
}

// World is the environment an application runs in.
type World struct {
	Space     *mem.Space
	Engine    *vtime.Engine
	STM       *stm.STM
	Allocator alloc.Allocator // profiling wrapper when Profile is set
	Threads   int
	Scale     Scale
	Variant   Variant
	Seed      uint64
	prof      *profAlloc
}

// Calloc allocates a zero-filled block, as the C applications do via
// calloc: allocators hand out recycled blocks with free-list links in
// their first words, so counters and tables must be cleared explicitly.
func (w *World) Calloc(th *vtime.Thread, size uint64) mem.Addr {
	a := w.Allocator.Malloc(th, size)
	for off := uint64(0); off < size; off += 8 {
		th.Store(a+mem.Addr(off), 0)
	}
	return a
}

// Seq runs fn on thread 0 with the others parked (the sequential
// phase).
func (w *World) Seq(fn func(th *vtime.Thread)) {
	w.Engine.Run(func(th *vtime.Thread) {
		if th.ID() == 0 {
			fn(th)
		}
	})
}

// Par runs fn on every thread (the parallel phase).
func (w *World) Par(fn func(th *vtime.Thread)) {
	w.Engine.Run(fn)
}

// Atomic is shorthand for the world's STM.
func (w *World) Atomic(th *vtime.Thread, fn func(tx *stm.Tx)) {
	w.STM.Atomic(th, fn)
}

// App is one STAMP application.
type App interface {
	Name() string
	// Setup performs the sequential initialization phase.
	Setup(w *World)
	// Parallel runs the transactional parallel phase; it is invoked
	// once per thread, inside the engine.
	Parallel(w *World, th *vtime.Thread)
	// Validate checks the final state and returns an error on any
	// inconsistency (run after the parallel phase, single-threaded).
	Validate(w *World) error
}

// Factory builds a fresh App instance.
type Factory func() App

var registry = map[string]Factory{}

// Register installs an application factory.
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("stamp: duplicate app %q", name))
	}
	registry[name] = f
}

// Names returns registered application names in the paper's order.
func Names() []string {
	order := []string{"bayes", "genome", "intruder", "kmeans", "labyrinth", "ssca2", "vacation", "yada"}
	var out []string
	for _, n := range order {
		if _, ok := registry[n]; ok {
			out = append(out, n)
		}
	}
	var rest []string
	for n := range registry {
		seen := false
		for _, o := range out {
			if o == n {
				seen = true
			}
		}
		if !seen {
			rest = append(rest, n)
		}
	}
	sort.Strings(rest)
	return append(out, rest...)
}

// New instantiates the named application.
func New(name string) (App, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("stamp: unknown app %q (known: %v)", name, Names())
	}
	return f(), nil
}

// Run executes one full application run: setup (sequential), parallel
// phase (timed), validation.
func Run(cfg Config) (Result, error) {
	app, err := New(cfg.App)
	if err != nil {
		return Result{}, err
	}
	if cfg.Threads == 0 {
		cfg.Threads = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x57a3b
	}
	space := mem.NewSpace()
	base, err := alloc.New(cfg.Allocator, space, cfg.Threads)
	if err != nil {
		return Result{}, err
	}
	cache := cachesim.New(cachesim.DefaultCores)
	engine := vtime.NewEngine(space, cfg.Threads, vtime.Config{Cache: cache, Obs: cfg.Obs})
	alloc.Observe(base, cfg.Obs)
	cfg.Obs.BeginPhase(fmt.Sprintf("stamp/%s/%s/t%d", cfg.App, cfg.Allocator, cfg.Threads))

	w := &World{
		Space:     space,
		Engine:    engine,
		Threads:   cfg.Threads,
		Scale:     cfg.Scale,
		Variant:   cfg.Variant,
		Seed:      cfg.Seed,
		Allocator: base,
	}
	if cfg.Profile {
		w.prof = newProfAlloc(base)
		w.Allocator = w.prof
	}
	w.STM = stm.New(space, stm.Config{
		Shift:          cfg.Shift,
		Allocator:      w.Allocator,
		CacheTxObjects: cfg.CacheTx,
		Obs:            cfg.Obs,
	})
	if w.prof != nil {
		w.prof.stm = w.STM
	}

	app.Setup(w)
	initCycles := engine.MaxClock()

	// Timed parallel phase.
	engine.ResetClocks()
	txBase := w.STM.Stats()
	cacheBase := cache.TotalStats()
	if w.prof != nil {
		w.prof.parallel = true
	}
	engine.Run(func(th *vtime.Thread) { app.Parallel(w, th) })
	if w.prof != nil {
		w.prof.parallel = false
	}
	cycles := engine.MaxClock()
	txAfter := w.STM.Stats()

	if err := app.Validate(w); err != nil {
		return Result{}, fmt.Errorf("stamp: %s validation failed: %w", cfg.App, err)
	}

	total := cache.TotalStats()
	phase := cachesim.CoreStats{
		Accesses:   total.Accesses - cacheBase.Accesses,
		L1Misses:   total.L1Misses - cacheBase.L1Misses,
		L2Misses:   total.L2Misses - cacheBase.L2Misses,
		CohMisses:  total.CohMisses - cacheBase.CohMisses,
		FalseShare: total.FalseShare - cacheBase.FalseShare,
		InvalsSent: total.InvalsSent - cacheBase.InvalsSent,
	}
	res := Result{
		Config:     cfg,
		InitCycles: initCycles,
		Cycles:     cycles,
		Seconds:    vtime.Seconds(cycles),
		Tx:         txAfter.Sub(txBase),
		Alloc:      base.Stats(),
		Cache:      phase,
		L1Miss:     phase.L1MissRatio(),
	}
	if w.prof != nil {
		res.Profile = w.prof.profile()
	}
	return res, nil
}
