package vacation_test

import (
	"testing"

	"repro/internal/stamp"
	"repro/internal/stamp/stamptest"
	_ "repro/internal/stamp/vacation"
)

func TestVacation(t *testing.T)              { stamptest.Check(t, "vacation", true) }
func TestVacationDeterministic(t *testing.T) { stamptest.CheckDeterministic(t, "vacation") }

// Table 5 shape: vacation allocates inside transactions far more than
// it frees (reservations accumulate).
func TestVacationTxAllocExceedsFree(t *testing.T) {
	res, err := stamp.Run(stamp.Config{App: "vacation", Allocator: "tcmalloc", Threads: 1, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile
	if p.Mallocs[stamp.RegionTx] == 0 {
		t.Fatal("no tx allocations")
	}
	if p.Mallocs[stamp.RegionTx] <= 2*p.Frees[stamp.RegionTx] {
		t.Errorf("tx mallocs %d not >> tx frees %d", p.Mallocs[stamp.RegionTx], p.Frees[stamp.RegionTx])
	}
}
