// Package vacation ports STAMP's vacation: an in-memory travel
// reservation database. Three resource tables (cars, flights, rooms)
// and a customer table are red-black trees; client threads issue
// transactions that make reservations (the dominant action), delete
// customers, and add/remove resources. The configuration mirrors the
// paper's choice of the *high-contention* variant (-n4 -q60 -u90
// flavour): each reservation queries several records and updates
// shared ones.
//
// Allocation profile (paper Table 5): transactions allocate far more
// than they free — reservation list nodes (16/32 B) and tree nodes
// (48 B) accumulate — reproducing vacation's alloc>free signature.
package vacation

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stamp"
	"repro/internal/stm"
	"repro/internal/txstruct"
	"repro/internal/vtime"
)

func init() {
	stamp.Register("vacation", func() stamp.App { return &Vacation{} })
}

// Resource record layout: total, used, price (+pad) = 32 bytes.
const (
	resTotal = 0
	resUsed  = 8
	resPrice = 16
	resSize  = 32
)

// Customer reservation list node: {resource key, next} 16 bytes, plus a
// customer record {id, listHead} 16 bytes.
const (
	custID   = 0
	custHead = 8
	custSize = 16

	rvKey  = 0
	rvNext = 8
	rvSize = 16
)

// Resource table kinds.
const (
	tblCar = iota
	tblFlight
	tblRoom
	tblCount
)

// Vacation is the application state.
type Vacation struct {
	relations    int // ids per resource table
	opsPerThread int
	queriesPerOp int
	reservePct   int // share of actions that are reservations
	bookPct      int // share of reservation actions that actually book
	queryRange   int // id range a transaction's queries touch

	tables    [tblCount]*txstruct.RBTree
	customers *txstruct.RBTree
}

// Name implements stamp.App.
func (a *Vacation) Name() string { return "vacation" }

func (a *Vacation) params(s stamp.Scale, v stamp.Variant) {
	switch s {
	case stamp.Ref:
		a.relations, a.opsPerThread, a.queriesPerOp = 16384, 600, 4
	default:
		a.relations, a.opsPerThread, a.queriesPerOp = 512, 150, 4
	}
	// High contention (the paper's choice, STAMP's -q60-ish): queries
	// concentrate on a slice of the tables and most actions mutate.
	// Low contention (-q90 -u98): queries spread across nearly the whole
	// table and reservations dominate even more (reads of disjoint
	// records rarely collide).
	if v == stamp.LowContention {
		// Mostly read-only queries over nearly the whole table.
		a.reservePct = 98
		a.bookPct = 30
		a.queryRange = a.relations * 9 / 10
	} else {
		a.reservePct = 90
		a.bookPct = 100
		a.queryRange = a.relations * 6 / 10
	}
}

// Setup implements stamp.App: builds the resource tables.
func (a *Vacation) Setup(w *stamp.World) {
	a.params(w.Scale, w.Variant)
	w.Seq(func(th *vtime.Thread) {
		defer w.Region(th, "vacation/setup")()
		rng := sim.NewRand(w.Seed)
		for t := 0; t < tblCount; t++ {
			w.Atomic(th, func(tx *stm.Tx) { a.tables[t] = txstruct.NewRBTree(tx) })
			for id := 0; id < a.relations; id++ {
				total := uint64(100 + rng.Intn(300))
				price := uint64(50 + rng.Intn(500))
				w.Atomic(th, func(tx *stm.Tx) {
					rec := tx.Malloc(resSize)
					tx.Store(rec+resTotal, total)
					tx.Store(rec+resUsed, 0)
					tx.Store(rec+resPrice, price)
					a.tables[t].Insert(tx, int64(id), uint64(rec))
				})
			}
		}
		w.Atomic(th, func(tx *stm.Tx) { a.customers = txstruct.NewRBTree(tx) })
	})
}

// makeReservation queries q random resources and reserves the
// highest-priced available one of each queried type, creating the
// customer on demand — STAMP's MAKE_RESERVATION action.
func (a *Vacation) makeReservation(w *stamp.World, th *vtime.Thread, rng *sim.Rand) {
	custKey := int64(rng.Intn(a.relations * 4))
	book := rng.Intn(100) < a.bookPct
	type pick struct {
		table int
		id    int64
	}
	var picks []pick
	for q := 0; q < a.queriesPerOp; q++ {
		picks = append(picks, pick{table: rng.Intn(tblCount), id: int64(rng.Intn(a.queryRange))})
	}
	w.Atomic(th, func(tx *stm.Tx) {
		var best [tblCount]struct {
			rec   mem.Addr
			key   int64
			price uint64
			found bool
		}
		for _, p := range picks {
			recW, ok := a.tables[p.table].Get(tx, p.id)
			if !ok {
				continue
			}
			rec := mem.Addr(recW)
			total := tx.Load(rec + resTotal)
			used := tx.Load(rec + resUsed)
			price := tx.Load(rec + resPrice)
			if used < total && (!best[p.table].found || price > best[p.table].price) {
				best[p.table] = struct {
					rec   mem.Addr
					key   int64
					price uint64
					found bool
				}{rec, p.id, price, true}
			}
		}
		reserved := false
		for t := 0; t < tblCount; t++ {
			if !best[t].found || !book {
				continue
			}
			if !reserved {
				// Create the customer lazily.
				var cust mem.Addr
				if cw, ok := a.customers.Get(tx, custKey); ok {
					cust = mem.Addr(cw)
				} else {
					cust = tx.Malloc(custSize)
					tx.Store(cust+custID, uint64(custKey))
					tx.Store(cust+custHead, 0)
					a.customers.Insert(tx, custKey, uint64(cust))
				}
				// Reserve: bump used, prepend a reservation node.
				rec := best[t].rec
				tx.Store(rec+resUsed, tx.Load(rec+resUsed)+1)
				n := tx.Malloc(rvSize)
				tx.Store(n+rvKey, uint64(t)<<32|uint64(best[t].key))
				tx.Store(n+rvNext, tx.Load(cust+custHead))
				tx.Store(cust+custHead, uint64(n))
				reserved = true
			}
		}
	})
}

// deleteCustomer removes a random customer, releasing all its
// reservations — STAMP's DELETE_CUSTOMER action (frees inside the
// transaction).
func (a *Vacation) deleteCustomer(w *stamp.World, th *vtime.Thread, rng *sim.Rand) {
	custKey := int64(rng.Intn(a.relations * 4))
	w.Atomic(th, func(tx *stm.Tx) {
		cw, ok := a.customers.Get(tx, custKey)
		if !ok {
			return
		}
		cust := mem.Addr(cw)
		cur := mem.Addr(tx.Load(cust + custHead))
		for cur != 0 {
			packed := tx.Load(cur + rvKey)
			tbl := int(packed >> 32)
			id := int64(packed & 0xffffffff)
			if recW, ok := a.tables[tbl].Get(tx, id); ok {
				rec := mem.Addr(recW)
				tx.Store(rec+resUsed, tx.Load(rec+resUsed)-1)
			}
			next := mem.Addr(tx.Load(cur + rvNext))
			tx.Free(cur, rvSize)
			cur = next
		}
		a.customers.Remove(tx, custKey)
		tx.Free(cust, custSize)
	})
}

// updateTables adds or deletes resources — STAMP's UPDATE_TABLES
// action.
func (a *Vacation) updateTables(w *stamp.World, th *vtime.Thread, rng *sim.Rand) {
	t := rng.Intn(tblCount)
	id := int64(a.relations + rng.Intn(a.relations)) // extension id range
	add := rng.Intn(2) == 0
	price := uint64(50 + rng.Intn(500))
	w.Atomic(th, func(tx *stm.Tx) {
		if add {
			if _, ok := a.tables[t].Get(tx, id); ok {
				return
			}
			rec := tx.Malloc(resSize)
			tx.Store(rec+resTotal, 100)
			tx.Store(rec+resUsed, 0)
			tx.Store(rec+resPrice, price)
			a.tables[t].Insert(tx, id, uint64(rec))
		} else {
			recW, ok := a.tables[t].Get(tx, id)
			if !ok {
				return
			}
			rec := mem.Addr(recW)
			if tx.Load(rec+resUsed) != 0 {
				return // cannot delete a resource in use
			}
			a.tables[t].Remove(tx, id)
			tx.Free(rec, resSize)
		}
	})
}

// Parallel implements stamp.App: the client loop. The action mix
// follows the high-contention configuration: 90% reservations, 5%
// deletions, 5% table updates.
func (a *Vacation) Parallel(w *stamp.World, th *vtime.Thread) {
	defer w.Region(th, "vacation/parallel")()
	rng := sim.NewRand(w.Seed*7919 + uint64(th.ID()) + 1)
	for i := 0; i < a.opsPerThread; i++ {
		switch r := rng.Intn(100); {
		case r < a.reservePct:
			a.makeReservation(w, th, rng)
		case r < a.reservePct+(100-a.reservePct)/2:
			a.deleteCustomer(w, th, rng)
		default:
			a.updateTables(w, th, rng)
		}
	}
}

// Validate implements stamp.App: every table's used counts must equal
// the reservations referencing it, and trees must be valid.
func (a *Vacation) Validate(w *stamp.World) error {
	th := vtime.Solo(w.Space, 0, nil)
	var err error
	w.STM.Atomic(th, func(tx *stm.Tx) {
		err = nil
		for t := 0; t < tblCount; t++ {
			if _, p := a.tables[t].CheckInvariants(tx); p != "" {
				err = fmt.Errorf("table %d: %s", t, p)
				return
			}
		}
		if _, p := a.customers.CheckInvariants(tx); p != "" {
			err = fmt.Errorf("customers: %s", p)
			return
		}
		// Count reservations per (table,id).
		counts := map[uint64]uint64{}
		for _, ck := range a.customers.Keys(tx) {
			cw, _ := a.customers.Get(tx, ck)
			cur := mem.Addr(tx.Load(mem.Addr(cw) + custHead))
			for cur != 0 {
				counts[tx.Load(cur+rvKey)]++
				cur = mem.Addr(tx.Load(cur + rvNext))
			}
		}
		var checked uint64
		for t := 0; t < tblCount; t++ {
			for _, id := range a.tables[t].Keys(tx) {
				recW, _ := a.tables[t].Get(tx, id)
				rec := mem.Addr(recW)
				used := tx.Load(rec + resUsed)
				total := tx.Load(rec + resTotal)
				if used > total {
					err = fmt.Errorf("table %d id %d: used %d > total %d", t, id, used, total)
					return
				}
				want := counts[uint64(t)<<32|uint64(id)]
				if used != want {
					err = fmt.Errorf("table %d id %d: used %d but %d reservations", t, id, used, want)
					return
				}
				checked += used
			}
		}
		var totalRes uint64
		for _, c := range counts {
			totalRes += c
		}
		if checked != totalRes {
			err = fmt.Errorf("reservations for deleted resources exist: %d vs %d", checked, totalRes)
		}
	})
	return err
}
