package genome_test

import (
	"testing"

	"repro/internal/stamp"
	_ "repro/internal/stamp/genome"
	"repro/internal/stamp/stamptest"
)

func TestGenome(t *testing.T)              { stamptest.Check(t, "genome", true) }
func TestGenomeDeterministic(t *testing.T) { stamptest.CheckDeterministic(t, "genome") }

// Table 5 shape (sequential instrumentation, as in the paper): genome's
// transactional allocations are all 16-byte chain nodes, and nothing is
// freed inside transactions.
func TestGenomeTxAllocationsAre16Bytes(t *testing.T) {
	res, err := stamp.Run(stamp.Config{App: "genome", Allocator: "tbb", Threads: 1, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile
	if p.Mallocs[stamp.RegionTx] == 0 {
		t.Fatal("no transactional allocations recorded")
	}
	if p.Counts[stamp.RegionTx][0] != p.Mallocs[stamp.RegionTx] {
		t.Errorf("tx allocations not all <=16B: %v", p.Counts[stamp.RegionTx])
	}
	if p.Frees[stamp.RegionTx] != 0 {
		t.Errorf("genome freed %d blocks in tx, want 0", p.Frees[stamp.RegionTx])
	}
}
