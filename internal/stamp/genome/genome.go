// Package genome ports STAMP's genome: gene sequencing by segment
// deduplication and overlap matching. A random gene is sampled into
// overlapping segments (with duplicates); phase 1 deduplicates segments
// through a transactional hash table, phase 2 matches each unique
// segment's suffix against other segments' prefixes and links them, and
// phase 3 (sequential) walks the chain to rebuild the gene, which is
// validated against the original.
//
// As in the paper's Table 5 characterization, the transactional phases
// allocate only 16-byte nodes (the hash-chain records), and the
// allocator's block spacing for those nodes is exactly the Glibc
// locality effect the paper discusses for this application (§6: high
// last-level miss ratios with Glibc at low thread counts).
package genome

import (
	"bytes"
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stamp"
	"repro/internal/stm"
	"repro/internal/vtime"
)

func init() {
	stamp.Register("genome", func() stamp.App { return &Genome{} })
}

// Genome is the application state.
type Genome struct {
	geneLen int
	segLen  int
	stride  int // segment sampling stride; overlap = segLen - stride
	nDups   int // duplicate segments mixed into the pool

	gene     []byte     // host-side copy for validation
	geneAddr mem.Addr   // gene bytes in simulated memory
	segs     []mem.Addr // segment pool: addresses of segment starts (gene windows)
	segPos   []int      // gene position per pool entry
	nUnique  int

	// Phase-1 output: unique segment table.
	dedupBuckets mem.Addr
	nDedup       uint64

	// Phase-2 tables: prefix-hash -> segment index, and chain links.
	prefBuckets mem.Addr
	nPref       uint64
	linkNext    mem.Addr // per unique segment: next segment index + 1
	linkPrev    mem.Addr // per unique segment: has-predecessor flag
	uniqueList  []int    // unique pool indices, fixed after phase 1

	phase1Done *vtime.Barrier
	phase2aEnd *vtime.Barrier

	rebuilt []byte
}

// Name implements stamp.App.
func (g *Genome) Name() string { return "genome" }

func (g *Genome) params(s stamp.Scale) {
	switch s {
	case stamp.Ref:
		g.geneLen, g.segLen, g.stride, g.nDups = 16384, 32, 8, 8192
	default:
		g.geneLen, g.segLen, g.stride, g.nDups = 1024, 16, 4, 256
	}
}

// Setup implements stamp.App: generates the gene, writes it to
// simulated memory, and builds the segment pool (sequential phase).
func (g *Genome) Setup(w *stamp.World) {
	g.params(w.Scale)
	g.phase1Done = vtime.NewBarrier(w.Threads)
	g.phase2aEnd = vtime.NewBarrier(w.Threads)
	w.Seq(func(th *vtime.Thread) {
		defer w.Region(th, "genome/setup")()
		rng := sim.NewRand(w.Seed)
		g.gene = make([]byte, g.geneLen)
		for i := range g.gene {
			g.gene[i] = "acgt"[rng.Intn(4)]
		}
		g.geneAddr = w.Malloc(th, uint64(g.geneLen))
		w.Space.WriteBytes(g.geneAddr, g.gene)
		th.Tick(uint64(g.geneLen)) // pricing the bulk write

		// Segment pool: every stride-aligned window once (so the gene is
		// reconstructible), plus random duplicates.
		for pos := 0; pos+g.segLen <= g.geneLen; pos += g.stride {
			g.segs = append(g.segs, g.geneAddr+mem.Addr(pos))
			g.segPos = append(g.segPos, pos)
		}
		g.nUnique = len(g.segs)
		for i := 0; i < g.nDups; i++ {
			j := rng.Intn(g.nUnique)
			g.segs = append(g.segs, g.segs[j])
			g.segPos = append(g.segPos, g.segPos[j])
		}
		// Shuffle the pool.
		for i := len(g.segs) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			g.segs[i], g.segs[j] = g.segs[j], g.segs[i]
			g.segPos[i], g.segPos[j] = g.segPos[j], g.segPos[i]
		}

		// Hash tables and link arrays (bucket arrays are seq
		// allocations; chain nodes are allocated inside transactions).
		g.nDedup = nextPow2(uint64(4 * g.nUnique))
		g.dedupBuckets = w.Calloc(th, g.nDedup*8)
		g.nPref = nextPow2(uint64(4 * g.nUnique))
		g.prefBuckets = w.Calloc(th, g.nPref*8)
		g.linkNext = w.Calloc(th, uint64(g.nUnique)*8)
		g.linkPrev = w.Calloc(th, uint64(g.nUnique)*8)
	})
}

func nextPow2(v uint64) uint64 {
	p := uint64(1)
	for p < v {
		p *= 2
	}
	return p
}

// segHash FNV-hashes l bytes of simulated memory at a, reading word by
// word through the priced accessor.
func segHash(th *vtime.Thread, a mem.Addr, l int) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < l; i++ {
		addr := a + mem.Addr(i)
		w := th.Load(addr &^ 7)
		b := byte(w >> ((uint64(addr) & 7) * 8))
		h = (h ^ uint64(b)) * 1099511628211
	}
	return h
}

// chain node layout: {packed word, next}. The packed word carries the
// 44-bit hash tag and 20-bit payload so the node stays 16 bytes, the
// only transactional allocation size in genome (Table 5).
const chainNodeSize = 16

func packEntry(hash uint64, payload int) uint64 {
	return (hash << 20) | uint64(payload)&0xfffff
}

// chainInsert inserts (hash, payload) into the bucket chain unless an
// equal packed entry exists; returns false on duplicate.
func chainInsert(tx *stm.Tx, buckets mem.Addr, nb uint64, hash uint64, payload int) bool {
	b := buckets + mem.Addr((hash&(nb-1))*8)
	packed := packEntry(hash, payload)
	head := mem.Addr(tx.Load(b))
	for cur := head; cur != 0; cur = mem.Addr(tx.Load(cur + 8)) {
		if tx.Load(cur) == packed {
			return false
		}
	}
	n := tx.Malloc(chainNodeSize)
	tx.Store(n, packed)
	tx.Store(n+8, uint64(head))
	tx.Store(b, uint64(n))
	return true
}

// chainLookupAny returns some payload whose entry matches hash's tag
// bits, or -1.
func chainLookupAny(tx *stm.Tx, buckets mem.Addr, nb uint64, hash uint64) int {
	b := buckets + mem.Addr((hash&(nb-1))*8)
	tag := hash & ((uint64(1) << 44) - 1)
	for cur := mem.Addr(tx.Load(b)); cur != 0; cur = mem.Addr(tx.Load(cur + 8)) {
		v := tx.Load(cur)
		if v>>20 == tag {
			return int(v & 0xfffff)
		}
	}
	return -1
}

// Parallel implements stamp.App.
func (g *Genome) Parallel(w *stamp.World, th *vtime.Thread) {
	defer w.Region(th, "genome/parallel")()
	nPool := len(g.segs)
	lo := th.ID() * nPool / w.Threads
	hi := (th.ID() + 1) * nPool / w.Threads

	// Phase 1: deduplicate segments. Payload is the gene position /
	// stride (the unique segment id).
	for i := lo; i < hi; i++ {
		id := g.segPos[i] / g.stride
		a := g.segs[i]
		h := segHash(th, a, g.segLen)
		w.Atomic(th, func(tx *stm.Tx) {
			chainInsert(tx, g.dedupBuckets, g.nDedup, h, id)
		})
	}
	g.phase1Done.Wait(th)

	// Phase 2a: publish each unique segment under its prefix hash
	// (prefix length = overlap = segLen - stride).
	overlap := g.segLen - g.stride
	nu := g.nUnique
	ulo := th.ID() * nu / w.Threads
	uhi := (th.ID() + 1) * nu / w.Threads
	for id := ulo; id < uhi; id++ {
		pos := id * g.stride
		h := segHash(th, g.geneAddr+mem.Addr(pos), overlap)
		w.Atomic(th, func(tx *stm.Tx) {
			chainInsert(tx, g.prefBuckets, g.nPref, h, id)
		})
	}
	g.phase2aEnd.Wait(th)

	// Phase 2b: for each unique segment, find the successor whose
	// prefix equals this segment's suffix and link them.
	for id := ulo; id < uhi; id++ {
		pos := id * g.stride
		if pos+g.stride+g.segLen > g.geneLen {
			continue // last segment has no successor
		}
		h := segHash(th, g.geneAddr+mem.Addr(pos+g.stride), overlap)
		w.Atomic(th, func(tx *stm.Tx) {
			succ := chainLookupAny(tx, g.prefBuckets, g.nPref, h)
			if succ < 0 {
				return
			}
			tx.Store(g.linkNext+mem.Addr(id*8), uint64(succ)+1)
			tx.Store(g.linkPrev+mem.Addr(succ*8), 1)
		})
	}
}

// Validate implements stamp.App: rebuild the gene from the chain and
// compare with the original.
func (g *Genome) Validate(w *stamp.World) error {
	th := vtime.Solo(w.Space, 0, nil)
	// Find the chain start: the unique segment with no predecessor.
	start := -1
	for id := 0; id < g.nUnique; id++ {
		if th.Space().Load(g.linkPrev+mem.Addr(id*8)) == 0 {
			if start >= 0 {
				return fmt.Errorf("multiple chain starts: %d and %d", start, id)
			}
			start = id
		}
	}
	if start != 0 {
		return fmt.Errorf("chain start = %d, want 0", start)
	}
	var out []byte
	id := start
	seen := 0
	for {
		pos := id * g.stride
		seg := w.Space.ReadBytes(g.geneAddr+mem.Addr(pos), g.segLen)
		if len(out) == 0 {
			out = append(out, seg...)
		} else {
			out = append(out, seg[g.segLen-g.stride:]...)
		}
		seen++
		if seen > g.nUnique {
			return fmt.Errorf("chain cycle detected")
		}
		nxt := th.Space().Load(g.linkNext + mem.Addr(id*8))
		if nxt == 0 {
			break
		}
		id = int(nxt) - 1
	}
	if seen != g.nUnique {
		return fmt.Errorf("chain covers %d segments, want %d", seen, g.nUnique)
	}
	if !bytes.Equal(out, g.gene[:len(out)]) {
		return fmt.Errorf("rebuilt gene mismatches original")
	}
	if len(out) < g.geneLen-g.stride {
		return fmt.Errorf("rebuilt gene too short: %d of %d", len(out), g.geneLen)
	}
	g.rebuilt = out
	return nil
}
