package stamp_test

import (
	"reflect"
	"testing"

	_ "repro/internal/stamp/genome"
	_ "repro/internal/stamp/kmeans"
	_ "repro/internal/stamp/labyrinth"
	_ "repro/internal/stamp/vacation"

	"repro/internal/obs"
	"repro/internal/stamp"
)

// TestStampRaceSimClean attaches the happens-before checker to STAMP
// applications covering the port's synchronization idioms: heavy
// transactional allocation (genome, vacation), phase barriers over raw
// inter-phase access (kmeans), and the declared-racy grid snapshot
// (labyrinth's LoadRelaxed). The ports follow the publication/
// privatization discipline, so the checker must stay silent and the
// measurements must match an unchecked run.
func TestStampRaceSimClean(t *testing.T) {
	for _, app := range []string{"genome", "kmeans", "labyrinth", "vacation"} {
		t.Run(app, func(t *testing.T) {
			cfg := stamp.Config{
				App: app, Allocator: "glibc", Threads: 2,
				Scale: stamp.Quick, Race: true,
			}
			checked, err := stamp.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if checked.Status != obs.StatusOK {
				t.Fatalf("status = %q (%s), want ok", checked.Status, checked.Failure)
			}
			if checked.Race == nil || !checked.Race.Checked || checked.Race.Findings != 0 {
				t.Fatalf("race info = %+v, want checked and clean", checked.Race)
			}
			if checked.Race.Events == 0 || checked.Race.Blocks == 0 {
				t.Fatalf("checker saw no events: %+v", checked.Race)
			}
			plainCfg := cfg
			plainCfg.Race = false
			plain, err := stamp.Run(plainCfg)
			if err != nil {
				t.Fatal(err)
			}
			checked.Race = nil
			checked.Config.Race = false
			if !reflect.DeepEqual(plain, checked) {
				t.Fatalf("checked run diverged from plain run:\nplain:   %+v\nchecked: %+v", plain, checked)
			}
		})
	}
}
