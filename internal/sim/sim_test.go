package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRandZeroSeedUsable(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced a stuck generator")
	}
}

func TestIntnRange(t *testing.T) {
	check := func(seed uint64) bool {
		r := NewRand(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(17)
			if v < 0 || v >= 17 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnRoughlyUniform(t *testing.T) {
	r := NewRand(7)
	const buckets, n = 8, 80000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	for b, c := range counts {
		if math.Abs(float64(c)-n/buckets) > n/buckets*0.1 {
			t.Errorf("bucket %d: %d of %d, too skewed", b, c, n)
		}
	}
}

func TestPerm(t *testing.T) {
	r := NewRand(3)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(s.Mean-5) > 1e-9 {
		t.Errorf("mean = %v, want 5", s.Mean)
	}
	if s.CI95 <= 0 {
		t.Error("CI95 must be positive for a varied sample")
	}
	if one := Summarize([]float64{3}); one.Mean != 3 || one.CI95 != 0 {
		t.Errorf("single sample: %+v", one)
	}
	if zero := Summarize(nil); zero.N != 0 {
		t.Errorf("empty sample: %+v", zero)
	}
}

func TestSummarizeConstantSample(t *testing.T) {
	s := Summarize([]float64{5, 5, 5, 5})
	if s.Mean != 5 || s.CI95 != 0 {
		t.Errorf("constant sample: %+v", s)
	}
}
