// Package sim provides deterministic pseudo-random number generation
// and the summary statistics (mean, 95% confidence interval) the
// paper's figures report.
package sim

import (
	"fmt"
	"math"
)

// Rand is a small, fast, deterministic xorshift64* generator. Each
// logical thread gets its own instance so runs are reproducible and
// thread-count independent.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded from seed (any value; zero is
// remapped).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("sim: Intn(%d)", n))
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// tTable holds two-sided 95% critical values of Student's t for df
// 1..30; beyond that the normal approximation 1.96 is used.
var tTable = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// Summary holds the mean and the half-width of a 95% confidence
// interval over a sample.
type Summary struct {
	N    int
	Mean float64
	CI95 float64 // half-width; the interval is Mean +/- CI95
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(n)
	if n == 1 {
		return Summary{N: 1, Mean: mean}
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	t := 1.96
	if df := n - 1; df <= len(tTable) {
		t = tTable[df-1]
	}
	return Summary{N: n, Mean: mean, CI95: t * sd / math.Sqrt(float64(n))}
}

func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g", s.Mean, s.CI95)
}
