package mem

// Heap watcher: a pure observer of the allocator-block lifecycle.
//
// The sanitizer's shadow map (shadow.go) and the heapscope telemetry
// collector both need the same three notifications — a block was handed
// out, a block was freed, a block was revived from a transaction-local
// cache — raised from the same allocator call sites with the same
// semantics (the first free wins; a reuse revives the original block).
// Space.NoteAlloc/NoteFree/NoteReuse are the single fan-out point, so an
// allocator model carries one notification call per event rather than
// one per observer.
//
// Like the shadow map, a watcher is pure metadata: it must never touch
// simulated memory through a thread handle, never advance virtual time,
// and never alter allocator behaviour, so an observed run is
// byte-identical to an unobserved one.

// HeapWatcher observes allocator block lifecycle events. Implementations
// are driven only from simulated threads, which the virtual-time engine
// serializes, so they need no internal locking.
type HeapWatcher interface {
	// OnHeapAlloc reports a successful malloc: base is the user address,
	// req the requested bytes, usable the size-class block size actually
	// dedicated to the request.
	OnHeapAlloc(allocator string, base Addr, req, usable uint64, tid int, clock uint64)
	// OnHeapFree reports a free of the block at base. Unknown bases and
	// repeated frees of the same block may be delivered (the allocator
	// notifies before validating); implementations ignore them.
	OnHeapFree(base Addr, tid int, clock uint64)
	// OnHeapReuse reports a block revived from a transaction-local free
	// cache without the allocator seeing a free/malloc pair.
	OnHeapReuse(base Addr, tid int, clock uint64)
}

// SetHeapWatcher attaches w (nil detaches). Set before the space is
// shared across simulated threads.
func (s *Space) SetHeapWatcher(w HeapWatcher) { s.watcher = w }

// HeapWatcherAttached returns the attached watcher, or nil.
func (s *Space) HeapWatcherAttached() HeapWatcher { return s.watcher }

// SetRaceWatcher attaches the race checker's block-lifecycle view (nil
// detaches). A separate slot from SetHeapWatcher so the checker can
// ride alongside heap telemetry. Set before the space is shared across
// simulated threads.
func (s *Space) SetRaceWatcher(w HeapWatcher) { s.race = w }

// SetConflictWatcher attaches the conflict observatory's
// block-lifecycle view (nil detaches). A separate slot for the same
// reason as SetRaceWatcher. Set before the space is shared across
// simulated threads.
func (s *Space) SetConflictWatcher(w HeapWatcher) { s.conflict = w }

// Observed reports whether any block-lifecycle observer (sanitizer
// shadow map, heap watcher, persist tracker, race checker or conflict
// observatory) is attached. Allocators consult it before computing
// notification arguments (e.g. a raw boundary-tag read) so the
// unobserved path stays one branch.
func (s *Space) Observed() bool {
	return s.shadow != nil || s.watcher != nil || s.ptrack != nil || s.race != nil || s.conflict != nil
}

// NoteAlloc fans a successful malloc out to the attached observers.
func (s *Space) NoteAlloc(allocator string, base Addr, req, usable uint64, tid int, clock uint64) {
	if s.shadow != nil {
		s.shadow.OnAlloc(allocator, base, req, usable, tid, clock)
	}
	if s.watcher != nil {
		s.watcher.OnHeapAlloc(allocator, base, req, usable, tid, clock)
	}
	if s.ptrack != nil {
		s.ptrack.OnHeapAlloc(allocator, base, req, usable, tid, clock)
	}
	if s.race != nil {
		s.race.OnHeapAlloc(allocator, base, req, usable, tid, clock)
	}
	if s.conflict != nil {
		s.conflict.OnHeapAlloc(allocator, base, req, usable, tid, clock)
	}
}

// NoteFree fans a free out to the attached observers.
func (s *Space) NoteFree(base Addr, tid int, clock uint64) {
	if s.shadow != nil {
		s.shadow.OnFree(base, tid, clock)
	}
	if s.watcher != nil {
		s.watcher.OnHeapFree(base, tid, clock)
	}
	if s.ptrack != nil {
		s.ptrack.OnHeapFree(base, tid, clock)
	}
	if s.race != nil {
		s.race.OnHeapFree(base, tid, clock)
	}
	if s.conflict != nil {
		s.conflict.OnHeapFree(base, tid, clock)
	}
}

// NoteReuse fans a transaction-cache block revival out to the attached
// observers.
func (s *Space) NoteReuse(base Addr, tid int, clock uint64) {
	if s.shadow != nil {
		s.shadow.OnReuse(base, tid, clock)
	}
	if s.watcher != nil {
		s.watcher.OnHeapReuse(base, tid, clock)
	}
	if s.ptrack != nil {
		s.ptrack.OnHeapReuse(base, tid, clock)
	}
	if s.race != nil {
		s.race.OnHeapReuse(base, tid, clock)
	}
	if s.conflict != nil {
		s.conflict.OnHeapReuse(base, tid, clock)
	}
}
