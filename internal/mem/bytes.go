package mem

// Byte-granularity helpers. The STM and the allocators operate on whole
// words; applications that store packed byte data (gene segments,
// packet payloads) use these read-modify-write helpers for
// non-transactional phases, and pack bytes into words explicitly inside
// transactions.

// LoadByte returns the byte at address a.
func (s *Space) LoadByte(a Addr) byte {
	w := s.Load(a)
	return byte(w >> ((uint64(a) & 7) * 8))
}

// StoreByte writes b at address a. It is not atomic with respect to
// concurrent stores of neighbouring bytes in the same word; callers
// partition byte ranges between threads at word granularity or use it
// only in single-threaded phases.
func (s *Space) StoreByte(a Addr, b byte) {
	shift := (uint64(a) & 7) * 8
	w := s.Load(a)
	w = (w &^ (0xff << shift)) | uint64(b)<<shift
	s.Store(a, w)
}

// WriteBytes copies p into simulated memory starting at a.
func (s *Space) WriteBytes(a Addr, p []byte) {
	for len(p) > 0 && uint64(a)&7 != 0 {
		s.StoreByte(a, p[0])
		a++
		p = p[1:]
	}
	for len(p) >= 8 {
		w := uint64(p[0]) | uint64(p[1])<<8 | uint64(p[2])<<16 | uint64(p[3])<<24 |
			uint64(p[4])<<32 | uint64(p[5])<<40 | uint64(p[6])<<48 | uint64(p[7])<<56
		s.Store(a, w)
		a += 8
		p = p[8:]
	}
	for _, b := range p {
		s.StoreByte(a, b)
		a++
	}
}

// ReadBytes copies n bytes starting at a out of simulated memory.
func (s *Space) ReadBytes(a Addr, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = s.LoadByte(a + Addr(i))
	}
	return out
}
