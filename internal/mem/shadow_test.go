package mem

import (
	"strings"
	"testing"
)

func TestShadowStateMachine(t *testing.T) {
	s := NewSpace()
	sh := s.EnableSanitizer()
	base, err := s.Map(PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Allocate 66 bytes into an 80-byte class block: words 0..8 are the
	// request (66 rounds up to 72), the last word is redzone.
	sh.OnAlloc("glibc", base, 66, 80, 1, 100)
	if st := sh.StateAt(base); st != ShadowAllocated {
		t.Errorf("base state = %v, want allocated", st)
	}
	if st := sh.StateAt(base + 64); st != ShadowAllocated {
		t.Errorf("last request word = %v, want allocated", st)
	}
	if st := sh.StateAt(base + 72); st != ShadowRedzone {
		t.Errorf("slack word = %v, want redzone", st)
	}
	if d := sh.Check(base, false, 2, 200); d != nil {
		t.Errorf("clean load diagnosed: %v", d)
	}
	if d := sh.Check(base+72, true, 2, 200); d == nil || d.Kind != DiagOverflow {
		t.Errorf("redzone store = %v, want heap-buffer-overflow", d)
	}

	// Free poisons request and redzone alike, keeping provenance.
	sh.OnFree(base, 3, 300)
	if d := sh.Check(base+8, false, 4, 400); d == nil || d.Kind != DiagUseAfterFree {
		t.Errorf("freed load = %v, want use-after-free", d)
	} else {
		msg := d.Error()
		for _, want := range []string{"glibc", "thread 3", "vtime 300", "thread 1", "vtime 100"} {
			if !strings.Contains(msg, want) {
				t.Errorf("diagnostic missing %q:\n%s", want, msg)
			}
		}
	}
	if d := sh.CheckFree(base, 4, 400); d == nil || d.Kind != DiagDoubleFree {
		t.Errorf("second free = %v, want double-free", d)
	}
	// A later free of the same base (quarantine release reaching the
	// allocator) must not clobber the recorded free site.
	sh.OnFree(base, 9, 900)
	if blk, ok := sh.BlockAt(base); !ok || blk.FreeTid != 3 || blk.FreeClock != 300 {
		t.Errorf("free provenance clobbered: %+v", blk)
	}

	// Reuse from the tx cache re-arms the same geometry.
	sh.OnReuse(base, 5, 500)
	if d := sh.Check(base, true, 5, 500); d != nil {
		t.Errorf("reused block store diagnosed: %v", d)
	}
	if st := sh.StateAt(base + 72); st != ShadowRedzone {
		t.Errorf("reused slack word = %v, want redzone", st)
	}

	// Non-block word on a tracked page is wild; untracked mapped words
	// are fine; unmapped addresses are wild.
	if d := sh.Check(base+4096, false, 6, 600); d == nil || d.Kind != DiagWildAddr {
		t.Errorf("non-block word on tracked page = %v, want wild-address", d)
	}
	app, err := s.Map(PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d := sh.Check(app+8, false, 6, 600); d != nil {
		t.Errorf("untracked mapped word diagnosed: %v", d)
	}
	if d := sh.Check(Addr(0x1000), false, 6, 600); d == nil || d.Kind != DiagWildAddr {
		t.Errorf("unmapped address = %v, want wild-address", d)
	}
}

func TestSanitizeDefault(t *testing.T) {
	SetSanitizeDefault(true)
	defer SetSanitizeDefault(false)
	if s := NewSpace(); s.Sanitizer() == nil {
		t.Error("NewSpace under the sanitize default has no shadow map")
	}
	SetSanitizeDefault(false)
	s := NewSpace()
	if s.Sanitizer() != nil {
		t.Error("NewSpace without the default grew a shadow map")
	}
	if s.EnableSanitizer() == nil || s.Sanitizer() == nil {
		t.Error("EnableSanitizer did not attach a shadow map")
	}
}
