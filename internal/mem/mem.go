// Package mem implements a simulated 64-bit address space.
//
// The package stands in for the process address space and the operating
// system's memory-mapping facility of the original study: allocators
// obtain aligned regions from a Space (the mmap analogue) and carve them
// into blocks, and the STM reads and writes 8-byte words at simulated
// addresses. Because every 64 KiB simulated page is backed by one
// contiguous Go array, adjacency of simulated addresses is adjacency in
// host memory, so cache locality and cache-line false sharing induced by
// an allocator's placement decisions manifest physically as well as in
// the trace-driven cache model.
//
// Word loads and stores use atomic operations, making concurrent access
// to the same word well defined (the STM provides the actual isolation
// discipline on top).
package mem

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// ErrNoMemory is the simulated out-of-memory condition: a Map request
// exceeded the space's byte quota or exhausted the address space.
// Callers that model real allocators propagate it as a failed malloc
// (returning 0) rather than crashing, so workloads can degrade
// gracefully under memory pressure.
var ErrNoMemory = errors.New("mem: no memory")

// Addr is a byte address in the simulated address space.
type Addr uint64

// Word and page geometry. Pages are 64 KiB: large enough that a cache
// line (64 B) never spans two backing arrays, small enough that lazily
// backing sparse regions stays cheap.
const (
	WordSize  = 8
	PageShift = 16
	PageSize  = 1 << PageShift
	PageWords = PageSize / WordSize
	pageMask  = PageSize - 1
)

// Address-space geometry: a two-level radix table over page numbers.
// Supports addresses up to 2^(16+11+11) = 2^38 (256 GiB), far beyond any
// workload in this repository.
const (
	l1Bits    = 11
	l2Bits    = 11
	l1Size    = 1 << l1Bits
	l2Size    = 1 << l2Bits
	l2Mask    = l2Size - 1
	MaxAddr   = Addr(1) << (PageShift + l1Bits + l2Bits)
	startBase = Addr(1) << 28 // regions are handed out from 256 MiB up
)

// Fault describes an access to an address outside any mapped region.
// Faults indicate a bug in an allocator or application and are raised as
// panics, mirroring a segmentation fault.
type Fault struct {
	Addr  Addr
	Write bool
}

func (f Fault) Error() string {
	kind := "load"
	if f.Write {
		kind = "store"
	}
	return fmt.Sprintf("mem: fault: %s at unmapped address %#x", kind, uint64(f.Addr))
}

type page struct {
	words [PageWords]uint64
}

type l2table struct {
	pages [l2Size]atomic.Pointer[page]
}

// Region describes one mapped region of the address space.
type Region struct {
	Base Addr
	Size uint64
}

// End returns the first address past the region.
func (r Region) End() Addr { return r.Base + Addr(r.Size) }

// Contains reports whether a lies inside the region.
func (r Region) Contains(a Addr) bool { return a >= r.Base && a < r.End() }

// Stats reports address-space usage counters.
type Stats struct {
	MapCalls       uint64 // number of Map invocations (the "mmap count")
	UnmapCalls     uint64
	ReservedBytes  uint64 // currently mapped (reserved) bytes
	CommittedBytes uint64 // bytes with physical (Go-slice) backing
	PeakReserved   uint64
}

// Space is a simulated address space. The zero value is not usable; call
// NewSpace.
type Space struct {
	l1 [l1Size]atomic.Pointer[l2table]

	mu      sync.Mutex // guards region list mutation and next
	next    Addr
	quota   uint64                   // reserved-byte ceiling; 0 = unlimited
	regions atomic.Pointer[[]Region] // sorted by Base, copy-on-write

	mapCalls   atomic.Uint64
	unmapCalls atomic.Uint64
	reserved   atomic.Uint64
	committed  atomic.Uint64
	peak       atomic.Uint64

	// shadow is the sanitizer's word-granularity shadow map, nil unless
	// sanitizer mode is on (see shadow.go). Set at construction or via
	// EnableSanitizer, before the space is shared across sim threads.
	shadow *Shadow

	// watcher is the heap-telemetry observer, nil unless a collector is
	// attached (see watch.go). Set via SetHeapWatcher before the space is
	// shared across sim threads.
	watcher HeapWatcher

	// ptrack is the durable-memory tracker, nil unless a pmem instance
	// is attached (see persist.go). Set via SetPersistTracker before the
	// space is shared across sim threads.
	ptrack PersistTracker

	// race is the happens-before checker's view of the block
	// lifecycle, nil unless a checker is attached (see watch.go). Set
	// via SetRaceWatcher before the space is shared across sim
	// threads. Held separately from watcher so a run can carry both
	// heap telemetry and the race checker.
	race HeapWatcher

	// conflict is the abort-forensics observatory's view of the block
	// lifecycle, nil unless an observatory is attached (see watch.go).
	// Set via SetConflictWatcher before the space is shared across sim
	// threads. A separate slot for the same reason as race: telemetry,
	// race checking and conflict forensics compose in one run.
	conflict HeapWatcher
}

// NewSpace returns an empty address space. When the process-wide
// sanitize default is set (the CLIs' -sanitize flag), the space carries
// a sanitizer shadow map from the start.
func NewSpace() *Space {
	s := &Space{next: startBase}
	empty := make([]Region, 0)
	s.regions.Store(&empty)
	if sanitizeDefault.Load() {
		s.shadow = newShadow(s)
	}
	return s
}

// Map reserves a region of size bytes whose base address is a multiple
// of align (align must be a power of two, or zero for page alignment).
// The region is zero-filled and backed lazily on first store. Map is the
// simulator's mmap.
func (s *Space) Map(size, align uint64) (Addr, error) {
	if size == 0 {
		return 0, fmt.Errorf("mem: Map: zero size")
	}
	if align == 0 {
		align = PageSize
	}
	if align&(align-1) != 0 {
		return 0, fmt.Errorf("mem: Map: alignment %d is not a power of two", align)
	}
	if align < PageSize {
		align = PageSize
	}
	size = (size + pageMask) &^ uint64(pageMask)

	s.mu.Lock()
	defer s.mu.Unlock()

	if s.quota != 0 && s.reserved.Load()+size > s.quota {
		return 0, fmt.Errorf("mem: Map: %d bytes requested over a %d-byte quota with %d reserved: %w",
			size, s.quota, s.reserved.Load(), ErrNoMemory)
	}
	base := (s.next + Addr(align-1)) &^ Addr(align-1)
	// Leave one unmapped guard page after every region so that linear
	// overruns fault instead of silently corrupting a neighbour.
	next := base + Addr(size) + PageSize
	if next >= MaxAddr {
		return 0, fmt.Errorf("mem: Map: address space exhausted (%d bytes requested): %w", size, ErrNoMemory)
	}
	s.next = next

	old := *s.regions.Load()
	regions := make([]Region, len(old)+1)
	copy(regions, old)
	regions[len(old)] = Region{Base: base, Size: size}
	sort.Slice(regions, func(i, j int) bool { return regions[i].Base < regions[j].Base })
	s.regions.Store(&regions)

	s.mapCalls.Add(1)
	r := s.reserved.Add(size)
	for {
		p := s.peak.Load()
		if r <= p || s.peak.CompareAndSwap(p, r) {
			break
		}
	}
	return base, nil
}

// MustMap is Map but panics on failure. It is reserved for internal
// invariants — regions that must exist for the simulation itself to be
// coherent (the STM's ORT, experiment scaffolding) — where a failure
// indicates a harness bug. Allocator models use Map and surface
// ErrNoMemory as a failed malloc instead.
func (s *Space) MustMap(size, align uint64) Addr {
	a, err := s.Map(size, align)
	if err != nil {
		panic(err)
	}
	return a
}

// SetQuota caps the space's reserved bytes: a Map that would push the
// total past quota fails with ErrNoMemory. Zero removes the cap. The
// quota models address-space exhaustion and memory pressure; it is not
// retroactive (already-mapped regions stay mapped).
func (s *Space) SetQuota(quota uint64) {
	s.mu.Lock()
	s.quota = quota
	s.mu.Unlock()
}

// Quota returns the current byte quota (0 = unlimited).
func (s *Space) Quota() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quota
}

// Unmap releases the region with the given base address (as returned by
// Map) and drops its backing pages. Accessing the region afterwards
// faults.
func (s *Space) Unmap(base Addr) error {
	s.mu.Lock()
	defer s.mu.Unlock()

	old := *s.regions.Load()
	idx := -1
	for i, r := range old {
		if r.Base == base {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("mem: Unmap: %#x is not a mapped region base", uint64(base))
	}
	r := old[idx]
	regions := make([]Region, 0, len(old)-1)
	regions = append(regions, old[:idx]...)
	regions = append(regions, old[idx+1:]...)
	s.regions.Store(&regions)

	// Drop backing pages.
	for a := r.Base; a < r.End(); a += PageSize {
		pn := uint64(a) >> PageShift
		if t := s.l1[pn>>l2Bits].Load(); t != nil {
			if t.pages[pn&l2Mask].Swap(nil) != nil {
				s.committed.Add(^uint64(PageSize - 1))
			}
		}
	}
	s.unmapCalls.Add(1)
	s.reserved.Add(^uint64(r.Size - 1))
	if s.ptrack != nil {
		s.ptrack.OnUnmap(r.Base, r.Size)
	}
	return nil
}

// RegionOf returns the mapped region containing a, if any.
func (s *Space) RegionOf(a Addr) (Region, bool) {
	regions := *s.regions.Load()
	i := sort.Search(len(regions), func(i int) bool { return regions[i].End() > a })
	if i < len(regions) && regions[i].Contains(a) {
		return regions[i], true
	}
	return Region{}, false
}

// Regions returns a snapshot of all mapped regions sorted by base.
func (s *Space) Regions() []Region {
	regions := *s.regions.Load()
	out := make([]Region, len(regions))
	copy(out, regions)
	return out
}

func (s *Space) pageFor(a Addr) *page {
	pn := uint64(a) >> PageShift
	t := s.l1[(pn>>l2Bits)&(l1Size-1)].Load()
	if t == nil {
		return nil
	}
	return t.pages[pn&l2Mask].Load()
}

// ensurePage returns the backing page for a, creating it if a lies in a
// mapped region, or nil otherwise.
func (s *Space) ensurePage(a Addr) *page {
	if p := s.pageFor(a); p != nil {
		return p
	}
	if _, ok := s.RegionOf(a); !ok {
		return nil
	}
	pn := uint64(a) >> PageShift
	l1i := (pn >> l2Bits) & (l1Size - 1)
	s.mu.Lock()
	t := s.l1[l1i].Load()
	if t == nil {
		t = new(l2table)
		s.l1[l1i].Store(t)
	}
	p := t.pages[pn&l2Mask].Load()
	if p == nil {
		p = new(page)
		t.pages[pn&l2Mask].Store(p)
		s.committed.Add(PageSize)
	}
	s.mu.Unlock()
	return p
}

// Load returns the 8-byte word at address a. The three low bits of a are
// ignored (word accesses are word-aligned). Loading from a mapped but
// never-written page reads zero without committing backing storage.
func (s *Space) Load(a Addr) uint64 {
	p := s.pageFor(a)
	if p == nil {
		if _, ok := s.RegionOf(a); ok {
			return 0
		}
		panic(Fault{Addr: a})
	}
	return atomic.LoadUint64(&p.words[(uint64(a)&pageMask)>>3])
}

// Store writes the 8-byte word v at address a.
func (s *Space) Store(a Addr, v uint64) {
	p := s.ensurePage(a)
	if p == nil {
		panic(Fault{Addr: a, Write: true})
	}
	atomic.StoreUint64(&p.words[(uint64(a)&pageMask)>>3], v)
	if s.ptrack != nil {
		s.ptrack.OnStore(a)
	}
}

// CompareAndSwap atomically replaces the word at a with new if it equals
// old, reporting whether the swap happened.
func (s *Space) CompareAndSwap(a Addr, old, new uint64) bool {
	p := s.ensurePage(a)
	if p == nil {
		panic(Fault{Addr: a, Write: true})
	}
	ok := atomic.CompareAndSwapUint64(&p.words[(uint64(a)&pageMask)>>3], old, new)
	if ok && s.ptrack != nil {
		s.ptrack.OnStore(a)
	}
	return ok
}

// Stats returns current usage counters.
func (s *Space) Stats() Stats {
	return Stats{
		MapCalls:       s.mapCalls.Load(),
		UnmapCalls:     s.unmapCalls.Load(),
		ReservedBytes:  s.reserved.Load(),
		CommittedBytes: s.committed.Load(),
		PeakReserved:   s.peak.Load(),
	}
}

// AlignUp rounds v up to the next multiple of align (a power of two).
func AlignUp(v, align uint64) uint64 { return (v + align - 1) &^ (align - 1) }

// AlignAddr rounds a up to the next multiple of align (a power of two).
func AlignAddr(a Addr, align uint64) Addr { return (a + Addr(align-1)) &^ Addr(align-1) }
