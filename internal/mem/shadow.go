package mem

import (
	"fmt"
	"sync/atomic"
)

// Sanitizer mode: an ASan-style shadow map over the simulated address
// space. Every allocator block is registered on malloc and poisoned on
// free, and the size-class slack past the rounded-up request becomes a
// redzone, so transactional accesses to freed words, redzone words, or
// wild addresses produce a diagnostic naming the owning allocator and
// block with alloc/free virtual-time provenance.
//
// The shadow map is pure metadata: it never writes data words, never
// advances virtual time, and never alters allocator placement, so a
// sanitized run is byte-identical to an unsanitized one unless a
// diagnostic fires (the byte-identity gate in scripts/ci.sh holds this).

// ShadowState classifies one simulated word.
type ShadowState uint8

const (
	// ShadowNone: not part of any tracked allocator block. Words inside a
	// mapped region are addressable (allocator metadata, app statics);
	// words outside any region are wild.
	ShadowNone ShadowState = iota
	// ShadowAllocated: inside the requested bytes of a live block.
	ShadowAllocated
	// ShadowFreed: inside a freed block (quarantined or recycled).
	ShadowFreed
	// ShadowRedzone: size-class slack past the request; touching it is a
	// heap overflow.
	ShadowRedzone
)

func (st ShadowState) String() string {
	switch st {
	case ShadowAllocated:
		return "allocated"
	case ShadowFreed:
		return "freed"
	case ShadowRedzone:
		return "redzone"
	default:
		return "none"
	}
}

// ShadowBlock is the provenance record for one allocator block.
type ShadowBlock struct {
	Base       Addr   // address returned by malloc
	Req        uint64 // requested bytes
	Usable     uint64 // usable bytes (size-class block size)
	Allocator  string // owning allocator model ("glibc", "hoard", ...)
	AllocTid   int
	AllocClock uint64 // virtual time of the allocation
	Freed      bool
	FreeTid    int
	FreeClock  uint64 // virtual time of the (first) free
}

// shadowPage mirrors one 64 KiB page at word granularity.
type shadowPage struct {
	state [PageWords]ShadowState
	block [PageWords]uint32 // 1-based index into Shadow.blocks; 0 = none
}

// Shadow is the per-Space sanitizer state. Like the allocator models it
// shadows, it is driven only from simulated threads, which the virtual
// time engine serializes, so it uses plain maps without locking.
type Shadow struct {
	space  *Space
	pages  map[uint64]*shadowPage
	blocks []ShadowBlock
	byBase map[Addr]uint32 // block base -> 1-based id of latest block there
}

func newShadow(s *Space) *Shadow {
	return &Shadow{
		space:  s,
		pages:  map[uint64]*shadowPage{},
		byBase: map[Addr]uint32{},
	}
}

func (sh *Shadow) pageAt(a Addr, create bool) (*shadowPage, uint64) {
	pn := uint64(a) >> PageShift
	p := sh.pages[pn]
	if p == nil && create {
		p = new(shadowPage)
		sh.pages[pn] = p
	}
	return p, (uint64(a) & pageMask) >> 3
}

func (sh *Shadow) setRange(base Addr, n uint64, st ShadowState, id uint32) {
	for off := uint64(0); off < n; off += WordSize {
		p, w := sh.pageAt(base+Addr(off), true)
		p.state[w] = st
		p.block[w] = id
	}
}

// OnAlloc registers a block returned by an allocator's malloc: the
// requested words become allocated, and the slack up to usable becomes a
// redzone. A later block at the same base overwrites the earlier record,
// keeping the block table bounded under heavy recycling.
func (sh *Shadow) OnAlloc(allocator string, base Addr, req, usable uint64, tid int, clock uint64) {
	if base == 0 {
		return
	}
	blk := ShadowBlock{
		Base: base, Req: req, Usable: usable,
		Allocator: allocator, AllocTid: tid, AllocClock: clock,
	}
	id, ok := sh.byBase[base]
	if ok {
		sh.blocks[id-1] = blk
	} else {
		sh.blocks = append(sh.blocks, blk)
		id = uint32(len(sh.blocks))
		sh.byBase[base] = id
	}
	reqW := AlignUp(req, WordSize)
	if reqW > usable {
		reqW = usable
	}
	sh.setRange(base, reqW, ShadowAllocated, id)
	sh.setRange(base+Addr(reqW), usable-reqW, ShadowRedzone, id)
}

// OnFree poisons a block: every word (request and redzone alike) turns
// freed, and the free's virtual-time provenance is recorded. Unknown
// bases and blocks already freed are ignored, so the allocator-level
// free issued when quarantine releases a transactionally freed block
// does not clobber the original free site.
func (sh *Shadow) OnFree(base Addr, tid int, clock uint64) {
	id := sh.byBase[base]
	if id == 0 {
		return
	}
	blk := &sh.blocks[id-1]
	if blk.Freed {
		return
	}
	blk.Freed = true
	blk.FreeTid = tid
	blk.FreeClock = clock
	sh.setRange(base, blk.Usable, ShadowFreed, id)
}

// OnReuse re-arms a block handed back from a transaction-local free
// cache: the allocator never saw the free/malloc pair, so the shadow
// state is rebuilt from the stored geometry.
func (sh *Shadow) OnReuse(base Addr, tid int, clock uint64) {
	id := sh.byBase[base]
	if id == 0 {
		return
	}
	blk := &sh.blocks[id-1]
	blk.Freed = false
	blk.AllocTid = tid
	blk.AllocClock = clock
	reqW := AlignUp(blk.Req, WordSize)
	if reqW > blk.Usable {
		reqW = blk.Usable
	}
	sh.setRange(base, reqW, ShadowAllocated, id)
	sh.setRange(base+Addr(reqW), blk.Usable-reqW, ShadowRedzone, id)
}

// DiagKind names a class of sanitizer finding.
type DiagKind string

const (
	DiagUseAfterFree DiagKind = "use-after-free"
	DiagOverflow     DiagKind = "heap-buffer-overflow"
	DiagWildAddr     DiagKind = "wild-address"
	DiagDoubleFree   DiagKind = "double-free"
)

// Diag is one sanitizer finding. It is raised as a panic value by the
// STM layer so the faulting transaction fails like any other fatal
// application error.
type Diag struct {
	Kind  DiagKind
	Addr  Addr
	Write bool
	Tid   int
	Clock uint64
	Block *ShadowBlock // owning block, when one is known
}

func (d *Diag) Error() string {
	op := "read"
	if d.Write {
		op = "write"
	}
	msg := fmt.Sprintf("mem: sanitizer: %s: %s of %#x by thread %d at vtime %d",
		d.Kind, op, uint64(d.Addr), d.Tid, d.Clock)
	if b := d.Block; b != nil {
		msg += fmt.Sprintf("\n  block %#x (req %d, usable %d bytes) owned by allocator %q",
			uint64(b.Base), b.Req, b.Usable, b.Allocator)
		msg += fmt.Sprintf("\n  allocated by thread %d at vtime %d", b.AllocTid, b.AllocClock)
		if b.Freed {
			msg += fmt.Sprintf("\n  freed by thread %d at vtime %d", b.FreeTid, b.FreeClock)
		}
	}
	return msg
}

// Check classifies a transactional access to address a, returning a
// diagnostic when the access hits freed memory, a redzone, or a wild
// address, and nil for clean accesses.
func (sh *Shadow) Check(a Addr, write bool, tid int, clock uint64) *Diag {
	p, w := sh.pageAt(a, false)
	if p != nil {
		switch p.state[w] {
		case ShadowAllocated:
			return nil
		case ShadowFreed:
			return sh.diag(DiagUseAfterFree, a, write, tid, clock, p.block[w])
		case ShadowRedzone:
			return sh.diag(DiagOverflow, a, write, tid, clock, p.block[w])
		}
		// ShadowNone on a page the sanitizer tracks: the page holds
		// allocator blocks, so a word belonging to none of them is
		// allocator metadata or never-allocated carve space — wild from
		// the application's point of view.
		return sh.diag(DiagWildAddr, a, write, tid, clock, 0)
	}
	// Untracked page: fine if mapped (application statics, harness
	// regions), wild otherwise.
	if _, ok := sh.space.RegionOf(a); ok {
		return nil
	}
	return sh.diag(DiagWildAddr, a, write, tid, clock, 0)
}

// CheckFree classifies a transactional free of block base: freeing an
// already-freed block is a double free. Unknown bases are left for the
// allocator's own validation (glibc's boundary-tag checks).
func (sh *Shadow) CheckFree(base Addr, tid int, clock uint64) *Diag {
	id := sh.byBase[base]
	if id == 0 {
		return nil
	}
	if sh.blocks[id-1].Freed {
		return sh.diag(DiagDoubleFree, base, true, tid, clock, id)
	}
	return nil
}

func (sh *Shadow) diag(kind DiagKind, a Addr, write bool, tid int, clock uint64, id uint32) *Diag {
	d := &Diag{Kind: kind, Addr: a, Write: write, Tid: tid, Clock: clock}
	if id != 0 {
		blk := sh.blocks[id-1]
		d.Block = &blk
	}
	return d
}

// StateAt returns the shadow state of address a (for tests and tools).
func (sh *Shadow) StateAt(a Addr) ShadowState {
	p, w := sh.pageAt(a, false)
	if p == nil {
		return ShadowNone
	}
	return p.state[w]
}

// BlockAt returns the provenance record owning address a, if any.
func (sh *Shadow) BlockAt(a Addr) (ShadowBlock, bool) {
	p, w := sh.pageAt(a, false)
	if p == nil || p.block[w] == 0 {
		return ShadowBlock{}, false
	}
	return sh.blocks[p.block[w]-1], true
}

// sanitizeDefault makes -sanitize reach every Space a CLI constructs
// without threading a flag through each experiment: NewSpace consults
// it once at construction.
var sanitizeDefault atomic.Bool

// SetSanitizeDefault controls whether future NewSpace calls attach a
// sanitizer shadow map.
func SetSanitizeDefault(on bool) { sanitizeDefault.Store(on) }

// SanitizeDefault reports the current default.
func SanitizeDefault() bool { return sanitizeDefault.Load() }

// EnableSanitizer attaches a shadow map to the space (idempotent) and
// returns it.
func (s *Space) EnableSanitizer() *Shadow {
	if s.shadow == nil {
		s.shadow = newShadow(s)
	}
	return s.shadow
}

// Sanitizer returns the space's shadow map, or nil when sanitizer mode
// is off.
func (s *Space) Sanitizer() *Shadow { return s.shadow }
