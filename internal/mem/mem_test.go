package mem

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestMapAlignment(t *testing.T) {
	s := NewSpace()
	for _, align := range []uint64{0, PageSize, 1 << 20, 1 << 26} {
		base, err := s.Map(PageSize, align)
		if err != nil {
			t.Fatalf("Map(align=%d): %v", align, err)
		}
		a := align
		if a == 0 {
			a = PageSize
		}
		if uint64(base)%a != 0 {
			t.Errorf("Map(align=%d) = %#x, not aligned", align, uint64(base))
		}
	}
}

func TestMapRejectsBadArgs(t *testing.T) {
	s := NewSpace()
	if _, err := s.Map(0, 0); err == nil {
		t.Error("Map(0, 0) succeeded, want error")
	}
	if _, err := s.Map(16, 3); err == nil {
		t.Error("Map with non-power-of-two alignment succeeded, want error")
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	s := NewSpace()
	base := s.MustMap(4*PageSize, 0)
	for i := Addr(0); i < 4*PageSize; i += 8 {
		s.Store(base+i, uint64(i)*2654435761)
	}
	for i := Addr(0); i < 4*PageSize; i += 8 {
		if got, want := s.Load(base+i), uint64(i)*2654435761; got != want {
			t.Fatalf("Load(%#x) = %d, want %d", uint64(base+i), got, want)
		}
	}
}

func TestLoadOfUnwrittenMappedMemoryIsZero(t *testing.T) {
	s := NewSpace()
	base := s.MustMap(PageSize, 0)
	if got := s.Load(base + 128); got != 0 {
		t.Errorf("Load of never-written word = %d, want 0", got)
	}
	if st := s.Stats(); st.CommittedBytes != 0 {
		t.Errorf("zero-page load committed %d bytes, want 0", st.CommittedBytes)
	}
}

func TestFaults(t *testing.T) {
	s := NewSpace()
	base := s.MustMap(PageSize, 0)

	mustFault := func(name string, f func()) {
		t.Helper()
		defer func() {
			if r := recover(); r == nil {
				t.Errorf("%s: no fault raised", name)
			} else if _, ok := r.(Fault); !ok {
				t.Errorf("%s: panic %v is not a Fault", name, r)
			}
		}()
		f()
	}
	mustFault("load below region", func() { s.Load(base - 8) })
	mustFault("store past region (guard page)", func() { s.Store(base+PageSize, 1) })
	mustFault("load at 0", func() { s.Load(0) })
}

func TestUnmap(t *testing.T) {
	s := NewSpace()
	base := s.MustMap(2*PageSize, 0)
	s.Store(base, 42)
	if err := s.Unmap(base); err != nil {
		t.Fatalf("Unmap: %v", err)
	}
	if err := s.Unmap(base); err == nil {
		t.Error("second Unmap succeeded, want error")
	}
	func() {
		defer func() { recover() }()
		s.Load(base)
		t.Error("load after Unmap did not fault")
	}()
	if st := s.Stats(); st.ReservedBytes != 0 || st.CommittedBytes != 0 {
		t.Errorf("after Unmap: reserved=%d committed=%d, want 0/0", st.ReservedBytes, st.CommittedBytes)
	}
}

func TestRegionOf(t *testing.T) {
	s := NewSpace()
	a := s.MustMap(PageSize, 0)
	b := s.MustMap(PageSize, 0)
	if r, ok := s.RegionOf(a + 100); !ok || r.Base != a {
		t.Errorf("RegionOf(a+100) = %+v, %v; want base %#x", r, ok, uint64(a))
	}
	if r, ok := s.RegionOf(b); !ok || r.Base != b {
		t.Errorf("RegionOf(b) = %+v, %v; want base %#x", r, ok, uint64(b))
	}
	// Guard page between the regions is unmapped.
	if _, ok := s.RegionOf(a + PageSize); ok {
		t.Error("guard page reported as mapped")
	}
}

func TestGuardGapBetweenRegions(t *testing.T) {
	s := NewSpace()
	a := s.MustMap(PageSize, 0)
	b := s.MustMap(PageSize, 0)
	if b < a+2*PageSize {
		t.Errorf("regions not separated by a guard page: a=%#x b=%#x", uint64(a), uint64(b))
	}
}

func TestConcurrentDisjointAccess(t *testing.T) {
	s := NewSpace()
	const threads = 8
	const words = 1 << 12
	base := s.MustMap(threads*words*8, 0)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			start := base + Addr(tid*words*8)
			for i := 0; i < words; i++ {
				s.Store(start+Addr(i*8), uint64(tid)<<32|uint64(i))
			}
			for i := 0; i < words; i++ {
				if got := s.Load(start + Addr(i*8)); got != uint64(tid)<<32|uint64(i) {
					t.Errorf("tid %d word %d: got %#x", tid, i, got)
					return
				}
			}
		}(tid)
	}
	wg.Wait()
}

func TestCompareAndSwap(t *testing.T) {
	s := NewSpace()
	base := s.MustMap(PageSize, 0)
	s.Store(base, 10)
	if !s.CompareAndSwap(base, 10, 20) {
		t.Error("CAS(10->20) failed")
	}
	if s.CompareAndSwap(base, 10, 30) {
		t.Error("CAS with stale old value succeeded")
	}
	if got := s.Load(base); got != 20 {
		t.Errorf("after CAS: %d, want 20", got)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	s := NewSpace()
	base := s.MustMap(PageSize, 0)
	check := func(off Addr, p []byte) bool {
		off = off % (PageSize / 2)
		s.WriteBytes(base+off, p)
		got := s.ReadBytes(base+off, len(p))
		if len(got) != len(p) {
			return false
		}
		for i := range p {
			if got[i] != p[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAlignHelpers(t *testing.T) {
	if AlignUp(0, 16) != 0 || AlignUp(1, 16) != 16 || AlignUp(16, 16) != 16 || AlignUp(17, 16) != 32 {
		t.Error("AlignUp wrong")
	}
	if AlignAddr(Addr(100), 64) != 128 {
		t.Error("AlignAddr wrong")
	}
}

func TestStatsAccounting(t *testing.T) {
	s := NewSpace()
	base := s.MustMap(4*PageSize, 0)
	st := s.Stats()
	if st.MapCalls != 1 || st.ReservedBytes != 4*PageSize {
		t.Errorf("after Map: %+v", st)
	}
	s.Store(base, 1)                // commits page 0
	s.Store(base+3*PageSize+8, 1)   // commits page 3
	s.Store(base+3*PageSize+128, 1) // same page, no new commit
	if st := s.Stats(); st.CommittedBytes != 2*PageSize {
		t.Errorf("committed = %d, want %d", st.CommittedBytes, 2*PageSize)
	}
}

func TestQuota(t *testing.T) {
	s := NewSpace()
	s.SetQuota(4 * PageSize)
	if _, err := s.Map(2*PageSize, 0); err != nil {
		t.Fatalf("within quota: %v", err)
	}
	if _, err := s.Map(4*PageSize, 0); !errors.Is(err, ErrNoMemory) {
		t.Fatalf("over quota: err = %v, want ErrNoMemory", err)
	}
	// Still below the cap: a smaller request succeeds.
	if _, err := s.Map(PageSize, 0); err != nil {
		t.Fatalf("after rejection: %v", err)
	}
	if got := s.Quota(); got != 4*PageSize {
		t.Errorf("Quota() = %d, want %d", got, 4*PageSize)
	}
	// Unmapping frees quota.
	base := s.MustMap(PageSize, 0)
	if _, err := s.Map(PageSize, 0); !errors.Is(err, ErrNoMemory) {
		t.Fatal("expected quota exhaustion")
	}
	if err := s.Unmap(base); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Map(PageSize, 0); err != nil {
		t.Fatalf("after unmap: %v", err)
	}
	// Lifting the quota removes the cap.
	s.SetQuota(0)
	if _, err := s.Map(64*PageSize, 0); err != nil {
		t.Fatalf("after lifting quota: %v", err)
	}
}

func TestMustMapPanicsOnQuota(t *testing.T) {
	s := NewSpace()
	s.SetQuota(PageSize)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MustMap did not panic over quota")
		}
		if err, ok := r.(error); !ok || !errors.Is(err, ErrNoMemory) {
			t.Fatalf("panic value %v does not wrap ErrNoMemory", r)
		}
	}()
	s.MustMap(2*PageSize, 0)
}
