package mem

// Persist tracker: the durable-memory layer's view of the space.
//
// internal/pmem models the whole simulated address space as persistent
// memory. To price flush/fence traffic and replay a crash it needs two
// streams the other observers do not: every raw word store (to track
// dirty cache lines) and every region unmap (to drop durable state for
// memory returned to the OS). It also needs the allocator-block
// lifecycle, which it receives through the same NoteAlloc/NoteFree/
// NoteReuse fan-out as the sanitizer shadow map and the heap watcher.
//
// Like those observers, a tracker is pure metadata: it must never touch
// simulated memory through a thread handle and never advance virtual
// time from these callbacks (pricing happens at the explicit
// Flush/Fence/journal call sites), so a run with a tracker attached but
// no flushes issued is cycle-identical to an untracked one.

// PersistTracker observes raw stores, unmaps and the allocator-block
// lifecycle for the durable-memory layer. Implementations are driven
// only from simulated threads, which the virtual-time engine
// serializes, so they need no internal locking.
type PersistTracker interface {
	HeapWatcher
	// OnStore reports a word store (or successful compare-and-swap) at
	// address a, after the value hit volatile memory.
	OnStore(a Addr)
	// OnUnmap reports that the region [base, base+size) was returned to
	// the simulated OS; durable state covering it is gone.
	OnUnmap(base Addr, size uint64)
}

// SetPersistTracker attaches t (nil detaches). Set before the space is
// shared across simulated threads.
func (s *Space) SetPersistTracker(t PersistTracker) { s.ptrack = t }

// PersistTrackerAttached returns the attached tracker, or nil.
func (s *Space) PersistTrackerAttached() PersistTracker { return s.ptrack }
