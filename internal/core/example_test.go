package core_test

import (
	"fmt"

	_ "repro/internal/alloc/glibc"
	_ "repro/internal/alloc/hoard"
	_ "repro/internal/alloc/tbb"
	_ "repro/internal/alloc/tcmalloc"

	"repro/internal/core"
	"repro/internal/stm"
	"repro/internal/vtime"
)

// The canonical usage: build a system, run transactions on several
// logical threads, inspect the result. Runs are deterministic, so the
// output is exact.
func Example() {
	sys := core.MustNewSystem(core.Options{Allocator: "tcmalloc", Threads: 4})
	counter := sys.Space.MustMap(4096, 0)
	sys.Run(func(th *vtime.Thread) {
		for i := 0; i < 100; i++ {
			sys.Atomic(th, func(tx *stm.Tx) {
				tx.Store(counter, tx.Load(counter)+1)
			})
		}
	})
	fmt.Println("counter:", sys.Space.Load(counter))
	fmt.Println("commits:", sys.Report().Tx.Commits)
	// Output:
	// counter: 400
	// commits: 400
}

// Swapping the allocator is the paper's LD_PRELOAD experiment: same
// program, different placement and synchronization behaviour.
func Example_swappingAllocators() {
	for _, name := range []string{"glibc", "tbb"} {
		sys := core.MustNewSystem(core.Options{Allocator: name, Threads: 1})
		var first, second uint64
		sys.Seq(func(th *vtime.Thread) {
			sys.Atomic(th, func(tx *stm.Tx) {
				first = uint64(tx.Malloc(16))
				second = uint64(tx.Malloc(16))
			})
		})
		fmt.Printf("%s: consecutive 16-byte blocks %d bytes apart\n", name, second-first)
	}
	// Output:
	// glibc: consecutive 16-byte blocks 32 bytes apart
	// tbb: consecutive 16-byte blocks 16 bytes apart
}

// Transactional allocation is undone on abort: the system allocator
// sees a free for every allocation made by a rolled-back transaction.
func Example_transactionalAllocation() {
	sys := core.MustNewSystem(core.Options{Allocator: "tbb", Threads: 1})
	tries := 0
	sys.Seq(func(th *vtime.Thread) {
		sys.Atomic(th, func(tx *stm.Tx) {
			tries++
			tx.Malloc(64)
			if tries == 1 {
				tx.Restart()
			}
		})
	})
	st := sys.Allocator.Stats()
	fmt.Printf("mallocs=%d frees=%d\n", st.Mallocs, st.Frees)
	// Output:
	// mallocs=2 frees=1
}
