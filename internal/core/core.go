// Package core assembles the repository's subsystems into one
// ready-to-use transactional memory system with a pluggable dynamic
// memory allocator — the configuration under study in Baldassin, Borin
// and Araujo, "Performance Implications of Dynamic Memory Allocators on
// Transactional Memory Systems" (PPoPP 2015).
//
// A System owns a simulated address space, a virtual-time multicore
// engine with a cache model, one of the four allocator models (glibc,
// hoard, tbb, tcmalloc) and a TinySTM-style word-based STM whose
// ownership-record table is addressed with the paper's shift/modulo
// mapping. Swapping the allocator — the paper's LD_PRELOAD experiment —
// is changing one string in the Options.
//
//	sys, _ := core.NewSystem(core.Options{Allocator: "tcmalloc", Threads: 8})
//	counter := sys.Space.MustMap(4096, 0)
//	sys.Run(func(th *vtime.Thread) {
//	    for i := 0; i < 1000; i++ {
//	        sys.Atomic(th, func(tx *stm.Tx) {
//	            tx.Store(counter, tx.Load(counter)+1)
//	        })
//	    }
//	})
//	fmt.Println(sys.Space.Load(counter), sys.Report().Tx.Aborts)
package core

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/cachesim"
	"repro/internal/mem"
	"repro/internal/stm"
	"repro/internal/vtime"
)

// Options configures a System. The zero value of each field selects the
// paper's setup.
type Options struct {
	// Allocator is one of alloc.Names(): "glibc", "hoard", "tbb",
	// "tcmalloc". Default "glibc" (the Linux system allocator).
	Allocator string
	// Threads is the number of logical threads (default 1, max 8 to
	// match the modelled machine).
	Threads int
	// Shift is the ORT mapping shift amount (default 5: 32-byte
	// stripes, the paper's TinySTM default).
	Shift uint
	// OrtBits is log2 of the ORT size (default 20).
	OrtBits uint
	// Design selects the STM algorithm variant (default the paper's
	// encounter-time-locking write-back).
	Design stm.Design
	// CacheTxObjects enables the STM-level transactional object cache
	// studied in the paper's §6.2.
	CacheTxObjects bool
	// DisableCacheModel turns off the cache hierarchy (all accesses
	// cost an L1 hit); timing fidelity drops, speed rises.
	DisableCacheModel bool
	// Quantum overrides the engine's scheduling quantum in cycles.
	Quantum uint64
}

// System is one assembled transactional-memory machine.
type System struct {
	Space     *mem.Space
	Engine    *vtime.Engine
	Cache     *cachesim.Hierarchy // nil when DisableCacheModel
	Allocator alloc.Allocator
	STM       *stm.STM
	Threads   int
}

// Report bundles the statistics of a run.
type Report struct {
	Cycles  uint64  // largest thread clock (virtual execution time)
	Seconds float64 // Cycles at the modelled 2 GHz
	Tx      stm.TxStats
	Alloc   alloc.Stats
	Cache   cachesim.CoreStats
}

// NewSystem builds a System.
func NewSystem(opts Options) (*System, error) {
	if opts.Allocator == "" {
		opts.Allocator = "glibc"
	}
	if opts.Threads == 0 {
		opts.Threads = 1
	}
	if opts.Threads < 0 || opts.Threads > cachesim.DefaultCores {
		return nil, fmt.Errorf("core: threads must be 1..%d, got %d", cachesim.DefaultCores, opts.Threads)
	}
	space := mem.NewSpace()
	allocator, err := alloc.New(opts.Allocator, space, opts.Threads)
	if err != nil {
		return nil, err
	}
	var cache *cachesim.Hierarchy
	if !opts.DisableCacheModel {
		cache = cachesim.New(cachesim.DefaultCores)
	}
	engine := vtime.NewEngine(space, opts.Threads, vtime.Config{Cache: cache, Quantum: opts.Quantum})
	st := stm.New(space, stm.Config{
		Shift:          opts.Shift,
		OrtBits:        opts.OrtBits,
		Design:         opts.Design,
		Allocator:      allocator,
		CacheTxObjects: opts.CacheTxObjects,
	})
	return &System{
		Space:     space,
		Engine:    engine,
		Cache:     cache,
		Allocator: allocator,
		STM:       st,
		Threads:   opts.Threads,
	}, nil
}

// MustNewSystem is NewSystem panicking on error (examples, tests).
func MustNewSystem(opts Options) *System {
	s, err := NewSystem(opts)
	if err != nil {
		panic(err)
	}
	return s
}

// Run executes fn on every logical thread under virtual-time
// scheduling and returns the per-thread finish clocks.
func (s *System) Run(fn func(th *vtime.Thread)) []uint64 {
	return s.Engine.Run(fn)
}

// Seq runs fn on thread 0 only (a sequential phase).
func (s *System) Seq(fn func(th *vtime.Thread)) {
	s.Engine.Run(func(th *vtime.Thread) {
		if th.ID() == 0 {
			fn(th)
		}
	})
}

// Atomic executes fn transactionally on th with SUICIDE retry.
func (s *System) Atomic(th *vtime.Thread, fn func(tx *stm.Tx)) {
	s.STM.Atomic(th, fn)
}

// Report collects the current statistics.
func (s *System) Report() Report {
	r := Report{
		Cycles:  s.Engine.MaxClock(),
		Seconds: vtime.Seconds(s.Engine.MaxClock()),
		Tx:      s.STM.Stats(),
		Alloc:   s.Allocator.Stats(),
	}
	if s.Cache != nil {
		r.Cache = s.Cache.TotalStats()
	}
	return r
}

// ResetClocks zeroes the engine clocks (to time a phase in isolation).
func (s *System) ResetClocks() { s.Engine.ResetClocks() }
