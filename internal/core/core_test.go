package core

import (
	"testing"

	_ "repro/internal/alloc/glibc"
	_ "repro/internal/alloc/hoard"
	_ "repro/internal/alloc/tbb"
	_ "repro/internal/alloc/tcmalloc"

	"repro/internal/mem"
	"repro/internal/stm"
	"repro/internal/vtime"
)

func TestQuickstartCounter(t *testing.T) {
	for _, name := range []string{"glibc", "hoard", "tbb", "tcmalloc"} {
		sys := MustNewSystem(Options{Allocator: name, Threads: 4})
		counter := sys.Space.MustMap(4096, 0)
		sys.Run(func(th *vtime.Thread) {
			for i := 0; i < 100; i++ {
				sys.Atomic(th, func(tx *stm.Tx) {
					tx.Store(counter, tx.Load(counter)+1)
				})
			}
		})
		if got := sys.Space.Load(counter); got != 400 {
			t.Errorf("%s: counter = %d, want 400", name, got)
		}
		r := sys.Report()
		if r.Cycles == 0 || r.Tx.Commits != 400 {
			t.Errorf("%s: report %+v", name, r)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := NewSystem(Options{Allocator: "bogus"}); err == nil {
		t.Error("unknown allocator accepted")
	}
	if _, err := NewSystem(Options{Threads: 99}); err == nil {
		t.Error("99 threads accepted")
	}
	if sys, err := NewSystem(Options{}); err != nil || sys.Allocator.Name() != "glibc" {
		t.Errorf("defaults broken: %v", err)
	}
}

func TestDisableCacheModel(t *testing.T) {
	sys := MustNewSystem(Options{Allocator: "tbb", Threads: 2, DisableCacheModel: true})
	if sys.Cache != nil {
		t.Fatal("cache model present despite DisableCacheModel")
	}
	a := sys.Space.MustMap(4096, 0)
	sys.Run(func(th *vtime.Thread) {
		sys.Atomic(th, func(tx *stm.Tx) { tx.Store(a, tx.Load(a)+1) })
	})
	if sys.Space.Load(a) != 2 {
		t.Error("system unusable without cache model")
	}
}

func TestTransactionalMallocThroughSystem(t *testing.T) {
	sys := MustNewSystem(Options{Allocator: "tcmalloc", Threads: 2})
	head := sys.Space.MustMap(4096, 0)
	sys.Run(func(th *vtime.Thread) {
		for i := 0; i < 50; i++ {
			sys.Atomic(th, func(tx *stm.Tx) {
				n := tx.Malloc(16)
				tx.Store(n, uint64(th.ID())<<32|uint64(i))
				tx.Store(n+8, tx.Load(head))
				tx.Store(head, uint64(n))
			})
		}
	})
	// Walk the list.
	count := 0
	for cur := mem.Addr(sys.Space.Load(head)); cur != 0; cur = mem.Addr(sys.Space.Load(cur + 8)) {
		count++
	}
	if count != 100 {
		t.Errorf("list has %d nodes, want 100", count)
	}
	if st := sys.Allocator.Stats(); st.Mallocs < 100 {
		t.Errorf("allocator saw %d mallocs", st.Mallocs)
	}
}
