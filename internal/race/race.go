// Package race implements a FastTrack-style vector-clock
// happens-before checker for the simulated transactional-memory
// system.
//
// The checker consumes three event streams, all raised from simulated
// threads that the virtual-time engine serializes (so it needs no
// locking and its output is deterministic for a fixed seed):
//
//   - scheduler/memory events from internal/vtime (raw word loads and
//     stores outside any transaction, plus the run barrier at the start
//     and end of every Engine.Run),
//   - STM events from internal/stm (transaction begin/extend with the
//     snapshot version, speculative accesses, commit with the publish
//     version, abort, committed frees, quarantine release, and the
//     durable redo-log milestones), and
//   - allocator block-lifecycle events through the mem.HeapWatcher
//     seam (malloc, free, transaction-cache reuse).
//
// Synchronization model. Each simulated thread carries a vector clock
// over logical per-thread counters (not virtual time — virtual clocks
// advance independently per thread and carry no ordering). A thread's
// own counter increments at transaction begin, transaction end, and at
// run barriers; raw accesses stamp the current counter without
// incrementing. Happens-before edges are created by:
//
//   - commit/begin: a committing transaction publishes its vector
//     clock under its commit version; a later transaction joins the
//     cumulative published clock of every commit at or below its
//     snapshot (snapshot validation makes this a real ordering).
//     Snapshot extension re-joins at the new snapshot.
//   - quarantine release: the reclaiming thread joins every thread's
//     last transaction-end clock before handing quarantined blocks
//     back to the allocator (reclaim requires every active snapshot to
//     have advanced past the free).
//   - free→malloc: reusing a block's address joins the freeing
//     thread's clock at free time into the allocating thread.
//   - run barrier: Engine.Run starts and ends with all threads
//     quiesced; every thread joins every other.
//   - phase barrier: vtime.Barrier.Wait releases the arriving thread's
//     clock into the barrier and acquires every arrival's clock on
//     departure — the all-to-all edge the phased STAMP ports (kmeans,
//     ssca2, genome) order their raw phases with.
//
// Transactional accesses are buffered on the transaction and flushed
// into the per-word state only at commit, with the committer's clock;
// an abort discards them. Zombie and aborted transactions therefore
// never produce findings. Only mixed-class pairs are checked — a
// transactional access against a raw access — because the STM already
// serializes transactions against each other and raw/raw ordering is
// out of scope. Raw accesses performed while the thread is inside a
// transaction (ORT probes, version-clock reads, write-back, allocator
// metadata updates from a transactional malloc) are not raw in this
// sense and are ignored; the buffered transactional accesses represent
// them.
//
// Word state is tracked only for words inside allocator-block user
// extents, so allocator metadata held outside the user area (glibc's
// in-band chunk headers and free-list links live at user_base-16 and
// below) never generates word noise. Metadata hazards are instead
// detected at block granularity: a committing transaction that touched
// a block the allocator has reclaimed — where the free is not ordered
// before the transaction — is exactly the paper's in-band-header race,
// reported as a metadata finding without needing the corruption to
// manifest.
//
// Violation taxonomy (one Finding per detection, counted per class):
//
//   - publication: a raw write unordered with a transactional read of
//     the same word (the object was published into transactions
//     without a barrier).
//   - privatization: a transactional write unordered with a raw access
//     of the same word (the object was privatized out of transactions
//     while still transactionally live).
//   - mixed: unordered transactional/raw write-write on one word.
//   - metadata: a committed transactional access to a block the
//     allocator had reclaimed, unordered with the free.
//   - quarantine-bypass: a block reissued by the allocator while still
//     quarantined (freed transactionally but not yet released).
//   - durable-ordering: a durable store made visible before its redo
//     log committed (store-before-fence).
//
// The checker is a pure observer: it never touches simulated memory,
// never advances virtual time, and never changes scheduling, so a
// checked run is byte-identical to an unchecked one apart from the
// race block in its run record.
package race

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/obs"
)

// Violation classes, in the order they appear in obs.RaceInfo.
const (
	KindPublication      = "publication"
	KindPrivatization    = "privatization"
	KindMixed            = "mixed"
	KindMetadata         = "metadata"
	KindQuarantineBypass = "quarantine-bypass"
	KindDurableOrdering  = "durable-ordering"
)

// maxFindings bounds the retained exemplars; per-class counters keep
// counting past it.
const maxFindings = 32

// compactAt bounds the published-release list: past this length,
// entries below every live snapshot fold into a single floor entry.
const compactAt = 4096

// Finding is one detected violation.
type Finding struct {
	Kind  string   // one of the Kind constants
	Addr  mem.Addr // word (word-level classes) or block base (block-level)
	Tid   int      // thread whose event completed the race
	Other int      // thread on the earlier side, -1 if unattributed
	What  string   // rendered detail
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %#x: %s", f.Kind, uint64(f.Addr), f.What)
}

// epoch is one component of a vector clock: thread tid at count clk.
// clk==0 means unset.
type epoch struct {
	tid int
	clk uint64
}

func (e epoch) set() bool { return e.clk != 0 }

// readset is a FastTrack read record: a single epoch while reads stay
// totally ordered, promoted to a full vector on the first concurrent
// pair.
type readset struct {
	e  epoch
	vc []uint64
}

func (r *readset) add(tid int, clk uint64, cur []uint64) {
	if r.vc != nil {
		if clk > r.vc[tid] {
			r.vc[tid] = clk
		}
		return
	}
	if !r.e.set() || r.e.tid == tid || r.e.clk <= cur[r.e.tid] {
		r.e = epoch{tid: tid, clk: clk}
		return
	}
	r.vc = make([]uint64, len(cur))
	r.vc[r.e.tid] = r.e.clk
	r.vc[tid] = clk
}

// before reports whether every recorded read is ordered before cur;
// when not, it returns one offending thread.
func (r *readset) before(cur []uint64) (bool, int) {
	if r.vc != nil {
		for i, c := range r.vc {
			if c > cur[i] {
				return false, i
			}
		}
		return true, -1
	}
	if r.e.set() && r.e.clk > cur[r.e.tid] {
		return false, r.e.tid
	}
	return true, -1
}

// word is the per-word access history: last committed transactional
// write, last raw write, and read records per class.
type word struct {
	txW  epoch
	rawW epoch
	txR  readset
	rawR readset
}

// Block lifecycle states.
const (
	blockLive       = iota // handed out, owned by the application
	blockTxFreed           // freed by a committed transaction, quarantined
	blockAllocFreed        // returned to the allocator (raw free or reclaim)
)

// block tracks one allocator block's extent and lifecycle.
type block struct {
	base, end  mem.Addr
	state      int
	expectNote bool     // a committed-free notification is still due
	freeTid    int      // thread that returned it to the allocator
	freeClk    uint64   // that thread's counter at the free (0: pre-history)
	freeVC     []uint64 // freeing thread's clock, for the free→malloc join
}

// release is one published commit: version and the cumulative joined
// clock of every commit up to it.
type release struct {
	ver uint64
	cum []uint64
}

// pendAccess is one buffered transactional access.
type pendAccess struct {
	addr  mem.Addr
	write bool
}

// Checker is the happens-before checker. Construct with New, drive it
// from one simulated run, then read Findings/Info. It implements
// vtime.RaceObserver, stm.RaceHook and mem.HeapWatcher structurally.
type Checker struct {
	n  int        // thread count
	vc [][]uint64 // per-thread vector clock

	inTx         []bool
	snap         []uint64 // current snapshot while in a transaction
	pending      [][]pendAccess
	lastEnd      [][]uint64 // clock published at each transaction end / barrier
	logCommitted []bool     // durable redo log committed for the open transaction

	releases []release
	relFloor []uint64         // scratch for compaction
	syncs    map[any][]uint64 // per sync object: join of every released clock

	wordOwner map[mem.Addr]*block
	words     map[mem.Addr]*word
	blocks    map[mem.Addr]*block

	findings []Finding
	counts   map[string]int
	total    int
	events   uint64
	nWords   uint64   // cumulative words mapped into tracking
	nBlocks  uint64   // cumulative blocks tracked
	metaSeen []*block // per-commit metadata dedup scratch
}

// New returns a checker for an engine with n simulated threads.
func New(n int) *Checker {
	if n < 1 {
		n = 1
	}
	c := &Checker{
		n:            n,
		vc:           make([][]uint64, n),
		inTx:         make([]bool, n),
		snap:         make([]uint64, n),
		pending:      make([][]pendAccess, n),
		lastEnd:      make([][]uint64, n),
		logCommitted: make([]bool, n),
		syncs:        map[any][]uint64{},
		wordOwner:    map[mem.Addr]*block{},
		words:        map[mem.Addr]*word{},
		blocks:       map[mem.Addr]*block{},
		counts:       map[string]int{},
	}
	for i := range c.vc {
		c.vc[i] = make([]uint64, n)
		c.vc[i][i] = 1
		c.lastEnd[i] = make([]uint64, n)
	}
	return c
}

func (c *Checker) valid(tid int) bool { return tid >= 0 && tid < c.n }

func (c *Checker) report(kind string, addr mem.Addr, tid, other int, format string, args ...any) {
	c.counts[kind]++
	c.total++
	if len(c.findings) < maxFindings {
		c.findings = append(c.findings, Finding{
			Kind: kind, Addr: addr, Tid: tid, Other: other,
			What: fmt.Sprintf(format, args...),
		})
	}
}

func join(dst, src []uint64) {
	for i, v := range src {
		if v > dst[i] {
			dst[i] = v
		}
	}
}

// acquire joins the cumulative release clock of the largest published
// version at or below snapshot.
func (c *Checker) acquire(tid int, snapshot uint64) {
	lo, hi := 0, len(c.releases)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.releases[mid].ver <= snapshot {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo > 0 {
		join(c.vc[tid], c.releases[lo-1].cum)
	}
}

// publish appends a release entry (cumulative clocks are monotone, so
// each entry's clock subsumes every earlier one), keeping versions
// strictly increasing and folding entries no live snapshot can reach.
func (c *Checker) publish(ver uint64, vcommit []uint64) {
	if n := len(c.releases); n > 0 && c.releases[n-1].ver >= ver {
		// Sharded clocks can publish non-monotone versions; folding
		// into the newest entry only coarsens (adds real edges).
		join(c.releases[n-1].cum, vcommit)
		return
	}
	cum := make([]uint64, c.n)
	if n := len(c.releases); n > 0 {
		copy(cum, c.releases[n-1].cum)
	}
	join(cum, vcommit)
	c.releases = append(c.releases, release{ver: ver, cum: cum})
	if len(c.releases) >= compactAt {
		c.compactReleases()
	}
}

func (c *Checker) compactReleases() {
	min := ^uint64(0)
	for t := 0; t < c.n; t++ {
		if c.inTx[t] && c.snap[t] < min {
			min = c.snap[t]
		}
	}
	// Keep the floor entry (largest ver <= every live snapshot) and
	// everything after it; all live and future acquires resolve
	// identically against the shortened list.
	keep := 0
	for keep+1 < len(c.releases) && c.releases[keep+1].ver <= min {
		keep++
	}
	if keep > 0 {
		c.releases = append(c.releases[:0], c.releases[keep:]...)
	}
}

// ---- vtime.RaceObserver ----

// OnAccess records a raw (non-transactional) word access. Accesses by
// a thread that is inside a transaction belong to the STM machinery
// and are ignored; the buffered transactional accesses stand for them.
func (c *Checker) OnAccess(tid int, a mem.Addr, write bool, clock uint64) {
	if !c.valid(tid) || c.inTx[tid] {
		return
	}
	c.events++
	a &^= mem.WordSize - 1
	if c.wordOwner[a] == nil {
		return
	}
	w := c.words[a]
	if w == nil {
		w = &word{}
		c.words[a] = w
	}
	myvc := c.vc[tid]
	if write {
		if w.txW.set() && w.txW.clk > myvc[w.txW.tid] {
			c.report(KindMixed, a, tid, w.txW.tid,
				"raw write by t%d unordered with tx write by t%d", tid, w.txW.tid)
		}
		if ok, other := w.txR.before(myvc); !ok {
			c.report(KindPublication, a, tid, other,
				"raw write by t%d unordered with tx read by t%d", tid, other)
		}
		w.rawW = epoch{tid: tid, clk: myvc[tid]}
	} else {
		if w.txW.set() && w.txW.clk > myvc[w.txW.tid] {
			c.report(KindPrivatization, a, tid, w.txW.tid,
				"raw read by t%d unordered with tx write by t%d", tid, w.txW.tid)
		}
		w.rawR.add(tid, myvc[tid], myvc)
	}
}

// Barrier records a full quiesce point: every thread joins every
// other. The engine raises it when a Run starts and again when it
// returns.
func (c *Checker) Barrier(clock uint64) {
	c.events++
	all := make([]uint64, c.n)
	for t := 0; t < c.n; t++ {
		join(all, c.vc[t])
	}
	for t := 0; t < c.n; t++ {
		copy(c.vc[t], all)
		c.vc[t][t]++
		copy(c.lastEnd[t], all)
	}
}

// SyncRelease folds the thread's clock into a synchronization object
// (a phase barrier): anything a later acquirer does is ordered after
// everything the releaser did up to here. The releaser's counter bumps
// so its *subsequent* work stays outside the released clock.
func (c *Checker) SyncRelease(tid int, obj any) {
	if !c.valid(tid) {
		return
	}
	c.events++
	s := c.syncs[obj]
	if s == nil {
		s = make([]uint64, c.n)
		c.syncs[obj] = s
	}
	join(s, c.vc[tid])
	copy(c.lastEnd[tid], c.vc[tid])
	c.vc[tid][tid]++
}

// SyncAcquire joins the accumulated released clocks of a
// synchronization object into the thread.
func (c *Checker) SyncAcquire(tid int, obj any) {
	if !c.valid(tid) {
		return
	}
	c.events++
	if s := c.syncs[obj]; s != nil {
		join(c.vc[tid], s)
	}
}

// ---- stm.RaceHook ----

// TxBegin opens a transaction at the given snapshot version.
func (c *Checker) TxBegin(tid int, snapshot uint64) {
	if !c.valid(tid) {
		return
	}
	c.events++
	c.acquire(tid, snapshot)
	c.vc[tid][tid]++
	c.inTx[tid] = true
	c.snap[tid] = snapshot
	c.pending[tid] = c.pending[tid][:0]
	c.logCommitted[tid] = false
}

// TxExtend re-joins after a successful snapshot extension.
func (c *Checker) TxExtend(tid int, snapshot uint64) {
	if !c.valid(tid) || !c.inTx[tid] {
		return
	}
	c.events++
	c.acquire(tid, snapshot)
	c.snap[tid] = snapshot
}

// TxAccess buffers one speculative access; it reaches the word state
// only if the transaction commits.
func (c *Checker) TxAccess(tid int, a mem.Addr, write bool) {
	if !c.valid(tid) || !c.inTx[tid] {
		return
	}
	c.events++
	c.pending[tid] = append(c.pending[tid], pendAccess{addr: a &^ (mem.WordSize - 1), write: write})
}

// TxCommit flushes the transaction's buffered accesses with the
// committer's clock, publishes the clock under ver (0 for read-only
// commits, which publish nothing), and closes the epoch.
func (c *Checker) TxCommit(tid int, ver uint64) {
	if !c.valid(tid) || !c.inTx[tid] {
		return
	}
	c.events++
	myvc := c.vc[tid]
	c.metaSeen = c.metaSeen[:0]
	for _, p := range c.pending[tid] {
		b := c.wordOwner[p.addr]
		if b == nil {
			continue
		}
		if b.state == blockAllocFreed && b.freeClk > myvc[b.freeTid] {
			dup := false
			for _, s := range c.metaSeen {
				if s == b {
					dup = true
					break
				}
			}
			if !dup {
				c.metaSeen = append(c.metaSeen, b)
				c.report(KindMetadata, b.base, tid, b.freeTid,
					"tx by t%d touched block %#x after the allocator reclaimed it (free by t%d unordered); in-band metadata race",
					tid, uint64(b.base), b.freeTid)
			}
		}
		w := c.words[p.addr]
		if w == nil {
			w = &word{}
			c.words[p.addr] = w
		}
		if p.write {
			if w.rawW.set() && w.rawW.clk > myvc[w.rawW.tid] {
				c.report(KindMixed, p.addr, tid, w.rawW.tid,
					"tx write by t%d unordered with raw write by t%d", tid, w.rawW.tid)
			}
			if ok, other := w.rawR.before(myvc); !ok {
				c.report(KindPrivatization, p.addr, tid, other,
					"tx write by t%d unordered with raw read by t%d", tid, other)
			}
			w.txW = epoch{tid: tid, clk: myvc[tid]}
		} else {
			if w.rawW.set() && w.rawW.clk > myvc[w.rawW.tid] {
				c.report(KindPublication, p.addr, tid, w.rawW.tid,
					"tx read by t%d unordered with raw write by t%d", tid, w.rawW.tid)
			}
			w.txR.add(tid, myvc[tid], myvc)
		}
	}
	c.pending[tid] = c.pending[tid][:0]
	if ver != 0 {
		c.publish(ver, myvc)
	}
	copy(c.lastEnd[tid], myvc)
	c.vc[tid][tid]++
	c.inTx[tid] = false
	c.logCommitted[tid] = false
}

// TxAbort discards the transaction's buffered accesses.
func (c *Checker) TxAbort(tid int) {
	if !c.valid(tid) {
		return
	}
	c.events++
	c.pending[tid] = c.pending[tid][:0]
	c.inTx[tid] = false
	c.logCommitted[tid] = false
}

// TxFreeCommitted marks a block freed by a committed transaction: it
// enters quarantine, and the allocator-level free notification that
// accompanies the commit is expected and consumed silently.
func (c *Checker) TxFreeCommitted(tid int, base mem.Addr) {
	c.events++
	b := c.blocks[base]
	if b == nil || b.state != blockLive {
		return
	}
	b.state = blockTxFreed
	b.expectNote = true
}

// QuarantineRelease records the reclaim ordering edge: releasing
// quarantined blocks requires every snapshot to have advanced past the
// frees, so the reclaimer joins every thread's last transaction end.
func (c *Checker) QuarantineRelease(tid int) {
	if !c.valid(tid) {
		return
	}
	c.events++
	for t := 0; t < c.n; t++ {
		join(c.vc[tid], c.lastEnd[t])
	}
}

// DurLogCommitted marks the open transaction's redo log durable.
func (c *Checker) DurLogCommitted(tid int) {
	if !c.valid(tid) {
		return
	}
	c.events++
	c.logCommitted[tid] = true
}

// DurStore checks the durable-ordering invariant: no store may become
// visible in the home locations before the redo log that re-creates it
// is durable.
func (c *Checker) DurStore(tid int, a mem.Addr) {
	if !c.valid(tid) {
		return
	}
	c.events++
	if !c.logCommitted[tid] {
		c.report(KindDurableOrdering, a, tid, -1,
			"durable store by t%d visible before its redo log committed", tid)
	}
}

// DurApply marks the log applied and truncated.
func (c *Checker) DurApply(tid int) {
	if !c.valid(tid) {
		return
	}
	c.events++
	c.logCommitted[tid] = false
}

// ---- mem.HeapWatcher ----

// OnHeapAlloc tracks a handed-out block: its user extent becomes the
// tracked word set, any stale history under it is wiped, and reusing a
// freed address joins the free's clock (the allocator's free-list is a
// real ordering edge).
func (c *Checker) OnHeapAlloc(allocator string, base mem.Addr, req, usable uint64, tid int, clock uint64) {
	c.events++
	if old := c.blocks[base]; old != nil {
		switch old.state {
		case blockTxFreed:
			c.report(KindQuarantineBypass, base, tid, old.freeTid,
				"block %#x reissued by %s while still quarantined", uint64(base), allocator)
		case blockAllocFreed:
			if c.valid(tid) && old.freeVC != nil {
				join(c.vc[tid], old.freeVC)
			}
		}
	}
	b := &block{base: base, end: base + mem.Addr(usable), state: blockLive, freeTid: -1}
	for a := base &^ (mem.WordSize - 1); a < b.end; a += mem.WordSize {
		if c.wordOwner[a] == nil {
			c.nWords++
		}
		c.wordOwner[a] = b
		delete(c.words, a)
	}
	c.blocks[base] = b
	c.nBlocks++
}

// OnHeapFree tracks a block's return to the allocator. The free that
// accompanies a committed transactional free is consumed silently (the
// block stays quarantined); the later quarantine-release free — or a
// raw free that never went through the STM — moves the block to
// allocator-owned and records the freeing clock.
func (c *Checker) OnHeapFree(base mem.Addr, tid int, clock uint64) {
	c.events++
	b := c.blocks[base]
	if b == nil {
		return
	}
	if b.expectNote {
		b.expectNote = false
		return
	}
	if b.state == blockAllocFreed {
		return
	}
	b.state = blockAllocFreed
	if c.valid(tid) {
		b.freeTid = tid
		b.freeClk = c.vc[tid][tid]
		b.freeVC = append([]uint64(nil), c.vc[tid]...)
	} else {
		b.freeTid = 0
		b.freeClk = 0 // pre-history: ordered before everything
	}
}

// OnHeapReuse tracks a block revived from a transaction-local cache:
// same extent, fresh history.
func (c *Checker) OnHeapReuse(base mem.Addr, tid int, clock uint64) {
	c.events++
	b := c.blocks[base]
	if b == nil {
		return
	}
	for a := b.base &^ (mem.WordSize - 1); a < b.end; a += mem.WordSize {
		delete(c.words, a)
	}
}

// ---- results ----

// Findings returns the retained exemplars in detection order.
func (c *Checker) Findings() []Finding { return c.findings }

// Count returns the total number of violations detected (all classes,
// past the retention cap).
func (c *Checker) Count() int { return c.total }

// Info renders the checker's verdict as a run-record block.
func (c *Checker) Info() *obs.RaceInfo {
	info := &obs.RaceInfo{
		Checked:          true,
		Findings:         c.total,
		Publication:      c.counts[KindPublication],
		Privatization:    c.counts[KindPrivatization],
		Mixed:            c.counts[KindMixed],
		Metadata:         c.counts[KindMetadata],
		QuarantineBypass: c.counts[KindQuarantineBypass],
		DurableOrdering:  c.counts[KindDurableOrdering],
		Words:            c.nWords,
		Blocks:           c.nBlocks,
		Events:           c.events,
	}
	if len(c.findings) > 0 {
		info.First = c.findings[0].String()
	}
	return info
}
