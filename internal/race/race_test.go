package race

import (
	"reflect"
	"testing"

	"repro/internal/mem"
	"repro/internal/stm"
	"repro/internal/vtime"
)

// The checker plugs into all three event seams structurally.
var (
	_ stm.RaceHook       = (*Checker)(nil)
	_ vtime.RaceObserver = (*Checker)(nil)
	_ mem.HeapWatcher    = (*Checker)(nil)
)

// The tests drive the checker through its hook surface directly: each
// scenario is the event trace a real run would deliver, reduced to the
// edges under test.

const base = mem.Addr(0x10000000)

func allocBlock(c *Checker, tid int) {
	c.OnHeapAlloc("test", base, 24, 24, tid, 0)
}

func kinds(c *Checker) []string {
	var out []string
	for _, f := range c.Findings() {
		out = append(out, f.Kind)
	}
	return out
}

func TestPublicationDetected(t *testing.T) {
	c := New(2)
	allocBlock(c, 0)
	c.OnAccess(0, base, true, 0) // t0 publishes without a barrier
	c.TxBegin(1, 0)
	c.TxAccess(1, base, false)
	c.TxCommit(1, 0)
	if got := kinds(c); !reflect.DeepEqual(got, []string{KindPublication}) {
		t.Fatalf("findings = %v, want [publication]", got)
	}
}

func TestPublicationOrderedClean(t *testing.T) {
	c := New(2)
	allocBlock(c, 0)
	c.OnAccess(0, base, true, 0)
	// t0 publishes through a committed transaction; t1's snapshot
	// covers it, so the raw initialization is ordered.
	c.TxBegin(0, 0)
	c.TxAccess(0, base+8, true)
	c.TxCommit(0, 10)
	c.TxBegin(1, 10)
	c.TxAccess(1, base, false)
	c.TxCommit(1, 0)
	if c.Count() != 0 {
		t.Fatalf("findings = %v, want none", c.Findings())
	}
}

func TestPrivatizationDetected(t *testing.T) {
	c := New(2)
	allocBlock(c, 0)
	c.TxBegin(0, 0)
	c.TxAccess(0, base, true)
	c.TxCommit(0, 5)
	c.OnAccess(1, base, false, 0) // t1 never synchronized with the commit
	if got := kinds(c); !reflect.DeepEqual(got, []string{KindPrivatization}) {
		t.Fatalf("findings = %v, want [privatization]", got)
	}
}

func TestMixedWriteWrite(t *testing.T) {
	c := New(2)
	allocBlock(c, 0)
	c.TxBegin(0, 0)
	c.TxAccess(0, base, true)
	c.TxCommit(0, 5)
	c.OnAccess(1, base, true, 0)
	if got := kinds(c); !reflect.DeepEqual(got, []string{KindMixed}) {
		t.Fatalf("findings = %v, want [mixed]", got)
	}
}

func TestAbortDiscardsAccesses(t *testing.T) {
	c := New(2)
	allocBlock(c, 0)
	c.TxBegin(0, 0)
	c.TxAccess(0, base, true)
	c.TxAbort(0)
	c.OnAccess(1, base, true, 0)
	c.OnAccess(1, base, false, 0)
	if c.Count() != 0 {
		t.Fatalf("aborted accesses produced findings: %v", c.Findings())
	}
}

func TestBarrierOrders(t *testing.T) {
	c := New(2)
	allocBlock(c, 0)
	c.OnAccess(0, base, true, 0)
	c.Barrier(0)
	c.TxBegin(1, 0)
	c.TxAccess(1, base, false)
	c.TxCommit(1, 0)
	if c.Count() != 0 {
		t.Fatalf("barrier-ordered access reported: %v", c.Findings())
	}
}

func TestInTxRawAccessesIgnored(t *testing.T) {
	c := New(2)
	allocBlock(c, 0)
	c.TxBegin(0, 0)
	c.TxAccess(0, base, true)
	c.TxCommit(0, 5)
	// ORT probes / write-back stores arrive as raw accesses while the
	// thread is inside a transaction; they must not count as raw.
	c.TxBegin(1, 0)
	c.OnAccess(1, base, true, 0)
	c.TxAbort(1)
	if c.Count() != 0 {
		t.Fatalf("in-tx raw access reported: %v", c.Findings())
	}
}

// TestMetadataRace is the seeded demo's shape: a block freed raw while
// another thread's transaction — whose snapshot predates the free —
// still touches it.
func TestMetadataRace(t *testing.T) {
	c := New(2)
	allocBlock(c, 0)
	c.TxBegin(0, 0)
	c.TxAccess(0, base, true)
	c.TxCommit(0, 3)
	c.OnHeapFree(base, 0, 0) // raw free, never went through the STM
	c.TxBegin(1, 3)          // snapshot covers the commit, not the free
	c.TxAccess(1, base, false)
	c.TxCommit(1, 0)
	if got := kinds(c); !reflect.DeepEqual(got, []string{KindMetadata}) {
		t.Fatalf("findings = %v, want [metadata]", got)
	}
}

func TestMetadataOrderedClean(t *testing.T) {
	c := New(2)
	allocBlock(c, 0)
	c.TxBegin(0, 0)
	c.TxAccess(0, base, true)
	c.TxCommit(0, 3)
	c.OnHeapFree(base, 0, 0)
	c.Barrier(0) // free ordered before the next phase
	c.TxBegin(1, 3)
	c.TxAccess(1, base, false)
	c.TxCommit(1, 0)
	if c.Count() != 0 {
		t.Fatalf("ordered free reported: %v", c.Findings())
	}
}

func TestQuarantineBypass(t *testing.T) {
	c := New(2)
	allocBlock(c, 0)
	c.TxFreeCommitted(0, base)
	c.OnHeapFree(base, 0, 0) // the commit's own free notification
	allocBlock(c, 1)         // reissued while still quarantined
	if got := kinds(c); !reflect.DeepEqual(got, []string{KindQuarantineBypass}) {
		t.Fatalf("findings = %v, want [quarantine-bypass]", got)
	}
}

// TestTxFreeReclaimClean walks the full legitimate lifecycle: tx free
// (with the zero-stores), quarantine, release by another thread, the
// allocator's raw metadata writes into the reclaimed block, and reuse.
func TestTxFreeReclaimClean(t *testing.T) {
	c := New(2)
	allocBlock(c, 0)
	c.TxBegin(0, 0)
	c.TxAccess(0, base, true) // payload write + free's zero-store
	c.TxCommit(0, 4)
	c.TxFreeCommitted(0, base)
	c.OnHeapFree(base, 0, 0) // commit's free notification (consumed)
	// t1 releases the quarantine and the allocator links the block
	// into a free list through the block's own words.
	c.QuarantineRelease(1)
	c.OnHeapFree(base, 1, 0)
	c.OnAccess(1, base, true, 0) // free-list link write, raw
	// t1 then reuses the address.
	allocBlock(c, 1)
	c.TxBegin(1, 4)
	c.TxAccess(1, base, true)
	c.TxCommit(1, 5)
	if c.Count() != 0 {
		t.Fatalf("legitimate reclaim lifecycle reported: %v", c.Findings())
	}
}

func TestDurableOrdering(t *testing.T) {
	c := New(1)
	c.TxBegin(0, 0)
	c.DurStore(0, base) // store visible before the log committed
	c.DurLogCommitted(0)
	c.DurStore(0, base+8) // ordered correctly
	c.DurApply(0)
	c.TxCommit(0, 2)
	if got := kinds(c); !reflect.DeepEqual(got, []string{KindDurableOrdering}) {
		t.Fatalf("findings = %v, want [durable-ordering]", got)
	}
}

func TestReadsetPromotion(t *testing.T) {
	c := New(3)
	allocBlock(c, 0)
	c.OnAccess(0, base, false, 0)
	c.OnAccess(1, base, false, 0) // concurrent with t0's read: promotes
	// t2 orders itself after t0 only, then tx-writes: the race is with
	// t1's read, which a single-epoch record would have lost.
	c.TxBegin(0, 0)
	c.TxCommit(0, 7)
	c.TxBegin(2, 7)
	c.TxAccess(2, base, true)
	c.TxCommit(2, 8)
	fs := c.Findings()
	if len(fs) != 1 || fs[0].Kind != KindPrivatization || fs[0].Other != 1 {
		t.Fatalf("findings = %v, want one privatization against t1", fs)
	}
}

func TestUntrackedWordsIgnored(t *testing.T) {
	c := New(2)
	c.OnAccess(0, 0x5000, true, 0)
	c.TxBegin(1, 0)
	c.TxAccess(1, 0x5000, false)
	c.TxCommit(1, 0)
	if c.Count() != 0 {
		t.Fatalf("untracked word reported: %v", c.Findings())
	}
}

func TestHeapReuseWipesHistory(t *testing.T) {
	c := New(2)
	allocBlock(c, 0)
	c.OnAccess(0, base, true, 0)
	c.OnHeapReuse(base, 1, 0) // tx-cache revival: fresh history
	c.TxBegin(1, 0)
	c.TxAccess(1, base, false)
	c.TxCommit(1, 0)
	if c.Count() != 0 {
		t.Fatalf("reuse kept stale history: %v", c.Findings())
	}
}

func TestReleaseCompaction(t *testing.T) {
	c := New(2)
	allocBlock(c, 0)
	c.OnAccess(0, base, true, 0)
	for v := uint64(1); v <= compactAt+16; v++ {
		c.TxBegin(0, v-1)
		c.TxCommit(0, v)
	}
	if len(c.releases) >= compactAt {
		t.Fatalf("release list not compacted: %d entries", len(c.releases))
	}
	// Acquire through the compacted floor still orders the history.
	c.TxBegin(1, compactAt+16)
	c.TxAccess(1, base, false)
	c.TxCommit(1, 0)
	if c.Count() != 0 {
		t.Fatalf("compacted acquire lost edges: %v", c.Findings())
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() *Checker {
		c := New(2)
		allocBlock(c, 0)
		c.OnAccess(0, base, true, 0)
		c.TxBegin(1, 0)
		c.TxAccess(1, base, false)
		c.TxCommit(1, 0)
		c.OnHeapFree(base, 0, 0)
		c.TxBegin(1, 0)
		c.TxAccess(1, base+8, false)
		c.TxCommit(1, 0)
		return c
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Info(), b.Info()) {
		t.Fatalf("replay diverged: %+v vs %+v", a.Info(), b.Info())
	}
	if !reflect.DeepEqual(a.Findings(), b.Findings()) {
		t.Fatalf("findings diverged: %v vs %v", a.Findings(), b.Findings())
	}
}

func TestInfoCounts(t *testing.T) {
	c := New(2)
	allocBlock(c, 0)
	c.OnAccess(0, base, true, 0)
	c.TxBegin(1, 0)
	c.TxAccess(1, base, false)
	c.TxCommit(1, 0)
	info := c.Info()
	if !info.Checked || info.Findings != 1 || info.Publication != 1 {
		t.Fatalf("info = %+v", info)
	}
	if info.Blocks != 1 || info.Words != 3 || info.Events == 0 {
		t.Fatalf("coverage counters: %+v", info)
	}
	if info.First == "" {
		t.Fatalf("First empty with findings present")
	}
}

func TestSyncBarrierOrders(t *testing.T) {
	// The phase-barrier edge: t0 commits a tx write, both threads pass
	// a vtime.Barrier-style release/acquire on the same object, then t1
	// reads raw. Ordered — no privatization finding.
	c := New(2)
	allocBlock(c, 0)
	c.TxBegin(0, 0)
	c.TxAccess(0, base, true)
	c.TxCommit(0, 10)
	obj := new(int)
	c.SyncRelease(0, obj)
	c.SyncRelease(1, obj)
	c.SyncAcquire(1, obj)
	c.SyncAcquire(0, obj)
	c.OnAccess(1, base, false, 0)
	if got := kinds(c); got != nil {
		t.Fatalf("findings = %v, want none (barrier orders the phases)", got)
	}
}

func TestSyncWithoutAcquireStillRaces(t *testing.T) {
	// Releasing into one object does not order accesses for a thread
	// that never acquires it (or acquires a different object).
	c := New(2)
	allocBlock(c, 0)
	c.TxBegin(0, 0)
	c.TxAccess(0, base, true)
	c.TxCommit(0, 10)
	c.SyncRelease(0, new(int))
	c.SyncAcquire(1, new(int)) // different object: no edge
	c.OnAccess(1, base, false, 0)
	if got := kinds(c); !reflect.DeepEqual(got, []string{KindPrivatization}) {
		t.Fatalf("findings = %v, want [privatization]", got)
	}
}

func TestSyncReleaseClosesEpoch(t *testing.T) {
	// Work a thread does *after* releasing is not covered by the
	// release: t0 releases, then commits a tx write; t1 acquires only
	// the release, so the later write stays unordered.
	c := New(2)
	allocBlock(c, 0)
	obj := new(int)
	c.SyncRelease(0, obj)
	c.TxBegin(0, 0)
	c.TxAccess(0, base, true)
	c.TxCommit(0, 10)
	c.SyncAcquire(1, obj)
	c.OnAccess(1, base, false, 0)
	if got := kinds(c); !reflect.DeepEqual(got, []string{KindPrivatization}) {
		t.Fatalf("findings = %v, want [privatization] (post-release work is unordered)", got)
	}
}
