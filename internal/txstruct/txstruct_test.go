package txstruct

import (
	"sort"
	"testing"
	"testing/quick"

	_ "repro/internal/alloc/tbb"

	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stm"
	"repro/internal/vtime"
)

type world struct {
	space *mem.Space
	s     *stm.STM
	th    *vtime.Thread
}

func newSoloWorld(t testing.TB) *world {
	t.Helper()
	space := mem.NewSpace()
	a := alloc.MustNew("tbb", space, 8)
	s := stm.New(space, stm.Config{Allocator: a})
	return &world{space: space, s: s, th: vtime.Solo(space, 0, nil)}
}

func (w *world) atomic(fn func(tx *stm.Tx)) { w.s.Atomic(w.th, fn) }

// --- List ---

func TestListBasic(t *testing.T) {
	w := newSoloWorld(t)
	var l *List
	w.atomic(func(tx *stm.Tx) { l = NewList(tx) })
	w.atomic(func(tx *stm.Tx) {
		for _, k := range []int64{5, 1, 9, 3, 7} {
			if !l.Insert(tx, k) {
				t.Errorf("Insert(%d) = false", k)
			}
		}
		if l.Insert(tx, 5) {
			t.Error("duplicate Insert(5) = true")
		}
		if !l.Contains(tx, 3) || l.Contains(tx, 4) {
			t.Error("Contains wrong")
		}
		if !l.Remove(tx, 3) || l.Remove(tx, 3) {
			t.Error("Remove wrong")
		}
		keys := l.Keys(tx)
		want := []int64{1, 5, 7, 9}
		if len(keys) != len(want) {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
		for i := range want {
			if keys[i] != want[i] {
				t.Fatalf("keys = %v, want %v (sorted)", keys, want)
			}
		}
	})
}

// Property: the list agrees with a map reference model under a random
// operation sequence.
func TestListMatchesModel(t *testing.T) {
	check := func(seed uint64) bool {
		w := newSoloWorld(t)
		var l *List
		w.atomic(func(tx *stm.Tx) { l = NewList(tx) })
		model := map[int64]bool{}
		rng := sim.NewRand(seed)
		ok := true
		for i := 0; i < 300 && ok; i++ {
			k := int64(rng.Intn(40))
			w.atomic(func(tx *stm.Tx) {
				switch rng.Intn(3) {
				case 0:
					if l.Insert(tx, k) == model[k] { // must be !model[k]
						ok = false
					}
					model[k] = true
				case 1:
					if l.Remove(tx, k) != model[k] {
						ok = false
					}
					delete(model, k)
				default:
					if l.Contains(tx, k) != model[k] {
						ok = false
					}
				}
			})
		}
		w.atomic(func(tx *stm.Tx) {
			if l.Len(tx) != len(model) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// --- HashSet ---

func TestHashSetBasic(t *testing.T) {
	w := newSoloWorld(t)
	var h *HashSet
	w.atomic(func(tx *stm.Tx) { h = NewHashSet(tx, 1024) })
	w.atomic(func(tx *stm.Tx) {
		for k := int64(0); k < 100; k++ {
			if !h.Insert(tx, k) {
				t.Fatalf("Insert(%d) failed", k)
			}
		}
		if h.Insert(tx, 50) {
			t.Error("duplicate insert succeeded")
		}
		if h.Len(tx) != 100 {
			t.Errorf("Len = %d, want 100", h.Len(tx))
		}
		for k := int64(0); k < 100; k += 2 {
			if !h.Remove(tx, k) {
				t.Fatalf("Remove(%d) failed", k)
			}
		}
		if h.Len(tx) != 50 {
			t.Errorf("Len = %d, want 50", h.Len(tx))
		}
		if h.Contains(tx, 2) || !h.Contains(tx, 3) {
			t.Error("Contains wrong after removals")
		}
	})
}

func TestHashSetCollisions(t *testing.T) {
	// 2 buckets force chains; semantics must survive collisions.
	w := newSoloWorld(t)
	var h *HashSet
	w.atomic(func(tx *stm.Tx) { h = NewHashSet(tx, 2) })
	w.atomic(func(tx *stm.Tx) {
		for k := int64(0); k < 64; k++ {
			h.Insert(tx, k)
		}
		for k := int64(0); k < 64; k++ {
			if !h.Contains(tx, k) {
				t.Fatalf("lost key %d in chain", k)
			}
		}
		for k := int64(0); k < 64; k++ {
			if !h.Remove(tx, k) {
				t.Fatalf("Remove(%d) failed", k)
			}
		}
		if h.Len(tx) != 0 {
			t.Errorf("Len = %d, want 0", h.Len(tx))
		}
	})
}

// --- RBTree ---

func TestRBTreeBasic(t *testing.T) {
	w := newSoloWorld(t)
	var tr *RBTree
	w.atomic(func(tx *stm.Tx) { tr = NewRBTree(tx) })
	w.atomic(func(tx *stm.Tx) {
		for _, k := range []int64{10, 5, 15, 3, 7, 12, 18, 1} {
			if !tr.Insert(tx, k, uint64(k*10)) {
				t.Fatalf("Insert(%d) failed", k)
			}
		}
		if tr.Insert(tx, 10, 0) {
			t.Error("duplicate insert succeeded")
		}
		if v, ok := tr.Get(tx, 7); !ok || v != 70 {
			t.Errorf("Get(7) = %d,%v", v, ok)
		}
		if _, p := tr.CheckInvariants(tx); p != "" {
			t.Fatalf("invariants: %s", p)
		}
		if !tr.Remove(tx, 5) || tr.Remove(tx, 5) {
			t.Error("Remove wrong")
		}
		if _, p := tr.CheckInvariants(tx); p != "" {
			t.Fatalf("invariants after delete: %s", p)
		}
	})
}

// Property: tree matches a model and keeps red-black invariants through
// random insert/delete sequences.
func TestRBTreeMatchesModelAndInvariants(t *testing.T) {
	check := func(seed uint64) bool {
		w := newSoloWorld(t)
		var tr *RBTree
		w.atomic(func(tx *stm.Tx) { tr = NewRBTree(tx) })
		model := map[int64]uint64{}
		rng := sim.NewRand(seed)
		ok := true
		for i := 0; i < 400 && ok; i++ {
			k := int64(rng.Intn(60))
			w.atomic(func(tx *stm.Tx) {
				switch rng.Intn(3) {
				case 0:
					_, had := model[k]
					if tr.Insert(tx, k, uint64(i)) == had {
						ok = false
					}
					if !had {
						model[k] = uint64(i)
					}
				case 1:
					_, had := model[k]
					if tr.Remove(tx, k) != had {
						ok = false
					}
					delete(model, k)
				default:
					v, got := tr.Get(tx, k)
					mv, had := model[k]
					if got != had || (had && v != mv) {
						ok = false
					}
				}
				if _, p := tr.CheckInvariants(tx); p != "" {
					t.Logf("seed %d step %d: %s", seed, i, p)
					ok = false
				}
			})
		}
		// Final structural agreement.
		w.atomic(func(tx *stm.Tx) {
			keys := tr.Keys(tx)
			if len(keys) != len(model) {
				ok = false
				return
			}
			var want []int64
			for k := range model {
				want = append(want, k)
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			for i := range keys {
				if keys[i] != want[i] {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Under concurrent insert/remove from 4 threads the tree must stay a
// valid red-black tree with the right contents.
func TestRBTreeConcurrent(t *testing.T) {
	space := mem.NewSpace()
	a := alloc.MustNew("tbb", space, 4)
	s := stm.New(space, stm.Config{Allocator: a})
	e := vtime.NewEngine(space, 4, vtime.Config{})
	var tr *RBTree
	init := vtime.Solo(space, 0, nil)
	s.Atomic(init, func(tx *stm.Tx) { tr = NewRBTree(tx) })
	e.Run(func(th *vtime.Thread) {
		rng := sim.NewRand(uint64(th.ID()) + 1)
		for i := 0; i < 300; i++ {
			k := int64(rng.Intn(128))
			if rng.Intn(2) == 0 {
				s.Atomic(th, func(tx *stm.Tx) { tr.Insert(tx, k, 1) })
			} else {
				s.Atomic(th, func(tx *stm.Tx) { tr.Remove(tx, k) })
			}
		}
	})
	s.Atomic(init, func(tx *stm.Tx) {
		if _, p := tr.CheckInvariants(tx); p != "" {
			t.Errorf("invariants after concurrent run: %s", p)
		}
		keys := tr.Keys(tx)
		if len(keys) != tr.Len(tx) {
			t.Errorf("size cell %d != traversal %d", tr.Len(tx), len(keys))
		}
		for i := 1; i < len(keys); i++ {
			if keys[i-1] >= keys[i] {
				t.Errorf("keys out of order at %d", i)
			}
		}
	})
	if st := s.Stats(); st.Aborts == 0 {
		t.Log("note: no aborts in concurrent rbtree run") // informational
	}
}

// --- Queue ---

func TestQueueFIFOAndGrowth(t *testing.T) {
	w := newSoloWorld(t)
	var q *Queue
	w.atomic(func(tx *stm.Tx) { q = NewQueue(tx, 4) })
	w.atomic(func(tx *stm.Tx) {
		for i := uint64(0); i < 100; i++ {
			q.Push(tx, i*3)
		}
		if q.Len(tx) != 100 {
			t.Fatalf("Len = %d", q.Len(tx))
		}
		for i := uint64(0); i < 100; i++ {
			v, ok := q.Pop(tx)
			if !ok || v != i*3 {
				t.Fatalf("Pop %d = %d,%v", i, v, ok)
			}
		}
		if _, ok := q.Pop(tx); ok {
			t.Error("Pop on empty queue succeeded")
		}
	})
}

func TestQueueInterleavedPushPop(t *testing.T) {
	w := newSoloWorld(t)
	var q *Queue
	w.atomic(func(tx *stm.Tx) { q = NewQueue(tx, 2) })
	next, expect := uint64(0), uint64(0)
	rng := sim.NewRand(11)
	for i := 0; i < 500; i++ {
		w.atomic(func(tx *stm.Tx) {
			if rng.Intn(3) != 0 {
				q.Push(tx, next)
				next++
			} else if v, ok := q.Pop(tx); ok {
				if v != expect {
					t.Fatalf("Pop = %d, want %d", v, expect)
				}
				expect++
			}
		})
	}
}

// Work queue under concurrent producers/consumers must deliver every
// item exactly once.
func TestQueueConcurrent(t *testing.T) {
	space := mem.NewSpace()
	a := alloc.MustNew("tbb", space, 4)
	s := stm.New(space, stm.Config{Allocator: a})
	e := vtime.NewEngine(space, 4, vtime.Config{})
	var q *Queue
	init := vtime.Solo(space, 0, nil)
	s.Atomic(init, func(tx *stm.Tx) { q = NewQueue(tx, 8) })
	const perProducer = 200
	got := make(map[uint64]int)
	e.Run(func(th *vtime.Thread) {
		if th.ID() < 2 { // producers
			for i := 0; i < perProducer; i++ {
				v := uint64(th.ID())<<32 | uint64(i)
				s.Atomic(th, func(tx *stm.Tx) { q.Push(tx, v) })
			}
			return
		}
		// Consumers drain until they have seen enough emptiness.
		misses := 0
		for misses < 300 {
			var v uint64
			var ok bool
			s.Atomic(th, func(tx *stm.Tx) { v, ok = q.Pop(tx) })
			if ok {
				got[v]++ // engine serializes: safe
				misses = 0
			} else {
				misses++
				th.Work(50)
			}
		}
	})
	// Drain the tail.
	for {
		var v uint64
		var ok bool
		s.Atomic(init, func(tx *stm.Tx) { v, ok = q.Pop(tx) })
		if !ok {
			break
		}
		got[v]++
	}
	if len(got) != 2*perProducer {
		t.Errorf("delivered %d distinct items, want %d", len(got), 2*perProducer)
	}
	for v, n := range got {
		if n != 1 {
			t.Errorf("item %#x delivered %d times", v, n)
		}
	}
}

// The paper's §5.3 observation: a red-black tree deletion may free a
// node allocated by a *different* transaction (successor copying).
func TestRBTreeDeleteFreesForeignNode(t *testing.T) {
	space := mem.NewSpace()
	a := alloc.MustNew("tbb", space, 2)
	s := stm.New(space, stm.Config{Allocator: a})
	th0 := vtime.Solo(space, 0, nil)
	th1 := vtime.Solo(space, 1, nil)
	var tr *RBTree
	s.Atomic(th0, func(tx *stm.Tx) {
		tr = NewRBTree(tx)
		tr.Insert(tx, 10, 0)
		tr.Insert(tx, 5, 0)
	})
	// Thread 1 inserts the successor of 10.
	s.Atomic(th1, func(tx *stm.Tx) { tr.Insert(tx, 12, 0) })
	frees0 := a.Stats().Frees
	// Thread 0 deletes 10: since 10 has two children, the successor
	// node (12, allocated by thread 1) is spliced out and freed.
	s.Atomic(th0, func(tx *stm.Tx) {
		if !tr.Remove(tx, 10) {
			t.Fatal("Remove(10) failed")
		}
	})
	if a.Stats().Frees != frees0+1 {
		t.Fatalf("expected exactly one free")
	}
	s.Atomic(th0, func(tx *stm.Tx) {
		if !tr.Contains(tx, 12) || !tr.Contains(tx, 5) || tr.Contains(tx, 10) {
			t.Error("tree contents wrong after successor splice")
		}
		if _, p := tr.CheckInvariants(tx); p != "" {
			t.Error(p)
		}
	})
}

// Aborted structure operations must leave no trace: the structure and
// the allocator balance exactly as before.
func TestAbortLeavesStructuresUntouched(t *testing.T) {
	w := newSoloWorld(t)
	var l *List
	var tr *RBTree
	w.atomic(func(tx *stm.Tx) {
		l = NewList(tx)
		tr = NewRBTree(tx)
		l.Insert(tx, 1)
		tr.Insert(tx, 1, 1)
	})
	tries := 0
	w.s.Atomic(w.th, func(tx *stm.Tx) {
		tries++
		l.Insert(tx, 2)
		tr.Insert(tx, 2, 2)
		l.Remove(tx, 1)
		tr.Remove(tx, 1)
		if tries == 1 {
			tx.Restart()
		}
	})
	w.atomic(func(tx *stm.Tx) {
		if l.Len(tx) != 1 || !l.Contains(tx, 2) {
			t.Error("list state wrong after abort+retry")
		}
		if tr.Len(tx) != 1 || !tr.Contains(tx, 2) {
			t.Error("tree state wrong after abort+retry")
		}
	})
}
