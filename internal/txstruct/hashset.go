package txstruct

import (
	"repro/internal/mem"
	"repro/internal/stm"
)

// HashSet is a separate-chaining hash set of int64 keys. The bucket
// array is one large allocation (the paper's synthetic hash set uses
// 128K buckets for a 4K set, making collisions rare); chain nodes are
// the same 16-byte {value, next} records as the linked list.
type HashSet struct {
	buckets mem.Addr
	nb      uint64
}

// NewHashSet builds a set with nb buckets (a power of two) inside a
// transaction. The bucket array is allocated from the system allocator.
func NewHashSet(tx *stm.Tx, nb uint64) *HashSet {
	if nb == 0 || nb&(nb-1) != 0 {
		panic("txstruct: bucket count must be a power of two")
	}
	b := tx.Malloc(nb * 8)
	// Bucket words start zeroed (fresh mappings are zero-filled); for
	// recycled memory, clear them.
	for i := uint64(0); i < nb; i++ {
		tx.Store(b+mem.Addr(i*8), 0)
	}
	return &HashSet{buckets: b, nb: nb}
}

// hash mixes the key (splitmix-style finalizer).
func (h *HashSet) hash(key int64) uint64 {
	x := uint64(key)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x & (h.nb - 1)
}

func (h *HashSet) bucket(key int64) mem.Addr {
	return h.buckets + mem.Addr(h.hash(key)*8)
}

// Contains reports whether key is in the set.
func (h *HashSet) Contains(tx *stm.Tx, key int64) bool {
	cur := mem.Addr(tx.Load(h.bucket(key)))
	for cur != 0 {
		if int64(tx.Load(cur+lnValue)) == key {
			return true
		}
		cur = mem.Addr(tx.Load(cur + lnNext))
	}
	return false
}

// Insert adds key, reporting false if it was already present.
func (h *HashSet) Insert(tx *stm.Tx, key int64) bool {
	b := h.bucket(key)
	head := mem.Addr(tx.Load(b))
	for cur := head; cur != 0; cur = mem.Addr(tx.Load(cur + lnNext)) {
		if int64(tx.Load(cur+lnValue)) == key {
			return false
		}
	}
	n := tx.Malloc(ListNodeSize)
	tx.Store(n+lnValue, uint64(key))
	tx.Store(n+lnNext, uint64(head))
	tx.Store(b, uint64(n))
	return true
}

// Remove deletes key, reporting false if it was absent.
func (h *HashSet) Remove(tx *stm.Tx, key int64) bool {
	b := h.bucket(key)
	prev := mem.Addr(0)
	cur := mem.Addr(tx.Load(b))
	for cur != 0 {
		next := mem.Addr(tx.Load(cur + lnNext))
		if int64(tx.Load(cur+lnValue)) == key {
			if prev == 0 {
				tx.Store(b, uint64(next))
			} else {
				tx.Store(prev+lnNext, uint64(next))
			}
			tx.Free(cur, ListNodeSize)
			return true
		}
		prev, cur = cur, next
	}
	return false
}

// Len counts all elements (reads every bucket; validation only).
func (h *HashSet) Len(tx *stm.Tx) int {
	n := 0
	for i := uint64(0); i < h.nb; i++ {
		cur := mem.Addr(tx.Load(h.buckets + mem.Addr(i*8)))
		for cur != 0 {
			n++
			cur = mem.Addr(tx.Load(cur + lnNext))
		}
	}
	return n
}
