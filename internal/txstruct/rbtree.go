package txstruct

import (
	"repro/internal/mem"
	"repro/internal/stm"
)

// RBNodeSize is the red-black tree node size: key, value, left, right,
// parent, color — the paper's 48-byte node (§5.3), which has no exact
// size class under Glibc or Hoard.
const RBNodeSize = 48

const (
	rbKey    = 0
	rbVal    = 8
	rbLeft   = 16
	rbRight  = 24
	rbParent = 32
	rbColor  = 40
)

const (
	black = 0
	red   = 1
)

// RBTree is a transactional red-black tree mapping int64 keys to uint64
// values. The nil leaf is address 0. Deletion uses successor key/value
// copying, so — as the paper notes for its tree benchmark — a
// transaction may free a node that a different transaction allocated.
type RBTree struct {
	rootCell mem.Addr // cell holding the root pointer
	sizeCell mem.Addr // cell holding the element count
}

// NewRBTree builds an empty tree inside a transaction.
func NewRBTree(tx *stm.Tx) *RBTree {
	cells := tx.Malloc(16)
	tx.Store(cells, 0)
	tx.Store(cells+8, 0)
	return &RBTree{rootCell: cells, sizeCell: cells + 8}
}

func (t *RBTree) root(tx *stm.Tx) mem.Addr { return mem.Addr(tx.Load(t.rootCell)) }

func key(tx *stm.Tx, n mem.Addr) int64      { return int64(tx.Load(n + rbKey)) }
func left(tx *stm.Tx, n mem.Addr) mem.Addr  { return mem.Addr(tx.Load(n + rbLeft)) }
func right(tx *stm.Tx, n mem.Addr) mem.Addr { return mem.Addr(tx.Load(n + rbRight)) }
func parent(tx *stm.Tx, n mem.Addr) mem.Addr {
	if n == 0 {
		return 0
	}
	return mem.Addr(tx.Load(n + rbParent))
}

// colorOf treats the nil leaf as black, as in CLRS.
func colorOf(tx *stm.Tx, n mem.Addr) uint64 {
	if n == 0 {
		return black
	}
	return tx.Load(n + rbColor)
}

func setColor(tx *stm.Tx, n mem.Addr, c uint64) {
	if n != 0 {
		tx.Store(n+rbColor, c)
	}
}

// Get returns the value stored under k.
func (t *RBTree) Get(tx *stm.Tx, k int64) (uint64, bool) {
	n := t.lookup(tx, k)
	if n == 0 {
		return 0, false
	}
	return tx.Load(n + rbVal), true
}

// Contains reports whether k is present.
func (t *RBTree) Contains(tx *stm.Tx, k int64) bool { return t.lookup(tx, k) != 0 }

func (t *RBTree) lookup(tx *stm.Tx, k int64) mem.Addr {
	n := t.root(tx)
	for n != 0 {
		nk := key(tx, n)
		switch {
		case k < nk:
			n = left(tx, n)
		case k > nk:
			n = right(tx, n)
		default:
			return n
		}
	}
	return 0
}

// Len returns the element count.
func (t *RBTree) Len(tx *stm.Tx) int { return int(tx.Load(t.sizeCell)) }

// Update sets the value of an existing key, reporting whether it was
// present.
func (t *RBTree) Update(tx *stm.Tx, k int64, v uint64) bool {
	n := t.lookup(tx, k)
	if n == 0 {
		return false
	}
	tx.Store(n+rbVal, v)
	return true
}

// Insert adds k -> v, reporting false (and leaving the tree unchanged)
// if k was already present.
func (t *RBTree) Insert(tx *stm.Tx, k int64, v uint64) bool {
	var p mem.Addr
	n := t.root(tx)
	for n != 0 {
		p = n
		nk := key(tx, n)
		switch {
		case k < nk:
			n = left(tx, n)
		case k > nk:
			n = right(tx, n)
		default:
			return false
		}
	}
	z := tx.Malloc(RBNodeSize)
	tx.Store(z+rbKey, uint64(k))
	tx.Store(z+rbVal, v)
	tx.Store(z+rbLeft, 0)
	tx.Store(z+rbRight, 0)
	tx.Store(z+rbParent, uint64(p))
	tx.Store(z+rbColor, red)
	if p == 0 {
		tx.Store(t.rootCell, uint64(z))
	} else if k < key(tx, p) {
		tx.Store(p+rbLeft, uint64(z))
	} else {
		tx.Store(p+rbRight, uint64(z))
	}
	t.insertFixup(tx, z)
	tx.Store(t.sizeCell, tx.Load(t.sizeCell)+1)
	return true
}

func (t *RBTree) rotateLeft(tx *stm.Tx, x mem.Addr) {
	y := right(tx, x)
	yl := left(tx, y)
	tx.Store(x+rbRight, uint64(yl))
	if yl != 0 {
		tx.Store(yl+rbParent, uint64(x))
	}
	p := parent(tx, x)
	tx.Store(y+rbParent, uint64(p))
	switch {
	case p == 0:
		tx.Store(t.rootCell, uint64(y))
	case x == left(tx, p):
		tx.Store(p+rbLeft, uint64(y))
	default:
		tx.Store(p+rbRight, uint64(y))
	}
	tx.Store(y+rbLeft, uint64(x))
	tx.Store(x+rbParent, uint64(y))
}

func (t *RBTree) rotateRight(tx *stm.Tx, x mem.Addr) {
	y := left(tx, x)
	yr := right(tx, y)
	tx.Store(x+rbLeft, uint64(yr))
	if yr != 0 {
		tx.Store(yr+rbParent, uint64(x))
	}
	p := parent(tx, x)
	tx.Store(y+rbParent, uint64(p))
	switch {
	case p == 0:
		tx.Store(t.rootCell, uint64(y))
	case x == right(tx, p):
		tx.Store(p+rbRight, uint64(y))
	default:
		tx.Store(p+rbLeft, uint64(y))
	}
	tx.Store(y+rbRight, uint64(x))
	tx.Store(x+rbParent, uint64(y))
}

func (t *RBTree) insertFixup(tx *stm.Tx, z mem.Addr) {
	for colorOf(tx, parent(tx, z)) == red {
		p := parent(tx, z)
		g := parent(tx, p)
		if p == left(tx, g) {
			u := right(tx, g)
			if colorOf(tx, u) == red {
				setColor(tx, p, black)
				setColor(tx, u, black)
				setColor(tx, g, red)
				z = g
			} else {
				if z == right(tx, p) {
					z = p
					t.rotateLeft(tx, z)
					p = parent(tx, z)
					g = parent(tx, p)
				}
				setColor(tx, p, black)
				setColor(tx, g, red)
				t.rotateRight(tx, g)
			}
		} else {
			u := left(tx, g)
			if colorOf(tx, u) == red {
				setColor(tx, p, black)
				setColor(tx, u, black)
				setColor(tx, g, red)
				z = g
			} else {
				if z == left(tx, p) {
					z = p
					t.rotateRight(tx, z)
					p = parent(tx, z)
					g = parent(tx, p)
				}
				setColor(tx, p, black)
				setColor(tx, g, red)
				t.rotateLeft(tx, g)
			}
		}
	}
	setColor(tx, t.root(tx), black)
}

// Remove deletes k, reporting false if absent. When the doomed node has
// two children its successor's key/value are copied in and the
// *successor's* node is freed — so the freed block may have been
// allocated by a different thread's transaction.
func (t *RBTree) Remove(tx *stm.Tx, k int64) bool {
	z := t.lookup(tx, k)
	if z == 0 {
		return false
	}
	y := z // node to splice out
	if left(tx, z) != 0 && right(tx, z) != 0 {
		// Successor: leftmost of right subtree.
		y = right(tx, z)
		for l := left(tx, y); l != 0; l = left(tx, y) {
			y = l
		}
		tx.Store(z+rbKey, tx.Load(y+rbKey))
		tx.Store(z+rbVal, tx.Load(y+rbVal))
	}
	// y has at most one child.
	x := left(tx, y)
	if x == 0 {
		x = right(tx, y)
	}
	yp := parent(tx, y)
	if x != 0 {
		tx.Store(x+rbParent, uint64(yp))
	}
	switch {
	case yp == 0:
		tx.Store(t.rootCell, uint64(x))
	case y == left(tx, yp):
		tx.Store(yp+rbLeft, uint64(x))
	default:
		tx.Store(yp+rbRight, uint64(x))
	}
	needFix := colorOf(tx, y) == black
	if needFix {
		t.deleteFixup(tx, x, yp)
	}
	tx.Free(y, RBNodeSize)
	tx.Store(t.sizeCell, tx.Load(t.sizeCell)-1)
	return true
}

// deleteFixup restores red-black properties after removing a black
// node; x (possibly nil) sits where the black deficit is, under parent
// p.
func (t *RBTree) deleteFixup(tx *stm.Tx, x, p mem.Addr) {
	for x != t.root(tx) && colorOf(tx, x) == black {
		if p == 0 {
			break
		}
		if x == left(tx, p) {
			w := right(tx, p)
			if colorOf(tx, w) == red {
				setColor(tx, w, black)
				setColor(tx, p, red)
				t.rotateLeft(tx, p)
				w = right(tx, p)
			}
			if colorOf(tx, left(tx, w)) == black && colorOf(tx, right(tx, w)) == black {
				setColor(tx, w, red)
				x, p = p, parent(tx, p)
			} else {
				if colorOf(tx, right(tx, w)) == black {
					setColor(tx, left(tx, w), black)
					setColor(tx, w, red)
					t.rotateRight(tx, w)
					w = right(tx, p)
				}
				setColor(tx, w, colorOf(tx, p))
				setColor(tx, p, black)
				setColor(tx, right(tx, w), black)
				t.rotateLeft(tx, p)
				x = t.root(tx)
				break
			}
		} else {
			w := left(tx, p)
			if colorOf(tx, w) == red {
				setColor(tx, w, black)
				setColor(tx, p, red)
				t.rotateRight(tx, p)
				w = left(tx, p)
			}
			if colorOf(tx, right(tx, w)) == black && colorOf(tx, left(tx, w)) == black {
				setColor(tx, w, red)
				x, p = p, parent(tx, p)
			} else {
				if colorOf(tx, left(tx, w)) == black {
					setColor(tx, right(tx, w), black)
					setColor(tx, w, red)
					t.rotateLeft(tx, w)
					w = left(tx, p)
				}
				setColor(tx, w, colorOf(tx, p))
				setColor(tx, p, black)
				setColor(tx, left(tx, w), black)
				t.rotateRight(tx, p)
				x = t.root(tx)
				break
			}
		}
	}
	setColor(tx, x, black)
}

// Keys returns all keys in order (validation).
func (t *RBTree) Keys(tx *stm.Tx) []int64 {
	var out []int64
	var walk func(n mem.Addr)
	walk = func(n mem.Addr) {
		if n == 0 {
			return
		}
		walk(left(tx, n))
		out = append(out, key(tx, n))
		walk(right(tx, n))
	}
	walk(t.root(tx))
	return out
}

// CheckInvariants verifies BST order and the red-black properties,
// returning the black-height or -1 with a description of the violation.
func (t *RBTree) CheckInvariants(tx *stm.Tx) (blackHeight int, problem string) {
	root := t.root(tx)
	if colorOf(tx, root) != black {
		return -1, "root is red"
	}
	var check func(n mem.Addr, lo, hi int64) (int, string)
	check = func(n mem.Addr, lo, hi int64) (int, string) {
		if n == 0 {
			return 1, ""
		}
		k := key(tx, n)
		if k <= lo || k >= hi {
			return -1, "BST order violated"
		}
		c := colorOf(tx, n)
		l, r := left(tx, n), right(tx, n)
		if c == red && (colorOf(tx, l) == red || colorOf(tx, r) == red) {
			return -1, "red node with red child"
		}
		lb, p1 := check(l, lo, k)
		if p1 != "" {
			return -1, p1
		}
		rb, p2 := check(r, k, hi)
		if p2 != "" {
			return -1, p2
		}
		if lb != rb {
			return -1, "black-height mismatch"
		}
		if c == black {
			lb++
		}
		return lb, ""
	}
	return check(root, -1<<62, 1<<62)
}
