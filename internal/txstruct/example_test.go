package txstruct_test

import (
	"fmt"

	_ "repro/internal/alloc/tcmalloc"

	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/stm"
	"repro/internal/txstruct"
	"repro/internal/vtime"
)

// Transactional containers live in simulated memory and are operated on
// inside transactions; their nodes come from the pluggable system
// allocator.
func ExampleRBTree() {
	space := mem.NewSpace()
	a := alloc.MustNew("tcmalloc", space, 1)
	s := stm.New(space, stm.Config{Allocator: a})
	th := vtime.Solo(space, 0, nil)

	var tree *txstruct.RBTree
	s.Atomic(th, func(tx *stm.Tx) {
		tree = txstruct.NewRBTree(tx)
		for _, k := range []int64{30, 10, 20} {
			tree.Insert(tx, k, uint64(k*100))
		}
	})
	s.Atomic(th, func(tx *stm.Tx) {
		v, ok := tree.Get(tx, 20)
		fmt.Println("get(20):", v, ok)
		fmt.Println("keys:", tree.Keys(tx))
		tree.Remove(tx, 10)
		fmt.Println("after remove:", tree.Keys(tx))
	})
	// Output:
	// get(20): 2000 true
	// keys: [10 20 30]
	// after remove: [20 30]
}

func ExampleQueue() {
	space := mem.NewSpace()
	a := alloc.MustNew("tcmalloc", space, 1)
	s := stm.New(space, stm.Config{Allocator: a})
	th := vtime.Solo(space, 0, nil)

	var q *txstruct.Queue
	s.Atomic(th, func(tx *stm.Tx) {
		q = txstruct.NewQueue(tx, 2)
		q.Push(tx, 10)
		q.Push(tx, 20)
		q.Push(tx, 30) // grows past the initial capacity
	})
	s.Atomic(th, func(tx *stm.Tx) {
		for {
			v, ok := q.Pop(tx)
			if !ok {
				break
			}
			fmt.Println(v)
		}
	})
	// Output:
	// 10
	// 20
	// 30
}

func ExampleList() {
	space := mem.NewSpace()
	a := alloc.MustNew("tcmalloc", space, 1)
	s := stm.New(space, stm.Config{Allocator: a})
	th := vtime.Solo(space, 0, nil)

	var l *txstruct.List
	s.Atomic(th, func(tx *stm.Tx) {
		l = txstruct.NewList(tx)
		l.Insert(tx, 7)
		l.Insert(tx, 3)
		l.Insert(tx, 5)
		fmt.Println("sorted:", l.Keys(tx))
		fmt.Println("dup insert:", l.Insert(tx, 5))
	})
	// Output:
	// sorted: [3 5 7]
	// dup insert: false
}
