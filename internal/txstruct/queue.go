package txstruct

import (
	"repro/internal/mem"
	"repro/internal/stm"
)

// Queue is a growable transactional FIFO of 64-bit words, modelled on
// STAMP's queue.c (a circular buffer that doubles on overflow).
type Queue struct {
	hdr mem.Addr // header block: capacity, size, head, dataPtr
}

const (
	qCap  = 0
	qSize = 8
	qHead = 16
	qData = 24
	// QueueHeaderSize is the queue header allocation.
	QueueHeaderSize = 32
)

// NewQueue builds a queue with the given initial capacity inside a
// transaction.
func NewQueue(tx *stm.Tx, capacity uint64) *Queue {
	if capacity == 0 {
		capacity = 8
	}
	h := tx.Malloc(QueueHeaderSize)
	d := tx.Malloc(capacity * 8)
	tx.Store(h+qCap, capacity)
	tx.Store(h+qSize, 0)
	tx.Store(h+qHead, 0)
	tx.Store(h+qData, uint64(d))
	return &Queue{hdr: h}
}

// Len returns the number of queued items.
func (q *Queue) Len(tx *stm.Tx) int { return int(tx.Load(q.hdr + qSize)) }

// Push appends v, doubling the buffer when full (old buffer is freed
// transactionally, as STAMP's queue does).
func (q *Queue) Push(tx *stm.Tx, v uint64) {
	capa := tx.Load(q.hdr + qCap)
	size := tx.Load(q.hdr + qSize)
	head := tx.Load(q.hdr + qHead)
	data := mem.Addr(tx.Load(q.hdr + qData))
	if size == capa {
		newCap := capa * 2
		nd := tx.Malloc(newCap * 8)
		for i := uint64(0); i < size; i++ {
			tx.Store(nd+mem.Addr(i*8), tx.Load(data+mem.Addr(((head+i)%capa)*8)))
		}
		tx.Free(data, capa*8)
		data = nd
		head = 0
		capa = newCap
		tx.Store(q.hdr+qCap, capa)
		tx.Store(q.hdr+qHead, 0)
		tx.Store(q.hdr+qData, uint64(data))
	}
	tx.Store(data+mem.Addr(((head+size)%capa)*8), v)
	tx.Store(q.hdr+qSize, size+1)
}

// Pop removes and returns the oldest item; ok is false when empty.
func (q *Queue) Pop(tx *stm.Tx) (v uint64, ok bool) {
	size := tx.Load(q.hdr + qSize)
	if size == 0 {
		return 0, false
	}
	capa := tx.Load(q.hdr + qCap)
	head := tx.Load(q.hdr + qHead)
	data := mem.Addr(tx.Load(q.hdr + qData))
	v = tx.Load(data + mem.Addr(head*8))
	tx.Store(q.hdr+qHead, (head+1)%capa)
	tx.Store(q.hdr+qSize, size-1)
	return v, true
}
