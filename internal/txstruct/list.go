// Package txstruct provides transactional data structures laid out in
// simulated memory and accessed through the STM: a sorted linked-list
// set, a hash set, a red-black tree and a growable queue. They are the
// §5 microbenchmark structures and the containers the STAMP ports are
// built from.
//
// All operations take the calling transaction; structure nodes are
// allocated with tx.Malloc and released with tx.Free, so the system
// allocator's placement decisions shape the structures' interaction
// with the STM exactly as in the paper.
package txstruct

import (
	"repro/internal/mem"
	"repro/internal/stm"
)

// ListNodeSize is the size of a list node: value and next pointer —
// the paper's 16-byte linked-list node.
const ListNodeSize = 16

const (
	lnValue = 0
	lnNext  = 8
)

// List is a sorted singly-linked list set of int64 keys with a head
// sentinel, as used by the paper's linked-list microbenchmark.
type List struct {
	head mem.Addr // sentinel node
}

// NewList builds an empty list inside a transaction.
func NewList(tx *stm.Tx) *List {
	head := tx.Malloc(ListNodeSize)
	sentinel := int64(-1) << 62
	tx.Store(head+lnValue, uint64(sentinel))
	tx.Store(head+lnNext, 0)
	return &List{head: head}
}

// find returns (prev, cur) where cur is the first node with value >=
// key (cur may be 0).
func (l *List) find(tx *stm.Tx, key int64) (prev, cur mem.Addr) {
	prev = l.head
	cur = mem.Addr(tx.Load(prev + lnNext))
	for cur != 0 {
		v := int64(tx.Load(cur + lnValue))
		if v >= key {
			return prev, cur
		}
		prev, cur = cur, mem.Addr(tx.Load(cur+lnNext))
	}
	return prev, 0
}

// Contains reports whether key is in the set.
func (l *List) Contains(tx *stm.Tx, key int64) bool {
	_, cur := l.find(tx, key)
	return cur != 0 && int64(tx.Load(cur+lnValue)) == key
}

// Insert adds key, reporting false if it was already present.
func (l *List) Insert(tx *stm.Tx, key int64) bool {
	prev, cur := l.find(tx, key)
	if cur != 0 && int64(tx.Load(cur+lnValue)) == key {
		return false
	}
	n := tx.Malloc(ListNodeSize)
	tx.Store(n+lnValue, uint64(key))
	tx.Store(n+lnNext, uint64(cur))
	tx.Store(prev+lnNext, uint64(n))
	return true
}

// Remove deletes key, reporting false if it was absent. The node is
// freed transactionally (deferred to commit).
func (l *List) Remove(tx *stm.Tx, key int64) bool {
	prev, cur := l.find(tx, key)
	if cur == 0 || int64(tx.Load(cur+lnValue)) != key {
		return false
	}
	tx.Store(prev+lnNext, tx.Load(cur+lnNext))
	tx.Free(cur, ListNodeSize)
	return true
}

// Len counts the elements (transactionally reads the whole list).
func (l *List) Len(tx *stm.Tx) int {
	n := 0
	for cur := mem.Addr(tx.Load(l.head + lnNext)); cur != 0; cur = mem.Addr(tx.Load(cur + lnNext)) {
		n++
	}
	return n
}

// Keys returns the elements in order (for validation).
func (l *List) Keys(tx *stm.Tx) []int64 {
	var out []int64
	for cur := mem.Addr(tx.Load(l.head + lnNext)); cur != 0; cur = mem.Addr(tx.Load(cur + lnNext)) {
		out = append(out, int64(tx.Load(cur+lnValue)))
	}
	return out
}
