package txstruct

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/stm"
	"repro/internal/vtime"
)

func TestHeapOrdering(t *testing.T) {
	w := newSoloWorld(t)
	var h *Heap
	w.atomic(func(tx *stm.Tx) { h = NewHeap(tx, 4) })
	keys := []int64{9, 3, 7, 1, 8, 2, 6, 4, 5, 0}
	w.atomic(func(tx *stm.Tx) {
		for _, k := range keys {
			h.Push(tx, k, uint64(k*10))
		}
		if h.Len(tx) != len(keys) {
			t.Fatalf("Len = %d", h.Len(tx))
		}
		if k, v, ok := h.Peek(tx); !ok || k != 0 || v != 0 {
			t.Fatalf("Peek = %d,%d,%v", k, v, ok)
		}
		for want := int64(0); want < 10; want++ {
			k, v, ok := h.Pop(tx)
			if !ok || k != want || v != uint64(want*10) {
				t.Fatalf("Pop = %d,%d,%v; want %d", k, v, ok, want)
			}
		}
		if _, _, ok := h.Pop(tx); ok {
			t.Fatal("Pop on empty heap succeeded")
		}
	})
}

// Property: heap pops come out sorted for any input sequence.
func TestHeapMatchesSort(t *testing.T) {
	check := func(seed uint64) bool {
		w := newSoloWorld(t)
		var h *Heap
		w.atomic(func(tx *stm.Tx) { h = NewHeap(tx, 2) })
		rng := sim.NewRand(seed)
		n := 50 + rng.Intn(100)
		var want []int64
		w.atomic(func(tx *stm.Tx) {
			for i := 0; i < n; i++ {
				k := int64(rng.Intn(1000))
				want = append(want, k)
				h.Push(tx, k, uint64(i))
			}
		})
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		ok := true
		w.atomic(func(tx *stm.Tx) {
			for _, wk := range want {
				k, _, got := h.Pop(tx)
				if !got || k != wk {
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Concurrent pushes and pops keep the heap's invariant and deliver
// every element exactly once.
func TestHeapConcurrent(t *testing.T) {
	w := newSoloWorld(t)
	s := w.s
	e := vtime.NewEngine(w.space, 4, vtime.Config{})
	var h *Heap
	init := vtime.Solo(w.space, 0, nil)
	s.Atomic(init, func(tx *stm.Tx) { h = NewHeap(tx, 8) })
	const per = 100
	got := map[uint64]int{}
	e.Run(func(th *vtime.Thread) {
		if th.ID() < 2 {
			for i := 0; i < per; i++ {
				v := uint64(th.ID())<<32 | uint64(i)
				s.Atomic(th, func(tx *stm.Tx) { h.Push(tx, int64(i), v) })
			}
			return
		}
		misses := 0
		for misses < 200 {
			var v uint64
			var ok bool
			s.Atomic(th, func(tx *stm.Tx) { _, v, ok = h.Pop(tx) })
			if ok {
				got[v]++
				misses = 0
			} else {
				misses++
				th.Work(50)
			}
		}
	})
	for {
		var v uint64
		var ok bool
		s.Atomic(init, func(tx *stm.Tx) { _, v, ok = h.Pop(tx) })
		if !ok {
			break
		}
		got[v]++
	}
	if len(got) != 2*per {
		t.Errorf("delivered %d distinct items, want %d", len(got), 2*per)
	}
	for v, n := range got {
		if n != 1 {
			t.Errorf("item %#x delivered %d times", v, n)
		}
	}
}

func TestVectorBasics(t *testing.T) {
	w := newSoloWorld(t)
	var v *Vector
	w.atomic(func(tx *stm.Tx) { v = NewVector(tx, 2) })
	w.atomic(func(tx *stm.Tx) {
		for i := uint64(0); i < 50; i++ {
			v.Append(tx, i*3)
		}
		if v.Len(tx) != 50 {
			t.Fatalf("Len = %d", v.Len(tx))
		}
		if v.At(tx, 10) != 30 {
			t.Fatalf("At(10) = %d", v.At(tx, 10))
		}
		v.Set(tx, 10, 999)
		if v.At(tx, 10) != 999 {
			t.Fatal("Set lost")
		}
		if x, ok := v.PopBack(tx); !ok || x != 49*3 {
			t.Fatalf("PopBack = %d,%v", x, ok)
		}
		if v.Len(tx) != 49 {
			t.Fatalf("Len after pop = %d", v.Len(tx))
		}
	})
}

func TestVectorOutOfRangePanics(t *testing.T) {
	w := newSoloWorld(t)
	var v *Vector
	w.atomic(func(tx *stm.Tx) { v = NewVector(tx, 2) })
	defer func() {
		if recover() == nil {
			t.Error("out-of-range At did not panic")
		}
	}()
	w.atomic(func(tx *stm.Tx) { v.At(tx, 0) })
}

func TestVectorAbortRetrySafe(t *testing.T) {
	w := newSoloWorld(t)
	var v *Vector
	w.atomic(func(tx *stm.Tx) { v = NewVector(tx, 2) })
	tries := 0
	w.s.Atomic(w.th, func(tx *stm.Tx) {
		tries++
		for i := uint64(0); i < 10; i++ {
			v.Append(tx, i)
		}
		if tries == 1 {
			tx.Restart()
		}
	})
	w.atomic(func(tx *stm.Tx) {
		if v.Len(tx) != 10 {
			t.Errorf("Len = %d after abort+retry, want 10", v.Len(tx))
		}
	})
}
