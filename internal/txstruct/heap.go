package txstruct

import (
	"repro/internal/mem"
	"repro/internal/stm"
)

// Heap is a transactional binary min-heap of 64-bit keys (carrying a
// 64-bit payload each), modelled on STAMP's heap.c — the container the
// original yada uses to prioritize work. The element array lives in
// simulated memory and doubles on overflow.
type Heap struct {
	hdr mem.Addr // header: capacity, size, dataPtr
}

const (
	hCap  = 0
	hSize = 8
	hData = 16
	// HeapHeaderSize is the heap header allocation.
	HeapHeaderSize = 24
)

// NewHeap builds an empty heap with the given initial capacity inside a
// transaction.
func NewHeap(tx *stm.Tx, capacity uint64) *Heap {
	if capacity == 0 {
		capacity = 8
	}
	h := tx.Malloc(HeapHeaderSize)
	d := tx.Malloc(capacity * 16)
	tx.Store(h+hCap, capacity)
	tx.Store(h+hSize, 0)
	tx.Store(h+hData, uint64(d))
	return &Heap{hdr: h}
}

// Len returns the element count.
func (h *Heap) Len(tx *stm.Tx) int { return int(tx.Load(h.hdr + hSize)) }

func (h *Heap) slot(data mem.Addr, i uint64) mem.Addr { return data + mem.Addr(i*16) }

// Push inserts (key, value).
func (h *Heap) Push(tx *stm.Tx, key int64, value uint64) {
	capa := tx.Load(h.hdr + hCap)
	size := tx.Load(h.hdr + hSize)
	data := mem.Addr(tx.Load(h.hdr + hData))
	if size == capa {
		newCap := capa * 2
		nd := tx.Malloc(newCap * 16)
		for i := uint64(0); i < size; i++ {
			tx.Store(h.slot(nd, i), tx.Load(h.slot(data, i)))
			tx.Store(h.slot(nd, i)+8, tx.Load(h.slot(data, i)+8))
		}
		tx.Free(data, capa*16)
		data = nd
		capa = newCap
		tx.Store(h.hdr+hCap, capa)
		tx.Store(h.hdr+hData, uint64(data))
	}
	// Sift up.
	i := size
	tx.Store(h.slot(data, i), uint64(key))
	tx.Store(h.slot(data, i)+8, value)
	for i > 0 {
		parent := (i - 1) / 2
		pk := int64(tx.Load(h.slot(data, parent)))
		ck := int64(tx.Load(h.slot(data, i)))
		if pk <= ck {
			break
		}
		h.swap(tx, data, parent, i)
		i = parent
	}
	tx.Store(h.hdr+hSize, size+1)
}

func (h *Heap) swap(tx *stm.Tx, data mem.Addr, a, b uint64) {
	ak, av := tx.Load(h.slot(data, a)), tx.Load(h.slot(data, a)+8)
	bk, bv := tx.Load(h.slot(data, b)), tx.Load(h.slot(data, b)+8)
	tx.Store(h.slot(data, a), bk)
	tx.Store(h.slot(data, a)+8, bv)
	tx.Store(h.slot(data, b), ak)
	tx.Store(h.slot(data, b)+8, av)
}

// Pop removes and returns the minimum (key, value); ok is false when
// empty.
func (h *Heap) Pop(tx *stm.Tx) (key int64, value uint64, ok bool) {
	size := tx.Load(h.hdr + hSize)
	if size == 0 {
		return 0, 0, false
	}
	data := mem.Addr(tx.Load(h.hdr + hData))
	key = int64(tx.Load(h.slot(data, 0)))
	value = tx.Load(h.slot(data, 0) + 8)
	size--
	tx.Store(h.hdr+hSize, size)
	if size == 0 {
		return key, value, true
	}
	// Move the last element to the root and sift down.
	tx.Store(h.slot(data, 0), tx.Load(h.slot(data, size)))
	tx.Store(h.slot(data, 0)+8, tx.Load(h.slot(data, size)+8))
	i := uint64(0)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		sk := int64(tx.Load(h.slot(data, smallest)))
		if l < size {
			if lk := int64(tx.Load(h.slot(data, l))); lk < sk {
				smallest, sk = l, lk
			}
		}
		if r < size {
			if rk := int64(tx.Load(h.slot(data, r))); rk < sk {
				smallest = r
			}
		}
		if smallest == i {
			break
		}
		h.swap(tx, data, i, smallest)
		i = smallest
	}
	return key, value, true
}

// Peek returns the minimum without removing it.
func (h *Heap) Peek(tx *stm.Tx) (key int64, value uint64, ok bool) {
	if tx.Load(h.hdr+hSize) == 0 {
		return 0, 0, false
	}
	data := mem.Addr(tx.Load(h.hdr + hData))
	return int64(tx.Load(h.slot(data, 0))), tx.Load(h.slot(data, 0) + 8), true
}
