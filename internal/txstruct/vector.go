package txstruct

import (
	"repro/internal/mem"
	"repro/internal/stm"
)

// Vector is a transactional growable array of 64-bit words, modelled on
// STAMP's vector.c. The backing array lives in simulated memory and
// doubles on overflow.
type Vector struct {
	hdr mem.Addr // header: capacity, size, dataPtr
}

const (
	vCap  = 0
	vSize = 8
	vData = 16
	// VectorHeaderSize is the vector header allocation.
	VectorHeaderSize = 24
)

// NewVector builds an empty vector with the given initial capacity
// inside a transaction.
func NewVector(tx *stm.Tx, capacity uint64) *Vector {
	if capacity == 0 {
		capacity = 8
	}
	h := tx.Malloc(VectorHeaderSize)
	d := tx.Malloc(capacity * 8)
	tx.Store(h+vCap, capacity)
	tx.Store(h+vSize, 0)
	tx.Store(h+vData, uint64(d))
	return &Vector{hdr: h}
}

// Len returns the element count.
func (v *Vector) Len(tx *stm.Tx) int { return int(tx.Load(v.hdr + vSize)) }

// Append adds x at the end, growing the backing array as needed.
func (v *Vector) Append(tx *stm.Tx, x uint64) {
	capa := tx.Load(v.hdr + vCap)
	size := tx.Load(v.hdr + vSize)
	data := mem.Addr(tx.Load(v.hdr + vData))
	if size == capa {
		newCap := capa * 2
		nd := tx.Malloc(newCap * 8)
		for i := uint64(0); i < size; i++ {
			tx.Store(nd+mem.Addr(i*8), tx.Load(data+mem.Addr(i*8)))
		}
		tx.Free(data, capa*8)
		data = nd
		capa = newCap
		tx.Store(v.hdr+vCap, capa)
		tx.Store(v.hdr+vData, uint64(data))
	}
	tx.Store(data+mem.Addr(size*8), x)
	tx.Store(v.hdr+vSize, size+1)
}

// At returns element i; it panics on out-of-range indices (a caller
// bug, matching Go slice semantics).
func (v *Vector) At(tx *stm.Tx, i int) uint64 {
	size := int(tx.Load(v.hdr + vSize))
	if i < 0 || i >= size {
		panic("txstruct: vector index out of range")
	}
	data := mem.Addr(tx.Load(v.hdr + vData))
	return tx.Load(data + mem.Addr(i*8))
}

// Set stores x at index i.
func (v *Vector) Set(tx *stm.Tx, i int, x uint64) {
	size := int(tx.Load(v.hdr + vSize))
	if i < 0 || i >= size {
		panic("txstruct: vector index out of range")
	}
	data := mem.Addr(tx.Load(v.hdr + vData))
	tx.Store(data+mem.Addr(i*8), x)
}

// PopBack removes and returns the last element; ok is false when empty.
func (v *Vector) PopBack(tx *stm.Tx) (x uint64, ok bool) {
	size := tx.Load(v.hdr + vSize)
	if size == 0 {
		return 0, false
	}
	data := mem.Addr(tx.Load(v.hdr + vData))
	x = tx.Load(data + mem.Addr((size-1)*8))
	tx.Store(v.hdr+vSize, size-1)
	return x, true
}
