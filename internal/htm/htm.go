// Package htm models a best-effort hardware transactional memory with a
// lock-elision fallback (a HyTM), the paper's stated future-work
// direction ("recent hybrid approaches based on best-effort hardware
// transactional memory").
//
// Hardware transactions differ from the STM in exactly the ways that
// re-weight the allocator's influence:
//
//   - conflicts are detected at **cache-line granularity** (64 bytes),
//     not at the STM's 32-byte ORT stripes — so two 16-byte blocks that
//     share a line conflict even when they would have separate versioned
//     locks, and an allocator's false-sharing behaviour becomes a
//     transactional-abort behaviour;
//   - capacity is bounded by the L1: a transaction whose write set
//     overflows any L1 set (8 ways) or whose read set exceeds the
//     tracking bound aborts and can never succeed in hardware;
//   - "system events" abort transactions: here, running too long
//     (timer) or calling into the memory allocator (which real
//     best-effort HTM programs avoid inside transactions).
//
// After MaxAttempts hardware attempts, execution falls back to a global
// fallback lock, which every hardware transaction subscribes to — the
// standard lock-elision hybrid.
package htm

import (
	"fmt"

	"repro/internal/cachesim"
	"repro/internal/mem"
	"repro/internal/vtime"
)

// Capacity and policy bounds (approximating a Haswell-class RTM over
// the modelled 32 KiB / 8-way L1).
const (
	l1Sets  = 64
	l1Ways  = 8
	MaxRead = 4096 // read-set tracking bound, in cache lines

	// DefaultMaxAttempts is how many times a transaction is tried in
	// hardware before taking the fallback lock.
	DefaultMaxAttempts = 3

	// DefaultTimerCycles aborts transactions that run longer than this
	// (the model's scheduling-interrupt horizon).
	DefaultTimerCycles = 200_000
)

// AbortReason classifies hardware aborts.
type AbortReason int

// Hardware abort reasons.
const (
	AbortConflict AbortReason = iota // another transaction touched our line
	AbortCapacity                    // write set overflowed an L1 set / read bound
	AbortLock                        // fallback lock observed taken
	AbortAlloc                       // allocator call inside a hardware transaction
	AbortTimer                       // transaction ran past the interrupt horizon
	AbortExplicit
	abortReasonCount
)

func (r AbortReason) String() string {
	switch r {
	case AbortConflict:
		return "conflict"
	case AbortCapacity:
		return "capacity"
	case AbortLock:
		return "lock"
	case AbortAlloc:
		return "alloc"
	case AbortTimer:
		return "timer"
	case AbortExplicit:
		return "explicit"
	}
	return fmt.Sprintf("reason(%d)", int(r))
}

// Stats counts hybrid execution outcomes.
type Stats struct {
	HTMCommits uint64
	HTMAborts  uint64
	ByReason   [abortReasonCount]uint64
	Fallbacks  uint64 // regions that ended up under the fallback lock
}

// lineState tracks which active hardware transactions read/wrote a
// cache line.
type lineState struct {
	readers uint32 // bitmask of thread ids
	writer  int8   // thread id + 1; 0 = none
}

// HyTM is one hybrid transactional memory instance.
type HyTM struct {
	space *mem.Space

	MaxAttempts int
	TimerCycles uint64

	lock     vtime.Lock // the fallback lock
	fallback uint64     // generation: bumped when the fallback lock is taken

	lines map[uint64]*lineState
	txs   map[int]*Ctx
	stats Stats
}

// New builds a HyTM over the space.
func New(space *mem.Space) *HyTM {
	return &HyTM{
		space:       space,
		MaxAttempts: DefaultMaxAttempts,
		TimerCycles: DefaultTimerCycles,
		lines:       make(map[uint64]*lineState),
		txs:         make(map[int]*Ctx),
	}
}

// Stats returns the accumulated counters.
func (h *HyTM) Stats() Stats { return h.stats }

type htmAbort struct{ reason AbortReason }

// Ctx is the execution context a transactional region runs under: a
// speculative hardware context, or the fallback lock (Hardware()
// reports which). It is reused per thread.
type Ctx struct {
	h  *HyTM
	th *vtime.Thread

	hardware bool
	gen      uint64
	start    uint64

	wbuf       map[mem.Addr]uint64
	readLines  map[uint64]struct{}
	writeLines map[uint64]struct{}
	setLoad    [l1Sets]uint8 // write lines per L1 set (capacity model)
}

// Thread returns the executing thread.
func (c *Ctx) Thread() *vtime.Thread { return c.th }

// Hardware reports whether this execution is a speculative hardware
// attempt (false under the fallback lock).
func (c *Ctx) Hardware() bool { return c.hardware }

func line(a mem.Addr) uint64 { return uint64(a) >> cachesim.LineShift }

func (c *Ctx) abort(reason AbortReason) {
	c.h.stats.HTMAborts++
	c.h.stats.ByReason[reason]++
	c.rollback()
	panic(htmAbort{reason})
}

func (c *Ctx) rollback() {
	tid := uint32(1) << uint(c.th.ID())
	for l := range c.readLines {
		if ls := c.h.lines[l]; ls != nil {
			ls.readers &^= tid
		}
	}
	for l := range c.writeLines {
		if ls := c.h.lines[l]; ls != nil && ls.writer == int8(c.th.ID())+1 {
			ls.writer = 0
		}
	}
	// Discarding the write buffer is free in hardware; charge only the
	// pipeline-flush style penalty.
	c.th.Tick(c.th.Cost().TxBase)
}

func (c *Ctx) checkEnvironment() {
	if !c.hardware {
		return
	}
	// Lock subscription: the fallback lock word is effectively in every
	// hardware transaction's read set, so a fallback acquisition (now or
	// since we began) aborts us.
	if c.h.lock.Locked() || c.h.fallback != c.gen {
		c.abort(AbortLock)
	}
	if c.th.Clock()-c.start > c.h.TimerCycles {
		c.abort(AbortTimer)
	}
}

// Load reads a word transactionally.
func (c *Ctx) Load(a mem.Addr) uint64 {
	if !c.hardware {
		return c.th.Load(a)
	}
	c.checkEnvironment()
	if v, ok := c.wbuf[a]; ok {
		return v
	}
	l := line(a)
	ls := c.h.lines[l]
	if ls == nil {
		ls = &lineState{}
		c.h.lines[l] = ls
	}
	if ls.writer != 0 && ls.writer != int8(c.th.ID())+1 {
		c.abort(AbortConflict)
	}
	if _, seen := c.readLines[l]; !seen {
		if len(c.readLines) >= MaxRead {
			c.abort(AbortCapacity)
		}
		c.readLines[l] = struct{}{}
		ls.readers |= 1 << uint(c.th.ID())
	}
	return c.th.Load(a)
}

// Store writes a word transactionally (buffered until commit).
func (c *Ctx) Store(a mem.Addr, v uint64) {
	if !c.hardware {
		c.th.Store(a, v)
		return
	}
	c.checkEnvironment()
	l := line(a)
	ls := c.h.lines[l]
	if ls == nil {
		ls = &lineState{}
		c.h.lines[l] = ls
	}
	me := int8(c.th.ID()) + 1
	if ls.writer != 0 && ls.writer != me {
		c.abort(AbortConflict)
	}
	if ls.readers&^(1<<uint(c.th.ID())) != 0 {
		// Another transaction has the line in its read set: in hardware
		// our ownership request invalidates it; model requester-loses.
		c.abort(AbortConflict)
	}
	if _, seen := c.writeLines[l]; !seen {
		set := l % l1Sets
		if c.setLoad[set] >= l1Ways {
			c.abort(AbortCapacity)
		}
		c.setLoad[set]++
		c.writeLines[l] = struct{}{}
		ls.writer = me
	}
	c.wbuf[a] = v
	c.th.Tick(c.th.Cost().TxAccess)
}

// AllocEscape marks an operation hardware transactions cannot perform
// (allocator calls, syscalls); it aborts the hardware attempt so the
// region retries under the fallback lock, where the caller may perform
// it directly.
func (c *Ctx) AllocEscape() {
	if c.hardware {
		c.abort(AbortAlloc)
	}
}

// Restart aborts the current attempt explicitly.
func (c *Ctx) Restart() {
	if c.hardware {
		c.abort(AbortExplicit)
	}
	panic(htmAbort{AbortExplicit})
}

func (c *Ctx) commit() {
	tid := uint32(1) << uint(c.th.ID())
	// A hardware commit is atomic: write the buffer through the raw
	// space (no scheduling points), then charge the cost in one tick.
	// Concurrent hardware transactions are fenced off by the lineState
	// ownership marks, which are only cleared below; the fallback path
	// is fenced by the lock subscription.
	for a, v := range c.wbuf {
		c.th.Space().Store(a, v)
	}
	c.th.Tick(uint64(len(c.wbuf)) * c.th.Cost().L1Hit)
	for l := range c.readLines {
		if ls := c.h.lines[l]; ls != nil {
			ls.readers &^= tid
		}
	}
	for l := range c.writeLines {
		if ls := c.h.lines[l]; ls != nil && ls.writer == int8(c.th.ID())+1 {
			ls.writer = 0
		}
	}
	c.h.stats.HTMCommits++
	c.th.Tick(c.th.Cost().TxBase)
}

func (c *Ctx) reset(hardware bool) {
	c.hardware = hardware
	c.gen = c.h.fallback
	c.start = c.th.Clock()
	clear(c.wbuf)
	clear(c.readLines)
	clear(c.writeLines)
	c.setLoad = [l1Sets]uint8{}
}

// Atomic runs fn as a hybrid transaction on th: up to MaxAttempts
// speculative hardware tries, then the fallback lock. fn must be a pure
// retryable closure, as with the STM.
func (h *HyTM) Atomic(th *vtime.Thread, fn func(c *Ctx)) {
	c := h.txs[th.ID()]
	if c == nil {
		c = &Ctx{
			h:          h,
			th:         th,
			wbuf:       make(map[mem.Addr]uint64),
			readLines:  make(map[uint64]struct{}),
			writeLines: make(map[uint64]struct{}),
		}
		h.txs[th.ID()] = c
	}
	for attempt := 0; attempt < h.MaxAttempts; attempt++ {
		// Lock elision: wait for a held fallback lock to be released
		// before attempting in hardware.
		for h.lock.Locked() {
			th.Tick(th.Cost().SpinRetry)
		}
		c.reset(true)
		th.Tick(th.Cost().TxBase)
		if h.try(c, fn) {
			return
		}
	}
	// Fallback: serialize under the global lock.
	h.stats.Fallbacks++
	h.lock.Lock(th)
	h.fallback++
	c.reset(false)
	func() {
		defer func() {
			if r := recover(); r != nil {
				h.lock.Unlock(th)
				if _, ok := r.(htmAbort); ok {
					// Explicit restart under the lock: retry the whole
					// hybrid protocol.
					h.Atomic(th, fn)
					return
				}
				panic(r)
			}
		}()
		fn(c)
		h.lock.Unlock(th)
	}()
}

// try runs one hardware attempt, reporting whether it committed.
func (h *HyTM) try(c *Ctx, fn func(c *Ctx)) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, isAbort := r.(htmAbort); isAbort {
				ok = false
				return
			}
			c.rollback()
			panic(r)
		}
	}()
	fn(c)
	// Final environment check, then commit atomically (the engine's
	// serialization stands in for the hardware's atomic commit).
	c.checkEnvironment()
	c.commit()
	return true
}
