package htm_test

import (
	"fmt"

	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/vtime"
)

// A hybrid transaction runs in hardware when it can and under the
// fallback lock when it cannot — here, because it wants to call the
// memory allocator, which best-effort HTM cannot roll back.
func Example() {
	space := mem.NewSpace()
	h := htm.New(space)
	counter := space.MustMap(4096, 0)
	th := vtime.Solo(space, 0, nil)

	// A plain data transaction commits in hardware.
	h.Atomic(th, func(c *htm.Ctx) {
		c.Store(counter, c.Load(counter)+1)
	})

	// A region that needs an "unfriendly" operation escapes to the
	// fallback lock.
	h.Atomic(th, func(c *htm.Ctx) {
		c.AllocEscape() // aborts hardware attempts
		c.Store(counter, c.Load(counter)+1)
	})

	st := h.Stats()
	fmt.Println("counter:", space.Load(counter))
	fmt.Println("hardware commits:", st.HTMCommits)
	fmt.Println("fallbacks:", st.Fallbacks)
	// Output:
	// counter: 2
	// hardware commits: 1
	// fallbacks: 1
}
