package htm

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/vtime"
)

func world(threads int) (*mem.Space, *vtime.Engine, *HyTM) {
	space := mem.NewSpace()
	e := vtime.NewEngine(space, threads, vtime.Config{})
	return space, e, New(space)
}

func TestCounterCorrect(t *testing.T) {
	space, e, h := world(8)
	counter := space.MustMap(4096, 0)
	e.Run(func(th *vtime.Thread) {
		for i := 0; i < 300; i++ {
			h.Atomic(th, func(c *Ctx) {
				c.Store(counter, c.Load(counter)+1)
			})
		}
	})
	if got := space.Load(counter); got != 2400 {
		t.Errorf("counter = %d, want 2400", got)
	}
	st := h.Stats()
	if st.HTMCommits == 0 {
		t.Error("no hardware commits at all")
	}
	if st.HTMAborts == 0 {
		t.Error("no hardware aborts under 8-thread contention")
	}
}

func TestReadsOwnWrites(t *testing.T) {
	space, _, h := world(1)
	a := space.MustMap(4096, 0)
	th := vtime.Solo(space, 0, nil)
	h.Atomic(th, func(c *Ctx) {
		c.Store(a, 5)
		if c.Load(a) != 5 {
			t.Error("write buffer not consulted")
		}
		c.Store(a, 6)
	})
	if space.Load(a) != 6 {
		t.Error("commit lost")
	}
}

func TestAbortDiscardsWrites(t *testing.T) {
	space, _, h := world(1)
	a := space.MustMap(4096, 0)
	space.Store(a, 7)
	th := vtime.Solo(space, 0, nil)
	tries := 0
	h.Atomic(th, func(c *Ctx) {
		tries++
		c.Store(a, 99)
		if tries == 1 && c.Hardware() {
			// Mid-transaction hardware abort: memory must stay clean.
			if space.Load(a) != 7 {
				t.Error("speculative store leaked to memory")
			}
			c.Restart()
		}
	})
	if space.Load(a) != 99 {
		t.Errorf("final = %d, want 99", space.Load(a))
	}
}

func TestCapacityAbortFallsBack(t *testing.T) {
	space, _, h := world(1)
	// Writing more than l1Ways lines that map to one L1 set can never
	// succeed in hardware: the region must complete via the fallback.
	base := space.MustMap(1<<20, 0)
	th := vtime.Solo(space, 0, nil)
	h.Atomic(th, func(c *Ctx) {
		for i := 0; i < l1Ways+2; i++ {
			// Same set: lines 64 sets * 64 bytes = 4096 bytes apart.
			c.Store(base+mem.Addr(i*l1Sets*64), uint64(i))
		}
	})
	st := h.Stats()
	if st.ByReason[AbortCapacity] == 0 {
		t.Error("no capacity abort recorded")
	}
	if st.Fallbacks == 0 {
		t.Error("capacity-bound region did not fall back")
	}
	for i := 0; i < l1Ways+2; i++ {
		if space.Load(base+mem.Addr(i*l1Sets*64)) != uint64(i) {
			t.Errorf("write %d lost", i)
		}
	}
}

func TestAllocEscapeFallsBack(t *testing.T) {
	space, _, h := world(1)
	th := vtime.Solo(space, 0, nil)
	hardwareTries, lockRuns := 0, 0
	h.Atomic(th, func(c *Ctx) {
		if c.Hardware() {
			hardwareTries++
		} else {
			lockRuns++
		}
		c.AllocEscape() // "this region needs malloc"
	})
	if hardwareTries != h.MaxAttempts {
		t.Errorf("hardware tries = %d, want %d", hardwareTries, h.MaxAttempts)
	}
	if lockRuns != 1 {
		t.Errorf("lock runs = %d, want 1", lockRuns)
	}
	if st := h.Stats(); st.ByReason[AbortAlloc] != uint64(h.MaxAttempts) {
		t.Errorf("alloc aborts = %d", st.ByReason[AbortAlloc])
	}
}

func TestTimerAbortsLongTransactions(t *testing.T) {
	space, _, h := world(1)
	h.TimerCycles = 1000
	a := space.MustMap(4096, 0)
	th := vtime.Solo(space, 0, nil)
	h.Atomic(th, func(c *Ctx) {
		if c.Hardware() {
			th.Work(5000) // longer than the interrupt horizon
		}
		c.Store(a, 1)
		c.Load(a)
	})
	if st := h.Stats(); st.ByReason[AbortTimer] == 0 {
		t.Error("no timer abort for an over-long transaction")
	}
	if space.Load(a) != 1 {
		t.Error("fallback did not complete the region")
	}
}

// Cache-line granularity: two counters on the SAME line conflict even
// though they are different words; on separate lines they do not.
func TestLineGranularityConflicts(t *testing.T) {
	run := func(stride int) Stats {
		space, e, h := world(2)
		base := space.MustMap(4096, 0)
		e.Run(func(th *vtime.Thread) {
			addr := base + mem.Addr(th.ID()*stride)
			for i := 0; i < 200; i++ {
				h.Atomic(th, func(c *Ctx) {
					c.Store(addr, c.Load(addr)+1)
				})
				th.Work(30)
			}
		})
		return h.Stats()
	}
	shared := run(8)    // same 64-byte line
	separate := run(64) // different lines
	if shared.ByReason[AbortConflict] == 0 {
		t.Error("no conflicts on a shared line")
	}
	if separate.ByReason[AbortConflict] != 0 {
		t.Errorf("%d conflicts on separate lines, want 0", separate.ByReason[AbortConflict])
	}
}

// A fallback execution aborts concurrent hardware transactions (lock
// subscription) and the final state is consistent.
func TestFallbackLockSubscription(t *testing.T) {
	space, e, h := world(4)
	h.MaxAttempts = 1 // force frequent fallbacks
	counter := space.MustMap(4096, 0)
	e.Run(func(th *vtime.Thread) {
		for i := 0; i < 200; i++ {
			h.Atomic(th, func(c *Ctx) {
				c.Store(counter, c.Load(counter)+1)
			})
		}
	})
	if got := space.Load(counter); got != 800 {
		t.Errorf("counter = %d, want 800", got)
	}
	if st := h.Stats(); st.Fallbacks == 0 {
		t.Error("expected fallbacks with MaxAttempts=1 under contention")
	}
}

func TestDeterministic(t *testing.T) {
	run := func() (uint64, uint64) {
		space, e, h := world(4)
		counter := space.MustMap(4096, 0)
		e.Run(func(th *vtime.Thread) {
			for i := 0; i < 150; i++ {
				h.Atomic(th, func(c *Ctx) {
					c.Store(counter, c.Load(counter)+1)
				})
			}
		})
		return h.Stats().HTMAborts, e.MaxClock()
	}
	a1, c1 := run()
	a2, c2 := run()
	if a1 != a2 || c1 != c2 {
		t.Errorf("nondeterministic: %d/%d aborts, %d/%d cycles", a1, a2, c1, c2)
	}
}

func TestAbortReasonStrings(t *testing.T) {
	for r := AbortConflict; r < abortReasonCount; r++ {
		if r.String() == "" {
			t.Errorf("reason %d unnamed", r)
		}
	}
}
