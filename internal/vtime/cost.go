package vtime

import "repro/internal/cachesim"

// CostModel assigns cycle latencies to the events the engine prices.
// Values approximate the paper's 2 GHz Xeon E5405 (Table 2): a 3-cycle
// L1D, a ~15 ns shared L2 and ~80 ns DRAM, with cross-socket transfers
// between the two.
type CostModel struct {
	L1Hit     uint64 // L1D load-to-use
	L2Hit     uint64 // own-socket L2
	RemoteL2  uint64 // serviced by the other socket
	Memory    uint64 // main memory
	Inval     uint64 // extra cost on a write that invalidates sharers
	LockOp    uint64 // one atomic RMW beyond the line access (CAS/xchg)
	SpinRetry uint64 // pause + re-check in a spin loop
	TxBase    uint64 // fixed transaction begin+commit bookkeeping
	TxAccess  uint64 // per-access STM instrumentation overhead
	AllocOp   uint64 // fixed non-memory work in malloc/free
	OSMap     uint64 // an mmap-style call into the simulated OS
	Work      uint64 // one abstract unit of application compute

	// Durable-memory pricing (internal/pmem). A cache-line writeback to
	// the persistence domain (clwb) costs Flush; an ordering fence
	// (sfence) costs FenceBase plus FenceLine per line still draining;
	// one redo-log or metadata-journal record append costs LogAppend
	// (a write-combining store into the log region).
	Flush     uint64
	FenceBase uint64
	FenceLine uint64
	LogAppend uint64
}

// Frequency is the modelled clock rate used to convert cycles to
// seconds (the paper machine's 2.00 GHz).
const Frequency = 2.0e9

// DefaultCost is the cost model used by all experiments.
var DefaultCost = CostModel{
	L1Hit:     3,
	L2Hit:     30,
	RemoteL2:  90,
	Memory:    160,
	Inval:     40,
	LockOp:    15,
	SpinRetry: 30,
	TxBase:    60,
	TxAccess:  8,
	AllocOp:   30,
	OSMap:     4000,
	Work:      1,
	Flush:     120,
	FenceBase: 30,
	FenceLine: 60,
	LogAppend: 40,
}

// accessCost prices a classified cache access.
func (c *CostModel) accessCost(lvl cachesim.Level, write bool) uint64 {
	switch lvl {
	case cachesim.L1Hit:
		return c.L1Hit
	case cachesim.L2Hit:
		return c.L2Hit
	case cachesim.RemoteL2Hit:
		return c.RemoteL2
	default:
		return c.Memory
	}
}

// Seconds converts virtual cycles to modelled seconds.
func Seconds(cycles uint64) float64 { return float64(cycles) / Frequency }
