package vtime

// Lock is a virtual-time spinlock. Because the engine serializes real
// execution, the lock needs no host atomics: its state changes are
// data-race-free by construction, while *virtual* contention is real —
// a thread that finds the lock held spins, advancing its clock, until
// the scheduler lets the holder run far enough to release it.
//
// Acquire/contention counters live in the lock so allocators can report
// the synchronization behaviour the paper profiles.
type Lock struct {
	holder    int32 // thread id + 1; 0 = free
	Acquires  uint64
	Contended uint64
}

// TryLock attempts acquisition without waiting, charging one atomic-op
// cost either way.
func (l *Lock) TryLock(t *Thread) bool {
	t.Tick(t.cost.LockOp)
	if l.holder != 0 {
		return false
	}
	l.holder = int32(t.id) + 1
	l.Acquires++
	return true
}

// Lock acquires, spinning in virtual time while held elsewhere.
func (l *Lock) Lock(t *Thread) {
	if l.TryLock(t) {
		return
	}
	l.Contended++
	for {
		t.Tick(t.cost.SpinRetry)
		if l.holder == 0 {
			l.holder = int32(t.id) + 1
			l.Acquires++
			return
		}
	}
}

// Unlock releases the lock; unlocking a lock the thread does not hold
// panics (it indicates an allocator bug).
func (l *Lock) Unlock(t *Thread) {
	if l.holder != int32(t.id)+1 {
		panic("vtime: unlock of lock not held by this thread")
	}
	l.holder = 0
	t.Tick(t.cost.LockOp)
}

// Held reports whether the calling thread holds the lock.
func (l *Lock) Held(t *Thread) bool { return l.holder == int32(t.id)+1 }

// Locked reports whether any thread holds the lock (safe under the
// engine's serialized execution).
func (l *Lock) Locked() bool { return l.holder != 0 }

// Barrier synchronizes all threads of a parallel region at a point, in
// virtual time: a thread arriving early spins until the last arrives,
// so the region's phases overlap exactly as on real hardware.
type Barrier struct {
	n       int
	arrived int
	gen     uint64
}

// NewBarrier returns a barrier for n threads.
func NewBarrier(n int) *Barrier { return &Barrier{n: n} }

// Wait blocks (in virtual time) until all n threads have called Wait.
// Arrival releases the thread's happens-before clock into the barrier
// and departure acquires every arrival's, so the race checker sees the
// all-to-all ordering the barrier provides (pure observation: the
// callbacks never advance virtual time).
func (b *Barrier) Wait(t *Thread) {
	gen := b.gen
	if t.race != nil {
		t.race.SyncRelease(t.id, b)
	}
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		if t.race != nil {
			t.race.SyncAcquire(t.id, b)
		}
		return
	}
	for b.gen == gen {
		t.Tick(t.cost.SpinRetry)
	}
	if t.race != nil {
		t.race.SyncAcquire(t.id, b)
	}
}
