// Package vtime is a deterministic virtual-time execution engine for
// simulating a small multicore machine on any host.
//
// Logical threads run as goroutines, but the engine's scheduler admits
// exactly one at a time — always the thread with the smallest virtual
// clock — for a bounded quantum of cycles. Every simulated memory
// access a thread performs advances its clock by the latency the cache
// model assigns (L1/L2/memory/coherence), locks are acquired by spinning
// in virtual time, and "execution time" of a parallel region is the
// largest clock when the last thread finishes.
//
// Because at most one thread executes at any real instant and the
// scheduling order is a pure function of the virtual clocks, runs are
// deterministic and free of data races by construction, while the
// *virtual* interleaving is as dense as on a real multicore: two
// transactions whose virtual intervals overlap conflict exactly as they
// would on separate cores.
package vtime

import (
	"fmt"
	"os"
	"runtime/debug"

	"repro/internal/cachesim"
	"repro/internal/mem"
	"repro/internal/obs"
)

// DefaultQuantum bounds how far (in cycles) a running thread may
// advance past the second-least-advanced thread before yielding. It is
// the engine's interleaving granularity. Prime, and combined with a
// deterministic jitter, so that periodic workloads cannot phase-lock
// their scheduling points to one program position.
const DefaultQuantum = 199

const farFuture = ^uint64(0) >> 1

// killDeadline is the poison resume value the scheduler sends to wind a
// thread down when the engine's virtual-time deadline passes: the next
// scheduling point inside the thread converts it into a deadlineSignal
// panic, unwound and captured by the thread wrapper.
const killDeadline = ^uint64(0)

// deadlineSignal unwinds a thread killed by the engine watchdog. It is
// recognized (and swallowed) by Run; user code never sees it unless it
// recovers indiscriminately.
type deadlineSignal struct{}

func (deadlineSignal) String() string { return "vtime: virtual-time deadline exceeded" }

// StopSignal unwinds the thread that requested an engine stop (a
// simulated crash: Engine.Stop was called at a fault-plan crash point).
// Like deadlineSignal it is swallowed by Run, but it is exported so
// intermediate recover blocks (the STM's transaction wrapper) can
// recognize it and re-raise immediately: a crash halts execution
// mid-flight, so no rollback or cleanup work may run — that is the
// point of crash injection.
type StopSignal struct{}

func (StopSignal) String() string { return "vtime: engine stopped (simulated crash)" }

// Profiler receives the engine's cycle-attribution callbacks. It is
// implemented by *prof.Profiler; the engine sees only this narrow
// interface so the profiler package can build on vtime without an
// import cycle. Callbacks never advance virtual time — a profiled run
// is cycle-identical to an unprofiled one.
type Profiler interface {
	// Stall attributes one priced memory access: cost cycles satisfied
	// at the given hierarchy level plus inval coherence-invalidation
	// cycles, with now the thread clock after the access was charged.
	Stall(tid int, level cachesim.Level, cost, inval, now uint64)
	// SyncClock flushes attribution up to now (a parallel region ended).
	SyncClock(tid int, now uint64)
	// ResetClock flushes attribution up to now and rebases the thread
	// at clock zero (ResetClocks between experiment phases).
	ResetClock(tid int, now uint64)
}

// HeapSampler receives the engine's heap-telemetry callback. It is
// implemented by *heapscope.Collector; the engine sees only this narrow
// interface so heapscope can build on vtime without an import cycle.
// Sample is called from the scheduler loop — never from a simulated
// thread — and must be a pure observer: no virtual-time ticks, no
// simulated memory traffic, so a sampled run is cycle-identical to an
// unsampled one.
type HeapSampler interface {
	// Sample offers the current scheduling instant: now is the clock of
	// the min-clock runnable thread, which is monotone non-decreasing
	// within one Run, making it a deterministic sampling axis.
	Sample(now uint64)
}

// RaceObserver receives the engine's raw-access and quiesce-point
// callbacks. It is implemented by *race.Checker; the engine sees only
// this narrow interface so the race package can build on vtime without
// an import cycle. Callbacks never advance virtual time — a checked
// run is cycle-identical to an unchecked one.
type RaceObserver interface {
	// OnAccess reports one priced word access by a simulated thread
	// (write=false for Load, true for Store/CAS), with the thread
	// clock after the access was charged.
	OnAccess(tid int, a mem.Addr, write bool, clock uint64)
	// Barrier reports a full quiesce point: Run raises it once before
	// any thread starts and once after every thread has finished, so
	// the observer can order the phases around a parallel region.
	Barrier(clock uint64)
	// SyncRelease and SyncAcquire report ordering through an in-region
	// synchronization object (a *Barrier): an acquire is ordered after
	// every earlier release on the same object. Barrier.Wait releases
	// on arrival and acquires on departure, giving the all-to-all join
	// a phase barrier actually provides.
	SyncRelease(tid int, obj any)
	SyncAcquire(tid int, obj any)
}

// Engine coordinates a set of logical threads over one address space
// and one cache hierarchy.
type Engine struct {
	Space   *mem.Space
	Cache   *cachesim.Hierarchy // may be nil: flat memory costs
	Cost    *CostModel
	Quantum uint64
	Obs     *obs.Recorder // scheduler-quantum tracing; nil disables
	Prof    Profiler      // cycle attribution; nil disables
	Heap    HeapSampler   // heap-state telemetry; nil disables
	Race    RaceObserver  // happens-before checking; nil disables
	// Deadline, when non-zero, is the engine watchdog: a Run whose
	// least-advanced thread passes this virtual-cycle bound is wound
	// down (every thread is unwound at its next scheduling point) and
	// Run returns normally with DeadlineExceeded reporting true. It
	// turns livelocks and runaway workloads into a diagnosable,
	// artifact-producing outcome instead of a host-side hang.
	Deadline uint64

	threads     []*Thread
	rng         uint64 // deterministic deadline jitter state
	deadlineHit bool
	stopped     bool
}

// Config carries optional Engine settings.
type Config struct {
	Cache    *cachesim.Hierarchy
	Cost     *CostModel
	Quantum  uint64
	Obs      *obs.Recorder
	Prof     Profiler     // cycle attribution; nil disables
	Heap     HeapSampler  // heap-state telemetry; nil disables
	Race     RaceObserver // happens-before checking; nil disables
	Deadline uint64       // virtual-cycle watchdog bound; 0 disables
}

// NewEngine builds an engine over space for n logical threads.
func NewEngine(space *mem.Space, n int, cfg Config) *Engine {
	e := &Engine{
		rng:      0x9e3779b97f4a7c15,
		Space:    space,
		Cache:    cfg.Cache,
		Cost:     cfg.Cost,
		Quantum:  cfg.Quantum,
		Obs:      cfg.Obs,
		Prof:     cfg.Prof,
		Heap:     cfg.Heap,
		Race:     cfg.Race,
		Deadline: cfg.Deadline,
	}
	if e.Cost == nil {
		c := DefaultCost
		e.Cost = &c
	}
	if e.Quantum == 0 {
		e.Quantum = DefaultQuantum
	}
	e.threads = make([]*Thread, n)
	for i := range e.threads {
		e.threads[i] = &Thread{
			id:     i,
			engine: e,
			space:  space,
			cache:  e.Cache,
			cost:   e.Cost,
			prof:   cfg.Prof,
			race:   cfg.Race,
			resume: make(chan uint64),
			pause:  make(chan threadEvent),
		}
	}
	return e
}

// Threads returns the engine's threads (index == thread id).
func (e *Engine) Threads() []*Thread { return e.threads }

type threadEvent struct {
	done  bool
	panic any
}

// Run executes fn(thread) on every thread under virtual-time scheduling
// and returns the per-thread finish clocks. It panics (after all
// threads stop) with the first panic raised inside a thread.
//
// The threads' clocks persist across Run calls, so consecutive parallel
// regions accumulate time; use ResetClocks between independent
// experiments.
func (e *Engine) Run(fn func(t *Thread)) []uint64 {
	n := len(e.threads)
	e.deadlineHit = false
	if e.Race != nil {
		// Every thread is quiesced here: whatever ran before this
		// region (setup writes, a previous region) is ordered before
		// everything inside it.
		e.Race.Barrier(e.minClock())
	}
	for _, t := range e.threads {
		t.done = false
		go func(t *Thread) {
			defer func() {
				ev := threadEvent{done: true}
				if r := recover(); r != nil {
					ev.panic = r
					if !isEngineSignal(r) {
						// The panic value is re-raised from Run's caller
						// context, which loses this goroutine's stack;
						// surface it here for debuggability.
						fmt.Fprintf(os.Stderr, "vtime: thread %d panicked: %v\n%s\n", t.id, r, debug.Stack())
					}
				}
				t.pause <- ev
			}()
			t.deadline = <-t.resume
			if t.deadline == killDeadline {
				panic(deadlineSignal{})
			}
			fn(t)
		}(t)
	}

	var firstPanic any
	running := n
	for running > 0 {
		// Pick the min-clock runnable thread; ties break by id for
		// determinism.
		var cur *Thread
		for _, t := range e.threads {
			if t.done {
				continue
			}
			if cur == nil || t.clock < cur.clock {
				cur = t
			}
		}
		// Heap-telemetry cadence: cur.clock is the global min runnable
		// clock, monotone within this Run, so sampling here is a pure
		// function of virtual time — independent of host scheduling and of
		// the sweep pool width. The sampler must not touch e.rng, tick
		// clocks, or access simulated memory.
		if e.Heap != nil {
			e.Heap.Sample(cur.clock)
		}
		// Engine watchdog (the least-advanced runnable thread is past
		// the deadline, so every thread is) or a requested stop (a crash
		// point fired): wind the region down. Each remaining thread is
		// resumed with the poison deadline and unwinds at its next
		// scheduling point.
		if e.stopped || (e.Deadline != 0 && cur.clock > e.Deadline) {
			if !e.stopped {
				e.deadlineHit = true
				if e.Obs != nil {
					e.Obs.Watchdog("deadline", cur.id, cur.clock)
				}
			}
			for running > 0 {
				var victim *Thread
				for _, t := range e.threads {
					if !t.done {
						victim = t
						break
					}
				}
				victim.resume <- killDeadline
				ev := <-victim.pause
				victim.done = true
				running--
				if ev.panic != nil && firstPanic == nil && !isEngineSignal(ev.panic) {
					firstPanic = ev.panic
				}
			}
			break
		}
		// Deadline: second-smallest clock plus a quantum.
		deadline := uint64(farFuture)
		for _, t := range e.threads {
			if t == cur || t.done {
				continue
			}
			if t.clock+e.Quantum < deadline {
				deadline = t.clock + e.Quantum
			}
		}
		if deadline == farFuture {
			deadline = cur.clock + 1<<32 // lone thread: rare check-ins
		} else {
			// Deterministic jitter breaks resonance between the quantum
			// and periodic workloads (which would otherwise always yield
			// at the same instruction).
			e.rng = e.rng*6364136223846793005 + 1442695040888963407
			deadline += (e.rng >> 33) % (e.Quantum/2 + 1)
		}
		sliceStart := cur.clock
		cur.resume <- deadline
		ev := <-cur.pause
		if e.Obs != nil && cur.clock > sliceStart {
			e.Obs.Quantum(cur.id, sliceStart, cur.clock)
		}
		if ev.done {
			cur.done = true
			running--
			if ev.panic != nil && firstPanic == nil && !isEngineSignal(ev.panic) {
				firstPanic = ev.panic
			}
		}
	}
	if firstPanic != nil {
		panic(firstPanic)
	}
	if e.Race != nil {
		// All threads finished: the region is ordered before whatever
		// follows (harvest and validation reads).
		e.Race.Barrier(e.MaxClock())
	}
	out := make([]uint64, n)
	for i, t := range e.threads {
		if t.prof != nil {
			// Flush trailing compute cycles so the profile partitions the
			// region's clocks exactly.
			t.prof.SyncClock(t.id, t.clock)
		}
		out[i] = t.clock
	}
	return out
}

// DeadlineExceeded reports whether the last Run was wound down by the
// engine watchdog (Deadline passed before every thread finished).
func (e *Engine) DeadlineExceeded() bool { return e.deadlineHit }

// isEngineSignal reports whether a recovered panic value is one of the
// engine's own unwind signals (watchdog deadline or requested stop),
// which Run swallows rather than re-raising.
func isEngineSignal(r any) bool {
	switch r.(type) {
	case deadlineSignal, StopSignal:
		return true
	}
	return false
}

// Stop requests that the engine halt: the current Run (or the next one)
// winds every thread down at its next scheduling point and returns
// normally, and Stopped reports true from then on. It models a machine
// crash — call it from a simulated thread and then panic(StopSignal{})
// to stop that thread dead in its tracks. The flag is sticky: a stopped
// engine never runs another region, so a crashed workload cannot
// accidentally resume.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop was called (the simulation crashed).
func (e *Engine) Stopped() bool { return e.stopped }

// minClock returns the smallest thread clock.
func (e *Engine) minClock() uint64 {
	m := uint64(farFuture)
	for _, t := range e.threads {
		if t.clock < m {
			m = t.clock
		}
	}
	return m
}

// MaxClock returns the largest thread clock — the parallel region's
// virtual execution time.
func (e *Engine) MaxClock() uint64 {
	var m uint64
	for _, t := range e.threads {
		if t.clock > m {
			m = t.clock
		}
	}
	return m
}

// ResetClocks zeroes all thread clocks (between experiments).
func (e *Engine) ResetClocks() {
	for _, t := range e.threads {
		if t.prof != nil {
			t.prof.ResetClock(t.id, t.clock)
		}
		t.clock = 0
	}
}

// Thread is one logical thread of the simulated machine. All simulated
// memory accesses and waits must go through its methods so that virtual
// time advances; code running on a Thread must not block on host
// synchronization (the engine runs one thread at a time).
type Thread struct {
	id     int
	engine *Engine // nil for a solo thread
	space  *mem.Space
	cache  *cachesim.Hierarchy
	cost   *CostModel
	prof   Profiler     // nil disables cycle attribution
	race   RaceObserver // nil disables happens-before checking

	clock    uint64
	deadline uint64

	resume chan uint64
	pause  chan threadEvent
	done   bool
}

// Solo returns a detached thread with the given id: it accumulates
// virtual time but never yields. Use it for single-threaded phases and
// unit tests.
func Solo(space *mem.Space, id int, cache *cachesim.Hierarchy) *Thread {
	c := DefaultCost
	return &Thread{id: id, space: space, cache: cache, cost: &c, deadline: farFuture}
}

// ID returns the thread id (its core number).
func (t *Thread) ID() int { return t.id }

// Clock returns the thread's virtual clock in cycles.
func (t *Thread) Clock() uint64 { return t.clock }

// Space returns the underlying address space.
func (t *Thread) Space() *mem.Space { return t.space }

// Tick advances the thread's virtual clock, yielding to the scheduler
// if the quantum deadline passed.
func (t *Thread) Tick(cycles uint64) {
	t.clock += cycles
	if t.clock >= t.deadline && t.engine != nil {
		t.pause <- threadEvent{}
		t.deadline = <-t.resume
		if t.deadline == killDeadline {
			panic(deadlineSignal{})
		}
	}
}

// Yield forces a scheduling point without advancing time.
func (t *Thread) Yield() {
	if t.engine != nil && t.clock >= t.deadline {
		t.pause <- threadEvent{}
		t.deadline = <-t.resume
		if t.deadline == killDeadline {
			panic(deadlineSignal{})
		}
	}
}

// access classifies and prices one memory access.
func (t *Thread) access(a mem.Addr, write bool) {
	var c, inval uint64
	lvl := cachesim.L1Hit
	if t.cache != nil {
		res := t.cache.Access(t.id, a, write)
		lvl = res.Level
		c = t.cost.accessCost(res.Level, write)
		if res.Invalidated {
			// Ownership upgrade: the write had to invalidate sharers.
			inval = t.cost.Inval
		}
	} else {
		c = t.cost.L1Hit
	}
	t.Tick(c + inval)
	if t.prof != nil {
		t.prof.Stall(t.id, lvl, c, inval, t.clock)
	}
}

// Load reads the word at a, charging its latency.
func (t *Thread) Load(a mem.Addr) uint64 {
	t.access(a, false)
	if t.race != nil {
		t.race.OnAccess(t.id, a, false, t.clock)
	}
	return t.space.Load(a)
}

// LoadRelaxed reads the word at a, charging exactly Load's latency,
// but declares the read racy: the caller tolerates a stale value and
// revalidates transactionally before acting on it, so the race checker
// does not treat it as a privatization hazard. The runtime analogue of
// a //tmvet:allow annotation — labyrinth's grid-snapshot copy is the
// canonical user (STAMP's documented benign race). Use Load everywhere
// a stale read would be acted on unvalidated.
func (t *Thread) LoadRelaxed(a mem.Addr) uint64 {
	t.access(a, false)
	return t.space.Load(a)
}

// Store writes the word at a, charging its latency.
func (t *Thread) Store(a mem.Addr, v uint64) {
	t.access(a, true)
	if t.race != nil {
		t.race.OnAccess(t.id, a, true, t.clock)
	}
	t.space.Store(a, v)
}

// CAS performs a compare-and-swap at a, charging a locked-RMW latency.
func (t *Thread) CAS(a mem.Addr, old, new uint64) bool {
	t.access(a, true)
	t.Tick(t.cost.LockOp)
	if t.race != nil {
		t.race.OnAccess(t.id, a, true, t.clock)
	}
	return t.space.CompareAndSwap(a, old, new)
}

// Work charges n abstract compute units.
func (t *Thread) Work(n uint64) { t.Tick(n * t.cost.Work) }

// Cost exposes the engine's cost model.
func (t *Thread) Cost() *CostModel { return t.cost }

// String implements fmt.Stringer for diagnostics.
func (t *Thread) String() string {
	return fmt.Sprintf("thread %d @ %d cycles", t.id, t.clock)
}
