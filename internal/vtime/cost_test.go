package vtime

import (
	"testing"

	"repro/internal/cachesim"
	"repro/internal/mem"
)

func TestAccessCostOrdering(t *testing.T) {
	c := DefaultCost
	if !(c.L1Hit < c.L2Hit && c.L2Hit < c.RemoteL2 && c.RemoteL2 < c.Memory) {
		t.Errorf("latency ordering broken: %+v", c)
	}
	if c.accessCost(cachesim.L1Hit, false) != c.L1Hit {
		t.Error("L1 cost mismatch")
	}
	if c.accessCost(cachesim.MemoryHit, true) != c.Memory {
		t.Error("memory cost mismatch")
	}
}

func TestSecondsConversion(t *testing.T) {
	if got := Seconds(2_000_000_000); got != 1.0 {
		t.Errorf("2G cycles = %v s, want 1.0 (2 GHz)", got)
	}
}

func TestInvalChargedToWriter(t *testing.T) {
	space := mem.NewSpace()
	base := space.MustMap(mem.PageSize, 0)
	cache := cachesim.New(2)
	a := Solo(space, 0, cache)
	b := Solo(space, 1, cache)
	// Both cores cache the line.
	a.Load(base)
	b.Load(base)
	before := b.Clock()
	b.Store(base, 1) // invalidates a's copy
	cost := b.Clock() - before
	if cost < DefaultCost.Inval {
		t.Errorf("invalidating store cost %d < Inval %d", cost, DefaultCost.Inval)
	}
}

func TestFalseSharingCostsShowUpInTime(t *testing.T) {
	// Two threads ping-ponging writes on one line must accumulate more
	// virtual time than on separate lines.
	run := func(stride mem.Addr) uint64 {
		space := mem.NewSpace()
		base := space.MustMap(mem.PageSize, 0)
		e := NewEngine(space, 2, Config{Cache: cachesim.New(2)})
		e.Run(func(th *Thread) {
			addr := base + mem.Addr(th.ID())*stride
			for i := 0; i < 500; i++ {
				th.Store(addr, uint64(i))
			}
		})
		return e.MaxClock()
	}
	shared := run(8)    // same cache line, different words
	separate := run(64) // different lines
	if shared <= separate {
		t.Errorf("false-sharing run (%d cycles) not slower than padded run (%d)", shared, separate)
	}
}

func TestBarrierReusableAcrossPhases(t *testing.T) {
	space := mem.NewSpace()
	e := NewEngine(space, 3, Config{})
	b := NewBarrier(3)
	order := make([]int, 0, 9)
	e.Run(func(th *Thread) {
		for phase := 0; phase < 3; phase++ {
			th.Tick(uint64(100 * (th.ID() + 1)))
			b.Wait(th)
			order = append(order, phase)
		}
	})
	// All phase-0 records must precede all phase-2 records.
	last0, first2 := -1, len(order)
	for i, p := range order {
		if p == 0 {
			last0 = i
		}
		if p == 2 && i < first2 {
			first2 = i
		}
	}
	if last0 > first2 {
		t.Errorf("phases interleaved across barrier: %v", order)
	}
}

func TestQuantumControlsSwitchGranularity(t *testing.T) {
	switches := func(quantum uint64) int {
		space := mem.NewSpace()
		e := NewEngine(space, 2, Config{Quantum: quantum})
		var order []int
		e.Run(func(th *Thread) {
			for i := 0; i < 200; i++ {
				order = append(order, th.ID())
				th.Tick(10)
			}
		})
		n := 0
		for i := 1; i < len(order); i++ {
			if order[i] != order[i-1] {
				n++
			}
		}
		return n
	}
	fine, coarse := switches(50), switches(1000)
	if fine <= coarse {
		t.Errorf("smaller quantum (%d switches) not finer than larger (%d)", fine, coarse)
	}
}

func TestTryLockSemantics(t *testing.T) {
	space := mem.NewSpace()
	a := Solo(space, 0, nil)
	b := Solo(space, 1, nil)
	var lk Lock
	if !lk.TryLock(a) {
		t.Fatal("TryLock on free lock failed")
	}
	if lk.TryLock(b) {
		t.Fatal("TryLock on held lock succeeded")
	}
	if !lk.Held(a) || lk.Held(b) {
		t.Error("Held wrong")
	}
	lk.Unlock(a)
	if !lk.TryLock(b) {
		t.Error("TryLock after unlock failed")
	}
	if lk.Acquires != 2 || lk.Contended != 0 {
		t.Errorf("counters: %d acquires %d contended", lk.Acquires, lk.Contended)
	}
}
