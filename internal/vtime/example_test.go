package vtime_test

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/vtime"
)

// Four logical threads run under deterministic virtual-time scheduling;
// the parallel region's "execution time" is the largest virtual clock.
func ExampleEngine_Run() {
	space := mem.NewSpace()
	engine := vtime.NewEngine(space, 4, vtime.Config{})
	data := space.MustMap(mem.PageSize, 0)

	var lock vtime.Lock
	engine.Run(func(th *vtime.Thread) {
		for i := 0; i < 100; i++ {
			lock.Lock(th)
			th.Store(data, th.Load(data)+1)
			lock.Unlock(th)
		}
	})
	fmt.Println("sum:", space.Load(data))
	fmt.Println("lock acquisitions:", lock.Acquires)
	fmt.Println("deterministic time:", engine.MaxClock() > 0)
	// Output:
	// sum: 400
	// lock acquisitions: 400
	// deterministic time: true
}

// A Barrier synchronizes phases in virtual time: no thread enters phase
// two before the slowest finishes phase one.
func ExampleBarrier() {
	space := mem.NewSpace()
	engine := vtime.NewEngine(space, 3, vtime.Config{})
	barrier := vtime.NewBarrier(3)
	minPhase2 := ^uint64(0)
	engine.Run(func(th *vtime.Thread) {
		th.Tick(uint64(1000 * (th.ID() + 1))) // unequal phase-one work
		barrier.Wait(th)
		if c := th.Clock(); c < minPhase2 {
			minPhase2 = c
		}
	})
	fmt.Println("everyone reached phase two at or after cycle 3000:", minPhase2 >= 3000)
	// Output:
	// everyone reached phase two at or after cycle 3000: true
}
