package vtime

import (
	"testing"

	"repro/internal/cachesim"
	"repro/internal/mem"
)

func TestRunDeterminism(t *testing.T) {
	trace := func() []int {
		space := mem.NewSpace()
		e := NewEngine(space, 4, Config{})
		var order []int
		var lk Lock
		e.Run(func(th *Thread) {
			for i := 0; i < 50; i++ {
				lk.Lock(th)
				order = append(order, th.ID())
				lk.Unlock(th)
				th.Tick(uint64(10 * (th.ID() + 1)))
			}
		})
		return order
	}
	a, b := trace(), trace()
	if len(a) != 200 || len(b) != 200 {
		t.Fatalf("trace lengths %d, %d; want 200", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at step %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestInterleavingIsDense(t *testing.T) {
	// With equal per-step costs, threads must alternate at quantum
	// granularity, not run to completion one after another.
	space := mem.NewSpace()
	e := NewEngine(space, 2, Config{Quantum: 100})
	var order []int
	e.Run(func(th *Thread) {
		for i := 0; i < 100; i++ {
			order = append(order, th.ID())
			th.Tick(50)
		}
	})
	switches := 0
	for i := 1; i < len(order); i++ {
		if order[i] != order[i-1] {
			switches++
		}
	}
	if switches < 20 {
		t.Errorf("only %d context switches over 200 steps; interleaving too coarse", switches)
	}
}

func TestClockAdvancesWithMemoryCosts(t *testing.T) {
	space := mem.NewSpace()
	base := space.MustMap(mem.PageSize, 0)
	cache := cachesim.New(1)
	th := Solo(space, 0, cache)
	th.Store(base, 1)
	afterMiss := th.Clock()
	th.Load(base)
	hitCost := th.Clock() - afterMiss
	if afterMiss < DefaultCost.Memory {
		t.Errorf("cold store cost %d < memory latency %d", afterMiss, DefaultCost.Memory)
	}
	if hitCost != DefaultCost.L1Hit {
		t.Errorf("warm load cost %d, want %d", hitCost, DefaultCost.L1Hit)
	}
}

func TestLockMutualExclusionVirtualTime(t *testing.T) {
	space := mem.NewSpace()
	e := NewEngine(space, 4, Config{})
	var lk Lock
	counter := 0
	e.Run(func(th *Thread) {
		for i := 0; i < 1000; i++ {
			lk.Lock(th)
			counter++
			th.Tick(5)
			lk.Unlock(th)
		}
	})
	if counter != 4000 {
		t.Errorf("counter = %d, want 4000", counter)
	}
	if lk.Acquires != 4000 {
		t.Errorf("acquires = %d, want 4000", lk.Acquires)
	}
	if lk.Contended == 0 {
		t.Error("no contention recorded despite 4 threads hammering one lock")
	}
}

func TestContentionStretchesVirtualTime(t *testing.T) {
	// The same total work under one lock must take longer (per thread)
	// with 4 threads than with 1 — virtual-time lock contention.
	perThread := func(n int) uint64 {
		space := mem.NewSpace()
		e := NewEngine(space, n, Config{})
		var lk Lock
		e.Run(func(th *Thread) {
			for i := 0; i < 500; i++ {
				lk.Lock(th)
				th.Tick(100) // critical section
				lk.Unlock(th)
			}
		})
		return e.MaxClock()
	}
	t1, t4 := perThread(1), perThread(4)
	if t4 < t1*2 {
		t.Errorf("4-thread lock-bound run (%d cycles) not slower than 1-thread (%d)", t4, t1)
	}
}

func TestBarrier(t *testing.T) {
	space := mem.NewSpace()
	e := NewEngine(space, 4, Config{})
	b := NewBarrier(4)
	phase := make([]int, 4)
	maxPhase0 := uint64(0)
	e.Run(func(th *Thread) {
		th.Tick(uint64(1000 * (th.ID() + 1))) // unequal phase lengths
		if c := th.Clock(); c > maxPhase0 {
			maxPhase0 = c
		}
		b.Wait(th)
		// After the barrier every thread's clock must be >= the slowest
		// thread's phase-0 time.
		if th.Clock() < 4000 {
			t.Errorf("thread %d passed barrier at %d cycles, before slowest arrival", th.ID(), th.Clock())
		}
		phase[th.ID()] = 1
	})
	for i, p := range phase {
		if p != 1 {
			t.Errorf("thread %d did not finish", i)
		}
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	space := mem.NewSpace()
	e := NewEngine(space, 2, Config{})
	defer func() {
		if r := recover(); r != "boom" {
			t.Errorf("recovered %v, want boom", r)
		}
	}()
	e.Run(func(th *Thread) {
		if th.ID() == 1 {
			panic("boom")
		}
		th.Tick(10)
	})
}

func TestUnlockByNonHolderPanics(t *testing.T) {
	space := mem.NewSpace()
	th := Solo(space, 0, nil)
	var lk Lock
	defer func() {
		if recover() == nil {
			t.Error("unlock of free lock did not panic")
		}
	}()
	lk.Unlock(th)
}

func TestResetClocks(t *testing.T) {
	space := mem.NewSpace()
	e := NewEngine(space, 2, Config{})
	e.Run(func(th *Thread) { th.Tick(100) })
	if e.MaxClock() == 0 {
		t.Fatal("clock did not advance")
	}
	e.ResetClocks()
	if e.MaxClock() != 0 {
		t.Error("ResetClocks left nonzero clocks")
	}
}

func TestEngineReusableAcrossRuns(t *testing.T) {
	space := mem.NewSpace()
	e := NewEngine(space, 2, Config{})
	e.Run(func(th *Thread) { th.Tick(10) })
	clocks := e.Run(func(th *Thread) { th.Tick(10) })
	for i, c := range clocks {
		if c != 20 {
			t.Errorf("thread %d clock = %d after two runs, want 20", i, c)
		}
	}
}

func TestCASCharged(t *testing.T) {
	space := mem.NewSpace()
	base := space.MustMap(mem.PageSize, 0)
	th := Solo(space, 0, nil)
	before := th.Clock()
	if !th.CAS(base, 0, 7) {
		t.Fatal("CAS failed")
	}
	if th.Clock() == before {
		t.Error("CAS advanced no virtual time")
	}
	if space.Load(base) != 7 {
		t.Error("CAS did not store")
	}
}
