package vtime

import (
	"testing"

	"repro/internal/mem"
)

// TestDeadlineWatchdog checks that a region whose threads never finish
// is wound down at the virtual-time deadline instead of hanging.
func TestDeadlineWatchdog(t *testing.T) {
	s := mem.NewSpace()
	e := NewEngine(s, 4, Config{Deadline: 100_000})
	finished := make([]bool, 4)
	e.Run(func(th *Thread) {
		for { // spin forever in virtual time
			th.Work(10)
		}
	})
	if !e.DeadlineExceeded() {
		t.Fatal("DeadlineExceeded() = false after a livelocked region")
	}
	for id, f := range finished {
		if f {
			t.Errorf("thread %d reported finished, want killed", id)
		}
	}
	// The engine must still be usable: a normal region afterwards runs
	// to completion and clears the flag.
	e.ResetClocks()
	e.Deadline = 0
	done := make([]bool, 4)
	e.Run(func(th *Thread) {
		th.Work(100)
		done[th.ID()] = true
	})
	if e.DeadlineExceeded() {
		t.Error("DeadlineExceeded() = true after a clean region")
	}
	for id, f := range done {
		if !f {
			t.Errorf("thread %d did not finish the clean region", id)
		}
	}
}

// TestDeadlineSparesFastThreads checks that threads finishing before
// the deadline complete normally while the stragglers are killed.
func TestDeadlineSparesFastThreads(t *testing.T) {
	s := mem.NewSpace()
	e := NewEngine(s, 2, Config{Deadline: 50_000})
	done := make([]bool, 2)
	e.Run(func(th *Thread) {
		if th.ID() == 0 {
			th.Work(10)
			done[0] = true
			return
		}
		for {
			th.Work(10)
		}
	})
	if !e.DeadlineExceeded() {
		t.Fatal("watchdog did not trip")
	}
	if !done[0] {
		t.Error("fast thread was killed before finishing")
	}
	if done[1] {
		t.Error("spinning thread reported done")
	}
}

// TestDeadlinePreservesRealPanics checks that a genuine thread panic
// raised before the watchdog trips still propagates out of Run.
func TestDeadlinePreservesRealPanics(t *testing.T) {
	s := mem.NewSpace()
	e := NewEngine(s, 1, Config{})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("real panic was swallowed")
		}
	}()
	e.Run(func(th *Thread) {
		th.Work(1)
		panic("boom")
	})
}
