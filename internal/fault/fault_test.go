package fault

import "testing"

func TestParseErrors(t *testing.T) {
	bad := []string{
		"oom",           // no @
		"oom@0",         // 1-based
		"oom@abc",       // not a number
		"lat@5",         // missing cycles
		"lat@5:0",       // zero cycles
		"lat%200:10",    // percent out of range
		"stall@5:1:2",   // missing t prefix
		"stall@tx:1:2",  // bad tid
		"storm@20:10",   // empty window
		"storm@5",       // missing :to
		"quota@0",       // zero bytes
		"quota%50",      // % not allowed
		"explode@1",     // unknown kind
		"oom@5x0",       // zero repeat
		"oom@5,bogus@1", // second clause bad
	}
	for _, spec := range bad {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	p, err := Parse("", 7)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Empty() {
		t.Error("empty spec is not Empty()")
	}
	if fail, delay := p.MallocFault(0, 64); fail || delay != 0 {
		t.Error("empty plan fired")
	}
}

func TestCountTriggering(t *testing.T) {
	p := MustParse("oom@3x2", 1)
	var failed []int
	for i := 1; i <= 6; i++ {
		if fail, _ := p.MallocFault(0, 16); fail {
			failed = append(failed, i)
		}
	}
	if len(failed) != 2 || failed[0] != 3 || failed[1] != 4 {
		t.Errorf("oom@3x2 failed mallocs %v, want [3 4]", failed)
	}
	if st := p.Stats(); st.OOMs != 2 || st.MallocsN != 6 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLatencyTriggering(t *testing.T) {
	p := MustParse("lat@2:500", 1)
	if _, d := p.MallocFault(0, 16); d != 0 {
		t.Error("spike on malloc 1")
	}
	if _, d := p.MallocFault(0, 16); d != 500 {
		t.Error("no 500-cycle spike on malloc 2")
	}
	if _, d := p.MallocFault(0, 16); d != 0 {
		t.Error("spike on malloc 3")
	}
}

func TestSuffixes(t *testing.T) {
	p := MustParse("quota@2m,lat@1k:5k", 9)
	if p.Quota() != 2<<20 {
		t.Errorf("quota = %d, want %d", p.Quota(), 2<<20)
	}
	if p.latency != 5<<10 {
		t.Errorf("latency = %d, want %d", p.latency, 5<<10)
	}
	if p.latAt[0].from != 1<<10 {
		t.Errorf("lat window from = %d, want %d", p.latAt[0].from, 1<<10)
	}
}

func TestStallOneShot(t *testing.T) {
	p := MustParse("stall@t1:1000:777", 1)
	if s, _ := p.TxBegin(0, 5000); s != 0 {
		t.Error("stall fired for wrong thread")
	}
	if s, _ := p.TxBegin(1, 500); s != 0 {
		t.Error("stall fired before its virtual time")
	}
	if s, _ := p.TxBegin(1, 1500); s != 777 {
		t.Error("stall did not fire at its virtual time")
	}
	if s, _ := p.TxBegin(1, 2000); s != 0 {
		t.Error("stall fired twice")
	}
}

func TestStorm(t *testing.T) {
	p := MustParse("storm@100:200", 1)
	if _, storm := p.TxBegin(0, 50); storm {
		t.Error("storm before window")
	}
	if _, storm := p.TxBegin(0, 150); !storm {
		t.Error("no storm inside window")
	}
	if _, storm := p.TxBegin(0, 200); storm {
		t.Error("storm at exclusive upper bound")
	}
}

// TestDeterminism checks that probabilistic plans replay identically
// for the same seed, differ across seeds, and rewind with Reset.
func TestDeterminism(t *testing.T) {
	run := func(p *Plan) []bool {
		out := make([]bool, 200)
		for i := range out {
			out[i], _ = p.MallocFault(i%4, 32)
		}
		return out
	}
	a := run(MustParse("oom%20", 42))
	b := run(MustParse("oom%20", 42))
	c := run(MustParse("oom%20", 43))
	same := func(x, y []bool) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !same(a, b) {
		t.Error("same seed produced different fault sequences")
	}
	if same(a, c) {
		t.Error("different seeds produced identical fault sequences")
	}
	var fired int
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired < 20 || fired > 60 {
		t.Errorf("oom%%20 fired %d/200 times, want roughly 40", fired)
	}
	p := MustParse("oom%20", 42)
	d := run(p)
	p.Reset()
	if !same(d, run(p)) {
		t.Error("Reset did not rewind the plan")
	}
}
