// Package fault provides deterministic fault injection for the
// simulated TM system: allocator OOM, malloc latency spikes, thread
// stalls at virtual-time points, transaction abort storms, and address-
// space quotas. A Plan is parsed from a compact spec string, is driven
// by a seeded PRNG, and consumes no wall-clock or host state, so the
// same spec + seed produces the same faults in every run — injected
// failures are as reproducible as the experiments they perturb.
//
// Spec grammar (comma-separated clauses):
//
//	oom@N[xK]    fail the N-th Malloc (1-based, across all threads);
//	             with xK, fail K consecutive Mallocs starting at N
//	oom%P        fail each Malloc with probability P percent
//	lat@N[xK]:C  charge C extra virtual cycles to the N-th Malloc
//	             (xK: K consecutive Mallocs starting at N)
//	lat%P:C      charge C extra cycles with probability P percent
//	stall@tT:A:C stall thread T for C cycles at its first transaction
//	             begin at or after virtual time A
//	storm@F:T    abort every transaction beginning in virtual time
//	             window [F, T) (an abort storm)
//	quota@B      cap the simulated address space at B bytes (k/m/g
//	             suffixes: kilo/mega/giga)
//	crash@N[xK]  crash (halt the simulation) at the first durable-memory
//	             checkpoint at or after virtual cycle N; with xK, at the
//	             K-th such checkpoint
//	crash%P      crash at each durable-memory checkpoint with
//	             probability P percent (one-shot)
//	crashphase:<commit|apply|malloc>[@N]
//	             crash at the N-th (default first) checkpoint of the
//	             named commit phase: "commit" is the redo-log commit
//	             marker, "apply" the post-write-back apply/truncate
//	             point, "malloc" an allocator metadata-journal append
//
// Counts and cycle values accept k/m/g suffixes too (e.g. "lat@1k:5k").
// Crash clauses only fire on runs with a durable memory attached (the
// -pmem/-crash CLI flags); they are consulted at pmem checkpoints via
// Plan.Crash and at most one fires per plan.
//
// A Plan is stateful (it counts Mallocs and checkpoints); use Clone (or
// CloneSeeded) to run the same parsed spec again — or call Reset — so
// repetitions stay identical.
package fault

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/mem"
	"repro/internal/obs"
)

// window is one count-indexed trigger: fires for events n with
// from <= n < from+span.
type window struct {
	from uint64
	span uint64
}

func (w window) hits(n uint64) bool { return n >= w.from && n < w.from+w.span }

// stall is a one-shot thread stall: thread tid pauses for cycles at its
// first transaction begin at or after virtual time at.
type stall struct {
	tid    int
	at     uint64
	cycles uint64
	fired  bool
}

// crashAt fires at the nth durable-memory checkpoint at or after
// virtual cycle at; seen counts qualifying checkpoints.
type crashAt struct {
	at   uint64
	nth  uint64
	seen uint64
}

// crashPhase fires at the nth checkpoint of the named commit phase.
type crashPhase struct {
	phase string
	nth   uint64
	seen  uint64
}

// Plan is a parsed, seeded fault plan. It implements alloc.Injector
// (structurally — this package does not import alloc) and the stm
// layer's fault hooks. Methods are safe for use from engine threads:
// the virtual-time engine runs one thread at a time, but a host mutex
// guards the counters anyway so host-level races cannot corrupt them.
type Plan struct {
	spec string
	seed uint64

	oomAt    []window
	oomPct   uint64 // percent 0..100
	latAt    []window
	latPct   uint64
	latency  uint64 // cycles per latency spike
	stalls   []stall
	storms   []window // virtual-time windows, not counts
	quota    uint64
	crashes  []crashAt
	crashPct uint64
	phases   []crashPhase

	mu      sync.Mutex
	rng     uint64
	mallocN uint64 // Mallocs seen
	crashed bool   // a crash clause fired (one-shot across all clauses)
	stats   Stats
	rec     *obs.Recorder
}

// Stats counts the faults a plan actually delivered.
type Stats struct {
	OOMs     uint64 // Mallocs failed
	Spikes   uint64 // latency spikes charged
	Stalls   uint64 // thread stalls delivered
	Aborted  uint64 // transactions killed by abort storms
	MallocsN uint64 // Mallocs observed (fired or not)
	Crashes  uint64 // crash points fired (0 or 1)
}

// Parse builds a Plan from a spec string and a seed. An empty spec
// yields a plan that never fires (but still counts Mallocs).
func Parse(spec string, seed uint64) (*Plan, error) {
	p := &Plan{spec: spec, seed: seed}
	p.Reset()
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if err := p.parseClause(clause); err != nil {
			return nil, fmt.Errorf("fault: clause %q: %w", clause, err)
		}
	}
	return p, nil
}

// MustParse is Parse but panics on a malformed spec.
func MustParse(spec string, seed uint64) *Plan {
	p, err := Parse(spec, seed)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *Plan) parseClause(clause string) error {
	// crashphase uses ':' rather than the count/percent separators, so it
	// is dispatched before the @/% split.
	if rest, ok := strings.CutPrefix(clause, "crashphase:"); ok {
		return p.parseCrashPhase(rest)
	}
	kind, rest, ok := cutAny(clause, "@%")
	if !ok {
		return fmt.Errorf("missing @ or %%")
	}
	pct := clause[len(kind)] == '%'
	switch kind {
	case "oom":
		if pct {
			v, err := parsePct(rest)
			if err != nil {
				return err
			}
			p.oomPct = v
			return nil
		}
		w, err := parseWindow(rest)
		if err != nil {
			return err
		}
		p.oomAt = append(p.oomAt, w)
		return nil
	case "lat":
		at, cyc, ok := strings.Cut(rest, ":")
		if !ok {
			return fmt.Errorf("lat needs :cycles")
		}
		c, err := parseAmount(cyc)
		if err != nil || c == 0 {
			return fmt.Errorf("bad cycle count %q", cyc)
		}
		p.latency = c
		if pct {
			v, err := parsePct(at)
			if err != nil {
				return err
			}
			p.latPct = v
			return nil
		}
		w, err := parseWindow(at)
		if err != nil {
			return err
		}
		p.latAt = append(p.latAt, w)
		return nil
	case "stall":
		if pct {
			return fmt.Errorf("stall takes @, not %%")
		}
		parts := strings.Split(rest, ":")
		if len(parts) != 3 || !strings.HasPrefix(parts[0], "t") {
			return fmt.Errorf("want stall@t<tid>:<at>:<cycles>")
		}
		tid, err := strconv.Atoi(parts[0][1:])
		if err != nil || tid < 0 {
			return fmt.Errorf("bad tid %q", parts[0])
		}
		at, err := parseAmount(parts[1])
		if err != nil {
			return err
		}
		cyc, err := parseAmount(parts[2])
		if err != nil || cyc == 0 {
			return fmt.Errorf("bad cycle count %q", parts[2])
		}
		p.stalls = append(p.stalls, stall{tid: tid, at: at, cycles: cyc})
		return nil
	case "storm":
		if pct {
			return fmt.Errorf("storm takes @, not %%")
		}
		from, to, ok := strings.Cut(rest, ":")
		if !ok {
			return fmt.Errorf("want storm@<from>:<to>")
		}
		f, err := parseAmount(from)
		if err != nil {
			return err
		}
		t, err := parseAmount(to)
		if err != nil {
			return err
		}
		if t <= f {
			return fmt.Errorf("empty window [%d, %d)", f, t)
		}
		p.storms = append(p.storms, window{from: f, span: t - f})
		return nil
	case "quota":
		if pct {
			return fmt.Errorf("quota takes @, not %%")
		}
		b, err := parseAmount(rest)
		if err != nil || b == 0 {
			return fmt.Errorf("bad byte count %q", rest)
		}
		p.quota = b
		return nil
	case "crash":
		if pct {
			v, err := parsePct(rest)
			if err != nil {
				return err
			}
			p.crashPct = v
			return nil
		}
		at, span := rest, ""
		if i := strings.IndexByte(rest, 'x'); i >= 0 {
			at, span = rest[:i], rest[i+1:]
		}
		n, err := parseAmount(at)
		if err != nil {
			return err
		}
		c := crashAt{at: n, nth: 1}
		if span != "" {
			k, err := parseAmount(span)
			if err != nil || k == 0 {
				return fmt.Errorf("bad repeat count %q", span)
			}
			c.nth = k
		}
		p.crashes = append(p.crashes, c)
		return nil
	}
	return fmt.Errorf("unknown fault kind %q", kind)
}

// parseCrashPhase parses the remainder of a crashphase:<phase>[@N]
// clause.
func (p *Plan) parseCrashPhase(rest string) error {
	phase, at, hasAt := strings.Cut(rest, "@")
	switch phase {
	case "commit", "apply", "malloc":
	default:
		return fmt.Errorf("fault: crashphase: unknown phase %q (want commit, apply or malloc)", phase)
	}
	c := crashPhase{phase: phase, nth: 1}
	if hasAt {
		n, err := parseAmount(at)
		if err != nil || n == 0 {
			return fmt.Errorf("fault: crashphase: bad checkpoint index %q (1-based)", at)
		}
		c.nth = n
	}
	p.phases = append(p.phases, c)
	return nil
}

// cutAny splits s at the first occurrence of any byte in seps, keeping
// the separator accessible via s[len(before)].
func cutAny(s, seps string) (before, after string, ok bool) {
	if i := strings.IndexAny(s, seps); i >= 0 {
		return s[:i], s[i+1:], true
	}
	return s, "", false
}

// parseAmount parses a decimal count with an optional k/m/g suffix.
func parseAmount(s string) (uint64, error) {
	mult := uint64(1)
	switch {
	case strings.HasSuffix(s, "k"), strings.HasSuffix(s, "K"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "m"), strings.HasSuffix(s, "M"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "g"), strings.HasSuffix(s, "G"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad amount %q", s)
	}
	return v * mult, nil
}

func parsePct(s string) (uint64, error) {
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil || v > 100 {
		return 0, fmt.Errorf("bad percentage %q", s)
	}
	return v, nil
}

// parseWindow parses "N" or "NxK" (fire at event N, or K events from N).
func parseWindow(s string) (window, error) {
	at, span := s, ""
	if i := strings.IndexByte(s, 'x'); i >= 0 {
		at, span = s[:i], s[i+1:]
	}
	n, err := parseAmount(at)
	if err != nil || n == 0 {
		return window{}, fmt.Errorf("bad event index %q (1-based)", at)
	}
	w := window{from: n, span: 1}
	if span != "" {
		k, err := parseAmount(span)
		if err != nil || k == 0 {
			return window{}, fmt.Errorf("bad repeat count %q", span)
		}
		w.span = k
	}
	return w, nil
}

// Reset rewinds the plan's counters and PRNG to their post-Parse state,
// making the next run identical to the first.
func (p *Plan) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rng = p.seed ^ 0x9e3779b97f4a7c15
	if p.rng == 0 {
		p.rng = 0x9e3779b97f4a7c15
	}
	p.mallocN = 0
	p.stats = Stats{}
	for i := range p.stalls {
		p.stalls[i].fired = false
	}
	p.crashed = false
	for i := range p.crashes {
		p.crashes[i].seen = 0
	}
	for i := range p.phases {
		p.phases[i].seen = 0
	}
}

// Clone returns an independent plan with the same parsed clauses, spec
// and seed, rewound to its post-Parse state. It replaces re-parsing the
// spec string when the same plan drives several runs (harness cells):
// the clone carries no shared state, so concurrent cells cannot perturb
// each other's fault schedules.
func (p *Plan) Clone() *Plan {
	if p == nil {
		return nil
	}
	return p.CloneSeeded(p.seed)
}

// CloneSeeded is Clone with a different PRNG seed — the harness derives
// one per cell so probabilistic clauses decorrelate across cells while
// each cell stays reproducible.
func (p *Plan) CloneSeeded(seed uint64) *Plan {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	q := &Plan{
		spec:     p.spec,
		seed:     seed,
		oomAt:    append([]window(nil), p.oomAt...),
		oomPct:   p.oomPct,
		latAt:    append([]window(nil), p.latAt...),
		latPct:   p.latPct,
		latency:  p.latency,
		stalls:   append([]stall(nil), p.stalls...),
		storms:   append([]window(nil), p.storms...),
		quota:    p.quota,
		crashes:  append([]crashAt(nil), p.crashes...),
		crashPct: p.crashPct,
		phases:   append([]crashPhase(nil), p.phases...),
	}
	p.mu.Unlock()
	q.Reset()
	return q
}

// Join concatenates spec fragments into one comma-separated spec,
// skipping empty fragments (the -fault and -crash flags merge through
// it, since crash clauses share the plan grammar).
func Join(specs ...string) string {
	var parts []string
	for _, s := range specs {
		if strings.TrimSpace(s) != "" {
			parts = append(parts, s)
		}
	}
	return strings.Join(parts, ",")
}

// SetObserver streams delivered faults into r (nil disables).
func (p *Plan) SetObserver(r *obs.Recorder) { p.rec = r }

// Spec returns the spec string the plan was parsed from.
func (p *Plan) Spec() string { return p.spec }

// Seed returns the plan's PRNG seed.
func (p *Plan) Seed() uint64 { return p.seed }

// Empty reports whether the plan can never fire.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.oomAt) == 0 && p.oomPct == 0 &&
		len(p.latAt) == 0 && p.latPct == 0 &&
		len(p.stalls) == 0 && len(p.storms) == 0 && p.quota == 0 &&
		!p.HasCrash())
}

// HasCrash reports whether the plan contains any crash clause. Crash
// clauses require a durable memory (pmem) to deliver their checkpoints;
// callers use this to reject a crash spec on a non-durable run instead
// of silently never crashing.
func (p *Plan) HasCrash() bool {
	return p != nil && (len(p.crashes) > 0 || p.crashPct > 0 || len(p.phases) > 0)
}

// Stats returns the faults delivered so far.
func (p *Plan) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// next steps the splitmix64 PRNG; caller holds p.mu.
func (p *Plan) next() uint64 {
	p.rng += 0x9e3779b97f4a7c15
	z := p.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// roll returns true with probability pct percent; caller holds p.mu.
func (p *Plan) roll(pct uint64) bool {
	if pct == 0 {
		return false
	}
	return p.next()%100 < pct
}

// MallocFault implements the allocator injection hook (alloc.Injector):
// consulted once per Malloc, it reports whether the call must fail and
// how many extra virtual cycles to charge.
func (p *Plan) MallocFault(tid int, size uint64) (fail bool, delay uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.mallocN++
	p.stats.MallocsN++
	n := p.mallocN
	for _, w := range p.oomAt {
		if w.hits(n) {
			fail = true
		}
	}
	if !fail && p.roll(p.oomPct) {
		fail = true
	}
	for _, w := range p.latAt {
		if w.hits(n) {
			delay = p.latency
		}
	}
	if delay == 0 && p.roll(p.latPct) {
		delay = p.latency
	}
	if fail {
		p.stats.OOMs++
	}
	if delay > 0 {
		p.stats.Spikes++
	}
	return fail, delay
}

// TxBegin is the transaction-begin hook: called with the thread id and
// its virtual clock, it returns stallCycles (a one-shot thread stall to
// serve before the transaction starts) and storm (the transaction must
// abort and retry — an abort-storm kill).
func (p *Plan) TxBegin(tid int, clock uint64) (stallCycles uint64, storm bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.stalls {
		s := &p.stalls[i]
		if !s.fired && s.tid == tid && clock >= s.at {
			s.fired = true
			stallCycles += s.cycles
			p.stats.Stalls++
			if p.rec != nil {
				p.rec.Fault("stall", tid, clock, s.cycles)
			}
		}
	}
	for _, w := range p.storms {
		if w.hits(clock) {
			storm = true
			p.stats.Aborted++
			if p.rec != nil {
				p.rec.Fault("storm", tid, clock, 0)
			}
			break
		}
	}
	return stallCycles, storm
}

// Crash is the durable-memory checkpoint hook: called by pmem with the
// thread id, its virtual clock and the checkpoint's commit phase
// ("commit", "apply", "malloc", or a non-phase tag like "flush"), it
// reports whether the simulation must crash here. At most one crash
// fires per plan; after it the plan never fires again (the machine is
// down).
func (p *Plan) Crash(tid int, clock uint64, phase string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.crashed {
		return false
	}
	fire := false
	for i := range p.crashes {
		c := &p.crashes[i]
		if clock >= c.at {
			c.seen++
			if c.seen >= c.nth {
				fire = true
			}
		}
	}
	for i := range p.phases {
		c := &p.phases[i]
		if c.phase == phase {
			c.seen++
			if c.seen >= c.nth {
				fire = true
			}
		}
	}
	if !fire && p.roll(p.crashPct) {
		fire = true
	}
	if !fire {
		return false
	}
	p.crashed = true
	p.stats.Crashes++
	if p.rec != nil {
		p.rec.Fault("crash", tid, clock, 0)
	}
	return true
}

// Quota returns the address-space byte cap the plan requests (0: none).
func (p *Plan) Quota() uint64 { return p.quota }

// ApplyQuota installs the plan's quota on the space (a no-op without a
// quota clause).
func (p *Plan) ApplyQuota(s *mem.Space) {
	if p.quota != 0 {
		s.SetQuota(p.quota)
	}
}
