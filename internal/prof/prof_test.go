package prof_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/mem"
	"repro/internal/prof"
	"repro/internal/vtime"
)

// find returns the cycles of the sample with exactly this (tid, stack),
// or 0 when absent.
func find(p *prof.Profile, tid int, stack ...string) uint64 {
	for _, s := range p.Samples {
		if s.TID != tid || len(s.Stack) != len(stack) {
			continue
		}
		match := true
		for i := range stack {
			if s.Stack[i] != stack[i] {
				match = false
				break
			}
		}
		if match {
			return s.Cycles
		}
	}
	return 0
}

// TestRegionAccounting drives nested regions through a real engine and
// checks that every cycle lands in the right bucket and that the
// profile total reconciles exactly with the engine's thread clocks.
func TestRegionAccounting(t *testing.T) {
	p := prof.New()
	eng := vtime.NewEngine(mem.NewSpace(), 2, vtime.Config{Prof: p})
	clocks := eng.Run(func(th *vtime.Thread) {
		th.Tick(5) // untracked prelude
		p.Begin(th, "outer")
		th.Tick(10)
		p.Begin(th, "inner")
		th.Tick(20)
		p.End(th)
		th.Tick(7)
		p.End(th)
		p.End(th)  // unmatched End: ignored
		th.Tick(3) // untracked tail, flushed by the engine's SyncClock
	})

	pf := p.Profile()
	var want uint64
	for _, c := range clocks {
		want += c
	}
	if pf.TotalCycles != want {
		t.Fatalf("TotalCycles = %d, want the summed thread clocks %d", pf.TotalCycles, want)
	}
	for tid := 0; tid < 2; tid++ {
		if got := find(pf, tid, prof.UntrackedFrame); got != 8 {
			t.Errorf("tid %d untracked = %d, want 8", tid, got)
		}
		if got := find(pf, tid, "outer"); got != 17 {
			t.Errorf("tid %d outer self = %d, want 17", tid, got)
		}
		if got := find(pf, tid, "outer", "inner"); got != 20 {
			t.Errorf("tid %d outer;inner = %d, want 20", tid, got)
		}
	}
}

// TestStallAttribution checks the memory-access split: compute cycles
// to the open region, access latency to stall/<level>, invalidation
// overhead to stall/coherence.
func TestStallAttribution(t *testing.T) {
	p := prof.New()
	// 100 compute cycles, then a 40-cycle memory access that also paid
	// 15 cycles of coherence invalidation.
	p.Stall(3, cachesim.MemoryHit, 40, 15, 155)
	p.SyncClock(3, 200)

	pf := p.Profile()
	if got := find(pf, 3, prof.UntrackedFrame); got != 145 {
		t.Errorf("untracked = %d, want 145 (100 compute + 45 tail)", got)
	}
	if got := find(pf, 3, "stall/memory"); got != 40 {
		t.Errorf("stall/memory = %d, want 40", got)
	}
	if got := find(pf, 3, "stall/coherence"); got != 15 {
		t.Errorf("stall/coherence = %d, want 15", got)
	}
	if pf.TotalCycles != 200 {
		t.Errorf("TotalCycles = %d, want 200", pf.TotalCycles)
	}
}

// TestResetClock checks that the rebase between experiment phases
// flushes pending cycles and restarts attribution at clock zero.
func TestResetClock(t *testing.T) {
	p := prof.New()
	p.SyncClock(0, 50)
	p.ResetClock(0, 80) // +30, rebase
	p.SyncClock(0, 10)  // +10 on the fresh clock
	if got := p.Profile().TotalCycles; got != 90 {
		t.Errorf("TotalCycles = %d, want 90", got)
	}
}

// TestNilProfiler pins the disabled state: every method is a no-op on
// nil and Profile returns nil.
func TestNilProfiler(t *testing.T) {
	var p *prof.Profiler
	if p.Enabled() {
		t.Error("nil profiler must report disabled")
	}
	p.Stall(0, cachesim.L1Hit, 1, 0, 4)
	p.SyncClock(0, 10)
	p.ResetClock(0, 20)
	p.SetRecorder(nil)
	if p.Profile() != nil {
		t.Error("nil profiler must yield a nil profile")
	}
}

func sampleProfile(label string, cycles uint64) *prof.Profile {
	p := &prof.Profile{
		Schema: prof.Schema,
		Label:  label,
		Samples: []prof.Sample{
			{TID: 0, Stack: []string{"a"}, Cycles: cycles},
			{TID: 0, Stack: []string{"a", "b"}, Cycles: 2 * cycles},
			{TID: 1, Stack: []string{prof.UntrackedFrame}, Cycles: 3 * cycles},
		},
	}
	for _, s := range p.Samples {
		p.TotalCycles += s.Cycles
	}
	return p
}

func TestMerge(t *testing.T) {
	a := sampleProfile("", 10)
	b := sampleProfile("cell-b", 100)
	b.Samples = append(b.Samples, prof.Sample{TID: 2, Stack: []string{"c"}, Cycles: 7})
	b.TotalCycles += 7

	m := prof.Merge(a, nil, b)
	if m.TotalCycles != a.TotalCycles+b.TotalCycles {
		t.Errorf("merged total = %d, want %d", m.TotalCycles, a.TotalCycles+b.TotalCycles)
	}
	if got := find(m, 0, "a", "b"); got != 220 {
		t.Errorf("merged a;b = %d, want 220", got)
	}
	if got := find(m, 2, "c"); got != 7 {
		t.Errorf("merged c = %d, want 7", got)
	}
	if m.Label != "cell-b" {
		t.Errorf("merged label = %q, want first non-empty input label", m.Label)
	}
	// Canonical order: ascending (tid, stack).
	for i := 1; i < len(m.Samples); i++ {
		if m.Samples[i].TID < m.Samples[i-1].TID {
			t.Fatalf("samples not sorted by tid at %d", i)
		}
	}
	// Inputs are never mutated.
	if a.TotalCycles != 60 || len(a.Samples) != 3 {
		t.Error("Merge mutated its input")
	}
}

func TestDiffReconciliation(t *testing.T) {
	a := sampleProfile("glibc", 10)
	b := sampleProfile("tcmalloc", 25)
	b.Samples = append(b.Samples, prof.Sample{TID: 0, Stack: []string{"only-b"}, Cycles: 9})
	b.TotalCycles += 9

	rep := prof.Diff(a, b)
	if len(rep.Rows) == 0 {
		t.Fatal("diff of non-empty profiles must have rows")
	}
	var sumA, sumB uint64
	for _, r := range rep.Rows {
		sumA += r.A
		sumB += r.B
		if r.Delta != int64(r.B)-int64(r.A) {
			t.Errorf("row %v delta = %d, want B-A", r.Stack, r.Delta)
		}
	}
	if sumA != a.TotalCycles || sumB != b.TotalCycles {
		t.Errorf("rows sum to (%d, %d), want exact partition (%d, %d)",
			sumA, sumB, a.TotalCycles, b.TotalCycles)
	}
	// Sorted by |delta| descending.
	abs := func(v int64) int64 {
		if v < 0 {
			return -v
		}
		return v
	}
	for i := 1; i < len(rep.Rows); i++ {
		if abs(rep.Rows[i].Delta) > abs(rep.Rows[i-1].Delta) {
			t.Fatalf("rows not sorted by |delta| at %d", i)
		}
	}

	var buf bytes.Buffer
	if err := rep.WriteText(&buf, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "totals reconcile") {
		t.Errorf("report must state reconciliation:\n%s", buf.String())
	}
}

func TestWriteFolded(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleProfile("", 10).WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	want := "t0;a 10\nt0;a;b 20\nt1;(untracked) 30\n"
	if buf.String() != want {
		t.Errorf("folded output = %q, want %q", buf.String(), want)
	}
}

func TestJSONRoundTripAndInfo(t *testing.T) {
	p := sampleProfile("lbl", 10)
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := prof.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != "lbl" || got.TotalCycles != p.TotalCycles || len(got.Samples) != len(p.Samples) {
		t.Errorf("round-tripped profile differs: %+v", got)
	}

	if _, err := prof.ReadJSON(strings.NewReader(`{"schema":"bogus"}`)); err == nil {
		t.Error("ReadJSON must reject unknown schemas")
	}

	info := p.Info()
	if info.Samples != 3 || info.Threads != 2 || info.Frames != 3 || info.TotalCycles != 60 {
		t.Errorf("Info = %+v, want 3 samples / 2 threads / 3 frames / 60 cycles", info)
	}
	if (*prof.Profile)(nil).Info() != nil {
		t.Error("nil profile must have nil info")
	}
}

func TestFrameStats(t *testing.T) {
	stats := sampleProfile("", 10).FrameStats()
	byFrame := make(map[string]prof.FrameStat)
	for _, s := range stats {
		byFrame[s.Frame] = s
	}
	if s := byFrame["a"]; s.Self != 10 || s.Cum != 30 {
		t.Errorf("frame a = self %d cum %d, want 10/30", s.Self, s.Cum)
	}
	if s := byFrame["b"]; s.Self != 20 || s.Cum != 20 {
		t.Errorf("frame b = self %d cum %d, want 20/20", s.Self, s.Cum)
	}
	for i := 1; i < len(stats); i++ {
		if stats[i].Self > stats[i-1].Self {
			t.Fatalf("stats not sorted by self descending at %d", i)
		}
	}
}

// TestProfileDeterminism runs the identical workload twice with fresh
// profilers and requires byte-identical JSON artifacts.
func TestProfileDeterminism(t *testing.T) {
	runOnce := func() []byte {
		p := prof.New()
		eng := vtime.NewEngine(mem.NewSpace(), 4, vtime.Config{Prof: p})
		eng.Run(func(th *vtime.Thread) {
			for i := 0; i < 50; i++ {
				p.Begin(th, "phase")
				th.Tick(uint64(th.ID() + i))
				p.End(th)
				th.Yield()
			}
		})
		var buf bytes.Buffer
		if err := p.Profile().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(runOnce(), runOnce()) {
		t.Error("same workload must produce byte-identical profiles")
	}
}
