package prof

import (
	"compress/gzip"
	"fmt"
	"io"
)

// This file encodes a Profile as a gzipped pprof profile.proto — the
// format `go tool pprof` and the pprof web UI consume — using a small
// hand-rolled protobuf writer (the repository is stdlib-only). Only the
// message subset a profile needs is implemented:
//
//	Profile:  1 sample_type (ValueType), 2 sample (Sample),
//	          4 location (Location), 5 function (Function),
//	          6 string_table (string)
//	Sample:   1 location_id (packed uint64, leaf first), 2 value
//	          (packed int64), 3 label (Label)
//	Label:    1 key, 3 num       (one "thread" label per sample)
//	Location: 1 id, 4 line (Line)
//	Line:     1 function_id
//	Function: 1 id, 2 name
//	ValueType: 1 type, 2 unit
//
// Wall-clock provenance fields (time_nanos, duration_nanos, period)
// are deliberately omitted so the artifact stays byte-deterministic;
// the gzip wrapper is deterministic too (zero ModTime, fixed OS byte).
// decodePprof is the matching reader, kept in-tree so round-trip tests
// pin the wire format without an external protobuf dependency.

const (
	wireVarint = 0
	wireF64    = 1
	wireBytes  = 2
	wireF32    = 5
)

// protoBuf is a minimal protobuf wire-format writer.
type protoBuf struct{ b []byte }

func (e *protoBuf) varint(v uint64) {
	for v >= 0x80 {
		e.b = append(e.b, byte(v)|0x80)
		v >>= 7
	}
	e.b = append(e.b, byte(v))
}

func (e *protoBuf) tag(field, wire int) { e.varint(uint64(field)<<3 | uint64(wire)) }

// uintField emits a varint field, omitting proto3 zero values.
func (e *protoBuf) uintField(field int, v uint64) {
	if v == 0 {
		return
	}
	e.tag(field, wireVarint)
	e.varint(v)
}

func (e *protoBuf) bytesField(field int, data []byte) {
	e.tag(field, wireBytes)
	e.varint(uint64(len(data)))
	e.b = append(e.b, data...)
}

func (e *protoBuf) stringField(field int, s string) {
	e.tag(field, wireBytes)
	e.varint(uint64(len(s)))
	e.b = append(e.b, s...)
}

// packedField emits a repeated varint field in packed encoding.
func (e *protoBuf) packedField(field int, vs []uint64) {
	if len(vs) == 0 {
		return
	}
	var inner protoBuf
	for _, v := range vs {
		inner.varint(v)
	}
	e.bytesField(field, inner.b)
}

// WritePprof writes the profile as a gzipped pprof profile.proto with
// one sample type ("virtual-cycles"/"cycles") and a "thread" number
// label carrying each sample's logical thread id.
func (p *Profile) WritePprof(w io.Writer) error {
	var st []string
	strIdx := make(map[string]uint64)
	str := func(s string) uint64 {
		if i, ok := strIdx[s]; ok {
			return i
		}
		i := uint64(len(st))
		strIdx[s] = i
		st = append(st, s)
		return i
	}
	str("") // string_table[0] must be ""

	var out protoBuf

	var vt protoBuf
	vt.uintField(1, str("virtual-cycles"))
	vt.uintField(2, str("cycles"))
	out.bytesField(1, vt.b)

	// Function/location ids are assigned in first-use order over the
	// canonically sorted sample list, so the artifact is deterministic.
	funcIdx := make(map[string]uint64)
	var funcs []string
	fn := func(frame string) uint64 {
		if id, ok := funcIdx[frame]; ok {
			return id
		}
		id := uint64(len(funcs) + 1)
		funcIdx[frame] = id
		funcs = append(funcs, frame)
		return id
	}
	threadKey := str("thread")

	for _, s := range p.Samples {
		var sm protoBuf
		locs := make([]uint64, 0, len(s.Stack))
		for i := len(s.Stack) - 1; i >= 0; i-- { // pprof stacks are leaf first
			locs = append(locs, fn(s.Stack[i]))
		}
		sm.packedField(1, locs)
		sm.packedField(2, []uint64{s.Cycles})
		var lb protoBuf
		lb.uintField(1, threadKey)
		lb.uintField(3, uint64(s.TID))
		sm.bytesField(3, lb.b)
		out.bytesField(2, sm.b)
	}

	// One location per function, same id (each frame is its own
	// synthetic call site).
	for i, frame := range funcs {
		id := uint64(i + 1)
		var line protoBuf
		line.uintField(1, id)
		var loc protoBuf
		loc.uintField(1, id)
		loc.bytesField(4, line.b)
		out.bytesField(4, loc.b)

		var f protoBuf
		f.uintField(1, id)
		f.uintField(2, str(frame))
		out.bytesField(5, f.b)
	}

	for _, s := range st {
		out.stringField(6, s)
	}

	gz := gzip.NewWriter(w) // zero ModTime: output is byte-deterministic
	if _, err := gz.Write(out.b); err != nil {
		return err
	}
	return gz.Close()
}

// --- decoder (round-trip tests) ---

// protoReader walks one message's fields.
type protoReader struct{ b []byte }

func (d *protoReader) varint() (uint64, error) {
	var v uint64
	for shift := 0; shift < 64; shift += 7 {
		if len(d.b) == 0 {
			return 0, fmt.Errorf("prof: truncated varint")
		}
		c := d.b[0]
		d.b = d.b[1:]
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("prof: varint overflow")
}

// field consumes one field; payload is the bytes for wireBytes fields,
// val the value for wireVarint fields.
func (d *protoReader) field() (fieldNum int, wire int, val uint64, payload []byte, err error) {
	tag, err := d.varint()
	if err != nil {
		return 0, 0, 0, nil, err
	}
	fieldNum, wire = int(tag>>3), int(tag&7)
	switch wire {
	case wireVarint:
		val, err = d.varint()
	case wireBytes:
		var n uint64
		if n, err = d.varint(); err == nil {
			if n > uint64(len(d.b)) {
				return 0, 0, 0, nil, fmt.Errorf("prof: truncated bytes field")
			}
			payload, d.b = d.b[:n], d.b[n:]
		}
	case wireF64:
		if len(d.b) < 8 {
			return 0, 0, 0, nil, fmt.Errorf("prof: truncated fixed64")
		}
		d.b = d.b[8:]
	case wireF32:
		if len(d.b) < 4 {
			return 0, 0, 0, nil, fmt.Errorf("prof: truncated fixed32")
		}
		d.b = d.b[4:]
	default:
		err = fmt.Errorf("prof: unsupported wire type %d", wire)
	}
	return fieldNum, wire, val, payload, err
}

// packedOrSingle appends a repeated varint field's values, accepting
// both packed and unpacked encodings.
func packedOrSingle(vals []uint64, wire int, val uint64, payload []byte) ([]uint64, error) {
	if wire == wireVarint {
		return append(vals, val), nil
	}
	d := &protoReader{payload}
	for len(d.b) > 0 {
		v, err := d.varint()
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
	}
	return vals, nil
}

// decodePprof reverses WritePprof: it reads a gzipped profile.proto and
// reconstructs the canonical Profile (samples re-sorted, totals
// recomputed, label empty — pprof has no label field).
func decodePprof(r io.Reader) (*Profile, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("prof: pprof gunzip: %w", err)
	}
	raw, err := io.ReadAll(gz)
	if err != nil {
		return nil, fmt.Errorf("prof: pprof gunzip: %w", err)
	}
	if err := gz.Close(); err != nil {
		return nil, err
	}

	type rawSample struct {
		locs   []uint64
		values []uint64
		tid    int
	}
	var (
		samples    []rawSample
		strTable   []string
		locFunc    = make(map[uint64]uint64) // location id -> function id
		funcName   = make(map[uint64]uint64) // function id -> name index
		sampleType [][2]uint64
	)

	top := &protoReader{raw}
	for len(top.b) > 0 {
		num, _, _, payload, err := top.field()
		if err != nil {
			return nil, err
		}
		switch num {
		case 1: // sample_type
			vt := &protoReader{payload}
			var typ, unit uint64
			for len(vt.b) > 0 {
				n, _, v, _, err := vt.field()
				if err != nil {
					return nil, err
				}
				switch n {
				case 1:
					typ = v
				case 2:
					unit = v
				}
			}
			sampleType = append(sampleType, [2]uint64{typ, unit})
		case 2: // sample
			sm := &protoReader{payload}
			var rs rawSample
			for len(sm.b) > 0 {
				n, w, v, pl, err := sm.field()
				if err != nil {
					return nil, err
				}
				switch n {
				case 1:
					if rs.locs, err = packedOrSingle(rs.locs, w, v, pl); err != nil {
						return nil, err
					}
				case 2:
					if rs.values, err = packedOrSingle(rs.values, w, v, pl); err != nil {
						return nil, err
					}
				case 3:
					lb := &protoReader{pl}
					for len(lb.b) > 0 {
						ln, _, lv, _, err := lb.field()
						if err != nil {
							return nil, err
						}
						if ln == 3 { // the encoder's only num label is "thread"
							rs.tid = int(lv)
						}
					}
				}
			}
			samples = append(samples, rs)
		case 4: // location
			loc := &protoReader{payload}
			var id, funcID uint64
			for len(loc.b) > 0 {
				n, _, v, pl, err := loc.field()
				if err != nil {
					return nil, err
				}
				switch n {
				case 1:
					id = v
				case 4:
					line := &protoReader{pl}
					for len(line.b) > 0 {
						ln, _, lv, _, err := line.field()
						if err != nil {
							return nil, err
						}
						if ln == 1 {
							funcID = lv
						}
					}
				}
			}
			locFunc[id] = funcID
		case 5: // function
			f := &protoReader{payload}
			var id, name uint64
			for len(f.b) > 0 {
				n, _, v, _, err := f.field()
				if err != nil {
					return nil, err
				}
				switch n {
				case 1:
					id = v
				case 2:
					name = v
				}
			}
			funcName[id] = name
		case 6: // string_table
			strTable = append(strTable, string(payload))
		}
	}

	str := func(i uint64) (string, error) {
		if i >= uint64(len(strTable)) {
			return "", fmt.Errorf("prof: string index %d out of table range %d", i, len(strTable))
		}
		return strTable[i], nil
	}
	if len(sampleType) != 1 {
		return nil, fmt.Errorf("prof: want 1 sample type, got %d", len(sampleType))
	}
	out := &Profile{Schema: Schema}
	for _, rs := range samples {
		if len(rs.values) != 1 {
			return nil, fmt.Errorf("prof: sample carries %d values, want 1", len(rs.values))
		}
		stack := make([]string, len(rs.locs))
		for i, loc := range rs.locs {
			name, err := str(funcName[locFunc[loc]])
			if err != nil {
				return nil, err
			}
			stack[len(rs.locs)-1-i] = name // leaf-first wire order -> root first
		}
		out.Samples = append(out.Samples, Sample{TID: rs.tid, Stack: stack, Cycles: rs.values[0]})
	}
	sortSamples(out.Samples)
	for _, s := range out.Samples {
		out.TotalCycles += s.Cycles
	}
	return out, nil
}
