// Package prof is a deterministic region-stack profiler over virtual
// cycles.
//
// A *Profiler attributes every virtual cycle of a run to exactly one
// (thread, region-stack) bucket. Instrumented subsystems bracket named
// regions with Begin/End around their phases (stm/commit, glibc/malloc,
// intset/run, ...); the vtime engine reports each priced memory access
// through Stall, which charges the access latency to a synthetic
// stall/<level> leaf nested under whatever region was open. Cycles that
// elapse outside any region land in the per-thread "(untracked)" root
// bucket, so per-thread totals always reconcile exactly with the
// engine's thread clocks.
//
// All attribution is clock arithmetic on the engine's virtual clocks —
// never wall clock — so profiles are byte-for-byte deterministic for a
// fixed seed, mergeable across sweep cells, and diffable across
// same-seed runs (Diff is the "why is tcmalloc slower here" report).
//
// Like obs.Recorder, the profiler relies on the vtime engine's
// one-logical-thread-at-a-time execution model and needs no host
// synchronization; each sweep cell builds its own private Profiler.
package prof

import (
	"repro/internal/cachesim"
	"repro/internal/obs"
	"repro/internal/vtime"
)

// UntrackedFrame labels cycles spent outside any open region.
const UntrackedFrame = "(untracked)"

// Stall leaf frames, indexed by cachesim.Level, plus the coherence-
// invalidation bucket appended after the hierarchy levels.
const (
	stallCoherence = int(cachesim.MemoryHit) + 1
	stallFrames    = stallCoherence + 1
)

var stallFrame = [stallFrames]string{
	cachesim.L1Hit:       "stall/L1",
	cachesim.L2Hit:       "stall/L2",
	cachesim.RemoteL2Hit: "stall/remote-L2",
	cachesim.MemoryHit:   "stall/memory",
	stallCoherence:       "stall/coherence",
}

// node is one region-stack vertex of a per-thread attribution tree.
type node struct {
	frame    string
	parent   *node // nil at the root
	children map[string]*node
	self     uint64 // cycles charged directly to this stack

	// stall caches the resolved stall/<level> children so the per-access
	// hot path never touches the children map.
	stall [stallFrames]*node
}

func (n *node) child(frame string) *node {
	if c, ok := n.children[frame]; ok {
		return c
	}
	if n.children == nil {
		n.children = make(map[string]*node)
	}
	c := &node{frame: frame, parent: n}
	n.children[frame] = c
	return c
}

func (n *node) stallChild(i int) *node {
	if c := n.stall[i]; c != nil {
		return c
	}
	c := n.child(stallFrame[i])
	n.stall[i] = c
	return c
}

// threadState is one logical thread's attribution tree plus its
// charged-up-to watermark.
type threadState struct {
	root *node
	cur  *node  // innermost open region
	last uint64 // thread clock up to which cycles have been charged

	starts []uint64 // open-region begin clocks (for trace span emission)
}

// charge attributes the cycles since the last charge point to the
// innermost open region.
func (ts *threadState) charge(now uint64) {
	if now > ts.last {
		ts.cur.self += now - ts.last
		ts.last = now
	}
}

// Profiler accumulates per-thread region-stack cycle attribution for
// one run. A nil *Profiler is the disabled state: every method is safe
// to call on nil and returns immediately.
type Profiler struct {
	threads []*threadState
	rec     *obs.Recorder // optional: emit regions as trace spans
}

// New builds an enabled Profiler.
func New() *Profiler { return &Profiler{} }

// Enabled reports whether the profiler is active (non-nil).
func (p *Profiler) Enabled() bool { return p != nil }

// SetRecorder makes every End also emit the closed region as an
// obs trace span, so Perfetto renders the phase structure on the
// per-thread tracks. Nil (the default) keeps the profiler silent.
func (p *Profiler) SetRecorder(r *obs.Recorder) {
	if p == nil {
		return
	}
	p.rec = r
}

func (p *Profiler) state(tid int) *threadState {
	for tid >= len(p.threads) {
		ts := &threadState{root: &node{}}
		ts.cur = ts.root
		p.threads = append(p.threads, ts)
	}
	return p.threads[tid]
}

// Begin opens the named region on th's stack. Cycles accrued since the
// previous charge point go to the enclosing region.
func (p *Profiler) Begin(th *vtime.Thread, region string) {
	if p == nil {
		return
	}
	ts := p.state(th.ID())
	now := th.Clock()
	ts.charge(now)
	ts.cur = ts.cur.child(region)
	ts.starts = append(ts.starts, now)
}

// End closes th's innermost open region. Call via defer so that
// panic-driven unwinds (STM aborts, the engine watchdog) leave the
// stack balanced. An End with no open region is ignored.
func (p *Profiler) End(th *vtime.Thread) {
	if p == nil {
		return
	}
	ts := p.state(th.ID())
	now := th.Clock()
	ts.charge(now)
	if ts.cur.parent == nil {
		return
	}
	if p.rec != nil {
		p.rec.Region(th.ID(), ts.starts[len(ts.starts)-1], now, ts.cur.frame)
	}
	ts.starts = ts.starts[:len(ts.starts)-1]
	ts.cur = ts.cur.parent
}

// Stall attributes one priced memory access: cost cycles at the given
// hierarchy level plus inval coherence-invalidation cycles, with now
// the thread clock after the access was charged. Compute cycles that
// preceded the access go to the open region; the access itself lands
// in stall/<level> (and stall/coherence) leaves nested under it.
// Implements vtime.Profiler.
func (p *Profiler) Stall(tid int, level cachesim.Level, cost, inval, now uint64) {
	if p == nil {
		return
	}
	ts := p.state(tid)
	ts.charge(now - cost - inval)
	if cost > 0 {
		ts.cur.stallChild(int(level)).self += cost
	}
	if inval > 0 {
		ts.cur.stallChild(stallCoherence).self += inval
	}
	ts.last = now
}

// SyncClock flushes attribution up to now — the engine calls it for
// every thread when a parallel region finishes, so trailing compute
// cycles are never lost. Implements vtime.Profiler.
func (p *Profiler) SyncClock(tid int, now uint64) {
	if p == nil {
		return
	}
	p.state(tid).charge(now)
}

// ResetClock flushes attribution up to now and rebases the thread at
// clock zero — the engine calls it from ResetClocks between experiment
// phases. Implements vtime.Profiler.
func (p *Profiler) ResetClock(tid int, now uint64) {
	if p == nil {
		return
	}
	ts := p.state(tid)
	ts.charge(now)
	ts.last = 0
}

// Profile extracts the accumulated attribution as an immutable,
// canonically ordered Profile. The profiler remains usable; a later
// call reflects further accumulation.
func (p *Profiler) Profile() *Profile {
	if p == nil {
		return nil
	}
	out := &Profile{Schema: Schema}
	for tid, ts := range p.threads {
		if ts == nil {
			continue
		}
		collectSamples(out, tid, ts.root, nil)
	}
	sortSamples(out.Samples)
	for _, s := range out.Samples {
		out.TotalCycles += s.Cycles
	}
	return out
}

// collectSamples walks one thread tree depth-first, appending one
// sample per node with nonzero self time. Child order does not matter
// here — sortSamples canonicalizes afterwards.
func collectSamples(out *Profile, tid int, n *node, stack []string) {
	if n.parent == nil {
		// Root self time is the thread's untracked remainder.
		if n.self > 0 {
			out.Samples = append(out.Samples, Sample{
				TID: tid, Stack: []string{UntrackedFrame}, Cycles: n.self,
			})
		}
	} else {
		stack = append(stack, n.frame)
		if n.self > 0 {
			s := make([]string, len(stack))
			copy(s, stack)
			out.Samples = append(out.Samples, Sample{TID: tid, Stack: s, Cycles: n.self})
		}
	}
	for _, c := range n.children {
		collectSamples(out, tid, c, stack)
	}
}
