package prof

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/obs"
)

// Schema identifies the profile artifact format.
const Schema = "tmprof/profile/v1"

// Profile is the serializable form of a run's cycle attribution:
// a flat, canonically ordered list of (thread, region-stack, cycles)
// samples. TotalCycles is the sum over all samples, which by
// construction equals the summed thread clocks of the profiled run.
type Profile struct {
	Schema      string   `json:"schema"`
	Label       string   `json:"label,omitempty"`
	TotalCycles uint64   `json:"total_cycles"`
	Samples     []Sample `json:"samples"`
}

// Sample is one attribution bucket: the virtual cycles thread TID
// spent with exactly this region stack open (root first, leaf last).
type Sample struct {
	TID    int      `json:"tid"`
	Stack  []string `json:"stack"`
	Cycles uint64   `json:"cycles"`
}

// stackKey is the canonical comparison/merge key for a region stack.
// Frames never contain NUL, so the join is injective.
func stackKey(stack []string) string { return strings.Join(stack, "\x00") }

func sortSamples(samples []Sample) {
	sort.Slice(samples, func(i, j int) bool {
		if samples[i].TID != samples[j].TID {
			return samples[i].TID < samples[j].TID
		}
		return stackKey(samples[i].Stack) < stackKey(samples[j].Stack)
	})
}

// WriteJSON writes the profile's canonical JSON artifact form.
func (p *Profile) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ReadJSON decodes a profile written by WriteJSON.
func ReadJSON(r io.Reader) (*Profile, error) {
	var p Profile
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("prof: decode profile: %w", err)
	}
	if p.Schema != Schema {
		return nil, fmt.Errorf("prof: unsupported profile schema %q (want %q)", p.Schema, Schema)
	}
	return &p, nil
}

// WriteFolded writes the profile as folded stacks — one
// "t<tid>;frame;frame cycles" line per sample — the format
// flamegraph.pl and speedscope consume directly.
func (p *Profile) WriteFolded(w io.Writer) error {
	for _, s := range p.Samples {
		if _, err := fmt.Fprintf(w, "t%d;%s %d\n", s.TID, strings.Join(s.Stack, ";"), s.Cycles); err != nil {
			return err
		}
	}
	return nil
}

// Info condenses the profile into the run-record section: enough for a
// record reader to know a profile was captured and how big it is,
// without embedding the (potentially large) sample list in the record.
func (p *Profile) Info() *obs.ProfileInfo {
	if p == nil {
		return nil
	}
	frames := make(map[string]bool)
	threads := make(map[int]bool)
	for _, s := range p.Samples {
		threads[s.TID] = true
		for _, f := range s.Stack {
			frames[f] = true
		}
	}
	return &obs.ProfileInfo{
		Schema:      p.Schema,
		Samples:     len(p.Samples),
		Frames:      len(frames),
		Threads:     len(threads),
		TotalCycles: p.TotalCycles,
	}
}

// Merge combines profiles by summing cycles per (thread, stack)
// bucket — the deterministic reduction for per-cell profiles from a
// sweep. Nil inputs are skipped; the result is canonically ordered.
// Merge never mutates its inputs.
func Merge(profiles ...*Profile) *Profile {
	out := &Profile{Schema: Schema}
	type key struct {
		tid   int
		stack string
	}
	cycles := make(map[key]uint64)
	stacks := make(map[key][]string)
	for _, p := range profiles {
		if p == nil {
			continue
		}
		if out.Label == "" {
			out.Label = p.Label
		}
		for _, s := range p.Samples {
			k := key{s.TID, stackKey(s.Stack)}
			cycles[k] += s.Cycles
			if _, ok := stacks[k]; !ok {
				stacks[k] = s.Stack
			}
		}
	}
	for k, c := range cycles {
		out.Samples = append(out.Samples, Sample{TID: k.tid, Stack: stacks[k], Cycles: c})
	}
	sortSamples(out.Samples)
	for _, s := range out.Samples {
		out.TotalCycles += s.Cycles
	}
	return out
}

// FrameStat aggregates one frame across the whole profile: Self is the
// cycles charged with the frame as the innermost region, Cum the cycles
// of every sample whose stack contains it.
type FrameStat struct {
	Frame     string
	Self, Cum uint64
}

// FrameStats returns per-frame flat/cumulative totals, sorted by Self
// descending (ties broken by frame name) — the "top" view.
func (p *Profile) FrameStats() []FrameStat {
	self := make(map[string]uint64)
	cum := make(map[string]uint64)
	for _, s := range p.Samples {
		if len(s.Stack) == 0 {
			continue
		}
		self[s.Stack[len(s.Stack)-1]] += s.Cycles
		seen := make(map[string]bool, len(s.Stack))
		for _, f := range s.Stack {
			if !seen[f] {
				seen[f] = true
				cum[f] += s.Cycles
			}
		}
	}
	out := make([]FrameStat, 0, len(cum))
	for f := range cum {
		out = append(out, FrameStat{Frame: f, Self: self[f], Cum: cum[f]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Self != out[j].Self {
			return out[i].Self > out[j].Self
		}
		return out[i].Frame < out[j].Frame
	})
	return out
}

// DiffRow is one region stack's cycle totals in two profiles
// (aggregated across threads). Delta is B minus A.
type DiffRow struct {
	Stack []string
	A, B  uint64
	Delta int64
}

// DiffReport is the per-region comparison of two profiles. Rows
// partition both profiles completely: summing the A column over all
// rows yields exactly TotalA, and likewise for B — the reconciliation
// the report's footer states.
type DiffReport struct {
	LabelA, LabelB string
	TotalA, TotalB uint64
	Rows           []DiffRow
}

// Diff compares two profiles region-stack by region-stack (cycles
// aggregated across threads, so the report survives differing thread
// counts), sorted by absolute delta descending. Intended for same-seed
// runs that differ in exactly one knob — e.g. the allocator — where
// the top rows *are* the explanation of the end-to-end gap.
func Diff(a, b *Profile) *DiffReport {
	rep := &DiffReport{
		LabelA: a.Label, LabelB: b.Label,
		TotalA: a.TotalCycles, TotalB: b.TotalCycles,
	}
	av := make(map[string]uint64)
	bv := make(map[string]uint64)
	stacks := make(map[string][]string)
	accum := func(p *Profile, into map[string]uint64) {
		for _, s := range p.Samples {
			k := stackKey(s.Stack)
			into[k] += s.Cycles
			if _, ok := stacks[k]; !ok {
				stacks[k] = s.Stack
			}
		}
	}
	accum(a, av)
	accum(b, bv)
	keys := make([]string, 0, len(stacks))
	for k := range stacks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		rep.Rows = append(rep.Rows, DiffRow{
			Stack: stacks[k],
			A:     av[k],
			B:     bv[k],
			Delta: int64(bv[k]) - int64(av[k]),
		})
	}
	sort.SliceStable(rep.Rows, func(i, j int) bool {
		di, dj := rep.Rows[i].Delta, rep.Rows[j].Delta
		if di < 0 {
			di = -di
		}
		if dj < 0 {
			dj = -dj
		}
		return di > dj
	})
	return rep
}

// WriteText renders the report's top-n rows (n <= 0 means all) plus
// the reconciling totals footer.
func (r *DiffReport) WriteText(w io.Writer, n int) error {
	la, lb := r.LabelA, r.LabelB
	if la == "" {
		la = "a"
	}
	if lb == "" {
		lb = "b"
	}
	var err error
	pr := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	pr("%14s %14s %14s  %s\n", la, lb, "delta", "region stack")
	var sumA, sumB uint64
	for i, row := range r.Rows {
		sumA += row.A
		sumB += row.B
		if n <= 0 || i < n {
			pr("%14d %14d %+14d  %s\n", row.A, row.B, row.Delta, strings.Join(row.Stack, ";"))
		}
	}
	if n > 0 && len(r.Rows) > n {
		pr("%s(%d more rows)\n", strings.Repeat(" ", 46), len(r.Rows)-n)
	}
	pr("%14d %14d %+14d  total over %d region stacks\n",
		sumA, sumB, int64(sumB)-int64(sumA), len(r.Rows))
	if sumA == r.TotalA && sumB == r.TotalB {
		pr("totals reconcile: row sums equal both profiles' total virtual cycles\n")
	} else {
		pr("WARNING: totals do not reconcile (profile a %d vs rows %d; profile b %d vs rows %d)\n",
			r.TotalA, sumA, r.TotalB, sumB)
	}
	return err
}
