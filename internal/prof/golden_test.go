package prof_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	_ "repro/internal/alloc/glibc"

	"repro/internal/intset"
	"repro/internal/prof"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenFolded pins the full instrumentation stack end to end: a
// fixed-seed intset run must produce exactly the folded-stacks artifact
// in testdata. Any change to region placement, stall bucketing, or the
// virtual-time model shows up as a diff here — rerun with -update after
// auditing that the change is intentional:
//
//	go test ./internal/prof -run Golden -update
func TestGoldenFolded(t *testing.T) {
	p := prof.New()
	cfg := intset.Config{
		Kind:         intset.LinkedList,
		Allocator:    "glibc",
		Threads:      4,
		InitialSize:  64,
		KeyRange:     128,
		UpdatePct:    60,
		OpsPerThread: 32,
		Seed:         42,
		Prof:         p,
	}
	if _, err := intset.Run(cfg); err != nil {
		t.Fatal(err)
	}
	pf := p.Profile()
	if pf.TotalCycles == 0 || len(pf.Samples) == 0 {
		t.Fatal("profiled run attributed no cycles")
	}
	var buf bytes.Buffer
	if err := pf.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "intset_folded.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test ./internal/prof -run Golden -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("folded output diverged from %s (rerun with -update if intentional)\ngot %d bytes, want %d",
			golden, buf.Len(), len(want))
	}
}
