package prof

import (
	"bytes"
	"reflect"
	"testing"
)

// tripProfile is a non-trivial fixture: multiple threads, shared and
// disjoint frames, deep stacks, stall leaves, and an untracked bucket.
func tripProfile() *Profile {
	p := &Profile{
		Schema: Schema,
		Label:  "fig4/glibc/t8",
		Samples: []Sample{
			{TID: 0, Stack: []string{UntrackedFrame}, Cycles: 11},
			{TID: 0, Stack: []string{"intset/run", "stm/commit"}, Cycles: 420},
			{TID: 0, Stack: []string{"intset/run", "stm/commit", "stall/L1"}, Cycles: 37},
			{TID: 1, Stack: []string{"intset/run", "glibc/malloc"}, Cycles: 9000},
			{TID: 1, Stack: []string{"intset/run", "glibc/malloc", "stall/memory"}, Cycles: 123456789},
			{TID: 7, Stack: []string{"intset/init"}, Cycles: 1},
			{TID: 7, Stack: []string{"intset/run", "stm/abort", "stall/coherence"}, Cycles: 300},
		},
	}
	sortSamples(p.Samples)
	for _, s := range p.Samples {
		p.TotalCycles += s.Cycles
	}
	return p
}

// TestPprofRoundTrip pins the wire format: encoding then decoding must
// reconstruct the exact sample set and totals. (The label is not part
// of the pprof format and is expected to drop.)
func TestPprofRoundTrip(t *testing.T) {
	p := tripProfile()
	var buf bytes.Buffer
	if err := p.WritePprof(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := decodePprof(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Samples, p.Samples) {
		t.Errorf("round-tripped samples differ:\ngot  %+v\nwant %+v", got.Samples, p.Samples)
	}
	if got.TotalCycles != p.TotalCycles {
		t.Errorf("round-tripped total = %d, want %d", got.TotalCycles, p.TotalCycles)
	}
}

// TestPprofDeterministic requires byte-identical artifacts for repeated
// encodes — the property the CI byte-identity gates rely on.
func TestPprofDeterministic(t *testing.T) {
	p := tripProfile()
	var a, b bytes.Buffer
	if err := p.WritePprof(&a); err != nil {
		t.Fatal(err)
	}
	if err := p.WritePprof(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("repeated pprof encodes must be byte-identical")
	}
}

// TestPprofEmpty checks the degenerate artifact still decodes.
func TestPprofEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Profile{Schema: Schema}).WritePprof(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := decodePprof(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Samples) != 0 || got.TotalCycles != 0 {
		t.Errorf("empty profile round-trip = %+v, want no samples", got)
	}
}

// TestPprofRejectsGarbage checks the decoder fails loudly rather than
// fabricating a profile.
func TestPprofRejectsGarbage(t *testing.T) {
	if _, err := decodePprof(bytes.NewReader([]byte("not gzip"))); err == nil {
		t.Error("decoder must reject non-gzip input")
	}
}
