package prof_test

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/prof"
	"repro/internal/vtime"
)

// TestBeginEndAllocBudget pins the steady-state host allocations of the
// region open/close pair at zero: once a region name has its call-tree
// node and the per-thread frame stack has reached depth capacity,
// Begin/End must not allocate. These hooks bracket every priced
// simulator operation, so one alloc here scales with total virtual
// work.
func TestBeginEndAllocBudget(t *testing.T) {
	p := prof.New()
	eng := vtime.NewEngine(mem.NewSpace(), 1, vtime.Config{Prof: p})
	eng.Run(func(th *vtime.Thread) {
		for i := 0; i < 8; i++ {
			p.Begin(th, "outer")
			p.Begin(th, "inner")
			p.End(th)
			p.End(th)
		}
		if avg := testing.AllocsPerRun(100, func() {
			p.Begin(th, "outer")
			p.Begin(th, "inner")
			p.End(th)
			p.End(th)
		}); avg > 0 {
			t.Errorf("steady-state Begin/End allocates %.2f objects per nested pair, want 0", avg)
		}
	})
}

// TestBeginEndNilAllocBudget pins the disabled-profiler fast path: a
// nil profiler's Begin/End must reduce to a nil check, no allocation.
func TestBeginEndNilAllocBudget(t *testing.T) {
	var p *prof.Profiler
	eng := vtime.NewEngine(mem.NewSpace(), 1, vtime.Config{})
	eng.Run(func(th *vtime.Thread) {
		if avg := testing.AllocsPerRun(100, func() {
			p.Begin(th, "bench")
			p.End(th)
		}); avg > 0 {
			t.Errorf("nil-profiler Begin/End allocates %.2f objects, want 0", avg)
		}
	})
}
