package prof_test

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/intset"
	"repro/internal/mem"
	"repro/internal/prof"
	"repro/internal/vtime"
)

// benchWorkload is the profiled-overhead workload: small enough to
// iterate, busy enough to hit every instrumented layer (STM phases,
// allocator internals, cache stalls).
func benchWorkload(p *prof.Profiler) intset.Config {
	return intset.Config{
		Kind:         intset.LinkedList,
		Allocator:    "glibc",
		Threads:      4,
		InitialSize:  96,
		KeyRange:     192,
		UpdatePct:    60,
		OpsPerThread: 40,
		Prof:         p,
	}
}

// BenchmarkWorkloadUnprofiled is the baseline: the fully instrumented
// stack with a nil profiler, where every region site reduces to a
// pointer nil-check. Compare against BenchmarkWorkloadProfiled to see
// what attribution costs when switched on.
func BenchmarkWorkloadUnprofiled(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := intset.Run(benchWorkload(nil)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadProfiled runs the same workload with live cycle
// attribution into a fresh profiler per run.
func BenchmarkWorkloadProfiled(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := intset.Run(benchWorkload(prof.New())); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBeginEnd measures one enabled region open/close pair on a
// live engine thread.
func BenchmarkBeginEnd(b *testing.B) {
	p := prof.New()
	eng := vtime.NewEngine(mem.NewSpace(), 1, vtime.Config{Prof: p})
	eng.Run(func(th *vtime.Thread) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Begin(th, "bench")
			p.End(th)
		}
	})
}

// BenchmarkBeginEndNil measures the same pair on a nil profiler — the
// cost every instrumentation site pays when profiling is off.
func BenchmarkBeginEndNil(b *testing.B) {
	var p *prof.Profiler
	eng := vtime.NewEngine(mem.NewSpace(), 1, vtime.Config{})
	eng.Run(func(th *vtime.Thread) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Begin(th, "bench")
			p.End(th)
		}
	})
}

// BenchmarkStall measures the per-memory-access attribution hook.
func BenchmarkStall(b *testing.B) {
	p := prof.New()
	for i := 0; i < b.N; i++ {
		p.Stall(0, cachesim.L1Hit, 1, 0, uint64(i)+1)
	}
}

// benchState returns a profiler populated with a spread of threads,
// stacks, and stall leaves for the extraction/encoding benchmarks.
func benchState() *prof.Profiler {
	p := prof.New()
	now := make([]uint64, 8)
	for round := 0; round < 64; round++ {
		for tid := 0; tid < 8; tid++ {
			lvl := cachesim.Level(round % int(cachesim.MemoryHit+1))
			now[tid] += 10
			p.Stall(tid, lvl, 3, uint64(round%2), now[tid])
			now[tid] = now[tid] + 3 + uint64(round%2)
		}
	}
	for tid := 0; tid < 8; tid++ {
		p.SyncClock(tid, now[tid]+5)
	}
	return p
}

// BenchmarkProfileExtract measures tree walk + canonical sort.
func BenchmarkProfileExtract(b *testing.B) {
	p := benchState()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p.Profile() == nil {
			b.Fatal("nil profile")
		}
	}
}

// BenchmarkWriteFolded measures the folded-stacks encoder.
func BenchmarkWriteFolded(b *testing.B) {
	pf := benchState().Profile()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pf.WriteFolded(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWritePprof measures the pprof protobuf+gzip encoder.
func BenchmarkWritePprof(b *testing.B) {
	pf := benchState().Profile()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pf.WritePprof(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMerge measures the sweep-side per-cell profile reduction.
func BenchmarkMerge(b *testing.B) {
	cells := make([]*prof.Profile, 8)
	for i := range cells {
		pf := benchState().Profile()
		pf.Label = fmt.Sprintf("cell-%d", i)
		cells[i] = pf
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if prof.Merge(cells...).TotalCycles == 0 {
			b.Fatal("empty merge")
		}
	}
}

// BenchmarkDiff measures the differential report over two profiles.
func BenchmarkDiff(b *testing.B) {
	pa, pb := benchState().Profile(), benchState().Profile()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(prof.Diff(pa, pb).Rows) == 0 {
			b.Fatal("empty diff")
		}
	}
}
