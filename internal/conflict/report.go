package conflict

import (
	"fmt"
	"io"
	"sort"
)

// Report is the observatory's full, JSON-serializable output: the
// per-class breakdown, the killer×victim conflict graph, the
// allocation-site blame table, cascade statistics and the exemplar
// reservoir. It crosses process and cell boundaries (tmwhy carries it
// in sweep-cell payloads); the flat obs.ConflictInfo carries only the
// headline aggregates into run records.
type Report struct {
	Schema string `json:"schema"` // ReportSchema
	Shift  uint   `json:"shift"`

	Events       int    `json:"events"`
	WastedCycles uint64 `json:"wasted_cycles"`

	Classes []ClassStat `json:"classes"` // fixed order, one row per Class

	SameLine   int `json:"same_line,omitempty"`
	CrossBlock int `json:"cross_block,omitempty"`

	Edges       []Edge       `json:"edges,omitempty"`        // kind-level graph, by wasted desc
	ThreadEdges []ThreadEdge `json:"thread_edges,omitempty"` // thread-level matrix, by aborts desc

	Sites []SiteBlame `json:"sites,omitempty"` // blame table, by wasted desc

	LongestChain     int        `json:"longest_chain,omitempty"`
	Offenders        []Offender `json:"offenders,omitempty"` // by hits desc
	OffendersDropped int        `json:"offenders_dropped,omitempty"`

	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// ReportSchema identifies the report artifact format.
const ReportSchema = "tmwhy/report/v1"

// ClassStat is one taxonomy row.
type ClassStat struct {
	Class  string `json:"class"`
	Aborts int    `json:"aborts"`
	Wasted uint64 `json:"wasted"`
}

// Edge is one killer-kind → victim-kind edge of the conflict graph.
type Edge struct {
	Killer    string `json:"killer"` // "?" when unattributed
	Victim    string `json:"victim"`
	Aborts    int    `json:"aborts"`
	Placement int    `json:"placement"` // placement-caused share (false/alias/metadata)
	Wasted    uint64 `json:"wasted"`
}

// ThreadEdge is one killer-thread → victim-thread cell of the matrix.
type ThreadEdge struct {
	Killer int `json:"killer"` // -1 when unattributed
	Victim int `json:"victim"`
	Aborts int `json:"aborts"`
}

// SiteBlame is one allocation site's blame-table row.
type SiteBlame struct {
	Site   string `json:"site"`
	Aborts int    `json:"aborts"`
	Wasted uint64 `json:"wasted"`
}

// Offender is one repeat-offender address.
type Offender struct {
	Addr uint64 `json:"addr"`
	Hits int    `json:"hits"`
}

// Exemplar is one reservoir event, structured plus pre-rendered.
type Exemplar struct {
	Class      string `json:"class"`
	Reason     string `json:"reason"`
	Victim     int    `json:"victim"`
	VictimKind string `json:"victim_kind"`
	Killer     int    `json:"killer"` // -1 when unattributed
	KillerKind string `json:"killer_kind"`
	Attempt    uint64 `json:"attempt"`
	Stripe     uint64 `json:"stripe"`
	VictimAddr uint64 `json:"victim_addr"`
	OwnerAddr  uint64 `json:"owner_addr"`
	Wasted     uint64 `json:"wasted"`
	Rendered   string `json:"rendered"`
}

type siteRow struct {
	Site   string
	Aborts int
	Wasted uint64
}

// topSites returns the blame table sorted by wasted cycles descending
// (site name breaks ties, so the order is deterministic).
func (o *Observatory) topSites() []siteRow {
	rows := make([]siteRow, 0, len(o.sites))
	for site, st := range o.sites {
		rows = append(rows, siteRow{Site: site, Aborts: st.aborts, Wasted: st.wasted})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Wasted != rows[j].Wasted {
			return rows[i].Wasted > rows[j].Wasted
		}
		return rows[i].Site < rows[j].Site
	})
	return rows
}

// topOffenders returns the repeat-offender addresses by hit count
// descending (address breaks ties).
func (o *Observatory) topOffenders() []Offender {
	rows := make([]Offender, 0, len(o.offenders))
	for a, n := range o.offenders {
		rows = append(rows, Offender{Addr: uint64(a), Hits: n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Hits != rows[j].Hits {
			return rows[i].Hits > rows[j].Hits
		}
		return rows[i].Addr < rows[j].Addr
	})
	return rows
}

// Report assembles the full structured report.
func (o *Observatory) Report() *Report {
	r := &Report{
		Schema:           ReportSchema,
		Shift:            o.shift,
		Events:           o.events,
		WastedCycles:     o.WastedTotal(),
		SameLine:         o.sameLine,
		CrossBlock:       o.crossBlock,
		LongestChain:     o.longestChain,
		OffendersDropped: o.offDropped,
		Exemplars:        o.exemplars,
	}
	for c := Class(0); c < classCount; c++ {
		r.Classes = append(r.Classes, ClassStat{
			Class:  c.String(),
			Aborts: o.counts[c],
			Wasted: o.wasted[c],
		})
	}
	for k, e := range o.edges {
		r.Edges = append(r.Edges, Edge{
			Killer:    k[0],
			Victim:    k[1],
			Aborts:    e.aborts,
			Placement: e.false_,
			Wasted:    e.wasted,
		})
	}
	sort.Slice(r.Edges, func(i, j int) bool {
		a, b := r.Edges[i], r.Edges[j]
		if a.Wasted != b.Wasted {
			return a.Wasted > b.Wasted
		}
		if a.Killer != b.Killer {
			return a.Killer < b.Killer
		}
		return a.Victim < b.Victim
	})
	for k, n := range o.thrEdges {
		r.ThreadEdges = append(r.ThreadEdges, ThreadEdge{Killer: k[0], Victim: k[1], Aborts: n})
	}
	sort.Slice(r.ThreadEdges, func(i, j int) bool {
		a, b := r.ThreadEdges[i], r.ThreadEdges[j]
		if a.Aborts != b.Aborts {
			return a.Aborts > b.Aborts
		}
		if a.Killer != b.Killer {
			return a.Killer < b.Killer
		}
		return a.Victim < b.Victim
	})
	for _, s := range o.topSites() {
		r.Sites = append(r.Sites, SiteBlame(s))
	}
	if top := o.topOffenders(); len(top) > 0 {
		if len(top) > 16 {
			top = top[:16]
		}
		r.Offenders = top
	}
	return r
}

// PlacementAborts returns the aborts attributed to allocator placement
// (false-sharing + stripe-alias + metadata).
func (r *Report) PlacementAborts() int {
	var n int
	for _, c := range r.Classes {
		switch c.Class {
		case "false-sharing", "stripe-alias", "metadata":
			n += c.Aborts
		}
	}
	return n
}

// PlacementWasted returns the wasted cycles attributed to allocator
// placement classes (false-sharing + stripe-alias + metadata).
func (r *Report) PlacementWasted() uint64 {
	var w uint64
	for _, c := range r.Classes {
		switch c.Class {
		case "false-sharing", "stripe-alias", "metadata":
			w += c.Wasted
		}
	}
	return w
}

// AllocatorWasted returns the wasted cycles of the ISSUE's
// allocator-caused pair: metadata plus intra-block (intra-stripe)
// false sharing, excluding aliasing.
func (r *Report) AllocatorWasted() uint64 {
	var w uint64
	for _, c := range r.Classes {
		switch c.Class {
		case "false-sharing", "metadata":
			w += c.Wasted
		}
	}
	return w
}

// WriteDot emits the kind-level conflict graph in Graphviz dot form:
// one node per transaction kind, one edge per killer→victim pair,
// labeled and weighted by wasted cycles.
func (r *Report) WriteDot(w io.Writer, title string) error {
	if _, err := fmt.Fprintf(w, "digraph conflicts {\n  label=%q;\n  node [shape=box];\n", title); err != nil {
		return err
	}
	var max uint64 = 1
	for _, e := range r.Edges {
		if e.Wasted > max {
			max = e.Wasted
		}
	}
	for _, e := range r.Edges {
		width := 1 + 4*float64(e.Wasted)/float64(max)
		if _, err := fmt.Fprintf(w,
			"  %q -> %q [label=\"%d aborts\\n%d wasted\", penwidth=%.2f];\n",
			e.Killer, e.Victim, e.Aborts, e.Wasted, width); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
