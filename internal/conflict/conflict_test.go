package conflict

import (
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/stm"
)

// ev builds a stripe-attributed event for classifier tests. The
// classifier trusts the reporting STM for the entry index, so tests
// pass any non-sentinel stripe.
func ev(victim, owner mem.Addr) stm.ConflictEvent {
	return stm.ConflictEvent{
		Victim:     1,
		Killer:     0,
		Kind:       "insert",
		Attempt:    1,
		Reason:     stm.AbortLockedByOther,
		Stripe:     42,
		VictimAddr: victim,
		OwnerAddr:  owner,
		Wasted:     100,
	}
}

// TestClassifyPlacementClasses pins each taxonomy class from
// hand-built address pairs over the two allocator geometries the
// paper contrasts: glibc (in-band 16-byte boundary tags, 16-byte
// requests placed 32 bytes apart at offset 16 of each stripe) and a
// size-class allocator like tcmalloc (out-of-band metadata, 16-byte
// requests packed back to back, two blocks per 32-byte stripe).
func TestClassifyPlacementClasses(t *testing.T) {
	const shift = 5 // 32-byte stripes, the paper's default

	// glibc-style placement: node A at 0x10000010 (its boundary tag
	// occupies 0x10000000..0x10000010 of the same stripe), node B one
	// chunk later.
	const glibcA = mem.Addr(0x10000010)
	const glibcB = mem.Addr(0x10000030)
	// tcmalloc-style placement: two 16-byte blocks sharing the stripe
	// at 0x20000000.
	const tcA = mem.Addr(0x20000000)
	const tcB = mem.Addr(0x20000010)
	// A block allocated and then freed back to the allocator: its words
	// now hold free-list metadata.
	const freed = mem.Addr(0x30000040)

	o := New(2, shift)
	o.TxKind(0, "remove")
	o.TxKind(1, "insert")
	o.OnHeapAlloc("glibc", glibcA, 16, 16, 0, 1)
	o.OnHeapAlloc("glibc", glibcB, 16, 16, 0, 2)
	o.OnHeapAlloc("tcmalloc", tcA, 16, 16, 1, 3)
	o.OnHeapAlloc("tcmalloc", tcB, 16, 16, 1, 4)
	o.OnHeapAlloc("glibc", freed, 16, 16, 0, 5)
	o.OnHeapFree(freed, 0, 6)

	cases := []struct {
		name       string
		event      stm.ConflictEvent
		class      Class
		sameLine   bool
		crossBlock bool
	}{
		{
			// Same word: the program really contends on this datum.
			name:  "true sharing same word",
			event: ev(glibcA, glibcA),
			class: ClassTrue, sameLine: true,
		},
		{
			// glibc geometry: two words of one 16-byte node share its
			// stripe — intra-block false sharing, one allocator block.
			name:  "false sharing within one block",
			event: ev(glibcA, glibcA+8),
			class: ClassFalse, sameLine: true, crossBlock: false,
		},
		{
			// tcmalloc geometry: 16-byte spacing packs two distinct
			// nodes into one 32-byte stripe — cross-block false sharing.
			name:  "false sharing across packed blocks",
			event: ev(tcA+8, tcB),
			class: ClassFalse, sameLine: true, crossBlock: true,
		},
		{
			// Different placement keys folded onto one ORT entry by the
			// modulo: the paper's table-wrap aliasing.
			name:  "stripe aliasing",
			event: ev(glibcA, tcA),
			class: ClassAlias,
		},
		{
			// The conflicting owner address is a glibc boundary tag —
			// heap metadata sharing the stripe with application data.
			name:  "metadata in-band header",
			event: ev(glibcA, glibcA-8),
			class: ClassMeta,
		},
		{
			// The victim read a block the allocator reclaimed: its words
			// are free-list metadata now.
			name:  "metadata reclaimed block",
			event: ev(freed, freed+8),
			class: ClassMeta,
		},
		{
			// No attributable stripe (commit validation, OOM, kills).
			name: "other no stripe",
			event: stm.ConflictEvent{
				Victim: 1, Killer: stm.NoKiller, Reason: stm.AbortValidation,
				Stripe: obs.NoStripe, Wasted: 10,
			},
			class: ClassOther,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			class, sameLine, crossBlock := o.Classify(tc.event)
			if class != tc.class {
				t.Errorf("class = %v, want %v", class, tc.class)
			}
			if class == ClassFalse || class == ClassTrue {
				if sameLine != tc.sameLine {
					t.Errorf("sameLine = %v, want %v", sameLine, tc.sameLine)
				}
			}
			if class == ClassFalse && crossBlock != tc.crossBlock {
				t.Errorf("crossBlock = %v, want %v", crossBlock, tc.crossBlock)
			}
		})
	}
}

// TestObservatoryAggregates feeds a small choreographed event stream
// and checks the conflict graph, blame table, cascade detection and
// the flat Info block agree with it.
func TestObservatoryAggregates(t *testing.T) {
	const shift = 5
	o := New(3, shift)
	o.TxKind(0, "remove")
	o.TxKind(1, "insert")
	o.TxKind(2, "contains")
	base := mem.Addr(0x10000010)
	o.OnHeapAlloc("glibc", base, 16, 16, 1, 1) // site: insert

	// t0 kills t1 (false sharing, 100 wasted), then t1's death cascades:
	// t1 kills t2 while t1 is itself a fresh victim.
	e1 := ev(base, base+8) // victim t1, killer t0
	o.TxConflict(e1)
	e2 := stm.ConflictEvent{
		Victim: 2, Killer: 1, Kind: "contains", Attempt: 3,
		Reason: stm.AbortLockedByOther, Stripe: 42,
		VictimAddr: base + 8, OwnerAddr: base, Wasted: 50,
	}
	o.TxConflict(e2)
	// t0 commits: its chain resets; a later kill by t0 starts at depth 1.
	o.TxCommitted(0, "remove")
	o.TxConflict(e1)

	if o.Events() != 3 {
		t.Fatalf("events = %d, want 3", o.Events())
	}
	if got := o.Count(ClassFalse); got != 3 {
		t.Errorf("false-sharing count = %d, want 3", got)
	}
	if got := o.WastedTotal(); got != 250 {
		t.Errorf("wasted total = %d, want 250", got)
	}

	r := o.Report()
	if len(r.Edges) != 2 {
		t.Fatalf("edges = %d, want 2 (remove->insert, insert->contains)", len(r.Edges))
	}
	if r.Edges[0].Killer != "remove" || r.Edges[0].Victim != "insert" || r.Edges[0].Wasted != 200 {
		t.Errorf("top edge = %+v, want remove->insert with 200 wasted", r.Edges[0])
	}
	// The chain: t1 dies (depth 1), then t2 dies by t1 (depth 2).
	if r.LongestChain != 2 {
		t.Errorf("longest chain = %d, want 2", r.LongestChain)
	}
	// All three events are placement-caused and touch the one insert-site
	// block (both addresses resolve to it, so it is charged once per
	// event).
	if len(r.Sites) != 1 || r.Sites[0].Site != "insert" {
		t.Fatalf("sites = %+v, want the single insert site", r.Sites)
	}
	if r.Sites[0].Wasted != 250 {
		t.Errorf("insert site wasted = %d, want 250", r.Sites[0].Wasted)
	}
	if len(r.Offenders) == 0 || r.Offenders[0].Hits != 2 {
		t.Errorf("offenders = %+v, want the repeat owner address with 2 hits", r.Offenders)
	}

	info := o.Info()
	if !info.Observed || info.Events != 3 || info.FalseSharing != 3 ||
		info.WastedCycles != 250 || info.WastedFalse != 250 {
		t.Errorf("info headline wrong: %+v", info)
	}
	if info.Edges != 2 || info.LongestChain != 2 {
		t.Errorf("info graph aggregates wrong: %+v", info)
	}
	if info.TopSite != "insert" || info.TopSiteWasted != 250 {
		t.Errorf("info blame wrong: %+v", info)
	}
	if info.First == "" || !strings.Contains(info.First, "false-sharing") {
		t.Errorf("info.First = %q, want a rendered false-sharing exemplar", info.First)
	}
}

// TestWriteDot smoke-tests the graphviz export shape.
func TestWriteDot(t *testing.T) {
	o := New(2, 5)
	o.TxKind(0, "remove")
	o.TxKind(1, "insert")
	base := mem.Addr(0x10000010)
	o.OnHeapAlloc("glibc", base, 16, 16, 0, 1)
	o.TxConflict(ev(base, base+8))
	var sb strings.Builder
	if err := o.Report().WriteDot(&sb, "test"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph conflicts", `"remove" -> "insert"`, "1 aborts"} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q:\n%s", want, out)
		}
	}
}
