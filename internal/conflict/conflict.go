// Package conflict implements the abort-forensics observatory: a
// deterministic pure observer that consumes one structured event per
// transaction abort from the STM (stm.ConflictHook) and the allocator
// block lifecycle from the address space (mem.HeapWatcher), and
// answers the question the aggregate counters cannot — *why did this
// transaction die, and which allocation decision is to blame?*
//
// Every abort is classified against allocator provenance into one of
// four placement classes (plus a residue):
//
//   - true-sharing: victim and killer collided on the same word — a
//     real data conflict no allocator placement could avoid.
//   - false-sharing: different addresses inside one 2^shift-byte
//     stripe. The ORT's lock granule made two logically independent
//     accesses conflict; the allocator chose the placement that put
//     them there (intra-block in the paper's sense — one lock block).
//   - stripe-alias: different stripes folded onto one ORT entry by the
//     modulo — the paper's 64 MiB-apart aliasing pathology.
//   - metadata: a conflicting address lies outside every live
//     allocator block — in-band heap metadata (boundary tags,
//     free-list links) or a reclaimed block, sharing a stripe with
//     application data.
//   - other: aborts with no attributable stripe (commit-time
//     validation, explicit restarts, OOM, kills).
//
// The event stream is aggregated four ways: a killer×victim conflict
// graph over transaction kinds and threads with wasted-cycle edge
// weights, a per-allocation-site blame table, abort-chain detection
// (longest kill cascades, repeat-offender addresses), and a bounded
// reservoir of exemplar events.
//
// Like internal/race, the observatory is pure: it never touches
// simulated memory, never ticks virtual time, and never changes a
// protocol decision, so an observed run is byte-identical to a plain
// run. All its state is host-side and driven from simulated threads,
// which the engine serializes, so it needs no locking.
package conflict

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/stm"
)

// Class is one placement class of the abort taxonomy.
type Class int

// Placement classes.
const (
	ClassTrue  Class = iota // same word: a real data conflict
	ClassFalse              // same stripe, different addresses, live blocks
	ClassAlias              // different stripes aliased onto one ORT entry
	ClassMeta               // a conflicting address in allocator metadata / a reclaimed block
	ClassOther              // no attributable stripe
	classCount
)

// ClassCount is the number of placement classes.
const ClassCount = int(classCount)

func (c Class) String() string {
	switch c {
	case ClassTrue:
		return "true-sharing"
	case ClassFalse:
		return "false-sharing"
	case ClassAlias:
		return "stripe-alias"
	case ClassMeta:
		return "metadata"
	case ClassOther:
		return "other"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

const (
	maxExemplars = 32   // bounded reservoir of rendered events
	maxOffenders = 4096 // bounded repeat-offender address map
	lineSize     = 64   // cache-line granularity for the same-line enrichment
)

// unlabeled is the kind shown for transactions that never called
// SetKind, and the site of blocks allocated outside any labeled
// transaction.
const unlabeled = "tx"

// block is the observatory's record of one allocator block.
type block struct {
	base, end mem.Addr
	allocator string
	site      string // kind label in force on the allocating thread
	live      bool
}

// edgeStat is one killer-kind → victim-kind edge of the conflict graph.
type edgeStat struct {
	aborts int
	false_ int // placement-caused share (everything but true-sharing/other)
	wasted uint64
}

// siteStat is one allocation site's blame-table row.
type siteStat struct {
	aborts int
	wasted uint64
}

// Observatory consumes ConflictEvents and block lifecycle events.
// It implements stm.ConflictHook and mem.HeapWatcher structurally.
type Observatory struct {
	shift uint // placement key = addr >> shift (the STM's Shift)

	kinds []string // per-tid current kind label
	chain []int    // per-tid current abort-cascade depth

	blocks    map[mem.Addr]*block // by user base
	wordOwner map[mem.Addr]*block // word address -> owning block

	counts [classCount]int
	wasted [classCount]uint64

	sameLine   int // false-sharing pairs within one cache line
	crossBlock int // false-sharing pairs spanning two allocator blocks

	edges    map[[2]string]*edgeStat // (killer kind, victim kind)
	thrEdges map[[2]int]int          // (killer tid, victim tid) abort counts

	sites map[string]*siteStat

	longestChain int
	offenders    map[mem.Addr]int
	offDropped   int // events whose offender address missed the bounded map

	events    int
	exemplars []Exemplar
}

// New returns an observatory for an STM whose lock map discards shift
// low address bits (stm.Shift()). threads sizes the per-thread tables;
// they grow on demand if a larger tid appears.
func New(threads int, shift uint) *Observatory {
	if threads < 1 {
		threads = 1
	}
	return &Observatory{
		shift:     shift,
		kinds:     make([]string, threads),
		chain:     make([]int, threads),
		blocks:    make(map[mem.Addr]*block),
		wordOwner: make(map[mem.Addr]*block),
		edges:     make(map[[2]string]*edgeStat),
		thrEdges:  make(map[[2]int]int),
		sites:     make(map[string]*siteStat),
		offenders: make(map[mem.Addr]int),
	}
}

func (o *Observatory) grow(tid int) {
	for tid >= len(o.kinds) {
		o.kinds = append(o.kinds, "")
		o.chain = append(o.chain, 0)
	}
}

func (o *Observatory) kindOf(tid int) string {
	if tid < 0 || tid >= len(o.kinds) || o.kinds[tid] == "" {
		return unlabeled
	}
	return o.kinds[tid]
}

// TxKind implements stm.ConflictHook.
func (o *Observatory) TxKind(tid int, kind string) {
	o.grow(tid)
	o.kinds[tid] = kind
}

// TxCommitted implements stm.ConflictHook: a commit ends any abort
// cascade rooted at the thread.
func (o *Observatory) TxCommitted(tid int, kind string) {
	o.grow(tid)
	o.chain[tid] = 0
}

// OnHeapAlloc implements mem.HeapWatcher: track the block with its
// allocator and the kind label in force on the allocating thread (its
// allocation site).
func (o *Observatory) OnHeapAlloc(allocator string, base mem.Addr, req, usable uint64, tid int, clock uint64) {
	if usable < req {
		usable = req
	}
	b := &block{
		base:      base,
		end:       base + mem.Addr(usable),
		allocator: allocator,
		site:      o.kindOf(tid),
		live:      true,
	}
	o.blocks[base] = b
	for a := base &^ (mem.WordSize - 1); a < b.end; a += mem.WordSize {
		o.wordOwner[a] = b
	}
}

// OnHeapFree implements mem.HeapWatcher. The words stay mapped to the
// dead block until an allocation overwrites them: an address resolving
// to a non-live block is exactly the metadata/reclaimed-words signal
// the classifier wants.
func (o *Observatory) OnHeapFree(base mem.Addr, tid int, clock uint64) {
	if b, ok := o.blocks[base]; ok {
		b.live = false
	}
}

// OnHeapReuse implements mem.HeapWatcher: a pooling discipline revived
// the block without an allocator round trip.
func (o *Observatory) OnHeapReuse(base mem.Addr, tid int, clock uint64) {
	if b, ok := o.blocks[base]; ok {
		b.live = true
	}
}

// find resolves an address to its owning block, or nil.
func (o *Observatory) find(a mem.Addr) *block {
	b := o.wordOwner[a&^(mem.WordSize-1)]
	if b == nil || a < b.base || a >= b.end {
		return nil
	}
	return b
}

// Classify maps one event onto the taxonomy, with the same-cache-line
// and cross-block enrichment bits (meaningful for ClassFalse only).
func (o *Observatory) Classify(ev stm.ConflictEvent) (class Class, sameLine, crossBlock bool) {
	if ev.Stripe == obs.NoStripe || ev.OwnerAddr == 0 {
		return ClassOther, false, false
	}
	if ev.VictimAddr == ev.OwnerAddr {
		return ClassTrue, true, false
	}
	if uint64(ev.VictimAddr)>>o.shift != uint64(ev.OwnerAddr)>>o.shift {
		return ClassAlias, false, false
	}
	vb, ob := o.find(ev.VictimAddr), o.find(ev.OwnerAddr)
	if vb == nil || ob == nil || !vb.live || !ob.live {
		return ClassMeta, false, false
	}
	sameLine = uint64(ev.VictimAddr)/lineSize == uint64(ev.OwnerAddr)/lineSize
	return ClassFalse, sameLine, vb != ob
}

// TxConflict implements stm.ConflictHook: consume one abort event.
func (o *Observatory) TxConflict(ev stm.ConflictEvent) {
	o.grow(ev.Victim)
	if ev.Killer >= 0 {
		o.grow(ev.Killer)
	}
	o.events++

	class, sameLine, crossBlock := o.Classify(ev)
	o.counts[class]++
	o.wasted[class] += ev.Wasted
	if class == ClassFalse {
		if sameLine {
			o.sameLine++
		}
		if crossBlock {
			o.crossBlock++
		}
	}

	// Conflict graph: kind-level edge with wasted-cycle weight, plus the
	// thread-level matrix. An unattributed killer is the "?" node.
	vKind := o.kindOf(ev.Victim)
	kKind := "?"
	if ev.Killer >= 0 {
		kKind = o.kindOf(ev.Killer)
	}
	ek := [2]string{kKind, vKind}
	e := o.edges[ek]
	if e == nil {
		e = &edgeStat{}
		o.edges[ek] = e
	}
	e.aborts++
	e.wasted += ev.Wasted
	placement := class == ClassFalse || class == ClassAlias || class == ClassMeta
	if placement {
		e.false_++
	}
	o.thrEdges[[2]int{ev.Killer, ev.Victim}]++

	// Blame table: placement-caused events charge the sites of the
	// blocks owning the conflicting addresses (both sides when they
	// differ — the pair's placement is to blame, not one call site).
	if placement {
		o.blame(ev.VictimAddr, ev.Wasted)
		if o.find(ev.OwnerAddr) != o.find(ev.VictimAddr) {
			o.blame(ev.OwnerAddr, ev.Wasted)
		}
		// Repeat offenders: the stripe-owning address that keeps killing.
		if _, ok := o.offenders[ev.OwnerAddr]; ok || len(o.offenders) < maxOffenders {
			o.offenders[ev.OwnerAddr]++
		} else {
			o.offDropped++
		}
	}

	// Abort cascade: the victim's chain extends the killer's.
	depth := 1
	if ev.Killer >= 0 {
		depth = o.chain[ev.Killer] + 1
	}
	o.chain[ev.Victim] = depth
	if depth > o.longestChain {
		o.longestChain = depth
	}

	if len(o.exemplars) < maxExemplars {
		o.exemplars = append(o.exemplars, Exemplar{
			Class:      class.String(),
			Reason:     ev.Reason.String(),
			Victim:     ev.Victim,
			VictimKind: vKind,
			Killer:     ev.Killer,
			KillerKind: kKind,
			Attempt:    ev.Attempt,
			Stripe:     ev.Stripe,
			VictimAddr: uint64(ev.VictimAddr),
			OwnerAddr:  uint64(ev.OwnerAddr),
			Wasted:     ev.Wasted,
			Rendered:   o.render(class, ev, vKind, kKind),
		})
	}
}

// blame charges an event's wasted cycles to the site of the block
// owning addr. Addresses outside any block (raw metadata) charge the
// pseudo-site "metadata".
func (o *Observatory) blame(addr mem.Addr, wasted uint64) {
	site := "metadata"
	if b := o.wordOwner[addr&^(mem.WordSize-1)]; b != nil {
		site = b.site
		if !b.live {
			site += " (freed)"
		}
	}
	st := o.sites[site]
	if st == nil {
		st = &siteStat{}
		o.sites[site] = st
	}
	st.aborts++
	st.wasted += wasted
}

func (o *Observatory) render(class Class, ev stm.ConflictEvent, vKind, kKind string) string {
	killer := "?"
	if ev.Killer >= 0 {
		killer = fmt.Sprintf("t%d %s", ev.Killer, kKind)
	}
	if ev.Stripe == obs.NoStripe {
		return fmt.Sprintf("%s: t%d %s #%d killed by %s (%s), wasted %d",
			class, ev.Victim, vKind, ev.Attempt, killer, ev.Reason, ev.Wasted)
	}
	return fmt.Sprintf("%s: t%d %s #%d killed by %s (%s) at stripe %#x, %#x vs %#x, wasted %d",
		class, ev.Victim, vKind, ev.Attempt, killer, ev.Reason,
		ev.Stripe, uint64(ev.VictimAddr), uint64(ev.OwnerAddr), ev.Wasted)
}

// Events returns the number of abort events consumed.
func (o *Observatory) Events() int { return o.events }

// Count returns the abort count of one class.
func (o *Observatory) Count(c Class) int { return o.counts[c] }

// Wasted returns the wasted virtual cycles of one class.
func (o *Observatory) Wasted(c Class) uint64 { return o.wasted[c] }

// WastedTotal returns the wasted virtual cycles across all classes.
func (o *Observatory) WastedTotal() uint64 {
	var t uint64
	for _, w := range o.wasted {
		t += w
	}
	return t
}

// Info condenses the observatory into the flat record block.
func (o *Observatory) Info() *obs.ConflictInfo {
	info := &obs.ConflictInfo{
		Observed:     true,
		Events:       o.events,
		TrueSharing:  o.counts[ClassTrue],
		FalseSharing: o.counts[ClassFalse],
		StripeAlias:  o.counts[ClassAlias],
		Metadata:     o.counts[ClassMeta],
		Other:        o.counts[ClassOther],
		WastedCycles: o.WastedTotal(),
		WastedTrue:   o.wasted[ClassTrue],
		WastedFalse:  o.wasted[ClassFalse],
		WastedAlias:  o.wasted[ClassAlias],
		WastedMeta:   o.wasted[ClassMeta],
		WastedOther:  o.wasted[ClassOther],
		SameLine:     o.sameLine,
		CrossBlock:   o.crossBlock,
		Edges:        len(o.edges),
		LongestChain: o.longestChain,
	}
	if len(o.exemplars) > 0 {
		info.First = o.exemplars[0].Rendered
	}
	for _, s := range o.topSites() {
		info.TopSite, info.TopSiteWasted = s.Site, s.Wasted
		break
	}
	for _, f := range o.topOffenders() {
		info.TopOffender, info.TopOffenderHits = fmt.Sprintf("%#x", f.Addr), f.Hits
		break
	}
	return info
}
