package intset_test

import (
	"strings"
	"testing"

	"repro/internal/alloc"
	"repro/internal/intset"
	"repro/internal/mem"
	"repro/internal/obs"
)

func uafConfig(allocator string) intset.Config {
	return intset.Config{
		Kind:         intset.LinkedList,
		Allocator:    allocator,
		Threads:      1,
		InitialSize:  32,
		OpsPerThread: 10,
		SeedUAF:      true,
	}
}

// TestSeedUAF is the headline sanitizer demo: the same seeded
// use-after-free fails with a provenance-bearing diagnostic when the
// sanitizer is armed and silently returns recycled memory when it is
// not, under every allocator model.
func TestSeedUAF(t *testing.T) {
	for _, name := range alloc.Names() {
		t.Run(name+"/sanitized", func(t *testing.T) {
			res, err := intset.Run(uafConfig(name))
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != obs.StatusFailed {
				t.Fatalf("status = %q, want %q", res.Status, obs.StatusFailed)
			}
			for _, want := range []string{"sanitizer", "use-after-free", name} {
				if !strings.Contains(res.Failure, want) {
					t.Errorf("failure %q does not mention %q", res.Failure, want)
				}
			}
		})
		t.Run(name+"/unsanitized", func(t *testing.T) {
			old := mem.SanitizeDefault()
			mem.SetSanitizeDefault(false)
			defer mem.SetSanitizeDefault(old)
			res, err := intset.Run(uafConfig(name))
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != obs.StatusOK {
				t.Fatalf("status = %q (%s), want %q", res.Status, res.Failure, obs.StatusOK)
			}
		})
	}
}
