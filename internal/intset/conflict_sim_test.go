package intset_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/alloc"
	"repro/internal/intset"
	"repro/internal/obs"
)

func conflictConfig(allocator string, seedAlias bool) intset.Config {
	return intset.Config{
		Kind:         intset.LinkedList,
		Allocator:    allocator,
		Threads:      4,
		InitialSize:  48,
		OpsPerThread: 40,
		UpdatePct:    60,
		Conflict:     true,
		SeedAlias:    seedAlias,
	}
}

// TestConflictPureObserver: a run with the observatory attached must
// measure exactly what a plain run measures — the forensics layer
// never ticks virtual time or touches simulated memory.
func TestConflictPureObserver(t *testing.T) {
	for _, name := range alloc.Names() {
		t.Run(name, func(t *testing.T) {
			observed, err := intset.Run(conflictConfig(name, false))
			if err != nil {
				t.Fatal(err)
			}
			if observed.Status != obs.StatusOK {
				t.Fatalf("status = %q (%s), want ok", observed.Status, observed.Failure)
			}
			if observed.Conflict == nil || !observed.Conflict.Observed {
				t.Fatalf("conflict info missing: %+v", observed.Conflict)
			}
			if observed.ConflictReport == nil {
				t.Fatal("conflict report missing")
			}
			plainCfg := conflictConfig(name, false)
			plainCfg.Conflict = false
			plain, err := intset.Run(plainCfg)
			if err != nil {
				t.Fatal(err)
			}
			observed.Conflict = nil
			observed.ConflictReport = nil
			observed.Config.Conflict = false
			if !reflect.DeepEqual(plain, observed) {
				t.Fatalf("observed run diverged from plain run:\nplain:    %+v\nobserved: %+v", plain, observed)
			}
		})
	}
}

// TestConflictAccountsEveryAbort: the observatory's event count must
// equal the STM's abort counter — every rollback produces exactly one
// forensic event, none double-counted.
func TestConflictAccountsEveryAbort(t *testing.T) {
	res, err := intset.Run(conflictConfig("glibc", false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Tx.Aborts == 0 {
		t.Skip("workload produced no aborts at this scale")
	}
	if uint64(res.Conflict.Events) != res.Tx.Aborts {
		t.Fatalf("observatory saw %d events, STM counted %d aborts", res.Conflict.Events, res.Tx.Aborts)
	}
	if res.Conflict.WastedCycles == 0 {
		t.Error("aborts recorded but no wasted cycles attributed")
	}
}

// TestSeedAliasDetected is the headline forensics demo: the seeded
// stripe-aliasing pair is classified as aliasing and fails the run when
// the observatory is attached, and completes silently when it is not.
func TestSeedAliasDetected(t *testing.T) {
	for _, name := range alloc.Names() {
		t.Run(name+"/observed", func(t *testing.T) {
			res, err := intset.Run(conflictConfig(name, true))
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != obs.StatusFailed {
				t.Fatalf("status = %q (%s), want failed", res.Status, res.Failure)
			}
			if !strings.Contains(res.Failure, "stripe") {
				t.Fatalf("failure %q does not mention stripe aliasing", res.Failure)
			}
			if res.Conflict == nil || res.Conflict.StripeAlias == 0 {
				t.Fatalf("conflict info: %+v, want stripe-alias aborts", res.Conflict)
			}
		})
		t.Run(name+"/unobserved", func(t *testing.T) {
			cfg := conflictConfig(name, true)
			cfg.Conflict = false
			res, err := intset.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != obs.StatusOK {
				t.Fatalf("status = %q (%s), want ok (aliasing is silent unobserved)", res.Status, res.Failure)
			}
		})
	}
}

// TestConflictDeterministic: same seed, same forensics, byte for byte.
func TestConflictDeterministic(t *testing.T) {
	a, err := intset.Run(conflictConfig("tcmalloc", false))
	if err != nil {
		t.Fatal(err)
	}
	b, err := intset.Run(conflictConfig("tcmalloc", false))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("conflict-observed run not deterministic:\n%+v\n%+v", a, b)
	}
}
