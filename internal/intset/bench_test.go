package intset_test

import (
	"testing"

	"repro/internal/intset"
)

// benchConfig is the overhead-pair workload: large enough that the
// steady-state cost dominates engine setup, small enough for -benchtime
// defaults. The observers are the only axes the pairs vary.
func benchConfig(race, conflict bool) intset.Config {
	return intset.Config{
		Kind:         intset.LinkedList,
		Allocator:    "glibc",
		Threads:      4,
		InitialSize:  128,
		OpsPerThread: 200,
		Race:         race,
		Conflict:     conflict,
	}
}

func benchRun(b *testing.B, race, conflict bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := intset.Run(benchConfig(race, conflict))
		if err != nil {
			b.Fatal(err)
		}
		if res.Failure != "" {
			b.Fatal(res.Failure)
		}
	}
}

// BenchmarkIntsetPlain / BenchmarkIntsetRaceSim are the race-checker
// overhead pair: identical runs except for the attached happens-before
// checker. scripts/bench.sh pairs their ns/op into the race_overhead
// block of BENCH_PR9.json.
//
// BenchmarkIntsetConflict completes the forensics pair: the same run
// with the abort-forensics observatory attached. scripts/bench.sh pairs
// it with Plain into the conflict_overhead block of BENCH_PR10.json.
func BenchmarkIntsetPlain(b *testing.B)    { benchRun(b, false, false) }
func BenchmarkIntsetRaceSim(b *testing.B)  { benchRun(b, true, false) }
func BenchmarkIntsetConflict(b *testing.B) { benchRun(b, false, true) }
