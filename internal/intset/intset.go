// Package intset implements the paper's synthetic benchmark (§5): a
// configurable number of threads updating (inserting or deleting) or
// searching a transactional integer set held in one of three data
// structures — a sorted linked list, a hash set or a red-black tree.
//
// Insertions and deletions take turns so the set size stays nearly
// constant: "the next element to be removed is the last one inserted".
// Before the threads are spawned the main thread allocates all the
// initial nodes and inserts them, exactly as the paper describes — the
// initial layout the allocator chooses for those nodes is what drives
// the linked-list results.
package intset

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/cachesim"
	"repro/internal/conflict"
	"repro/internal/fault"
	"repro/internal/heapscope"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/prof"
	"repro/internal/race"
	"repro/internal/sim"
	"repro/internal/stm"
	"repro/internal/txstruct"
	"repro/internal/vtime"
)

// Kind selects the data structure under test.
type Kind string

// The three §5 structures.
const (
	LinkedList Kind = "linkedlist"
	HashSet    Kind = "hashset"
	RBTree     Kind = "rbtree"
)

// Kinds lists the structures in the paper's order.
func Kinds() []Kind { return []Kind{LinkedList, HashSet, RBTree} }

// Set is the common transactional set interface the three structures
// expose.
type Set interface {
	Insert(tx *stm.Tx, key int64) bool
	Remove(tx *stm.Tx, key int64) bool
	Contains(tx *stm.Tx, key int64) bool
	Len(tx *stm.Tx) int
}

type rbAdapter struct{ t *txstruct.RBTree }

func (a rbAdapter) Insert(tx *stm.Tx, k int64) bool   { return a.t.Insert(tx, k, uint64(k)) }
func (a rbAdapter) Remove(tx *stm.Tx, k int64) bool   { return a.t.Remove(tx, k) }
func (a rbAdapter) Contains(tx *stm.Tx, k int64) bool { return a.t.Contains(tx, k) }
func (a rbAdapter) Len(tx *stm.Tx) int                { return a.t.Len(tx) }

// Config parameterizes one benchmark run. Zero fields take the paper's
// defaults (scaled by callers for quick runs).
type Config struct {
	Kind         Kind
	Allocator    string // "glibc", "hoard", "tbb", "tcmalloc"
	Threads      int
	InitialSize  int        // paper: 4096
	KeyRange     int        // paper: 8192
	UpdatePct    int        // 0, 20 or 60 (write-dominated)
	OpsPerThread int        // operations each thread performs
	Shift        uint       // ORT shift amount (paper default 5)
	Design       stm.Design // STM algorithm variant (ablations)
	// CacheTx is the deprecated boolean spelling of Pool == PoolCache;
	// it is kept for old callers and conflicts with a non-none Pool.
	CacheTx     bool
	Pool        stm.Pooling // tx-object recycling discipline (none/cache/pool/batch)
	Seed        uint64
	HashBuckets uint64        // hash set only; paper: 128K
	Obs         *obs.Recorder // event/metric sink; nil disables
	CM          stm.CM        // contention manager (default CMSuicide)
	RetryCap    uint64        // irrevocable-fallback threshold (0 = default)
	Fault       string        // fault-plan spec (internal/fault grammar); "" disables
	Deadline    uint64        // virtual-cycle watchdog bound per phase; 0 disables
	Pmem        bool          // durable heap: redo-logged commits, priced flush/fence
	Crash       string        // crash-injection clauses (fault grammar); implies Pmem
	// Plan, when non-nil, is a pre-parsed (and freshly cloned) fault
	// plan that replaces parsing Fault/Crash — harness cells parse the
	// spec once and hand each run its own clone. Excluded from spec
	// hashing: the strings above already identify the plan.
	Plan *fault.Plan `json:"-"`
	// SeedUAF plants a use-after-free at the start of the measurement
	// phase: thread 0 allocates and stores, frees, then reads the stale
	// pointer in a fresh transaction. Under the sanitizer the run fails
	// with a diagnostic; without it the read silently returns recycled
	// memory. The field is part of the spec, so seeded and clean runs
	// hash to different cells.
	SeedUAF bool
	// SeedRace plants the paper's in-band-metadata race at the start of
	// the measurement phase: thread 0 publishes a block through a
	// committed transaction and then frees it raw — straight to the
	// allocator, bypassing the STM's quarantine — while thread 1 reads
	// it in a transaction whose snapshot predates the free. Under
	// -race-sim the run fails with a metadata finding; without it the
	// read silently returns whatever the allocator's free-list left
	// behind. Needs Threads >= 2 (same-thread frees are always
	// ordered). The field is part of the spec, so seeded and clean runs
	// hash to different cells.
	SeedRace bool
	// SeedAlias plants a deterministic ORT stripe-aliasing conflict at
	// the start of the measurement phase: thread 0 allocates a probe
	// block, walks the heap until a second block maps to the same ORT
	// entry from a *different* memory stripe (the table-wrap aliasing of
	// the paper's 64 MiB glibc effect), then repeatedly stores to the
	// first block while holding the stripe open; thread 1 hammers the
	// second. Every resulting abort is a false conflict between
	// addresses that share nothing but the ORT entry. Under -conflict
	// the run fails with a stripe-alias diagnosis; without it the aborts
	// just count as FalseAborts. Needs Threads >= 2. Part of the spec,
	// so seeded and clean runs hash to different cells. Unless OrtBits
	// is set explicitly, the demo shrinks the table to 12 bits so the
	// aliasing pair exists within a 128 KiB heap walk.
	SeedAlias bool
	// OrtBits overrides the ORT size (log2 of the entry count; 0 keeps
	// the stm default of 20). Small tables make the modulo wrap — and
	// therefore stripe aliasing — reachable for small heaps. Part of
	// the spec.
	OrtBits uint
	// Race attaches the happens-before checker (internal/race) to the
	// run: scheduler, STM and allocator events feed a vector-clock
	// analysis whose verdict lands in Result.Race, and any finding
	// fails the run. Excluded from spec hashing — the checker is a pure
	// observer and never changes what a cell computes.
	Race bool `json:"-"`
	// Conflict attaches the abort-forensics observatory
	// (internal/conflict) to the run: every abort is classified against
	// allocator provenance and the verdict lands in Result.Conflict
	// (headline) and Result.ConflictReport (full graph/blame tables).
	// Excluded from spec hashing — the observatory is a pure observer
	// and never changes what a cell computes.
	Conflict bool `json:"-"`
	// Prof, when non-nil, attributes every virtual cycle of the run to
	// (thread, region-stack, allocator) buckets. Excluded from spec
	// hashing — profiling never changes what a cell computes.
	Prof *prof.Profiler `json:"-"`
	// Heap, when non-nil, collects allocator-state telemetry on a
	// virtual-cycle cadence. Excluded from spec hashing — snapshots are
	// pure observers and never change what a cell computes.
	Heap *heapscope.Collector `json:"-"`
}

func (c *Config) fill() {
	if c.Threads == 0 {
		c.Threads = 1
	}
	if c.InitialSize == 0 {
		c.InitialSize = 4096
	}
	if c.KeyRange == 0 {
		c.KeyRange = 2 * c.InitialSize
	}
	if c.OpsPerThread == 0 {
		c.OpsPerThread = 1000
	}
	if c.Shift == 0 {
		c.Shift = stm.DefaultShift
	}
	if c.Seed == 0 {
		c.Seed = 0x5eed
	}
	if c.HashBuckets == 0 {
		c.HashBuckets = 128 << 10
	}
	if c.Allocator == "" {
		c.Allocator = "glibc"
	}
}

// Result reports one run's measurements.
type Result struct {
	Config     Config
	Cycles     uint64  // virtual execution time of the parallel phase
	Seconds    float64 // Cycles at the model frequency
	Ops        uint64
	Throughput float64 // ops per modelled second
	Tx         stm.TxStats
	L1Miss     float64 // L1D miss ratio over the parallel phase
	CacheTotal cachesim.CoreStats
	AllocStats alloc.Stats
	Status     string // obs.StatusOK / StatusDegraded / StatusFailed
	Failure    string // watchdog / panic detail when Status is not ok
	// Recovery carries the durable-memory verdict: flush/fence/log
	// traffic for every Pmem run, plus the crash point and invariant
	// sweep when a crash clause fired. Nil when Pmem is off.
	Recovery *obs.RecoveryInfo
	// Pool carries the tx-pooling discipline and its traffic counters.
	// Nil when the run used the PoolNone baseline.
	Pool *obs.PoolInfo
	// Race carries the happens-before checker's verdict. Nil when the
	// checker was not attached.
	Race *obs.RaceInfo
	// Conflict carries the abort-forensics headline; ConflictReport the
	// full conflict graph, blame table and exemplar reservoir. Both nil
	// when the observatory was not attached.
	Conflict       *obs.ConflictInfo
	ConflictReport *conflict.Report `json:"conflict_report,omitempty"`
}

// Run executes the benchmark described by cfg and returns its result.
// Configuration errors are returned as errors; a run that starts but is
// wound down (watchdog deadline) or panics under injected faults comes
// back with Status degraded or failed, so callers always have a
// machine-readable outcome to record.
func Run(cfg Config) (res Result, err error) {
	cfg.fill()
	space := mem.NewSpace()
	allocator, err := alloc.New(cfg.Allocator, space, cfg.Threads)
	if err != nil {
		return Result{}, err
	}
	plan := cfg.Plan
	if plan == nil {
		if spec := fault.Join(cfg.Fault, cfg.Crash); spec != "" {
			plan, err = fault.Parse(spec, cfg.Seed)
			if err != nil {
				return Result{}, err
			}
		}
	}
	if plan != nil {
		plan.SetObserver(cfg.Obs)
		plan.ApplyQuota(space)
		alloc.Inject(allocator, plan)
	}
	var durable *pmem.Pmem
	if cfg.Pmem || cfg.Crash != "" || (plan != nil && plan.HasCrash()) {
		durable = pmem.Attach(space, plan)
		alloc.Journal(allocator, durable)
	}
	defer func() {
		if r := recover(); r != nil {
			res.Config = cfg
			res.Status = obs.StatusFailed
			res.Failure = fmt.Sprint(r)
			err = nil
		}
	}()
	cache := cachesim.New(cachesim.DefaultCores)
	engineCfg := vtime.Config{
		Cache: cache, Obs: cfg.Obs, Deadline: cfg.Deadline,
	}
	if cfg.Prof != nil {
		engineCfg.Prof = cfg.Prof
	}
	if cfg.Heap != nil {
		cfg.Heap.Attach(allocator, space)
		cfg.Heap.SetRecorder(cfg.Obs)
		engineCfg.Heap = cfg.Heap
	}
	var checker *race.Checker
	if cfg.Race {
		checker = race.New(cfg.Threads)
		engineCfg.Race = checker
		space.SetRaceWatcher(checker)
	}
	// The SeedAlias demo needs the modulo to wrap within a small heap:
	// shrink the table unless the caller pinned a size.
	ortBits := cfg.OrtBits
	if cfg.SeedAlias && ortBits == 0 {
		ortBits = 12
	}
	var observatory *conflict.Observatory
	if cfg.Conflict {
		observatory = conflict.New(cfg.Threads, cfg.Shift)
		space.SetConflictWatcher(observatory)
	}
	engine := vtime.NewEngine(space, cfg.Threads, engineCfg)
	stmCfg := stm.Config{
		OrtBits:        ortBits,
		Shift:          cfg.Shift,
		Design:         cfg.Design,
		Allocator:      allocator,
		CacheTxObjects: cfg.CacheTx,
		Pooling:        cfg.Pool,
		Obs:            cfg.Obs,
		CM:             cfg.CM,
		RetryCap:       cfg.RetryCap,
		Prof:           cfg.Prof,
	}
	if plan != nil {
		stmCfg.Fault = plan
	}
	if checker != nil {
		stmCfg.Race = checker
	}
	if observatory != nil {
		stmCfg.Conflict = observatory
	}
	if durable != nil {
		durable.SetStopper(engine)
		stmCfg.Durable = durable
	}
	st := stm.New(space, stmCfg)
	alloc.Observe(allocator, cfg.Obs)
	alloc.Profile(allocator, cfg.Prof)
	cfg.Obs.BeginPhase(fmt.Sprintf("intset/%s/%s/t%d/u%d",
		cfg.Kind, cfg.Allocator, cfg.Threads, cfg.UpdatePct))

	var set Set
	rng := sim.NewRand(cfg.Seed)

	// Initialization: the main thread (thread 0) allocates and inserts
	// every initial node.
	engine.Run(func(th *vtime.Thread) {
		if p := cfg.Prof; p != nil {
			p.Begin(th, "intset/init")
			defer p.End(th)
		}
		if th.ID() != 0 {
			return
		}
		st.Atomic(th, func(tx *stm.Tx) {
			tx.SetKind("init")
			switch cfg.Kind {
			case LinkedList:
				set = txstruct.NewList(tx)
			case HashSet:
				set = txstruct.NewHashSet(tx, cfg.HashBuckets)
			case RBTree:
				set = rbAdapter{txstruct.NewRBTree(tx)}
			default:
				panic(fmt.Sprintf("intset: unknown kind %q", cfg.Kind))
			}
		})
		for inserted := 0; inserted < cfg.InitialSize; {
			k := int64(rng.Intn(cfg.KeyRange))
			ok := false
			st.Atomic(th, func(tx *stm.Tx) { tx.SetKind("init"); ok = set.Insert(tx, k) })
			if ok {
				inserted++
			}
		}
	})

	if engine.DeadlineExceeded() {
		return Result{
			Config:  cfg,
			Status:  obs.StatusDegraded,
			Failure: fmt.Sprintf("virtual-time deadline %d exceeded during initialization", cfg.Deadline),
		}, nil
	}

	// Durable baseline: everything the init phase built — the initial
	// set, the allocator's arenas and free lists — persists before the
	// measurement begins, so a crash can only tear measurement-phase
	// state. The checkpoint itself passes crash checkpoints, so a
	// crash@ point can land inside it; the StopSignal is swallowed like
	// the engine does and recovery below handles it.
	if durable != nil && !durable.Crashed() {
		func() {
			defer swallowStop()
			durable.Checkpoint(vtime.Solo(space, 0, nil))
		}()
	}

	// The measurement covers only the parallel phase.
	if cfg.Heap != nil {
		cfg.Heap.Phase("run", engine.MaxClock())
	}
	engine.ResetClocks()
	missBase := cache.TotalStats()
	txBase := st.Stats()

	// racePlant is the SeedRace demo's published-then-raw-freed block,
	// shared across the demo threads (the engine serializes access).
	var racePlant mem.Addr
	// aliasA/aliasB are the SeedAlias demo's aliasing pair: different
	// memory stripes, one ORT entry (same sharing discipline).
	var aliasA, aliasB mem.Addr
	measure := func(th *vtime.Thread) {
		if p := cfg.Prof; p != nil {
			p.Begin(th, "intset/run")
			defer p.End(th)
		}
		if cfg.SeedUAF && th.ID() == 0 {
			var p mem.Addr
			st.Atomic(th, func(tx *stm.Tx) { p = tx.Malloc(64); tx.Store(p, 0xdead) })
			st.Atomic(th, func(tx *stm.Tx) { tx.Free(p, 64) })
			st.Atomic(th, func(tx *stm.Tx) { tx.Load(p) })
		}
		if cfg.SeedRace && cfg.Threads >= 2 {
			// The spacers choreograph the hazard window under min-clock
			// scheduling: thread 0's plant commits first, thread 1 opens a
			// transaction whose snapshot sees the plant but not the free,
			// and holds it open (Work inside the tx) until well after the
			// raw free lands. Thread 0 must not commit anything between
			// the plant and the free, or the later release would order the
			// free for every later snapshot and close the window.
			switch th.ID() {
			case 0:
				// Publish a block through a committed transaction, then
				// free it raw — straight to the allocator, bypassing the
				// STM's free/quarantine path. The allocator may reuse the
				// words for in-band metadata while thread 1's snapshot
				// still reaches the block: the paper's glibc hazard.
				st.Atomic(th, func(tx *stm.Tx) { racePlant = tx.Malloc(64); tx.Store(racePlant, 0xdead) })
				th.Work(1 << 17)
				//tmvet:allow txescape: the escape *is* the planted bug under study
				allocator.Free(th, racePlant)
			case 1:
				// Past the plant commit (a few thousand cycles), but well
				// before thread 0's free at ~1<<17.
				th.Work(1 << 16)
				st.Atomic(th, func(tx *stm.Tx) {
					tx.Load(racePlant)
					th.Work(1 << 18) // stay open across the raw free
				})
			}
		}
		if cfg.SeedAlias && cfg.Threads >= 2 {
			switch th.ID() {
			case 0:
				// Discover an aliasing pair: allocate a probe block, then
				// keep allocating until a block in a *different* stripe
				// folds onto the probe's ORT entry through the shrunken
				// table's modulo. The sizes are mixed on purpose: a single
				// size class places blocks a fixed number of stripes apart,
				// and a power-of-two stride can only ever reach a subset of
				// the table's residues; mixing half-stripe offsets makes
				// every residue reachable.
				st.Atomic(th, func(tx *stm.Tx) {
					tx.SetKind("alias-seed")
					probe := tx.Malloc(64)
					tx.Store(probe, 1)
					target := st.OrtIndex(probe)
					for i := 0; i < 1<<16; i++ {
						b := tx.Malloc(64 + 16*uint64(i%4))
						if st.OrtIndex(b) == target &&
							uint64(b)>>cfg.Shift != uint64(probe)>>cfg.Shift {
							aliasA, aliasB = probe, b
							return
						}
					}
					panic("intset: SeedAlias found no aliasing block within 1<<16 allocations")
				})
				// Hammer the probe in long transactions so thread 1's
				// stores to the *other* block keep hitting the locked
				// shared entry.
				for r := 0; r < 8; r++ {
					st.Atomic(th, func(tx *stm.Tx) {
						tx.SetKind("alias-a")
						tx.Store(aliasA, uint64(r))
						th.Work(1 << 14) // hold the entry's lock open
					})
				}
			case 1:
				// The engine schedules by minimum clock, so spinning in
				// small Work quanta deterministically parks this thread
				// until thread 0's discovery commit publishes the pair.
				for aliasB == 0 {
					th.Work(4096)
				}
				for r := 0; r < 8; r++ {
					st.Atomic(th, func(tx *stm.Tx) {
						tx.SetKind("alias-b")
						tx.Store(aliasB, uint64(r))
					})
					th.Work(512)
				}
			}
		}
		r := sim.NewRand(cfg.Seed*1000003 + uint64(th.ID()) + 1)
		lastInserted := int64(-1)
		for i := 0; i < cfg.OpsPerThread; i++ {
			k := int64(r.Intn(cfg.KeyRange))
			update := r.Intn(100) < cfg.UpdatePct
			switch {
			case !update:
				st.Atomic(th, func(tx *stm.Tx) { tx.SetKind("contains"); set.Contains(tx, k) })
			case lastInserted < 0:
				st.Atomic(th, func(tx *stm.Tx) { tx.SetKind("insert"); set.Insert(tx, k) })
				lastInserted = k
			default:
				k := lastInserted
				st.Atomic(th, func(tx *stm.Tx) { tx.SetKind("remove"); set.Remove(tx, k) })
				lastInserted = -1
			}
		}
	}
	if !engine.Stopped() {
		engine.Run(measure)
	}

	cycles := engine.MaxClock()
	if cfg.Heap != nil {
		cfg.Heap.Finish(cycles)
	}
	total := cache.TotalStats()
	phase := cachesim.CoreStats{
		Accesses: total.Accesses - missBase.Accesses,
		L1Misses: total.L1Misses - missBase.L1Misses,
		L2Misses: total.L2Misses - missBase.L2Misses,
		CohMisses: total.CohMisses -
			missBase.CohMisses,
		FalseShare: total.FalseShare - missBase.FalseShare,
		InvalsSent: total.InvalsSent - missBase.InvalsSent,
	}
	ops := uint64(cfg.Threads) * uint64(cfg.OpsPerThread)
	secs := vtime.Seconds(cycles)
	thr := 0.0
	if secs > 0 {
		// A crash during initialization leaves no measured cycles; report
		// zero throughput rather than dividing by zero.
		thr = float64(ops) / secs
	}
	res = Result{
		Config:     cfg,
		Cycles:     cycles,
		Seconds:    secs,
		Ops:        ops,
		Throughput: thr,
		Tx:         st.Stats().Sub(txBase),
		L1Miss:     phase.L1MissRatio(),
		CacheTotal: phase,
		AllocStats: allocator.Stats(),
		Status:     obs.StatusOK,
	}
	if d := st.Pooling(); d != stm.PoolNone {
		ps := st.PoolStats()
		res.Pool = &obs.PoolInfo{
			Discipline: d.String(),
			Hits:       ps.Hits, Misses: ps.Misses, Returns: ps.Returns,
			Refills: ps.Refills, Slabs: ps.Slabs, SlabBytes: ps.SlabBytes,
			Held: ps.Held,
		}
	}
	if engine.DeadlineExceeded() {
		res.Status = obs.StatusDegraded
		res.Failure = fmt.Sprintf("virtual-time deadline %d exceeded in the parallel phase", cfg.Deadline)
	}
	if durable != nil {
		if durable.Crashed() {
			// The machine went down at the injected point: recover on a
			// fresh solo thread and let the invariant sweep's verdict
			// become the run's health.
			info := durable.Recover(vtime.Solo(space, 0, nil), allocator)
			res.Recovery = info
			res.Status = info.Verdict
			if info.Verdict != obs.StatusOK {
				res.Failure = fmt.Sprintf("crash recovery %s at cycle %d phase %s (lost=%d resurrected=%d chain_breaks=%d shadow_bad=%d)",
					info.Verdict, info.CrashCycle, info.CrashPhase,
					info.LostWrites, info.Resurrected, info.ChainBreaks, info.ShadowBad)
			}
		} else {
			res.Recovery = durable.Info()
		}
	}
	if checker != nil {
		res.Race = checker.Info()
		if res.Race.Findings > 0 && res.Status == obs.StatusOK {
			res.Status = obs.StatusFailed
			res.Failure = "race: " + res.Race.First
		}
	}
	if observatory != nil {
		res.Conflict = observatory.Info()
		res.ConflictReport = observatory.Report()
		if cfg.SeedAlias && res.Conflict.StripeAlias > 0 && res.Status == obs.StatusOK {
			// The seeded demo is choreographed to alias; classifying it is
			// the detection the CI gate asserts on.
			res.Status = obs.StatusFailed
			res.Failure = fmt.Sprintf("conflict: seeded stripe aliasing detected: %d stripe-alias aborts", res.Conflict.StripeAlias)
		}
	}
	return res, nil
}

// swallowStop absorbs the simulated-crash panic on a solo (engineless)
// thread, mirroring what the engine does for its workers.
func swallowStop() {
	if r := recover(); r != nil {
		if _, ok := r.(vtime.StopSignal); !ok {
			panic(r)
		}
	}
}
