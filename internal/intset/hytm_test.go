package intset

import (
	"testing"

	_ "repro/internal/alloc/glibc"
	_ "repro/internal/alloc/hoard"
	_ "repro/internal/alloc/tbb"
	_ "repro/internal/alloc/tcmalloc"
)

func TestHyTMAllAllocatorsRun(t *testing.T) {
	for _, name := range []string{"glibc", "hoard", "tbb", "tcmalloc"} {
		cfg := small(HashSet, name, 4)
		res, err := RunHyTM(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Throughput <= 0 || res.HTM.HTMCommits == 0 {
			t.Errorf("%s: degenerate result %+v", name, res.HTM)
		}
		// Allocator must balance: every duplicate/removed node is freed.
		if res.Alloc.LiveBytes < 0 {
			t.Errorf("%s: negative live bytes %d", name, res.Alloc.LiveBytes)
		}
	}
}

func TestHyTMDeterministic(t *testing.T) {
	cfg := small(HashSet, "tcmalloc", 4)
	a, err := RunHyTM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunHyTM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.HTM.HTMAborts != b.HTM.HTMAborts {
		t.Errorf("nondeterministic: cycles %d/%d aborts %d/%d",
			a.Cycles, b.Cycles, a.HTM.HTMAborts, b.HTM.HTMAborts)
	}
}

func TestHyTMRejectsOtherKinds(t *testing.T) {
	if _, err := RunHyTM(small(LinkedList, "tbb", 2)); err == nil {
		t.Error("linked list accepted by RunHyTM")
	}
}
