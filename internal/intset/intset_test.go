package intset

import (
	"testing"

	_ "repro/internal/alloc/glibc"
	_ "repro/internal/alloc/hoard"
	_ "repro/internal/alloc/tbb"
	_ "repro/internal/alloc/tcmalloc"

	"repro/internal/alloc"
)

// small returns a scaled-down config that preserves the paper's shape.
func small(kind Kind, allocator string, threads int) Config {
	return Config{
		Kind:         kind,
		Allocator:    allocator,
		Threads:      threads,
		InitialSize:  256,
		KeyRange:     512,
		UpdatePct:    60,
		OpsPerThread: 150,
		HashBuckets:  8192,
	}
}

func TestAllKindsAllAllocatorsRun(t *testing.T) {
	for _, kind := range Kinds() {
		for _, name := range alloc.Names() {
			res, err := Run(small(kind, name, 4))
			if err != nil {
				t.Fatalf("%s/%s: %v", kind, name, err)
			}
			if res.Throughput <= 0 || res.Cycles == 0 {
				t.Errorf("%s/%s: degenerate result %+v", kind, name, res)
			}
			if res.Tx.Commits != res.Ops+0 && res.Tx.Commits < res.Ops {
				t.Errorf("%s/%s: commits %d < ops %d", kind, name, res.Tx.Commits, res.Ops)
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	cfg := small(LinkedList, "tcmalloc", 4)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Tx.Aborts != b.Tx.Aborts {
		t.Errorf("nondeterministic: cycles %d/%d aborts %d/%d", a.Cycles, b.Cycles, a.Tx.Aborts, b.Tx.Aborts)
	}
}

// The paper's §5.1 finding (Table 4): on the sorted linked list Glibc's
// 32-byte-spaced nodes produce far fewer (false) aborts than the
// 16-byte-spaced nodes of Hoard/TBB/TCMalloc, at the price of a higher
// L1 miss ratio. The effect separates most cleanly below abort
// saturation, so this uses the paper's 2-thread point.
func TestLinkedListGlibcAbortAdvantage(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-config run")
	}
	cfgFor := func(name string) Config {
		cfg := small(LinkedList, name, 2)
		cfg.InitialSize = 1024
		cfg.KeyRange = 2048
		cfg.OpsPerThread = 200
		return cfg
	}
	glibc, err := Run(cfgFor("glibc"))
	if err != nil {
		t.Fatal(err)
	}
	hoard, err := Run(cfgFor("hoard"))
	if err != nil {
		t.Fatal(err)
	}
	if glibc.Tx.AbortRate() >= hoard.Tx.AbortRate() {
		t.Errorf("glibc abort rate %.3f >= hoard %.3f; stripe-sharing effect missing",
			glibc.Tx.AbortRate(), hoard.Tx.AbortRate())
	}
	if glibc.L1Miss <= hoard.L1Miss {
		t.Errorf("glibc L1 miss %.4f <= hoard %.4f; locality penalty missing",
			glibc.L1Miss, hoard.L1Miss)
	}
	if hoard.Tx.FalseAborts == 0 {
		t.Error("hoard recorded no false aborts on the linked list")
	}
}

// Read-only workloads must never abort.
func TestReadOnlyNoAborts(t *testing.T) {
	cfg := small(RBTree, "tbb", 4)
	cfg.UpdatePct = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tx.Aborts != 0 {
		t.Errorf("read-only run aborted %d times", res.Tx.Aborts)
	}
}

// Single-threaded runs must never abort either.
func TestSingleThreadNoAborts(t *testing.T) {
	res, err := Run(small(HashSet, "tcmalloc", 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Tx.Aborts != 0 {
		t.Errorf("1-thread run aborted %d times", res.Tx.Aborts)
	}
}
