package intset

import (
	"encoding/json"
	"testing"

	"repro/internal/obs"
)

// TestCrashRecoverVerdicts drives the full durable pipeline through the
// benchmark entry point: a crash clause halts the run at a commit-phase
// checkpoint, recovery replays the redo log and rebuilds the free
// lists, and the invariant sweep's verdict becomes the run status.
func TestCrashRecoverVerdicts(t *testing.T) {
	for _, a := range []string{"glibc", "hoard", "tbb", "tcmalloc"} {
		for _, phase := range []string{"commit", "apply", "malloc"} {
			t.Run(a+"/"+phase, func(t *testing.T) {
				res, err := Run(Config{
					Kind: LinkedList, Allocator: a, Threads: 4,
					InitialSize: 64, OpsPerThread: 50, UpdatePct: 60,
					Crash: "crashphase:" + phase + "@3",
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Recovery == nil || !res.Recovery.Crashed {
					t.Fatalf("crash never fired: %+v", res.Recovery)
				}
				if res.Status != obs.StatusOK {
					t.Fatalf("status = %q (%s): %+v", res.Status, res.Failure, res.Recovery)
				}
				if r := res.Recovery; r.LostWrites != 0 || r.Resurrected != 0 || r.ChainBreaks != 0 {
					t.Fatalf("recovery invariants broken: %+v", r)
				}
			})
		}
	}
}

// TestCrashRunDeterministic re-runs the same crashed configuration and
// requires byte-identical recovery info — the property the harness
// depends on for cache-free crash cells at any -jobs width.
func TestCrashRunDeterministic(t *testing.T) {
	cfg := Config{
		Kind: HashSet, Allocator: "hoard", Threads: 4,
		InitialSize: 64, OpsPerThread: 50, UpdatePct: 60,
		Crash: "crash@9000",
	}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(r1.Recovery)
	j2, _ := json.Marshal(r2.Recovery)
	if string(j1) != string(j2) {
		t.Fatalf("recovery differs across identical runs:\n%s\n%s", j1, j2)
	}
	if r1.Cycles != r2.Cycles {
		t.Fatalf("cycles differ: %d vs %d", r1.Cycles, r2.Cycles)
	}
}

// TestPmemOverheadVisible checks that a durable run without any crash
// clause completes normally, reports flush/fence traffic, and costs
// virtual time relative to the volatile baseline.
func TestPmemOverheadVisible(t *testing.T) {
	base := Config{
		Kind: LinkedList, Allocator: "glibc", Threads: 2,
		InitialSize: 64, OpsPerThread: 40, UpdatePct: 60,
	}
	vol, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Pmem = true
	dur, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if dur.Status != obs.StatusOK || dur.Recovery == nil || dur.Recovery.Crashed {
		t.Fatalf("durable run did not complete cleanly: %+v", dur.Recovery)
	}
	if dur.Recovery.Flushes == 0 || dur.Recovery.Fences == 0 || dur.Recovery.LogAppends == 0 {
		t.Fatalf("no durable traffic recorded: %+v", dur.Recovery)
	}
	if dur.Cycles <= vol.Cycles {
		t.Fatalf("durable run not slower: %d <= %d cycles", dur.Cycles, vol.Cycles)
	}
	if vol.Recovery != nil {
		t.Fatalf("volatile run carries recovery info: %+v", vol.Recovery)
	}
}
