package intset_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/alloc"
	"repro/internal/intset"
	"repro/internal/mem"
	"repro/internal/obs"
)

func raceConfig(allocator string, seed bool) intset.Config {
	return intset.Config{
		Kind:         intset.LinkedList,
		Allocator:    allocator,
		Threads:      2,
		InitialSize:  32,
		OpsPerThread: 25,
		Race:         true,
		SeedRace:     seed,
	}
}

// TestRaceSimCleanRun: the workload's own discipline is clean — the
// checker attached to an unseeded run reports nothing, and the run's
// measurements are identical to an unchecked run (the checker is a
// pure observer).
func TestRaceSimCleanRun(t *testing.T) {
	for _, name := range alloc.Names() {
		t.Run(name, func(t *testing.T) {
			checked, err := intset.Run(raceConfig(name, false))
			if err != nil {
				t.Fatal(err)
			}
			if checked.Status != obs.StatusOK {
				t.Fatalf("status = %q (%s), want ok", checked.Status, checked.Failure)
			}
			if checked.Race == nil || !checked.Race.Checked {
				t.Fatalf("race info missing: %+v", checked.Race)
			}
			if checked.Race.Findings != 0 {
				t.Fatalf("clean run reported findings: %+v (first: %s)", checked.Race, checked.Race.First)
			}
			if checked.Race.Events == 0 || checked.Race.Blocks == 0 {
				t.Fatalf("checker saw no events: %+v", checked.Race)
			}
			plainCfg := raceConfig(name, false)
			plainCfg.Race = false
			plain, err := intset.Run(plainCfg)
			if err != nil {
				t.Fatal(err)
			}
			checked.Race = nil
			checked.Config.Race = false
			if !reflect.DeepEqual(plain, checked) {
				t.Fatalf("checked run diverged from plain run:\nplain:   %+v\nchecked: %+v", plain, checked)
			}
		})
	}
}

// TestSeedRaceDetected is the headline checker demo: the seeded
// in-band-metadata race fails with a metadata finding when the checker
// is attached and completes silently when it is not, under every
// allocator model.
func TestSeedRaceDetected(t *testing.T) {
	old := mem.SanitizeDefault()
	mem.SetSanitizeDefault(false) // let the race reach commit un-diagnosed
	defer mem.SetSanitizeDefault(old)
	for _, name := range alloc.Names() {
		t.Run(name+"/checked", func(t *testing.T) {
			res, err := intset.Run(raceConfig(name, true))
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != obs.StatusFailed {
				t.Fatalf("status = %q (%s), want failed", res.Status, res.Failure)
			}
			if !strings.Contains(res.Failure, "metadata") {
				t.Fatalf("failure %q does not mention the metadata race", res.Failure)
			}
			if res.Race == nil || res.Race.Metadata == 0 {
				t.Fatalf("race info: %+v, want metadata findings", res.Race)
			}
		})
		t.Run(name+"/unchecked", func(t *testing.T) {
			cfg := raceConfig(name, true)
			cfg.Race = false
			res, err := intset.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != obs.StatusOK {
				t.Fatalf("status = %q (%s), want ok (the race is silent unchecked)", res.Status, res.Failure)
			}
		})
	}
}

// TestRaceSimDeterministic: same seed, same verdict, byte for byte.
func TestRaceSimDeterministic(t *testing.T) {
	a, err := intset.Run(raceConfig("glibc", false))
	if err != nil {
		t.Fatal(err)
	}
	b, err := intset.Run(raceConfig("glibc", false))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("race-sim run not deterministic:\n%+v\n%+v", a, b)
	}
}
