package intset_test

import (
	"os"
	"testing"

	"repro/internal/mem"
)

// TestMain arms the shadow-memory sanitizer for every space the package
// tests construct, so the benchmark suite doubles as sanitizer coverage
// of the three data structures under all allocators.
func TestMain(m *testing.M) {
	mem.SetSanitizeDefault(true)
	os.Exit(m.Run())
}
